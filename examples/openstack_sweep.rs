//! OpenStack flavour: sweep the whitelist prefix length and watch the
//! mask count and fast-path capacity degrade — the "arbitrary number of
//! protocol fields, each resulting in a significant increase" claim of
//! §2, quantified per field width.
//!
//! ```sh
//! cargo run --release --example openstack_sweep
//! ```

use policy_injection::prelude::*;

fn main() {
    println!("OpenStack security-group injection: ip_src /L × exact dst port\n");
    let mut table = CsvTable::new(&[
        "prefix_len",
        "predicted_masks",
        "measured_masks",
        "capacity_pps",
        "relative_capacity",
    ]);

    let mut baseline_pps = None;
    for len in [1u8, 2, 4, 8, 12, 16, 20, 24, 28, 32] {
        let spec = AttackSpec {
            dialect: PolicyDialect::OpenStack,
            allow_src: Cidr::new(0xcb00_7107, len).unwrap(),
            dst_port: Some(443),
            src_port: None,
        };
        let (base, attacked) = measure_capacity(DpConfig::default(), 1_200_000_000, &spec, 500);
        let baseline = *baseline_pps.get_or_insert(base.capacity_pps);
        table.push_numeric_row(&[
            len as f64,
            spec.predicted_masks() as f64,
            attacked.masks as f64,
            attacked.capacity_pps.round(),
            attacked.capacity_pps / baseline,
        ]);
    }
    println!("{}", table.to_aligned_text());
    println!(
        "every row's measured masks == predicted (the ∏ per-field-width law);\n\
         capacity falls as 1/masks — the linear TSS walk made visible."
    );
}
