//! Policy explorer: print the exact megaflow decomposition (the paper's
//! Fig. 2b) for an ACL given on the command line.
//!
//! ```sh
//! cargo run --example policy_explorer -- 10.0.0.0/8
//! cargo run --example policy_explorer -- 203.0.113.7/32 443
//! cargo run --example policy_explorer -- 203.0.113.7/32 443 4444
//! cargo run --example policy_explorer -- --backend=lpm_tier 10.0.0.0/8 443
//! ```
//!
//! Arguments: `[--backend=<name>] <allow-cidr> [dst-port [src-port]]` —
//! the three-port form is the Calico shape that reaches 8192 masks.
//! `--backend` selects the dataplane (`ovs_cache` | `exact_hash` |
//! `lpm_tier` | `nic_offload`); the Fig. 2b mask decomposition only
//! exists on `ovs_cache`, the others show what the same injection does
//! to an architecture without a tuple space.

use policy_injection::prelude::*;

fn main() {
    let mut backend = BackendKind::OvsCache;
    let args: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| {
            if let Some(name) = a.strip_prefix("--backend=") {
                backend =
                    BackendKind::parse(name).unwrap_or_else(|| panic!("unknown backend {name:?}"));
                false
            } else {
                true
            }
        })
        .collect();
    let cidr: Cidr = args
        .first()
        .map(|s| s.parse().expect("bad CIDR"))
        .unwrap_or_else(|| "10.0.0.0/8".parse().unwrap());
    let dst_port: Option<u16> = args.get(1).map(|s| s.parse().expect("bad dst port"));
    let src_port: Option<u16> = args.get(2).map(|s| s.parse().expect("bad src port"));

    let spec = AttackSpec {
        dialect: if src_port.is_some() {
            PolicyDialect::Calico
        } else {
            PolicyDialect::Kubernetes
        },
        allow_src: cidr,
        dst_port,
        src_port,
    };
    println!(
        "ACL: allow from {cidr}{}{} + default deny ({})",
        dst_port.map(|p| format!(" to :{p}")).unwrap_or_default(),
        src_port.map(|p| format!(" from :{p}")).unwrap_or_default(),
        spec.dialect
    );
    println!("backend: {backend}");
    println!("predicted megaflow masks: {}\n", spec.predicted_masks());

    // Install on a switch and feed the covert sequence.
    let pod_ip = u32::from_be_bytes([10, 1, 0, 66]);
    let dp = DpConfig {
        backend,
        ..DpConfig::default()
    };
    let mut sw = build_backend(dp, CostModel::default());
    sw.attach_pod(pod_ip, 1);
    let table = match spec.build_policy() {
        MaliciousAcl::K8s(p) => PolicyCompiler.compile_k8s(&p),
        MaliciousAcl::OpenStack(p) => PolicyCompiler.compile_security_group(&p),
        MaliciousAcl::Calico(p) => PolicyCompiler.compile_calico(&p),
    };
    sw.install_acl(pod_ip, table);
    let seq = CovertSequence::new(spec.build_target(pod_ip));
    let mut t = SimTime::from_millis(1);
    for p in seq.populate_packets() {
        process_one(&mut *sw, &p, t);
        t += SimTime::from_micros(100);
    }
    println!(
        "measured: {} masks / {} entries\n",
        sw.mask_count(),
        sw.megaflow_count()
    );

    // Print the decomposition, Fig. 2b style (up to a screenful). Only
    // the OVS pipeline has a mask space to decompose; for the others
    // the numbers above are the whole story.
    let Some(sw) = sw.as_vswitch() else {
        println!("({backend} has no megaflow mask decomposition to print)");
        return;
    };
    let mut rows: Vec<(String, String, String)> = sw
        .megaflows()
        .iter()
        .map(|(mk, entry)| {
            (
                format!("{:>15}", std::net::Ipv4Addr::from(mk.key().ip_src)),
                format!("{}", mk.mask()),
                entry.action.to_string(),
            )
        })
        .collect();
    rows.sort();
    println!("{:>15}  {:<60} action", "key(ip_src)", "mask");
    let shown = rows.len().min(40);
    for (k, m, a) in rows.iter().take(shown) {
        println!("{k}  {m:<60} {a}");
    }
    if rows.len() > shown {
        println!("… and {} more rows", rows.len() - shown);
    }
}
