//! Quickstart: inject the paper's ACL, feed it the covert sequence, and
//! watch the megaflow cache degenerate — on a single switch, no
//! simulator.
//!
//! ```sh
//! cargo run --example quickstart
//! cargo run --example quickstart -- exact_hash    # any pi_backend name
//! ```
//!
//! The optional argument selects the dataplane backend
//! (`ovs_cache` | `exact_hash` | `lpm_tier` | `nic_offload`); the
//! default is the paper's OVS pipeline. Running the same injection
//! against `exact_hash` shows a backend with no mask space to inflate.

use policy_injection::prelude::*;

fn main() {
    let backend = std::env::args()
        .nth(1)
        .map(|s| BackendKind::parse(&s).unwrap_or_else(|| panic!("unknown backend {s:?}")))
        .unwrap_or(BackendKind::OvsCache);

    // ── The cloud, as the CMS sees it ────────────────────────────────
    let mut cloud = Cloud::new();
    let attacker = cloud.add_tenant();
    let node = cloud.add_node();
    let pod = cloud.add_pod(attacker, node);
    let pod_ip = cloud.pod(pod).unwrap().ip;

    // ── Step 1: the "seemingly harmless" policy (paper §2) ───────────
    // Allow one backup host to reach one service port. Any reviewer
    // would approve it.
    let spec = AttackSpec::masks_512(PolicyDialect::Kubernetes);
    let acl = spec.build_policy();
    let compiled = acl.apply(&cloud, attacker, pod).expect("CMS accepts it");
    println!("policy accepted by the CMS: {} rules", compiled.table.len());
    println!(
        "predicted megaflow masks: {} (32 ip-prefix lengths × 16 port-prefix lengths)",
        spec.predicted_masks()
    );

    // ── Step 2: install at the hypervisor dataplane ──────────────────
    let dp = DpConfig {
        backend,
        ..DpConfig::default()
    };
    let mut switch = build_backend(dp, CostModel::default());
    println!("dataplane backend: {backend}");
    switch.attach_pod(pod_ip, compiled.vport);
    switch.install_acl(pod_ip, compiled.table);

    // ── Step 3: the adversarial packet sequence ──────────────────────
    let seq = CovertSequence::new(spec.build_target(pod_ip));
    println!(
        "covert populate pass: {} packets (~{:.1} s at 2 Mb/s of 64-byte frames)",
        seq.packet_count(),
        seq.packet_count() as f64 / 3906.0
    );
    let mut now = SimTime::from_millis(1);
    for pkt in seq.populate_packets() {
        process_one(&mut *switch, &pkt, now);
        now += SimTime::from_micros(256); // ≈ 3 906 pps
    }
    println!(
        "flow cache after the pass: {} masks, {} entries",
        switch.mask_count(),
        switch.megaflow_count()
    );

    // ── Step 4: what the cache walk now costs ────────────────────────
    let victim_like = process_one(&mut *switch, &seq.scan_packet(1), now);
    println!(
        "one fast-path lookup now probes {} subtables ({} cycles vs ~120 before)",
        victim_like.path.probes(),
        victim_like.cycles
    );

    // ── Step 5: would the defender have caught it? ───────────────────
    for o in switch.attribution().iter().filter(|o| o.masks >= 256) {
        println!(
            "attribution: pod {} carries {} masks over {} entries — evict its ACL",
            std::net::Ipv4Addr::from(o.ip_dst),
            o.masks,
            o.entries
        );
    }
    if backend == BackendKind::OvsCache {
        assert_eq!(switch.mask_count() as u64, spec.predicted_masks());
        println!("analytical model confirmed: {} masks", switch.mask_count());
    } else {
        println!(
            "{} masks on {backend}: this architecture has no tuple space to inflate",
            switch.mask_count()
        );
    }
}
