//! The paper's Fig. 3 scenario, compressed for interactive use: a
//! Kubernetes cluster with a Calico-capable CNI, a victim iperf at
//! ~1 Gb/s, and an 8192-mask policy injection whose covert stream starts
//! mid-run. Prints the victim-throughput and mask time series.
//!
//! ```sh
//! cargo run --release --example kubernetes_dos
//! ```
//! (The full 150 s reproduction lives in
//! `cargo run --release -p pi-bench --bin fig3_timeseries`.)

use policy_injection::prelude::*;

fn main() {
    let params = Fig3Params {
        duration: SimTime::from_secs(45),
        attack_start: SimTime::from_secs(15),
        ..Fig3Params::default()
    };
    println!(
        "running {}s Kubernetes scenario; Calico policy injected, covert stream starts at {}...",
        params.duration, params.attack_start
    );
    let (sim, handles) = fig3_scenario(&params);
    let report = sim.run();

    let victim = &report.throughput_bps[handles.victim_source];
    let masks = &report.masks[handles.attacked_node];
    let cpu = &report.cpu_util[handles.attacked_node];

    println!("\n— victim throughput (Gb/s) and megaflow masks —");
    let mut victim_gbps = TimeSeries::new("victim_gbps");
    for (t, v) in victim.iter() {
        victim_gbps.push(t, v / 1e9);
    }
    println!("{}", ascii_plot(&[&victim_gbps, masks], 72, 16));

    let before = victim.mean_between(SimTime::ZERO, params.attack_start) / 1e9;
    let after = victim.mean_between(
        params.attack_start + SimTime::from_secs(10),
        params.duration,
    ) / 1e9;
    println!("victim mean before attack : {before:.3} Gb/s");
    println!("victim mean during attack : {after:.3} Gb/s");
    println!(
        "degradation               : {:.1}% of baseline wiped out",
        (1.0 - after / before) * 100.0
    );
    println!(
        "masks on the server switch: {} (paper: 8192 + the victim's own)",
        masks.last().unwrap().1
    );
    println!(
        "server datapath CPU       : {:.0}% during attack",
        cpu.mean_between(params.attack_start + SimTime::from_secs(5), params.duration) * 100.0
    );
    let attack = &report.offered_bps[handles.attack_source];
    println!(
        "covert stream offered     : {:.2} Mb/s (the paper's 'low-bandwidth' budget)",
        attack.mean_between(params.attack_start, params.duration) / 1e6
    );
}
