//! Defenses side by side against the same 512-mask injection:
//! baseline / staged lookup / hit sorting / admission budget /
//! cache-less compiled datapath.
//!
//! ```sh
//! cargo run --release --example mitigation_comparison
//! ```

use pi_mitigation::{hit_sort_config, staged_config, CachelessSwitch, CompiledAcl};
use policy_injection::prelude::*;

const CPU: u64 = 1_200_000_000;
const TRIE_FIELDS: [Field; 4] = [Field::IpSrc, Field::IpDst, Field::TpSrc, Field::TpDst];

fn compile(spec: &AttackSpec) -> FlowTable {
    match spec.build_policy() {
        MaliciousAcl::K8s(p) => PolicyCompiler.compile_k8s(&p),
        MaliciousAcl::OpenStack(p) => PolicyCompiler.compile_security_group(&p),
        MaliciousAcl::Calico(p) => PolicyCompiler.compile_calico(&p),
    }
}

fn main() {
    let spec = AttackSpec::masks_512(PolicyDialect::Kubernetes);
    let mut out = CsvTable::new(&["defense", "masks", "attacked_capacity_pps", "vs_undefended"]);

    // Undefended baseline.
    let (_, undefended) = measure_capacity(DpConfig::default(), CPU, &spec, 1_000);
    out.push_row(&[
        "none".into(),
        undefended.masks.to_string(),
        format!("{:.0}", undefended.capacity_pps),
        "1.00x".into(),
    ]);

    // Staged lookup: cheaper failing probes, same walk length.
    let (_, staged) = measure_capacity(staged_config(DpConfig::default()), CPU, &spec, 1_000);
    out.push_row(&[
        "staged lookup".into(),
        staged.masks.to_string(),
        format!("{:.0}", staged.capacity_pps),
        format!("{:.2}x", staged.capacity_pps / undefended.capacity_pps),
    ]);

    // Hit-count sorting: the probe traffic itself is the hottest thing
    // here, so the scan subtable floats forward — good for the attacker
    // 's own flow, and for any hot victim; the covert *miss* path is
    // unaffected. Capacity probes measure the hot-flow case.
    let (_, sorted) = measure_capacity(hit_sort_config(DpConfig::default()), CPU, &spec, 5_000);
    out.push_row(&[
        "hit-count sorting".into(),
        sorted.masks.to_string(),
        format!("{:.0}", sorted.capacity_pps),
        format!("{:.2}x", sorted.capacity_pps / undefended.capacity_pps),
    ]);

    // Admission budget: the policy never gets installed.
    let decision = MaskBudget::default().check(&compile(&spec), &TRIE_FIELDS);
    out.push_row(&[
        "mask budget (admission)".into(),
        "n/a".into(),
        "policy rejected".into(),
        format!("{decision:?}"),
    ]);

    // Cache-less compiled datapath: cost bounded by the policy.
    let mut cacheless = CachelessSwitch::new();
    let pod_ip = 0x0a01_0042;
    cacheless.attach_pod(
        pod_ip,
        1,
        CompiledAcl::compile(&compile(&spec), Action::Deny),
    );
    let seq = CovertSequence::new(spec.build_target(pod_ip));
    for p in seq.populate_packets() {
        cacheless.process(&p);
    }
    let (p0, c0) = cacheless.totals();
    for n in 0..10_000 {
        cacheless.process(&seq.scan_packet(n));
    }
    let (p1, c1) = cacheless.totals();
    let avg = (c1 - c0) as f64 / (p1 - p0) as f64;
    let pps = CPU as f64 / avg;
    out.push_row(&[
        "cache-less compiled".into(),
        "0".into(),
        format!("{pps:.0}"),
        format!("{:.0}x", pps / undefended.capacity_pps),
    ]);

    println!("defenses vs the 512-mask K8s injection (probe workload = covert scans):\n");
    println!("{}", out.to_aligned_text());
    println!(
        "reading: heuristics attenuate constants; admission and compilation\n\
         remove the attack surface — the trade-offs §2's demo discussion names."
    );
}
