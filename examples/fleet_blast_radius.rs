//! Fleet-scale blast radius: how many co-located tenants and hosts does
//! one tenant's injected policy degrade?
//!
//! Builds a 4-host cluster, places 4 victim iperf services round-robin
//! and 2 attacker pods by adversarial co-location, injects the paper's
//! 8192-mask Calico policy through real CMS admission, and runs the
//! covert streams — then reports per-victim throughput retention and
//! the per-host mask/CPU footprint.
//!
//! Run with: `cargo run --release --example fleet_blast_radius`

use pi_core::SimTime;
use pi_fleet::{fleet_colocation, ColocationParams};
use pi_metrics::ascii_plot;

fn main() {
    let params = ColocationParams {
        hosts: 4,
        victims: 4,
        attackers: 2,
        attack_start: SimTime::from_secs(10),
        duration: SimTime::from_secs(30),
        workers: std::thread::available_parallelism()
            .map(|n| n.get().min(4))
            .unwrap_or(1),
        ..Default::default()
    };
    println!(
        "fleet_colocation: {} hosts, {} victims, {} attackers, attack at {} s, {} workers\n",
        params.hosts,
        params.victims,
        params.attackers,
        params.attack_start.as_secs_f64(),
        params.workers,
    );

    let (sim, handles) = fleet_colocation(&params);
    let report = sim.run();

    println!(
        "victim pods on hosts {:?}; attacker pods on hosts {:?}\n",
        handles.victim_hosts, handles.attacker_hosts
    );

    let blast = report.blast_radius(params.attack_start, &handles.victim_sources, 0.5, 100.0);
    println!("per-victim throughput retained across the attack start:");
    for (i, (src, ratio)) in blast.ratios.iter().enumerate() {
        let host = handles.victim_hosts[i];
        match ratio {
            Some(r) => println!(
                "  victim{i} (host {host}): {:6.1} %{}",
                r * 100.0,
                if *r < 0.5 { "   << degraded" } else { "" }
            ),
            None => println!("  victim{i} (host {host}): no pre-attack baseline (source {src})"),
        }
    }
    println!(
        "\nblast radius: {}/{} victims degraded (> 50 % loss), hosts with injected masks: {:?}",
        blast.degraded_sources.len(),
        handles.victim_sources.len(),
        blast.affected_hosts,
    );

    println!("\nper-host state at the end of the run:");
    for h in 0..report.hosts {
        println!(
            "  host {h}: masks = {:5.0}  megaflows = {:6.0}  mean CPU = {:4.0} %",
            report.masks[h].last().map(|(_, v)| v).unwrap_or(0.0),
            report.megaflows[h].last().map(|(_, v)| v).unwrap_or(0.0),
            report.cpu_util[h].mean() * 100.0,
        );
    }

    let total = report.aggregate_throughput(&handles.victim_sources, "victims_total_bps");
    println!("\naggregate victim throughput (bits/s):");
    println!("{}", ascii_plot(&[&total], 72, 14));
}
