//! # policy-injection — reproduction of *Policy Injection: A Cloud
//! Dataplane DoS Attack* (Csikor et al., SIGCOMM 2018)
//!
//! A tenant-side algorithmic-complexity attack on the cloud dataplane:
//! innocuous-looking ACLs, injected through the official CMS policy API
//! and fed with a 1–2 Mb/s covert packet stream, inflate the number of
//! distinct wildcard *masks* in Open vSwitch's megaflow cache. Tuple
//! Space Search probes one hash table per mask, **sequentially**, so a
//! few thousand masks turn every cache lookup into a linear scan and
//! the shared datapath core saturates — denying service to co-located
//! tenants.
//!
//! This crate is the facade over the workspace:
//!
//! | crate | role |
//! |---|---|
//! | [`pi_core`] | flow keys, wildcard masks, field model |
//! | [`pi_packet`] | Ethernet/IPv4/TCP/UDP wire formats |
//! | [`pi_classifier`] | flow tables, linear + tuple-space-search classifiers, prefix tries |
//! | [`pi_datapath`] | the OVS-like switch: EMC, megaflow cache, slow path, revalidator |
//! | [`pi_cms`] | tenants/pods + Kubernetes/OpenStack/Calico policy dialects |
//! | [`pi_traffic`] | victim and background workload generators |
//! | [`pi_attack`] | malicious ACLs, mask prediction, covert sequences, pacing |
//! | [`pi_mitigation`] | mask budgets, OVS heuristics, cache-less datapath, detection |
//! | [`pi_detect`] | telemetry taps, streaming detectors, closed-loop adaptive defense |
//! | [`pi_fault`] | deterministic fault injection, lossy control channels, at-least-once delivery + reconciliation |
//! | [`pi_metrics`] | time series, histograms, CSV, ASCII plots |
//! | [`pi_trace`] | deterministic structured tracing: causality ids, per-host event rings, Chrome/Prometheus exporters |
//! | [`pi_sim`] | the discrete-time two-node testbed of the paper's Fig. 1 |
//! | [`pi_fleet`] | sharded multi-host cluster simulator with parallel per-host workers |
//!
//! ## Quick start
//!
//! ```
//! use policy_injection::prelude::*;
//!
//! // The paper's §2 numbers, from the analytical model:
//! let spec = AttackSpec::masks_512(PolicyDialect::Kubernetes);
//! assert_eq!(spec.predicted_masks(), 512);
//! assert_eq!(AttackSpec::masks_8192().predicted_masks(), 8192);
//!
//! // And measured against the actual datapath:
//! let (baseline, attacked) = measure_capacity(
//!     DpConfig::default(),
//!     1_200_000_000,
//!     &spec,
//!     200,
//! );
//! assert_eq!(attacked.masks, 512);
//! assert!(attacked.capacity_pps < baseline.capacity_pps / 20.0);
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench` for the
//! binaries regenerating every figure and table of the paper.

pub use pi_attack;
pub use pi_classifier;
pub use pi_cms;
pub use pi_core;
pub use pi_datapath;
pub use pi_detect;
pub use pi_fault;
pub use pi_fleet;
pub use pi_metrics;
pub use pi_mitigation;
pub use pi_packet;
pub use pi_sim;
pub use pi_trace;
pub use pi_traffic;

/// The most common imports in one place.
pub mod prelude {
    pub use pi_attack::{
        predicted_mask_count, AttackSchedule, AttackSpec, CovertSequence, MaliciousAcl,
    };
    pub use pi_backend::{build_backend, process_one, DataplaneBackend};
    pub use pi_classifier::{Action, FlowTable, LinearClassifier, TupleSpaceSearch};
    pub use pi_cms::{
        CalicoPolicy, Cidr, Cloud, ControlPlane, ControlPlaneProgram, NetworkPolicy,
        PolicyCompiler, PolicyDialect, PolicyUpdate, SecurityGroup,
    };
    pub use pi_core::{Field, FlowKey, FlowMask, MaskedKey, Port, SimTime};
    pub use pi_datapath::{
        BackendKind, CostModel, DpConfig, PathTaken, PipelineMode, UpcallPipelineConfig,
        UpcallStats, VSwitch,
    };
    pub use pi_detect::{
        ControllerConfig, DefenseController, DefenseReport, DefenseState, DetectionEvent,
        DetectorConfig, TelemetryTap,
    };
    pub use pi_fault::{
        ChannelFaultConfig, FaultSchedule, NodeFaultReport, ReliabilityConfig, ReliableControlPlane,
    };
    pub use pi_fleet::{
        fleet_colocation, fleet_migration, BlastRadius, ClusterBuilder, ColocationParams,
        FleetBuilder, FleetConfig, FleetReport, MigrationParams,
    };
    pub use pi_metrics::{ascii_plot, CsvTable, Summary, TimeSeries};
    pub use pi_mitigation::{upcall_fair_share_config, CompiledAcl, MaskBudget};
    pub use pi_sim::{
        adaptive_defense_scenario, crash_recovery_scenario, fig3_scenario,
        measure_backend_capacity, measure_capacity, policy_churn_scenario,
        upcall_saturation_scenario, AdaptiveDefenseParams, CapacityWorkload, CrashRecoveryAttack,
        CrashRecoveryParams, DefenseMode, Fig3Params, PolicyChurnParams, SimBuilder, SimConfig,
        SimReport, UpcallSaturationParams,
    };
    pub use pi_trace::{
        chrome_trace_json, prometheus_snapshot, validate_json, CauseId, TraceConfig, TraceEvent,
        TraceEventKind, TraceReport, Tracer,
    };
    pub use pi_traffic::{
        CbrSource, ChurnSource, FanSource, IperfSource, PoissonFlowSource, TrafficSource,
    };
}
