# Workspace targets (`just`-style; plain make so it runs everywhere).

CARGO ?= cargo

.PHONY: build test audit audit-baseline fmt-check clippy bench bench-fleet bench-hotpath bench-upcall bench-detect bench-policy bench-backends bench-fault bench-check bench-compare bench-summary trace-forensics example-fleet clean

build:
	$(CARGO) build --release

# Tier-1 verification (ROADMAP.md).
test:
	$(CARGO) build --release && $(CARGO) test -q

# Workspace invariant linter: determinism / hot-path allocation /
# panic-surface ratchet / cost accounting / workspace-lints opt-in.
# Exit 1 on any new violation or a stale audit_baseline.json entry.
audit:
	$(CARGO) run --release -p pi_audit -- --check

# Tighten the ratchet after a burn-down (counts may only decrease).
audit-baseline:
	$(CARGO) run --release -p pi_audit -- --write-baseline

fmt-check:
	$(CARGO) fmt --check

clippy:
	$(CARGO) clippy --workspace --all-targets -- -D warnings

# Dependency-free microbenchmarks of the attack's mechanisms.
bench:
	$(CARGO) bench -p pi_bench

# Fleet scaling sweep (hosts x workers); writes BENCH_fleet.json and
# results/fleet_scaling.csv. Needs >= 4 cores to show the 2x+ worker
# scaling target.
bench-fleet:
	$(CARGO) run --release -p pi_bench --bin fleet_scaling

# Per-packet pipeline throughput (single worker): pps, avg subtable
# probes, EMC hit rate; writes BENCH_hotpath.json. See README
# "Performance" for the before/after methodology.
bench-hotpath:
	$(CARGO) run --release -p pi_bench --bin hotpath

# Handler-saturation sweep: victim pps / upcall drop rate / install
# latency under inline vs bounded vs fair-share slow paths; writes
# BENCH_upcall.json. See README "Slow-path pipeline".
bench-upcall:
	$(CARGO) run --release -p pi_bench --bin upcall_saturation

# Closed-loop defense sweep: time-to-detect, victim recovery and
# benign false positives under none / static / adaptive defenses;
# writes BENCH_detect.json. See README "Online detection & adaptive
# defense".
bench-detect:
	$(CARGO) run --release -p pi_bench --bin detection_roc

# Control-plane churn sweep: benign updates vs the zero-packet
# policy-flap flush storm vs the scoped-invalidation ablation; writes
# BENCH_policy.json. See README "Control-plane churn".
bench-policy:
	$(CARGO) run --release -p pi_bench --bin policy_churn

# Cross-backend immunity matrix: {backend x attack x defense} cells
# with retained-capacity ratios over all four dataplane backends;
# writes BENCH_backends.json. See README "Dataplane backends".
bench-backends:
	$(CARGO) run --release -p pi_bench --bin backend_matrix

# Crash-recovery matrix: {crash} x {policy_flap, upcall_flood} x
# {fire-and-forget, retry+reconcile} — wrong verdicts, recovery time
# and retry cost; writes BENCH_fault.json. See README "Fault injection
# & recovery".
bench-fault:
	$(CARGO) run --release -p pi_bench --bin fault_matrix

# Static regression gate over the checked-in BENCH_*.json headline
# cells (no benches are re-run), including the tracing-overhead gate
# on the hotpath trace_off/trace_on rows.
bench-check:
	$(CARGO) run --release -p pi_bench --bin bench_check

# Fresh-vs-committed artefact diff with per-cell tolerances: re-runs
# the deterministic policy-churn bench into a scratch dir and compares
# every cell against the committed artefact. Exit 1 on regression.
bench-compare:
	mkdir -p /tmp/pi_fresh
	PI_BENCH_POLICY_OUT=/tmp/pi_fresh/BENCH_policy.json \
		$(CARGO) run --release -p pi_bench --bin policy_churn
	$(CARGO) run --release -p pi_bench --bin bench_check -- --against /tmp/pi_fresh

# Markdown results index (results/summary.md): the normalized hot-path
# throughput trajectory plus every artefact's headline cell.
bench-summary:
	$(CARGO) run --release -p pi_bench --bin bench_summary

# Traced policy-flap forensics: proves the causal chain (policy update
# -> cache flush -> attributed rebuild storm -> PolicyChurn detection)
# and writes results/trace_policy_flap.{json,prom}.
trace-forensics:
	$(CARGO) run --release -p pi_bench --bin trace_forensics

example-fleet:
	$(CARGO) run --release --example fleet_blast_radius

clean:
	$(CARGO) clean
