# Workspace targets (`just`-style; plain make so it runs everywhere).

CARGO ?= cargo

.PHONY: build test clippy bench bench-fleet bench-hotpath example-fleet clean

build:
	$(CARGO) build --release

# Tier-1 verification (ROADMAP.md).
test:
	$(CARGO) build --release && $(CARGO) test -q

clippy:
	$(CARGO) clippy --workspace --all-targets -- -D warnings

# Dependency-free microbenchmarks of the attack's mechanisms.
bench:
	$(CARGO) bench -p pi_bench

# Fleet scaling sweep (hosts x workers); writes BENCH_fleet.json and
# results/fleet_scaling.csv. Needs >= 4 cores to show the 2x+ worker
# scaling target.
bench-fleet:
	$(CARGO) run --release -p pi_bench --bin fleet_scaling

# Per-packet pipeline throughput (single worker): pps, avg subtable
# probes, EMC hit rate; writes BENCH_hotpath.json. See README
# "Performance" for the before/after methodology.
bench-hotpath:
	$(CARGO) run --release -p pi_bench --bin hotpath

example-fleet:
	$(CARGO) run --release --example fleet_blast_radius

clean:
	$(CARGO) clean
