//! The tracing layer's two load-bearing guarantees, end to end:
//!
//! 1. **Determinism.** With tracing enabled, a fleet run under faults,
//!    a lossy-but-reliable control plane, and an adaptive defense
//!    exports **byte-identical** Chrome trace JSON and Prometheus
//!    snapshots for 1, 2, and 4 workers — the crown-jewel worker-count
//!    invariance extends to the trace.
//! 2. **Invisibility.** Tracing (enabled or disabled) never changes
//!    the physics: the traced run's report matches the untraced run's
//!    cell for cell, and a default (disabled) run records nothing.
//!
//! Plus the engine self-profiling surface: `SimReport::engine` agrees
//! between the event-driven and tick-stepped single-host engines.

use policy_injection::pi_cms::{IngressRule, Protocol};
use policy_injection::prelude::*;

/// One fleet cell with everything the tracer instruments: a flapping
/// attacker and a defended victim on host 0 (which also crashes
/// mid-flap), a reliable control plane pushing updates through a
/// lossy, duplicating, reordering channel on host 1, and bystander
/// traffic on host 2.
fn run_fleet(workers: usize, trace: TraceConfig) -> FleetReport {
    let mut b = FleetBuilder::new(FleetConfig {
        sim: SimConfig {
            duration: SimTime::from_secs(6),
            trace,
            ..SimConfig::default()
        },
        workers,
    });
    let clients = 256usize;
    let victim_ip = u32::from_be_bytes([10, 0, 0, 10]);
    let attacker_ip = u32::from_be_bytes([10, 0, 0, 66]);
    let far_ip = u32::from_be_bytes([10, 1, 0, 10]);
    for _ in 0..3 {
        b.add_host(DpConfig::default());
    }
    b.add_pod(0, victim_ip);
    b.add_pod(0, attacker_ip);
    b.add_pod(1, far_ip);

    let client_ip = |i: usize| [10, 2, (i >> 8) as u8, (i & 0xff) as u8];
    let victim_policy = NetworkPolicy {
        name: "victim-peers".into(),
        ingress: vec![IngressRule {
            from: (0..clients).map(|i| Cidr::host(client_ip(i))).collect(),
            ports: vec![(Protocol::Tcp, Some(5201))],
        }],
    };
    b.install_acl(victim_ip, PolicyCompiler.compile_k8s(&victim_policy));
    let attacker_table = PolicyCompiler.compile_k8s(&NetworkPolicy {
        name: "attacker".into(),
        ingress: vec![IngressRule {
            from: vec![Cidr::new(u32::from_be_bytes([10, 0, 0, 0]), 8).unwrap()],
            ports: vec![(Protocol::Tcp, Some(8080))],
        }],
    });
    b.install_acl(attacker_ip, attacker_table.clone());

    // Host 0: the flap train, an adaptive defense watching it, and a
    // crash in the middle of the attack.
    b.attach_control_plane(
        0,
        AttackSchedule::policy_flap(
            attacker_ip,
            &attacker_table,
            SimTime::from_secs(2),
            SimTime::from_secs(6),
            SimTime::from_millis(20),
        ),
    );
    b.attach_defense(0, DefenseController::with_defaults());
    b.attach_faults(
        0,
        FaultSchedule::new().crash(SimTime::from_secs(3), SimTime::from_millis(300)),
    );

    // Host 1: benign ACL churn delivered at-least-once through a lossy
    // channel, repaired by retries and reconciliation.
    b.attach_faults(
        1,
        FaultSchedule::new().channel(ChannelFaultConfig {
            drop_p: 0.2,
            dup_p: 0.1,
            delay: SimTime::from_millis(2),
            jitter: SimTime::from_millis(5),
            seed: 7,
        }),
    );
    let far_table = PolicyCompiler.compile_k8s(&NetworkPolicy {
        name: "far".into(),
        ingress: vec![IngressRule {
            from: vec![Cidr::new(u32::from_be_bytes([10, 2, 0, 0]), 16).unwrap()],
            ports: vec![(Protocol::Tcp, Some(80))],
        }],
    });
    let mut program = ControlPlaneProgram::new();
    for i in 0..8u64 {
        program.install_acl(
            SimTime::from_millis(500 + 600 * i),
            far_ip,
            far_table.clone(),
        );
    }
    b.attach_reliable_control_plane(1, program, ReliabilityConfig::default());

    // Victim fan from host 1, bystander chatter from host 2.
    let keys: Vec<FlowKey> = (0..clients)
        .map(|i| FlowKey::tcp(client_ip(i), [10, 0, 0, 10], 41_000 + i as u16, 5201))
        .collect();
    b.add_source(
        1,
        Box::new(FanSource::new(keys, 400, 20_000.0).named("victim")),
    );
    let key = FlowKey::tcp([10, 2, 9, 9], [10, 1, 0, 10], 1000, 80);
    b.add_source(2, Box::new(CbrSource::new(key, 800, 500.0)));
    b.build().run()
}

/// The physics fingerprint: every report component except the trace
/// and the per-worker engine profiles (which describe the harness).
fn physics(r: &FleetReport) -> String {
    format!(
        "{:?}\n{:?}\n{:?}\n{:?}\n{:?}\n{:?}\n{:?}\n{:?}\n{:?}",
        r.source_totals,
        r.throughput_bps,
        r.masks,
        r.megaflows,
        r.cpu_util,
        r.control_cps,
        r.switch_stats,
        r.policy_updates,
        r.faults,
    )
}

#[test]
fn traced_exports_are_byte_identical_for_1_2_and_4_workers() {
    let runs: Vec<FleetReport> = [1, 2, 4]
        .iter()
        .map(|&w| run_fleet(w, TraceConfig::enabled()))
        .collect();
    let chrome: Vec<String> = runs.iter().map(|r| chrome_trace_json(&r.trace)).collect();
    let prom: Vec<String> = runs.iter().map(|r| prometheus_snapshot(&r.trace)).collect();
    validate_json(&chrome[0]).expect("chrome export parses");
    assert_eq!(
        chrome[0], chrome[1],
        "1 vs 2 workers: chrome export differs"
    );
    assert_eq!(
        chrome[0], chrome[2],
        "1 vs 4 workers: chrome export differs"
    );
    assert_eq!(
        prom[0], prom[1],
        "1 vs 2 workers: prometheus snapshot differs"
    );
    assert_eq!(
        prom[0], prom[2],
        "1 vs 4 workers: prometheus snapshot differs"
    );

    // The trace is not vacuous: every instrumented subsystem appears.
    let trace = &runs[0].trace;
    assert!(trace.events.len() > 1_000, "events: {}", trace.events.len());
    let count = |name: &str| {
        trace
            .events
            .iter()
            .filter(|e| e.kind.name() == name)
            .count()
    };
    assert!(count("policy_update") > 100, "flap train traced");
    assert!(count("cache_flush") > 100, "flushes traced");
    assert!(count("batch_window") > 0, "fast path traced");
    assert_eq!(count("crash"), 1, "the crash traced");
    assert!(count("reconcile") > 0, "reconciliation traced");
    assert!(count("control_channel") > 0, "lossy channel traced");
    // And the causal chain is populated: flushes carry the causing
    // update's id.
    assert!(
        trace
            .events
            .iter()
            .any(|e| e.kind.name() == "cache_flush" && e.cause.is_some()),
        "flushes must carry causality ids"
    );
}

#[test]
fn tracing_is_invisible_to_the_physics() {
    let untraced = run_fleet(2, TraceConfig::default());
    let traced = run_fleet(2, TraceConfig::enabled());
    assert_eq!(
        physics(&untraced),
        physics(&traced),
        "enabling tracing changed simulation results"
    );
    // Disabled tracing records nothing at all.
    assert!(untraced.trace.is_empty());
    assert_eq!(untraced.trace.dropped, 0);
    assert!(!traced.trace.is_empty());
}

#[test]
fn sim_engine_stats_agree_between_event_driven_and_stepped() {
    let run = |event_driven: bool| {
        let params = PolicyChurnParams {
            duration: SimTime::from_secs(4),
            attack_start: SimTime::from_secs(1),
            ..Default::default()
        };
        let (mut sim, _handles) = policy_churn_scenario(&params);
        sim.set_event_driven(event_driven);
        sim.run()
    };
    let event = run(true);
    let stepped = run(false);
    assert_eq!(stepped.engine.shard_ticks_skipped, 0);
    assert_eq!(
        stepped.engine.shard_ticks_stepped,
        event.engine.shard_ticks_stepped + event.engine.shard_ticks_skipped,
        "the engines must account for every tick"
    );
    assert_eq!(
        event.engine.events_processed, stepped.engine.events_processed,
        "both engines must agree on the work done"
    );
    // Engine choice is an execution detail: the physics agree too.
    assert_eq!(
        format!("{:?}", event.switch_stats),
        format!("{:?}", stepped.switch_stats)
    );
    assert_eq!(
        format!("{:?}", event.source_totals),
        format!("{:?}", stepped.source_totals)
    );
    // Both reports ran untraced: the trace is empty, not absent.
    assert!(event.trace.is_empty() && stepped.trace.is_empty());
}
