//! Differential test: the `OvsCache` backend adapter is **bit-identical**
//! to the direct [`VSwitch`] path.
//!
//! `pi_backend` promises that putting the OVS pipeline behind
//! `Box<dyn DataplaneBackend>` (which is how every simulator node now
//! drives it) changes nothing — not verdicts, not paths, not cycle
//! accounting, not cache dynamics, not telemetry. These tests replay
//! the same scripted workloads through both call surfaces and compare
//! every observable event, Debug-rendered so any divergence fails with
//! the first differing event in context.
//!
//! Two workloads cover the two scenario families the repo's benches are
//! built on: the fig3-style tuple-space injection (inline pipeline,
//! policy updates mid-run, revalidator sweeps) and the
//! upcall-saturation flood (bounded pipeline, handler drains, quota
//! flips, quarantine). A third test pins the fleet engine's
//! worker-count determinism for the *non*-OVS backends, which replay
//! node shards across threads.

use pi_attack::AttackSpec;
use pi_backend::{build_backend, DataplaneBackend};
use pi_cms::{Cidr, IngressRule, NetworkPolicy, PolicyCompiler, PolicyDialect, Protocol};
use pi_core::{FlowKey, SimTime};
use pi_datapath::{DpConfig, PipelineMode, UpcallPipelineConfig, VSwitch};

const VICTIM_IP: [u8; 4] = [10, 1, 0, 10];
const ATTACKER_IP: [u8; 4] = [10, 1, 0, 66];

fn victim_policy() -> NetworkPolicy {
    NetworkPolicy {
        name: "victim-iperf".into(),
        ingress: vec![IngressRule {
            from: vec![Cidr::new(u32::from_be_bytes([10, 0, 0, 0]), 8).unwrap()],
            ports: vec![(Protocol::Tcp, Some(5201))],
        }],
    }
}

fn malicious_table() -> pi_classifier::FlowTable {
    let spec = AttackSpec::masks_512(PolicyDialect::Kubernetes);
    match spec.build_policy() {
        pi_attack::MaliciousAcl::K8s(p) => PolicyCompiler.compile_k8s(&p),
        pi_attack::MaliciousAcl::OpenStack(p) => PolicyCompiler.compile_security_group(&p),
        pi_attack::MaliciousAcl::Calico(p) => PolicyCompiler.compile_calico(&p),
    }
}

/// The scripted operations both drivers replay.
enum Op {
    Batch(Vec<FlowKey>, SimTime),
    Drain(SimTime),
    Revalidate(SimTime),
    ReinstallAttackerAcl,
    SetQuota(Option<u32>),
    Quarantine(u32),
    Release(u32),
}

/// The fig3-style workload: victim iperf + covert populate/scan stream
/// on the inline pipeline, with a mid-run policy re-install (the flush)
/// and revalidator sweeps.
fn fig3_ops() -> Vec<Op> {
    let spec = AttackSpec::masks_512(PolicyDialect::Kubernetes);
    let seq = pi_attack::CovertSequence::new(spec.build_target(u32::from_be_bytes(ATTACKER_IP)));
    let victim = |p: u16| FlowKey::tcp([10, 0, 0, 10], VICTIM_IP, 40_000 + p, 5201);
    let mut ops = Vec::new();
    let mut populate = seq.populate_packets();
    let mut scan_n = 0u64;
    for step in 0u64..400 {
        let now = SimTime::from_millis(10 * step);
        let mut batch = Vec::new();
        // Steady victim traffic: an established flow plus light churn.
        batch.push(victim(0));
        batch.push(victim((step % 64) as u16));
        // The covert stream: populate first, then unique scans.
        for _ in 0..4 {
            match populate.next() {
                Some(pkt) => batch.push(pkt),
                None => {
                    batch.push(seq.scan_packet(scan_n));
                    scan_n += 1;
                }
            }
        }
        ops.push(Op::Batch(batch, now));
        if step % 100 == 99 {
            ops.push(Op::Revalidate(now));
        }
        if step == 250 {
            // The policy flap: re-install the attacker's ACL (a global
            // flush on the default config).
            ops.push(Op::ReinstallAttackerAcl);
        }
    }
    ops
}

/// The saturation-style workload: a unique-destination flood and victim
/// churn on the bounded pipeline, with handler drains every step, a
/// mid-run quota flip and a quarantine/release pair.
fn saturation_ops() -> Vec<Op> {
    let victim_conn = |n: u64| {
        FlowKey::tcp(
            [10, 2, (n >> 8) as u8, (n & 0xff) as u8],
            VICTIM_IP,
            30_000 + (n % 16_000) as u16,
            5201,
        )
    };
    let flood = |n: u64| {
        FlowKey::tcp(
            [10, 9, 0, 1],
            [10, 200, (n >> 8) as u8, (n & 0xff) as u8],
            7_777,
            80,
        )
    };
    let mut ops = Vec::new();
    let mut flood_n = 0u64;
    for step in 0u64..300 {
        let now = SimTime::from_millis(5 * step);
        let mut batch = Vec::new();
        for _ in 0..8 {
            batch.push(flood(flood_n));
            flood_n += 1;
        }
        batch.push(victim_conn(step));
        ops.push(Op::Batch(batch, now));
        ops.push(Op::Drain(now));
        if step == 100 {
            ops.push(Op::SetQuota(Some(8)));
        }
        if step == 200 {
            ops.push(Op::Quarantine(u32::from_be_bytes(ATTACKER_IP)));
        }
        if step == 250 {
            ops.push(Op::Release(u32::from_be_bytes(ATTACKER_IP)));
        }
        if step % 50 == 49 {
            ops.push(Op::Revalidate(now));
        }
    }
    ops
}

/// Replays `ops` against the **direct** `VSwitch` surface, recording
/// every observable as a Debug-rendered event.
fn drive_direct(dp: DpConfig, ops: &[Op]) -> Vec<String> {
    let mut sw = VSwitch::new(dp);
    sw.attach_pod(u32::from_be_bytes(VICTIM_IP), 1);
    sw.attach_pod(u32::from_be_bytes(ATTACKER_IP), 2);
    sw.install_acl(
        u32::from_be_bytes(VICTIM_IP),
        PolicyCompiler.compile_k8s(&victim_policy()),
    );
    sw.install_acl(u32::from_be_bytes(ATTACKER_IP), malicious_table());
    let mut trace = Vec::new();
    for op in ops {
        match op {
            Op::Batch(keys, now) => {
                let mut events = Vec::new();
                let n = VSwitch::process_batch(&mut sw, keys, *now, |i, o| {
                    events.push(format!("{i} {o:?}"));
                    true
                });
                trace.push(format!("batch n={n}"));
                trace.extend(events);
            }
            Op::Drain(now) => {
                let mut events = Vec::new();
                let n = VSwitch::drain_upcalls(&mut sw, *now, |r| events.push(format!("{r:?}")));
                trace.push(format!("drain n={n}"));
                trace.extend(events);
            }
            Op::Revalidate(now) => {
                VSwitch::revalidate(&mut sw, *now);
                trace.push(format!(
                    "reval masks={} megaflows={}",
                    sw.mask_count(),
                    sw.megaflow_count()
                ));
            }
            Op::ReinstallAttackerAcl => {
                let out = sw.apply_install_acl(u32::from_be_bytes(ATTACKER_IP), malicious_table());
                trace.push(format!("reinstall {out:?}"));
            }
            Op::SetQuota(q) => {
                trace.push(format!("quota {}", sw.set_port_quota(*q)));
            }
            Op::Quarantine(ip) => {
                trace.push(format!("quarantine {}", sw.quarantine(*ip)));
            }
            Op::Release(ip) => {
                trace.push(format!("release {}", sw.release_quarantine(*ip)));
            }
        }
    }
    trace.push(format!("stats {:?}", sw.stats()));
    trace.push(format!("emc {:?}", sw.emc_stats()));
    trace.push(format!("upcall {:?}", sw.upcall_stats()));
    trace.push(format!(
        "cache masks={} megaflows={} depth={}",
        sw.mask_count(),
        sw.megaflow_count(),
        sw.upcall_queue_depth()
    ));
    trace.push(format!("attr {:?}", pi_mitigation::attribute_masks(&sw)));
    trace
}

/// Replays `ops` against the **boxed trait** surface the simulators use.
fn drive_boxed(dp: DpConfig, ops: &[Op]) -> Vec<String> {
    let mut be = build_backend(dp, pi_datapath::CostModel::default());
    assert!(be.as_vswitch().is_some(), "OvsCache downcasts to VSwitch");
    be.attach_pod(u32::from_be_bytes(VICTIM_IP), 1);
    be.attach_pod(u32::from_be_bytes(ATTACKER_IP), 2);
    be.install_acl(
        u32::from_be_bytes(VICTIM_IP),
        PolicyCompiler.compile_k8s(&victim_policy()),
    );
    be.install_acl(u32::from_be_bytes(ATTACKER_IP), malicious_table());
    let be: &mut dyn DataplaneBackend = &mut *be;
    let mut trace = Vec::new();
    for op in ops {
        match op {
            Op::Batch(keys, now) => {
                let mut events = Vec::new();
                let n = be.process_batch(keys, *now, &mut |i, o| {
                    events.push(format!("{i} {o:?}"));
                    true
                });
                trace.push(format!("batch n={n}"));
                trace.extend(events);
            }
            Op::Drain(now) => {
                let mut events = Vec::new();
                let n = be.drain_upcalls(*now, &mut |r| events.push(format!("{r:?}")));
                trace.push(format!("drain n={n}"));
                trace.extend(events);
            }
            Op::Revalidate(now) => {
                be.revalidate(*now);
                trace.push(format!(
                    "reval masks={} megaflows={}",
                    be.mask_count(),
                    be.megaflow_count()
                ));
            }
            Op::ReinstallAttackerAcl => {
                let out = be.apply_install_acl(u32::from_be_bytes(ATTACKER_IP), malicious_table());
                trace.push(format!("reinstall {out:?}"));
            }
            Op::SetQuota(q) => {
                trace.push(format!("quota {}", be.set_port_quota(*q)));
            }
            Op::Quarantine(ip) => {
                trace.push(format!("quarantine {}", be.quarantine(*ip)));
            }
            Op::Release(ip) => {
                trace.push(format!("release {}", be.release_quarantine(*ip)));
            }
        }
    }
    trace.push(format!("stats {:?}", be.stats()));
    trace.push(format!("emc {:?}", be.emc_stats()));
    trace.push(format!("upcall {:?}", be.upcall_stats()));
    trace.push(format!(
        "cache masks={} megaflows={} depth={}",
        be.mask_count(),
        be.megaflow_count(),
        be.upcall_queue_depth()
    ));
    trace.push(format!("attr {:?}", be.attribution()));
    trace
}

fn assert_identical(direct: &[String], boxed: &[String]) {
    for (i, (d, b)) in direct.iter().zip(boxed.iter()).enumerate() {
        assert_eq!(d, b, "first divergence at event {i}");
    }
    assert_eq!(direct.len(), boxed.len(), "trace lengths differ");
}

#[test]
fn ovs_adapter_is_bit_identical_on_the_fig3_workload() {
    let dp = DpConfig::default();
    let ops = fig3_ops();
    let direct = drive_direct(dp.clone(), &ops);
    let boxed = drive_boxed(dp, &ops);
    assert_identical(&direct, &boxed);
    // The workload actually exercised the attacked pipeline: masks
    // exploded and the mid-run flush happened.
    assert!(direct.iter().any(|e| e.starts_with("reinstall")));
    assert!(
        direct.last().unwrap().contains("ip_dst"),
        "attribution populated: {}",
        direct.last().unwrap()
    );
}

#[test]
fn ovs_adapter_is_bit_identical_on_the_saturation_workload() {
    let dp = DpConfig {
        flow_limit: 512,
        pipeline: PipelineMode::Bounded(UpcallPipelineConfig {
            queue_capacity: 64,
            handler_cycles_per_step: 400_000,
            port_quota_per_step: None,
        }),
        ..DpConfig::default()
    };
    let ops = saturation_ops();
    let direct = drive_direct(dp.clone(), &ops);
    let boxed = drive_boxed(dp, &ops);
    assert_identical(&direct, &boxed);
    // The bounded pipeline was actually saturated and drained.
    assert!(direct
        .iter()
        .any(|e| e.starts_with("drain") && e != "drain n=0"));
}

#[test]
fn fleet_worker_count_is_deterministic_for_every_backend() {
    use pi_datapath::BackendKind;
    use pi_fleet::{FleetBuilder, FleetConfig};
    use pi_sim::SimConfig;
    use pi_traffic::CbrSource;

    let run = |workers: usize| {
        let cfg = FleetConfig {
            sim: SimConfig {
                duration: SimTime::from_secs(3),
                ..SimConfig::default()
            },
            workers,
        };
        let mut b = FleetBuilder::new(cfg);
        // One host per backend kind; ring traffic between them.
        let kinds = BackendKind::ALL;
        for (i, kind) in kinds.iter().enumerate() {
            let dp = DpConfig {
                backend: *kind,
                ..DpConfig::default()
            };
            let host = b.add_host(dp);
            b.add_pod(host, u32::from_be_bytes([10, i as u8, 0, 1]));
        }
        for i in 0..kinds.len() as u8 {
            let next = (i + 1) % kinds.len() as u8;
            let key = FlowKey::tcp([10, i, 0, 1], [10, next, 0, 1], 1000 + i as u16, 80);
            b.add_source(i as usize, Box::new(CbrSource::new(key, 800, 500.0)));
        }
        b.build().run()
    };
    let one = run(1);
    let four = run(4);
    assert_eq!(one.source_totals, four.source_totals);
    assert_eq!(one.switch_stats, four.switch_stats);
    assert_eq!(
        format!("{:?}", one.upcall_stats),
        format!("{:?}", four.upcall_stats)
    );
    // Every backend actually carried traffic.
    for (i, stats) in one.switch_stats.iter().enumerate() {
        assert!(stats.packets > 0, "host {i} idle: {stats:?}");
    }
}
