//! Multi-pod amplification, model vs. live datapath: identical ACL
//! shapes share masks (entries add); distinct field shapes add masks.

use pi_attack::MultiPodAttack;
use policy_injection::prelude::*;

fn compile(spec: &AttackSpec) -> FlowTable {
    match spec.build_policy() {
        MaliciousAcl::K8s(p) => PolicyCompiler.compile_k8s(&p),
        MaliciousAcl::OpenStack(p) => PolicyCompiler.compile_security_group(&p),
        MaliciousAcl::Calico(p) => PolicyCompiler.compile_calico(&p),
    }
}

fn run_campaign(attack: &MultiPodAttack) -> (usize, usize) {
    let mut sw = VSwitch::new(DpConfig::default());
    for (i, (ip, spec)) in attack.specs.iter().enumerate() {
        sw.attach_pod(*ip, i as u32 + 1);
        sw.install_acl(*ip, compile(spec));
    }
    let mut t = SimTime::from_millis(1);
    for (ip, spec) in &attack.specs {
        let seq = CovertSequence::new(spec.build_target(*ip));
        for p in seq.populate_packets() {
            sw.process(&p, t);
            t += SimTime::from_micros(20);
        }
    }
    (sw.mask_count(), sw.megaflow_count())
}

#[test]
fn identical_acls_share_masks_entries_add() {
    let pods: Vec<u32> = (1..=4u32)
        .map(|i| u32::from_be_bytes([10, 1, 1, i as u8]))
        .collect();
    let attack = MultiPodAttack::uniform(&pods, AttackSpec::masks_512(PolicyDialect::Kubernetes));
    let (masks, entries) = run_campaign(&attack);
    assert_eq!(masks as u64, attack.predicted_masks(), "masks shared");
    assert_eq!(masks, 512);
    assert_eq!(entries as u64, attack.predicted_entries(), "entries add");
    assert_eq!(entries, 4 * 33 * 17);
}

#[test]
fn mixed_field_shapes_add_masks() {
    let mut attack = MultiPodAttack::uniform(
        &[u32::from_be_bytes([10, 1, 1, 1])],
        AttackSpec::masks_512(PolicyDialect::Kubernetes),
    );
    attack
        .specs
        .push((u32::from_be_bytes([10, 1, 1, 2]), AttackSpec::masks_8192()));
    let (masks, _) = run_campaign(&attack);
    assert_eq!(masks as u64, attack.predicted_masks());
    assert_eq!(masks, 512 + 8192, "disjoint shapes union");
}

#[test]
fn attribution_still_separates_multi_pod_campaigns() {
    let pods: Vec<u32> = (1..=3u32)
        .map(|i| u32::from_be_bytes([10, 1, 1, i as u8]))
        .collect();
    let attack = MultiPodAttack::uniform(&pods, AttackSpec::masks_512(PolicyDialect::Kubernetes));
    let mut sw = VSwitch::new(DpConfig::default());
    for (i, (ip, spec)) in attack.specs.iter().enumerate() {
        sw.attach_pod(*ip, i as u32 + 1);
        sw.install_acl(*ip, compile(spec));
    }
    let mut t = SimTime::from_millis(1);
    for (ip, spec) in &attack.specs {
        let seq = CovertSequence::new(spec.build_target(*ip));
        for p in seq.populate_packets() {
            sw.process(&p, t);
            t += SimTime::from_micros(20);
        }
    }
    // Each pod is individually over a 256-mask threshold even though
    // the masks are shared — attribution counts per-destination masks,
    // the deployable eviction signal.
    let offenders = pi_mitigation::detect_offenders(&sw, 256);
    assert_eq!(offenders.len(), 3, "every attacking pod is named");
    for o in &offenders {
        assert_eq!(o.masks, 512);
        assert!(pods.contains(&o.ip_dst));
    }
}
