//! Integration tests for the `pi_detect` closed loop: controller
//! hysteresis at threshold boundaries, zero false positives on the
//! fig3 benign phase, detection + recovery on the fig3 mask-inflation
//! attack, and runtime-config-mutation equivalence on the datapath.

use pi_detect::TelemetrySample;
use pi_sim::fig3_scenario;
use policy_injection::prelude::*;

// ---------------------------------------------------------------
// Controller hysteresis: no flapping at threshold ± epsilon.
// ---------------------------------------------------------------

fn drop_sample(at_ms: u64, drops: u64) -> TelemetrySample {
    TelemetrySample {
        at: SimTime::from_millis(at_ms),
        packets: 1_000,
        avg_probe_depth: 1.0,
        mask_count: 4,
        mask_growth: 0,
        emc_thrash: 0.0,
        upcalls: 10,
        upcall_backlog: 0,
        upcall_drops: drops,
        policy_updates: 0,
        cache_flushes: 0,
        top_offenders: vec![],
    }
}

#[test]
fn controller_does_not_flap_at_threshold_boundaries() {
    // The drop-rate signal's arming floor is abs_min = 4 drops/sample
    // (baseline 0 after a quiet warm-up). Oscillating one epsilon above
    // and below that boundary must produce exactly one escalation: the
    // off-threshold sits strictly below the on-threshold, so the
    // latched alarm never bounces, and the state machine's
    // confirm/quiet streaks absorb what the comparator lets through.
    let mut c = DefenseController::new(ControllerConfig::default());
    let mut t = 0u64;
    let mut feed = |c: &mut DefenseController, drops: u64| {
        t += 1;
        c.observe(&drop_sample(t, drops), None);
    };
    for _ in 0..10 {
        feed(&mut c, 0); // warm-up + quiet baseline
    }
    assert_eq!(c.state(), DefenseState::Idle);
    for i in 0..100 {
        let drops = if i % 2 == 0 { 5 } else { 3 }; // 4 ± 1
        feed(&mut c, drops);
    }
    assert_eq!(
        c.state(),
        DefenseState::Mitigating,
        "boundary load is an alarm, held without flapping"
    );
    assert_eq!(c.report().activations, 1, "exactly one escalation");
    // The timeline is Idle→Suspect→Mitigating and then silence — no
    // oscillation entries.
    let states: Vec<(DefenseState, DefenseState)> = c
        .report()
        .timeline
        .iter()
        .map(|tr| (tr.from, tr.to))
        .collect();
    assert_eq!(
        states,
        vec![
            (DefenseState::Idle, DefenseState::Suspect),
            (DefenseState::Suspect, DefenseState::Mitigating),
        ]
    );
}

// ---------------------------------------------------------------
// Zero false positives on the fig3 benign phase.
// ---------------------------------------------------------------

#[test]
fn fig3_benign_phase_yields_zero_false_positives() {
    // The fig3 workload with the covert stream pushed past the end of
    // the run: victim iperf + Poisson background chatter only. Both
    // nodes carry a default-tuned controller; neither may ever leave
    // Idle or log a detection.
    let params = pi_sim::Fig3Params {
        duration: SimTime::from_secs(5),
        attack_start: SimTime::from_secs(100), // never fires
        defense: Some(ControllerConfig::default()),
        ..Default::default()
    };
    let (sim, handles) = fig3_scenario(&params);
    let report = sim.run();
    assert!(
        report.source_totals[handles.victim_source].delivered > 0,
        "benign run must actually carry traffic"
    );
    for (node, defense) in report.defense.iter().enumerate() {
        let d = defense.as_ref().expect("controller on every node");
        assert!(
            d.detections.is_empty(),
            "node {node}: benign churn raised {:?}",
            d.detections
        );
        assert_eq!(d.activations, 0, "node {node}: mitigations activated");
        assert!(d.samples > 0, "controller actually ran");
    }
}

#[test]
fn fig3_attack_is_detected_and_mitigated() {
    // The same workload with the covert stream live: the server node's
    // controller must catch the mask inflation after (never before)
    // the onset, quarantine the attacker pod, and collapse the mask
    // count the attack built.
    let params = pi_sim::Fig3Params {
        duration: SimTime::from_secs(5),
        attack_start: SimTime::from_secs(2),
        defense: Some(ControllerConfig::default()),
        ..Default::default()
    };
    let (sim, handles) = fig3_scenario(&params);
    let report = sim.run();
    let d = report.defense[handles.attacked_node]
        .as_ref()
        .expect("server-node controller");
    let detect = d.first_detection().expect("mask inflation detected");
    assert!(detect >= params.attack_start, "no pre-onset detection");
    assert!(
        detect <= params.attack_start + SimTime::from_secs(1),
        "detected within a second of onset, got {detect:?}"
    );
    assert!(d.first_mitigation().is_some());
    // The quarantine + eviction collapsed the injected masks: the
    // undefended smoke run ends above 4000 masks, the defended one
    // must end far below.
    let masks = report.masks[handles.attacked_node].last().unwrap().1;
    assert!(masks < 512.0, "masks after mitigation = {masks}");
    // And the report's offender list names the attacker's pod (the
    // quarantined destination no longer carries masks, so offenders
    // above threshold should now be empty).
    assert!(report.offenders(handles.attacked_node, 256).is_empty());
}

// ---------------------------------------------------------------
// Runtime config mutation ≡ construction, for the mutable knobs.
// ---------------------------------------------------------------

/// Drives `switch` through a deterministic mixed workload (cache hits,
/// misses, upcalls, drains) and returns every observable outcome.
fn drive(sw: &mut VSwitch, label: &str) -> Vec<(Action, Option<u32>, u64)> {
    let mut out = Vec::new();
    let mut t = SimTime::from_millis(1);
    for round in 0..40u16 {
        for i in 0..8u16 {
            // A mix of repeating flows (EMC/megaflow hits) and fresh
            // flows (misses) across two destinations.
            let dst = if i % 2 == 0 {
                [10, 0, 0, 9]
            } else {
                [10, 0, 0, 7]
            };
            let src = [10, 1, (round % 4) as u8, i as u8];
            let o = sw.process(&FlowKey::tcp(src, dst, 1000 + round, 80), t);
            out.push((o.verdict, o.output, o.cycles));
        }
        sw.drain_upcalls(t, |r| {
            out.push((r.outcome.verdict, r.outcome.output, r.outcome.cycles));
        });
        sw.revalidate(t);
        t += SimTime::from_millis(1);
    }
    assert!(!out.is_empty(), "{label}: workload produced outcomes");
    out
}

fn pods(sw: &mut VSwitch) {
    sw.attach_pod(u32::from_be_bytes([10, 0, 0, 9]), 1);
    sw.attach_pod(u32::from_be_bytes([10, 0, 0, 7]), 2);
}

#[test]
fn mutating_a_fresh_switch_equals_constructing_with_the_target_config() {
    let target = DpConfig {
        staged_lookup: true,
        pipeline: PipelineMode::Bounded(UpcallPipelineConfig::unbounded().with_port_quota(4)),
        ..DpConfig::default()
    };
    // A: constructed with defaults, mutated to the target at runtime.
    let mut a = VSwitch::new(DpConfig::default());
    assert!(a.set_pipeline(target.pipeline));
    a.set_staged_lookup(true);
    pods(&mut a);
    // B: constructed with the target directly.
    let mut b = VSwitch::new(target);
    pods(&mut b);

    let oa = drive(&mut a, "mutated");
    let ob = drive(&mut b, "constructed");
    assert_eq!(oa, ob, "mutated switch must be bit-identical");
    assert_eq!(a.stats(), b.stats());
    assert_eq!(a.upcall_stats(), b.upcall_stats());
    assert_eq!(a.mask_count(), b.mask_count());
    assert_eq!(a.megaflow_count(), b.megaflow_count());
}

#[test]
fn mid_run_quota_mutation_equals_quota_from_the_start() {
    // Phase 1 keeps every queue under the quota, so the knob is
    // unobservable; switch A then flips it on at the phase boundary.
    // Phase 2 (a backlog-building flood plus victim churn) must be
    // bit-identical to switch B, which ran with the quota from t = 0.
    let base = DpConfig {
        flow_limit: 64,
        pipeline: PipelineMode::Bounded(UpcallPipelineConfig {
            queue_capacity: 16,
            handler_cycles_per_step: 200_000,
            port_quota_per_step: None,
        }),
        ..DpConfig::default()
    };
    let with_quota = DpConfig {
        pipeline: PipelineMode::Bounded(UpcallPipelineConfig {
            queue_capacity: 16,
            handler_cycles_per_step: 200_000,
            port_quota_per_step: Some(4),
        }),
        ..base.clone()
    };
    let victim_ip = [10, 0, 0, 9];

    let phase1 = |sw: &mut VSwitch| {
        let mut t = SimTime::from_millis(1);
        for i in 0..20u16 {
            // Two fresh victim flows per step: far under quota 4.
            for j in 0..2u16 {
                let n = i * 2 + j;
                sw.process(
                    &FlowKey::tcp([10, 2, (n >> 8) as u8, n as u8], victim_ip, 5000, 80),
                    t,
                );
            }
            sw.drain_upcalls(t, |_| {});
            t += SimTime::from_millis(1);
        }
    };
    let phase2 = |sw: &mut VSwitch| -> Vec<(Action, Option<u32>, u64)> {
        let mut out = Vec::new();
        let mut t = SimTime::from_millis(100);
        let mut flood = 0u32;
        for step in 0..60u32 {
            for _ in 0..20 {
                flood += 1;
                let dst = [172, 16, (flood >> 8) as u8, flood as u8];
                let o = sw.process(&FlowKey::tcp([10, 9, 9, 9], dst, 7, 7), t);
                out.push((o.verdict, o.output, o.cycles));
            }
            for j in 0..2u32 {
                let n = 1000 + step * 2 + j;
                let o = sw.process(
                    &FlowKey::tcp([10, 2, (n >> 8) as u8, n as u8], victim_ip, 5000, 80),
                    t,
                );
                out.push((o.verdict, o.output, o.cycles));
            }
            sw.drain_upcalls(t, |r| {
                out.push((r.outcome.verdict, r.outcome.output, r.outcome.cycles));
            });
            t += SimTime::from_millis(1);
        }
        out
    };

    let mut a = VSwitch::new(base);
    pods(&mut a);
    phase1(&mut a);
    assert!(a.set_port_quota(Some(4)), "mid-run mutation");

    let mut b = VSwitch::new(with_quota);
    pods(&mut b);
    phase1(&mut b);

    assert_eq!(a.stats(), b.stats(), "phase 1 must not observe the knob");
    let oa = phase2(&mut a);
    let ob = phase2(&mut b);
    assert_eq!(oa, ob);
    assert_eq!(a.stats(), b.stats());
    assert_eq!(a.upcall_stats(), b.upcall_stats());
    // And the quota actually bit in phase 2 for both.
    assert!(a.upcall_stats().quota_deferrals > 0, "quota was exercised");
}
