//! Full-stack semantic equivalence: whatever path a packet takes
//! through the switch — microflow hit, megaflow hit, upcall — the
//! verdict must equal ground-truth linear classification of the
//! destination pod's ACL. The caches accelerate; they never decide.
//!
//! This is the strongest property the reproduction rests on: the attack
//! works *because* the cache must stay semantically transparent while
//! being fed adversarial state.
//!
//! Cases come from the deterministic in-house [`SplitMix64`] generator
//! (no external dependencies).

use pi_core::SplitMix64;
use policy_injection::prelude::*;

const CASES: u64 = 64;

/// A small universe of pods with randomly shaped whitelist policies.
#[derive(Debug, Clone)]
struct Universe {
    pods: Vec<(u32, FlowTable)>,
}

fn rand_universe(rng: &mut SplitMix64) -> Universe {
    let n_pods = 1 + rng.gen_range(3);
    let pods = (0..n_pods)
        .enumerate()
        .map(|(i, _)| {
            let suffix = 1 + rng.gen_range(4) as u8;
            let ip = u32::from_be_bytes([10, 1, i as u8, suffix]);
            let n_allows = rng.gen_range(4);
            let whitelist: Vec<MaskedKey> = (0..n_allows)
                .map(|_| {
                    let src = rng.next_u32();
                    let len = 1 + rng.gen_range(32) as u8;
                    let port = rng.gen_bool(0.5).then(|| 1 + rng.gen_range(1023) as u16);
                    let mut key = FlowKey::tcp(
                        std::net::Ipv4Addr::from(src),
                        [0, 0, 0, 0],
                        0,
                        port.unwrap_or(0),
                    );
                    let mut mask = FlowMask::default().with_prefix(Field::IpSrc, len);
                    if port.is_some() {
                        mask = mask.with_exact(Field::TpDst);
                    } else {
                        key.tp_dst = 0;
                    }
                    MaskedKey::new(key, mask)
                })
                .collect();
            (
                ip,
                pi_classifier::table::whitelist_with_default_deny(&whitelist),
            )
        })
        .collect();
    Universe { pods }
}

fn rand_packets(rng: &mut SplitMix64, universe: &Universe) -> Vec<FlowKey> {
    let dst_ips: Vec<u32> = universe.pods.iter().map(|(ip, _)| *ip).collect();
    let n = 1 + rng.gen_range(199);
    (0..n)
        .map(|_| {
            let src = rng.next_u32();
            let dst = dst_ips[rng.gen_range(dst_ips.len() as u64) as usize];
            let sport = rng.next_u32() as u16;
            let dport = [80u16, 443, 999, 5201][rng.gen_range(4) as usize];
            FlowKey::tcp(
                std::net::Ipv4Addr::from(src),
                std::net::Ipv4Addr::from(dst),
                sport,
                dport,
            )
        })
        .collect()
}

/// Random pods, random ACLs, random packet mix — replayed so most
/// packets traverse every cache level — always the linear verdict.
#[test]
fn switch_verdicts_equal_linear_classification() {
    pi_core::for_cases(CASES, 0x41, |rng| {
        let universe = rand_universe(rng);
        let packets = rand_packets(rng, &universe);
        let mut sw = VSwitch::new(DpConfig::default());
        for (i, (ip, table)) in universe.pods.iter().enumerate() {
            sw.attach_pod(*ip, i as u32 + 1);
            sw.install_acl(*ip, table.clone());
        }
        let ground_truth = |key: &FlowKey| -> Action {
            match universe.pods.iter().find(|(ip, _)| *ip == key.ip_dst) {
                Some((_, table)) => LinearClassifier::new(table)
                    .classify(key)
                    .map(|r| r.action)
                    .unwrap_or(Action::Deny),
                None => Action::Deny,
            }
        };
        let mut t = SimTime::from_millis(1);
        for round in 0..3u8 {
            for key in &packets {
                let out = sw.process(key, t);
                t += SimTime::from_micros(10);
                let expected = ground_truth(key);
                assert_eq!(
                    out.verdict, expected,
                    "round {} path {:?} packet {}",
                    round, out.path, key
                );
            }
        }
        // By the third replay, identical packets must be cache hits.
        let mut hits = 0usize;
        for key in &packets {
            let out = sw.process(key, t);
            if out.path.is_microflow() || out.path.is_megaflow() {
                hits += 1;
            }
            assert_eq!(out.verdict, ground_truth(key));
        }
        assert_eq!(hits, packets.len(), "everything cached by now");
    });
}

/// Cache eviction (revalidation) never changes verdicts either.
#[test]
fn verdicts_stable_across_revalidation() {
    pi_core::for_cases(CASES, 0x42, |rng| {
        let universe = rand_universe(rng);
        let packets = rand_packets(rng, &universe);
        let mut sw = VSwitch::new(DpConfig::default());
        for (i, (ip, table)) in universe.pods.iter().enumerate() {
            sw.attach_pod(*ip, i as u32 + 1);
            sw.install_acl(*ip, table.clone());
        }
        let mut verdicts_before = Vec::new();
        for key in &packets {
            verdicts_before.push(sw.process(key, SimTime::from_millis(1)).verdict);
        }
        // Idle everything out.
        sw.revalidate(SimTime::from_secs(30));
        assert_eq!(sw.megaflow_count(), 0);
        for (key, before) in packets.iter().zip(verdicts_before) {
            let after = sw.process(key, SimTime::from_secs(31)).verdict;
            assert_eq!(after, before);
        }
    });
}
