//! Full-stack semantic equivalence: whatever path a packet takes
//! through the switch — microflow hit, megaflow hit, upcall — the
//! verdict must equal ground-truth linear classification of the
//! destination pod's ACL. The caches accelerate; they never decide.
//!
//! This is the strongest property the reproduction rests on: the attack
//! works *because* the cache must stay semantically transparent while
//! being fed adversarial state.

use policy_injection::prelude::*;
use proptest::prelude::*;

/// A small universe of pods with randomly shaped whitelist policies.
#[derive(Debug, Clone)]
struct Universe {
    pods: Vec<(u32, FlowTable)>,
}

fn arb_universe() -> impl Strategy<Value = Universe> {
    proptest::collection::vec(
        (
            1u32..5,                       // pod host suffix
            proptest::collection::vec(
                (any::<u32>(), 1u8..=32, proptest::option::of(1u16..1024)),
                0..4,
            ),
        ),
        1..4,
    )
    .prop_map(|pods| Universe {
        pods: pods
            .into_iter()
            .enumerate()
            .map(|(i, (suffix, allows))| {
                let ip = u32::from_be_bytes([10, 1, i as u8, suffix as u8]);
                let whitelist: Vec<MaskedKey> = allows
                    .into_iter()
                    .map(|(src, len, port)| {
                        let mut key = FlowKey::tcp(
                            std::net::Ipv4Addr::from(src),
                            [0, 0, 0, 0],
                            0,
                            port.unwrap_or(0),
                        );
                        let mut mask = FlowMask::default().with_prefix(Field::IpSrc, len);
                        if port.is_some() {
                            mask = mask.with_exact(Field::TpDst);
                        } else {
                            key.tp_dst = 0;
                        }
                        MaskedKey::new(key, mask)
                    })
                    .collect();
                (
                    ip,
                    pi_classifier::table::whitelist_with_default_deny(&whitelist),
                )
            })
            .collect(),
    })
}

fn arb_packets(universe: &Universe) -> impl Strategy<Value = Vec<FlowKey>> {
    let dst_ips: Vec<u32> = universe.pods.iter().map(|(ip, _)| *ip).collect();
    proptest::collection::vec(
        (
            any::<u32>(),
            proptest::sample::select(dst_ips),
            any::<u16>(),
            proptest::sample::select(vec![80u16, 443, 999, 5201]),
        )
            .prop_map(|(src, dst, sport, dport)| {
                FlowKey::tcp(
                    std::net::Ipv4Addr::from(src),
                    std::net::Ipv4Addr::from(dst),
                    sport,
                    dport,
                )
            }),
        1..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random pods, random ACLs, random packet mix — replayed twice so
    /// most packets traverse every cache level — always the linear
    /// verdict.
    #[test]
    fn switch_verdicts_equal_linear_classification(
        universe in arb_universe(),
        packets_seed in arb_universe().prop_flat_map(|u| arb_packets(&u).prop_map(move |p| (u.clone(), p)))
    ) {
        // Use the independently drawn universe+packets pair.
        let (universe2, packets) = packets_seed;
        let _ = universe;
        let mut sw = VSwitch::new(DpConfig::default());
        for (i, (ip, table)) in universe2.pods.iter().enumerate() {
            sw.attach_pod(*ip, i as u32 + 1);
            sw.install_acl(*ip, table.clone());
        }
        let ground_truth = |key: &FlowKey| -> Action {
            match universe2.pods.iter().find(|(ip, _)| *ip == key.ip_dst) {
                Some((_, table)) => LinearClassifier::new(table)
                    .classify(key)
                    .map(|r| r.action)
                    .unwrap_or(Action::Deny),
                None => Action::Deny,
            }
        };
        let mut t = SimTime::from_millis(1);
        for round in 0..3u8 {
            for key in &packets {
                let out = sw.process(key, t);
                t += SimTime::from_micros(10);
                let expected = ground_truth(key);
                prop_assert_eq!(
                    out.verdict, expected,
                    "round {} path {:?} packet {}",
                    round, out.path, key
                );
            }
        }
        // By the third replay, identical packets must be cache hits.
        let mut hits = 0usize;
        for key in &packets {
            let out = sw.process(key, t);
            if out.path.is_microflow() || out.path.is_megaflow() {
                hits += 1;
            }
            prop_assert_eq!(out.verdict, ground_truth(key));
        }
        prop_assert_eq!(hits, packets.len(), "everything cached by now");
    }

    /// Cache eviction (revalidation) never changes verdicts either.
    #[test]
    fn verdicts_stable_across_revalidation(
        pair in arb_universe().prop_flat_map(|u| arb_packets(&u).prop_map(move |p| (u.clone(), p)))
    ) {
        let (universe, packets) = pair;
        let mut sw = VSwitch::new(DpConfig::default());
        for (i, (ip, table)) in universe.pods.iter().enumerate() {
            sw.attach_pod(*ip, i as u32 + 1);
            sw.install_acl(*ip, table.clone());
        }
        let mut verdicts_before = Vec::new();
        for key in &packets {
            verdicts_before.push(sw.process(key, SimTime::from_millis(1)).verdict);
        }
        // Idle everything out.
        sw.revalidate(SimTime::from_secs(30));
        prop_assert_eq!(sw.megaflow_count(), 0);
        for (key, before) in packets.iter().zip(verdicts_before) {
            let after = sw.process(key, SimTime::from_secs(31)).verdict;
            prop_assert_eq!(after, before);
        }
    }
}
