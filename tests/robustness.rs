//! Robustness and configuration-variant integration tests: the attack
//! and datapath under flow-limit pressure, probabilistic EMC insertion
//! (OVS-DPDK flavour), and cache-thrash dynamics.

use policy_injection::prelude::*;

fn compile(spec: &AttackSpec) -> FlowTable {
    match spec.build_policy() {
        MaliciousAcl::K8s(p) => PolicyCompiler.compile_k8s(&p),
        MaliciousAcl::OpenStack(p) => PolicyCompiler.compile_security_group(&p),
        MaliciousAcl::Calico(p) => PolicyCompiler.compile_calico(&p),
    }
}

/// Under a tight flow limit the datapath refuses installs but keeps
/// classifying correctly — and every uncached covert packet now pays a
/// full upcall, which is *worse* for the switch, not better.
#[test]
fn flow_limit_pressure_keeps_semantics_and_costs() {
    let pod_ip = u32::from_be_bytes([10, 1, 0, 66]);
    let spec = AttackSpec::masks_512(PolicyDialect::Kubernetes);
    let mut sw = VSwitch::new(DpConfig {
        flow_limit: 100, // far below the 561 covert entries
        emc_enabled: false,
        ..DpConfig::default()
    });
    sw.attach_pod(pod_ip, 1);
    sw.install_acl(pod_ip, compile(&spec));

    let seq = CovertSequence::new(spec.build_target(pod_ip));
    let mut t = SimTime::from_millis(1);
    for p in seq.populate_packets() {
        sw.process(&p, t);
        t += SimTime::from_micros(100);
    }
    assert_eq!(sw.megaflow_count(), 100, "hard cap respected");
    assert!(sw.mask_count() <= 100);
    assert!(sw.mfc_stats().install_drops > 0);

    // Re-sending an uncached covert packet upcalls again (no install
    // last time) — but verdicts stay correct.
    let uncached = seq.populate_packet(seq.packet_count() - 1); // in-prefix allow
    let o1 = sw.process(&uncached, t);
    assert_eq!(o1.verdict, Action::Allow);
    // Deny packets keep denying.
    let denied = FlowKey::tcp([99, 99, 99, 99], [10, 1, 0, 66], 1, 1);
    assert_eq!(sw.process(&denied, t).verdict, Action::Deny);
}

/// OVS-DPDK-style probabilistic EMC insertion (1%) does not blunt the
/// attack: the covert stream's unique keys rarely enter the EMC, so the
/// megaflow walk still dominates.
#[test]
fn dpdk_like_emc_still_vulnerable() {
    let pod_ip = u32::from_be_bytes([10, 1, 0, 66]);
    let spec = AttackSpec::masks_512(PolicyDialect::Kubernetes);
    let mut sw = VSwitch::new(DpConfig::dpdk_like());
    sw.attach_pod(pod_ip, 1);
    sw.install_acl(pod_ip, compile(&spec));
    let seq = CovertSequence::new(spec.build_target(pod_ip));
    let mut t = SimTime::from_millis(1);
    for p in seq.populate_packets() {
        sw.process(&p, t);
        t += SimTime::from_micros(100);
    }
    assert_eq!(sw.mask_count(), 512);
    // Scan packets: unique keys, EMC-missing with ≥99% probability, so
    // the mean probe count stays near the full walk.
    let mut total_probes = 0usize;
    let n = 500;
    for i in 0..n {
        let o = sw.process(&seq.scan_packet(10_000 + i), t);
        total_probes += o.path.probes();
    }
    let avg = total_probes as f64 / n as f64;
    assert!(avg > 450.0, "mean probes {avg} must stay near 512");
}

/// The covert stream evicts a victim's EMC entry through sheer
/// collision pressure: before the attack the victim's repeat packets
/// are microflow hits; after sustained scanning, a significant share
/// fall through to the megaflow walk.
///
/// The assertions are *behavioral* — warm residency is high, and the
/// attack knocks out a large fraction of it — rather than exact counts:
/// where each key lands is a function of the flow hash, so exact-count
/// assertions turn any hash change into a collision lottery (this test
/// used to pin the EMC set-index segment shift for that reason).
#[test]
fn emc_thrash_pushes_victim_to_megaflow_path() {
    let victim_ip = u32::from_be_bytes([10, 1, 0, 10]);
    let attacker_ip = u32::from_be_bytes([10, 1, 0, 66]);
    let spec = AttackSpec::masks_8192();
    // Small EMC so the effect is visible at test scale.
    let mut sw = VSwitch::new(DpConfig {
        emc_entries: 256,
        ..DpConfig::default()
    });
    sw.attach_pod(victim_ip, 1);
    sw.attach_pod(attacker_ip, 2);
    sw.install_acl(attacker_ip, compile(&spec));

    let victim_keys: Vec<FlowKey> = (0..32u16)
        .map(|i| FlowKey::tcp([10, 0, 0, 10], [10, 1, 0, 10], 40_000 + i, 5201))
        .collect();
    let mut t = SimTime::from_millis(1);
    // Warm the victim's flows: all become EMC residents.
    for _ in 0..3 {
        for k in &victim_keys {
            sw.process(k, t);
            t += SimTime::from_micros(10);
        }
    }
    let mut warm_hits = 0;
    for k in &victim_keys {
        if sw.process(k, t).path.is_microflow() {
            warm_hits += 1;
        }
        t += SimTime::from_micros(10);
    }
    // Behavioral: warm flows are overwhelmingly EMC-resident. (Not
    // exactly all 32 — a 3-way set collision among the victim's own
    // keys is legal under any hash and thrashes one slot under LRU.)
    assert!(
        warm_hits * 4 >= victim_keys.len() * 3,
        "pre-attack: ≥¾ EMC residency expected, got {warm_hits}/{}",
        victim_keys.len()
    );

    // Attack: thousands of unique covert keys through the same EMC.
    let seq = CovertSequence::new(spec.build_target(attacker_ip));
    for p in seq.populate_packets().take(2_000) {
        sw.process(&p, t);
        t += SimTime::from_micros(10);
    }
    for i in 0..4_000u64 {
        sw.process(&seq.scan_packet(i), t);
        t += SimTime::from_micros(10);
    }
    let mut post_hits = 0;
    for k in &victim_keys {
        if sw.process(k, t).path.is_microflow() {
            post_hits += 1;
        }
        t += SimTime::from_micros(10);
    }
    // Behavioral: the thrash is observed *relative to* the warm
    // baseline — most of the victim's residency is gone.
    assert!(
        post_hits * 2 < warm_hits,
        "attack must evict most victim EMC entries: \
         {post_hits}/{warm_hits} warm hits survive"
    );
}

/// Disabling tries on the datapath (the blunt configuration fix) caps
/// the attack at one mask — at the price of coarse megaflows for
/// everyone (megaflows match whole fields, so distinct sources share
/// entries less often… the trade-off is cache granularity, not
/// correctness).
#[test]
fn trie_free_datapath_is_immune_but_coarse() {
    let pod_ip = u32::from_be_bytes([10, 1, 0, 66]);
    let spec = AttackSpec::masks_8192();
    let mut sw = VSwitch::new(DpConfig {
        trie_fields: vec![],
        ..DpConfig::default()
    });
    sw.attach_pod(pod_ip, 1);
    sw.install_acl(pod_ip, compile(&spec));
    let seq = CovertSequence::new(spec.build_target(pod_ip));
    let mut t = SimTime::from_millis(1);
    for p in seq.populate_packets() {
        sw.process(&p, t);
        t += SimTime::from_micros(50);
    }
    // All megaflows share the single union mask.
    assert_eq!(sw.mask_count(), 1, "no tries ⇒ no mask explosion");
    // Semantics unchanged: allow flow allowed, deny flow denied.
    let allowed = seq.populate_packet(seq.packet_count() - 1);
    assert_eq!(sw.process(&allowed, t).verdict, Action::Allow);
    let denied = FlowKey::tcp([9, 9, 9, 9], [10, 1, 0, 66], 1, 1);
    assert_eq!(sw.process(&denied, t).verdict, Action::Deny);
}

/// Determinism across identically-seeded switches under the full attack
/// (paths, stats and cache shapes all equal).
#[test]
fn attacked_switch_is_deterministic() {
    let run = || {
        let pod_ip = u32::from_be_bytes([10, 1, 0, 66]);
        let spec = AttackSpec::masks_512(PolicyDialect::OpenStack);
        let mut sw = VSwitch::new(DpConfig::default());
        sw.attach_pod(pod_ip, 1);
        sw.install_acl(pod_ip, compile(&spec));
        let seq = CovertSequence::new(spec.build_target(pod_ip));
        let mut t = SimTime::from_millis(1);
        for p in seq.populate_packets() {
            sw.process(&p, t);
            t += SimTime::from_micros(100);
        }
        for i in 0..1_000 {
            sw.process(&seq.scan_packet(i), t);
            t += SimTime::from_micros(100);
        }
        (sw.stats(), sw.mask_count(), sw.megaflow_count())
    };
    assert_eq!(run(), run());
}
