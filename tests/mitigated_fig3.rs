//! The Fig. 3 scenario re-run with defenses — the system-level ablation
//! complement to the switch-level numbers of E7.

use pi_mitigation::hit_sort_config;
use policy_injection::prelude::*;

fn short_params() -> Fig3Params {
    Fig3Params {
        duration: SimTime::from_secs(24),
        attack_start: SimTime::from_secs(12),
        background: false,
        ..Fig3Params::default()
    }
}

fn victim_before_after(params: &Fig3Params) -> (f64, f64) {
    let (sim, handles) = fig3_scenario(params);
    let report = sim.run();
    let victim = &report.throughput_bps[handles.victim_source];
    (
        victim.mean_between(SimTime::from_secs(2), params.attack_start) / 1e9,
        victim.mean_between(SimTime::from_secs(18), params.duration) / 1e9,
    )
}

/// Hit-count subtable sorting attenuates but does **not** prevent the
/// Fig. 3 collapse — a system-level finding the switch-level E7 numbers
/// alone would overstate. Sorting defuses the scan stream (its one hot
/// subtable floats to the front), but the *refresh* stream touches all
/// ~9.5 k entries uniformly, so its hits are spread across all ~8 k
/// subtables and no ordering helps: ~1.9 kpps of refreshes × ~4 k
/// probes each still saturates the core. The victim improves an order
/// of magnitude (≈1% → ≈10% of baseline) and no further.
#[test]
fn hit_sorting_attenuates_but_does_not_rescue_fig3() {
    let undefended = victim_before_after(&short_params());
    let defended = victim_before_after(&Fig3Params {
        dp: hit_sort_config(DpConfig::default()),
        ..short_params()
    });
    // Undefended: collapse (same assertion as the e2e test).
    assert!(undefended.1 < 0.15 * undefended.0, "{undefended:?}");
    // Defended: order-of-magnitude better than undefended…
    assert!(
        defended.1 > 4.0 * undefended.1,
        "sorting must attenuate: defended {defended:?} vs undefended {undefended:?}"
    );
    // …but still far from healthy: the refresh walk keeps the core hot.
    assert!(
        defended.1 < 0.5 * defended.0,
        "if this starts passing, the refresh-walk saturation analysis \
         in this test's doc comment needs revisiting: {defended:?}"
    );
}

/// A mask-budget-hardened CMS never installs the ACL, so the scenario
/// degenerates to the baseline: run the same topology minus the attack
/// policy and verify no degradation — the end state admission control
/// buys.
#[test]
fn admission_control_end_state_is_attack_free() {
    // Verify the policy would be rejected…
    let spec = AttackSpec::masks_8192();
    let table = match spec.build_policy() {
        MaliciousAcl::Calico(p) => PolicyCompiler.compile_calico(&p),
        _ => unreachable!(),
    };
    assert!(!MaskBudget::default()
        .check(
            &table,
            &[Field::IpSrc, Field::IpDst, Field::TpSrc, Field::TpDst]
        )
        .admitted());
    // …and that without it the victim sails through the whole window.
    let params = Fig3Params {
        // Attack "starts" after the run ends ⇒ no covert traffic, which
        // is observationally identical to the ACL never installing.
        attack_start: SimTime::from_secs(1_000),
        ..short_params()
    };
    let (before, after) = victim_before_after(&params);
    assert!(before > 0.9);
    assert!(after > 0.9);
}
