//! Integration tests of the decoupled upcall pipeline: the bounded
//! slow path must (1) agree with the inline pipeline wherever the two
//! are defined to agree, and (2) express the handler-saturation
//! scenario family — upcall-queue tail drops under a paced flood, and
//! their disappearance under the per-port fair-share quota.

use pi_traffic::CbrSource;
use policy_injection::prelude::*;

fn ip(a: [u8; 4]) -> u32 {
    u32::from_be_bytes(a)
}

/// A mixed one-node scenario (allowed CBR, denied CBR, connection
/// churn) run under both pipeline modes with zero capacity pressure:
/// per-source verdict-level totals must match exactly. (Cache-level
/// stats intentionally differ at tick granularity — the miss-to-install
/// window is the point of the bounded mode; the bit-exact per-packet
/// equivalence lives in `crates/datapath/tests/upcall_equivalence.rs`.)
#[test]
fn bounded_zero_pressure_matches_inline_verdicts_and_routing() {
    let run = |pipeline: PipelineMode| {
        let mut b = SimBuilder::new(SimConfig {
            duration: SimTime::from_secs(3),
            // Generous budget: no capacity pressure anywhere.
            cpu_cycles_per_sec: 100_000_000_000,
            ..SimConfig::default()
        });
        let node = b.add_node(DpConfig {
            pipeline,
            trie_fields: vec![Field::IpSrc],
            ..DpConfig::default()
        });
        let pod = ip([10, 0, 0, 2]);
        b.add_pod(node, pod);
        let allow = MaskedKey::new(
            FlowKey::tcp([10, 0, 0, 0], [0, 0, 0, 0], 0, 0),
            FlowMask::default().with_prefix(Field::IpSrc, 8),
        );
        b.install_acl(
            pod,
            pi_classifier::table::whitelist_with_default_deny(&[allow]),
        );
        // Allowed repeats, denied repeats, and fresh-flow churn.
        b.add_source(
            node,
            Box::new(CbrSource::new(
                FlowKey::tcp([10, 0, 0, 1], [10, 0, 0, 2], 1000, 80),
                400,
                2_000.0,
            )),
        );
        b.add_source(
            node,
            Box::new(CbrSource::new(
                FlowKey::tcp([172, 16, 0, 1], [10, 0, 0, 2], 1000, 80),
                400,
                500.0,
            )),
        );
        b.add_source(
            node,
            Box::new(ChurnSource::new(ip([10, 3, 0, 0]), pod, 80, 64, 1_000.0)),
        );
        b.build().run()
    };
    let inline = run(PipelineMode::Inline);
    let bounded = run(PipelineMode::Bounded(UpcallPipelineConfig::unbounded()));
    assert_eq!(inline.source_totals, bounded.source_totals);
    for (i, b) in inline.source_totals.iter().zip(&bounded.source_totals) {
        assert_eq!(i.dropped_capacity, 0);
        assert_eq!(b.dropped_upcall, 0, "no pressure ⇒ no upcall drops");
    }
    // Same verdict totals at the switch level too.
    assert_eq!(
        inline.switch_stats[0].policy_drops,
        bounded.switch_stats[0].policy_drops
    );
    assert_eq!(
        inline.switch_stats[0].packets,
        bounded.switch_stats[0].packets
    );
    // The upcall *count* may exceed inline's: packets of one flow
    // arriving in the same tick all miss until the step's install flush
    // (the miss-to-install window) — but never the other way round.
    assert!(bounded.switch_stats[0].upcalls >= inline.switch_stats[0].upcalls);
    assert_eq!(
        bounded.upcall_stats[0].enqueued, bounded.upcall_stats[0].handled,
        "every deferred miss resolves under an infinite handler budget"
    );
}

/// The headline scenario: a paced destination-spray flood saturates the
/// bounded handlers, the victim's fresh connections tail-drop at its
/// upcall queue, and the OVS-style per-port flow-setup quota restores
/// the victim to ~0 drops — without touching the attacker's ability to
/// hurt itself.
#[test]
fn handler_saturation_and_fair_share_mitigation() {
    let run = |quota: Option<u32>| {
        let params = UpcallSaturationParams {
            duration: SimTime::from_secs(4),
            port_quota_per_step: quota,
            ..Default::default()
        };
        let (sim, handles) = upcall_saturation_scenario(&params);
        let report = sim.run();
        (
            report.source_totals[handles.victim_source].clone(),
            report.upcall_stats[handles.node],
        )
    };

    let (victim, up) = run(None);
    let offered = victim.generated;
    assert!(offered > 5_000, "churn offered {offered} connections");
    assert!(
        victim.dropped_upcall > offered / 2,
        "saturated handlers must drop most victim connections: {victim:?}"
    );
    assert!(up.queue_drops > 0);
    assert!(
        up.mean_wait_steps() > 1.0,
        "install latency grows under backlog: {} steps",
        up.mean_wait_steps()
    );

    let (victim, up) = run(Some(8));
    assert!(
        victim.dropped_upcall * 100 <= victim.generated,
        "fair share restores the victim to <1% upcall drops: {victim:?}"
    );
    assert!(
        victim.delivered * 10 >= victim.generated * 9,
        "≥90% of victim connections deliver under the quota: {victim:?}"
    );
    // The attacker still pays: its flood keeps tail-dropping.
    assert!(up.queue_drops > 0, "the flood's own drops remain");
}

/// `upcall_fair_share_config` is the mitigation entry point: it
/// promotes an inline datapath to the default bounded pipeline and sets
/// the quota, and the resulting config behaves like the explicit one.
#[test]
fn fair_share_config_round_trips_through_the_scenario() {
    let dp = upcall_fair_share_config(DpConfig::default(), 8);
    match dp.pipeline {
        PipelineMode::Bounded(cfg) => assert_eq!(cfg.port_quota_per_step, Some(8)),
        PipelineMode::Inline => panic!("must be bounded"),
    }
}
