//! End-to-end integration: CMS policy → compiled ACL → switch →
//! covert stream → the paper's mask counts and throughput collapse.

use policy_injection::prelude::*;

fn populate(sw: &mut VSwitch, spec: &AttackSpec, pod_ip: u32) {
    let seq = CovertSequence::new(spec.build_target(pod_ip));
    let mut t = SimTime::from_millis(1);
    for p in seq.populate_packets() {
        sw.process(&p, t);
        t += SimTime::from_micros(256);
    }
}

fn compile(spec: &AttackSpec) -> FlowTable {
    match spec.build_policy() {
        MaliciousAcl::K8s(p) => PolicyCompiler.compile_k8s(&p),
        MaliciousAcl::OpenStack(p) => PolicyCompiler.compile_security_group(&p),
        MaliciousAcl::Calico(p) => PolicyCompiler.compile_calico(&p),
    }
}

/// The paper's three headline mask counts, measured through the entire
/// stack (policy dialect → CMS compile → slow path → TSS).
#[test]
fn paper_mask_counts_all_dialects() {
    let cases: Vec<(AttackSpec, u64)> = vec![
        (
            AttackSpec {
                dialect: PolicyDialect::Kubernetes,
                allow_src: "10.0.0.0/8".parse().unwrap(),
                dst_port: None,
                src_port: None,
            },
            8, // Fig. 2
        ),
        (AttackSpec::masks_512(PolicyDialect::Kubernetes), 512),
        (AttackSpec::masks_512(PolicyDialect::OpenStack), 512),
        (AttackSpec::masks_8192(), 8192),
    ];
    for (spec, expected) in cases {
        let pod_ip = u32::from_be_bytes([10, 1, 0, 66]);
        let mut sw = VSwitch::new(DpConfig::default());
        sw.attach_pod(pod_ip, 1);
        assert!(sw.install_acl(pod_ip, compile(&spec)));
        populate(&mut sw, &spec, pod_ip);
        assert_eq!(
            sw.mask_count() as u64,
            expected,
            "dialect {:?}: measured masks ≠ paper count",
            spec.dialect
        );
        assert_eq!(spec.predicted_masks(), expected, "analytical model");
        assert_eq!(
            predicted_mask_count(&compile(&spec), &sw.config().trie_fields),
            expected,
            "table-level prediction"
        );
    }
}

/// The CMS accepts the malicious policies through the same API as any
/// tenant policy — the attack needs no privileged capability.
#[test]
fn cms_accepts_the_attack_policies() {
    let mut cloud = Cloud::new();
    let tenant = cloud.add_tenant();
    let node = cloud.add_node();
    let pod = cloud.add_pod(tenant, node);
    for spec in [
        AttackSpec::masks_512(PolicyDialect::Kubernetes),
        AttackSpec::masks_512(PolicyDialect::OpenStack),
        AttackSpec::masks_8192(),
    ] {
        let compiled = spec
            .build_policy()
            .apply(&cloud, tenant, pod)
            .expect("CMS must accept the innocuous-looking policy");
        assert_eq!(compiled.table.len(), 2, "allow + default deny");
    }
}

/// The covert stream stays within the paper's 1–2 Mb/s budget while
/// sustaining the mask population across revalidator sweeps.
///
/// The sustain assertion is behavioral (≥95% of the 512 masks alive at
/// every point past warm-up) rather than an exact count: a covert
/// keepalive that happens to stay EMC-resident for a whole idle window
/// starves its megaflow's refresh (EMC hits don't touch megaflow
/// `last_used`), so a handful of masks may blink across sweeps — a
/// function of where keys hash, not of the attack's economics. The
/// exact-count version of this test pinned the EMC set-index hash.
#[test]
fn covert_stream_sustains_masks_within_budget() {
    let pod_ip = u32::from_be_bytes([10, 1, 0, 66]);
    let spec = AttackSpec::masks_512(PolicyDialect::Kubernetes);
    let mut sw = VSwitch::new(DpConfig::default());
    sw.attach_pod(pod_ip, 1);
    sw.install_acl(pod_ip, compile(&spec));

    let mut schedule = AttackSchedule::new(
        CovertSequence::new(spec.build_target(pod_ip)),
        2e6,
        SimTime::ZERO,
    );
    let mut out = Vec::new();
    let mut bytes_sent = 0usize;
    let mut sustained_min = usize::MAX;
    // 30 simulated seconds with 1 ms ticks and 1 s revalidator sweeps.
    for ms in 0..30_000u64 {
        let now = SimTime::from_millis(ms);
        out.clear();
        pi_traffic::TrafficSource::generate(
            &mut schedule,
            now,
            SimTime::from_millis(ms + 1),
            &mut out,
        );
        for p in &out {
            bytes_sent += p.bytes;
            sw.process(&p.key, now);
        }
        sw.revalidate(now);
        // Past populate + the first idle window, the mask population
        // must never meaningfully dip.
        if ms >= 12_000 {
            sustained_min = sustained_min.min(sw.mask_count());
        }
    }
    let avg_bps = bytes_sent as f64 * 8.0 / 30.0;
    assert!(avg_bps <= 2.05e6, "budget exceeded: {avg_bps}");
    assert!(
        sustained_min * 100 >= 512 * 95,
        "≥95% of the 512 masks must stay alive through every sweep, \
         worst point was {sustained_min}"
    );
    // Stop the stream: the revalidator reclaims everything.
    for s in 31..=45u64 {
        sw.revalidate(SimTime::from_secs(s));
    }
    assert_eq!(sw.mask_count(), 0, "masks must decay once the stream stops");
}

/// Short Fig. 3: the victim collapses after attack start and not
/// before; determinism across runs.
#[test]
fn victim_collapse_is_attack_gated_and_deterministic() {
    let params = Fig3Params {
        duration: SimTime::from_secs(24),
        attack_start: SimTime::from_secs(12),
        background: false,
        ..Fig3Params::default()
    };
    let run = || {
        let (sim, handles) = fig3_scenario(&params);
        let report = sim.run();
        let victim = &report.throughput_bps[handles.victim_source];
        (
            victim.mean_between(SimTime::from_secs(2), params.attack_start) / 1e9,
            victim.mean_between(SimTime::from_secs(18), params.duration) / 1e9,
            report.masks[handles.attacked_node].last().unwrap().1,
            report.source_totals[handles.victim_source].clone(),
        )
    };
    let (before, after, masks, totals) = run();
    assert!(before > 0.9, "pre-attack victim ≈ line rate, got {before}");
    assert!(
        after < 0.15 * before,
        "post-attack victim must collapse: {after} vs {before}"
    );
    assert!(masks > 3_000.0, "mask explosion visible: {masks}");
    // Determinism.
    let (b2, a2, m2, t2) = run();
    assert_eq!(before, b2);
    assert_eq!(after, a2);
    assert_eq!(masks, m2);
    assert_eq!(totals, t2);
}

/// The attacked switch's shared caches are the cross-tenant channel:
/// masks injected via the attacker's ACL are walked by packets addressed
/// to *other* pods.
#[test]
fn cross_tenant_probe_amplification() {
    let victim_ip = u32::from_be_bytes([10, 1, 0, 10]);
    let attacker_ip = u32::from_be_bytes([10, 1, 0, 66]);
    let spec = AttackSpec::masks_512(PolicyDialect::Kubernetes);
    let mut sw = VSwitch::new(DpConfig {
        emc_enabled: false,
        ..DpConfig::default()
    });
    sw.attach_pod(victim_ip, 1);
    sw.attach_pod(attacker_ip, 2);
    sw.install_acl(attacker_ip, compile(&spec));
    populate(&mut sw, &spec, attacker_ip);

    // A brand-new flow towards the *victim* pod (no ACL there) must
    // walk all the attacker's subtables before its upcall.
    let fresh = FlowKey::tcp([172, 16, 0, 9], [10, 1, 0, 10], 999, 80);
    let o = sw.process(&fresh, SimTime::from_secs(30));
    match o.path {
        PathTaken::Upcall { probes, .. } => {
            assert!(probes >= 512, "cross-tenant walk: {probes} probes")
        }
        other => panic!("expected upcall, got {other:?}"),
    }
    assert_eq!(o.verdict, Action::Allow, "victim traffic is still legal");
}
