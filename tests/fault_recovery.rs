//! Fault-injection integration tests: idempotent policy application
//! under duplicated control-channel delivery, and crash-recovery
//! reconciliation restoring classification semantics verdict for
//! verdict, on every dataplane backend.

use policy_injection::pi_cms::{IngressRule, Protocol};
use policy_injection::prelude::*;

const VICTIM_IP: [u8; 4] = [10, 1, 0, 10];
const CLIENT_IP: [u8; 4] = [10, 2, 0, 1];

fn victim_table() -> FlowTable {
    let policy = NetworkPolicy {
        name: "victim-peers".into(),
        ingress: vec![IngressRule {
            from: vec![Cidr::host(CLIENT_IP)],
            ports: vec![(Protocol::Tcp, Some(5201))],
        }],
    };
    PolicyCompiler.compile_k8s(&policy)
}

/// Applies one tick of a reliable control plane against a backend —
/// the same delivery/reconcile loop `pi_sim::NodeCell` runs.
fn drive(rcp: &mut ReliableControlPlane, be: &mut dyn DataplaneBackend, from_ms: u64, to_ms: u64) {
    for t in from_ms..to_ms {
        let now = SimTime::from_millis(t);
        for update in rcp.poll(now, true) {
            match update {
                PolicyUpdate::InstallAcl { ip, table } => {
                    be.apply_install_acl(ip, table);
                }
                PolicyUpdate::RemoveAcl { ip } => {
                    be.apply_remove_acl(ip);
                }
                PolicyUpdate::AttachPod { ip, vport } => {
                    be.apply_attach_pod(ip, vport);
                }
            }
        }
        if rcp.reconcile_due(now) {
            let installed = be.installed_acl_ips();
            rcp.reconcile(now, &installed);
        }
    }
}

/// Satellite: policy application is idempotent under at-least-once
/// delivery. A channel that duplicates *every* message leaves the
/// switch's update count, flush count and control-cycle bill exactly
/// where a perfect channel leaves them — duplicates are suppressed
/// before they touch the switch, and a clean cache never re-charges a
/// flush.
#[test]
fn duplicated_delivery_applies_updates_exactly_once() {
    let pods: [[u8; 4]; 3] = [[10, 1, 0, 10], [10, 1, 0, 11], [10, 1, 0, 12]];
    let table = victim_table();
    let mut program = ControlPlaneProgram::new();
    for (i, ip) in pods.iter().enumerate() {
        program.install_acl(
            SimTime::from_millis(10 + 20 * i as u64),
            u32::from_be_bytes(*ip),
            table.clone(),
        );
    }
    // A late install on pod 0, after traffic has dirtied the cache.
    program.install_acl(
        SimTime::from_millis(1_500),
        u32::from_be_bytes(pods[0]),
        table.clone(),
    );

    let run = |channel: Option<ChannelFaultConfig>| {
        let mut be = build_backend(DpConfig::default(), CostModel::default());
        for (i, ip) in pods.iter().enumerate() {
            be.attach_pod(u32::from_be_bytes(*ip), 1 + i as u32);
        }
        let mut rcp =
            ReliableControlPlane::new(program.clone(), ReliabilityConfig::default(), channel);
        drive(&mut rcp, be.as_mut(), 0, 1_000);
        // Dirty the cache with one whitelisted connection to pod 0,
        // so the 1.5 s install has real state to invalidate.
        let key = FlowKey::tcp(CLIENT_IP, pods[0], 40_000, 5201);
        assert_eq!(
            process_one(be.as_mut(), &key, SimTime::from_secs(1)).verdict,
            Action::Allow
        );
        drive(&mut rcp, be.as_mut(), 1_000, 3_000);
        let ch = rcp.stats();
        (be.stats(), ch)
    };

    // Every forward message (and ack) duplicated, none dropped.
    let dup_channel = ChannelFaultConfig {
        dup_p: 1.0,
        delay: SimTime::from_millis(1),
        ..ChannelFaultConfig::default()
    };
    let (dup_stats, dup_ch) = run(Some(dup_channel));
    let (perfect_stats, perfect_ch) = run(None);

    // The duplicates really happened — and were all suppressed before
    // reaching the switch.
    assert!(dup_ch.duplicated >= 4, "{dup_ch:?}");
    assert!(dup_ch.dup_suppressed >= 4, "{dup_ch:?}");
    assert_eq!(dup_ch.applied, 4, "{dup_ch:?}");
    assert_eq!(perfect_ch.applied, 4, "{perfect_ch:?}");

    // The switch cannot tell the channels apart: one apply per unique
    // update, no re-charged flushes, the same control-cycle bill.
    assert_eq!(dup_stats.policy_updates, perfect_stats.policy_updates);
    assert_eq!(
        dup_stats.policy_updates, 7,
        "3 build-time pod attaches + 4 installs, each counted once"
    );
    assert_eq!(dup_stats.cache_flushes, perfect_stats.cache_flushes);
    assert_eq!(
        dup_stats.cache_flushes, 1,
        "3 clean-cache installs coalesce; only the post-traffic install flushes"
    );
    assert_eq!(dup_stats.flushed_megaflows, perfect_stats.flushed_megaflows);
    assert_eq!(dup_stats.control_cycles, perfect_stats.control_cycles);
}

/// Satellite: a crash plus reconciliation restores classification
/// *semantics*, not just throughput. After convergence, the
/// crashed-and-recovered backend classifies an identical probe train
/// verdict-for-verdict like a twin that never crashed — on all four
/// dataplane architectures.
#[test]
fn restart_plus_reconciliation_preserves_semantics_verdict_for_verdict() {
    for kind in [
        BackendKind::OvsCache,
        BackendKind::ExactHash,
        BackendKind::LpmTier,
        BackendKind::NicOffload,
    ] {
        let dp = DpConfig {
            backend: kind,
            ..DpConfig::default()
        };
        let victim = u32::from_be_bytes(VICTIM_IP);
        let make = || {
            let mut be = build_backend(dp.clone(), CostModel::default());
            be.attach_pod(victim, 1);
            be.attach_pod(u32::from_be_bytes([10, 1, 0, 20]), 2);
            be
        };
        let mut program = ControlPlaneProgram::new();
        program.install_acl(SimTime::from_millis(10), victim, victim_table());

        let mut healthy = make();
        let mut healthy_rcp =
            ReliableControlPlane::new(program.clone(), ReliabilityConfig::default(), None);
        let mut recovered = make();
        let mut recovered_rcp =
            ReliableControlPlane::new(program, ReliabilityConfig::default(), None);

        drive(&mut healthy_rcp, healthy.as_mut(), 0, 500);
        drive(&mut recovered_rcp, recovered.as_mut(), 0, 500);
        assert_eq!(recovered.installed_acl_ips(), vec![victim], "{kind:?}");

        // Crash one switch: its ACL vanishes and the unauthorized
        // prober walks straight in — the hole reconciliation closes.
        recovered.crash_restart();
        recovered_rcp.on_switch_crash(SimTime::from_millis(500));
        let probe = FlowKey::tcp([10, 9, 0, 1], VICTIM_IP, 40_000, 5201);
        assert_eq!(
            process_one(recovered.as_mut(), &probe, SimTime::from_millis(500)).verdict,
            Action::Allow,
            "{kind:?}: crash opens the verdict hole"
        );
        assert_eq!(
            process_one(healthy.as_mut(), &probe, SimTime::from_millis(500)).verdict,
            Action::Deny,
            "{kind:?}"
        );

        drive(&mut healthy_rcp, healthy.as_mut(), 500, 2_000);
        drive(&mut recovered_rcp, recovered.as_mut(), 500, 2_000);
        assert!(!recovered_rcp.diverged(), "{kind:?}: reconciled");
        assert!(recovered_rcp.recoveries() >= 1, "{kind:?}");
        assert_eq!(recovered.installed_acl_ips(), vec![victim], "{kind:?}");

        // Identical probe train, verdict for verdict: whitelisted
        // client (allow), wrong port (deny), unauthorized sources
        // (deny), traffic to the unprotected pod (allow).
        let now = SimTime::from_secs(2);
        let mut train: Vec<FlowKey> = Vec::new();
        for i in 0..32u16 {
            train.push(FlowKey::tcp(CLIENT_IP, VICTIM_IP, 40_000 + i, 5201));
            train.push(FlowKey::tcp(CLIENT_IP, VICTIM_IP, 40_000 + i, 80));
            train.push(FlowKey::tcp(
                [10, 9, (i >> 8) as u8, i as u8],
                VICTIM_IP,
                1000,
                5201,
            ));
            train.push(FlowKey::tcp(CLIENT_IP, [10, 1, 0, 20], 40_000 + i, 9000));
        }
        for key in &train {
            let want = process_one(healthy.as_mut(), key, now).verdict;
            let got = process_one(recovered.as_mut(), key, now).verdict;
            assert_eq!(got, want, "{kind:?}: verdict diverged for {key:?}");
        }
    }
}
