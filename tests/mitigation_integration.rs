//! Cross-crate mitigation integration: the defender's tools applied to
//! the exact artefacts the attacker produces, plus randomised property
//! tests pinning the compiled (cache-less) datapath against the linear
//! reference over random policies.

use pi_mitigation::{attribute_masks, CompiledAcl, MaskBudget};
use policy_injection::prelude::*;

const TRIE_FIELDS: [Field; 4] = [Field::IpSrc, Field::IpDst, Field::TpSrc, Field::TpDst];

fn compile(spec: &AttackSpec) -> FlowTable {
    match spec.build_policy() {
        MaliciousAcl::K8s(p) => PolicyCompiler.compile_k8s(&p),
        MaliciousAcl::OpenStack(p) => PolicyCompiler.compile_security_group(&p),
        MaliciousAcl::Calico(p) => PolicyCompiler.compile_calico(&p),
    }
}

/// The admission pipeline a hardened CMS would run: compile → predict →
/// reject. The attacker's specs fail; the Fig. 3 victim's policy passes.
#[test]
fn hardened_cms_filters_attack_policies_only() {
    let budget = MaskBudget::default();
    for spec in [
        AttackSpec::masks_512(PolicyDialect::Kubernetes),
        AttackSpec::masks_512(PolicyDialect::OpenStack),
        AttackSpec::masks_8192(),
    ] {
        assert!(
            !budget.check(&compile(&spec), &TRIE_FIELDS).admitted(),
            "attack spec {spec:?} must be rejected"
        );
    }
    let victim = NetworkPolicy {
        name: "victim-iperf".into(),
        ingress: vec![pi_cms::IngressRule {
            from: vec!["10.0.0.0/8".parse().unwrap()],
            ports: vec![(pi_cms::Protocol::Tcp, Some(5201))],
        }],
    };
    assert!(budget
        .check(&PolicyCompiler.compile_k8s(&victim), &TRIE_FIELDS)
        .admitted());
}

/// After the covert populate pass, attribution pinpoints the attacker's
/// pod with the full mask count, even amid victim and background state.
#[test]
fn attribution_names_the_attacker_amid_noise() {
    let victim_ip = u32::from_be_bytes([10, 1, 0, 10]);
    let attacker_ip = u32::from_be_bytes([10, 1, 0, 66]);
    let bg_ip = u32::from_be_bytes([10, 1, 0, 20]);
    let mut sw = VSwitch::new(DpConfig::default());
    sw.attach_pod(victim_ip, 1);
    sw.attach_pod(attacker_ip, 2);
    sw.attach_pod(bg_ip, 3);
    let spec = AttackSpec::masks_8192();
    sw.install_acl(attacker_ip, compile(&spec));
    // Honest traffic to the other pods.
    let mut t = SimTime::from_millis(1);
    for i in 0..50u16 {
        sw.process(
            &FlowKey::tcp([10, 0, 0, 10], [10, 1, 0, 10], 40_000 + i, 5201),
            t,
        );
        sw.process(
            &FlowKey::tcp([10, 0, 1, 9], [10, 1, 0, 20], 9_000 + i, 80),
            t,
        );
        t += SimTime::from_micros(10);
    }
    // Covert populate.
    let seq = CovertSequence::new(spec.build_target(attacker_ip));
    for p in seq.populate_packets() {
        sw.process(&p, t);
        t += SimTime::from_micros(10);
    }
    let report = attribute_masks(&sw);
    assert_eq!(report[0].ip_dst, attacker_ip);
    assert_eq!(report[0].masks, 8192);
    let others: usize = report[1..].iter().map(|a| a.masks).sum();
    assert!(
        others <= 4,
        "honest pods carry trivial mask counts: {others}"
    );
}

/// Compiled ACLs agree with the linear reference on random whitelist
/// policies and random packets — the correctness side of the cache-less
/// mitigation.
#[test]
fn compiled_acl_equals_linear() {
    pi_core::for_cases(96, 0x51, |rng| {
        let n_allows = rng.gen_range(6);
        let whitelist: Vec<MaskedKey> = (0..n_allows)
            .map(|_| {
                let src = rng.next_u32();
                let len = 1 + rng.gen_range(32) as u8;
                let port = rng.gen_bool(0.5).then(|| 1 + rng.gen_range(2047) as u16);
                let mut key = FlowKey::tcp(
                    std::net::Ipv4Addr::from(src),
                    [0, 0, 0, 0],
                    0,
                    port.unwrap_or(0),
                );
                let mut mask = FlowMask::default().with_prefix(Field::IpSrc, len);
                if port.is_some() {
                    mask = mask.with_exact(Field::TpDst);
                } else {
                    key.tp_dst = 0;
                }
                MaskedKey::new(key, mask)
            })
            .collect();
        let n_packets = 1 + rng.gen_range(59);
        let packets: Vec<(u32, u16, u16)> = (0..n_packets)
            .map(|_| {
                (
                    rng.next_u32(),
                    rng.next_u32() as u16,
                    1 + rng.gen_range(2047) as u16,
                )
            })
            .collect();
        let table = pi_classifier::table::whitelist_with_default_deny(&whitelist);
        let compiled = CompiledAcl::compile(&table, Action::Deny);
        let linear = LinearClassifier::new(&table);
        for (src, sport, dport) in &packets {
            let pkt = FlowKey::tcp(
                std::net::Ipv4Addr::from(*src),
                [10, 1, 0, 66],
                *sport,
                *dport,
            );
            let expected = linear
                .classify(&pkt)
                .map(|r| r.action)
                .unwrap_or(Action::Deny);
            let (got, checks) = compiled.classify(&pkt);
            assert_eq!(got, expected, "packet {}", pkt);
            assert!(checks <= compiled.worst_case_checks());
        }
    });
}

/// The mask budget is monotone: admitting at limit L implies admitting
/// at any L' ≥ L, and the reported prediction is limit-independent.
#[test]
fn budget_monotonicity() {
    pi_core::for_cases(96, 0x52, |rng| {
        let ip_len = 1 + rng.gen_range(32) as u8;
        let with_port = rng.gen_bool(0.5);
        let limit = 1 + rng.gen_range(9_999);
        let spec = AttackSpec {
            dialect: PolicyDialect::Kubernetes,
            allow_src: Cidr::new(0xcb00_7107, ip_len).unwrap(),
            dst_port: with_port.then_some(443),
            src_port: None,
        };
        let table = compile(&spec);
        let d1 = MaskBudget::new(limit).check(&table, &TRIE_FIELDS);
        let d2 = MaskBudget::new(limit * 2).check(&table, &TRIE_FIELDS);
        if d1.admitted() {
            assert!(d2.admitted());
        }
        let expected = spec.predicted_masks();
        let reported = match d1 {
            pi_mitigation::AdmissionDecision::Admit { predicted_masks } => predicted_masks,
            pi_mitigation::AdmissionDecision::Reject {
                predicted_masks, ..
            } => predicted_masks,
        };
        assert_eq!(reported, expected);
    });
}
