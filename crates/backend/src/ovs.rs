//! The OVS-cache backend: [`VSwitch`] behind the trait.
//!
//! This is a pure delegation — every method forwards to the inherent
//! `VSwitch` method of the same name, so putting the switch behind
//! `dyn DataplaneBackend` cannot change verdicts, statistics, cycle
//! accounting or cache dynamics. The workspace-level differential test
//! (`tests/backend_differential.rs`) pins this bit-identically against
//! the direct `VSwitch` path on the fig3 and upcall-saturation
//! workloads.

use pi_classifier::FlowTable;
use pi_core::{FlowKey, SimTime};
use pi_datapath::emc::EmcStats;
use pi_datapath::{
    BackendKind, CostModel, DpConfig, PolicyUpdateOutcome, ProcessOutcome, ResolvedUpcall,
    RestartOutcome, SwitchStats, UpcallStats, VSwitch,
};
use pi_mitigation::MaskAttribution;
use pi_trace::Tracer;

use crate::api::DataplaneBackend;

// audit: allow-file(cost) -- pure delegation: VSwitch itself charges every packet/control op through this CostModel (pinned bit-identical by backend_differential.rs)
impl DataplaneBackend for VSwitch {
    fn kind(&self) -> BackendKind {
        BackendKind::OvsCache
    }

    fn config(&self) -> &DpConfig {
        VSwitch::config(self)
    }

    fn cost_model(&self) -> &CostModel {
        VSwitch::cost_model(self)
    }

    fn attach_pod(&mut self, ip: u32, vport: u32) -> bool {
        VSwitch::attach_pod(self, ip, vport)
    }

    fn install_acl(&mut self, ip: u32, table: FlowTable) -> bool {
        VSwitch::install_acl(self, ip, table)
    }

    fn remove_acl(&mut self, ip: u32) -> bool {
        VSwitch::remove_acl(self, ip)
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        VSwitch::set_tracer(self, tracer)
    }

    fn apply_install_acl(&mut self, ip: u32, table: FlowTable) -> PolicyUpdateOutcome {
        VSwitch::apply_install_acl(self, ip, table)
    }

    fn apply_remove_acl(&mut self, ip: u32) -> PolicyUpdateOutcome {
        VSwitch::apply_remove_acl(self, ip)
    }

    fn apply_attach_pod(&mut self, ip: u32, vport: u32) -> PolicyUpdateOutcome {
        VSwitch::apply_attach_pod(self, ip, vport)
    }

    fn process_batch(
        &mut self,
        keys: &[FlowKey],
        now: SimTime,
        sink: &mut dyn FnMut(usize, ProcessOutcome) -> bool,
    ) -> usize {
        VSwitch::process_batch(self, keys, now, sink)
    }

    fn drain_upcalls(&mut self, now: SimTime, sink: &mut dyn FnMut(ResolvedUpcall)) -> usize {
        VSwitch::drain_upcalls(self, now, sink)
    }

    fn revalidate(&mut self, now: SimTime) {
        VSwitch::revalidate(self, now);
    }

    fn next_background_event(&self, now: SimTime) -> Option<SimTime> {
        VSwitch::next_background_event(self, now)
    }

    fn stats(&self) -> SwitchStats {
        VSwitch::stats(self)
    }

    fn reset_stats(&mut self) {
        VSwitch::reset_stats(self)
    }

    fn emc_stats(&self) -> EmcStats {
        VSwitch::emc_stats(self)
    }

    fn upcall_stats(&self) -> UpcallStats {
        VSwitch::upcall_stats(self)
    }

    fn mask_count(&self) -> usize {
        VSwitch::mask_count(self)
    }

    fn megaflow_count(&self) -> usize {
        VSwitch::megaflow_count(self)
    }

    fn upcall_queue_depth(&self) -> usize {
        VSwitch::upcall_queue_depth(self)
    }

    fn attribution(&self) -> Vec<MaskAttribution> {
        pi_mitigation::attribute_masks(self)
    }

    fn crash_restart(&mut self) -> RestartOutcome {
        VSwitch::crash_restart(self)
    }

    fn installed_acl_ips(&self) -> Vec<u32> {
        VSwitch::installed_acl_ips(self)
    }

    fn set_port_quota(&mut self, quota: Option<u32>) -> bool {
        VSwitch::set_port_quota(self, quota)
    }

    fn set_staged_lookup(&mut self, enabled: bool) {
        VSwitch::set_staged_lookup(self, enabled)
    }

    fn set_scoped_invalidation(&mut self, scoped: bool) {
        VSwitch::set_scoped_invalidation(self, scoped)
    }

    fn quarantine(&mut self, ip: u32) -> usize {
        VSwitch::quarantine(self, ip)
    }

    fn release_quarantine(&mut self, ip: u32) -> bool {
        VSwitch::release_quarantine(self, ip)
    }

    fn is_quarantined(&self, ip: u32) -> bool {
        VSwitch::is_quarantined(self, ip)
    }

    fn as_vswitch(&self) -> Option<&VSwitch> {
        Some(self)
    }

    fn as_vswitch_mut(&mut self) -> Option<&mut VSwitch> {
        Some(self)
    }
}
