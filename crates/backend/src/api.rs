//! The [`DataplaneBackend`] trait: one contract over every dataplane
//! architecture the matrix compares.
//!
//! The trait is deliberately shaped after the surface `pi_sim::NodeCell`,
//! the fleet shards and the `pi_detect` telemetry tap already consumed
//! from [`VSwitch`] — implementing it for the OVS pipeline is pure
//! delegation, which is what lets the differential test pin the adapter
//! bit-identical to the direct path. Everything is object-safe: sinks
//! are `&mut dyn FnMut`, and the simulators hold a
//! `Box<dyn DataplaneBackend>`.

use pi_classifier::FlowTable;
use pi_core::{FlowKey, SimTime};
use pi_datapath::emc::EmcStats;
use pi_datapath::{
    BackendKind, CostModel, DpConfig, PolicyUpdateOutcome, ProcessOutcome, ResolvedUpcall,
    RestartOutcome, SwitchStats, UpcallStats, VSwitch,
};
use pi_mitigation::MaskAttribution;
use pi_trace::Tracer;

/// Maximum packets hashed per [`DataplaneBackend::process_batch`] phase
/// (OVS's `NETDEV_MAX_BURST`; the other backends adopt the same batching
/// granularity so tick loops need no per-backend array sizes).
pub const BATCH_SIZE: usize = VSwitch::BATCH_SIZE;

/// One dataplane architecture: classification, policy hooks, telemetry
/// and cycle charging behind a uniform, object-safe contract.
///
/// ## Contract
///
/// * **Verdict soundness** — for any packet, the verdict must equal what
///   the destination pod's ACL (ground truth: linear classification)
///   decides; backends differ in *cost* and *cached state*, never in
///   policy semantics.
/// * **Mechanical costing** — every `ProcessOutcome::cycles` and
///   `PolicyUpdateOutcome::cycles` is derived from counted work units
///   priced by the shared [`CostModel`]; no backend may invent a flat
///   "attack effect" constant.
/// * **Determinism** — identical call sequences produce identical
///   results; any internal randomness must come from the seeded
///   `DpConfig` (the fleet replays nodes across worker counts and pins
///   bit-identical reports).
/// * **Telemetry** — the statistics snapshots reuse the OVS vocabulary
///   ([`SwitchStats`], [`EmcStats`], [`UpcallStats`]); backends without
///   a given structure report zeros for its counters, so the `pi_detect`
///   tap runs unchanged everywhere.
pub trait DataplaneBackend: std::fmt::Debug + Send {
    /// Which architecture this is.
    fn kind(&self) -> BackendKind;

    /// The live configuration (kept in sync by the runtime setters, as
    /// [`VSwitch`] does).
    fn config(&self) -> &DpConfig;

    /// The cycle cost model in force.
    fn cost_model(&self) -> &CostModel;

    // --- Build-time topology (free, before the simulated clock) -----

    /// Attaches a pod: traffic to `ip` is delivered out of `vport`.
    /// Returns true for a fresh attach (see [`VSwitch::attach_pod`] for
    /// the re-attach semantics every backend mirrors).
    fn attach_pod(&mut self, ip: u32, vport: u32) -> bool;

    /// Installs (or replaces) the ingress ACL protecting the pod at
    /// `ip`. Returns false if no pod is attached there.
    fn install_acl(&mut self, ip: u32, table: FlowTable) -> bool;

    /// Removes the ACL at `ip` (pod reverts to allow-all).
    fn remove_acl(&mut self, ip: u32) -> bool;

    /// Attaches a trace handle: the costed control-plane entry points
    /// record their policy updates and cache flushes through it
    /// ([`pi_trace::TraceEventKind::PolicyUpdate`] /
    /// [`pi_trace::TraceEventKind::CacheFlush`]). The default drops the
    /// handle — a backend without flushable state may stay untraced —
    /// and a disabled tracer makes every emission a single no-op branch.
    fn set_tracer(&mut self, _tracer: Tracer) {}

    // --- Costed control-plane entry points --------------------------

    /// [`DataplaneBackend::install_acl`], costed: the outcome carries
    /// the datapath cycles the update consumed (fixed handling plus
    /// whatever invalidation/recompilation the architecture performs).
    fn apply_install_acl(&mut self, ip: u32, table: FlowTable) -> PolicyUpdateOutcome;

    /// [`DataplaneBackend::remove_acl`], costed.
    fn apply_remove_acl(&mut self, ip: u32) -> PolicyUpdateOutcome;

    /// [`DataplaneBackend::attach_pod`], costed.
    fn apply_attach_pod(&mut self, ip: u32, vport: u32) -> PolicyUpdateOutcome;

    // --- The datapath -----------------------------------------------

    /// Processes a run of pre-parsed flow keys in arrival order. `sink`
    /// receives each packet's index and outcome and returns whether to
    /// continue; returning `false` stops the run (the simulator's
    /// per-tick cycle budget), leaving later packets untouched. Returns
    /// the number of packets processed.
    fn process_batch(
        &mut self,
        keys: &[FlowKey],
        now: SimTime,
        sink: &mut dyn FnMut(usize, ProcessOutcome) -> bool,
    ) -> usize;

    /// Runs one handler step of the backend's deferred slow-path
    /// pipeline, if it has one. Backends that resolve every packet
    /// inline return 0 and never call `sink`.
    fn drain_upcalls(&mut self, now: SimTime, sink: &mut dyn FnMut(ResolvedUpcall)) -> usize;

    /// Runs the backend's periodic maintenance if due (idle eviction,
    /// table aging). Call once per simulated tick.
    fn revalidate(&mut self, now: SimTime);

    /// The next instant at which this backend performs observable
    /// background work on its own (a deferred-pipeline handler step or
    /// a maintenance sweep over live state), assuming no new packets or
    /// policy updates arrive. `Some(now)` means "busy right now";
    /// `None` means fully quiescent — `drain_upcalls` and `revalidate`
    /// calls strictly before the returned time are provable no-ops, so
    /// the event-driven engines may skip those ticks entirely. The
    /// conservative default never skips.
    fn next_background_event(&self, now: SimTime) -> Option<SimTime> {
        Some(now)
    }

    // --- Telemetry (the `pi_detect` tap surface) --------------------

    /// Aggregate statistics so far.
    fn stats(&self) -> SwitchStats;

    /// Resets packet/cycle counters (not cached state).
    fn reset_stats(&mut self);

    /// Exact-match/first-level cache statistics (zeros when the
    /// architecture has no such structure).
    fn emc_stats(&self) -> EmcStats;

    /// Deferred-pipeline statistics (zeros for inline-only backends;
    /// `quarantine_drops` is meaningful everywhere).
    fn upcall_stats(&self) -> UpcallStats;

    /// Distinct wildcard masks in the backend's flow cache — the
    /// paper's Fig. 3 observable. Architectures without a wildcard
    /// cache report 0: *there is no mask space to explode*.
    fn mask_count(&self) -> usize;

    /// Cached flow entries (megaflows, exact entries, offloaded flows —
    /// whatever the architecture stores per flow).
    fn megaflow_count(&self) -> usize;

    /// Pending deferred upcalls (0 for inline-only backends).
    fn upcall_queue_depth(&self) -> usize;

    /// Per-destination attribution of cached state (the offender
    ///-detection input). Backends without per-flow caches return an
    /// empty vector.
    fn attribution(&self) -> Vec<MaskAttribution>;

    // --- Crash/restart (the `pi_fault` surface) ---------------------

    /// Crashes and restarts the backend process: cached per-flow state,
    /// deferred work, quarantine markings and every installed ACL are
    /// lost (ports revert to allow-all); port attachments and lifetime
    /// statistics survive — see [`VSwitch::crash_restart`] for the
    /// reference semantics every backend mirrors. The fixed restart
    /// price ([`CostModel::restart_fixed`]) is charged by the caller.
    fn crash_restart(&mut self) -> RestartOutcome;

    /// Destination IPs with an installed (default-deny) ACL, ascending
    /// — what the reconciliation loop diffs against the CMS's desired
    /// state.
    fn installed_acl_ips(&self) -> Vec<u32>;

    // --- Defense actuators (the `pi_detect` controller surface) -----

    /// Sets the per-port fair-share quota of a bounded deferred
    /// pipeline. Returns false (and changes nothing) when the backend
    /// has no such pipeline.
    fn set_port_quota(&mut self, quota: Option<u32>) -> bool;

    /// Toggles staged subtable lookup (meaningful only for tuple-space
    /// architectures; a no-op elsewhere).
    fn set_staged_lookup(&mut self, enabled: bool);

    /// Switches between global and destination-scoped invalidation
    /// (a no-op for architectures that never flush wholesale).
    fn set_scoped_invalidation(&mut self, scoped: bool);

    /// Quarantines destination `ip`: its cached state is evicted and,
    /// until released, its slow-path service refused. Returns entries
    /// evicted.
    fn quarantine(&mut self, ip: u32) -> usize;

    /// Lifts the quarantine on `ip`. Returns whether it was quarantined.
    fn release_quarantine(&mut self, ip: u32) -> bool;

    /// Whether `ip` is currently quarantined.
    fn is_quarantined(&self, ip: u32) -> bool;

    // --- Escape hatch -----------------------------------------------

    /// Downcast to the OVS pipeline for OVS-only diagnostics (megaflow
    /// dumps, mask decompositions). `None` for every other backend.
    fn as_vswitch(&self) -> Option<&VSwitch> {
        None
    }

    /// Mutable variant of [`DataplaneBackend::as_vswitch`].
    fn as_vswitch_mut(&mut self) -> Option<&mut VSwitch> {
        None
    }

    /// Convenience: processes a single pre-parsed key (examples and
    /// tests; simulators use [`DataplaneBackend::process_batch`]).
    fn process_one(&mut self, key: &FlowKey, now: SimTime) -> ProcessOutcome
    where
        Self: Sized,
    {
        let mut out = None;
        self.process_batch(std::slice::from_ref(key), now, &mut |_, o| {
            out = Some(o);
            true
        });
        out.expect("one key in, one outcome out")
    }
}

/// Processes a single key through a boxed/borrowed backend (the
/// object-safe counterpart of [`DataplaneBackend::process_one`]).
pub fn process_one(
    backend: &mut dyn DataplaneBackend,
    key: &FlowKey,
    now: SimTime,
) -> ProcessOutcome {
    let mut out = None;
    backend.process_batch(std::slice::from_ref(key), now, &mut |_, o| {
        out = Some(o);
        true
    });
    out.expect("one key in, one outcome out")
}

/// Resolves `config.backend` into a concrete pipeline. This is the
/// scenario-setup dispatch point: the returned object is driven through
/// flat `dyn` calls from then on — no per-packet branching on the kind.
pub fn build_backend(config: DpConfig, cost: CostModel) -> Box<dyn DataplaneBackend> {
    match config.backend {
        BackendKind::OvsCache => Box::new(VSwitch::with_cost_model(config, cost)),
        BackendKind::ExactHash => Box::new(crate::ExactHash::new(config, cost)),
        BackendKind::LpmTier => Box::new(crate::LpmTier::new(config, cost)),
        BackendKind::NicOffload => Box::new(crate::NicOffload::new(config, cost)),
    }
}
