//! Shared host-side plumbing for the non-OVS backends: the pod/route
//! table, ground-truth classification and the quarantine set.
//!
//! Every architecture in the matrix enforces the *same* tenant policies
//! at the same attachment points — what differs is the caching structure
//! in front. [`PodTable`] is that common substrate: destination IP →
//! vport + compiled ingress ACL, with verdicts always produced by the
//! reference slow path ([`SlowPath`], linear classification ground
//! truth), so no backend can diverge on policy semantics.

use std::collections::{BTreeSet, HashMap};

use pi_classifier::{Action, FlowTable};
use pi_core::{Field, FlowKey};
use pi_datapath::SlowPath;
use pi_mitigation::MaskAttribution;

/// One pod attachment: vport + the pod's ingress policy.
#[derive(Debug, Clone)]
pub struct Pod {
    /// Delivery vport for permitted traffic.
    pub vport: u32,
    /// The pod's compiled ingress ACL (permissive allow-all when none
    /// is installed).
    pub slowpath: SlowPath,
}

/// The host-side routing + policy table shared by the non-OVS backends,
/// mirroring [`pi_datapath::VSwitch`]'s attach/install/remove semantics
/// (fresh-vs-re-attach, ACL-preserving vport moves, install refusal at
/// unattached IPs).
#[derive(Debug, Default)]
pub struct PodTable {
    routes: HashMap<u32, Pod>,
    /// Destinations refused slow-path service (BTreeSet for
    /// deterministic listing).
    quarantined: BTreeSet<u32>,
}

impl PodTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches (or re-homes) a pod. Returns true for a fresh attach;
    /// a re-attach moves the vport but preserves the installed ACL.
    pub fn attach_pod(&mut self, ip: u32, vport: u32) -> bool {
        match self.routes.get_mut(&ip) {
            Some(pod) => {
                pod.vport = vport;
                false
            }
            None => {
                self.routes.insert(
                    ip,
                    Pod {
                        vport,
                        slowpath: SlowPath::permissive(Action::Allow),
                    },
                );
                true
            }
        }
    }

    /// Installs the ingress ACL at `ip`; false when no pod is attached.
    pub fn install_acl(&mut self, ip: u32, table: FlowTable, trie_fields: &[Field]) -> bool {
        match self.routes.get_mut(&ip) {
            Some(pod) => {
                pod.slowpath = SlowPath::new(table, trie_fields, Action::Deny);
                true
            }
            None => false,
        }
    }

    /// Removes the ACL at `ip` (back to allow-all); false when no pod
    /// is attached.
    pub fn remove_acl(&mut self, ip: u32) -> bool {
        match self.routes.get_mut(&ip) {
            Some(pod) => {
                pod.slowpath = SlowPath::permissive(Action::Allow);
                true
            }
            None => false,
        }
    }

    /// The pod at `ip`, if attached.
    pub fn get(&self, ip: u32) -> Option<&Pod> {
        self.routes.get(&ip)
    }

    /// Ground-truth classification of `key` against its destination
    /// pod's ACL: `(verdict, rules examined, vport if deliverable)`.
    /// Unroutable destinations deny with zero rules examined, exactly
    /// like the OVS slow path.
    pub fn classify(&self, key: &FlowKey) -> (Action, usize, Option<u32>) {
        match self.routes.get(&key.ip_dst) {
            Some(pod) => {
                let (action, examined) = pod.slowpath.classify(key);
                let out = action.permits().then_some(pod.vport);
                (action, examined, out)
            }
            None => (Action::Deny, 0, None),
        }
    }

    /// Number of rules in the ACL at `ip` (0 when permissive or
    /// unattached) — the recompilation work a policy update costs.
    pub fn rules_at(&self, ip: u32) -> usize {
        self.routes.get(&ip).map_or(0, |p| p.slowpath.table().len())
    }

    /// Destination IPs with an installed (default-deny) ACL, ascending.
    pub fn acl_ips(&self) -> Vec<u32> {
        let mut ips: Vec<u32> = self
            .routes
            .iter()
            .filter(|(_, pod)| pod.slowpath.default_action() == Action::Deny)
            .map(|(ip, _)| *ip)
            .collect();
        ips.sort_unstable();
        ips
    }

    /// Crash wipe of the policy/quarantine half of a restart: every
    /// installed ACL reverts to allow-all and quarantine markings are
    /// lost; attachments survive (the node agent re-plumbs vports).
    /// Returns `(acls_lost, quarantines_lost)`.
    pub fn crash_reset(&mut self) -> (usize, usize) {
        let mut acls_lost = 0;
        for pod in self.routes.values_mut() {
            if pod.slowpath.default_action() == Action::Deny {
                pod.slowpath = SlowPath::permissive(Action::Allow);
                acls_lost += 1;
            }
        }
        let quarantines_lost = self.quarantined.len();
        self.quarantined.clear();
        (acls_lost, quarantines_lost)
    }

    /// Marks `ip` quarantined. Returns whether it was newly added.
    pub fn quarantine(&mut self, ip: u32) -> bool {
        self.quarantined.insert(ip)
    }

    /// Lifts the quarantine on `ip`.
    pub fn release_quarantine(&mut self, ip: u32) -> bool {
        self.quarantined.remove(&ip)
    }

    /// Whether `ip` is quarantined.
    pub fn is_quarantined(&self, ip: u32) -> bool {
        !self.quarantined.is_empty() && self.quarantined.contains(&ip)
    }
}

/// Attribution over an exact-match cache: groups entries by destination.
/// Every exact entry carries the same all-exact mask, so each populated
/// destination reports `masks == 1` — mask-threshold offender detection
/// correctly never fires (there is no mask space to explode); occupancy
/// pressure shows up in `entries` instead. Sorted by entries descending,
/// then destination, for deterministic top-k listings.
pub fn attribute_exact<'a>(keys: impl Iterator<Item = &'a FlowKey>) -> Vec<MaskAttribution> {
    let mut per_dst: HashMap<u32, usize> = HashMap::new();
    for k in keys {
        *per_dst.entry(k.ip_dst).or_default() += 1;
    }
    let mut out: Vec<MaskAttribution> = per_dst
        .into_iter()
        .map(|(ip_dst, entries)| MaskAttribution {
            ip_dst,
            masks: 1,
            entries,
        })
        .collect();
    out.sort_by_key(|a| (std::cmp::Reverse(a.entries), a.ip_dst));
    out
}
