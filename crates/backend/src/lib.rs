//! # pi-backend — pluggable dataplane backends
//!
//! The paper's attack exploits one specific architecture: the OVS-style
//! EMC → TSS → upcall cache hierarchy. This crate abstracts "the thing
//! that forwards a tenant's packets" behind the [`DataplaneBackend`]
//! trait so the same scenarios, attack schedules and telemetry taps can
//! be replayed against the architectures real clouds actually deploy —
//! turning the reproduction into a portable attack-class study:
//!
//! | backend | architecture | policy-injection surface |
//! |---|---|---|
//! | [`BackendKind::OvsCache`] ([`VSwitch`]) | shared EMC + tuple-space megaflow cache + slow path | **full**: mask explosion, EMC thrash, upcall flood, flush storms |
//! | [`BackendKind::ExactHash`] ([`ExactHash`]) | eBPF/Cilium-style exact-match connection map | per-flow setup cost only — no mask space to explode |
//! | [`BackendKind::LpmTier`] ([`LpmTier`]) | DPDK-style compiled longest-prefix tier, no flow cache | fixed per-packet walk — immune to cache-state attacks |
//! | [`BackendKind::NicOffload`] ([`NicOffload`]) | bounded SmartNIC offload table + costed host fallback | **partial**: offload-table thrash re-exposes the host CPU |
//!
//! Every backend charges cycles through the same [`CostModel`] — costs
//! are a function of the *counted work* each architecture performs
//! (probes, trie strides, rules scanned), never a per-backend constant,
//! so cross-backend capacity ratios are consequences of data-structure
//! dynamics, exactly like the single-switch reproduction.
//!
//! [`build_backend`] resolves a [`DpConfig`]'s
//! [`backend`](DpConfig::backend) field into a boxed trait object at
//! scenario-setup time; `pi_sim::NodeCell` and the fleet shards drive
//! whatever it returns. The [`VSwitch`] implementation is a direct
//! delegation — pinned bit-identical to the pre-trait pipeline by
//! `tests/backend_differential.rs` at the workspace root.

pub mod api;
pub mod exact;
pub mod host;
pub mod lpm;
pub mod nic;
pub mod ovs;

pub use api::{build_backend, process_one, DataplaneBackend, BATCH_SIZE};
pub use exact::ExactHash;
pub use lpm::LpmTier;
pub use nic::NicOffload;

// Re-exported so backend consumers need only this crate for the common
// vocabulary types.
pub use pi_datapath::{BackendKind, CostModel, DpConfig, VSwitch};
