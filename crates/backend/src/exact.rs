//! [`ExactHash`]: an eBPF/Cilium-style exact-match hash pipeline.
//!
//! Architecture: one flat exact-match connection map (the
//! [`FlatTable`] discipline from `pi_classifier`) in front of the
//! host policy classifier. A packet either hits its *own flow's* entry
//! — O(1), one probe run — or takes a per-flow setup miss: ground-truth
//! classification plus one map insert. There is **no wildcard cache**:
//! nothing in the datapath groups flows by mask, so an injected ACL has
//! no mask space to explode and one tenant's covert stream cannot
//! change another tenant's per-packet probe count.
//!
//! What the architecture still pays for:
//!
//! * **per-flow setup** — every new flow costs a full classification
//!   (`upcall_fixed` + `per_rule` × rules scanned) inline; a churn
//!   flood competes for the same CPU budget (no bounded queue to
//!   shed it),
//! * **map occupancy** — the map is bounded by `flow_limit`; beyond it,
//!   flows are classified per-packet (install refused, like OVS's
//!   flow-limit behaviour),
//! * **policy updates** — destination-scoped eviction walks the map
//!   (`flush_per_entry` per evicted flow), the Cilium-style per-identity
//!   invalidation.

use pi_classifier::{Action, FlatTable, FlowTable};
use pi_core::{FlowKey, KeyWords, SimTime};
use pi_datapath::emc::EmcStats;
use pi_datapath::{
    BackendKind, CostModel, DpConfig, PathTaken, PolicyUpdateOutcome, ProcessOutcome,
    ResolvedUpcall, RestartOutcome, SwitchStats, UpcallStats,
};
use pi_mitigation::MaskAttribution;
use pi_trace::Tracer;

use crate::api::DataplaneBackend;
use crate::host::PodTable;

/// One cached connection: verdict + LRU stamp for the idle sweep.
type Entry = (Action, SimTime);

/// The exact-match hash backend. See the module docs for the
/// architecture and its threat surface.
#[derive(Debug)]
pub struct ExactHash {
    config: DpConfig,
    cost: CostModel,
    table: FlatTable<Entry>,
    pods: PodTable,
    stats: SwitchStats,
    emc: EmcStats,
    upcall: UpcallStats,
    next_sweep: SimTime,
    tracer: Tracer,
}

impl ExactHash {
    /// Builds the backend from a datapath config (uses `flow_limit`,
    /// `idle_timeout`, `revalidator_interval` and `trie_fields`; the
    /// EMC and pipeline knobs have no counterpart here).
    pub fn new(config: DpConfig, cost: CostModel) -> Self {
        let next_sweep = config.revalidator_interval.max(SimTime::from_nanos(1));
        ExactHash {
            config,
            cost,
            table: FlatTable::new(),
            pods: PodTable::new(),
            stats: SwitchStats::default(),
            emc: EmcStats::default(),
            upcall: UpcallStats::default(),
            next_sweep,
            tracer: Tracer::disabled(),
        }
    }

    /// Evicts the connections towards `ip` and does the shared flush
    /// bookkeeping. Scoped by construction: exact entries know their
    /// destination, so there is no wholesale flush to fall back on.
    fn evict_destination(&mut self, ip: u32) -> usize {
        let before = self.table.len();
        self.table.retain(|k, _| k.ip_dst != ip);
        let evicted = before - self.table.len();
        if evicted > 0 {
            self.stats.cache_flushes += 1;
            self.stats.flushed_megaflows += evicted as u64;
        }
        evicted
    }

    fn charge_update(&mut self, op: u8, applied: bool, flushed: usize) -> PolicyUpdateOutcome {
        let cycles = self.cost.control_update_cycles(flushed);
        self.stats.cycles += cycles;
        self.stats.control_cycles += cycles;
        self.tracer
            .emit_policy_update(op, cycles, flushed as u32, true, applied);
        PolicyUpdateOutcome {
            applied,
            flushed_megaflows: flushed,
            scoped: true,
            cycles,
        }
    }

    fn process_with(&mut self, key: &FlowKey, now: SimTime) -> ProcessOutcome {
        self.stats.packets += 1;
        let hash = KeyWords::of(key).full_hash();

        // Level 1: the connection map.
        if let Some((action, last_used)) = self.table.get_mut(hash, key) {
            *last_used = now;
            let action = *action;
            self.emc.hits += 1;
            self.stats.microflow_hits += 1;
            let path = PathTaken::MicroflowHit;
            let cycles = self.cost.packet_cycles(&path);
            self.stats.cycles += cycles;
            let output = if action.permits() {
                self.pods.get(key.ip_dst).map(|p| p.vport)
            } else {
                None
            };
            if output.is_none() {
                self.stats.policy_drops += 1;
            }
            return ProcessOutcome {
                verdict: action,
                output,
                path,
                cycles,
            };
        }
        self.emc.misses += 1;

        // Quarantine gate: a map miss towards a quarantined destination
        // is refused classification outright.
        if self.pods.is_quarantined(key.ip_dst) {
            self.upcall.quarantine_drops += 1;
            let path = PathTaken::UpcallDropped {
                probes: 0,
                stage_checks: 0,
                emc_probed: true,
            };
            let cycles = self.cost.packet_cycles(&path);
            self.stats.cycles += cycles;
            return ProcessOutcome {
                verdict: Action::Controller,
                output: None,
                path,
                cycles,
            };
        }

        // Per-flow setup: ground-truth classification, then the map
        // insert (refused at the flow limit — such flows classify
        // per-packet, they never wedge the map).
        let (action, rules_examined, output) = self.pods.classify(key);
        let installed = self.table.len() < self.config.flow_limit;
        if installed {
            self.table.insert(hash, *key, (action, now));
            self.emc.inserts += 1;
        }
        self.stats.upcalls += 1;
        if output.is_none() {
            self.stats.policy_drops += 1;
        }
        let path = PathTaken::Upcall {
            probes: 0,
            stage_checks: 0,
            rules_examined,
            installed,
            emc_probed: true,
            emc_inserted: false,
        };
        let cycles = self.cost.packet_cycles(&path);
        self.stats.cycles += cycles;
        ProcessOutcome {
            verdict: action,
            output,
            path,
            cycles,
        }
    }
}

impl DataplaneBackend for ExactHash {
    fn kind(&self) -> BackendKind {
        BackendKind::ExactHash
    }

    fn config(&self) -> &DpConfig {
        &self.config
    }

    fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    fn attach_pod(&mut self, ip: u32, vport: u32) -> bool {
        self.stats.policy_updates += 1;
        let fresh = self.pods.attach_pod(ip, vport);
        // A fresh attach may shadow a cached unroutable-deny entry.
        self.evict_destination(ip);
        fresh
    }

    fn install_acl(&mut self, ip: u32, table: FlowTable) -> bool {
        let trie_fields = self.config.trie_fields.clone();
        if !self.pods.install_acl(ip, table, &trie_fields) {
            return false;
        }
        self.stats.policy_updates += 1;
        self.evict_destination(ip);
        true
    }

    fn remove_acl(&mut self, ip: u32) -> bool {
        if !self.pods.remove_acl(ip) {
            return false;
        }
        self.stats.policy_updates += 1;
        self.evict_destination(ip);
        true
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    fn apply_install_acl(&mut self, ip: u32, table: FlowTable) -> PolicyUpdateOutcome {
        let trie_fields = self.config.trie_fields.clone();
        if !self.pods.install_acl(ip, table, &trie_fields) {
            return self.charge_update(0, false, 0);
        }
        self.stats.policy_updates += 1;
        let flushed = self.evict_destination(ip);
        self.charge_update(0, true, flushed)
    }

    fn apply_remove_acl(&mut self, ip: u32) -> PolicyUpdateOutcome {
        if !self.pods.remove_acl(ip) {
            return self.charge_update(1, false, 0);
        }
        self.stats.policy_updates += 1;
        let flushed = self.evict_destination(ip);
        self.charge_update(1, true, flushed)
    }

    fn apply_attach_pod(&mut self, ip: u32, vport: u32) -> PolicyUpdateOutcome {
        self.stats.policy_updates += 1;
        let fresh = self.pods.attach_pod(ip, vport);
        let flushed = self.evict_destination(ip);
        self.charge_update(2, fresh, flushed)
    }

    fn process_batch(
        &mut self,
        keys: &[FlowKey],
        now: SimTime,
        sink: &mut dyn FnMut(usize, ProcessOutcome) -> bool,
    ) -> usize {
        for (i, key) in keys.iter().enumerate() {
            let outcome = self.process_with(key, now);
            if !sink(i, outcome) {
                return i + 1;
            }
        }
        keys.len()
    }

    fn drain_upcalls(&mut self, _now: SimTime, _sink: &mut dyn FnMut(ResolvedUpcall)) -> usize {
        0 // everything resolves inline; there is no deferred pipeline
    }

    fn revalidate(&mut self, now: SimTime) {
        if now < self.next_sweep {
            return;
        }
        let interval = self.config.revalidator_interval.max(SimTime::from_nanos(1));
        while self.next_sweep <= now {
            self.next_sweep += interval;
        }
        let idle_timeout = self.config.idle_timeout;
        self.table
            .retain(|_, (_, last_used)| *last_used + idle_timeout > now);
    }

    fn next_background_event(&self, _now: SimTime) -> Option<SimTime> {
        if self.table.is_empty() {
            // A sweep over an empty table evicts nothing and (because
            // the sweep deadline catches up by grid arithmetic) leaves
            // the next deadline exactly where a skipped call would.
            None
        } else {
            Some(self.next_sweep)
        }
    }

    fn stats(&self) -> SwitchStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = SwitchStats::default();
    }

    fn emc_stats(&self) -> EmcStats {
        self.emc
    }

    fn upcall_stats(&self) -> UpcallStats {
        self.upcall
    }

    fn mask_count(&self) -> usize {
        0 // no wildcard cache: there is no mask space to explode
    }

    fn megaflow_count(&self) -> usize {
        self.table.len()
    }

    fn upcall_queue_depth(&self) -> usize {
        0
    }

    fn attribution(&self) -> Vec<MaskAttribution> {
        crate::host::attribute_exact(self.table.iter().map(|(k, _)| k))
    }

    fn crash_restart(&mut self) -> RestartOutcome {
        let flows_lost = self.table.len();
        self.table = FlatTable::new();
        let (acls_lost, quarantines_lost) = self.pods.crash_reset();
        RestartOutcome {
            acls_lost,
            flows_lost,
            upcalls_lost: 0, // everything resolves inline; nothing queued
            quarantines_lost,
        }
    }

    fn installed_acl_ips(&self) -> Vec<u32> {
        self.pods.acl_ips()
    }

    fn set_port_quota(&mut self, _quota: Option<u32>) -> bool {
        false // no deferred pipeline to meter
    }

    fn set_staged_lookup(&mut self, _enabled: bool) {
        // No tuple-space walk to stage.
    }

    fn set_scoped_invalidation(&mut self, scoped: bool) {
        // Invalidations are destination-scoped by construction; the
        // config mirror is kept so controllers observe their writes.
        self.config.scoped_invalidation = scoped;
    }

    fn quarantine(&mut self, ip: u32) -> usize {
        self.pods.quarantine(ip);
        self.evict_destination(ip)
    }

    fn release_quarantine(&mut self, ip: u32) -> bool {
        self.pods.release_quarantine(ip)
    }

    fn is_quarantined(&self, ip: u32) -> bool {
        self.pods.is_quarantined(ip)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_classifier::table::whitelist_with_default_deny;
    use pi_core::{Field, FlowMask, MaskedKey};

    const POD_IP: [u8; 4] = [10, 0, 0, 99];

    fn backend_with_fig2_acl() -> ExactHash {
        let mut be = ExactHash::new(DpConfig::default(), CostModel::default());
        be.attach_pod(u32::from_be_bytes(POD_IP), 3);
        let allow = MaskedKey::new(
            FlowKey::tcp([10, 0, 0, 0], [0, 0, 0, 0], 0, 0),
            FlowMask::default().with_prefix(Field::IpSrc, 8),
        );
        be.install_acl(
            u32::from_be_bytes(POD_IP),
            whitelist_with_default_deny(&[allow]),
        );
        be
    }

    fn pkt(src: [u8; 4], tp_src: u16) -> FlowKey {
        FlowKey::tcp(src, POD_IP, tp_src, 5201)
    }

    #[test]
    fn first_packet_classifies_then_exact_hits() {
        let mut be = backend_with_fig2_acl();
        let t = SimTime::from_millis(1);
        let p = pkt([10, 1, 1, 1], 1000);
        let o1 = crate::api::process_one(&mut be, &p, t);
        assert!(o1.path.is_upcall());
        assert_eq!(o1.verdict, Action::Allow);
        assert_eq!(o1.output, Some(3));
        let o2 = crate::api::process_one(&mut be, &p, t);
        assert!(o2.path.is_microflow());
        assert!(o2.cycles < o1.cycles);
        assert_eq!(be.stats().packets, 2);
        assert_eq!(be.megaflow_count(), 1);
        assert_eq!(be.mask_count(), 0, "no wildcard cache exists");
    }

    #[test]
    fn covert_stream_does_not_change_victim_cost() {
        // The tuple-space explosion's signature is absent: after
        // thousands of unique covert flows, an established flow's
        // per-packet cost is still one exact probe.
        let mut be = backend_with_fig2_acl();
        let t = SimTime::from_millis(1);
        let victim = pkt([10, 1, 1, 1], 1000);
        crate::api::process_one(&mut be, &victim, t);
        let before = crate::api::process_one(&mut be, &victim, t).cycles;
        for i in 0..4096u32 {
            let covert = FlowKey::tcp(
                [172, (i >> 8) as u8, i as u8, 1],
                POD_IP,
                (i % 60_000) as u16 + 1,
                5201,
            );
            crate::api::process_one(&mut be, &covert, t);
        }
        let after = crate::api::process_one(&mut be, &victim, t).cycles;
        assert_eq!(before, after, "victim cost is attack-invariant");
        assert_eq!(be.mask_count(), 0);
    }

    #[test]
    fn deny_verdicts_match_ground_truth() {
        let mut be = backend_with_fig2_acl();
        let o = crate::api::process_one(&mut be, &pkt([99, 1, 1, 1], 1), SimTime::ZERO);
        assert_eq!(o.verdict, Action::Deny);
        assert_eq!(o.output, None);
        assert_eq!(be.stats().policy_drops, 1);
        // The deny verdict is cached too — an exact hit next time.
        let o = crate::api::process_one(&mut be, &pkt([99, 1, 1, 1], 1), SimTime::ZERO);
        assert!(o.path.is_microflow());
        assert_eq!(o.verdict, Action::Deny);
    }

    #[test]
    fn policy_update_evicts_only_that_destination() {
        let mut be = backend_with_fig2_acl();
        let other = u32::from_be_bytes([10, 0, 0, 98]);
        be.attach_pod(other, 5);
        let t = SimTime::from_millis(1);
        crate::api::process_one(&mut be, &pkt([10, 1, 1, 1], 1000), t);
        let bystander = FlowKey::tcp([10, 3, 3, 3], [10, 0, 0, 98], 1, 1);
        crate::api::process_one(&mut be, &bystander, t);
        assert_eq!(be.megaflow_count(), 2);
        let o = be.apply_remove_acl(u32::from_be_bytes(POD_IP));
        assert!(o.applied);
        assert!(o.scoped);
        assert_eq!(o.flushed_megaflows, 1, "only the updated pod's entry");
        let ob = crate::api::process_one(&mut be, &bystander, t);
        assert!(ob.path.is_microflow(), "bystander keeps its exact hit");
    }

    #[test]
    fn idle_sweep_evicts_stale_connections() {
        let mut be = backend_with_fig2_acl();
        crate::api::process_one(&mut be, &pkt([10, 1, 1, 1], 1000), SimTime::from_millis(1));
        assert_eq!(be.megaflow_count(), 1);
        be.revalidate(SimTime::from_secs(15));
        assert_eq!(be.megaflow_count(), 0, "idle timeout enforced");
    }

    #[test]
    fn quarantine_refuses_service_and_releases() {
        let mut be = backend_with_fig2_acl();
        let t = SimTime::from_millis(1);
        crate::api::process_one(&mut be, &pkt([10, 1, 1, 1], 1000), t);
        let evicted = DataplaneBackend::quarantine(&mut be, u32::from_be_bytes(POD_IP));
        assert_eq!(evicted, 1);
        let o = crate::api::process_one(&mut be, &pkt([10, 1, 1, 1], 1000), t);
        assert!(o.path.is_upcall_dropped());
        assert_eq!(be.upcall_stats().quarantine_drops, 1);
        assert!(DataplaneBackend::release_quarantine(
            &mut be,
            u32::from_be_bytes(POD_IP)
        ));
        let o = crate::api::process_one(&mut be, &pkt([10, 1, 1, 1], 1000), t);
        assert_eq!(o.verdict, Action::Allow);
    }

    #[test]
    fn flow_limit_refuses_installs_but_still_classifies() {
        let mut be = ExactHash::new(
            DpConfig {
                flow_limit: 2,
                ..DpConfig::default()
            },
            CostModel::default(),
        );
        be.attach_pod(u32::from_be_bytes(POD_IP), 3);
        let t = SimTime::ZERO;
        for i in 0..4u16 {
            let o = crate::api::process_one(&mut be, &pkt([10, 1, 1, i as u8 + 1], 1000 + i), t);
            assert_eq!(o.verdict, Action::Allow, "verdict sound past the limit");
        }
        assert_eq!(be.megaflow_count(), 2, "map bounded by flow_limit");
    }
}
