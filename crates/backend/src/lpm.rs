//! [`LpmTier`]: a DPDK-style compiled longest-prefix-match pipeline.
//!
//! Architecture: no flow cache at all. Policies are compiled into fixed
//! lookup tiers — a routing tier (an LPM walk over the attached pod
//! addresses, reusing [`PrefixTrie`] as the stride structure) followed
//! by per-field ACL tiers, one 8-bit stride per byte of every compiled
//! field. Every packet walks the same number of strides, so the
//! per-packet cost is a **compile-time constant**: nothing a covert
//! stream does can change what the next packet costs.
//!
//! This is the `rte_lpm`/`rte_acl` run-to-completion design: costs
//! count stride loads (`per_subtable` per stride for the table index
//! step, `per_stage_hash` per stride for the node fetch+branch), so
//! the fixed walk is priced through the same [`CostModel`] vocabulary
//! as the cache hierarchy it replaces.
//!
//! What the architecture pays instead:
//!
//! * **every packet walks the full pipeline** — there is no O(1) hit
//!   path, so the *benign* baseline is slower than a warm cache,
//! * **policy updates recompile** — an update costs `acl_update_fixed`
//!   plus `per_rule` for every rule recompiled into the tiers (the
//!   attack surface that remains: update *rate*, not datapath state).

use pi_classifier::{Action, FlowTable, PrefixTrie};
use pi_core::{Field, FlowKey, SimTime};
use pi_datapath::emc::EmcStats;
use pi_datapath::{
    BackendKind, CostModel, DpConfig, PathTaken, PolicyUpdateOutcome, ProcessOutcome,
    ResolvedUpcall, RestartOutcome, SwitchStats, UpcallStats,
};
use pi_mitigation::MaskAttribution;
use pi_trace::Tracer;

use crate::api::DataplaneBackend;
use crate::host::PodTable;

/// Stride width of the compiled tiers, in bits (DPDK's LPM/ACL designs
/// are byte-oriented).
const STRIDE_BITS: u8 = 8;

/// The compiled longest-prefix-match backend. See the module docs for
/// the architecture and its threat surface.
#[derive(Debug)]
pub struct LpmTier {
    config: DpConfig,
    cost: CostModel,
    pods: PodTable,
    /// The routing tier: attached pod addresses as /32 prefixes. The
    /// walk depth (width / stride) is what the route lookup costs.
    routes: PrefixTrie,
    /// Strides in the routing tier walk.
    route_strides: usize,
    /// Strides across the compiled ACL tiers (one tier per configured
    /// classification field, one stride per byte of field width).
    acl_strides: usize,
    stats: SwitchStats,
    upcall: UpcallStats,
    tracer: Tracer,
}

impl LpmTier {
    /// Builds the backend from a datapath config. `trie_fields` decides
    /// which fields the ACL tiers compile (hence the fixed walk length);
    /// the cache/EMC/pipeline knobs have no counterpart here.
    pub fn new(config: DpConfig, cost: CostModel) -> Self {
        let route_strides = stride_count(Field::IpDst);
        let acl_strides = config.trie_fields.iter().copied().map(stride_count).sum();
        LpmTier {
            config,
            cost,
            pods: PodTable::new(),
            routes: PrefixTrie::new(Field::IpDst),
            route_strides,
            acl_strides,
            stats: SwitchStats::default(),
            upcall: UpcallStats::default(),
            tracer: Tracer::disabled(),
        }
    }

    /// The compile-time per-packet walk length, in strides.
    pub fn strides_per_packet(&self) -> usize {
        self.route_strides + self.acl_strides
    }

    fn charge_update(
        &mut self,
        op: u8,
        applied: bool,
        rules_recompiled: usize,
    ) -> PolicyUpdateOutcome {
        // Recompilation: fixed control-plane handling plus one rule-visit
        // per rule folded into the tiers. Nothing is flushed — there is
        // no cached state to invalidate.
        let cycles =
            self.cost.control_update_cycles(0) + rules_recompiled as u64 * self.cost.per_rule;
        self.stats.cycles += cycles;
        self.stats.control_cycles += cycles;
        // Nothing cached, nothing flushed: the trace shows the update
        // itself (recompilation cost) with no CacheFlush — the visible
        // proof of this architecture's immunity.
        self.tracer.emit_policy_update(op, cycles, 0, true, applied);
        PolicyUpdateOutcome {
            applied,
            flushed_megaflows: 0,
            scoped: true,
            cycles,
        }
    }

    fn process_with(&mut self, key: &FlowKey, now: SimTime) -> ProcessOutcome {
        let _ = now; // stateless: nothing ages, nothing is stamped
        self.stats.packets += 1;

        // Tier 1: the routing walk. An unroutable destination terminates
        // the pipeline here — only the route strides are spent.
        let routable = self.routes.longest_match(key.ip_dst as u64) == Some(32);
        if !routable {
            let path = fixed_walk(self.route_strides);
            let cycles = self.cost.packet_cycles(&path);
            self.stats.cycles += cycles;
            self.stats.subtable_probes += self.route_strides as u64;
            self.stats.policy_drops += 1;
            self.stats.megaflow_hits += 1;
            return ProcessOutcome {
                verdict: Action::Deny,
                output: None,
                path,
                cycles,
            };
        }

        // Quarantine gate, applied after routing like the OVS upcall
        // gate: the destination's pipeline service is refused.
        if self.pods.is_quarantined(key.ip_dst) {
            self.upcall.quarantine_drops += 1;
            let path = PathTaken::UpcallDropped {
                probes: self.route_strides,
                stage_checks: self.route_strides,
                emc_probed: false,
            };
            let cycles = self.cost.packet_cycles(&path);
            self.stats.cycles += cycles;
            self.stats.subtable_probes += self.route_strides as u64;
            return ProcessOutcome {
                verdict: Action::Controller,
                output: None,
                path,
                cycles,
            };
        }

        // Tier 2: the compiled ACL walk — constant strides, verdict from
        // the pod's policy (the compiled tiers are semantically exact).
        let (action, _rules, output) = self.pods.classify(key);
        let strides = self.strides_per_packet();
        let path = fixed_walk(strides);
        let cycles = self.cost.packet_cycles(&path);
        self.stats.cycles += cycles;
        self.stats.subtable_probes += strides as u64;
        self.stats.megaflow_hits += 1;
        if output.is_none() {
            self.stats.policy_drops += 1;
        }
        ProcessOutcome {
            verdict: action,
            output,
            path,
            cycles,
        }
    }
}

/// Strides needed to walk one field's compiled tier.
fn stride_count(field: Field) -> usize {
    field.width().div_ceil(STRIDE_BITS) as usize
}

/// The fixed compiled walk as a path: `strides` table-index steps priced
/// `per_subtable` each plus `strides` node fetches priced
/// `per_stage_hash` each; no EMC exists to probe.
fn fixed_walk(strides: usize) -> PathTaken {
    PathTaken::MegaflowHit {
        probes: strides,
        stage_checks: strides,
        emc_probed: false,
        emc_inserted: false,
    }
}

impl DataplaneBackend for LpmTier {
    fn kind(&self) -> BackendKind {
        BackendKind::LpmTier
    }

    fn config(&self) -> &DpConfig {
        &self.config
    }

    fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    fn attach_pod(&mut self, ip: u32, vport: u32) -> bool {
        self.stats.policy_updates += 1;
        self.routes.insert(ip as u64, 32);
        self.pods.attach_pod(ip, vport)
    }

    fn install_acl(&mut self, ip: u32, table: FlowTable) -> bool {
        let trie_fields = self.config.trie_fields.clone();
        if !self.pods.install_acl(ip, table, &trie_fields) {
            return false;
        }
        self.stats.policy_updates += 1;
        true
    }

    fn remove_acl(&mut self, ip: u32) -> bool {
        if !self.pods.remove_acl(ip) {
            return false;
        }
        self.stats.policy_updates += 1;
        true
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    fn apply_install_acl(&mut self, ip: u32, table: FlowTable) -> PolicyUpdateOutcome {
        let rules = table.len();
        if !DataplaneBackend::install_acl(self, ip, table) {
            return self.charge_update(0, false, 0);
        }
        self.charge_update(0, true, rules)
    }

    fn apply_remove_acl(&mut self, ip: u32) -> PolicyUpdateOutcome {
        // Recompiling *out* the old ACL revisits its rules.
        let rules = self.pods.rules_at(ip);
        if !DataplaneBackend::remove_acl(self, ip) {
            return self.charge_update(1, false, 0);
        }
        self.charge_update(1, true, rules)
    }

    fn apply_attach_pod(&mut self, ip: u32, vport: u32) -> PolicyUpdateOutcome {
        let fresh = DataplaneBackend::attach_pod(self, ip, vport);
        self.charge_update(2, fresh, 0)
    }

    fn process_batch(
        &mut self,
        keys: &[FlowKey],
        now: SimTime,
        sink: &mut dyn FnMut(usize, ProcessOutcome) -> bool,
    ) -> usize {
        for (i, key) in keys.iter().enumerate() {
            let outcome = self.process_with(key, now);
            if !sink(i, outcome) {
                return i + 1;
            }
        }
        keys.len()
    }

    fn drain_upcalls(&mut self, _now: SimTime, _sink: &mut dyn FnMut(ResolvedUpcall)) -> usize {
        0 // run-to-completion: no slow path exists
    }

    fn revalidate(&mut self, _now: SimTime) {
        // Stateless: nothing to age or revalidate.
    }

    fn next_background_event(&self, _now: SimTime) -> Option<SimTime> {
        None // run-to-completion and stateless: never busy on its own
    }

    fn stats(&self) -> SwitchStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = SwitchStats::default();
    }

    fn emc_stats(&self) -> EmcStats {
        EmcStats::default() // no first-level cache exists
    }

    fn upcall_stats(&self) -> UpcallStats {
        self.upcall
    }

    fn mask_count(&self) -> usize {
        0 // no wildcard cache: there is no mask space to explode
    }

    fn megaflow_count(&self) -> usize {
        0 // no per-flow state at all
    }

    fn upcall_queue_depth(&self) -> usize {
        0
    }

    fn attribution(&self) -> Vec<MaskAttribution> {
        Vec::new() // nothing cached, nothing to attribute
    }

    fn crash_restart(&mut self) -> RestartOutcome {
        // The datapath is stateless — no flow cache or deferred work to
        // lose. Only the policy half dies with the process: installed
        // ACLs and quarantine markings. (The compiled tiers are rebuilt
        // from the surviving attachments at respawn; their walk depth is
        // config-derived, so nothing observable changes there.)
        let (acls_lost, quarantines_lost) = self.pods.crash_reset();
        RestartOutcome {
            acls_lost,
            flows_lost: 0,
            upcalls_lost: 0,
            quarantines_lost,
        }
    }

    fn installed_acl_ips(&self) -> Vec<u32> {
        self.pods.acl_ips()
    }

    fn set_port_quota(&mut self, _quota: Option<u32>) -> bool {
        false // no deferred pipeline to meter
    }

    fn set_staged_lookup(&mut self, _enabled: bool) {
        // No tuple-space walk to stage.
    }

    fn set_scoped_invalidation(&mut self, scoped: bool) {
        // Nothing is ever flushed; the config mirror is kept so
        // controllers observe their writes.
        self.config.scoped_invalidation = scoped;
    }

    fn quarantine(&mut self, ip: u32) -> usize {
        self.pods.quarantine(ip);
        0 // no cached state to evict
    }

    fn release_quarantine(&mut self, ip: u32) -> bool {
        self.pods.release_quarantine(ip)
    }

    fn is_quarantined(&self, ip: u32) -> bool {
        self.pods.is_quarantined(ip)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_classifier::table::whitelist_with_default_deny;
    use pi_core::{FlowMask, MaskedKey};

    const POD_IP: [u8; 4] = [10, 0, 0, 99];

    fn backend_with_fig2_acl() -> LpmTier {
        let mut be = LpmTier::new(DpConfig::default(), CostModel::default());
        be.attach_pod(u32::from_be_bytes(POD_IP), 3);
        let allow = MaskedKey::new(
            FlowKey::tcp([10, 0, 0, 0], [0, 0, 0, 0], 0, 0),
            FlowMask::default().with_prefix(Field::IpSrc, 8),
        );
        DataplaneBackend::install_acl(
            &mut be,
            u32::from_be_bytes(POD_IP),
            whitelist_with_default_deny(&[allow]),
        );
        be
    }

    fn pkt(src: [u8; 4], tp_src: u16) -> FlowKey {
        FlowKey::tcp(src, POD_IP, tp_src, 5201)
    }

    #[test]
    fn every_packet_costs_the_compiled_walk() {
        let mut be = backend_with_fig2_acl();
        // Default fields: IpSrc + IpDst + TpSrc + TpDst = 12 ACL strides
        // plus 4 routing strides.
        assert_eq!(be.strides_per_packet(), 16);
        let cm = CostModel::default();
        let expected = cm.parse + 16 * (cm.per_subtable + cm.per_stage_hash);
        let t = SimTime::from_millis(1);
        let o1 = crate::api::process_one(&mut be, &pkt([10, 1, 1, 1], 1000), t);
        assert_eq!(o1.verdict, Action::Allow);
        assert_eq!(o1.output, Some(3));
        assert_eq!(o1.cycles, expected);
        // Repeats cost exactly the same — there is no cache to warm.
        let o2 = crate::api::process_one(&mut be, &pkt([10, 1, 1, 1], 1000), t);
        assert_eq!(o2.cycles, expected);
    }

    #[test]
    fn covert_stream_cannot_perturb_the_walk() {
        let mut be = backend_with_fig2_acl();
        let t = SimTime::from_millis(1);
        let victim = pkt([10, 1, 1, 1], 1000);
        let before = crate::api::process_one(&mut be, &victim, t).cycles;
        for i in 0..4096u32 {
            let covert = FlowKey::tcp(
                [172, (i >> 8) as u8, i as u8, 1],
                POD_IP,
                (i % 60_000) as u16 + 1,
                5201,
            );
            crate::api::process_one(&mut be, &covert, t);
        }
        let after = crate::api::process_one(&mut be, &victim, t).cycles;
        assert_eq!(before, after, "fixed-cost pipeline is attack-invariant");
        assert_eq!(be.mask_count(), 0);
        assert_eq!(be.megaflow_count(), 0, "no per-flow state accumulates");
    }

    #[test]
    fn verdicts_match_ground_truth() {
        let mut be = backend_with_fig2_acl();
        let allowed = crate::api::process_one(&mut be, &pkt([10, 1, 1, 1], 1), SimTime::ZERO);
        assert_eq!(allowed.verdict, Action::Allow);
        let denied = crate::api::process_one(&mut be, &pkt([99, 1, 1, 1], 1), SimTime::ZERO);
        assert_eq!(denied.verdict, Action::Deny);
        assert_eq!(denied.output, None);
        assert_eq!(be.stats().policy_drops, 1);
    }

    #[test]
    fn unroutable_destination_stops_at_the_route_tier() {
        let mut be = backend_with_fig2_acl();
        let stray = FlowKey::tcp([10, 1, 1, 1], [192, 168, 0, 1], 1, 1);
        let o = crate::api::process_one(&mut be, &stray, SimTime::ZERO);
        assert_eq!(o.verdict, Action::Deny);
        let cm = CostModel::default();
        assert_eq!(
            o.cycles,
            cm.parse + 4 * (cm.per_subtable + cm.per_stage_hash)
        );
    }

    #[test]
    fn policy_update_costs_recompilation_not_flushes() {
        let mut be = backend_with_fig2_acl();
        let allow = MaskedKey::new(
            FlowKey::tcp([10, 0, 0, 0], [0, 0, 0, 0], 0, 0),
            FlowMask::default().with_prefix(Field::IpSrc, 16),
        );
        let o = be.apply_install_acl(
            u32::from_be_bytes(POD_IP),
            whitelist_with_default_deny(&[allow]),
        );
        assert!(o.applied);
        assert_eq!(o.flushed_megaflows, 0, "nothing cached, nothing flushed");
        let cm = CostModel::default();
        // 2 rules recompiled: the whitelist entry + the default-deny.
        assert_eq!(o.cycles, cm.control_update_cycles(0) + 2 * cm.per_rule);
        // An update at an unattached IP is refused but still costs the
        // fixed control-plane handling.
        let miss = be.apply_install_acl(
            u32::from_be_bytes([9, 9, 9, 9]),
            whitelist_with_default_deny(&[]),
        );
        assert!(!miss.applied);
        assert_eq!(miss.cycles, cm.control_update_cycles(0));
    }

    #[test]
    fn quarantine_gates_after_routing() {
        let mut be = backend_with_fig2_acl();
        DataplaneBackend::quarantine(&mut be, u32::from_be_bytes(POD_IP));
        let o = crate::api::process_one(&mut be, &pkt([10, 1, 1, 1], 1), SimTime::ZERO);
        assert!(o.path.is_upcall_dropped());
        assert_eq!(be.upcall_stats().quarantine_drops, 1);
        assert!(DataplaneBackend::release_quarantine(
            &mut be,
            u32::from_be_bytes(POD_IP)
        ));
        let o = crate::api::process_one(&mut be, &pkt([10, 1, 1, 1], 1), SimTime::ZERO);
        assert_eq!(o.verdict, Action::Allow);
    }
}
