//! [`NicOffload`]: a SmartNIC flow-offload model with a costed host
//! fallback.
//!
//! Architecture: a **hardware-bounded** exact-match offload table (the
//! Mellanox/ConnectX `flower`-offload shape) in front of the host slow
//! path. Offloaded flows forward at first-level-hit cost; everything
//! else falls back to the host CPU for a full classification and is
//! then programmed into the NIC, evicting the oldest offloaded flow
//! once the table is full (FIFO replacement, the usual firmware
//! policy).
//!
//! The threat surface sits between the exact-hash and OVS extremes:
//! there is still no wildcard mask space to explode, but the offload
//! table is *small and shared*. A covert stream of fresh flows cycles
//! the FIFO, evicting benign tenants' offloaded flows, so victims
//! periodically re-fault onto the host CPU — capacity degrades in
//! proportion to eviction pressure rather than collapsing. The
//! `collision_evictions` counter is the thrash observable the detector
//! watches.

use std::collections::VecDeque;

use pi_classifier::{Action, FlatTable, FlowTable};
use pi_core::{FlowKey, KeyWords, SimTime};
use pi_datapath::emc::EmcStats;
use pi_datapath::{
    BackendKind, CostModel, DpConfig, PathTaken, PolicyUpdateOutcome, ProcessOutcome,
    ResolvedUpcall, RestartOutcome, SwitchStats, UpcallStats,
};
use pi_mitigation::MaskAttribution;
use pi_trace::Tracer;

use crate::api::DataplaneBackend;
use crate::host::PodTable;

/// Hardware flow-table capacity. Fixed by the modelled NIC, not by the
/// host's `flow_limit` — the asymmetry between a ~2k offload table and
/// a ~200k host cache is exactly what re-exposes the host CPU under
/// churn.
pub const OFFLOAD_CAPACITY: usize = 2048;

/// One offloaded flow: verdict, last-use stamp for the idle sweep, and
/// the insertion sequence number its FIFO record must match (stale
/// records are skipped lazily at eviction time).
type Entry = (Action, SimTime, u64);

/// The SmartNIC-offload backend. See the module docs for the
/// architecture and its threat surface.
#[derive(Debug)]
pub struct NicOffload {
    config: DpConfig,
    cost: CostModel,
    table: FlatTable<Entry>,
    /// Insertion order for FIFO replacement: `(hash, key, seq)`. A
    /// record is live iff the table still holds that key with the same
    /// sequence number; dead records are popped and skipped lazily.
    fifo: VecDeque<(u64, FlowKey, u64)>,
    next_seq: u64,
    pods: PodTable,
    stats: SwitchStats,
    emc: EmcStats,
    upcall: UpcallStats,
    next_sweep: SimTime,
    tracer: Tracer,
}

impl NicOffload {
    /// Builds the backend from a datapath config (uses `idle_timeout`,
    /// `revalidator_interval` and `trie_fields`; the table size is the
    /// hardware constant [`OFFLOAD_CAPACITY`]).
    pub fn new(config: DpConfig, cost: CostModel) -> Self {
        let next_sweep = config.revalidator_interval.max(SimTime::from_nanos(1));
        NicOffload {
            config,
            cost,
            table: FlatTable::new(),
            fifo: VecDeque::new(),
            next_seq: 0,
            pods: PodTable::new(),
            stats: SwitchStats::default(),
            emc: EmcStats::default(),
            upcall: UpcallStats::default(),
            next_sweep,
            tracer: Tracer::disabled(),
        }
    }

    /// Programs a flow into the offload table, FIFO-evicting the oldest
    /// live offloaded flow if the hardware table is full.
    fn offload(&mut self, hash: u64, key: FlowKey, action: Action, now: SimTime) {
        if self.table.len() >= OFFLOAD_CAPACITY {
            while let Some((h, k, seq)) = self.fifo.pop_front() {
                let live = self
                    .table
                    .get(h, &k)
                    .is_some_and(|(_, _, entry_seq)| *entry_seq == seq);
                if live {
                    self.table.remove(h, &k);
                    self.emc.collision_evictions += 1;
                    break;
                }
                // Stale record (idle-swept, policy-evicted or
                // re-offloaded since): skip it.
            }
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.table.insert(hash, key, (action, now, seq));
        self.fifo.push_back((hash, key, seq));
        self.emc.inserts += 1;
    }

    /// Evicts the offloaded flows towards `ip` plus the shared flush
    /// bookkeeping (scoped by construction, like every exact-match
    /// structure).
    fn evict_destination(&mut self, ip: u32) -> usize {
        let before = self.table.len();
        self.table.retain(|k, _| k.ip_dst != ip);
        let evicted = before - self.table.len();
        if evicted > 0 {
            self.stats.cache_flushes += 1;
            self.stats.flushed_megaflows += evicted as u64;
        }
        evicted
    }

    fn charge_update(&mut self, op: u8, applied: bool, flushed: usize) -> PolicyUpdateOutcome {
        let cycles = self.cost.control_update_cycles(flushed);
        self.stats.cycles += cycles;
        self.stats.control_cycles += cycles;
        self.tracer
            .emit_policy_update(op, cycles, flushed as u32, true, applied);
        PolicyUpdateOutcome {
            applied,
            flushed_megaflows: flushed,
            scoped: true,
            cycles,
        }
    }

    fn process_with(&mut self, key: &FlowKey, now: SimTime) -> ProcessOutcome {
        self.stats.packets += 1;
        let hash = KeyWords::of(key).full_hash();

        // Hardware hit: forwarded without touching the host CPU.
        if let Some((action, last_used, _)) = self.table.get_mut(hash, key) {
            *last_used = now;
            let action = *action;
            self.emc.hits += 1;
            self.stats.microflow_hits += 1;
            let path = PathTaken::MicroflowHit;
            let cycles = self.cost.packet_cycles(&path);
            self.stats.cycles += cycles;
            let output = if action.permits() {
                self.pods.get(key.ip_dst).map(|p| p.vport)
            } else {
                None
            };
            if output.is_none() {
                self.stats.policy_drops += 1;
            }
            return ProcessOutcome {
                verdict: action,
                output,
                path,
                cycles,
            };
        }
        self.emc.misses += 1;

        // Host fallback refuses quarantined destinations outright.
        if self.pods.is_quarantined(key.ip_dst) {
            self.upcall.quarantine_drops += 1;
            let path = PathTaken::UpcallDropped {
                probes: 0,
                stage_checks: 0,
                emc_probed: true,
            };
            let cycles = self.cost.packet_cycles(&path);
            self.stats.cycles += cycles;
            return ProcessOutcome {
                verdict: Action::Controller,
                output: None,
                path,
                cycles,
            };
        }

        // Host fallback: full classification on the host CPU, then the
        // NIC is programmed with the result (`installed` prices the
        // firmware round trip).
        let (action, rules_examined, output) = self.pods.classify(key);
        self.offload(hash, *key, action, now);
        self.stats.upcalls += 1;
        if output.is_none() {
            self.stats.policy_drops += 1;
        }
        let path = PathTaken::Upcall {
            probes: 0,
            stage_checks: 0,
            rules_examined,
            installed: true,
            emc_probed: true,
            emc_inserted: false,
        };
        let cycles = self.cost.packet_cycles(&path);
        self.stats.cycles += cycles;
        ProcessOutcome {
            verdict: action,
            output,
            path,
            cycles,
        }
    }
}

impl DataplaneBackend for NicOffload {
    fn kind(&self) -> BackendKind {
        BackendKind::NicOffload
    }

    fn config(&self) -> &DpConfig {
        &self.config
    }

    fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    fn attach_pod(&mut self, ip: u32, vport: u32) -> bool {
        self.stats.policy_updates += 1;
        let fresh = self.pods.attach_pod(ip, vport);
        self.evict_destination(ip);
        fresh
    }

    fn install_acl(&mut self, ip: u32, table: FlowTable) -> bool {
        let trie_fields = self.config.trie_fields.clone();
        if !self.pods.install_acl(ip, table, &trie_fields) {
            return false;
        }
        self.stats.policy_updates += 1;
        self.evict_destination(ip);
        true
    }

    fn remove_acl(&mut self, ip: u32) -> bool {
        if !self.pods.remove_acl(ip) {
            return false;
        }
        self.stats.policy_updates += 1;
        self.evict_destination(ip);
        true
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    fn apply_install_acl(&mut self, ip: u32, table: FlowTable) -> PolicyUpdateOutcome {
        let trie_fields = self.config.trie_fields.clone();
        if !self.pods.install_acl(ip, table, &trie_fields) {
            return self.charge_update(0, false, 0);
        }
        self.stats.policy_updates += 1;
        let flushed = self.evict_destination(ip);
        self.charge_update(0, true, flushed)
    }

    fn apply_remove_acl(&mut self, ip: u32) -> PolicyUpdateOutcome {
        if !self.pods.remove_acl(ip) {
            return self.charge_update(1, false, 0);
        }
        self.stats.policy_updates += 1;
        let flushed = self.evict_destination(ip);
        self.charge_update(1, true, flushed)
    }

    fn apply_attach_pod(&mut self, ip: u32, vport: u32) -> PolicyUpdateOutcome {
        self.stats.policy_updates += 1;
        let fresh = self.pods.attach_pod(ip, vport);
        let flushed = self.evict_destination(ip);
        self.charge_update(2, fresh, flushed)
    }

    fn process_batch(
        &mut self,
        keys: &[FlowKey],
        now: SimTime,
        sink: &mut dyn FnMut(usize, ProcessOutcome) -> bool,
    ) -> usize {
        for (i, key) in keys.iter().enumerate() {
            let outcome = self.process_with(key, now);
            if !sink(i, outcome) {
                return i + 1;
            }
        }
        keys.len()
    }

    fn drain_upcalls(&mut self, _now: SimTime, _sink: &mut dyn FnMut(ResolvedUpcall)) -> usize {
        0 // the host fallback resolves inline
    }

    fn revalidate(&mut self, now: SimTime) {
        if now < self.next_sweep {
            return;
        }
        let interval = self.config.revalidator_interval.max(SimTime::from_nanos(1));
        while self.next_sweep <= now {
            self.next_sweep += interval;
        }
        let idle_timeout = self.config.idle_timeout;
        self.table
            .retain(|_, (_, last_used, _)| *last_used + idle_timeout > now);
    }

    fn next_background_event(&self, _now: SimTime) -> Option<SimTime> {
        if self.table.is_empty() {
            None // empty sweeps are no-ops; the deadline self-corrects
        } else {
            Some(self.next_sweep)
        }
    }

    fn stats(&self) -> SwitchStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = SwitchStats::default();
    }

    fn emc_stats(&self) -> EmcStats {
        self.emc
    }

    fn upcall_stats(&self) -> UpcallStats {
        self.upcall
    }

    fn mask_count(&self) -> usize {
        0 // exact offload entries: no mask space to explode
    }

    fn megaflow_count(&self) -> usize {
        self.table.len()
    }

    fn upcall_queue_depth(&self) -> usize {
        0
    }

    fn attribution(&self) -> Vec<MaskAttribution> {
        crate::host::attribute_exact(self.table.iter().map(|(k, _)| k))
    }

    fn crash_restart(&mut self) -> RestartOutcome {
        // A host restart reprograms the NIC from scratch: the offload
        // table and its FIFO replacement record go together. The
        // sequence counter keeps running — stale FIFO records are
        // already skipped lazily, and a fresh counter could resurrect
        // them as live.
        let flows_lost = self.table.len();
        self.table = FlatTable::new();
        self.fifo.clear();
        let (acls_lost, quarantines_lost) = self.pods.crash_reset();
        RestartOutcome {
            acls_lost,
            flows_lost,
            upcalls_lost: 0,
            quarantines_lost,
        }
    }

    fn installed_acl_ips(&self) -> Vec<u32> {
        self.pods.acl_ips()
    }

    fn set_port_quota(&mut self, _quota: Option<u32>) -> bool {
        false // no deferred pipeline to meter
    }

    fn set_staged_lookup(&mut self, _enabled: bool) {
        // No tuple-space walk to stage.
    }

    fn set_scoped_invalidation(&mut self, scoped: bool) {
        // Invalidations are destination-scoped by construction; the
        // config mirror is kept so controllers observe their writes.
        self.config.scoped_invalidation = scoped;
    }

    fn quarantine(&mut self, ip: u32) -> usize {
        self.pods.quarantine(ip);
        self.evict_destination(ip)
    }

    fn release_quarantine(&mut self, ip: u32) -> bool {
        self.pods.release_quarantine(ip)
    }

    fn is_quarantined(&self, ip: u32) -> bool {
        self.pods.is_quarantined(ip)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_classifier::table::whitelist_with_default_deny;
    use pi_core::{Field, FlowMask, MaskedKey};

    const POD_IP: [u8; 4] = [10, 0, 0, 99];

    fn backend_with_fig2_acl() -> NicOffload {
        let mut be = NicOffload::new(DpConfig::default(), CostModel::default());
        be.attach_pod(u32::from_be_bytes(POD_IP), 3);
        let allow = MaskedKey::new(
            FlowKey::tcp([10, 0, 0, 0], [0, 0, 0, 0], 0, 0),
            FlowMask::default().with_prefix(Field::IpSrc, 8),
        );
        DataplaneBackend::install_acl(
            &mut be,
            u32::from_be_bytes(POD_IP),
            whitelist_with_default_deny(&[allow]),
        );
        be
    }

    fn pkt(src: [u8; 4], tp_src: u16) -> FlowKey {
        FlowKey::tcp(src, POD_IP, tp_src, 5201)
    }

    fn covert(i: u32) -> FlowKey {
        FlowKey::tcp(
            [172, (i >> 8) as u8, i as u8, 1],
            POD_IP,
            (i % 60_000) as u16 + 1,
            5201,
        )
    }

    #[test]
    fn miss_offloads_then_hardware_hits() {
        let mut be = backend_with_fig2_acl();
        let t = SimTime::from_millis(1);
        let p = pkt([10, 1, 1, 1], 1000);
        let o1 = crate::api::process_one(&mut be, &p, t);
        assert!(o1.path.is_upcall());
        assert_eq!(o1.verdict, Action::Allow);
        let o2 = crate::api::process_one(&mut be, &p, t);
        assert!(o2.path.is_microflow());
        assert!(o2.cycles < o1.cycles);
        assert_eq!(be.megaflow_count(), 1);
    }

    #[test]
    fn table_is_hardware_bounded_with_fifo_replacement() {
        let mut be = backend_with_fig2_acl();
        let t = SimTime::from_millis(1);
        let victim = pkt([10, 1, 1, 1], 1000);
        crate::api::process_one(&mut be, &victim, t);
        // A covert churn of fresh flows cycles the FIFO...
        for i in 0..OFFLOAD_CAPACITY as u32 {
            crate::api::process_one(&mut be, &covert(i), t);
        }
        assert_eq!(be.megaflow_count(), OFFLOAD_CAPACITY, "hardware bound");
        assert!(
            be.emc_stats().collision_evictions > 0,
            "thrash observable counts"
        );
        // ...and the victim (oldest flow) was evicted: it re-faults onto
        // the host CPU — the partial vulnerability of this architecture.
        let o = crate::api::process_one(&mut be, &victim, t);
        assert!(o.path.is_upcall(), "victim re-faults after FIFO eviction");
    }

    #[test]
    fn stale_fifo_records_are_skipped() {
        let mut be = backend_with_fig2_acl();
        let other = u32::from_be_bytes([10, 0, 0, 98]);
        be.attach_pod(other, 5);
        let t = SimTime::from_millis(1);
        // The victim (towards the *other* pod) offloads first, then 100
        // covert flows queue behind it.
        let victim = FlowKey::tcp([10, 3, 3, 3], [10, 0, 0, 98], 1, 1);
        crate::api::process_one(&mut be, &victim, t);
        for i in 0..100 {
            crate::api::process_one(&mut be, &covert(i), t);
        }
        // A policy update at the other pod evicts the victim's entry —
        // its FIFO record (still at the queue front) goes stale — and
        // the flow then re-offloads *behind* the coverts.
        assert_eq!(be.apply_remove_acl(other).flushed_megaflows, 1);
        crate::api::process_one(&mut be, &victim, t);
        // Fill to capacity and force one eviction: the replacement must
        // skip the victim's stale front record and evict the oldest
        // *live* flow (the first covert) instead.
        for i in 100..OFFLOAD_CAPACITY as u32 + 1 {
            crate::api::process_one(&mut be, &covert(i), t);
        }
        assert_eq!(be.megaflow_count(), OFFLOAD_CAPACITY);
        assert!(
            crate::api::process_one(&mut be, &victim, t)
                .path
                .is_microflow(),
            "re-offloaded flow survives its stale FIFO record"
        );
        assert!(
            crate::api::process_one(&mut be, &covert(0), t)
                .path
                .is_upcall(),
            "the oldest live flow was the one evicted"
        );
    }

    #[test]
    fn policy_update_evicts_only_that_destination() {
        let mut be = backend_with_fig2_acl();
        let other = u32::from_be_bytes([10, 0, 0, 98]);
        be.attach_pod(other, 5);
        let t = SimTime::from_millis(1);
        crate::api::process_one(&mut be, &pkt([10, 1, 1, 1], 1000), t);
        let bystander = FlowKey::tcp([10, 3, 3, 3], [10, 0, 0, 98], 1, 1);
        crate::api::process_one(&mut be, &bystander, t);
        let o = be.apply_remove_acl(u32::from_be_bytes(POD_IP));
        assert!(o.applied && o.scoped);
        assert_eq!(o.flushed_megaflows, 1);
        let ob = crate::api::process_one(&mut be, &bystander, t);
        assert!(ob.path.is_microflow(), "bystander keeps its offload entry");
    }

    #[test]
    fn idle_sweep_and_quarantine() {
        let mut be = backend_with_fig2_acl();
        crate::api::process_one(&mut be, &pkt([10, 1, 1, 1], 1000), SimTime::from_millis(1));
        be.revalidate(SimTime::from_secs(15));
        assert_eq!(be.megaflow_count(), 0, "idle timeout enforced");
        DataplaneBackend::quarantine(&mut be, u32::from_be_bytes(POD_IP));
        let o = crate::api::process_one(&mut be, &pkt([10, 1, 1, 1], 1000), SimTime::from_secs(15));
        assert!(o.path.is_upcall_dropped());
        assert_eq!(be.upcall_stats().quarantine_drops, 1);
    }

    #[test]
    fn deny_verdicts_are_offloaded_too() {
        let mut be = backend_with_fig2_acl();
        let bad = pkt([99, 1, 1, 1], 1);
        let o = crate::api::process_one(&mut be, &bad, SimTime::ZERO);
        assert_eq!(o.verdict, Action::Deny);
        let o = crate::api::process_one(&mut be, &bad, SimTime::ZERO);
        assert!(o.path.is_microflow());
        assert_eq!(o.verdict, Action::Deny);
        assert_eq!(o.output, None);
    }
}
