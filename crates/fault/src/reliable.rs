//! At-least-once control-plane delivery with reconciliation.
//!
//! The plain `pi_cms::ControlPlane` hands updates straight to the
//! switch: if the switch is down or the channel drops the message, the
//! policy is silently gone — a vanished deny rule is a security hole.
//! [`ReliableControlPlane`] closes the loop the way real CMSes do:
//!
//! * every update carries a **sequence number** and is held in flight
//!   until **acked** (acks traverse the same lossy channel back);
//! * a missing ack triggers **retry** after a per-update timeout with
//!   exponential backoff and SplitMix64 jitter (capped);
//! * the receiver keeps an **applied-seq set** (the node agent's
//!   durable journal — it survives switch restarts), so duplicated
//!   deliveries are suppressed but still acked;
//! * a periodic **reconciliation** pass diffs the CMS's desired ACL
//!   state (replayed from the program) against the switch's reported
//!   installed state and re-pushes the difference — this is what turns
//!   a crash that wiped every ACL into bounded-time convergence.
//!
//! Everything is deterministic: one private RNG for retry jitter, the
//! channels carry their own seeds, and all state is owned by the node
//! (shard-local under the fleet).

use std::collections::{BTreeMap, BTreeSet};

use pi_classifier::FlowTable;
use pi_cms::{ControlPlaneProgram, PolicyUpdate, ScheduledUpdate};
use pi_core::{SimTime, SplitMix64};
use pi_trace::{TraceEventKind, Tracer};

use crate::channel::{Channel, ChannelFaultConfig};

/// Retry/backoff and reconciliation knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReliabilityConfig {
    /// Retry unacked updates (at-least-once delivery). Off = fire and
    /// forget through the (possibly lossy) channel.
    pub retry: bool,
    /// Ack timeout before the first retry.
    pub retry_timeout: SimTime,
    /// Backoff multiplier per retry (exponential).
    pub backoff_factor: u32,
    /// Backoff cap.
    pub max_backoff: SimTime,
    /// Total send attempts per update (first send included) before
    /// giving up.
    pub max_attempts: u32,
    /// Run the periodic desired-vs-installed reconciliation pass.
    pub reconcile: bool,
    /// Reconciliation cadence.
    pub reconcile_interval: SimTime,
    /// Seed for the retry-jitter stream.
    pub seed: u64,
}

impl Default for ReliabilityConfig {
    fn default() -> Self {
        ReliabilityConfig {
            retry: true,
            retry_timeout: SimTime::from_millis(50),
            backoff_factor: 2,
            max_backoff: SimTime::from_millis(800),
            max_attempts: 16,
            reconcile: true,
            reconcile_interval: SimTime::from_millis(500),
            seed: 0x5EED_FA17,
        }
    }
}

impl ReliabilityConfig {
    /// Fire-and-forget: no retry, no reconciliation. The channel's
    /// faults land unmitigated — the baseline the bench compares
    /// against.
    pub fn unreliable() -> Self {
        ReliabilityConfig {
            retry: false,
            reconcile: false,
            ..ReliabilityConfig::default()
        }
    }
}

/// Delivery counters for one node's reliable control channel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ControlChannelStats {
    /// Update messages offered to the forward channel (incl. retries).
    pub sent: u64,
    /// Update messages the forward channel delivered.
    pub delivered: u64,
    /// Update messages the forward channel dropped.
    pub dropped: u64,
    /// Extra update copies the forward channel injected.
    pub duplicated: u64,
    /// Acks lost on the return channel.
    pub acks_dropped: u64,
    /// Retransmissions (sends beyond each update's first).
    pub retries: u64,
    /// Updates abandoned after `max_attempts` sends.
    pub gave_up: u64,
    /// Deliveries suppressed by the receiver's applied-seq set.
    pub dup_suppressed: u64,
    /// Deliveries discarded because the switch was down (no ack sent —
    /// the retry path recovers these).
    pub lost_to_downtime: u64,
    /// Updates actually handed to the switch.
    pub applied: u64,
    /// Reconciliation passes run.
    pub reconcile_checks: u64,
    /// Updates re-pushed by reconciliation.
    pub reconcile_pushes: u64,
}

#[derive(Debug, Clone)]
struct InFlight {
    update: PolicyUpdate,
    next_retry: SimTime,
    backoff: SimTime,
    attempts: u32,
}

/// The at-least-once delivery layer over a compiled
/// [`ControlPlaneProgram`]. The node polls
/// [`ReliableControlPlane::poll`] once per tick and applies what it
/// returns; when [`ReliableControlPlane::reconcile_due`] fires it
/// reports the switch's installed ACLs to
/// [`ReliableControlPlane::reconcile`].
#[derive(Debug, Clone)]
pub struct ReliableControlPlane {
    cfg: ReliabilityConfig,
    updates: Vec<ScheduledUpdate>,
    cursor: usize,
    next_seq: u64,
    in_flight: BTreeMap<u64, InFlight>,
    forward: Channel<(u64, PolicyUpdate)>,
    acks: Channel<u64>,
    applied_seqs: BTreeSet<u64>,
    rng: SplitMix64,
    next_reconcile: SimTime,
    diverged_since: Option<SimTime>,
    recoveries: u64,
    recovery_time: SimTime,
    retries: u64,
    gave_up: u64,
    dup_suppressed: u64,
    lost_to_downtime: u64,
    applied: u64,
    reconcile_checks: u64,
    reconcile_pushes: u64,
    /// Trace handle (disabled by default — a guaranteed no-op).
    tracer: Tracer,
}

impl ReliableControlPlane {
    /// Builds the layer over `program`, sending through a channel with
    /// the given fault model (`None` = perfect channel). The ack
    /// direction gets an independent random stream derived from the
    /// forward seed.
    pub fn new(
        program: ControlPlaneProgram,
        cfg: ReliabilityConfig,
        channel: Option<ChannelFaultConfig>,
    ) -> Self {
        let fwd_cfg = channel.unwrap_or_default();
        let ack_cfg = ChannelFaultConfig {
            seed: SplitMix64::new(fwd_cfg.seed).fork().next_u64(),
            ..fwd_cfg
        };
        // Same stable sort as `ControlPlaneProgram::compile`: apply
        // time, ties in program order.
        let mut compiled = program.updates().to_vec();
        compiled.sort_by_key(|u| u.applies_at);
        ReliableControlPlane {
            rng: SplitMix64::new(cfg.seed),
            next_reconcile: cfg.reconcile_interval,
            cfg,
            updates: compiled,
            cursor: 0,
            next_seq: 0,
            in_flight: BTreeMap::new(),
            forward: Channel::new(fwd_cfg),
            acks: Channel::new(ack_cfg),
            applied_seqs: BTreeSet::new(),
            diverged_since: None,
            recoveries: 0,
            recovery_time: SimTime::ZERO,
            retries: 0,
            gave_up: 0,
            dup_suppressed: 0,
            lost_to_downtime: 0,
            applied: 0,
            reconcile_checks: 0,
            reconcile_pushes: 0,
            tracer: Tracer::disabled(),
        }
    }

    /// Attaches a trace handle: reconciliation passes record their
    /// repair pushes through it
    /// ([`pi_trace::TraceEventKind::Reconcile`]).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    fn jitter(&mut self, span: SimTime) -> SimTime {
        let ns = span.as_nanos();
        if ns == 0 {
            SimTime::ZERO
        } else {
            SimTime::from_nanos(self.rng.gen_range(ns + 1))
        }
    }

    fn send(&mut self, now: SimTime, update: PolicyUpdate) {
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.cfg.retry {
            let backoff = self.cfg.retry_timeout;
            let j = self.jitter(SimTime::from_nanos(backoff.as_nanos() / 4));
            self.in_flight.insert(
                seq,
                InFlight {
                    update: update.clone(),
                    next_retry: now + backoff + j,
                    backoff,
                    attempts: 1,
                },
            );
        }
        self.forward.send(now, (seq, update));
    }

    /// One tick of the delivery layer: processes acks, issues program
    /// updates that fell due, retransmits timed-out updates, and
    /// returns the updates the switch should apply this tick, in
    /// deterministic delivery order. When `switch_up` is false the
    /// deliveries are discarded unacked (the retry path recovers
    /// them); duplicates are suppressed but still acked.
    pub fn poll(&mut self, now: SimTime, switch_up: bool) -> Vec<PolicyUpdate> {
        // Acks first, so nothing acked this tick is also retried.
        for seq in self.acks.deliver(now) {
            self.in_flight.remove(&seq);
        }

        // Issue program updates that fell due.
        while self.cursor < self.updates.len() && self.updates[self.cursor].applies_at <= now {
            let update = self.updates[self.cursor].update.clone();
            self.cursor += 1;
            self.send(now, update);
        }

        // Retransmit timed-out in-flight updates.
        if self.cfg.retry {
            let due: Vec<u64> = self
                .in_flight
                .iter()
                .filter(|(_, f)| f.next_retry <= now)
                .map(|(seq, _)| *seq)
                .collect();
            for seq in due {
                let f = &self.in_flight[&seq];
                if f.attempts >= self.cfg.max_attempts {
                    self.in_flight.remove(&seq);
                    self.gave_up += 1;
                    continue;
                }
                let resend = f.update.clone();
                let backoff = SimTime::from_nanos(
                    f.backoff
                        .as_nanos()
                        .saturating_mul(u64::from(self.cfg.backoff_factor.max(1))),
                )
                .min(self.cfg.max_backoff);
                let j = self.jitter(SimTime::from_nanos(backoff.as_nanos() / 4));
                let f = self.in_flight.get_mut(&seq).expect("present");
                f.attempts += 1;
                f.backoff = backoff;
                f.next_retry = now + backoff + j;
                self.retries += 1;
                self.forward.send(now, (seq, resend));
            }
        }

        // Deliveries.
        let mut out = Vec::new();
        for (seq, update) in self.forward.deliver(now) {
            if !switch_up {
                self.lost_to_downtime += 1;
                continue;
            }
            if !self.applied_seqs.insert(seq) {
                self.dup_suppressed += 1;
                self.acks.send(now, seq);
                continue;
            }
            self.applied += 1;
            self.acks.send(now, seq);
            out.push(update);
        }
        out
    }

    /// Tells the layer the switch just crashed: if the program's
    /// desired state at `now` is non-empty, the node has diverged and
    /// the recovery clock starts.
    pub fn on_switch_crash(&mut self, now: SimTime) {
        if self.diverged_since.is_none() && !self.desired_acls(now).is_empty() {
            self.diverged_since = Some(now);
        }
    }

    /// True when the periodic reconciliation pass should run at `now`.
    pub fn reconcile_due(&self, now: SimTime) -> bool {
        self.cfg.reconcile && now >= self.next_reconcile
    }

    /// The CMS's desired ACL state at `now`: the program's installs
    /// minus its removals, replayed in apply order.
    pub fn desired_acls(&self, now: SimTime) -> BTreeMap<u32, FlowTable> {
        let mut desired = BTreeMap::new();
        for su in &self.updates {
            if su.applies_at > now {
                break;
            }
            match &su.update {
                PolicyUpdate::InstallAcl { ip, table } => {
                    desired.insert(*ip, table.clone());
                }
                PolicyUpdate::RemoveAcl { ip } => {
                    desired.remove(ip);
                }
                PolicyUpdate::AttachPod { .. } => {}
            }
        }
        desired
    }

    /// One reconciliation pass: diffs desired state against the
    /// switch-reported `installed` ACL set (sorted pod IPs) and
    /// re-pushes the difference through the reliable channel. Returns
    /// the number of re-pushed updates. Convergence after a divergence
    /// (crash or lost update) closes a recovery episode.
    pub fn reconcile(&mut self, now: SimTime, installed: &[u32]) -> usize {
        while self.next_reconcile <= now {
            self.next_reconcile += self.cfg.reconcile_interval;
        }
        self.reconcile_checks += 1;
        let desired = self.desired_acls(now);
        let mut pushes = 0;
        for (ip, table) in &desired {
            if !installed.contains(ip) {
                self.send(
                    now,
                    PolicyUpdate::InstallAcl {
                        ip: *ip,
                        table: table.clone(),
                    },
                );
                pushes += 1;
            }
        }
        for ip in installed {
            if !desired.contains_key(ip) {
                self.send(now, PolicyUpdate::RemoveAcl { ip: *ip });
                pushes += 1;
            }
        }
        self.reconcile_pushes += pushes as u64;
        self.tracer.emit_uncaused(
            now.as_nanos(),
            TraceEventKind::Reconcile {
                pushes: pushes as u32,
            },
        );
        if pushes > 0 {
            if self.diverged_since.is_none() {
                self.diverged_since = Some(now);
            }
        } else if let Some(since) = self.diverged_since.take() {
            self.recoveries += 1;
            self.recovery_time += now.saturating_sub(since);
        }
        pushes
    }

    /// True while desired and installed state are known to differ.
    pub fn diverged(&self) -> bool {
        self.diverged_since.is_some()
    }

    /// Completed recovery episodes (divergence → reconverged).
    pub fn recoveries(&self) -> u64 {
        self.recoveries
    }

    /// Total time spent diverged over completed recovery episodes.
    pub fn recovery_time(&self) -> SimTime {
        self.recovery_time
    }

    /// Updates currently awaiting an ack.
    pub fn in_flight_len(&self) -> usize {
        self.in_flight.len()
    }

    /// The earliest future instant at which this layer has anything to
    /// do: a program update falling due, a retry timer expiring, a
    /// forward or ack delivery arriving, or a reconciliation boundary.
    /// A [`ReliableControlPlane::poll`] strictly before this time
    /// returns nothing and mutates nothing, so the event-driven engines
    /// may skip it. `None` means the layer is permanently idle.
    pub fn next_activity(&self) -> Option<SimTime> {
        let mut next: Option<SimTime> = None;
        let mut fold = |t: SimTime| {
            next = Some(next.map_or(t, |n| n.min(t)));
        };
        if self.cursor < self.updates.len() {
            fold(self.updates[self.cursor].applies_at);
        }
        if let Some(t) = self.in_flight.values().map(|f| f.next_retry).min() {
            fold(t);
        }
        if let Some(t) = self.forward.next_delivery() {
            fold(t);
        }
        if let Some(t) = self.acks.next_delivery() {
            fold(t);
        }
        if self.cfg.reconcile {
            fold(self.next_reconcile);
        }
        next
    }

    /// Program updates not yet issued.
    pub fn pending(&self) -> usize {
        self.updates.len() - self.cursor
    }

    /// Delivery counters so far.
    pub fn stats(&self) -> ControlChannelStats {
        let fwd = self.forward.stats();
        let ack = self.acks.stats();
        ControlChannelStats {
            sent: fwd.sent,
            delivered: fwd.delivered,
            dropped: fwd.dropped,
            duplicated: fwd.duplicated,
            acks_dropped: ack.dropped,
            retries: self.retries,
            gave_up: self.gave_up,
            dup_suppressed: self.dup_suppressed,
            lost_to_downtime: self.lost_to_downtime,
            applied: self.applied,
            reconcile_checks: self.reconcile_checks,
            reconcile_pushes: self.reconcile_pushes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_classifier::table::whitelist_with_default_deny;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    fn table() -> FlowTable {
        whitelist_with_default_deny(&[])
    }

    fn program(n: usize) -> ControlPlaneProgram {
        let mut p = ControlPlaneProgram::new();
        for i in 0..n {
            p.install_acl(ms(i as u64 + 1), i as u32 + 1, table());
        }
        p
    }

    /// Drives `rcp` tick by tick, applying deliveries into a mock
    /// switch ACL set; returns the number of applies seen.
    fn drive(rcp: &mut ReliableControlPlane, ticks: u64, up: impl Fn(u64) -> bool) -> Vec<u32> {
        let mut installed = Vec::new();
        for t in 0..=ticks {
            let now = ms(t);
            for update in rcp.poll(now, up(t)) {
                match update {
                    PolicyUpdate::InstallAcl { ip, .. } => {
                        if !installed.contains(&ip) {
                            installed.push(ip);
                        }
                    }
                    PolicyUpdate::RemoveAcl { ip } => installed.retain(|i| *i != ip),
                    PolicyUpdate::AttachPod { .. } => {}
                }
            }
        }
        installed.sort_unstable();
        installed
    }

    #[test]
    fn perfect_channel_delivers_on_time_and_acks_drain() {
        let mut rcp = ReliableControlPlane::new(program(3), ReliabilityConfig::default(), None);
        assert_eq!(rcp.pending(), 3);
        let installed = drive(&mut rcp, 10, |_| true);
        assert_eq!(installed, vec![1, 2, 3]);
        assert_eq!(rcp.in_flight_len(), 0, "everything acked");
        let s = rcp.stats();
        assert_eq!(s.applied, 3);
        assert_eq!(s.retries, 0);
        assert_eq!(s.dup_suppressed, 0);
    }

    #[test]
    fn lossy_channel_with_retry_converges_exactly_once() {
        let ch = ChannelFaultConfig {
            drop_p: 0.4,
            dup_p: 0.3,
            delay: ms(1),
            jitter: ms(3),
            seed: 21,
        };
        let mut rcp = ReliableControlPlane::new(program(8), ReliabilityConfig::default(), Some(ch));
        let installed = drive(&mut rcp, 20_000, |_| true);
        assert_eq!(installed, (1..=8).collect::<Vec<u32>>(), "all converge");
        let s = rcp.stats();
        assert!(s.retries > 0, "drops must have forced retries: {s:?}");
        assert_eq!(s.applied, 8, "applied exactly once each: {s:?}");
        assert!(s.dropped > 0);
        // Long horizon: every update was acked or exhausted its
        // attempts (acks ride the same lossy channel).
        assert_eq!(rcp.in_flight_len(), 0);
    }

    #[test]
    fn duplicated_deliveries_are_suppressed_but_acked() {
        let ch = ChannelFaultConfig {
            dup_p: 1.0,
            seed: 5,
            ..ChannelFaultConfig::default()
        };
        let mut rcp = ReliableControlPlane::new(program(4), ReliabilityConfig::default(), Some(ch));
        let installed = drive(&mut rcp, 500, |_| true);
        assert_eq!(installed, vec![1, 2, 3, 4]);
        let s = rcp.stats();
        assert_eq!(s.applied, 4);
        assert!(s.dup_suppressed >= 4, "{s:?}");
    }

    #[test]
    fn downtime_discards_unacked_and_retry_recovers() {
        let mut rcp = ReliableControlPlane::new(program(2), ReliabilityConfig::default(), None);
        // Switch down over the window in which both updates fall due.
        let installed = drive(&mut rcp, 400, |t| !(0..=20).contains(&t));
        assert_eq!(installed, vec![1, 2], "retry re-delivered after restart");
        let s = rcp.stats();
        assert!(s.lost_to_downtime >= 2, "{s:?}");
        assert!(s.retries > 0, "{s:?}");
    }

    #[test]
    fn without_retry_downtime_means_silent_loss() {
        let mut rcp = ReliableControlPlane::new(program(2), ReliabilityConfig::unreliable(), None);
        let installed = drive(&mut rcp, 400, |t| !(0..=20).contains(&t));
        assert_eq!(installed, Vec::<u32>::new(), "policies silently gone");
        let s = rcp.stats();
        assert_eq!(s.retries, 0);
        assert_eq!(s.lost_to_downtime, 2);
    }

    #[test]
    fn reconcile_repushes_after_crash_and_records_recovery() {
        let cfg = ReliabilityConfig {
            reconcile_interval: ms(100),
            ..ReliabilityConfig::default()
        };
        let mut rcp = ReliableControlPlane::new(program(2), cfg, None);
        // Deliver both updates normally.
        let mut installed = drive(&mut rcp, 10, |_| true);
        assert_eq!(installed, vec![1, 2]);
        // Crash at t=20ms wipes the switch's ACLs.
        installed.clear();
        rcp.on_switch_crash(ms(20));
        assert!(rcp.diverged());
        // First reconcile pass after the crash re-pushes the diff.
        assert!(rcp.reconcile_due(ms(100)));
        let pushes = rcp.reconcile(ms(100), &installed);
        assert_eq!(pushes, 2);
        assert!(!rcp.reconcile_due(ms(150)));
        // The re-pushes arrive through poll (dedup set does NOT block
        // them: fresh seqs).
        for t in 100..=110 {
            for update in rcp.poll(ms(t), true) {
                if let PolicyUpdate::InstallAcl { ip, .. } = update {
                    installed.push(ip);
                }
            }
        }
        installed.sort_unstable();
        assert_eq!(installed, vec![1, 2]);
        // Next pass finds no diff: the recovery episode closes.
        assert!(rcp.reconcile_due(ms(200)));
        assert_eq!(rcp.reconcile(ms(200), &installed), 0);
        assert!(!rcp.diverged());
        assert_eq!(rcp.recoveries(), 1);
        assert_eq!(rcp.recovery_time(), ms(180), "crash 20ms → converged 200ms");
        let s = rcp.stats();
        assert_eq!(s.reconcile_pushes, 2);
        assert_eq!(s.reconcile_checks, 2);
    }

    #[test]
    fn reconcile_removes_acls_the_program_no_longer_wants() {
        let mut p = program(1);
        p.remove_acl(ms(5), 1);
        let cfg = ReliabilityConfig {
            reconcile_interval: ms(50),
            ..ReliabilityConfig::default()
        };
        let mut rcp = ReliableControlPlane::new(p, cfg, None);
        // Let the program's own updates issue and land first.
        let _ = drive(&mut rcp, 10, |_| true);
        // Pretend the switch reports ip 1 and a stale ip 9 installed.
        assert!(rcp.desired_acls(ms(50)).is_empty());
        let pushes = rcp.reconcile(ms(50), &[1, 9]);
        assert_eq!(pushes, 2, "both stale installs must be removed");
        let removed: Vec<u32> = rcp
            .poll(ms(50), true)
            .into_iter()
            .filter_map(|u| match u {
                PolicyUpdate::RemoveAcl { ip } => Some(ip),
                _ => None,
            })
            .collect();
        assert_eq!(removed, vec![1, 9]);
    }

    #[test]
    fn crash_with_no_desired_state_is_not_a_divergence() {
        let mut rcp = ReliableControlPlane::new(
            ControlPlaneProgram::new(),
            ReliabilityConfig::default(),
            None,
        );
        rcp.on_switch_crash(ms(10));
        assert!(!rcp.diverged());
    }

    #[test]
    fn gives_up_after_max_attempts() {
        let ch = ChannelFaultConfig {
            drop_p: 1.0,
            seed: 2,
            ..ChannelFaultConfig::default()
        };
        let cfg = ReliabilityConfig {
            max_attempts: 3,
            retry_timeout: ms(5),
            max_backoff: ms(10),
            ..ReliabilityConfig::default()
        };
        let mut rcp = ReliableControlPlane::new(program(1), cfg, Some(ch));
        let installed = drive(&mut rcp, 500, |_| true);
        assert!(installed.is_empty());
        let s = rcp.stats();
        assert_eq!(s.gave_up, 1, "{s:?}");
        assert_eq!(s.retries, 2, "attempts beyond the first: {s:?}");
        assert_eq!(rcp.in_flight_len(), 0);
    }

    #[test]
    fn deterministic_across_identical_runs() {
        let ch = ChannelFaultConfig {
            drop_p: 0.3,
            dup_p: 0.2,
            delay: ms(2),
            jitter: ms(5),
            seed: 77,
        };
        let run = || {
            let mut rcp =
                ReliableControlPlane::new(program(6), ReliabilityConfig::default(), Some(ch));
            let installed = drive(&mut rcp, 2_000, |t| !(100..=140).contains(&t));
            (installed, rcp.stats())
        };
        assert_eq!(run(), run());
    }
}
