//! A deterministic lossy message channel.
//!
//! Models the CMS→switch control path as real clouds see it: messages
//! can be dropped, duplicated, and delayed by a jittered amount —
//! and because each message draws its own delay, two messages sent in
//! order can arrive reordered. All randomness comes from a seeded
//! [`SplitMix64`] owned by the channel, and delivery order is a total
//! order on `(deliver_at, send sequence)`, so a channel with the same
//! seed replays the same fault pattern in every run and under every
//! fleet worker count.

use pi_core::{SimTime, SplitMix64};

/// Fault parameters for one direction of a control channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelFaultConfig {
    /// Probability a message is silently dropped.
    pub drop_p: f64,
    /// Probability a delivered message is duplicated (the copy draws
    /// its own, independent delay — duplicates usually arrive later
    /// and out of order).
    pub dup_p: f64,
    /// Fixed propagation delay added to every message.
    pub delay: SimTime,
    /// Maximum extra random delay, uniform in `[0, jitter]`. Any
    /// nonzero jitter makes reordering possible.
    pub jitter: SimTime,
    /// Seed for the channel's private random stream.
    pub seed: u64,
}

impl Default for ChannelFaultConfig {
    fn default() -> Self {
        ChannelFaultConfig {
            drop_p: 0.0,
            dup_p: 0.0,
            delay: SimTime::ZERO,
            jitter: SimTime::ZERO,
            seed: 0xFA17,
        }
    }
}

/// Delivery counters for one channel direction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Messages offered to the channel.
    pub sent: u64,
    /// Messages handed out by [`Channel::deliver`].
    pub delivered: u64,
    /// Messages dropped in flight.
    pub dropped: u64,
    /// Extra copies injected by duplication.
    pub duplicated: u64,
}

/// A lossy, delaying, duplicating channel for messages of type `T`.
///
/// Not a queue: [`Channel::deliver`] hands out every message whose
/// delivery time has arrived, sorted by `(deliver_at, send sequence)`.
#[derive(Debug, Clone)]
pub struct Channel<T> {
    cfg: ChannelFaultConfig,
    rng: SplitMix64,
    in_flight: Vec<(SimTime, u64, T)>,
    next_tag: u64,
    stats: ChannelStats,
}

impl<T: Clone> Channel<T> {
    /// A channel with the given fault model.
    pub fn new(cfg: ChannelFaultConfig) -> Self {
        Channel {
            rng: SplitMix64::new(cfg.seed),
            cfg,
            in_flight: Vec::new(),
            next_tag: 0,
            stats: ChannelStats::default(),
        }
    }

    /// A perfect channel: no loss, no delay, no duplication.
    pub fn perfect() -> Self {
        Self::new(ChannelFaultConfig::default())
    }

    fn draw_deliver_at(&mut self, now: SimTime) -> SimTime {
        let mut at = now + self.cfg.delay;
        let jitter_ns = self.cfg.jitter.as_nanos();
        if jitter_ns > 0 {
            at += SimTime::from_nanos(self.rng.gen_range(jitter_ns + 1));
        }
        at
    }

    fn enqueue(&mut self, deliver_at: SimTime, msg: T) {
        let tag = self.next_tag;
        self.next_tag += 1;
        self.in_flight.push((deliver_at, tag, msg));
    }

    /// Offers `msg` to the channel at `now`. It may be dropped,
    /// duplicated, and will arrive after the configured delay+jitter.
    pub fn send(&mut self, now: SimTime, msg: T) {
        self.stats.sent += 1;
        if self.cfg.drop_p > 0.0 && self.rng.gen_bool(self.cfg.drop_p) {
            self.stats.dropped += 1;
            return;
        }
        let deliver_at = self.draw_deliver_at(now);
        if self.cfg.dup_p > 0.0 && self.rng.gen_bool(self.cfg.dup_p) {
            self.stats.duplicated += 1;
            let dup_at = self.draw_deliver_at(now);
            self.enqueue(dup_at, msg.clone());
        }
        self.enqueue(deliver_at, msg);
    }

    /// Hands out every message due at `now`, in `(deliver_at, send
    /// sequence)` order.
    pub fn deliver(&mut self, now: SimTime) -> Vec<T> {
        let mut due: Vec<(SimTime, u64, T)> = Vec::new();
        let mut i = 0;
        while i < self.in_flight.len() {
            if self.in_flight[i].0 <= now {
                due.push(self.in_flight.swap_remove(i));
            } else {
                i += 1;
            }
        }
        due.sort_by_key(|(at, tag, _)| (*at, *tag));
        self.stats.delivered += due.len() as u64;
        due.into_iter().map(|(_, _, msg)| msg).collect()
    }

    /// Messages still in flight.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// The earliest in-flight delivery time, if anything is in flight.
    /// A [`Channel::deliver`] call strictly before this time hands out
    /// nothing and mutates nothing (no RNG draw) — the fact the
    /// event-driven engines rely on to skip idle polls.
    pub fn next_delivery(&self) -> Option<SimTime> {
        self.in_flight.iter().map(|(at, _, _)| *at).min()
    }

    /// Delivery counters so far.
    pub fn stats(&self) -> ChannelStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn perfect_channel_delivers_in_send_order_immediately() {
        let mut ch: Channel<u32> = Channel::perfect();
        ch.send(ms(1), 10);
        ch.send(ms(1), 20);
        ch.send(ms(1), 30);
        assert_eq!(ch.deliver(ms(1)), vec![10, 20, 30]);
        assert_eq!(ch.deliver(ms(2)), Vec::<u32>::new());
        let s = ch.stats();
        assert_eq!((s.sent, s.delivered, s.dropped, s.duplicated), (3, 3, 0, 0));
    }

    #[test]
    fn delay_holds_messages_until_due() {
        let mut ch: Channel<u32> = Channel::new(ChannelFaultConfig {
            delay: ms(5),
            ..ChannelFaultConfig::default()
        });
        ch.send(ms(0), 1);
        assert!(ch.deliver(ms(4)).is_empty());
        assert_eq!(ch.deliver(ms(5)), vec![1]);
    }

    #[test]
    fn drops_and_duplicates_are_counted_and_deterministic() {
        let run = |seed: u64| {
            let mut ch: Channel<u32> = Channel::new(ChannelFaultConfig {
                drop_p: 0.3,
                dup_p: 0.3,
                delay: ms(1),
                jitter: ms(4),
                seed,
            });
            for i in 0..200 {
                ch.send(ms(i), i as u32);
            }
            let got = ch.deliver(ms(1000));
            (got, ch.stats())
        };
        let (a, sa) = run(7);
        let (b, sb) = run(7);
        assert_eq!(a, b, "same seed, same fault pattern");
        assert_eq!(sa, sb);
        assert!(sa.dropped > 0, "{sa:?}");
        assert!(sa.duplicated > 0, "{sa:?}");
        assert_eq!(sa.delivered, sa.sent - sa.dropped + sa.duplicated);
        let (c, _) = run(8);
        assert_ne!(a, c, "different seed, different pattern");
    }

    #[test]
    fn jitter_reorders_messages() {
        let mut ch: Channel<u32> = Channel::new(ChannelFaultConfig {
            jitter: ms(50),
            seed: 3,
            ..ChannelFaultConfig::default()
        });
        for i in 0..50 {
            ch.send(SimTime::from_micros(i * 10), i as u32);
        }
        let got = ch.deliver(ms(1000));
        assert_eq!(got.len(), 50, "jitter never loses messages");
        assert!(
            got.windows(2).any(|w| w[0] > w[1]),
            "expected at least one reordering: {got:?}"
        );
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn partial_delivery_respects_deadlines() {
        let mut ch: Channel<u32> = Channel::new(ChannelFaultConfig {
            delay: ms(2),
            jitter: ms(6),
            seed: 11,
            ..ChannelFaultConfig::default()
        });
        for i in 0..20 {
            ch.send(ms(0), i);
        }
        let early = ch.deliver(ms(4));
        let late = ch.deliver(ms(100));
        assert_eq!(early.len() + late.len(), 20);
        assert!(!early.is_empty() && !late.is_empty(), "split expected");
    }
}
