//! Build-time fault programs and their compiled runtime cursors.
//!
//! Mirrors the `ControlPlaneProgram` → `ControlPlane` split in
//! `pi_cms`: faults are authored in any order on a [`FaultSchedule`],
//! then [`FaultSchedule::compile`]d into a time-sorted [`FaultPlan`]
//! the node polls once per tick. Everything is plain data owned by the
//! node (shard-local in the fleet), so injecting faults cannot disturb
//! the bit-identical worker-count invariant.

use crate::channel::ChannelFaultConfig;
use pi_core::SimTime;

/// One switch crash/restart event: the switch goes down at `at` and
/// comes back `down_for` later with its caches, upcall queues and ACLs
/// wiped (routes and lifetime counters survive — the node agent
/// re-attaches ports, and stats live off-switch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashSpec {
    /// When the switch process dies.
    pub at: SimTime,
    /// How long it stays down (zero = instant restart: state loss and
    /// the restart cost, but no blackout window).
    pub down_for: SimTime,
}

/// One host stall: the switch's cycle budget is starved (zero fresh
/// cycles per tick) while `at ≤ now < at + lasting`. Models a noisy
/// neighbour or a hypervisor hiccup — packets keep arriving and queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallSpec {
    /// When the stall begins.
    pub at: SimTime,
    /// How long it lasts.
    pub lasting: SimTime,
}

/// A build-time program of faults for one node: crash/restart events,
/// host-stall windows, and an optional CMS→switch channel fault model
/// (picked up by the node's reliable control plane, if one is
/// attached).
#[derive(Debug, Clone, Default)]
pub struct FaultSchedule {
    crashes: Vec<CrashSpec>,
    stalls: Vec<StallSpec>,
    channel: Option<ChannelFaultConfig>,
}

impl FaultSchedule {
    /// An empty schedule (no faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules a switch crash at `at`, down for `down_for`.
    #[must_use]
    pub fn crash(mut self, at: SimTime, down_for: SimTime) -> Self {
        self.crashes.push(CrashSpec { at, down_for });
        self
    }

    /// Schedules a host stall at `at`, lasting `lasting`.
    #[must_use]
    pub fn stall(mut self, at: SimTime, lasting: SimTime) -> Self {
        self.stalls.push(StallSpec { at, lasting });
        self
    }

    /// Sets the CMS→switch channel fault model.
    #[must_use]
    pub fn channel(mut self, cfg: ChannelFaultConfig) -> Self {
        self.channel = Some(cfg);
        self
    }

    /// The channel fault model, if any.
    pub fn channel_config(&self) -> Option<ChannelFaultConfig> {
        self.channel
    }

    /// Merges `other` into this schedule (each event keeps its own
    /// timing; `other`'s channel model wins when both set one).
    pub fn merge(&mut self, other: FaultSchedule) {
        self.crashes.extend(other.crashes);
        self.stalls.extend(other.stalls);
        if other.channel.is_some() {
            self.channel = other.channel;
        }
    }

    /// Number of scheduled crash events.
    pub fn crash_count(&self) -> usize {
        self.crashes.len()
    }

    /// True when the schedule injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty() && self.stalls.is_empty() && self.channel.is_none()
    }

    /// Compiles into the runtime cursor: events stably sorted by start
    /// time (ties keep program order).
    pub fn compile(mut self) -> FaultPlan {
        self.crashes.sort_by_key(|c| c.at);
        self.stalls.sort_by_key(|s| s.at);
        FaultPlan {
            crashes: self.crashes,
            crash_cursor: 0,
            stalls: self.stalls,
            stall_cursor: 0,
            stalled_until: SimTime::ZERO,
            channel: self.channel,
        }
    }
}

/// The runtime cursor over a compiled [`FaultSchedule`]. Poll
/// [`FaultPlan::next_crash`] and [`FaultPlan::stalled`] once per tick
/// with monotonically non-decreasing `now`.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    crashes: Vec<CrashSpec>,
    crash_cursor: usize,
    stalls: Vec<StallSpec>,
    stall_cursor: usize,
    stalled_until: SimTime,
    channel: Option<ChannelFaultConfig>,
}

impl FaultPlan {
    /// Hands out the next crash whose start time has arrived, once.
    /// Call in a loop: several crashes scheduled on the same tick all
    /// fire (the later ones extend the downtime).
    pub fn next_crash(&mut self, now: SimTime) -> Option<CrashSpec> {
        let c = *self.crashes.get(self.crash_cursor)?;
        if c.at <= now {
            self.crash_cursor += 1;
            Some(c)
        } else {
            None
        }
    }

    /// True when a stall window covers `now`. Overlapping windows
    /// merge; the stall holds through the union of their spans.
    pub fn stalled(&mut self, now: SimTime) -> bool {
        while let Some(s) = self.stalls.get(self.stall_cursor) {
            if s.at > now {
                break;
            }
            self.stalled_until = self.stalled_until.max(s.at + s.lasting);
            self.stall_cursor += 1;
        }
        now < self.stalled_until
    }

    /// The channel fault model carried by the schedule, if any.
    pub fn channel_config(&self) -> Option<ChannelFaultConfig> {
        self.channel
    }

    /// Crash events not yet handed out.
    pub fn pending_crashes(&self) -> usize {
        self.crashes.len() - self.crash_cursor
    }

    /// The next instant at which this plan affects the node: `now`
    /// itself while a stall window is open (every stalled tick starves
    /// the budget and must be stepped), otherwise the earliest pending
    /// crash or stall start. `None` once the program is exhausted —
    /// polls strictly before the returned time observe and mutate
    /// nothing, so the event-driven engines may skip them.
    pub fn next_event(&self, now: SimTime) -> Option<SimTime> {
        if now < self.stalled_until {
            return Some(now);
        }
        let crash = self.crashes.get(self.crash_cursor).map(|c| c.at);
        let stall = self.stalls.get(self.stall_cursor).map(|s| s.at);
        match (crash, stall) {
            (Some(c), Some(s)) => Some(c.min(s)),
            (Some(c), None) => Some(c),
            (None, Some(s)) => Some(s),
            (None, None) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn crashes_fire_once_in_time_order() {
        let mut plan = FaultSchedule::new()
            .crash(ms(50), ms(10))
            .crash(ms(10), ms(5))
            .compile();
        assert_eq!(plan.pending_crashes(), 2);
        assert_eq!(plan.next_crash(ms(0)), None);
        assert_eq!(
            plan.next_crash(ms(10)),
            Some(CrashSpec {
                at: ms(10),
                down_for: ms(5)
            })
        );
        assert_eq!(plan.next_crash(ms(10)), None, "handed out once");
        assert_eq!(
            plan.next_crash(ms(60)),
            Some(CrashSpec {
                at: ms(50),
                down_for: ms(10)
            })
        );
        assert_eq!(plan.pending_crashes(), 0);
    }

    #[test]
    fn same_tick_crashes_all_fire() {
        let mut plan = FaultSchedule::new()
            .crash(ms(5), ms(1))
            .crash(ms(5), ms(20))
            .compile();
        assert!(plan.next_crash(ms(5)).is_some());
        assert!(plan.next_crash(ms(5)).is_some());
        assert!(plan.next_crash(ms(5)).is_none());
    }

    #[test]
    fn stall_windows_cover_and_merge() {
        let mut plan = FaultSchedule::new()
            .stall(ms(10), ms(5))
            .stall(ms(12), ms(10)) // overlaps: union is [10, 22)
            .stall(ms(40), ms(2))
            .compile();
        assert!(!plan.stalled(ms(9)));
        assert!(plan.stalled(ms(10)));
        assert!(plan.stalled(ms(14)), "first window alone would have ended");
        assert!(plan.stalled(ms(21)));
        assert!(!plan.stalled(ms(22)), "window is half-open");
        assert!(!plan.stalled(ms(39)));
        assert!(plan.stalled(ms(40)));
        assert!(!plan.stalled(ms(42)));
    }

    #[test]
    fn empty_schedule_is_inert() {
        let sched = FaultSchedule::new();
        assert!(sched.is_empty());
        let mut plan = sched.compile();
        assert!(plan.next_crash(SimTime::from_secs(100)).is_none());
        assert!(!plan.stalled(SimTime::from_secs(100)));
        assert!(plan.channel_config().is_none());
    }
}
