//! # pi-fault — deterministic fault injection and control-plane reliability
//!
//! Real clouds keep serving under partial failure; until this crate the
//! simulator assumed an immortal vswitch and a lossless CMS→switch
//! channel. That hid the paper's operational question: *does a
//! policy-injection attack get worse when it races a switch restart or
//! a flaky control plane?* (A crash wipes the switch's ACLs — a deny
//! rule silently vanishing is a security hole, not just a perf bug.)
//!
//! Three pieces, all tick-scheduled and shard-local so the fleet's
//! bit-identical worker-count invariant survives:
//!
//! * [`FaultSchedule`] / [`FaultPlan`] — a build-time program of
//!   **switch crash/restart** windows (caches, upcall queues and ACLs
//!   lost; restart priced through `CostModel::restart_fixed`) and
//!   **host stalls** (cycle-budget starvation for a window), compiled
//!   into a cursor the node polls per tick — the same compiled-program
//!   pattern as `pi_cms::ControlPlane`.
//! * [`ChannelFaultConfig`] / [`Channel`] — a lossy, delaying,
//!   duplicating CMS→switch channel: per-message drop/duplicate
//!   probabilities and a jittered delivery delay (jitter produces
//!   reordering), driven by a seeded [`pi_core::SplitMix64`].
//! * [`ReliableControlPlane`] — an at-least-once delivery layer over a
//!   [`pi_cms::ControlPlaneProgram`]: sequence-numbered updates, acks
//!   (through the same lossy channel), per-update timeout with
//!   exponential backoff + jittered retry, receiver-side duplicate
//!   suppression, and a periodic **reconciliation loop** that diffs the
//!   CMS's desired ACL state against the switch's reported installed
//!   state and re-pushes the difference — turning a crash from silent
//!   policy loss into bounded-time convergence.

pub mod channel;
pub mod reliable;
pub mod schedule;

pub use channel::{Channel, ChannelFaultConfig, ChannelStats};
pub use reliable::{ControlChannelStats, ReliabilityConfig, ReliableControlPlane};
pub use schedule::{CrashSpec, FaultPlan, FaultSchedule, StallSpec};

/// Everything that went wrong (and was recovered) at one node over a
/// run — carried per node by the sim/fleet reports, and folded into
/// `BlastRadius` as the `fault_events` / `recovery_ticks` / `retries`
/// columns.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NodeFaultReport {
    /// Crash/restart cycles the switch went through.
    pub crashes: u64,
    /// Ticks the host spent with a starved (zero) cycle budget.
    pub stall_ticks: u64,
    /// Restart cycles charged against the node's budget
    /// (`crashes × CostModel::restart_fixed`).
    pub restart_cycles: u64,
    /// ACLs wiped by crashes (each one an unenforced deny policy until
    /// re-pushed).
    pub acls_lost: u64,
    /// Cached flow entries (megaflows / exact entries / offload
    /// entries) lost to crashes.
    pub flows_lost: u64,
    /// Pending upcalls discarded by crashes (switch-side queues).
    pub upcalls_lost: u64,
    /// In-flight deferred upcalls the node dropped on crash (reported
    /// to their sources as upcall drops).
    pub deferred_dropped: u64,
    /// Ticks between a crash and reconciliation convergence, summed
    /// over recovery episodes (zero when reconciliation never ran or
    /// never converged).
    pub recovery_ticks: u64,
    /// Control-channel delivery statistics (zeroed when no reliable
    /// control plane was attached).
    pub channel: ControlChannelStats,
}

impl NodeFaultReport {
    /// Total injected fault events: crashes, stall ticks, channel
    /// drops/duplicates, and deliveries lost to switch downtime.
    pub fn fault_events(&self) -> u64 {
        self.crashes
            + self.stall_ticks
            + self.channel.dropped
            + self.channel.duplicated
            + self.channel.acks_dropped
            + self.channel.lost_to_downtime
    }
}
