//! Attack pacing: a [`TrafficSource`] emitting the covert stream.
//!
//! Three concerns share the bandwidth budget:
//! 1. **Populate** — emit every populate packet once, as fast as the
//!    budget allows (masks appear within seconds of attack start, the
//!    Fig. 3 cliff at t = 60 s).
//! 2. **Refresh** — touch every megaflow entry once per refresh
//!    interval (default half the idle timeout) so the revalidator never
//!    reclaims a mask.
//! 3. **Scan** — spend whatever remains on unique allow-rule packets
//!    that each force a near-full subtable walk (the CPU amplifier).
//!
//! [`AttackSchedule::upcall_flood`] switches the schedule to a second
//! attack mode aimed at the *bounded slow path* instead of the fast
//! path: every emitted packet targets a never-before-seen destination,
//! so each one is a guaranteed megaflow miss that must upcall. Paced at
//! any rate above the handler service rate, the stream keeps its upcall
//! queue pinned at capacity and keeps the handler cycle budget busy —
//! starving co-located tenants' flow setups (and, once the flow limit
//! fills, their installs too).

use pi_core::SimTime;
use pi_traffic::{GenPacket, TrafficSource};

use crate::covert::CovertSequence;

/// What the paced budget is spent on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Populate + refresh + scan against the injected ACL's masks (the
    /// paper's fast-path attack).
    Covert,
    /// Unique-destination spray: every packet upcalls, pinning the
    /// bounded slow-path pipeline at capacity.
    UpcallFlood,
}

/// The paced attack stream.
#[derive(Debug, Clone)]
pub struct AttackSchedule {
    seq: CovertSequence,
    mode: Mode,
    /// Covert budget, bits/second.
    bandwidth_bps: f64,
    /// Frame size used for budget accounting (the attack wants small
    /// frames: pps is what matters, bytes are the cost).
    frame_bytes: usize,
    /// Attack start time (Fig. 3: 60 s).
    start: SimTime,
    /// Refresh period for the populate set.
    refresh_interval: SimTime,
    /// Whether to spend spare budget on scan packets.
    scan_enabled: bool,

    // State.
    active_ns: u64,
    emitted: u64,
    populate_cursor: u64,
    refresh_cursor: u64,
    refresh_credit: f64,
    scan_counter: u64,
    label: String,
}

impl AttackSchedule {
    /// A schedule for `seq` within `bandwidth_bps`, starting at `start`.
    pub fn new(seq: CovertSequence, bandwidth_bps: f64, start: SimTime) -> Self {
        AttackSchedule {
            seq,
            mode: Mode::Covert,
            bandwidth_bps,
            frame_bytes: 64,
            start,
            refresh_interval: SimTime::from_secs(5),
            scan_enabled: true,
            active_ns: 0,
            emitted: 0,
            populate_cursor: 0,
            refresh_cursor: 0,
            refresh_credit: 0.0,
            scan_counter: 0,
            label: "attack".to_string(),
        }
    }

    /// Overrides the refresh interval (must stay below the datapath's
    /// idle timeout for the attack to persist).
    #[must_use]
    pub fn refresh_every(mut self, interval: SimTime) -> Self {
        self.refresh_interval = interval;
        self
    }

    /// Disables the scan stream (populate + refresh only) — used by the
    /// covert-bandwidth experiment to isolate refresh economics.
    #[must_use]
    pub fn without_scan(mut self) -> Self {
        self.scan_enabled = false;
        self
    }

    /// Frame size for budget accounting.
    #[must_use]
    pub fn frame_size(mut self, bytes: usize) -> Self {
        self.frame_bytes = bytes;
        self
    }

    /// Switches the schedule to the upcall-flood mode: the whole budget
    /// goes to unique-destination packets (a rolling spray through an
    /// off-cluster block), each of which is a guaranteed megaflow miss
    /// that must be serviced by a slow-path handler. Paced above the
    /// handler service rate, the flood pins the bounded upcall queue at
    /// capacity and monopolises the per-step handler budget; the mask
    /// machinery (populate/refresh/scan) is not used.
    #[must_use]
    pub fn upcall_flood(mut self) -> Self {
        self.mode = Mode::UpcallFlood;
        self
    }

    /// The `n`-th flood packet: unique destination (172.16/12-style
    /// spray) and a rolling source port, so no cache level ever absorbs
    /// the stream. The source address is derived from the attacker pod
    /// so fanned-out floods stay distinguishable in dumps.
    fn flood_packet(&self, n: u64) -> pi_core::FlowKey {
        let dst = 0xac10_0000u32 | (n as u32 & 0x000f_ffff);
        let src = 0x0a00_4200u32 | (self.seq.target().dst_ip & 0xff);
        let sport = 1024 + (n % 60_000) as u16;
        pi_core::FlowKey::tcp(src.to_be_bytes(), dst.to_be_bytes(), sport, 7)
    }

    /// Packets/second the budget affords.
    pub fn pps(&self) -> f64 {
        self.bandwidth_bps / (self.frame_bytes as f64 * 8.0)
    }

    /// True once every populate packet has been sent at least once.
    pub fn populated(&self) -> bool {
        self.populate_cursor >= self.seq.packet_count()
    }

    /// The covert sequence driving this schedule.
    pub fn sequence(&self) -> &CovertSequence {
        &self.seq
    }

    /// Names the schedule for reports.
    #[must_use]
    pub fn named(mut self, label: &str) -> Self {
        self.label = label.to_string();
        self
    }

    /// The **policy-flap** attack: a control-plane program that
    /// re-installs the attacker's *own* ACL at `acl_ip` once every
    /// `period` from `start` until `until` — entirely through the
    /// CMS's sanctioned policy API, with **zero attack packets**.
    ///
    /// Each re-install is policy-wise a no-op (the same table lands
    /// again), but the switch cannot know that: every install triggers
    /// a cache invalidation, and under OVS's global-flush semantics
    /// that wipes *every* tenant's megaflows and microflows. The
    /// co-located victims pay the rebuild — one slow-path upcall per
    /// live flow per flap — while the attacker pays nothing but API
    /// calls. This is the paper's control-plane seam taken to its
    /// logical end: no covert stream, no bandwidth budget, just churn.
    ///
    /// Feed the returned program to
    /// `SimBuilder::attach_control_plane` / a fleet host; pair with
    /// the scoped-invalidation ablation to measure exactly how much of
    /// the damage the global flush is responsible for.
    pub fn policy_flap(
        acl_ip: u32,
        table: &pi_classifier::FlowTable,
        start: SimTime,
        until: SimTime,
        period: SimTime,
    ) -> pi_cms::ControlPlaneProgram {
        assert!(period > SimTime::ZERO, "flap period must be positive");
        assert!(until > start, "flap window must be non-empty");
        let count = (until - start).as_nanos().div_ceil(period.as_nanos());
        let mut program = pi_cms::ControlPlaneProgram::new();
        program.install_acl_every(start, period, count as usize, acl_ip, table);
        program
    }

    /// Fans one attack spec out across a fleet: one paced schedule per
    /// attacker pod, each targeting its own pod's ACL, with starts
    /// staggered by `stagger` (a synchronized fleet-wide burst is easy
    /// to spot; a rolling one is how a patient attacker saturates many
    /// hosts). Schedules are labelled `attack@<i>`.
    pub fn fan_out(
        spec: &crate::acl::AttackSpec,
        attacker_pod_ips: &[u32],
        bandwidth_bps: f64,
        start: SimTime,
        stagger: SimTime,
    ) -> Vec<AttackSchedule> {
        attacker_pod_ips
            .iter()
            .enumerate()
            .map(|(i, &ip)| {
                let begin = start + SimTime::from_nanos(stagger.as_nanos() * i as u64);
                AttackSchedule::new(
                    CovertSequence::new(spec.build_target(ip)),
                    bandwidth_bps,
                    begin,
                )
                .named(&format!("attack@{i}"))
            })
            .collect()
    }
}

impl TrafficSource for AttackSchedule {
    fn generate(&mut self, from: SimTime, to: SimTime, out: &mut Vec<GenPacket>) {
        let from = from.max(self.start);
        if from >= to {
            return;
        }
        let dt_ns = (to - from).as_nanos();
        self.active_ns += dt_ns;
        let target = (self.pps() * self.active_ns as f64 / 1e9).floor() as u64;
        let mut slots = target.saturating_sub(self.emitted);
        self.emitted = target;

        if self.mode == Mode::UpcallFlood {
            // The whole budget is spent on guaranteed-miss packets; the
            // steady pace (anything above the handler service rate)
            // keeps the upcall queue pinned at capacity.
            let frame = self.frame_bytes;
            for _ in 0..slots {
                let key = self.flood_packet(self.scan_counter);
                self.scan_counter += 1;
                out.push(GenPacket { key, bytes: frame });
            }
            return;
        }

        // Refresh credit accrues regardless of phase; it is only spent
        // once the populate pass finished.
        let refresh_pps = self.seq.packet_count() as f64 / self.refresh_interval.as_secs_f64();
        self.refresh_credit += refresh_pps * dt_ns as f64 / 1e9;

        let frame = self.frame_bytes;
        while slots > 0 {
            slots -= 1;
            let key = if self.populate_cursor < self.seq.packet_count() {
                let k = self.seq.populate_packet(self.populate_cursor);
                self.populate_cursor += 1;
                k
            } else if self.refresh_credit >= 1.0 {
                self.refresh_credit -= 1.0;
                let k = self.seq.populate_packet(self.refresh_cursor);
                self.refresh_cursor = (self.refresh_cursor + 1) % self.seq.packet_count();
                k
            } else if self.scan_enabled {
                self.scan_counter += 1;
                self.seq.scan_packet(self.scan_counter)
            } else {
                break; // nothing to spend budget on
            };
            out.push(GenPacket { key, bytes: frame });
        }
    }

    fn label(&self) -> &str {
        &self.label
    }

    fn next_activity(&self, from: SimTime) -> SimTime {
        from.max(self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acl::AttackSpec;
    use pi_cms::PolicyDialect;

    fn schedule(bw: f64) -> AttackSchedule {
        let target = AttackSpec::masks_512(PolicyDialect::Kubernetes).build_target(0x0a000042);
        AttackSchedule::new(CovertSequence::new(target), bw, SimTime::from_secs(60))
    }

    fn drive(s: &mut AttackSchedule, from_s: u64, to_s: u64) -> Vec<GenPacket> {
        let mut out = Vec::new();
        for ms in from_s * 1000..to_s * 1000 {
            s.generate(
                SimTime::from_millis(ms),
                SimTime::from_millis(ms + 1),
                &mut out,
            );
        }
        out
    }

    #[test]
    fn silent_before_start() {
        let mut s = schedule(2e6);
        let out = drive(&mut s, 0, 60);
        assert!(out.is_empty());
        assert!(!s.populated());
    }

    #[test]
    fn budget_is_respected() {
        let mut s = schedule(2e6);
        let out = drive(&mut s, 60, 70);
        let bits: usize = out.iter().map(|p| p.bytes * 8).sum();
        let bps = bits as f64 / 10.0;
        assert!(
            (bps - 2e6).abs() / 2e6 < 0.01,
            "offered {bps} b/s vs 2 Mb/s budget"
        );
    }

    #[test]
    fn populate_happens_first_and_fast() {
        let mut s = schedule(2e6);
        // 2 Mb/s of 64-B frames ≈ 3906 pps; 561 populate packets < 1 s.
        let out = drive(&mut s, 60, 61);
        assert!(s.populated());
        let expected: Vec<_> = s.sequence().populate_packets().collect();
        assert_eq!(
            &out[..expected.len()]
                .iter()
                .map(|p| p.key)
                .collect::<Vec<_>>(),
            &expected
        );
    }

    #[test]
    fn steady_state_mixes_refresh_and_scan() {
        let mut s = schedule(2e6);
        drive(&mut s, 60, 62); // populate done
        let out = drive(&mut s, 62, 72); // 10 s of steady state
        let populate_set: std::collections::HashSet<_> = s.sequence().populate_packets().collect();
        let refreshes = out.iter().filter(|p| populate_set.contains(&p.key)).count();
        let scans = out.len() - refreshes;
        // Refresh: 561 packets / 5 s × 10 s ≈ 1122.
        assert!((1000..1300).contains(&refreshes), "refreshes = {refreshes}");
        assert!(scans > 10_000, "scan stream should dominate: {scans}");
        // Every populate packet refreshed at least once in 10 s.
        let refreshed: std::collections::HashSet<_> = out
            .iter()
            .filter(|p| populate_set.contains(&p.key))
            .map(|p| p.key)
            .collect();
        assert_eq!(refreshed.len(), populate_set.len());
    }

    #[test]
    fn without_scan_stays_minimal() {
        let mut s = schedule(2e6).without_scan();
        drive(&mut s, 60, 62);
        let out = drive(&mut s, 62, 72);
        // Only refreshes: ≈ 561/5 × 10 ≈ 1122 packets in 10 s.
        assert!(out.len() < 1500, "got {} packets", out.len());
        assert!(!out.is_empty());
    }

    #[test]
    fn tiny_budget_still_sustains_refresh() {
        // 0.5 Mb/s ≈ 977 pps ≫ 561/5 s — populate slower, but refresh
        // fits (E6's point).
        let mut s = schedule(0.5e6);
        drive(&mut s, 60, 63);
        assert!(s.populated(), "populate must finish within seconds");
    }

    #[test]
    fn upcall_flood_emits_unique_destinations_at_full_budget() {
        let mut s = schedule(2e6).upcall_flood();
        assert!(drive(&mut s, 0, 60).is_empty(), "silent before start");
        let out = drive(&mut s, 60, 70);
        // Budget still binds: 2 Mb/s of 64-B frames ≈ 3906 pps.
        let bps = out.iter().map(|p| p.bytes * 8).sum::<usize>() as f64 / 10.0;
        assert!((bps - 2e6).abs() / 2e6 < 0.01, "offered {bps} b/s");
        // Every packet is a brand-new flow to a brand-new destination.
        let dsts: std::collections::HashSet<_> = out.iter().map(|p| p.key.ip_dst).collect();
        assert_eq!(dsts.len(), out.len(), "destinations never repeat");
        for p in &out {
            assert_eq!(p.key.ip_dst & 0xfff0_0000, 0xac10_0000, "off-cluster spray");
        }
        // No populate/refresh machinery runs in flood mode.
        assert!(!s.populated());
    }

    #[test]
    fn policy_flap_builds_a_zero_packet_install_train() {
        let table = pi_cms::PolicyCompiler.compile_k8s(&pi_cms::NetworkPolicy {
            name: "attacker".into(),
            ingress: vec![],
        });
        let program = AttackSchedule::policy_flap(
            0x0a01_0042,
            &table,
            SimTime::from_secs(60),
            SimTime::from_secs(61),
            SimTime::from_millis(10),
        );
        // 1 s of flapping at 10 ms = 100 installs, all at the same IP,
        // and not a single packet anywhere.
        assert_eq!(program.len(), 100);
        assert!(program.updates().iter().all(|u| matches!(
            u.update,
            pi_cms::PolicyUpdate::InstallAcl {
                ip: 0x0a01_0042,
                ..
            }
        )));
        let mut cp = program.compile();
        assert!(cp.due(SimTime::from_millis(59_999)).is_empty());
        assert_eq!(cp.due(SimTime::from_secs(61)).len(), 100);
    }

    #[test]
    fn fan_out_staggers_starts_and_targets() {
        let spec = AttackSpec::masks_512(PolicyDialect::Kubernetes);
        let ips = [0x0a01_0042u32, 0x0a02_0042, 0x0a03_0042];
        let mut fleet = AttackSchedule::fan_out(
            &spec,
            &ips,
            2e6,
            SimTime::from_secs(60),
            SimTime::from_secs(10),
        );
        assert_eq!(fleet.len(), 3);
        for (i, s) in fleet.iter().enumerate() {
            assert_eq!(s.label(), format!("attack@{i}"));
            // Each schedule aims its own pod's ACL.
            assert_eq!(s.sequence().target().dst_ip, ips[i]);
        }
        // Stagger: the second attacker is still silent when the first
        // has finished populating.
        let out0 = drive(&mut fleet[0], 0, 65);
        let out1 = drive(&mut fleet[1], 0, 65);
        assert!(!out0.is_empty());
        assert!(out1.is_empty(), "second attacker starts at 70 s");
    }

    #[test]
    fn scan_packets_are_unique_across_ticks() {
        let mut s = schedule(2e6);
        drive(&mut s, 60, 61);
        let out = drive(&mut s, 61, 63);
        let populate_set: std::collections::HashSet<_> = s.sequence().populate_packets().collect();
        let scan_keys: Vec<_> = out
            .iter()
            .map(|p| p.key)
            .filter(|k| !populate_set.contains(k))
            .collect();
        let distinct: std::collections::HashSet<_> = scan_keys.iter().collect();
        assert_eq!(distinct.len(), scan_keys.len(), "scans must never repeat");
    }
}
