//! Analytical mask-count prediction, validated against the datapath.
//!
//! §2's claim "our technique can be applied to an arbitrary number of
//! protocol fields, each resulting in a significant increase in the
//! number of MF entries and masks" is quantified here: the number of
//! distinct megaflow masks reachable from a flow table equals the
//! product, over trie-enabled fields, of the number of distinct
//! un-wildcarding depths the field's prefix trie can emit.

use pi_classifier::FlowTable;
use pi_core::Field;

/// Predicts the number of distinct megaflow masks the slow path can
/// generate for `table` with tries on `trie_fields`.
///
/// Fields whose constraints are not CIDR-shaped (or that have no trie)
/// contribute a constant factor of 1: their mask bits are identical in
/// every generated megaflow. (Delegates to the shared implementation in
/// `pi-classifier`, which the defender's admission check uses too.)
pub fn predicted_mask_count(table: &FlowTable, trie_fields: &[Field]) -> u64 {
    pi_classifier::table::reachable_megaflow_mask_count(table, trie_fields)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_classifier::table::whitelist_with_default_deny;
    use pi_core::{FlowKey, FlowMask, MaskedKey};

    const TRIE_FIELDS: [Field; 4] = [Field::IpSrc, Field::IpDst, Field::TpSrc, Field::TpDst];

    fn allow(ip: [u8; 4], ip_len: u8, dst_port: Option<u16>, src_port: Option<u16>) -> MaskedKey {
        let key = FlowKey::tcp(
            ip,
            [0, 0, 0, 0],
            src_port.unwrap_or(0),
            dst_port.unwrap_or(0),
        );
        let mut mask = FlowMask::default().with_prefix(Field::IpSrc, ip_len);
        if dst_port.is_some() {
            mask = mask.with_exact(Field::TpDst);
        }
        if src_port.is_some() {
            mask = mask.with_exact(Field::TpSrc);
        }
        MaskedKey::new(key, mask)
    }

    #[test]
    fn paper_numbers() {
        // Fig. 2: single /8 source → 8 masks.
        let fig2 = whitelist_with_default_deny(&[allow([10, 0, 0, 0], 8, None, None)]);
        assert_eq!(predicted_mask_count(&fig2, &TRIE_FIELDS), 8);
        // §2: ip_src (/32) × dst port → 512.
        let k8s = whitelist_with_default_deny(&[allow([203, 0, 113, 7], 32, Some(443), None)]);
        assert_eq!(predicted_mask_count(&k8s, &TRIE_FIELDS), 512);
        // §2: + src port (Calico) → 8192.
        let calico =
            whitelist_with_default_deny(&[allow([203, 0, 113, 7], 32, Some(443), Some(4444))]);
        assert_eq!(predicted_mask_count(&calico, &TRIE_FIELDS), 8192);
    }

    #[test]
    fn empty_table_is_one_mask() {
        assert_eq!(predicted_mask_count(&FlowTable::new(), &TRIE_FIELDS), 1);
    }

    #[test]
    fn tries_disabled_means_constant_masks() {
        let table = whitelist_with_default_deny(&[allow([203, 0, 113, 7], 32, Some(443), None)]);
        assert_eq!(predicted_mask_count(&table, &[]), 1);
        // Only the IP trie enabled: the port contributes ×1.
        assert_eq!(predicted_mask_count(&table, &[Field::IpSrc]), 32);
    }

    #[test]
    fn multiple_allow_rules_union_their_depths() {
        // Two /8 allows with different first bits: divergence depths are
        // shared, roughly |union of reachable sets|.
        let table = whitelist_with_default_deny(&[
            allow([10, 0, 0, 0], 8, None, None),  // 0000 1010…
            allow([192, 0, 0, 0], 8, None, None), // 1100 0000…
        ]);
        let predicted = predicted_mask_count(&table, &TRIE_FIELDS);
        // Brute-force the trie outcomes over all first octets.
        let tries = table.build_tries(&[Field::IpSrc]);
        let trie = &tries.get(Field::IpSrc).unwrap().trie;
        let mut seen = std::collections::BTreeSet::new();
        for o in 0u64..=255 {
            seen.insert(trie.unwildcard_bits(o << 24));
        }
        assert_eq!(predicted, seen.len() as u64);
    }
}
