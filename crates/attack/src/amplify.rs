//! Multi-pod amplification — scaling the attack across an *arbitrary
//! number of pods*, and the perhaps-surprising arithmetic of doing so.
//!
//! A mask is a set of significant *bits*, not values: two pods with
//! byte-identical ACLs generate megaflows whose **entries** differ (the
//! exact `ip_dst` differs) but whose **masks coincide** — the subtable
//! count does not grow, only the per-subtable population. Masks add
//! only across pods whose ACLs differ in *field shape* (e.g. one pod's
//! policy touches source ports and another's does not). This module
//! plans multi-pod campaigns and exposes the aggregate analytics; the
//! model is validated against the live datapath in
//! `tests/amplification.rs`. The practical upshots for both sides:
//! entry amplification still pressures the flow limit (a different
//! resource), and a defender's per-pod mask attribution stays sharp
//! even against multi-pod campaigns.

use pi_core::SimTime;

use crate::acl::AttackSpec;
use crate::covert::CovertSequence;
use crate::schedule::AttackSchedule;

/// A coordinated injection across several pods of one tenant.
#[derive(Debug, Clone)]
pub struct MultiPodAttack {
    /// One spec per attacking pod (usually identical).
    pub specs: Vec<(u32, AttackSpec)>,
}

impl MultiPodAttack {
    /// The same spec replicated across `pod_ips`.
    pub fn uniform(pod_ips: &[u32], spec: AttackSpec) -> Self {
        MultiPodAttack {
            specs: pod_ips.iter().map(|ip| (*ip, spec)).collect(),
        }
    }

    /// Number of participating pods.
    pub fn pod_count(&self) -> usize {
        self.specs.len()
    }

    /// Aggregate predicted masks: per-pod counts **sum** (each pod's
    /// megaflows carry a different exact `ip_dst`, hence different mask
    /// sets only when the ACL field sets differ — but with identical
    /// ACLs the *masks* coincide!). See [`MultiPodAttack::predicted_masks`]
    /// for the exact rule.
    ///
    /// The subtlety: a mask is the set of significant bits, which does
    /// not include the `ip_dst` *value*. Identical ACLs on two pods
    /// produce identical mask sets — entries double, masks don't. To
    /// make masks add, each pod's spec must differ in field shape
    /// (e.g. different prefix lengths); [`MultiPodAttack::diversified`]
    /// builds exactly that.
    pub fn predicted_masks(&self) -> u64 {
        use std::collections::BTreeSet;
        // A mask's identity here: the (field, prefix-length) multiset,
        // which (ip_len, has_dst, has_src) determines per spec.
        let mut masks: BTreeSet<(u8, u8, bool, u8, bool)> = BTreeSet::new();
        for (_, spec) in &self.specs {
            for ip_bits in 1..=spec.allow_src.len.max(1) {
                for dst_bits in 1..=if spec.dst_port.is_some() { 16 } else { 1 } {
                    for src_bits in 1..=if spec.src_port.is_some() { 16 } else { 1 } {
                        masks.insert((
                            ip_bits,
                            dst_bits,
                            spec.dst_port.is_some(),
                            src_bits,
                            spec.src_port.is_some(),
                        ));
                    }
                }
            }
        }
        masks.len() as u64
    }

    /// Total megaflow entries after all populate passes (these *always*
    /// add across pods: entries differ in `ip_dst`).
    pub fn predicted_entries(&self) -> u64 {
        self.specs
            .iter()
            .map(|(ip, spec)| CovertSequence::new(spec.build_target(*ip)).packet_count())
            .sum()
    }

    /// A campaign whose per-pod specs differ in the whitelisted source
    /// *port*, so the Calico field-shape is identical but distinct
    /// destination ports widen nothing — masks coincide. For genuinely
    /// additive masks use pods with different CMS dialect capabilities
    /// or accept entry (not mask) amplification; both effects are
    /// quantified in `tests/amplification.rs`.
    pub fn diversified(pod_ips: &[u32], base: AttackSpec) -> Self {
        MultiPodAttack {
            specs: pod_ips
                .iter()
                .enumerate()
                .map(|(i, ip)| {
                    let mut spec = base;
                    // Vary the allow prefix length to diversify the mask
                    // shapes across pods (lengths 32, 31, 30, …).
                    spec.allow_src.len = base.allow_src.len.saturating_sub(i as u8).max(1);
                    (*ip, spec)
                })
                .collect(),
        }
    }

    /// Builds one paced schedule per pod, splitting `total_bandwidth_bps`
    /// evenly.
    pub fn schedules(&self, total_bandwidth_bps: f64, start: SimTime) -> Vec<AttackSchedule> {
        let share = total_bandwidth_bps / self.specs.len().max(1) as f64;
        self.specs
            .iter()
            .map(|(ip, spec)| {
                AttackSchedule::new(CovertSequence::new(spec.build_target(*ip)), share, start)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_cms::PolicyDialect;

    fn ips(n: usize) -> Vec<u32> {
        (0..n as u32)
            .map(|i| u32::from_be_bytes([10, 1, 1, i as u8 + 1]))
            .collect()
    }

    #[test]
    fn uniform_pods_share_masks_but_add_entries() {
        let spec = AttackSpec::masks_512(PolicyDialect::Kubernetes);
        let attack = MultiPodAttack::uniform(&ips(4), spec);
        assert_eq!(attack.pod_count(), 4);
        // Identical ACL shapes ⇒ identical mask sets.
        assert_eq!(attack.predicted_masks(), 512);
        // Entries quadruple.
        assert_eq!(attack.predicted_entries(), 4 * 33 * 17);
    }

    #[test]
    fn diversified_pods_widen_the_mask_union() {
        let base = AttackSpec::masks_512(PolicyDialect::Kubernetes);
        let attack = MultiPodAttack::diversified(&ips(4), base);
        // Lengths 32,31,30,29: union of {1..=L}×16 = {1..=32}×16 = 512
        // (shorter prefixes are subsets) — the union is bounded by the
        // longest prefix. Masks don't add; the model must say so.
        assert_eq!(attack.predicted_masks(), 512);
    }

    #[test]
    fn mixed_dialects_do_add_masks() {
        // One pod with dst-port-only, one adding src ports: the second
        // field set strictly contains new shapes.
        let mut attack =
            MultiPodAttack::uniform(&ips(1), AttackSpec::masks_512(PolicyDialect::Kubernetes));
        attack
            .specs
            .push((u32::from_be_bytes([10, 1, 1, 99]), AttackSpec::masks_8192()));
        // 512 (ip×dst, no src) + 8192 (ip×dst×src) — shapes differ in
        // the has_src flag, so they union to 8704.
        assert_eq!(attack.predicted_masks(), 512 + 8192);
    }

    #[test]
    fn bandwidth_split_is_even() {
        let spec = AttackSpec::masks_512(PolicyDialect::Kubernetes);
        let attack = MultiPodAttack::uniform(&ips(4), spec);
        let schedules = attack.schedules(2e6, SimTime::from_secs(60));
        assert_eq!(schedules.len(), 4);
        for s in &schedules {
            assert!((s.pps() - 2e6 / 4.0 / 512.0).abs() < 1.0); // 64B×8=512 bits
        }
    }
}
