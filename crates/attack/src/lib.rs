//! # pi-attack — the policy-injection attack
//!
//! The paper's contribution, §2: "(i) the capability to define ACLs
//! between our pods/VMs (this is provided by the CMS); (ii) a set of
//! malicious ACLs; and (iii) an adversarial packet sequence, which will
//! trash the MF with excess entries and masks."
//!
//! * [`AttackSpec`] / [`MaliciousAcl`] — ingredient (ii): innocuous-
//!   looking whitelist policies in each CMS dialect whose complement
//!   decomposition maximises megaflow masks.
//! * [`predict::predicted_mask_count`] — the analytical model: masks
//!   multiply per field (32 · 16 = 512 for Kubernetes/OpenStack,
//!   32 · 16 · 16 = 8192 with Calico's source ports).
//! * [`CovertSequence`] — ingredient (iii): one packet per prefix-length
//!   combination, populating every reachable mask, plus an endless
//!   *scan* stream of unique allowed packets that each walk (nearly) the
//!   whole subtable list.
//! * [`AttackSchedule`] — pacing within a covert bandwidth budget
//!   (paper: 1–2 Mb/s): populate, then refresh every entry inside the
//!   revalidator's idle window, spending the rest on scans.
//!
//! Everything here is *tenant-legal*: the policies pass CMS validation
//! and the packets are ordinary traffic addressed to the attacker's own
//! pod.

pub mod acl;
pub mod amplify;
pub mod covert;
pub mod economics;
pub mod predict;
pub mod schedule;

pub use acl::{AttackSpec, MaliciousAcl};
pub use amplify::MultiPodAttack;
pub use covert::{AttackTarget, CovertSequence, FieldTarget};
pub use economics::{min_refresh_bandwidth_bps, refresh_pps};
pub use predict::predicted_mask_count;
pub use schedule::AttackSchedule;
