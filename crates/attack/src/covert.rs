//! The adversarial packet sequence.
//!
//! §2: "We also need a packet sequence that will populate the MF with
//! the 'required' entries" — the detail the paper omits "in the interest
//! of space". It is reconstructed here:
//!
//! For a whitelist term with value `v` on a `w(≤field-width)`-bit prefix,
//! the slow path un-wildcards `common_prefix(pkt, v) + 1` bits of a
//! mismatching packet. So the packet that shares exactly `b−1` leading
//! bits with `v` and flips bit `b−1` produces the megaflow prefix length
//! `b`, for any `b ∈ 1..=w`; the in-prefix value `v` itself produces
//! length `w`. One packet per per-field choice, crossed over all fields,
//! populates every reachable mask.
//!
//! The sequence additionally provides a **scan stream**: endless unique
//! packets that match the allow rule itself. Each is new to the
//! exact-match cache (unique TOS/TTL/MAC bits — all wildcarded in the
//! megaflow), so each pays a megaflow walk to one of the last-created
//! subtables, and pollutes the microflow cache on the way. This is the
//! cheap per-packet amplification that turns 1–2 Mb/s into a saturated
//! datapath core.

use pi_core::key::ETHERTYPE_IPV4;
use pi_core::{Field, FlowKey, MacAddr};

/// One whitelist term the covert sequence diverges against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FieldTarget {
    /// The matched field.
    pub field: Field,
    /// The whitelisted value (right-aligned).
    pub value: u64,
    /// The term's prefix length (32 for a host ip, 16 for an exact
    /// port, shorter for sweep variants).
    pub prefix_len: u8,
}

impl FieldTarget {
    /// The packet value that makes the slow path emit prefix length
    /// `b`, for `b ∈ 1..=prefix_len`; `b == prefix_len + 1` encodes the
    /// in-prefix value (same mask as `b == prefix_len`, different key).
    fn variant(&self, b: u8) -> u64 {
        let w = self.field.width();
        if b == self.prefix_len + 1 {
            return self.value; // in-prefix (matches the allow term)
        }
        debug_assert!(b >= 1 && b <= self.prefix_len);
        // Keep bits 0..b-1 (MSB-first) of value, flip bit b-1, zero the
        // rest.
        let keep_mask = self.field.prefix_mask(b);
        let flip_bit = 1u64 << (w - b);
        ((self.value & keep_mask) ^ flip_bit) & self.field.full_mask()
    }

    /// Variants per field: prefix_len divergences + the in-prefix value.
    fn variant_count(&self) -> u64 {
        self.prefix_len as u64 + 1
    }
}

/// The attack's packet-construction target: the attacker pod plus the
/// whitelist terms of her injected ACL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttackTarget {
    /// Attacker pod IP (host order) — destination of all covert packets.
    pub dst_ip: u32,
    /// IP protocol of the whitelist term (TCP in the paper).
    pub proto: u8,
    /// The whitelist terms, one per matched field.
    pub fields: Vec<FieldTarget>,
}

/// Generator for populate and scan packets.
#[derive(Debug, Clone)]
pub struct CovertSequence {
    target: AttackTarget,
}

impl CovertSequence {
    /// Builds the sequence for a target.
    pub fn new(target: AttackTarget) -> Self {
        CovertSequence { target }
    }

    /// The target this sequence was built for.
    pub fn target(&self) -> &AttackTarget {
        &self.target
    }

    /// Number of populate packets: ∏ (prefix_lenᶠ + 1).
    pub fn packet_count(&self) -> u64 {
        self.target
            .fields
            .iter()
            .map(|f| f.variant_count())
            .product()
    }

    /// Number of distinct megaflow masks the populate pass creates:
    /// ∏ prefix_lenᶠ (the paper's 512 / 8192).
    pub fn predicted_masks(&self) -> u64 {
        self.target
            .fields
            .iter()
            .map(|f| f.prefix_len as u64)
            .product()
    }

    fn base_key(&self) -> FlowKey {
        let mut k = FlowKey {
            eth_type: ETHERTYPE_IPV4,
            eth_src: MacAddr::from_id(0xa77ac),
            eth_dst: MacAddr::from_id(0xdead),
            ip_dst: self.target.dst_ip,
            ip_proto: self.target.proto,
            ip_ttl: 64,
            ..Default::default()
        };
        // Fields not targeted by the ACL keep fixed innocuous values.
        k.tp_src = 55_555;
        k.tp_dst = 55_556;
        k
    }

    /// The `n`-th populate packet (mixed-radix over per-field variants,
    /// field 0 most significant). Ordering guarantees the full-mask
    /// subtable — the scan stream's home — is created near the end of
    /// the walk order.
    pub fn populate_packet(&self, n: u64) -> FlowKey {
        debug_assert!(n < self.packet_count());
        let mut k = self.base_key();
        let mut rem = n;
        // Least-significant field last → iterate in reverse.
        for ft in self.target.fields.iter().rev() {
            let radix = ft.variant_count();
            let digit = (rem % radix) as u8;
            rem /= radix;
            // digit 0..prefix_len-1 → divergence b = digit+1;
            // digit == prefix_len → in-prefix.
            let b = digit + 1;
            k.set_field(ft.field, ft.variant(b))
                .expect("variant fits field");
        }
        k
    }

    /// Iterator over the full populate pass.
    pub fn populate_packets(&self) -> impl Iterator<Item = FlowKey> + '_ {
        (0..self.packet_count()).map(move |n| self.populate_packet(n))
    }

    /// The `n`-th scan packet: matches the allow rule exactly (all
    /// fields in-prefix) but is unique in wildcarded bits, so it misses
    /// the exact-match cache and walks to the late full-mask subtable.
    pub fn scan_packet(&self, n: u64) -> FlowKey {
        let mut k = self.base_key();
        for ft in &self.target.fields {
            k.set_field(ft.field, ft.value).expect("value fits field");
        }
        // Uniqueness via fields no ACL touches (wildcarded in every
        // megaflow this attack creates): bits 0–7 of n → TOS, bits 8–14
        // → TTL, bits 15+ → source MAC. A bijection, so scans never
        // repeat a key within 2^47 packets.
        k.ip_tos = (n & 0xff) as u8;
        k.ip_ttl = 1 + ((n >> 8) & 0x7f) as u8;
        k.eth_src = MacAddr::from_id((n >> 15) as u32);
        k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_field_target() -> AttackTarget {
        AttackTarget {
            dst_ip: 0x0a00_0042,
            proto: 6,
            fields: vec![
                FieldTarget {
                    field: Field::IpSrc,
                    value: 0xcb00_7107, // 203.0.113.7
                    prefix_len: 32,
                },
                FieldTarget {
                    field: Field::TpDst,
                    value: 443,
                    prefix_len: 16,
                },
            ],
        }
    }

    #[test]
    fn counts_match_paper() {
        let seq = CovertSequence::new(two_field_target());
        assert_eq!(seq.predicted_masks(), 512);
        assert_eq!(seq.packet_count(), 33 * 17);
        let mut three = two_field_target();
        three.fields.push(FieldTarget {
            field: Field::TpSrc,
            value: 4444,
            prefix_len: 16,
        });
        let seq3 = CovertSequence::new(three);
        assert_eq!(seq3.predicted_masks(), 8192);
        assert_eq!(seq3.packet_count(), 33 * 17 * 17);
    }

    #[test]
    fn variants_share_exactly_b_minus_1_bits() {
        let ft = FieldTarget {
            field: Field::IpSrc,
            value: 0xcb00_7107,
            prefix_len: 32,
        };
        for b in 1..=32u8 {
            let v = ft.variant(b);
            // Shares b-1 leading bits, differs at bit b-1.
            let shared = Field::IpSrc.prefix_mask(b - 1);
            assert_eq!(v & shared, ft.value & shared, "b={b}");
            let bit = 1u64 << (32 - b);
            assert_ne!(v & bit, ft.value & bit, "b={b} must flip bit {b}");
        }
        // In-prefix variant is the value itself.
        assert_eq!(ft.variant(33), ft.value);
    }

    #[test]
    fn all_populate_packets_are_distinct() {
        let seq = CovertSequence::new(two_field_target());
        let mut seen = std::collections::HashSet::new();
        for k in seq.populate_packets() {
            assert!(seen.insert(k), "duplicate populate packet {k}");
            assert_eq!(k.ip_dst, 0x0a00_0042);
            assert_eq!(k.ip_proto, 6);
        }
        assert_eq!(seen.len(), 33 * 17);
    }

    #[test]
    fn last_populate_packet_is_the_allow_flow() {
        let seq = CovertSequence::new(two_field_target());
        let last = seq.populate_packet(seq.packet_count() - 1);
        assert_eq!(last.ip_src, 0xcb00_7107);
        assert_eq!(last.tp_dst, 443);
    }

    #[test]
    fn scan_packets_match_allow_rule_and_are_unique() {
        let seq = CovertSequence::new(two_field_target());
        let mut seen = std::collections::HashSet::new();
        for n in 0..10_000u64 {
            let k = seq.scan_packet(n);
            assert_eq!(k.ip_src, 0xcb00_7107, "scan must match the whitelist");
            assert_eq!(k.tp_dst, 443);
            assert!(seen.insert(k), "scan packet {n} not unique");
        }
    }

    #[test]
    fn short_prefix_target_scales_down() {
        let t = AttackTarget {
            dst_ip: 1,
            proto: 6,
            fields: vec![FieldTarget {
                field: Field::IpSrc,
                value: 0x0a00_0000,
                prefix_len: 8,
            }],
        };
        let seq = CovertSequence::new(t);
        assert_eq!(seq.predicted_masks(), 8); // the Fig. 2 count
        assert_eq!(seq.packet_count(), 9); // 8 divergences + in-prefix
    }
}
