//! Malicious ACL construction.
//!
//! The policies below are indistinguishable from legitimate
//! microsegmentation: "allow my backup server (one host) to reach my
//! pod's service port". What makes them malicious is the *complement*:
//! proving a packet doesn't match a `/32` source requires up to 32
//! megaflow prefix lengths, an exact port another 16, and the products
//! multiply.

use pi_core::key::IPPROTO_TCP;
use pi_core::Field;

use pi_cms::{
    CalicoPolicy, CalicoRule, Cidr, IngressRule, NetworkPolicy, PolicyDialect, PortRange, Protocol,
    SecurityGroup,
};

use crate::covert::{AttackTarget, FieldTarget};

/// Parameters of one policy-injection attack instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttackSpec {
    /// Which CMS dialect to express the policy in. Calico is required
    /// for the source-port term.
    pub dialect: PolicyDialect,
    /// The whitelisted source block. A host `/32` maximises the IP
    /// factor at 32; shorter prefixes give proportionally fewer masks
    /// (used by the sweep experiments).
    pub allow_src: Cidr,
    /// Exact destination port term (× 16 masks), if used.
    pub dst_port: Option<u16>,
    /// Exact source port term (× 16 masks) — Calico only.
    pub src_port: Option<u16>,
}

impl AttackSpec {
    /// The paper's 512-mask attack: 2 rules matching "solely on the IP
    /// source address and the L4 destination port" (§2), valid in every
    /// dialect.
    pub fn masks_512(dialect: PolicyDialect) -> Self {
        AttackSpec {
            dialect,
            allow_src: Cidr::host([203, 0, 113, 7]),
            dst_port: Some(443),
            src_port: None,
        }
    }

    /// The paper's full-blown 8192-mask DoS: Calico's source-port match
    /// added (§2: "if the CMS allows us to also filter on the L4 source
    /// port (the Kubernetes networking plugin Calico does this)").
    pub fn masks_8192() -> Self {
        AttackSpec {
            dialect: PolicyDialect::Calico,
            allow_src: Cidr::host([203, 0, 113, 7]),
            dst_port: Some(443),
            src_port: Some(4444),
        }
    }

    /// The analytical mask count this spec should inject:
    /// ∏ per-field factors (ip prefix length × 16 per exact port).
    pub fn predicted_masks(&self) -> u64 {
        let mut n = self.allow_src.len.max(1) as u64;
        if self.dst_port.is_some() {
            n *= 16;
        }
        if self.src_port.is_some() {
            n *= 16;
        }
        n
    }

    /// Builds the dialect-specific policy object.
    ///
    /// # Panics
    /// Panics if `src_port` is set for a non-Calico dialect — those CMS
    /// APIs cannot express it (that is the paper's point), so asking is
    /// a programming error.
    pub fn build_policy(&self) -> MaliciousAcl {
        match self.dialect {
            PolicyDialect::Kubernetes => {
                assert!(
                    self.src_port.is_none(),
                    "Kubernetes NetworkPolicy cannot match source ports"
                );
                MaliciousAcl::K8s(NetworkPolicy {
                    name: "allow-backup-host".into(),
                    ingress: vec![IngressRule {
                        from: vec![self.allow_src],
                        ports: match self.dst_port {
                            Some(p) => vec![(Protocol::Tcp, Some(p))],
                            None => vec![(Protocol::Tcp, None)],
                        },
                    }],
                })
            }
            PolicyDialect::OpenStack => {
                assert!(
                    self.src_port.is_none(),
                    "OpenStack security groups cannot match source ports"
                );
                MaliciousAcl::OpenStack(SecurityGroup {
                    name: "allow-backup-host".into(),
                    rules: vec![pi_cms::SgRule {
                        remote: self.allow_src,
                        protocol: Protocol::Tcp,
                        dst_ports: self.dst_port.map(PortRange::single),
                    }],
                })
            }
            PolicyDialect::Calico => MaliciousAcl::Calico(CalicoPolicy {
                name: "allow-backup-host".into(),
                rules: vec![CalicoRule {
                    protocol: Protocol::Tcp,
                    src_nets: vec![self.allow_src],
                    src_ports: self.src_port.map(PortRange::single).into_iter().collect(),
                    dst_ports: self.dst_port.map(PortRange::single).into_iter().collect(),
                }],
            }),
        }
    }

    /// Builds the covert-sequence target for an attacker pod at
    /// `pod_ip` (host byte order) protected by this spec's policy.
    pub fn build_target(&self, pod_ip: u32) -> AttackTarget {
        let mut fields = vec![FieldTarget {
            field: Field::IpSrc,
            value: self.allow_src.addr as u64,
            prefix_len: self.allow_src.len,
        }];
        if let Some(p) = self.dst_port {
            fields.push(FieldTarget {
                field: Field::TpDst,
                value: p as u64,
                prefix_len: 16,
            });
        }
        if let Some(p) = self.src_port {
            fields.push(FieldTarget {
                field: Field::TpSrc,
                value: p as u64,
                prefix_len: 16,
            });
        }
        AttackTarget {
            dst_ip: pod_ip,
            proto: IPPROTO_TCP,
            fields,
        }
    }
}

/// A policy object in whichever dialect the CMS speaks.
#[derive(Debug, Clone)]
pub enum MaliciousAcl {
    /// Kubernetes NetworkPolicy.
    K8s(NetworkPolicy),
    /// OpenStack security group.
    OpenStack(SecurityGroup),
    /// Calico policy.
    Calico(CalicoPolicy),
}

impl MaliciousAcl {
    /// Submits the policy through the CMS for the tenant's own pod,
    /// returning the compiled table — the "injection" step.
    pub fn apply(
        &self,
        cloud: &pi_cms::Cloud,
        tenant: pi_cms::TenantId,
        pod: pi_cms::PodId,
    ) -> Result<pi_cms::cloud::CompiledPolicy, pi_cms::CmsError> {
        match self {
            MaliciousAcl::K8s(p) => cloud.apply_k8s_policy(tenant, pod, p),
            MaliciousAcl::OpenStack(p) => cloud.apply_security_group(tenant, pod, p),
            MaliciousAcl::Calico(p) => cloud.apply_calico_policy(tenant, pod, p),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_specs_predict_paper_numbers() {
        assert_eq!(
            AttackSpec::masks_512(PolicyDialect::Kubernetes).predicted_masks(),
            512
        );
        assert_eq!(
            AttackSpec::masks_512(PolicyDialect::OpenStack).predicted_masks(),
            512
        );
        assert_eq!(AttackSpec::masks_8192().predicted_masks(), 8192);
    }

    #[test]
    fn single_field_spec() {
        let spec = AttackSpec {
            dialect: PolicyDialect::Kubernetes,
            allow_src: "10.0.0.0/8".parse().unwrap(),
            dst_port: None,
            src_port: None,
        };
        assert_eq!(spec.predicted_masks(), 8); // the Fig. 2 toy at scale
    }

    #[test]
    fn policies_build_in_each_dialect() {
        match AttackSpec::masks_512(PolicyDialect::Kubernetes).build_policy() {
            MaliciousAcl::K8s(p) => {
                assert_eq!(p.ingress.len(), 1);
                assert_eq!(p.ingress[0].ports, vec![(Protocol::Tcp, Some(443))]);
            }
            _ => panic!("wrong dialect"),
        }
        match AttackSpec::masks_512(PolicyDialect::OpenStack).build_policy() {
            MaliciousAcl::OpenStack(sg) => {
                assert_eq!(sg.rules[0].dst_ports, Some(PortRange::single(443)));
            }
            _ => panic!("wrong dialect"),
        }
        match AttackSpec::masks_8192().build_policy() {
            MaliciousAcl::Calico(p) => {
                assert_eq!(p.rules[0].src_ports, vec![PortRange::single(4444)]);
            }
            _ => panic!("wrong dialect"),
        }
    }

    #[test]
    #[should_panic(expected = "cannot match source ports")]
    fn k8s_with_src_port_is_rejected() {
        AttackSpec {
            dialect: PolicyDialect::Kubernetes,
            allow_src: Cidr::host([1, 1, 1, 1]),
            dst_port: Some(80),
            src_port: Some(1000),
        }
        .build_policy();
    }

    #[test]
    fn target_fields_mirror_spec() {
        let t = AttackSpec::masks_8192().build_target(0x0a000042);
        assert_eq!(t.dst_ip, 0x0a000042);
        assert_eq!(t.fields.len(), 3);
        assert_eq!(t.fields[0].field, Field::IpSrc);
        assert_eq!(t.fields[0].prefix_len, 32);
        assert_eq!(t.fields[1].field, Field::TpDst);
        assert_eq!(t.fields[2].field, Field::TpSrc);
    }

    #[test]
    fn policy_passes_real_cms_validation() {
        let mut cloud = pi_cms::Cloud::new();
        let attacker = cloud.add_tenant();
        let node = cloud.add_node();
        let pod = cloud.add_pod(attacker, node);
        let acl = AttackSpec::masks_8192().build_policy();
        let compiled = acl.apply(&cloud, attacker, pod).unwrap();
        // Innocuous: two rules (one allow + default deny).
        assert_eq!(compiled.table.len(), 2);
    }
}
