//! Attack economics: how little bandwidth sustains the mask population.
//!
//! §2 calls the covert stream "low-bandwidth (1–2 Mbps)". The arithmetic:
//! every megaflow must be touched once per idle window (10 s default),
//! so sustaining `E` entries costs `E / idle` packets per second of
//! minimum-size frames — for the 8192-mask attack, under half a megabit.

use pi_core::SimTime;

/// Packets/second needed to refresh `entries` within `idle_timeout`.
pub fn refresh_pps(entries: u64, idle_timeout: SimTime) -> f64 {
    let secs = idle_timeout.as_secs_f64();
    assert!(secs > 0.0, "idle timeout must be positive");
    entries as f64 / secs
}

/// Bits/second of `frame_bytes` frames needed to refresh `entries`
/// within `idle_timeout`.
pub fn min_refresh_bandwidth_bps(entries: u64, idle_timeout: SimTime, frame_bytes: usize) -> f64 {
    refresh_pps(entries, idle_timeout) * frame_bytes as f64 * 8.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_fits_the_budget() {
        // 8192-mask attack: 9537 entries, 10 s idle, 64-byte frames.
        let bw = min_refresh_bandwidth_bps(9537, SimTime::from_secs(10), 64);
        assert!(
            bw < 1_000_000.0,
            "refresh alone must cost well under 1 Mb/s, got {bw}"
        );
        // Even with half the budget spent refreshing twice per window,
        // a 2 Mb/s stream has room for the scan packets.
        assert!(2.0 * bw < 2_000_000.0);
    }

    #[test]
    fn refresh_pps_scales_linearly() {
        let idle = SimTime::from_secs(10);
        assert_eq!(refresh_pps(100, idle), 10.0);
        assert_eq!(refresh_pps(8192, idle), 819.2);
        assert_eq!(refresh_pps(8192, SimTime::from_secs(5)), 1638.4);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_idle_timeout_panics() {
        refresh_pps(1, SimTime::ZERO);
    }
}
