//! Randomised property test: build ∘ extract = identity over the key
//! space the workspace models. This is what lets every higher layer
//! treat FlowKey and wire bytes as interchangeable.
//!
//! Cases come from the deterministic in-house [`SplitMix64`] generator
//! (no external dependencies).

use pi_core::{Field, FlowKey, MacAddr, SplitMix64};
use pi_packet::{extract_flow_key, PacketBuilder};

const CASES: u64 = 256;

fn rand_mac(rng: &mut SplitMix64) -> MacAddr {
    let b = rng.next_u64().to_le_bytes();
    MacAddr([b[0], b[1], b[2], b[3], b[4], b[5]])
}

fn rand_tcp_udp_key(rng: &mut SplitMix64) -> FlowKey {
    let tcp = rng.gen_bool(0.5);
    let ip_src = rng.next_u32();
    let ip_dst = rng.next_u32();
    let tp_src = rng.next_u32() as u16;
    let tp_dst = rng.next_u32() as u16;
    let mut key = if tcp {
        FlowKey::tcp(
            std::net::Ipv4Addr::from(ip_src),
            std::net::Ipv4Addr::from(ip_dst),
            tp_src,
            tp_dst,
        )
    } else {
        FlowKey::udp(
            std::net::Ipv4Addr::from(ip_src),
            std::net::Ipv4Addr::from(ip_dst),
            tp_src,
            tp_dst,
        )
    };
    key.ip_tos = rng.next_u32() as u8;
    key.ip_ttl = 1 + rng.gen_range(255) as u8; // ttl ≥ 1
    key.in_port = rng.next_u32();
    key.eth_src = rand_mac(rng);
    key.eth_dst = rand_mac(rng);
    key
}

#[test]
fn build_extract_identity() {
    pi_core::for_cases(CASES, 0x21, |rng| {
        let key = rand_tcp_udp_key(rng);
        let payload_len = rng.gen_range(1400) as usize;
        let frame = PacketBuilder::new()
            .payload_len(payload_len)
            .build(&key)
            .unwrap();
        let parsed = extract_flow_key(&frame, key.in_port).unwrap();
        assert_eq!(parsed, key);
    });
}

#[test]
fn built_frames_never_undersized() {
    pi_core::for_cases(CASES, 0x22, |rng| {
        let key = rand_tcp_udp_key(rng);
        let frame = PacketBuilder::new().build(&key).unwrap();
        assert!(frame.len() >= pi_packet::ETHERNET_MIN_FRAME_LEN);
    });
}

#[test]
fn key_field_view_consistent_after_round_trip() {
    pi_core::for_cases(CASES, 0x23, |rng| {
        let key = rand_tcp_udp_key(rng);
        let frame = PacketBuilder::new().build(&key).unwrap();
        let parsed = extract_flow_key(&frame, key.in_port).unwrap();
        for f in pi_core::ALL_FIELDS {
            assert_eq!(parsed.field(f), key.field(f), "field {} differs", f);
        }
        // The TOS byte is the one the generators mutate for covert marking.
        assert_eq!(parsed.field(Field::IpTos), key.ip_tos as u64);
    });
}
