//! Property test: build ∘ extract = identity over the key space the
//! workspace models. This is what lets every higher layer treat FlowKey
//! and wire bytes as interchangeable.

use pi_core::{Field, FlowKey, MacAddr};
use pi_packet::{extract_flow_key, PacketBuilder};
use proptest::prelude::*;

fn arb_tcp_udp_key() -> impl Strategy<Value = FlowKey> {
    (
        any::<bool>(), // tcp?
        any::<u32>(),
        any::<u32>(),
        any::<u16>(),
        any::<u16>(),
        any::<u8>(),
        1u8..=255, // ttl ≥ 1
        any::<u32>(),
        proptest::array::uniform6(any::<u8>()),
        proptest::array::uniform6(any::<u8>()),
    )
        .prop_map(
            |(tcp, ip_src, ip_dst, tp_src, tp_dst, tos, ttl, in_port, mac_s, mac_d)| {
                let mut key = if tcp {
                    FlowKey::tcp(
                        std::net::Ipv4Addr::from(ip_src),
                        std::net::Ipv4Addr::from(ip_dst),
                        tp_src,
                        tp_dst,
                    )
                } else {
                    FlowKey::udp(
                        std::net::Ipv4Addr::from(ip_src),
                        std::net::Ipv4Addr::from(ip_dst),
                        tp_src,
                        tp_dst,
                    )
                };
                key.ip_tos = tos;
                key.ip_ttl = ttl;
                key.in_port = in_port;
                key.eth_src = MacAddr(mac_s);
                key.eth_dst = MacAddr(mac_d);
                key
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn build_extract_identity(key in arb_tcp_udp_key(), payload_len in 0usize..1400) {
        let frame = PacketBuilder::new().payload_len(payload_len).build(&key).unwrap();
        let parsed = extract_flow_key(&frame, key.in_port).unwrap();
        prop_assert_eq!(parsed, key);
    }

    #[test]
    fn built_frames_never_undersized(key in arb_tcp_udp_key()) {
        let frame = PacketBuilder::new().build(&key).unwrap();
        prop_assert!(frame.len() >= pi_packet::ETHERNET_MIN_FRAME_LEN);
    }

    #[test]
    fn key_field_view_consistent_after_round_trip(key in arb_tcp_udp_key()) {
        let frame = PacketBuilder::new().build(&key).unwrap();
        let parsed = extract_flow_key(&frame, key.in_port).unwrap();
        for f in pi_core::ALL_FIELDS {
            prop_assert_eq!(parsed.field(f), key.field(f), "field {} differs", f);
        }
        // The TOS byte is the one the generators mutate for covert marking.
        prop_assert_eq!(parsed.field(Field::IpTos), key.ip_tos as u64);
    }
}
