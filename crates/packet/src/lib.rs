//! # pi-packet — wire formats for the policy-injection reproduction
//!
//! Ethernet II, IPv4, TCP and UDP in the smoltcp idiom:
//!
//! * **Wrapper views** — `EthernetFrame<T: AsRef<[u8]>>` and friends are
//!   zero-copy typed windows over a byte buffer with checked field
//!   accessors. Mutation happens in place through `AsMut<[u8]>`.
//! * **`Repr` structs** — plain-old-data summaries of one header with
//!   `parse` (validate + lift) and `emit` (serialise) methods.
//! * No heap allocation on the parse path; builders allocate exactly one
//!   `Vec<u8>` per packet.
//!
//! The datapath only needs [`extract_flow_key`], which parses an entire
//! frame into a [`pi_core::FlowKey`] in one pass — this is the moral
//! equivalent of OVS's `flow_extract()`.

pub mod builder;
pub mod checksum;
pub mod ethernet;
pub mod extract;
pub mod ipv4;
pub mod tcp;
pub mod udp;

pub use builder::PacketBuilder;
pub use ethernet::{EthernetFrame, EthernetRepr};
pub use extract::extract_flow_key;
pub use ipv4::{Ipv4Packet, Ipv4Repr};
pub use tcp::{TcpRepr, TcpSegment};
pub use udp::{UdpDatagram, UdpRepr};

/// Minimum Ethernet frame length before the FCS (64 B wire minimum minus
/// the 4-byte FCS, which we do not model).
pub const ETHERNET_MIN_FRAME_LEN: usize = 60;
/// Conventional Ethernet MTU (maximum IP packet size).
pub const ETHERNET_MTU: usize = 1500;
