//! Ethernet II frames.

use pi_core::{CoreError, MacAddr};

/// Byte offsets within an Ethernet II header.
mod field {
    pub const DST: core::ops::Range<usize> = 0..6;
    pub const SRC: core::ops::Range<usize> = 6..12;
    pub const ETHERTYPE: core::ops::Range<usize> = 12..14;
    pub const PAYLOAD: usize = 14;
}

/// Length of the Ethernet II header.
pub const HEADER_LEN: usize = field::PAYLOAD;

/// A typed view over a buffer containing an Ethernet II frame.
///
/// ```
/// use pi_packet::EthernetFrame;
/// let bytes = [0u8; 14];
/// let frame = EthernetFrame::new_checked(&bytes[..]).unwrap();
/// assert_eq!(frame.ethertype(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct EthernetFrame<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> EthernetFrame<T> {
    /// Wraps a buffer without checking its length.
    ///
    /// Accessors will panic on a short buffer; prefer
    /// [`EthernetFrame::new_checked`] on untrusted input.
    pub const fn new_unchecked(buffer: T) -> Self {
        EthernetFrame { buffer }
    }

    /// Wraps a buffer, ensuring it is long enough for the header.
    pub fn new_checked(buffer: T) -> pi_core::Result<Self> {
        let got = buffer.as_ref().len();
        if got < HEADER_LEN {
            return Err(CoreError::Truncated {
                what: "ethernet header",
                needed: HEADER_LEN,
                got,
            });
        }
        Ok(EthernetFrame { buffer })
    }

    /// Consumes the view, returning the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// Destination MAC address.
    pub fn dst_addr(&self) -> MacAddr {
        let b = self.buffer.as_ref();
        MacAddr([b[0], b[1], b[2], b[3], b[4], b[5]])
    }

    /// Source MAC address.
    pub fn src_addr(&self) -> MacAddr {
        let b = self.buffer.as_ref();
        MacAddr([b[6], b[7], b[8], b[9], b[10], b[11]])
    }

    /// Ethertype field.
    pub fn ethertype(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[field::ETHERTYPE.start], b[field::ETHERTYPE.start + 1]])
    }

    /// The payload following the header.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[field::PAYLOAD..]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> EthernetFrame<T> {
    /// Sets the destination MAC address.
    pub fn set_dst_addr(&mut self, addr: MacAddr) {
        self.buffer.as_mut()[field::DST].copy_from_slice(&addr.0);
    }

    /// Sets the source MAC address.
    pub fn set_src_addr(&mut self, addr: MacAddr) {
        self.buffer.as_mut()[field::SRC].copy_from_slice(&addr.0);
    }

    /// Sets the ethertype.
    pub fn set_ethertype(&mut self, ethertype: u16) {
        self.buffer.as_mut()[field::ETHERTYPE].copy_from_slice(&ethertype.to_be_bytes());
    }

    /// Mutable access to the payload.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        &mut self.buffer.as_mut()[field::PAYLOAD..]
    }
}

/// A parsed, plain-old-data representation of an Ethernet header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EthernetRepr {
    /// Source address.
    pub src: MacAddr,
    /// Destination address.
    pub dst: MacAddr,
    /// Ethertype of the payload.
    pub ethertype: u16,
}

impl EthernetRepr {
    /// Parses a frame view into a repr.
    pub fn parse<T: AsRef<[u8]>>(frame: &EthernetFrame<T>) -> pi_core::Result<Self> {
        Ok(EthernetRepr {
            src: frame.src_addr(),
            dst: frame.dst_addr(),
            ethertype: frame.ethertype(),
        })
    }

    /// The header length this repr will emit.
    pub const fn header_len(&self) -> usize {
        HEADER_LEN
    }

    /// Writes this header into a frame view.
    pub fn emit<T: AsRef<[u8]> + AsMut<[u8]>>(&self, frame: &mut EthernetFrame<T>) {
        frame.set_src_addr(self.src);
        frame.set_dst_addr(self.dst);
        frame.set_ethertype(self.ethertype);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    static SAMPLE: [u8; 18] = [
        0xff, 0xff, 0xff, 0xff, 0xff, 0xff, // dst
        0x52, 0x54, 0x00, 0x12, 0x34, 0x56, // src
        0x08, 0x00, // ethertype: IPv4
        0xde, 0xad, 0xbe, 0xef, // payload
    ];

    #[test]
    fn parse_sample() {
        let frame = EthernetFrame::new_checked(&SAMPLE[..]).unwrap();
        assert_eq!(frame.dst_addr(), MacAddr::BROADCAST);
        assert_eq!(frame.src_addr().to_string(), "52:54:00:12:34:56");
        assert_eq!(frame.ethertype(), 0x0800);
        assert_eq!(frame.payload(), &[0xde, 0xad, 0xbe, 0xef]);
    }

    #[test]
    fn new_checked_rejects_short() {
        let err = EthernetFrame::new_checked(&SAMPLE[..10]).unwrap_err();
        assert!(matches!(
            err,
            CoreError::Truncated {
                needed: 14,
                got: 10,
                ..
            }
        ));
    }

    #[test]
    fn repr_round_trip() {
        let frame = EthernetFrame::new_checked(&SAMPLE[..]).unwrap();
        let repr = EthernetRepr::parse(&frame).unwrap();
        let mut out = vec![0u8; repr.header_len() + 4];
        let mut new_frame = EthernetFrame::new_unchecked(&mut out[..]);
        repr.emit(&mut new_frame);
        new_frame
            .payload_mut()
            .copy_from_slice(&[0xde, 0xad, 0xbe, 0xef]);
        assert_eq!(&out[..], &SAMPLE[..]);
    }

    #[test]
    fn mutators_round_trip() {
        let mut buf = [0u8; 14];
        let mut frame = EthernetFrame::new_unchecked(&mut buf[..]);
        let src = MacAddr::from_id(7);
        let dst = MacAddr::from_id(9);
        frame.set_src_addr(src);
        frame.set_dst_addr(dst);
        frame.set_ethertype(0x86dd);
        assert_eq!(frame.src_addr(), src);
        assert_eq!(frame.dst_addr(), dst);
        assert_eq!(frame.ethertype(), 0x86dd);
    }

    #[test]
    fn into_inner_returns_buffer() {
        let frame = EthernetFrame::new_checked(SAMPLE.to_vec()).unwrap();
        assert_eq!(frame.into_inner(), SAMPLE.to_vec());
    }
}
