//! The Internet checksum (RFC 1071) and the TCP/UDP pseudo-header.

/// Computes the one's-complement sum of `data`, folded to 16 bits, without
/// the final inversion. Compose partial sums with [`combine`].
pub fn sum(data: &[u8]) -> u32 {
    let mut acc: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        acc += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        acc += u32::from(u16::from_be_bytes([*last, 0]));
    }
    acc
}

/// Folds a 32-bit accumulator into a 16-bit one's-complement value.
pub fn fold(mut acc: u32) -> u16 {
    while acc > 0xffff {
        acc = (acc & 0xffff) + (acc >> 16);
    }
    acc as u16
}

/// Combines partial sums (order-independent).
pub fn combine(a: u32, b: u32) -> u32 {
    a + b
}

/// The finished Internet checksum of `data`: folded, inverted.
pub fn checksum(data: &[u8]) -> u16 {
    !fold(sum(data))
}

/// Partial sum of the IPv4 pseudo-header used by TCP and UDP checksums.
///
/// `src`/`dst` are host-order IPv4 addresses, `proto` the IP protocol
/// number, `len` the transport header+payload length.
pub fn pseudo_header_sum(src: u32, dst: u32, proto: u8, len: u16) -> u32 {
    sum(&src.to_be_bytes()) + sum(&dst.to_be_bytes()) + u32::from(proto) + u32::from(len)
}

/// Verifies a checksummed region: the folded sum over data that *includes*
/// the checksum field must be `0xffff` (all ones before inversion).
pub fn verify(data_including_checksum: &[u8], pseudo: u32) -> bool {
    fold(sum(data_including_checksum) + pseudo) == 0xffff
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_example() {
        // RFC 1071 §3 example words: 0x0001 0xf203 0xf4f5 0xf6f7
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        // Sum = 0x2ddf0 → fold → 0xddf2, checksum = !0xddf2 = 0x220d.
        assert_eq!(fold(sum(&data)), 0xddf2);
        assert_eq!(checksum(&data), 0x220d);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        assert_eq!(sum(&[0xab]), sum(&[0xab, 0x00]));
        assert_eq!(
            checksum(&[0x12, 0x34, 0x56]),
            checksum(&[0x12, 0x34, 0x56, 0x00])
        );
    }

    #[test]
    fn empty_checksum() {
        assert_eq!(checksum(&[]), 0xffff);
    }

    #[test]
    fn inserting_checksum_verifies() {
        let mut data = vec![
            0x45u8, 0x00, 0x00, 0x1c, 0x00, 0x01, 0x00, 0x00, 0x40, 0x11, 0, 0, 10, 0, 0, 1, 10, 0,
            0, 2,
        ];
        let c = checksum(&data);
        data[10] = (c >> 8) as u8;
        data[11] = (c & 0xff) as u8;
        assert!(verify(&data, 0));
    }

    #[test]
    fn verify_detects_corruption() {
        let mut data = vec![0u8; 20];
        data[0] = 0x45;
        let c = checksum(&data);
        data[10] = (c >> 8) as u8;
        data[11] = (c & 0xff) as u8;
        assert!(verify(&data, 0));
        data[3] ^= 0x01;
        assert!(!verify(&data, 0));
    }

    #[test]
    fn pseudo_header_changes_checksum() {
        let payload = [1u8, 2, 3, 4];
        let p1 = pseudo_header_sum(0x0a000001, 0x0a000002, 17, 4);
        let p2 = pseudo_header_sum(0x0a000001, 0x0a000003, 17, 4);
        assert_ne!(fold(sum(&payload) + p1), fold(sum(&payload) + p2));
    }

    #[test]
    fn combine_is_order_independent() {
        let a = sum(&[1, 2, 3, 4]);
        let b = sum(&[5, 6]);
        assert_eq!(fold(combine(a, b)), fold(combine(b, a)));
        // Splitting data at an even boundary must not change the sum.
        assert_eq!(fold(sum(&[1, 2, 3, 4, 5, 6])), fold(combine(a, b)));
    }
}
