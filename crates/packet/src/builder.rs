//! One-stop packet construction.
//!
//! The traffic generators and the attack's covert-sequence generator both
//! need to turn "a flow key plus a size" into real bytes on the wire.
//! [`PacketBuilder`] does that in one allocation, emitting a fully
//! checksummed Ethernet/IPv4/TCP-or-UDP frame that [`crate::extract_flow_key`]
//! parses back to the identical key (a property test pins this).

use pi_core::key::{IPPROTO_TCP, IPPROTO_UDP};
use pi_core::FlowKey;

use crate::ethernet::{self, EthernetFrame, EthernetRepr};
use crate::ipv4::{self, Ipv4Packet, Ipv4Repr};
use crate::tcp::{self, TcpRepr, TcpSegment};
use crate::udp::{self, UdpDatagram, UdpRepr};
use crate::ETHERNET_MIN_FRAME_LEN;

/// Builds wire-format frames from flow keys.
///
/// ```
/// use pi_core::FlowKey;
/// use pi_packet::{PacketBuilder, extract_flow_key};
///
/// let key = FlowKey::tcp([10, 0, 0, 1], [10, 0, 0, 2], 40000, 80);
/// let frame = PacketBuilder::new().payload_len(100).build(&key).unwrap();
/// let parsed = extract_flow_key(&frame, key.in_port).unwrap();
/// assert_eq!(parsed, key);
/// ```
#[derive(Debug, Clone)]
pub struct PacketBuilder {
    payload_len: usize,
    tcp_flags: u8,
    pad_to_min: bool,
}

impl Default for PacketBuilder {
    fn default() -> Self {
        PacketBuilder {
            payload_len: 0,
            tcp_flags: tcp::flags::ACK,
            pad_to_min: true,
        }
    }
}

impl PacketBuilder {
    /// A builder with defaults: empty payload, ACK flag, frames padded to
    /// the Ethernet minimum.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the transport payload length in bytes.
    #[must_use]
    pub fn payload_len(mut self, len: usize) -> Self {
        self.payload_len = len;
        self
    }

    /// Sets TCP flags (ignored for UDP keys).
    #[must_use]
    pub fn tcp_flags(mut self, flags: u8) -> Self {
        self.tcp_flags = flags;
        self
    }

    /// Disables padding to the 60-byte Ethernet minimum (useful when a
    /// test wants exact control of frame size).
    #[must_use]
    pub fn no_padding(mut self) -> Self {
        self.pad_to_min = false;
        self
    }

    /// The frame length that [`PacketBuilder::build`] will produce for a
    /// given key, before minimum-length padding.
    pub fn frame_len(&self, key: &FlowKey) -> usize {
        let l4 = if key.ip_proto == IPPROTO_TCP {
            tcp::HEADER_LEN
        } else {
            udp::HEADER_LEN
        };
        ethernet::HEADER_LEN + ipv4::HEADER_LEN + l4 + self.payload_len
    }

    /// Builds a complete frame realising `key`.
    ///
    /// Returns an error for keys that are not IPv4 TCP/UDP (the only
    /// traffic this workspace models).
    pub fn build(&self, key: &FlowKey) -> pi_core::Result<Vec<u8>> {
        if key.eth_type != pi_core::key::ETHERTYPE_IPV4 {
            return Err(pi_core::CoreError::Malformed("builder: not IPv4"));
        }
        if key.ip_proto != IPPROTO_TCP && key.ip_proto != IPPROTO_UDP {
            return Err(pi_core::CoreError::Malformed("builder: not TCP/UDP"));
        }

        let mut len = self.frame_len(key);
        if self.pad_to_min && len < ETHERNET_MIN_FRAME_LEN {
            len = ETHERNET_MIN_FRAME_LEN;
        }
        let mut buf = vec![0u8; len];

        // L2
        let eth_repr = EthernetRepr {
            src: key.eth_src,
            dst: key.eth_dst,
            ethertype: key.eth_type,
        };
        let mut eth = EthernetFrame::new_unchecked(&mut buf[..]);
        eth_repr.emit(&mut eth);

        // L3
        let l4_len = if key.ip_proto == IPPROTO_TCP {
            tcp::HEADER_LEN
        } else {
            udp::HEADER_LEN
        } + self.payload_len;
        let ip_repr = Ipv4Repr {
            src: key.ip_src,
            dst: key.ip_dst,
            protocol: key.ip_proto,
            tos: key.ip_tos,
            ttl: key.ip_ttl,
            payload_len: l4_len,
        };
        let ip_start = ethernet::HEADER_LEN;
        let ip_end = ip_start + ipv4::HEADER_LEN + l4_len;
        let mut ip = Ipv4Packet::new_unchecked(&mut buf[ip_start..ip_end]);
        ip_repr.emit(&mut ip);

        // L4
        let l4_start = ip_start + ipv4::HEADER_LEN;
        if key.ip_proto == IPPROTO_TCP {
            let repr = TcpRepr {
                src_port: key.tp_src,
                dst_port: key.tp_dst,
                seq: 0,
                ack: 0,
                flags: self.tcp_flags,
                window: 65535,
                payload_len: self.payload_len,
            };
            let mut seg = TcpSegment::new_unchecked(&mut buf[l4_start..ip_end]);
            repr.emit(&mut seg, key.ip_src, key.ip_dst);
        } else {
            let repr = UdpRepr {
                src_port: key.tp_src,
                dst_port: key.tp_dst,
                payload_len: self.payload_len,
            };
            let mut dgram = UdpDatagram::new_unchecked(&mut buf[l4_start..ip_end]);
            repr.emit(&mut dgram, key.ip_src, key.ip_dst);
        }

        Ok(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract_flow_key;

    #[test]
    fn tcp_build_extract_round_trip() {
        let key =
            FlowKey::tcp([10, 1, 2, 3], [10, 4, 5, 6], 33000, 443).with(pi_core::Field::InPort, 5);
        let frame = PacketBuilder::new().payload_len(64).build(&key).unwrap();
        assert_eq!(extract_flow_key(&frame, 5).unwrap(), key);
    }

    #[test]
    fn udp_build_extract_round_trip() {
        let key = FlowKey::udp([192, 168, 1, 1], [8, 8, 4, 4], 5353, 53);
        let frame = PacketBuilder::new().payload_len(12).build(&key).unwrap();
        assert_eq!(extract_flow_key(&frame, 0).unwrap(), key);
    }

    #[test]
    fn pads_small_frames_to_minimum() {
        let key = FlowKey::udp([1, 1, 1, 1], [2, 2, 2, 2], 1, 2);
        let frame = PacketBuilder::new().build(&key).unwrap();
        assert_eq!(frame.len(), ETHERNET_MIN_FRAME_LEN);
        // Padding must not confuse extraction.
        let parsed = extract_flow_key(&frame, 0).unwrap();
        assert_eq!(parsed.tp_dst, 2);
    }

    #[test]
    fn no_padding_gives_exact_length() {
        let key = FlowKey::udp([1, 1, 1, 1], [2, 2, 2, 2], 1, 2);
        let frame = PacketBuilder::new().no_padding().build(&key).unwrap();
        assert_eq!(frame.len(), 14 + 20 + 8);
    }

    #[test]
    fn frame_len_prediction_matches() {
        let key = FlowKey::tcp([1, 1, 1, 1], [2, 2, 2, 2], 1, 2);
        let b = PacketBuilder::new().payload_len(1000);
        assert_eq!(b.frame_len(&key), 14 + 20 + 20 + 1000);
        let frame = b.build(&key).unwrap();
        assert_eq!(frame.len(), b.frame_len(&key));
    }

    #[test]
    fn rejects_non_ip_keys() {
        let mut key = FlowKey::tcp([1, 1, 1, 1], [2, 2, 2, 2], 1, 2);
        key.eth_type = 0x0806; // ARP
        assert!(PacketBuilder::new().build(&key).is_err());
        let mut key2 = FlowKey::tcp([1, 1, 1, 1], [2, 2, 2, 2], 1, 2);
        key2.ip_proto = 1; // ICMP
        assert!(PacketBuilder::new().build(&key2).is_err());
    }

    #[test]
    fn tcp_flags_propagate() {
        let key = FlowKey::tcp([1, 1, 1, 1], [2, 2, 2, 2], 1, 2);
        let frame = PacketBuilder::new()
            .tcp_flags(crate::tcp::flags::SYN)
            .build(&key)
            .unwrap();
        let seg = TcpSegment::new_checked(&frame[34..54]).unwrap();
        assert_eq!(seg.flags(), crate::tcp::flags::SYN);
    }
}
