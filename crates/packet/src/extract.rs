//! Flow-key extraction — the datapath's single-pass parser.
//!
//! This is the analogue of Open vSwitch's `flow_extract()`: given raw
//! frame bytes and the ingress port, produce the [`FlowKey`] every cache
//! level matches on. Parsing is strict about structure (truncation, bad
//! versions) but does **not** verify checksums — a real fast path doesn't
//! either; checksum verification belongs to the endpoints.

use pi_core::key::{ETHERTYPE_IPV4, IPPROTO_TCP, IPPROTO_UDP};
use pi_core::FlowKey;

use crate::ethernet::{self, EthernetFrame};
use crate::ipv4::Ipv4Packet;
use crate::tcp::TcpSegment;
use crate::udp::UdpDatagram;

/// Parses a frame into a [`FlowKey`].
///
/// Non-IPv4 frames and non-TCP/UDP protocols still produce a key (with
/// the transport fields zeroed) — a switch must classify *every* packet —
/// but structurally broken packets (truncated headers) are errors.
pub fn extract_flow_key(frame: &[u8], in_port: u32) -> pi_core::Result<FlowKey> {
    let eth = EthernetFrame::new_checked(frame)?;
    let mut key = FlowKey {
        in_port,
        eth_src: eth.src_addr(),
        eth_dst: eth.dst_addr(),
        eth_type: eth.ethertype(),
        ..Default::default()
    };

    if key.eth_type != ETHERTYPE_IPV4 {
        return Ok(key);
    }

    let ip = Ipv4Packet::new_checked(&frame[ethernet::HEADER_LEN..])?;
    key.ip_src = ip.src_addr();
    key.ip_dst = ip.dst_addr();
    key.ip_proto = ip.protocol();
    key.ip_tos = ip.tos();
    key.ip_ttl = ip.ttl();

    match key.ip_proto {
        IPPROTO_TCP => {
            let seg = TcpSegment::new_checked(ip.payload())?;
            key.tp_src = seg.src_port();
            key.tp_dst = seg.dst_port();
        }
        IPPROTO_UDP => {
            let dgram = UdpDatagram::new_checked(ip.payload())?;
            key.tp_src = dgram.src_port();
            key.tp_dst = dgram.dst_port();
        }
        _ => {}
    }

    Ok(key)
}

/// Convenience check used by tests and the simulator: whether a frame is
/// well-formed enough for the datapath to process at all.
pub fn is_extractable(frame: &[u8], in_port: u32) -> bool {
    extract_flow_key(frame, in_port).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PacketBuilder;

    #[test]
    fn non_ip_frame_yields_l2_only_key() {
        let mut frame = vec![0u8; 60];
        frame[12] = 0x08;
        frame[13] = 0x06; // ARP
        let key = extract_flow_key(&frame, 9).unwrap();
        assert_eq!(key.in_port, 9);
        assert_eq!(key.eth_type, 0x0806);
        assert_eq!(key.ip_src, 0);
        assert_eq!(key.tp_dst, 0);
    }

    #[test]
    fn icmp_yields_l3_key_without_ports() {
        let tcp_key = FlowKey::tcp([10, 0, 0, 1], [10, 0, 0, 2], 1, 2);
        let mut frame = PacketBuilder::new().build(&tcp_key).unwrap();
        frame[23] = 1; // protocol = ICMP (checksum now wrong; extractor ignores)
        let key = extract_flow_key(&frame, 0).unwrap();
        assert_eq!(key.ip_proto, 1);
        assert_eq!(key.tp_src, 0);
        assert_eq!(key.tp_dst, 0);
        assert_eq!(key.ip_src, 0x0a00_0001);
    }

    #[test]
    fn truncated_l4_is_error() {
        let tcp_key = FlowKey::tcp([10, 0, 0, 1], [10, 0, 0, 2], 1, 2);
        let frame = PacketBuilder::new().no_padding().build(&tcp_key).unwrap();
        // Cut into the TCP header — but keep ip total_len claiming more.
        assert!(extract_flow_key(&frame[..40], 0).is_err());
    }

    #[test]
    fn truncated_ethernet_is_error() {
        assert!(extract_flow_key(&[0u8; 13], 0).is_err());
        assert!(is_extractable(&[0u8; 14], 0));
        assert!(!is_extractable(&[0u8; 5], 0));
    }

    #[test]
    fn in_port_is_metadata_not_parsed() {
        let key = FlowKey::udp([1, 2, 3, 4], [5, 6, 7, 8], 100, 200);
        let frame = PacketBuilder::new().build(&key).unwrap();
        assert_eq!(extract_flow_key(&frame, 1).unwrap().in_port, 1);
        assert_eq!(extract_flow_key(&frame, 77).unwrap().in_port, 77);
    }
}
