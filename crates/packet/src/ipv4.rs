//! IPv4 packets.

use pi_core::CoreError;

use crate::checksum;

/// Byte offsets within the fixed IPv4 header.
mod field {
    use core::ops::Range;
    pub const VER_IHL: usize = 0;
    pub const TOS: usize = 1;
    pub const TOTAL_LEN: Range<usize> = 2..4;
    pub const IDENT: Range<usize> = 4..6;
    pub const FLAGS_FRAG: Range<usize> = 6..8;
    pub const TTL: usize = 8;
    pub const PROTOCOL: usize = 9;
    pub const CHECKSUM: Range<usize> = 10..12;
    pub const SRC: Range<usize> = 12..16;
    pub const DST: Range<usize> = 16..20;
}

/// Length of an IPv4 header without options.
pub const HEADER_LEN: usize = 20;

/// A typed view over a buffer containing an IPv4 packet.
#[derive(Debug, Clone)]
pub struct Ipv4Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Ipv4Packet<T> {
    /// Wraps a buffer without validation; accessors may panic on short
    /// buffers.
    pub const fn new_unchecked(buffer: T) -> Self {
        Ipv4Packet { buffer }
    }

    /// Wraps a buffer, validating length, version and header length.
    pub fn new_checked(buffer: T) -> pi_core::Result<Self> {
        let len = buffer.as_ref().len();
        if len < HEADER_LEN {
            return Err(CoreError::Truncated {
                what: "ipv4 header",
                needed: HEADER_LEN,
                got: len,
            });
        }
        let packet = Ipv4Packet { buffer };
        if packet.version() != 4 {
            return Err(CoreError::Malformed("ipv4 version"));
        }
        let header_len = packet.header_len() as usize;
        if header_len < HEADER_LEN || header_len > len {
            return Err(CoreError::Malformed("ipv4 header length"));
        }
        if (packet.total_len() as usize) < header_len {
            return Err(CoreError::Malformed("ipv4 total length"));
        }
        Ok(packet)
    }

    /// Consumes the view, returning the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// IP version (must be 4).
    pub fn version(&self) -> u8 {
        self.buffer.as_ref()[field::VER_IHL] >> 4
    }

    /// Header length in bytes (IHL × 4).
    pub fn header_len(&self) -> u8 {
        (self.buffer.as_ref()[field::VER_IHL] & 0x0f) * 4
    }

    /// TOS byte.
    pub fn tos(&self) -> u8 {
        self.buffer.as_ref()[field::TOS]
    }

    /// Total packet length (header + payload).
    pub fn total_len(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[field::TOTAL_LEN.start], b[field::TOTAL_LEN.start + 1]])
    }

    /// Identification field.
    pub fn ident(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[field::IDENT.start], b[field::IDENT.start + 1]])
    }

    /// TTL.
    pub fn ttl(&self) -> u8 {
        self.buffer.as_ref()[field::TTL]
    }

    /// IP protocol number.
    pub fn protocol(&self) -> u8 {
        self.buffer.as_ref()[field::PROTOCOL]
    }

    /// Header checksum field.
    pub fn header_checksum(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[field::CHECKSUM.start], b[field::CHECKSUM.start + 1]])
    }

    /// Source address, host byte order.
    pub fn src_addr(&self) -> u32 {
        let b = self.buffer.as_ref();
        u32::from_be_bytes([b[12], b[13], b[14], b[15]])
    }

    /// Destination address, host byte order.
    pub fn dst_addr(&self) -> u32 {
        let b = self.buffer.as_ref();
        u32::from_be_bytes([b[16], b[17], b[18], b[19]])
    }

    /// True if the header checksum is valid.
    pub fn verify_checksum(&self) -> bool {
        let hl = self.header_len() as usize;
        checksum::fold(checksum::sum(&self.buffer.as_ref()[..hl])) == 0xffff
    }

    /// The transport payload (respects `total_len`, tolerating trailing
    /// padding in the buffer, e.g. Ethernet minimum-frame padding).
    pub fn payload(&self) -> &[u8] {
        let hl = self.header_len() as usize;
        let total = (self.total_len() as usize).min(self.buffer.as_ref().len());
        &self.buffer.as_ref()[hl..total]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Ipv4Packet<T> {
    /// Sets version and header length (IHL in bytes).
    pub fn set_version_and_header_len(&mut self, header_len: u8) {
        debug_assert!(header_len.is_multiple_of(4) && header_len >= 20);
        self.buffer.as_mut()[field::VER_IHL] = 0x40 | (header_len / 4);
    }

    /// Sets the TOS byte.
    pub fn set_tos(&mut self, tos: u8) {
        self.buffer.as_mut()[field::TOS] = tos;
    }

    /// Sets the total length.
    pub fn set_total_len(&mut self, len: u16) {
        self.buffer.as_mut()[field::TOTAL_LEN].copy_from_slice(&len.to_be_bytes());
    }

    /// Sets the identification field.
    pub fn set_ident(&mut self, ident: u16) {
        self.buffer.as_mut()[field::IDENT].copy_from_slice(&ident.to_be_bytes());
    }

    /// Clears flags and fragment offset (no fragmentation modelled).
    pub fn set_no_fragment(&mut self) {
        // DF set, offset 0 — typical for the traffic this workspace models.
        self.buffer.as_mut()[field::FLAGS_FRAG].copy_from_slice(&0x4000u16.to_be_bytes());
    }

    /// Sets the TTL.
    pub fn set_ttl(&mut self, ttl: u8) {
        self.buffer.as_mut()[field::TTL] = ttl;
    }

    /// Sets the protocol number.
    pub fn set_protocol(&mut self, proto: u8) {
        self.buffer.as_mut()[field::PROTOCOL] = proto;
    }

    /// Sets the source address (host byte order).
    pub fn set_src_addr(&mut self, addr: u32) {
        self.buffer.as_mut()[field::SRC].copy_from_slice(&addr.to_be_bytes());
    }

    /// Sets the destination address (host byte order).
    pub fn set_dst_addr(&mut self, addr: u32) {
        self.buffer.as_mut()[field::DST].copy_from_slice(&addr.to_be_bytes());
    }

    /// Computes and stores the header checksum.
    pub fn fill_checksum(&mut self) {
        self.buffer.as_mut()[field::CHECKSUM].copy_from_slice(&[0, 0]);
        let hl = self.header_len() as usize;
        let c = checksum::checksum(&self.buffer.as_ref()[..hl]);
        self.buffer.as_mut()[field::CHECKSUM].copy_from_slice(&c.to_be_bytes());
    }

    /// Mutable transport payload.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let hl = self.header_len() as usize;
        let total = (self.total_len() as usize).min(self.buffer.as_ref().len());
        &mut self.buffer.as_mut()[hl..total]
    }
}

/// A parsed, plain-old-data representation of an IPv4 header
/// (options are not modelled; packets with options parse but reprs
/// re-emit a 20-byte header).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4Repr {
    /// Source address, host order.
    pub src: u32,
    /// Destination address, host order.
    pub dst: u32,
    /// Protocol number.
    pub protocol: u8,
    /// TOS byte.
    pub tos: u8,
    /// TTL.
    pub ttl: u8,
    /// Transport payload length in bytes.
    pub payload_len: usize,
}

impl Ipv4Repr {
    /// Parses and validates a packet view (checksum included).
    pub fn parse<T: AsRef<[u8]>>(packet: &Ipv4Packet<T>) -> pi_core::Result<Self> {
        if !packet.verify_checksum() {
            return Err(CoreError::Malformed("ipv4 checksum"));
        }
        Ok(Ipv4Repr {
            src: packet.src_addr(),
            dst: packet.dst_addr(),
            protocol: packet.protocol(),
            tos: packet.tos(),
            ttl: packet.ttl(),
            payload_len: packet.total_len() as usize - packet.header_len() as usize,
        })
    }

    /// The header length this repr emits (no options).
    pub const fn header_len(&self) -> usize {
        HEADER_LEN
    }

    /// Total length (header + payload) this repr describes.
    pub fn total_len(&self) -> usize {
        self.header_len() + self.payload_len
    }

    /// Writes this header into a packet view and fills the checksum.
    pub fn emit<T: AsRef<[u8]> + AsMut<[u8]>>(&self, packet: &mut Ipv4Packet<T>) {
        packet.set_version_and_header_len(HEADER_LEN as u8);
        packet.set_tos(self.tos);
        packet.set_total_len(self.total_len() as u16);
        packet.set_ident(0);
        packet.set_no_fragment();
        packet.set_ttl(self.ttl);
        packet.set_protocol(self.protocol);
        packet.set_src_addr(self.src);
        packet.set_dst_addr(self.dst);
        packet.fill_checksum();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let repr = Ipv4Repr {
            src: 0x0a00_0001,
            dst: 0x0a00_0002,
            protocol: 17,
            tos: 0,
            ttl: 64,
            payload_len: 8,
        };
        let mut buf = vec![0u8; repr.total_len()];
        let mut packet = Ipv4Packet::new_unchecked(&mut buf[..]);
        repr.emit(&mut packet);
        buf
    }

    #[test]
    fn emit_then_parse_round_trips() {
        let buf = sample();
        let packet = Ipv4Packet::new_checked(&buf[..]).unwrap();
        assert!(packet.verify_checksum());
        let repr = Ipv4Repr::parse(&packet).unwrap();
        assert_eq!(repr.src, 0x0a00_0001);
        assert_eq!(repr.dst, 0x0a00_0002);
        assert_eq!(repr.protocol, 17);
        assert_eq!(repr.ttl, 64);
        assert_eq!(repr.payload_len, 8);
    }

    #[test]
    fn checked_rejects_bad_version() {
        let mut buf = sample();
        buf[0] = 0x65; // version 6
        assert!(matches!(
            Ipv4Packet::new_checked(&buf[..]).unwrap_err(),
            CoreError::Malformed("ipv4 version")
        ));
    }

    #[test]
    fn checked_rejects_short_buffer() {
        let buf = sample();
        assert!(Ipv4Packet::new_checked(&buf[..10]).is_err());
    }

    #[test]
    fn checked_rejects_bad_ihl() {
        let mut buf = sample();
        buf[0] = 0x44; // IHL = 16 bytes < 20
        assert!(Ipv4Packet::new_checked(&buf[..]).is_err());
        let mut buf2 = sample();
        buf2[0] = 0x4f; // IHL = 60 > buffer
        assert!(Ipv4Packet::new_checked(&buf2[..]).is_err());
    }

    #[test]
    fn parse_rejects_corrupt_checksum() {
        let mut buf = sample();
        buf[15] ^= 1; // flip a bit of src addr without re-checksumming
        let packet = Ipv4Packet::new_checked(&buf[..]).unwrap();
        assert!(!packet.verify_checksum());
        assert!(Ipv4Repr::parse(&packet).is_err());
    }

    #[test]
    fn payload_respects_total_len_with_padding() {
        let mut buf = sample();
        buf.extend_from_slice(&[0xaa; 22]); // Ethernet-style padding
        let packet = Ipv4Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(packet.payload().len(), 8);
    }

    #[test]
    fn mutators_round_trip() {
        let mut buf = [0u8; 28];
        let mut p = Ipv4Packet::new_unchecked(&mut buf[..]);
        p.set_version_and_header_len(20);
        p.set_tos(0x10);
        p.set_total_len(28);
        p.set_ttl(3);
        p.set_protocol(6);
        p.set_src_addr(0xc0a80001);
        p.set_dst_addr(0x08080808);
        p.fill_checksum();
        assert_eq!(p.version(), 4);
        assert_eq!(p.header_len(), 20);
        assert_eq!(p.tos(), 0x10);
        assert_eq!(p.ttl(), 3);
        assert_eq!(p.protocol(), 6);
        assert_eq!(p.src_addr(), 0xc0a80001);
        assert_eq!(p.dst_addr(), 0x08080808);
        assert!(p.verify_checksum());
    }
}
