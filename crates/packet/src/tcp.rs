//! TCP segments (the subset the dataplane cares about: ports, flags,
//! sequence numbers; options are accepted but not interpreted).

use pi_core::CoreError;

use crate::checksum;

mod field {
    use core::ops::Range;
    pub const SRC_PORT: Range<usize> = 0..2;
    pub const DST_PORT: Range<usize> = 2..4;
    pub const SEQ: Range<usize> = 4..8;
    pub const ACK: Range<usize> = 8..12;
    pub const DATA_OFF: usize = 12;
    pub const FLAGS: usize = 13;
    pub const WINDOW: Range<usize> = 14..16;
    pub const CHECKSUM: Range<usize> = 16..18;
    pub const URGENT: Range<usize> = 18..20;
}

/// Length of a TCP header without options.
pub const HEADER_LEN: usize = 20;

/// TCP flag bits (low byte of the flags field).
pub mod flags {
    /// FIN: sender is done.
    pub const FIN: u8 = 0x01;
    /// SYN: connection setup.
    pub const SYN: u8 = 0x02;
    /// RST: reset.
    pub const RST: u8 = 0x04;
    /// PSH: push.
    pub const PSH: u8 = 0x08;
    /// ACK: acknowledgement valid.
    pub const ACK: u8 = 0x10;
}

/// A typed view over a buffer containing a TCP segment.
#[derive(Debug, Clone)]
pub struct TcpSegment<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> TcpSegment<T> {
    /// Wraps a buffer without validation.
    pub const fn new_unchecked(buffer: T) -> Self {
        TcpSegment { buffer }
    }

    /// Wraps a buffer, validating lengths.
    pub fn new_checked(buffer: T) -> pi_core::Result<Self> {
        let got = buffer.as_ref().len();
        if got < HEADER_LEN {
            return Err(CoreError::Truncated {
                what: "tcp header",
                needed: HEADER_LEN,
                got,
            });
        }
        let seg = TcpSegment { buffer };
        let hl = seg.header_len() as usize;
        if hl < HEADER_LEN || hl > seg.buffer.as_ref().len() {
            return Err(CoreError::Malformed("tcp data offset"));
        }
        Ok(seg)
    }

    /// Consumes the view, returning the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[0], b[1]])
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[2], b[3]])
    }

    /// Sequence number.
    pub fn seq(&self) -> u32 {
        let b = self.buffer.as_ref();
        u32::from_be_bytes([b[4], b[5], b[6], b[7]])
    }

    /// Acknowledgement number.
    pub fn ack(&self) -> u32 {
        let b = self.buffer.as_ref();
        u32::from_be_bytes([b[8], b[9], b[10], b[11]])
    }

    /// Header length in bytes (data offset × 4).
    pub fn header_len(&self) -> u8 {
        (self.buffer.as_ref()[field::DATA_OFF] >> 4) * 4
    }

    /// Flag bits.
    pub fn flags(&self) -> u8 {
        self.buffer.as_ref()[field::FLAGS]
    }

    /// Receive window.
    pub fn window(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[14], b[15]])
    }

    /// Checksum field.
    pub fn checksum_field(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[16], b[17]])
    }

    /// Payload after the (possibly option-bearing) header.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[self.header_len() as usize..]
    }

    /// Verifies the checksum against an IPv4 pseudo-header.
    pub fn verify_checksum(&self, src: u32, dst: u32) -> bool {
        let data = self.buffer.as_ref();
        let pseudo = checksum::pseudo_header_sum(src, dst, 6, data.len() as u16);
        checksum::verify(data, pseudo)
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> TcpSegment<T> {
    /// Sets the source port.
    pub fn set_src_port(&mut self, port: u16) {
        self.buffer.as_mut()[field::SRC_PORT].copy_from_slice(&port.to_be_bytes());
    }

    /// Sets the destination port.
    pub fn set_dst_port(&mut self, port: u16) {
        self.buffer.as_mut()[field::DST_PORT].copy_from_slice(&port.to_be_bytes());
    }

    /// Sets the sequence number.
    pub fn set_seq(&mut self, seq: u32) {
        self.buffer.as_mut()[field::SEQ].copy_from_slice(&seq.to_be_bytes());
    }

    /// Sets the acknowledgement number.
    pub fn set_ack(&mut self, ack: u32) {
        self.buffer.as_mut()[field::ACK].copy_from_slice(&ack.to_be_bytes());
    }

    /// Sets the header length in bytes (must be a multiple of 4 ≥ 20).
    pub fn set_header_len(&mut self, len: u8) {
        debug_assert!(len.is_multiple_of(4) && len >= 20);
        self.buffer.as_mut()[field::DATA_OFF] = (len / 4) << 4;
    }

    /// Sets the flag bits.
    pub fn set_flags(&mut self, flags: u8) {
        self.buffer.as_mut()[field::FLAGS] = flags;
    }

    /// Sets the receive window.
    pub fn set_window(&mut self, win: u16) {
        self.buffer.as_mut()[field::WINDOW].copy_from_slice(&win.to_be_bytes());
    }

    /// Zeroes the urgent pointer.
    pub fn clear_urgent(&mut self) {
        self.buffer.as_mut()[field::URGENT].copy_from_slice(&[0, 0]);
    }

    /// Computes and stores the checksum over the given pseudo-header.
    pub fn fill_checksum(&mut self, src: u32, dst: u32) {
        self.buffer.as_mut()[field::CHECKSUM].copy_from_slice(&[0, 0]);
        let data = self.buffer.as_ref();
        let pseudo = checksum::pseudo_header_sum(src, dst, 6, data.len() as u16);
        let c = !checksum::fold(checksum::sum(data) + pseudo);
        self.buffer.as_mut()[field::CHECKSUM].copy_from_slice(&c.to_be_bytes());
    }

    /// Mutable payload.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let hl = self.header_len() as usize;
        &mut self.buffer.as_mut()[hl..]
    }
}

/// A parsed, plain-old-data representation of a TCP header (no options).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpRepr {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgement number.
    pub ack: u32,
    /// Flag bits.
    pub flags: u8,
    /// Receive window.
    pub window: u16,
    /// Payload length in bytes.
    pub payload_len: usize,
}

impl TcpRepr {
    /// Parses a segment view, verifying its checksum.
    pub fn parse<T: AsRef<[u8]>>(seg: &TcpSegment<T>, src: u32, dst: u32) -> pi_core::Result<Self> {
        if !seg.verify_checksum(src, dst) {
            return Err(CoreError::Malformed("tcp checksum"));
        }
        Ok(TcpRepr {
            src_port: seg.src_port(),
            dst_port: seg.dst_port(),
            seq: seg.seq(),
            ack: seg.ack(),
            flags: seg.flags(),
            window: seg.window(),
            payload_len: seg.payload().len(),
        })
    }

    /// Header length emitted by this repr (no options).
    pub const fn header_len(&self) -> usize {
        HEADER_LEN
    }

    /// Writes the header and checksum into a segment view.
    pub fn emit<T: AsRef<[u8]> + AsMut<[u8]>>(&self, seg: &mut TcpSegment<T>, src: u32, dst: u32) {
        seg.set_src_port(self.src_port);
        seg.set_dst_port(self.dst_port);
        seg.set_seq(self.seq);
        seg.set_ack(self.ack);
        seg.set_header_len(HEADER_LEN as u8);
        seg.set_flags(self.flags);
        seg.set_window(self.window);
        seg.clear_urgent();
        seg.fill_checksum(src, dst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: u32 = 0xc0a8_0001;
    const DST: u32 = 0xc0a8_0002;

    fn sample(payload: &[u8]) -> Vec<u8> {
        let repr = TcpRepr {
            src_port: 45000,
            dst_port: 5201, // iperf
            seq: 0x1000_0000,
            ack: 0x2000_0000,
            flags: flags::ACK | flags::PSH,
            window: 65535,
            payload_len: payload.len(),
        };
        let mut buf = vec![0u8; HEADER_LEN + payload.len()];
        buf[HEADER_LEN..].copy_from_slice(payload);
        let mut seg = TcpSegment::new_unchecked(&mut buf[..]);
        repr.emit(&mut seg, SRC, DST);
        buf
    }

    #[test]
    fn emit_parse_round_trip() {
        let buf = sample(b"bulk data");
        let seg = TcpSegment::new_checked(&buf[..]).unwrap();
        let repr = TcpRepr::parse(&seg, SRC, DST).unwrap();
        assert_eq!(repr.src_port, 45000);
        assert_eq!(repr.dst_port, 5201);
        assert_eq!(repr.seq, 0x1000_0000);
        assert_eq!(repr.flags, flags::ACK | flags::PSH);
        assert_eq!(repr.payload_len, 9);
        assert_eq!(seg.payload(), b"bulk data");
    }

    #[test]
    fn checksum_binds_payload_and_addresses() {
        let mut buf = sample(b"abcd");
        {
            let seg = TcpSegment::new_checked(&buf[..]).unwrap();
            assert!(seg.verify_checksum(SRC, DST));
            assert!(!seg.verify_checksum(SRC ^ 1, DST));
        }
        buf[HEADER_LEN] ^= 0xff; // corrupt payload
        let seg = TcpSegment::new_checked(&buf[..]).unwrap();
        assert!(!seg.verify_checksum(SRC, DST));
        assert!(TcpRepr::parse(&seg, SRC, DST).is_err());
    }

    #[test]
    fn checked_rejects_bad_data_offset() {
        let mut buf = sample(b"");
        buf[12] = 0x20; // data offset 8 bytes < 20
        assert!(TcpSegment::new_checked(&buf[..]).is_err());
        let mut buf2 = sample(b"");
        buf2[12] = 0xf0; // 60 bytes > buffer
        assert!(TcpSegment::new_checked(&buf2[..]).is_err());
    }

    #[test]
    fn checked_rejects_truncated() {
        assert!(TcpSegment::new_checked(&[0u8; 19][..]).is_err());
    }

    #[test]
    fn options_skipped_in_payload() {
        // Hand-build a segment with a 24-byte header (one 4-byte option).
        let mut buf = [0u8; 24 + 3];
        {
            let mut seg = TcpSegment::new_unchecked(&mut buf[..]);
            seg.set_src_port(1);
            seg.set_dst_port(2);
            seg.set_header_len(24);
        }
        buf[24..].copy_from_slice(b"xyz");
        let mut seg = TcpSegment::new_unchecked(&mut buf[..]);
        seg.fill_checksum(SRC, DST);
        let seg = TcpSegment::new_checked(&buf[..]).unwrap();
        assert_eq!(seg.header_len(), 24);
        assert_eq!(seg.payload(), b"xyz");
        assert!(seg.verify_checksum(SRC, DST));
    }

    #[test]
    fn flag_helpers() {
        let buf = sample(b"");
        let seg = TcpSegment::new_checked(&buf[..]).unwrap();
        assert_ne!(seg.flags() & flags::ACK, 0);
        assert_eq!(seg.flags() & flags::SYN, 0);
    }
}
