//! UDP datagrams.

use pi_core::CoreError;

use crate::checksum;

mod field {
    use core::ops::Range;
    pub const SRC_PORT: Range<usize> = 0..2;
    pub const DST_PORT: Range<usize> = 2..4;
    pub const LENGTH: Range<usize> = 4..6;
    pub const CHECKSUM: Range<usize> = 6..8;
    pub const PAYLOAD: usize = 8;
}

/// Length of a UDP header.
pub const HEADER_LEN: usize = field::PAYLOAD;

/// A typed view over a buffer containing a UDP datagram.
#[derive(Debug, Clone)]
pub struct UdpDatagram<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> UdpDatagram<T> {
    /// Wraps a buffer without validation.
    pub const fn new_unchecked(buffer: T) -> Self {
        UdpDatagram { buffer }
    }

    /// Wraps a buffer, validating the header and length field.
    pub fn new_checked(buffer: T) -> pi_core::Result<Self> {
        let got = buffer.as_ref().len();
        if got < HEADER_LEN {
            return Err(CoreError::Truncated {
                what: "udp header",
                needed: HEADER_LEN,
                got,
            });
        }
        let dgram = UdpDatagram { buffer };
        let len = dgram.length() as usize;
        if len < HEADER_LEN || len > dgram.buffer.as_ref().len() {
            return Err(CoreError::Malformed("udp length"));
        }
        Ok(dgram)
    }

    /// Consumes the view, returning the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[0], b[1]])
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[2], b[3]])
    }

    /// Datagram length (header + payload).
    pub fn length(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[4], b[5]])
    }

    /// Checksum field.
    pub fn checksum_field(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[6], b[7]])
    }

    /// Payload (respects the length field).
    pub fn payload(&self) -> &[u8] {
        let len = (self.length() as usize).min(self.buffer.as_ref().len());
        &self.buffer.as_ref()[HEADER_LEN..len]
    }

    /// Verifies the checksum against an IPv4 pseudo-header (src/dst in
    /// host order). A zero checksum means "not computed" and passes, per
    /// RFC 768.
    pub fn verify_checksum(&self, src: u32, dst: u32) -> bool {
        if self.checksum_field() == 0 {
            return true;
        }
        let len = self.length();
        let data = &self.buffer.as_ref()[..len as usize];
        checksum::verify(data, checksum::pseudo_header_sum(src, dst, 17, len))
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> UdpDatagram<T> {
    /// Sets the source port.
    pub fn set_src_port(&mut self, port: u16) {
        self.buffer.as_mut()[field::SRC_PORT].copy_from_slice(&port.to_be_bytes());
    }

    /// Sets the destination port.
    pub fn set_dst_port(&mut self, port: u16) {
        self.buffer.as_mut()[field::DST_PORT].copy_from_slice(&port.to_be_bytes());
    }

    /// Sets the length field.
    pub fn set_length(&mut self, len: u16) {
        self.buffer.as_mut()[field::LENGTH].copy_from_slice(&len.to_be_bytes());
    }

    /// Computes and stores the checksum over the given pseudo-header.
    pub fn fill_checksum(&mut self, src: u32, dst: u32) {
        self.buffer.as_mut()[field::CHECKSUM].copy_from_slice(&[0, 0]);
        let len = self.length();
        let pseudo = checksum::pseudo_header_sum(src, dst, 17, len);
        let data = &self.buffer.as_ref()[..len as usize];
        let mut c = !checksum::fold(checksum::sum(data) + pseudo);
        if c == 0 {
            c = 0xffff; // RFC 768: transmitted zero means "no checksum"
        }
        self.buffer.as_mut()[field::CHECKSUM].copy_from_slice(&c.to_be_bytes());
    }

    /// Mutable payload.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let len = (self.length() as usize).min(self.buffer.as_ref().len());
        &mut self.buffer.as_mut()[HEADER_LEN..len]
    }
}

/// A parsed, plain-old-data representation of a UDP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpRepr {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Payload length in bytes.
    pub payload_len: usize,
}

impl UdpRepr {
    /// Parses a datagram view, verifying its checksum against the
    /// pseudo-header.
    pub fn parse<T: AsRef<[u8]>>(
        dgram: &UdpDatagram<T>,
        src: u32,
        dst: u32,
    ) -> pi_core::Result<Self> {
        if !dgram.verify_checksum(src, dst) {
            return Err(CoreError::Malformed("udp checksum"));
        }
        Ok(UdpRepr {
            src_port: dgram.src_port(),
            dst_port: dgram.dst_port(),
            payload_len: dgram.length() as usize - HEADER_LEN,
        })
    }

    /// Header length emitted by this repr.
    pub const fn header_len(&self) -> usize {
        HEADER_LEN
    }

    /// Writes the header and checksum into a datagram view.
    pub fn emit<T: AsRef<[u8]> + AsMut<[u8]>>(
        &self,
        dgram: &mut UdpDatagram<T>,
        src: u32,
        dst: u32,
    ) {
        dgram.set_src_port(self.src_port);
        dgram.set_dst_port(self.dst_port);
        dgram.set_length((HEADER_LEN + self.payload_len) as u16);
        dgram.fill_checksum(src, dst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: u32 = 0x0a00_0001;
    const DST: u32 = 0x0a00_0002;

    fn sample(payload: &[u8]) -> Vec<u8> {
        let repr = UdpRepr {
            src_port: 4242,
            dst_port: 53,
            payload_len: payload.len(),
        };
        let mut buf = vec![0u8; HEADER_LEN + payload.len()];
        buf[HEADER_LEN..].copy_from_slice(payload);
        let mut dgram = UdpDatagram::new_unchecked(&mut buf[..]);
        repr.emit(&mut dgram, SRC, DST);
        buf
    }

    #[test]
    fn emit_parse_round_trip() {
        let buf = sample(b"query");
        let dgram = UdpDatagram::new_checked(&buf[..]).unwrap();
        let repr = UdpRepr::parse(&dgram, SRC, DST).unwrap();
        assert_eq!(repr.src_port, 4242);
        assert_eq!(repr.dst_port, 53);
        assert_eq!(repr.payload_len, 5);
        assert_eq!(dgram.payload(), b"query");
    }

    #[test]
    fn checksum_binds_addresses() {
        let buf = sample(b"data");
        let dgram = UdpDatagram::new_checked(&buf[..]).unwrap();
        assert!(dgram.verify_checksum(SRC, DST));
        assert!(!dgram.verify_checksum(SRC, DST + 1));
        assert!(UdpRepr::parse(&dgram, SRC + 5, DST).is_err());
    }

    #[test]
    fn zero_checksum_accepted() {
        let mut buf = sample(b"x");
        buf[6] = 0;
        buf[7] = 0;
        let dgram = UdpDatagram::new_checked(&buf[..]).unwrap();
        assert!(dgram.verify_checksum(SRC, DST));
    }

    #[test]
    fn checked_rejects_bad_length_field() {
        let mut buf = sample(b"abc");
        buf[4] = 0xff;
        buf[5] = 0xff; // length 65535 > buffer
        assert!(UdpDatagram::new_checked(&buf[..]).is_err());
        let mut buf2 = sample(b"abc");
        buf2[4] = 0;
        buf2[5] = 4; // length 4 < header
        assert!(UdpDatagram::new_checked(&buf2[..]).is_err());
    }

    #[test]
    fn checked_rejects_truncated() {
        assert!(UdpDatagram::new_checked(&[0u8; 7][..]).is_err());
    }

    #[test]
    fn empty_payload_is_valid() {
        let buf = sample(b"");
        let dgram = UdpDatagram::new_checked(&buf[..]).unwrap();
        assert_eq!(dgram.payload(), b"");
        assert_eq!(UdpRepr::parse(&dgram, SRC, DST).unwrap().payload_len, 0);
    }
}
