//! # pi-bench — experiment harness
//!
//! One binary per paper artefact (see DESIGN.md §4 and EXPERIMENTS.md):
//!
//! | binary | artefact |
//! |---|---|
//! | `fig2_decomposition` | Fig. 2a/2b — the ACL and its megaflow table |
//! | `mask_sweep` | §2 claims E3/E4 — capacity vs mask count, 512/8192 rows |
//! | `fig3_timeseries` | Fig. 3 — victim throughput + masks over 150 s |
//! | `covert_bandwidth` | E6 — how little bandwidth sustains the attack |
//! | `mitigation_ablation` | E7 — the demo-discussion defenses, quantified |
//! | `field_scaling` | E8 — the ∏ field-width mask law |
//! | `upcall_saturation` | the bounded slow path under a paced flood (BENCH_upcall.json) |
//!
//! Run with `--release`; each prints an aligned table / ASCII figure and
//! writes a CSV under `results/`.
//!
//! `cargo bench -p pi-bench` runs the criterion microbenchmarks of the
//! underlying mechanisms (TSS walk, EMC, tries, slow path, compiled
//! ACLs).

use std::path::PathBuf;

pub mod report;
pub mod rows;
pub mod stopwatch;

/// Resolves the shared results directory (`<workspace>/results`),
/// creating it if needed. The error carries the offending path so the
/// bench binaries' `.expect` calls stay informative.
pub fn results_dir() -> std::io::Result<PathBuf> {
    let dir = std::env::var("PI_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| {
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join("results")
        });
    std::fs::create_dir_all(&dir)
        .map_err(|e| std::io::Error::new(e.kind(), format!("create {}: {e}", dir.display())))?;
    Ok(dir)
}

/// Compiles an [`pi_attack::AttackSpec`] through the CMS compiler —
/// shared by the experiment binaries.
pub fn compile_spec(spec: &pi_attack::AttackSpec) -> pi_classifier::FlowTable {
    use pi_cms::PolicyCompiler;
    match spec.build_policy() {
        pi_attack::MaliciousAcl::K8s(p) => PolicyCompiler.compile_k8s(&p),
        pi_attack::MaliciousAcl::OpenStack(p) => PolicyCompiler.compile_security_group(&p),
        pi_attack::MaliciousAcl::Calico(p) => PolicyCompiler.compile_calico(&p),
    }
}

/// The canonical `fleet_colocation` macro-bench cell shared by the
/// `fleet_scaling` and `hotpath` binaries: every host under active
/// 512-mask policy injection starting at t = 1 s. One definition so the
/// two benches' `switch_packets` stay comparable cell-for-cell.
pub fn colocation_cell(
    hosts: usize,
    workers: usize,
    duration_secs: u64,
) -> pi_fleet::ColocationParams {
    pi_fleet::ColocationParams {
        hosts,
        victims: hosts,
        attackers: hosts / 2,
        spec: pi_attack::AttackSpec::masks_512(pi_cms::PolicyDialect::Kubernetes),
        attack_start: pi_core::SimTime::from_secs(1),
        stagger: pi_core::SimTime::ZERO,
        duration: pi_core::SimTime::from_secs(duration_secs),
        workers,
        ..Default::default()
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn results_dir_is_creatable() {
        let d = super::results_dir().expect("results dir");
        assert!(d.exists());
    }

    #[test]
    fn compile_spec_produces_whitelist_plus_deny() {
        let spec = pi_attack::AttackSpec::masks_8192();
        assert_eq!(super::compile_spec(&spec).len(), 2);
    }
}
