//! `bench_check` — regression gate over the `BENCH_*.json` artefacts.
//!
//! Two modes:
//!
//! * **Static** (no arguments): re-validates the **headline cells** of
//!   the checked-in artefacts. Re-running every bench on every commit
//!   is too slow for CI, but the artefacts are checked in — so their
//!   headline claims can be re-checked for free. Fails when a claim no
//!   longer holds — e.g. someone regenerated `BENCH_fault.json` from a
//!   tree where reconciliation stopped closing the verdict hole, and
//!   committed it without reading the numbers. This mode also carries
//!   the **trace-overhead gate**: the `trace_off` hot-path variant
//!   (tracing compiled in, disabled at runtime) must stay within 1% of
//!   `flat_onepass` (measured before the tracing layer existed).
//!
//! * **Comparator** (`--against <dir>`): diffs freshly generated
//!   artefacts in `<dir>` against the committed ones in the working
//!   directory, cell by cell, with per-cell tolerances — wall-clock
//!   cells are skipped, throughput gets a loose lower bound, ratios a
//!   small absolute window, and everything else a 10% relative band.
//!   Rows are matched on per-bench identity keys plus `sim_secs`, so a
//!   `--smoke` row (shorter run) never gets compared against a full
//!   one — it is skipped with a note. Exit 1 on any regression.
//!
//! Exit code: 0 when every check passes, 1 otherwise.

use pi_bench::rows::{field, find_row, find_where, keys, num};

use pi_bench::report::extract_rows;

struct Gate {
    failures: Vec<String>,
    checked: usize,
}

impl Gate {
    fn new() -> Self {
        Gate {
            failures: Vec::new(),
            checked: 0,
        }
    }

    fn check(&mut self, what: &str, ok: bool) {
        self.checked += 1;
        if ok {
            println!("  ok   {what}");
        } else {
            println!("  FAIL {what}");
            self.failures.push(what.to_string());
        }
    }

    /// Loads an artefact's rows, or records a failure.
    fn load(&mut self, path: &str) -> Option<Vec<String>> {
        match std::fs::read_to_string(path) {
            Ok(json) => {
                // A needle no rendered row can contain: keep every row.
                let rows = extract_rows(&json, "\u{7f}");
                if rows.is_empty() {
                    self.check(&format!("{path}: has rows"), false);
                    None
                } else {
                    println!("{path}: {} rows", rows.len());
                    Some(rows)
                }
            }
            Err(e) => {
                self.check(&format!("{path}: readable ({e})"), false);
                None
            }
        }
    }

    fn finish(self, label: &str) -> ! {
        println!(
            "\n{label}: {}/{} checks passed",
            self.checked - self.failures.len(),
            self.checked
        );
        if self.failures.is_empty() {
            std::process::exit(0);
        }
        for f in &self.failures {
            eprintln!("{label} FAILED: {f}");
        }
        std::process::exit(1);
    }
}

fn check_fault(gate: &mut Gate) {
    let Some(rows) = gate.load("BENCH_fault.json") else {
        return;
    };
    let cell = |v| find_row(&rows, "cell", v);
    let (Some(baseline), Some(off), Some(on)) = (
        cell("baseline"),
        cell("policy_flap_fire_forget"),
        cell("policy_flap_reliable"),
    ) else {
        gate.check("fault: headline cells present", false);
        return;
    };
    gate.check(
        "fault: baseline denies the prober (wrong_verdicts == 0)",
        num(baseline, "wrong_verdicts") == Some(0.0),
    );
    let wrong_off = num(off, "wrong_verdicts").unwrap_or(-1.0);
    let wrong_on = num(on, "wrong_verdicts").unwrap_or(f64::MAX);
    gate.check(
        "fault: fire-and-forget crash leaves a standing verdict hole",
        wrong_off > 0.0,
    );
    gate.check(
        "fault: reconciliation closes most of the hole (5x)",
        wrong_on * 5.0 < wrong_off,
    );
    let recovery = num(on, "recovery_ticks").unwrap_or(0.0);
    gate.check(
        "fault: reliable convergence is bounded (0 < recovery_ticks <= 2000)",
        recovery > 0.0 && recovery <= 2_000.0,
    );
    gate.check(
        "fault: capacity holds through flap-during-recovery (>= 0.9)",
        num(on, "retained_vs_baseline").unwrap_or(0.0) >= 0.9,
    );
}

fn check_policy(gate: &mut Gate) {
    let Some(rows) = gate.load("BENCH_policy.json") else {
        return;
    };
    let mode = |v| find_row(&rows, "mode", v);
    let (Some(flap), Some(scoped)) = (mode("policy_flap"), mode("policy_flap_scoped")) else {
        gate.check("policy: headline cells present", false);
        return;
    };
    gate.check(
        "policy: the flap collapses the victim (< 0.75)",
        num(flap, "retained_vs_benign").unwrap_or(1.0) < 0.75,
    );
    gate.check(
        "policy: scoped invalidation restores the victim (> 0.9)",
        num(scoped, "retained_vs_benign").unwrap_or(0.0) > 0.9,
    );
}

fn check_backends(gate: &mut Gate) {
    let Some(rows) = gate.load("BENCH_backends.json") else {
        return;
    };
    let cell = |backend: &str, attack: &str, defended: &str| {
        find_where(
            &rows,
            &[
                ("backend", &format!("\"{backend}\"")),
                ("attack", &format!("\"{attack}\"")),
                ("defended", defended),
            ],
        )
    };
    let (Some(churn_open), Some(flood_def), Some(exact_churn)) = (
        cell("ovs_cache", "tuple_space_churn", "false"),
        cell("ovs_cache", "upcall_flood", "true"),
        cell("exact_hash", "tuple_space_churn", "false"),
    ) else {
        gate.check("backends: headline cells present", false);
        return;
    };
    gate.check(
        "backends: churn collapses the undefended tuple-space cache (< 0.01)",
        num(churn_open, "retained").unwrap_or(1.0) < 0.01,
    );
    gate.check(
        "backends: fair-share quota defeats the upcall flood (>= 0.99)",
        num(flood_def, "retained").unwrap_or(0.0) >= 0.99,
    );
    gate.check(
        "backends: exact-hash is immune to churn by construction (>= 0.99)",
        num(exact_churn, "retained").unwrap_or(0.0) >= 0.99,
    );
}

fn check_detect(gate: &mut Gate) {
    let Some(rows) = gate.load("BENCH_detect.json") else {
        return;
    };
    let mode = |v| find_row(&rows, "mode", v);
    let (Some(none), Some(stat), Some(adaptive)) =
        (mode("none"), mode("static_fair_share"), mode("adaptive"))
    else {
        gate.check("detect: headline cells present", false);
        return;
    };
    gate.check(
        "detect: undefended victim never recovers (ratio == 0)",
        num(none, "recovery_ratio") == Some(0.0),
    );
    gate.check(
        "detect: static fair share recovers fully (ratio >= 1)",
        num(stat, "recovery_ratio").unwrap_or(0.0) >= 1.0,
    );
    gate.check(
        "detect: adaptive detects within one control interval (100 ms)",
        num(adaptive, "time_to_detect_ms") == Some(100.0),
    );
    gate.check(
        "detect: adaptive recovers fully with no benign activations",
        num(adaptive, "recovery_ratio").unwrap_or(0.0) >= 1.0
            && num(adaptive, "benign_activations") == Some(0.0),
    );
}

fn check_hotpath(gate: &mut Gate) {
    let Some(rows) = gate.load("BENCH_hotpath.json") else {
        return;
    };
    let variant = |v: &str| find_where(&rows, &[("variant", &format!("\"{v}\"")), ("hosts", "8")]);
    let (Some(base), Some(flat)) = (variant("baseline_hashmap"), variant("flat_onepass")) else {
        gate.check("hotpath: headline cells present", false);
        return;
    };
    let base_pps = num(base, "pps").unwrap_or(f64::MAX);
    let flat_pps = num(flat, "pps").unwrap_or(0.0);
    gate.check(
        "hotpath: one-pass flat table beats the hashmap baseline (>= 2x at 8 hosts)",
        flat_pps >= 2.0 * base_pps,
    );
    gate.check(
        "hotpath: the rewrite did not change the work (same switch_packets)",
        num(base, "switch_packets").is_some()
            && num(base, "switch_packets") == num(flat, "switch_packets"),
    );
    // The tracing layer's overhead gates. `trace_off` is today's tree
    // with tracing compiled in but disabled (the guaranteed-no-op
    // claim); `flat_onepass` was measured before the tracing layer
    // existed. `trace_on` records every event into the per-host ring.
    let (Some(off), Some(on)) = (variant("trace_off"), variant("trace_on")) else {
        gate.check("hotpath: trace variants present", false);
        return;
    };
    let off_pps = num(off, "pps").unwrap_or(0.0);
    let on_pps = num(on, "pps").unwrap_or(0.0);
    gate.check(
        "hotpath: disabled tracing costs < 1% (trace_off >= 0.99x flat_onepass)",
        off_pps >= 0.99 * flat_pps,
    );
    gate.check(
        "hotpath: enabled tracing stays within 2x (trace_on >= 0.5x flat_onepass)",
        on_pps >= 0.5 * flat_pps,
    );
    gate.check(
        "hotpath: tracing never changes the work (same switch_packets on/off)",
        num(off, "switch_packets") == num(flat, "switch_packets")
            && num(on, "switch_packets") == num(flat, "switch_packets"),
    );
}

fn check_upcall(gate: &mut Gate) {
    let Some(rows) = gate.load("BENCH_upcall.json") else {
        return;
    };
    let mode = |v| find_row(&rows, "mode", v);
    let (Some(inline), Some(bounded), Some(fair)) =
        (mode("inline"), mode("bounded"), mode("fair_share"))
    else {
        gate.check("upcall: headline cells present", false);
        return;
    };
    gate.check(
        "upcall: inline pipeline never drops the victim",
        num(inline, "victim_drop_rate") == Some(0.0),
    );
    gate.check(
        "upcall: bounded pipeline starves the victim (> 0.9 drop rate)",
        num(bounded, "victim_drop_rate").unwrap_or(0.0) > 0.9,
    );
    gate.check(
        "upcall: fair-share quota restores the victim (0 drop rate)",
        num(fair, "victim_drop_rate") == Some(0.0),
    );
}

fn check_fleet(gate: &mut Gate) {
    let Some(rows) = gate.load("BENCH_fleet.json") else {
        return;
    };
    let sparse = |engine: &str| {
        find_where(
            &rows,
            &[
                ("scenario", "\"fleet_sparse\""),
                ("engine", &format!("\"{engine}\"")),
            ],
        )
    };
    let (Some(stepped), Some(event)) = (sparse("stepped"), sparse("event")) else {
        gate.check("fleet: sparse cells present", false);
        return;
    };
    gate.check(
        "fleet: event engine >= 5x on the idle-heavy sparse fleet",
        num(event, "speedup").unwrap_or(0.0) >= 5.0,
    );
    gate.check(
        "fleet: the stepped reference never skips",
        num(stepped, "ticks_skipped") == Some(0.0),
    );
    gate.check(
        "fleet: the event engine actually skips",
        num(event, "ticks_skipped").unwrap_or(0.0) > 0.0,
    );
    gate.check(
        "fleet: both engines agree on the work done (events_processed)",
        num(stepped, "events_processed").is_some()
            && num(stepped, "events_processed") == num(event, "events_processed"),
    );
    gate.check(
        "fleet: dense colocation cells present on the event engine",
        find_where(
            &rows,
            &[("scenario", "\"fleet_colocation\""), ("hosts", "8")],
        )
        .is_some(),
    );
}

// ---------------------------------------------------------------------
// `--against <dir>`: fresh-vs-committed artefact comparator.
// ---------------------------------------------------------------------

/// Per-bench row identity: rows are paired for comparison only when
/// every one of these cells (plus `sim_secs`, when the row carries it)
/// renders identically in both artefacts.
const ARTEFACTS: &[(&str, &[&str])] = &[
    ("BENCH_fault.json", &["cell"]),
    ("BENCH_policy.json", &["mode"]),
    (
        "BENCH_backends.json",
        &["backend", "attack", "defended", "defense"],
    ),
    ("BENCH_detect.json", &["mode"]),
    ("BENCH_hotpath.json", &["variant", "hosts"]),
    ("BENCH_upcall.json", &["mode"]),
    (
        "BENCH_fleet.json",
        &["scenario", "engine", "hosts", "workers"],
    ),
];

/// How one cell is compared between a fresh and a baseline row.
enum Rule {
    /// Wall-clock / machine-dependent: never compared.
    Skip,
    /// Wall-clock throughput: fresh must retain at least this fraction
    /// of the baseline (upside is never a regression).
    LowerBound(f64),
    /// Dimensionless ratio: absolute window.
    Abs(f64),
    /// Everything else numeric: relative band (zero must stay zero).
    Rel(f64),
}

fn rule_for(key: &str) -> Rule {
    match key {
        "median_wall_secs" | "p95_wall_secs" | "speedup" | "warmup" | "repeats" => Rule::Skip,
        "pps" => Rule::LowerBound(0.5),
        "retained"
        | "retained_vs_benign"
        | "retained_vs_baseline"
        | "recovery_ratio"
        | "emc_hit_rate"
        | "victim_drop_rate" => Rule::Abs(0.05),
        _ => Rule::Rel(0.10),
    }
}

/// The artefact's `"params": {...}` envelope line, used as a whole-file
/// comparability guard: differing parameters mean the rows measure
/// different experiments, so the file is skipped rather than failed.
fn params_line(json: &str) -> Option<&str> {
    json.lines()
        .map(str::trim)
        .find(|l| l.starts_with("\"params\": "))
}

/// A short identity label for one row, for failure messages.
fn row_label(row: &str, id_keys: &[&str]) -> String {
    let mut parts: Vec<String> = Vec::new();
    for k in id_keys {
        if let Some(v) = field(row, k) {
            parts.push(format!("{k}={}", v.trim_matches('"')));
        }
    }
    if let Some(v) = field(row, "sim_secs") {
        parts.push(format!("sim_secs={v}"));
    }
    parts.join(" ")
}

fn compare_file(gate: &mut Gate, dir: &str, file: &str, id_keys: &[&str]) {
    let fresh_path = format!("{dir}/{file}");
    let Ok(fresh_json) = std::fs::read_to_string(&fresh_path) else {
        println!("{file}: no fresh artefact in {dir}, skipped");
        return;
    };
    let Ok(base_json) = std::fs::read_to_string(file) else {
        gate.check(&format!("{file}: committed baseline readable"), false);
        return;
    };
    if params_line(&fresh_json) != params_line(&base_json) {
        println!("{file}: params differ from baseline, skipped (different experiment)");
        return;
    }
    let fresh_rows = extract_rows(&fresh_json, "\u{7f}");
    let base_rows = extract_rows(&base_json, "\u{7f}");
    let mut compared = 0usize;
    let mut skipped = 0usize;
    for fresh in &fresh_rows {
        // Identity: the per-bench keys plus sim_secs when present.
        let mut ids: Vec<&str> = id_keys.to_vec();
        if field(fresh, "sim_secs").is_some() {
            ids.push("sim_secs");
        }
        let Some(base) = base_rows
            .iter()
            .find(|b| ids.iter().all(|k| field(b, k) == field(fresh, k)))
        else {
            skipped += 1;
            continue;
        };
        compared += 1;
        let label = row_label(fresh, id_keys);
        for key in keys(fresh) {
            if ids.contains(&key.as_str()) {
                continue;
            }
            let (Some(f), Some(b)) = (field(fresh, &key), field(base, &key)) else {
                continue; // cell added/removed between versions: not a regression
            };
            match (f.parse::<f64>(), b.parse::<f64>()) {
                (Ok(fv), Ok(bv)) => {
                    let ok = match rule_for(&key) {
                        Rule::Skip => continue,
                        Rule::LowerBound(frac) => fv >= frac * bv,
                        Rule::Abs(tol) => (fv - bv).abs() <= tol,
                        Rule::Rel(rel) => {
                            (fv - bv).abs() <= 1e-9_f64.max(rel * fv.abs().max(bv.abs()))
                        }
                    };
                    gate.check(&format!("{file} [{label}] {key}: {f} vs {b}"), ok);
                }
                _ => {
                    // Non-numeric cells must not drift at all.
                    gate.check(&format!("{file} [{label}] {key}: {f} vs {b}"), f == b);
                }
            }
        }
    }
    println!("{file}: {compared} rows compared, {skipped} without a baseline counterpart");
}

fn run_against(dir: &str) -> ! {
    println!("bench_check --against {dir}: fresh artefacts vs committed baselines\n");
    let mut gate = Gate::new();
    for (file, id_keys) in ARTEFACTS {
        compare_file(&mut gate, dir, file, id_keys);
    }
    if gate.checked == 0 {
        println!("note: no comparable rows found (smoke runs compare only when durations match)");
    }
    gate.finish("bench_check --against")
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--against") {
        let Some(dir) = args.get(i + 1) else {
            eprintln!("usage: bench_check [--against <dir>]");
            std::process::exit(2);
        };
        run_against(dir);
    }
    let mut gate = Gate::new();
    check_fault(&mut gate);
    check_policy(&mut gate);
    check_backends(&mut gate);
    check_detect(&mut gate);
    check_hotpath(&mut gate);
    check_upcall(&mut gate);
    check_fleet(&mut gate);
    gate.finish("bench_check")
}
