//! `bench_check` — static regression gate over the checked-in
//! `BENCH_*.json` artefacts.
//!
//! Re-running every bench on every commit is too slow for CI, but the
//! artefacts are checked in — so their **headline cells** can be
//! re-validated for free. This binary parses the committed JSON (the
//! writer's line-per-row shape, via [`pi_bench::report::extract_rows`])
//! and fails when a headline claim no longer holds — e.g. someone
//! regenerated `BENCH_fault.json` from a tree where reconciliation
//! stopped closing the verdict hole, and committed it without reading
//! the numbers.
//!
//! Checks are deliberately on the *committed* files, not a fresh run:
//! the gate catches regressions that made it into an artefact, while
//! the benches' own trailing `assert!`s catch them at generation time.
//!
//! Exit code: 0 when every check passes, 1 otherwise.

use pi_bench::report::extract_rows;

/// Extracts `"key": <number>` from one rendered row line.
fn num(line: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\": ");
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Finds the row whose `key` field equals `value`.
fn find_row<'a>(rows: &'a [String], key: &str, value: &str) -> Option<&'a String> {
    let needle = format!("\"{key}\": \"{value}\"");
    rows.iter().find(|r| r.contains(&needle))
}

/// Finds the row containing every `"key": value` pair. Values are
/// matched as rendered, so string values must be passed pre-quoted
/// (`"\"event\""`) while numbers and bools go bare (`"8"`, `"false"`).
fn find_where<'a>(rows: &'a [String], preds: &[(&str, &str)]) -> Option<&'a String> {
    rows.iter().find(|r| {
        preds
            .iter()
            .all(|(k, v)| r.contains(&format!("\"{k}\": {v}")))
    })
}

struct Gate {
    failures: Vec<String>,
    checked: usize,
}

impl Gate {
    fn new() -> Self {
        Gate {
            failures: Vec::new(),
            checked: 0,
        }
    }

    fn check(&mut self, what: &str, ok: bool) {
        self.checked += 1;
        if ok {
            println!("  ok   {what}");
        } else {
            println!("  FAIL {what}");
            self.failures.push(what.to_string());
        }
    }

    /// Loads an artefact's rows, or records a failure.
    fn load(&mut self, path: &str) -> Option<Vec<String>> {
        match std::fs::read_to_string(path) {
            Ok(json) => {
                // A needle no rendered row can contain: keep every row.
                let rows = extract_rows(&json, "\u{7f}");
                if rows.is_empty() {
                    self.check(&format!("{path}: has rows"), false);
                    None
                } else {
                    println!("{path}: {} rows", rows.len());
                    Some(rows)
                }
            }
            Err(e) => {
                self.check(&format!("{path}: readable ({e})"), false);
                None
            }
        }
    }
}

fn check_fault(gate: &mut Gate) {
    let Some(rows) = gate.load("BENCH_fault.json") else {
        return;
    };
    let cell = |v| find_row(&rows, "cell", v);
    let (Some(baseline), Some(off), Some(on)) = (
        cell("baseline"),
        cell("policy_flap_fire_forget"),
        cell("policy_flap_reliable"),
    ) else {
        gate.check("fault: headline cells present", false);
        return;
    };
    gate.check(
        "fault: baseline denies the prober (wrong_verdicts == 0)",
        num(baseline, "wrong_verdicts") == Some(0.0),
    );
    let wrong_off = num(off, "wrong_verdicts").unwrap_or(-1.0);
    let wrong_on = num(on, "wrong_verdicts").unwrap_or(f64::MAX);
    gate.check(
        "fault: fire-and-forget crash leaves a standing verdict hole",
        wrong_off > 0.0,
    );
    gate.check(
        "fault: reconciliation closes most of the hole (5x)",
        wrong_on * 5.0 < wrong_off,
    );
    let recovery = num(on, "recovery_ticks").unwrap_or(0.0);
    gate.check(
        "fault: reliable convergence is bounded (0 < recovery_ticks <= 2000)",
        recovery > 0.0 && recovery <= 2_000.0,
    );
    gate.check(
        "fault: capacity holds through flap-during-recovery (>= 0.9)",
        num(on, "retained_vs_baseline").unwrap_or(0.0) >= 0.9,
    );
}

fn check_policy(gate: &mut Gate) {
    let Some(rows) = gate.load("BENCH_policy.json") else {
        return;
    };
    let mode = |v| find_row(&rows, "mode", v);
    let (Some(flap), Some(scoped)) = (mode("policy_flap"), mode("policy_flap_scoped")) else {
        gate.check("policy: headline cells present", false);
        return;
    };
    gate.check(
        "policy: the flap collapses the victim (< 0.75)",
        num(flap, "retained_vs_benign").unwrap_or(1.0) < 0.75,
    );
    gate.check(
        "policy: scoped invalidation restores the victim (> 0.9)",
        num(scoped, "retained_vs_benign").unwrap_or(0.0) > 0.9,
    );
}

fn check_backends(gate: &mut Gate) {
    let Some(rows) = gate.load("BENCH_backends.json") else {
        return;
    };
    let cell = |backend: &str, attack: &str, defended: &str| {
        find_where(
            &rows,
            &[
                ("backend", &format!("\"{backend}\"")),
                ("attack", &format!("\"{attack}\"")),
                ("defended", defended),
            ],
        )
    };
    let (Some(churn_open), Some(flood_def), Some(exact_churn)) = (
        cell("ovs_cache", "tuple_space_churn", "false"),
        cell("ovs_cache", "upcall_flood", "true"),
        cell("exact_hash", "tuple_space_churn", "false"),
    ) else {
        gate.check("backends: headline cells present", false);
        return;
    };
    gate.check(
        "backends: churn collapses the undefended tuple-space cache (< 0.01)",
        num(churn_open, "retained").unwrap_or(1.0) < 0.01,
    );
    gate.check(
        "backends: fair-share quota defeats the upcall flood (>= 0.99)",
        num(flood_def, "retained").unwrap_or(0.0) >= 0.99,
    );
    gate.check(
        "backends: exact-hash is immune to churn by construction (>= 0.99)",
        num(exact_churn, "retained").unwrap_or(0.0) >= 0.99,
    );
}

fn check_detect(gate: &mut Gate) {
    let Some(rows) = gate.load("BENCH_detect.json") else {
        return;
    };
    let mode = |v| find_row(&rows, "mode", v);
    let (Some(none), Some(stat), Some(adaptive)) =
        (mode("none"), mode("static_fair_share"), mode("adaptive"))
    else {
        gate.check("detect: headline cells present", false);
        return;
    };
    gate.check(
        "detect: undefended victim never recovers (ratio == 0)",
        num(none, "recovery_ratio") == Some(0.0),
    );
    gate.check(
        "detect: static fair share recovers fully (ratio >= 1)",
        num(stat, "recovery_ratio").unwrap_or(0.0) >= 1.0,
    );
    gate.check(
        "detect: adaptive detects within one control interval (100 ms)",
        num(adaptive, "time_to_detect_ms") == Some(100.0),
    );
    gate.check(
        "detect: adaptive recovers fully with no benign activations",
        num(adaptive, "recovery_ratio").unwrap_or(0.0) >= 1.0
            && num(adaptive, "benign_activations") == Some(0.0),
    );
}

fn check_hotpath(gate: &mut Gate) {
    let Some(rows) = gate.load("BENCH_hotpath.json") else {
        return;
    };
    let variant = |v: &str| find_where(&rows, &[("variant", &format!("\"{v}\"")), ("hosts", "8")]);
    let (Some(base), Some(flat)) = (variant("baseline_hashmap"), variant("flat_onepass")) else {
        gate.check("hotpath: headline cells present", false);
        return;
    };
    let base_pps = num(base, "pps").unwrap_or(f64::MAX);
    let flat_pps = num(flat, "pps").unwrap_or(0.0);
    gate.check(
        "hotpath: one-pass flat table beats the hashmap baseline (>= 2x at 8 hosts)",
        flat_pps >= 2.0 * base_pps,
    );
    gate.check(
        "hotpath: the rewrite did not change the work (same switch_packets)",
        num(base, "switch_packets").is_some()
            && num(base, "switch_packets") == num(flat, "switch_packets"),
    );
}

fn check_upcall(gate: &mut Gate) {
    let Some(rows) = gate.load("BENCH_upcall.json") else {
        return;
    };
    let mode = |v| find_row(&rows, "mode", v);
    let (Some(inline), Some(bounded), Some(fair)) =
        (mode("inline"), mode("bounded"), mode("fair_share"))
    else {
        gate.check("upcall: headline cells present", false);
        return;
    };
    gate.check(
        "upcall: inline pipeline never drops the victim",
        num(inline, "victim_drop_rate") == Some(0.0),
    );
    gate.check(
        "upcall: bounded pipeline starves the victim (> 0.9 drop rate)",
        num(bounded, "victim_drop_rate").unwrap_or(0.0) > 0.9,
    );
    gate.check(
        "upcall: fair-share quota restores the victim (0 drop rate)",
        num(fair, "victim_drop_rate") == Some(0.0),
    );
}

fn check_fleet(gate: &mut Gate) {
    let Some(rows) = gate.load("BENCH_fleet.json") else {
        return;
    };
    let sparse = |engine: &str| {
        find_where(
            &rows,
            &[
                ("scenario", "\"fleet_sparse\""),
                ("engine", &format!("\"{engine}\"")),
            ],
        )
    };
    let (Some(stepped), Some(event)) = (sparse("stepped"), sparse("event")) else {
        gate.check("fleet: sparse cells present", false);
        return;
    };
    gate.check(
        "fleet: event engine >= 5x on the idle-heavy sparse fleet",
        num(event, "speedup").unwrap_or(0.0) >= 5.0,
    );
    gate.check(
        "fleet: the stepped reference never skips",
        num(stepped, "ticks_skipped") == Some(0.0),
    );
    gate.check(
        "fleet: the event engine actually skips",
        num(event, "ticks_skipped").unwrap_or(0.0) > 0.0,
    );
    gate.check(
        "fleet: both engines agree on the work done (events_processed)",
        num(stepped, "events_processed").is_some()
            && num(stepped, "events_processed") == num(event, "events_processed"),
    );
    gate.check(
        "fleet: dense colocation cells present on the event engine",
        find_where(
            &rows,
            &[("scenario", "\"fleet_colocation\""), ("hosts", "8")],
        )
        .is_some(),
    );
}

fn main() {
    let mut gate = Gate::new();
    check_fault(&mut gate);
    check_policy(&mut gate);
    check_backends(&mut gate);
    check_detect(&mut gate);
    check_hotpath(&mut gate);
    check_upcall(&mut gate);
    check_fleet(&mut gate);
    println!(
        "\nbench_check: {}/{} checks passed",
        gate.checked - gate.failures.len(),
        gate.checked
    );
    if !gate.failures.is_empty() {
        for f in &gate.failures {
            eprintln!("bench_check FAILED: {f}");
        }
        std::process::exit(1);
    }
}
