//! `bench_check` — static regression gate over the checked-in
//! `BENCH_*.json` artefacts.
//!
//! Re-running every bench on every commit is too slow for CI, but the
//! artefacts are checked in — so their **headline cells** can be
//! re-validated for free. This binary parses the committed JSON (the
//! writer's line-per-row shape, via [`pi_bench::report::extract_rows`])
//! and fails when a headline claim no longer holds — e.g. someone
//! regenerated `BENCH_fault.json` from a tree where reconciliation
//! stopped closing the verdict hole, and committed it without reading
//! the numbers.
//!
//! Checks are deliberately on the *committed* files, not a fresh run:
//! the gate catches regressions that made it into an artefact, while
//! the benches' own trailing `assert!`s catch them at generation time.
//!
//! Exit code: 0 when every check passes, 1 otherwise.

use pi_bench::report::extract_rows;

/// Extracts `"key": <number>` from one rendered row line.
fn num(line: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\": ");
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Finds the row whose `key` field equals `value`.
fn find_row<'a>(rows: &'a [String], key: &str, value: &str) -> Option<&'a String> {
    let needle = format!("\"{key}\": \"{value}\"");
    rows.iter().find(|r| r.contains(&needle))
}

struct Gate {
    failures: Vec<String>,
    checked: usize,
}

impl Gate {
    fn new() -> Self {
        Gate {
            failures: Vec::new(),
            checked: 0,
        }
    }

    fn check(&mut self, what: &str, ok: bool) {
        self.checked += 1;
        if ok {
            println!("  ok   {what}");
        } else {
            println!("  FAIL {what}");
            self.failures.push(what.to_string());
        }
    }

    /// Loads an artefact's rows, or records a failure.
    fn load(&mut self, path: &str) -> Option<Vec<String>> {
        match std::fs::read_to_string(path) {
            Ok(json) => {
                // A needle no rendered row can contain: keep every row.
                let rows = extract_rows(&json, "\u{7f}");
                if rows.is_empty() {
                    self.check(&format!("{path}: has rows"), false);
                    None
                } else {
                    println!("{path}: {} rows", rows.len());
                    Some(rows)
                }
            }
            Err(e) => {
                self.check(&format!("{path}: readable ({e})"), false);
                None
            }
        }
    }
}

fn check_fault(gate: &mut Gate) {
    let Some(rows) = gate.load("BENCH_fault.json") else {
        return;
    };
    let cell = |v| find_row(&rows, "cell", v);
    let (Some(baseline), Some(off), Some(on)) = (
        cell("baseline"),
        cell("policy_flap_fire_forget"),
        cell("policy_flap_reliable"),
    ) else {
        gate.check("fault: headline cells present", false);
        return;
    };
    gate.check(
        "fault: baseline denies the prober (wrong_verdicts == 0)",
        num(baseline, "wrong_verdicts") == Some(0.0),
    );
    let wrong_off = num(off, "wrong_verdicts").unwrap_or(-1.0);
    let wrong_on = num(on, "wrong_verdicts").unwrap_or(f64::MAX);
    gate.check(
        "fault: fire-and-forget crash leaves a standing verdict hole",
        wrong_off > 0.0,
    );
    gate.check(
        "fault: reconciliation closes most of the hole (5x)",
        wrong_on * 5.0 < wrong_off,
    );
    let recovery = num(on, "recovery_ticks").unwrap_or(0.0);
    gate.check(
        "fault: reliable convergence is bounded (0 < recovery_ticks <= 2000)",
        recovery > 0.0 && recovery <= 2_000.0,
    );
    gate.check(
        "fault: capacity holds through flap-during-recovery (>= 0.9)",
        num(on, "retained_vs_baseline").unwrap_or(0.0) >= 0.9,
    );
}

fn check_policy(gate: &mut Gate) {
    let Some(rows) = gate.load("BENCH_policy.json") else {
        return;
    };
    let mode = |v| find_row(&rows, "mode", v);
    let (Some(flap), Some(scoped)) = (mode("policy_flap"), mode("policy_flap_scoped")) else {
        gate.check("policy: headline cells present", false);
        return;
    };
    gate.check(
        "policy: the flap collapses the victim (< 0.75)",
        num(flap, "retained_vs_benign").unwrap_or(1.0) < 0.75,
    );
    gate.check(
        "policy: scoped invalidation restores the victim (> 0.9)",
        num(scoped, "retained_vs_benign").unwrap_or(0.0) > 0.9,
    );
}

fn main() {
    let mut gate = Gate::new();
    check_fault(&mut gate);
    check_policy(&mut gate);
    println!(
        "\nbench_check: {}/{} checks passed",
        gate.checked - gate.failures.len(),
        gate.checked
    );
    if !gate.failures.is_empty() {
        for f in &gate.failures {
            eprintln!("bench_check FAILED: {f}");
        }
        std::process::exit(1);
    }
}
