//! E1/E2 — Fig. 2 reproduction.
//!
//! Part 1 prints the paper's exact table: the binary ACL
//! (allow `00001010` = first octet of 10.0.0.0/8, deny `********`) and
//! the resulting non-overlapping megaflow entries — 9 entries over
//! 8 masks, byte-identical to Fig. 2b.
//!
//! Part 2 demonstrates the in-text claim "this technique creates 8 masks
//! and so 8 iterations for executing the TSS" by counting actual
//! subtable probes.

use pi_attack::{AttackSpec, CovertSequence};
use pi_bench::{compile_spec, results_dir};
use pi_cms::PolicyDialect;
use pi_core::{Field, FlowKey, SimTime};
use pi_datapath::{DpConfig, VSwitch};
use pi_metrics::CsvTable;

fn main() {
    // The paper's policy: allow 10.0.0.0/8 (first octet 00001010).
    let spec = AttackSpec {
        dialect: PolicyDialect::Kubernetes,
        allow_src: "10.0.0.0/8".parse().unwrap(),
        dst_port: None,
        src_port: None,
    };
    println!("Fig. 2a — binary ACL representation (first octet of ip_src):\n");
    println!("  ip_src     action");
    println!("  00001010   allow");
    println!("  ********   deny\n");

    let pod_ip = u32::from_be_bytes([10, 1, 0, 66]);
    let mut sw = VSwitch::new(DpConfig::default());
    sw.attach_pod(pod_ip, 1);
    sw.install_acl(pod_ip, compile_spec(&spec));

    // Feed the adversarial sequence (8 divergent packets + 1 in-prefix).
    let seq = CovertSequence::new(spec.build_target(pod_ip));
    let mut t = SimTime::from_millis(1);
    for p in seq.populate_packets() {
        sw.process(&p, t);
        t += SimTime::from_micros(100);
    }

    println!("Fig. 2b — resulting non-overlapping megaflow entries:\n");
    let mut rows: Vec<(u8, String, String, String)> = sw
        .megaflows()
        .iter()
        .map(|(mk, e)| {
            let key_octet = (mk.key().ip_src >> 24) as u8;
            let mask_bits = mk.mask().field(Field::IpSrc) >> 24;
            let len = mask_bits.count_ones() as u8;
            (
                len,
                Field::IpProto.to_binary_string(key_octet as u64),
                Field::IpProto.to_binary_string(mask_bits),
                e.action.to_string(),
            )
        })
        .collect();
    // Paper order: allow first, then deny rows by ascending mask length.
    rows.sort_by_key(|(len, _, _, action)| (action != "allow", *len));
    let mut csv = CsvTable::new(&["key", "mask", "action"]);
    println!("  Key        Mask       Action");
    for (_, key, mask, action) in &rows {
        println!("  {key}   {mask}   {action}");
        csv.push_row(&[key.clone(), mask.clone(), action.clone()]);
    }
    let masks = sw.mask_count();
    let entries = sw.megaflow_count();
    println!("\n  ⇒ {entries} entries over {masks} masks (paper: 9 entries, 8 masks)");
    assert_eq!(entries, 9);
    assert_eq!(masks, 8);

    // Part 2: "8 masks and so 8 iterations for executing the TSS".
    // A packet matching no megaflow (fresh destination prefix pattern
    // exhausted — use a brand-new covert-style miss) probes every
    // subtable.
    let probe = FlowKey::tcp([11, 0, 0, 99], [10, 1, 0, 66], 7_777, 7_778);
    // ^ 11.0.0.99 hits the 8-bit deny subtable *last* in insertion
    //   order; measure with a fresh unique key to defeat the EMC.
    let out = sw.process(&probe, SimTime::from_secs(5));
    println!(
        "\nTSS iterations for a worst-case lookup: {} (paper: 8)",
        out.path.probes()
    );

    let path = results_dir()
        .expect("results dir")
        .join("fig2_decomposition.csv");
    csv.write_csv(&path).expect("write csv");
    println!("\nCSV written to {}", path.display());
}
