//! `backend_matrix` — the cross-backend policy-injection immunity
//! matrix: every dataplane architecture ([`pi_backend`]) against every
//! attack class in the repo, with and without that attack's canonical
//! defense.
//!
//! Rows are `{backend × attack × defense}` cells. Each cell runs the
//! attack's scenario twice — benign baseline and attacked — on the same
//! backend and reports the victim's **retained capacity**: the attacked
//! victim metric over the baseline one (1.0 = immune, → 0 = collapse).
//!
//! The attacks:
//!
//! * `tuple_space` — the paper's policy injection against an
//!   *established* victim flow, measured by
//!   [`pi_sim::measure_backend_capacity`] with a sustained 8:1
//!   covert:victim interleave. This tier probes first-level cache
//!   *residency*: EMC collision churn on the OVS pipeline, FIFO
//!   replacement on the bounded NIC offload table.
//! * `tuple_space_churn` — the same injection against a victim
//!   *accepting fresh connections* (the paper's E3/E4 EMC-missing
//!   probe methodology). This tier is where the megaflow mask
//!   explosion lands; the `OvsCache` row reproduces the Fig. 3 / E3
//!   collapse, and is the matrix's anchor baseline.
//! * `upcall_flood` — the handler-saturation attack
//!   ([`pi_sim::upcall_saturation_scenario`]): a unique-destination
//!   spray monopolises the bounded slow path while a victim's
//!   connection churn needs it.
//! * `policy_flap` — the control-plane attack
//!   ([`pi_sim::policy_churn_scenario`]): zero attack packets, just ACL
//!   re-installs whose global cache flushes destroy co-located
//!   tenants' fast-path state.
//!
//! The defense column is each attack's canonical mitigation, applied
//! uniformly (backends without the corresponding structure treat the
//! knob as a no-op, which is itself a matrix result): staged subtable
//! lookup for the tuple-space rows, the per-port fair-share quota for
//! the flood, destination-scoped invalidation for the flap.
//!
//! Output: `BENCH_backends.json` (override with
//! `PI_BENCH_BACKENDS_OUT`), written through the shared
//! [`pi_bench::report`] envelope. `--smoke` shrinks every cell for CI
//! while still covering all four backends. The bench asserts its own
//! headline claims: the exact-match pipeline retains ≥ 0.9 of its
//! connection-setup capacity under the very injection that collapses
//! the OVS pipeline.

use pi_attack::AttackSpec;
use pi_bench::report::{Fields, Report};
use pi_core::SimTime;
use pi_datapath::{BackendKind, DpConfig};
use pi_sim::{
    measure_backend_capacity, policy_churn_scenario, upcall_saturation_scenario, CapacityWorkload,
    PolicyChurnParams, UpcallSaturationParams,
};

/// One matrix cell.
struct Cell {
    backend: BackendKind,
    attack: &'static str,
    defense: &'static str,
    defended: bool,
    baseline_pps: f64,
    attacked_pps: f64,
    retained: f64,
    /// Wildcard masks present after the attack (the Fig. 3 observable;
    /// 0 for architectures without a mask space, and for the scenario
    /// cells where it isn't the interesting axis).
    masks_attacked: usize,
}

/// The covert-budget knobs one smoke/full switch controls.
struct Scale {
    capacity_samples: u64,
    covert_per_victim: u64,
    flood_secs: u64,
    flap_secs: u64,
}

fn capacity_cell(
    backend: BackendKind,
    workload: CapacityWorkload,
    defended: bool,
    scale: &Scale,
) -> Cell {
    let dp = DpConfig {
        backend,
        staged_lookup: defended,
        ..DpConfig::default()
    };
    let spec = AttackSpec::masks_8192();
    let cpu = 1_200_000_000u64;
    let (base, attacked) = measure_backend_capacity(
        dp,
        cpu,
        &spec,
        workload,
        scale.capacity_samples,
        scale.covert_per_victim,
    );
    Cell {
        backend,
        attack: match workload {
            CapacityWorkload::CachedFlow => "tuple_space",
            CapacityWorkload::ConnectionSetup => "tuple_space_churn",
        },
        defense: "staged_lookup",
        defended,
        baseline_pps: base.capacity_pps,
        attacked_pps: attacked.capacity_pps,
        retained: attacked.capacity_pps / base.capacity_pps,
        masks_attacked: attacked.masks,
    }
}

fn flood_cell(backend: BackendKind, defended: bool, scale: &Scale) -> Cell {
    let run = |attack: bool| {
        let params = UpcallSaturationParams {
            duration: SimTime::from_secs(scale.flood_secs),
            backend,
            attack,
            port_quota_per_step: defended.then_some(8),
            ..Default::default()
        };
        let (sim, handles) = upcall_saturation_scenario(&params);
        let report = sim.run();
        let victim = &report.source_totals[handles.victim_source];
        let window = (params.duration - params.victim_start).as_secs_f64();
        victim.delivered as f64 / window
    };
    let baseline_pps = run(false);
    let attacked_pps = run(true);
    Cell {
        backend,
        attack: "upcall_flood",
        defense: "fair_share_quota",
        defended,
        baseline_pps,
        attacked_pps,
        retained: attacked_pps / baseline_pps,
        masks_attacked: 0,
    }
}

fn flap_cell(backend: BackendKind, defended: bool, scale: &Scale) -> Cell {
    let run = |flap: bool| {
        let params = PolicyChurnParams {
            duration: SimTime::from_secs(scale.flap_secs),
            attack_start: SimTime::from_secs(1),
            flap,
            scoped_invalidation: defended,
            dp: DpConfig {
                backend,
                ..DpConfig::default()
            },
            ..Default::default()
        };
        let (sim, handles) = policy_churn_scenario(&params);
        let report = sim.run();
        let victim = &report.source_totals[handles.victim_source];
        victim.delivered as f64 / params.duration.as_secs_f64()
    };
    let baseline_pps = run(false);
    let attacked_pps = run(true);
    Cell {
        backend,
        attack: "policy_flap",
        defense: "scoped_invalidation",
        defended,
        baseline_pps,
        attacked_pps,
        retained: attacked_pps / baseline_pps,
        masks_attacked: 0,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = if smoke {
        Scale {
            // 400 x 8 = 3200 covert flows: enough to wrap the 2048-entry
            // NIC offload FIFO, so its replacement-churn cell is visible
            // even in the smoke run.
            capacity_samples: 400,
            covert_per_victim: 8,
            flood_secs: 3,
            flap_secs: 3,
        }
    } else {
        Scale {
            capacity_samples: 2_000,
            covert_per_victim: 8,
            flood_secs: 6,
            flap_secs: 4,
        }
    };

    println!(
        "backend_matrix: {} backends x 4 attacks x 2 defense settings{}",
        BackendKind::ALL.len(),
        if smoke { " (smoke)" } else { "" }
    );
    println!(
        "{:>11} {:>18} {:>20} {:>9} {:>14} {:>14} {:>9} {:>7}",
        "backend",
        "attack",
        "defense",
        "defended",
        "baseline_pps",
        "attacked_pps",
        "retained",
        "masks"
    );

    let mut cells: Vec<Cell> = Vec::new();
    for backend in BackendKind::ALL {
        for defended in [false, true] {
            cells.push(capacity_cell(
                backend,
                CapacityWorkload::CachedFlow,
                defended,
                &scale,
            ));
            cells.push(capacity_cell(
                backend,
                CapacityWorkload::ConnectionSetup,
                defended,
                &scale,
            ));
            cells.push(flood_cell(backend, defended, &scale));
            cells.push(flap_cell(backend, defended, &scale));
        }
    }
    for c in &cells {
        println!(
            "{:>11} {:>18} {:>20} {:>9} {:>14.0} {:>14.0} {:>9.3} {:>7}",
            c.backend.name(),
            c.attack,
            c.defense,
            c.defended,
            c.baseline_pps,
            c.attacked_pps,
            c.retained,
            c.masks_attacked
        );
    }

    let mut report = Report::new("backend_matrix", "backend_immunity_matrix").params(
        Fields::new()
            .b("smoke", smoke)
            .u("capacity_samples", scale.capacity_samples)
            .u("covert_per_victim", scale.covert_per_victim)
            .u("flood_secs", scale.flood_secs)
            .u("flap_secs", scale.flap_secs)
            .s("tuple_space_spec", "masks_8192"),
    );
    for c in &cells {
        report.row(
            Fields::new()
                .s("backend", c.backend.name())
                .s("attack", c.attack)
                .s("defense", c.defense)
                .b("defended", c.defended)
                .f("baseline_pps", c.baseline_pps, 1)
                .f("attacked_pps", c.attacked_pps, 1)
                .f("retained", c.retained, 4)
                .zu("masks_attacked", c.masks_attacked),
        );
    }
    let out = report
        .write("BENCH_backends.json", "PI_BENCH_BACKENDS_OUT")
        .expect("write report");
    println!("\nwrote {}", out.display());

    // The matrix's headline claims, asserted so a regression fails the
    // bench rather than silently shipping a wrong artefact.
    let cell = |backend: BackendKind, attack: &str, defended: bool| {
        cells
            .iter()
            .find(|c| c.backend == backend && c.attack == attack && c.defended == defended)
            .expect("cell")
    };
    let ovs = cell(BackendKind::OvsCache, "tuple_space_churn", false);
    assert!(
        ovs.retained < 0.2,
        "OvsCache must reproduce the tuple-space collapse: retained = {:.3}",
        ovs.retained
    );
    let exact = cell(BackendKind::ExactHash, "tuple_space_churn", false);
    assert!(
        exact.retained >= 0.9,
        "ExactHash must retain >= 0.9 under the injection: retained = {:.3}",
        exact.retained
    );
    let flood = cell(BackendKind::OvsCache, "upcall_flood", false);
    let flood_exact = cell(BackendKind::ExactHash, "upcall_flood", false);
    assert!(
        flood.retained < 0.5 && flood_exact.retained > 0.9,
        "the flood starves the bounded OVS slow path ({:.3}) but not the inline \
         exact pipeline ({:.3})",
        flood.retained,
        flood_exact.retained
    );
    let flap = cell(BackendKind::OvsCache, "policy_flap", false);
    let flap_scoped = cell(BackendKind::OvsCache, "policy_flap", true);
    assert!(
        flap.retained < 0.6 && flap_scoped.retained > 0.9,
        "the flap collapses global-flush OVS ({:.3}) and scoped invalidation \
         restores it ({:.3})",
        flap.retained,
        flap_scoped.retained
    );
}
