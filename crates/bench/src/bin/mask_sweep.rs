//! E3/E4 — fast-path capacity vs injected mask count.
//!
//! The abstract's headline: the attack "reduce[s] its effective peak
//! performance by 80-90%", and §2's "512 MF masks/entries … slowing it
//! down to 10% of the peak performance". This sweep measures sustainable
//! fast-path packets/second for mask counts from 2 to 8192, using the
//! same EMC-defeating probe workload throughout (the traffic shape the
//! covert stream imposes).
//!
//! Absolute ratios depend on per-probe vs per-packet cost constants
//! (testbed-specific); the reproduced *shape* is capacity ∝ 1/masks,
//! with 512 masks already deep in collapse — see EXPERIMENTS.md.

use pi_attack::AttackSpec;
use pi_bench::results_dir;
use pi_cms::{Cidr, PolicyDialect};
use pi_datapath::DpConfig;
use pi_metrics::CsvTable;
use pi_sim::measure_capacity;

const CPU: u64 = 1_200_000_000;

fn main() {
    println!("fast-path capacity vs megaflow masks (probe workload: unique covert scans)\n");
    let mut csv = CsvTable::new(&[
        "masks",
        "fields",
        "avg_cycles_per_pkt",
        "capacity_pps",
        "capacity_rel",
        "capacity_gbps_64B",
        "capacity_gbps_1500B",
    ]);

    // Field sets of increasing aggression, as §2 describes.
    let specs: Vec<(&str, AttackSpec)> = vec![
        (
            "ip/1",
            AttackSpec {
                dialect: PolicyDialect::Kubernetes,
                allow_src: Cidr::new(0x8000_0000, 1).unwrap(),
                dst_port: None,
                src_port: None,
            },
        ),
        (
            "ip/8",
            AttackSpec {
                dialect: PolicyDialect::Kubernetes,
                allow_src: "10.0.0.0/8".parse().unwrap(),
                dst_port: None,
                src_port: None,
            },
        ),
        (
            "ip/32",
            AttackSpec {
                dialect: PolicyDialect::Kubernetes,
                allow_src: Cidr::host([203, 0, 113, 7]),
                dst_port: None,
                src_port: None,
            },
        ),
        (
            "ip/8+dport",
            AttackSpec {
                dialect: PolicyDialect::Kubernetes,
                allow_src: "10.0.0.0/8".parse().unwrap(),
                dst_port: Some(443),
                src_port: None,
            },
        ),
        (
            "ip/32+dport (paper 512)",
            AttackSpec::masks_512(PolicyDialect::Kubernetes),
        ),
        ("ip/32+dport+sport (paper 8192)", AttackSpec::masks_8192()),
    ];

    let mut baseline_pps: Option<f64> = None;
    println!(
        "{:>8} {:>28} {:>14} {:>14} {:>9} {:>10} {:>10}",
        "masks", "fields", "cycles/pkt", "pps", "relative", "Gb/s@64B", "Gb/s@1500B"
    );
    for (label, spec) in &specs {
        let (base, attacked) = measure_capacity(DpConfig::default(), CPU, spec, 2_000);
        let baseline = *baseline_pps.get_or_insert(base.capacity_pps);
        let rel = attacked.capacity_pps / baseline;
        println!(
            "{:>8} {:>28} {:>14.0} {:>14.0} {:>9.4} {:>10.4} {:>10.4}",
            attacked.masks,
            label,
            attacked.avg_cycles,
            attacked.capacity_pps,
            rel,
            attacked.capacity_gbps(64),
            attacked.capacity_gbps(1500),
        );
        csv.push_row(&[
            attacked.masks.to_string(),
            label.to_string(),
            format!("{:.0}", attacked.avg_cycles),
            format!("{:.0}", attacked.capacity_pps),
            format!("{rel:.6}"),
            format!("{:.4}", attacked.capacity_gbps(64)),
            format!("{:.4}", attacked.capacity_gbps(1500)),
        ]);
    }
    let baseline = baseline_pps.unwrap();
    println!(
        "\nbaseline (pre-attack, same workload): {baseline:.0} pps \
         ({:.2} Gb/s at 1500 B)",
        baseline * 1500.0 * 8.0 / 1e9
    );
    println!(
        "paper claims: 512 masks ⇒ ~10% of peak; 8192 ⇒ DoS. \
         Shape reproduced; see EXPERIMENTS.md for the constant-factor discussion."
    );

    let path = results_dir().expect("results dir").join("mask_sweep.csv");
    csv.write_csv(&path).expect("write csv");
    println!("CSV written to {}", path.display());
}
