//! `hotpath` — throughput of the per-packet pipeline itself.
//!
//! Runs the `fleet_colocation` scenario single-worker (the configuration
//! the tentpole optimisation targets: one core, every host under active
//! policy injection) and records simulated packets/second together with
//! the two counters that attribute a regression to a pipeline level:
//! the mean subtable probes per packet (megaflow walk length) and the
//! EMC hit rate (fraction of packets resolved at the exact-match cache).
//!
//! Wall times come from `pi_bench::stopwatch::sample` — warm-up runs
//! followed by repeated timed runs, reported as median + p95 — because a
//! single sample on a shared 1-core container is too noisy to compare
//! before/after rows.
//!
//! Output: `BENCH_hotpath.json` (override with `PI_BENCH_HOTPATH_OUT`).
//! Re-running **preserves rows of other variants** already in the output
//! file and replaces only the current variant's rows — the checked-in
//! `baseline_hashmap` rows were measured immediately before the
//! allocation-free rebuild and cannot be regenerated, so a refresh must
//! not destroy them. Environment knobs:
//! * `PI_HOTPATH_VARIANT` — row label (default `flat_onepass`, or
//!   `smoke` under `--smoke` so a quick check never replaces the full
//!   measurement rows). Two labels change the configuration measured:
//!   `trace_off` runs today's tree with the tracing layer compiled in
//!   but disabled (the guaranteed-no-op claim `bench_check` gates at
//!   < 1% vs `flat_onepass`), and `trace_on` records every event into
//!   the per-host trace ring.
//! * `PI_BENCH_HOTPATH_MERGE` — merge source for prior rows (default:
//!   the output file itself, when present).
//! * `--smoke` — tiny iteration count for CI: 1 simulated second, one
//!   repeat, no warm-up, smallest topology only.

// audit: allow-file(determinism) -- wall-clock pps measurement is this binary's artefact; sim results stay tick-deterministic
use std::time::Instant;

use pi_bench::report::{extract_rows, Fields, Report};
use pi_bench::stopwatch::{sample, SampleStats};
use pi_fleet::{fleet_colocation, TraceConfig};

struct Row {
    variant: String,
    hosts: usize,
    sim_secs: u64,
    stats: SampleStats,
    switch_packets: u64,
    pps: f64,
    avg_probes: f64,
    emc_hit_rate: f64,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let default_variant = if smoke { "smoke" } else { "flat_onepass" };
    let variant =
        std::env::var("PI_HOTPATH_VARIANT").unwrap_or_else(|_| default_variant.to_string());
    let (host_counts, sim_secs, warmup, repeats): (&[usize], u64, u32, u32) = if smoke {
        (&[2], 1, 0, 1)
    } else {
        (&[2, 4, 8], 4, 1, 5)
    };
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    println!(
        "hotpath: variant={variant}, {sim_secs} simulated seconds per run, \
         {warmup} warm-up + {repeats} timed repeats, {cores} CPU core(s)"
    );
    println!(
        "{:>6} {:>12} {:>12} {:>16} {:>14} {:>12} {:>14}",
        "hosts", "median_s", "p95_s", "switch_packets", "pps", "avg_probes", "emc_hit_rate"
    );

    let mut rows: Vec<Row> = Vec::new();
    for &hosts in host_counts {
        let mut packets = 0u64;
        let mut avg_probes = 0.0f64;
        let mut emc_hit_rate = 0.0f64;
        let trace_on = variant == "trace_on";
        let stats = sample(warmup, repeats, || {
            let (mut sim, _handles) =
                fleet_colocation(&pi_bench::colocation_cell(hosts, 1, sim_secs));
            if trace_on {
                sim.set_trace(TraceConfig::enabled());
            }
            let start = Instant::now();
            let report = sim.run();
            let wall = start.elapsed();
            let total = report.total_switch_stats();
            packets = total.packets;
            avg_probes = total.avg_probes();
            emc_hit_rate = total.emc_hit_rate();
            wall
        });
        let pps = packets as f64 / stats.median_secs;
        println!(
            "{:>6} {:>12.4} {:>12.4} {:>16} {:>14.0} {:>12.2} {:>14.4}",
            hosts, stats.median_secs, stats.p95_secs, packets, pps, avg_probes, emc_hit_rate
        );
        rows.push(Row {
            variant: variant.clone(),
            hosts,
            sim_secs,
            stats,
            switch_packets: packets,
            pps,
            avg_probes,
            emc_hit_rate,
        });
    }

    let out = std::env::var("PI_BENCH_HOTPATH_OUT").unwrap_or_else(|_| "BENCH_hotpath.json".into());
    let mut report = Report::new("hotpath", "fleet_colocation").params(Fields::new());
    // Default merge source is the output file itself: re-running the
    // bench refreshes this variant's rows and keeps every other
    // variant's (the baseline rows predate the rebuild and cannot be
    // re-measured).
    let merge_path = std::env::var("PI_BENCH_HOTPATH_MERGE").unwrap_or_else(|_| out.clone());
    if let Ok(prev) = std::fs::read_to_string(&merge_path) {
        let needle = format!("\"variant\": \"{variant}\"");
        for line in extract_rows(&prev, &needle) {
            report.carry_row(line);
        }
    }
    for r in &rows {
        report.row(
            Fields::new()
                .s("variant", &r.variant)
                .zu("hosts", r.hosts)
                .u("workers", 1)
                .u("sim_secs", r.sim_secs)
                .u("warmup", r.stats.warmup as u64)
                .u("repeats", r.stats.repeats as u64)
                .f("median_wall_secs", r.stats.median_secs, 6)
                .f("p95_wall_secs", r.stats.p95_secs, 6)
                .u("switch_packets", r.switch_packets)
                .f("pps", r.pps, 1)
                .f("avg_subtable_probes", r.avg_probes, 3)
                .f("emc_hit_rate", r.emc_hit_rate, 4),
        );
    }
    let out = report
        .write("BENCH_hotpath.json", "PI_BENCH_HOTPATH_OUT")
        .expect("write report");
    println!("\nwrote {}", out.display());
}
