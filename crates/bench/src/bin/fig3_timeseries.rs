//! E5 — the full Fig. 3 reproduction.
//!
//! "OVS degradation in Kubernetes: Attacker feeds her ACL with
//! low-bandwidth packets at 60th sec." 150 simulated seconds, victim
//! iperf at ~1 Gb/s, Calico 8192-mask policy, 2 Mb/s covert stream from
//! t = 60 s. Prints the dual-axis ASCII figure (victim throughput *,
//! megaflow count o) and writes the CSV.
//!
//! Run with `--release`; the run processes ~12 M packets.

use pi_bench::results_dir;
use pi_core::SimTime;
use pi_metrics::{ascii_plot, CsvTable, TimeSeries};
use pi_sim::{fig3_scenario, Fig3Params};

fn main() {
    let params = Fig3Params::default();
    println!(
        "running Fig. 3: {} total, attack at {}, covert budget {:.1} Mb/s, 8192-mask Calico policy…",
        params.duration,
        params.attack_start,
        params.attack_bandwidth_bps / 1e6
    );
    let (sim, handles) = fig3_scenario(&params);
    let report = sim.run();

    let victim = &report.throughput_bps[handles.victim_source];
    let masks = &report.masks[handles.attacked_node];
    let megaflows = &report.megaflows[handles.attacked_node];
    let cpu = &report.cpu_util[handles.attacked_node];

    let mut victim_gbps = TimeSeries::new("victim_gbps");
    for (t, v) in victim.iter() {
        victim_gbps.push(t, v / 1e9);
    }

    println!("\nFig. 3 — victim throughput (*) and #megaflow masks (o):\n");
    println!("{}", ascii_plot(&[&victim_gbps, masks], 100, 20));

    let before = victim.mean_between(SimTime::from_secs(5), params.attack_start) / 1e9;
    let during = victim.mean_between(SimTime::from_secs(75), params.duration) / 1e9;
    println!("victim mean 5–60 s   : {before:.3} Gb/s   (paper: ≈0.85–1.0)");
    println!("victim mean 75–150 s : {during:.3} Gb/s   (paper: collapse toward 0)");
    println!(
        "degradation          : {:.1}%",
        (1.0 - during / before) * 100.0
    );
    println!(
        "masks at t=150 s     : {:.0}   (paper: 8192 + victim's own)",
        masks.last().unwrap().1
    );
    println!(
        "megaflow entries     : {:.0}   (paper figure shows ≈10⁴)",
        megaflows.last().unwrap().1
    );
    println!(
        "server CPU during attack: {:.0}%",
        cpu.mean_between(SimTime::from_secs(75), params.duration) * 100.0
    );
    let attack_offered = report.offered_bps[handles.attack_source]
        .mean_between(params.attack_start, params.duration);
    println!("covert stream        : {:.2} Mb/s", attack_offered / 1e6);

    // CSV with the figure's series.
    let table = CsvTable::from_series(&[&victim_gbps, masks, megaflows, cpu]);
    let path = results_dir()
        .expect("results dir")
        .join("fig3_timeseries.csv");
    table.write_csv(&path).expect("write csv");
    println!("\nCSV written to {}", path.display());
}
