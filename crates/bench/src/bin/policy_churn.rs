//! `policy_churn` — the control-plane flush storm, measured.
//!
//! Runs the single-node policy-churn scenario
//! ([`pi_sim::policy_churn_scenario`]) in three configurations:
//!
//! * `benign_churn` — routine control-plane activity only (an ACL
//!   install/remove on a background pod once a second): the baseline
//!   every other row is judged against;
//! * `policy_flap` — a co-located attacker re-installs its own ACL
//!   every 20 ms through the CMS API
//!   ([`pi_attack::AttackSchedule::policy_flap`]). **Zero attack
//!   packets**: the whole attack is the global cache flush each
//!   install triggers, which forces one slow-path rebuild per
//!   whitelisted victim client per flap;
//! * `policy_flap_scoped` — the same flap under destination-scoped
//!   invalidation ([`pi_datapath::DpConfig::scoped_invalidation`]):
//!   each install
//!   evicts only the updated pod's megaflows, so the victim's
//!   fast-path state survives and throughput recovers. Caveat: the EMC
//!   is still invalidated wholesale (its entries carry no destination
//!   index), so recovery is "megaflow hit + EMC re-promotion", not
//!   zero-cost.
//!
//! Per row: victim delivered pps and retained ratio vs the benign
//! baseline, policy updates, effective cache flushes, flushed
//! megaflows, and the control-plane cycles charged. Fully
//! deterministic — one run per row.
//!
//! Output: `BENCH_policy.json` (override with `PI_BENCH_POLICY_OUT`).
//! `--smoke` shrinks the run for CI.

use pi_bench::report::{Fields, Report};
use pi_core::SimTime;
use pi_sim::{policy_churn_scenario, PolicyChurnParams};

struct Row {
    mode: &'static str,
    victim_offered: u64,
    victim_delivered: u64,
    victim_pps: f64,
    victim_dropped_capacity: u64,
    attack_packets: u64,
    policy_updates: u64,
    cache_flushes: u64,
    flushed_megaflows: u64,
    control_cycles: u64,
    upcalls: u64,
}

fn run_mode(mode: &'static str, sim_secs: u64) -> Row {
    let mut params = PolicyChurnParams {
        duration: SimTime::from_secs(sim_secs),
        attack_start: SimTime::from_secs(sim_secs.min(2)),
        ..Default::default()
    };
    match mode {
        "benign_churn" => params.flap = false,
        "policy_flap" => {}
        "policy_flap_scoped" => params.scoped_invalidation = true,
        other => unreachable!("unknown mode {other}"),
    }
    let (sim, handles) = policy_churn_scenario(&params);
    let report = sim.run();
    let victim = &report.source_totals[handles.victim_source];
    let stats = report.switch_stats[handles.node];
    Row {
        mode,
        victim_offered: victim.generated,
        victim_delivered: victim.delivered,
        victim_pps: victim.delivered as f64 / params.duration.as_secs_f64(),
        victim_dropped_capacity: victim.dropped_capacity,
        // The attacker has no traffic source at all: the attack is
        // pure control plane. Recorded explicitly so the JSON carries
        // the claim.
        attack_packets: 0,
        policy_updates: stats.policy_updates,
        cache_flushes: stats.cache_flushes,
        flushed_megaflows: stats.flushed_megaflows,
        control_cycles: stats.control_cycles,
        upcalls: stats.upcalls,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let sim_secs: u64 = if smoke { 4 } else { 10 };
    let defaults = PolicyChurnParams::default();
    println!("policy_churn: {sim_secs} simulated seconds per mode");
    println!(
        "{:>18} {:>12} {:>12} {:>10} {:>9} {:>9} {:>12} {:>12}",
        "mode",
        "victim_pps",
        "retained",
        "updates",
        "flushes",
        "upcalls",
        "flushed_mf",
        "ctrl_cycles"
    );
    let rows: Vec<Row> = ["benign_churn", "policy_flap", "policy_flap_scoped"]
        .into_iter()
        .map(|mode| run_mode(mode, sim_secs))
        .collect();
    let baseline_pps = rows[0].victim_pps;
    for r in &rows {
        println!(
            "{:>18} {:>12.0} {:>12.3} {:>10} {:>9} {:>9} {:>12} {:>12}",
            r.mode,
            r.victim_pps,
            r.victim_pps / baseline_pps,
            r.policy_updates,
            r.cache_flushes,
            r.upcalls,
            r.flushed_megaflows,
            r.control_cycles
        );
    }

    let mut report = Report::new("policy_churn", "policy_churn").params(
        Fields::new()
            .zu("clients", defaults.clients)
            .f("victim_pps_offered", defaults.victim_pps, 0)
            .u(
                "flap_period_ms",
                defaults.flap_period.as_nanos() / 1_000_000,
            )
            .u(
                "benign_update_period_ms",
                defaults.benign_update_period.as_nanos() / 1_000_000,
            ),
    );
    for r in &rows {
        report.row(
            Fields::new()
                .s("mode", r.mode)
                .u("sim_secs", sim_secs)
                .u("victim_offered", r.victim_offered)
                .u("victim_delivered", r.victim_delivered)
                .f("victim_pps", r.victim_pps, 1)
                .f("retained_vs_benign", r.victim_pps / baseline_pps, 4)
                .u("victim_dropped_capacity", r.victim_dropped_capacity)
                .u("attack_packets", r.attack_packets)
                .u("policy_updates", r.policy_updates)
                .u("cache_flushes", r.cache_flushes)
                .u("flushed_megaflows", r.flushed_megaflows)
                .u("control_cycles", r.control_cycles)
                .u("upcalls", r.upcalls),
        );
    }
    let out = report
        .write("BENCH_policy.json", "PI_BENCH_POLICY_OUT")
        .expect("write report");
    println!("\nwrote {}", out.display());

    // Keep the bench honest about its own claims: the flap must
    // collapse the victim and scoped invalidation must restore it.
    // The smoke run's attacked window is only half the run (2 s of 4),
    // so its collapse bar is proportionally looser.
    let collapse_bar = if smoke { 0.75 } else { 0.6 };
    assert!(
        rows[1].victim_pps < collapse_bar * baseline_pps,
        "policy_flap failed to collapse the victim"
    );
    assert!(
        rows[2].victim_pps > 0.9 * baseline_pps,
        "scoped invalidation failed to restore the victim"
    );
}
