//! `fault_matrix` — crash recovery under attack, measured.
//!
//! Runs the crash-recovery scenario ([`pi_sim::crash_recovery_scenario`])
//! across the {fault} × {attack} × {retry+reconcile on/off} matrix:
//!
//! * `baseline` — no crash, no attack: the capacity denominator and the
//!   zero-wrong-verdict reference;
//! * `policy_flap` × {`fire_and_forget`, `reliable`} — the switch
//!   crashes mid-run while a co-located attacker flaps its own ACL
//!   every 20 ms through the same CMS path the recovery needs. The
//!   **headline pair**: with fire-and-forget control the victim's deny
//!   rule vanishes in the crash and never comes back (every delivered
//!   prober packet is a wrong verdict — a standing security hole);
//!   at-least-once delivery + reconciliation closes the hole within a
//!   bounded window even with the flap competing for the control plane;
//! * `upcall_flood` × {`fire_and_forget`, `reliable`} — the same crash
//!   with the covert mask flood saturating the bounded slow path from
//!   the restart instant.
//!
//! Every crash row sends control traffic through a lossy, duplicating,
//! jittered CMS→switch channel, so the reliable rows also pay (and
//! report) retries. Fully deterministic — one run per cell.
//!
//! Output: `BENCH_fault.json` (override with `PI_BENCH_FAULT_OUT`).
//! `--smoke` shrinks the run for CI.

use pi_bench::report::{Fields, Report};
use pi_core::SimTime;
use pi_fault::{ChannelFaultConfig, NodeFaultReport, ReliabilityConfig};
use pi_sim::{crash_recovery_scenario, CrashRecoveryAttack, CrashRecoveryParams};

struct Row {
    label: &'static str,
    attack: CrashRecoveryAttack,
    reliable: bool,
    crash: bool,
    victim_offered: u64,
    victim_delivered: u64,
    victim_pps: f64,
    wrong_verdicts: u64,
    faults: NodeFaultReport,
}

fn run_cell(
    label: &'static str,
    attack: CrashRecoveryAttack,
    reliable: bool,
    crash: bool,
    sim_secs: u64,
) -> Row {
    let params = CrashRecoveryParams {
        duration: SimTime::from_secs(sim_secs),
        crash,
        crash_at: SimTime::from_secs(sim_secs / 3),
        attack,
        reliable: reliable.then(ReliabilityConfig::default),
        // The CMS→switch path of every crash cell is hostile: losses,
        // duplicates and jittered (reordering) delays. Fire-and-forget
        // delivery never even sees it — which is the point.
        channel: crash.then(|| ChannelFaultConfig {
            drop_p: 0.05,
            dup_p: 0.05,
            delay: SimTime::from_millis(2),
            jitter: SimTime::from_millis(3),
            ..ChannelFaultConfig::default()
        }),
        ..CrashRecoveryParams::default()
    };
    let (sim, handles) = crash_recovery_scenario(&params);
    let report = sim.run();
    let victim = &report.source_totals[handles.victim_source];
    let prober = &report.source_totals[handles.prober_source];
    Row {
        label,
        attack,
        reliable,
        crash,
        victim_offered: victim.generated,
        victim_delivered: victim.delivered,
        victim_pps: victim.delivered as f64 / params.duration.as_secs_f64(),
        // Every delivered prober packet passed a deny rule that was
        // supposed to be installed: a wrong verdict.
        wrong_verdicts: prober.delivered,
        faults: report.faults[handles.node].clone().unwrap_or_default(),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let sim_secs: u64 = if smoke { 6 } else { 12 };
    let defaults = CrashRecoveryParams::default();
    println!(
        "fault_matrix: {sim_secs} simulated seconds per cell, crash at {}s",
        sim_secs / 3
    );
    println!(
        "{:>26} {:>12} {:>10} {:>8} {:>10} {:>9} {:>8} {:>10}",
        "cell", "victim_pps", "retained", "wrong", "recovery", "retries", "repush", "events"
    );
    let rows: Vec<Row> = vec![
        run_cell(
            "baseline",
            CrashRecoveryAttack::None,
            false,
            false,
            sim_secs,
        ),
        run_cell(
            "policy_flap_fire_forget",
            CrashRecoveryAttack::PolicyFlap,
            false,
            true,
            sim_secs,
        ),
        run_cell(
            "policy_flap_reliable",
            CrashRecoveryAttack::PolicyFlap,
            true,
            true,
            sim_secs,
        ),
        run_cell(
            "upcall_flood_fire_forget",
            CrashRecoveryAttack::UpcallFlood,
            false,
            true,
            sim_secs,
        ),
        run_cell(
            "upcall_flood_reliable",
            CrashRecoveryAttack::UpcallFlood,
            true,
            true,
            sim_secs,
        ),
    ];
    let baseline_pps = rows[0].victim_pps;
    for r in &rows {
        println!(
            "{:>26} {:>12.0} {:>10.3} {:>8} {:>10} {:>9} {:>8} {:>10}",
            r.label,
            r.victim_pps,
            r.victim_pps / baseline_pps,
            r.wrong_verdicts,
            r.faults.recovery_ticks,
            r.faults.channel.retries,
            r.faults.channel.reconcile_pushes,
            r.faults.fault_events(),
        );
    }

    let mut report = Report::new("fault_matrix", "crash_recovery").params(
        Fields::new()
            .u("sim_secs", sim_secs)
            .u("crash_at_secs", sim_secs / 3)
            .u("down_for_ms", defaults.down_for.as_nanos() / 1_000_000)
            .u(
                "flap_period_ms",
                defaults.flap_period.as_nanos() / 1_000_000,
            )
            .zu("clients", defaults.clients)
            .f("victim_pps_offered", defaults.victim_pps, 0)
            .f("prober_pps", defaults.prober_pps, 0)
            .f("channel_drop_p", 0.05, 2)
            .f("channel_dup_p", 0.05, 2),
    );
    for r in &rows {
        let f = &r.faults;
        report.row(
            Fields::new()
                .s("cell", r.label)
                .s("attack", r.attack.name())
                .b("reliable", r.reliable)
                .b("crash", r.crash)
                .u("victim_offered", r.victim_offered)
                .u("victim_delivered", r.victim_delivered)
                .f("victim_pps", r.victim_pps, 1)
                .f("retained_vs_baseline", r.victim_pps / baseline_pps, 4)
                .u("wrong_verdicts", r.wrong_verdicts)
                .u("crashes", f.crashes)
                .u("acls_lost", f.acls_lost)
                .u("flows_lost", f.flows_lost)
                .u("recovery_ticks", f.recovery_ticks)
                .u("fault_events", f.fault_events())
                .u("channel_dropped", f.channel.dropped)
                .u("channel_duplicated", f.channel.duplicated)
                .u("retries", f.channel.retries)
                .u("gave_up", f.channel.gave_up)
                .u("dup_suppressed", f.channel.dup_suppressed)
                .u("lost_to_downtime", f.channel.lost_to_downtime)
                .u("reconcile_pushes", f.channel.reconcile_pushes),
        );
    }
    let out = report
        .write("BENCH_fault.json", "PI_BENCH_FAULT_OUT")
        .expect("write report");
    println!("\nwrote {}", out.display());

    // Keep the bench honest about its own claims.
    assert_eq!(
        rows[0].wrong_verdicts, 0,
        "healthy run must deny the prober"
    );
    for r in &rows[1..] {
        assert_eq!(r.faults.crashes, 1, "{}: the crash must fire", r.label);
        assert!(r.faults.acls_lost >= 2, "{}: crash wipes the ACLs", r.label);
        if r.reliable {
            // At-least-once + reconciliation: convergence is bounded.
            assert!(
                r.faults.recovery_ticks > 0 && r.faults.recovery_ticks <= 2_000,
                "{}: convergence must be bounded, got {} ticks",
                r.label,
                r.faults.recovery_ticks
            );
        } else {
            // Fire-and-forget: the deny rule is gone for good — wrong
            // verdicts accumulate for the rest of the run, or (flood)
            // capacity collapses.
            assert!(
                r.wrong_verdicts > 0 || r.victim_pps <= 0.4 * baseline_pps,
                "{}: the unprotected crash must leave damage",
                r.label
            );
            assert_eq!(
                r.faults.recovery_ticks, 0,
                "{}: nothing reconciles",
                r.label
            );
        }
    }
    // The headline pair: the flap riding the recovery window. Without
    // the reliable layer the verdict hole stays open; with it the hole
    // closes and the victim's capacity holds.
    let (off, on) = (&rows[1], &rows[2]);
    assert!(off.wrong_verdicts > 0, "flap/fire-forget: standing hole");
    assert!(
        on.wrong_verdicts * 5 < off.wrong_verdicts,
        "flap/reliable: reconciliation must close most of the verdict hole \
         ({} vs {})",
        on.wrong_verdicts,
        off.wrong_verdicts
    );
    assert!(
        on.victim_pps >= 0.9 * baseline_pps,
        "flap/reliable: capacity must hold through recovery ({:.0} vs {baseline_pps:.0})",
        on.victim_pps
    );
    // The flood's capacity collapse is delivery-independent — restoring
    // it is the defense controller's job, not the control plane's. The
    // reliable row must simply not be *worse*.
    assert!(
        rows[4].victim_pps >= 0.95 * rows[3].victim_pps,
        "flood/reliable must not worsen capacity"
    );
}
