//! `trace_forensics` — the traced policy-flap attack, end to end.
//!
//! Runs the single-node policy-churn scenario with the flap attack and
//! the adaptive defense, with structured tracing enabled, and then
//! walks the merged trace to prove the **causal chain** the tracing
//! layer exists to expose:
//!
//! 1. each of the attacker's `PolicyUpdate` events carries a fresh
//!    causality id;
//! 2. the `CacheFlush` it triggers carries the *same* id;
//! 3. the rebuild storm that follows — `BatchWindow` upcall bursts and
//!    `MegaflowChurn` — is attributed to that id (the tracer latches
//!    the most recent flush's cause);
//! 4. the `PolicyChurn` detection that eventually fires carries a flap
//!    update's id: the defense can name the update that caused the
//!    collapse it is mitigating.
//!
//! The Chrome trace-event export is written to
//! `results/trace_policy_flap.json` (loadable in Perfetto /
//! `chrome://tracing`; validated here with the dependency-free JSON
//! checker) and the Prometheus-style snapshot to
//! `results/trace_policy_flap.prom`. CI runs this binary: a tree where
//! the causal chain breaks — updates stop flushing, rebuilds lose
//! attribution, or the detector goes silent — fails the build.
//!
//! `--smoke` shortens the run; every assertion still holds.

use pi_core::SimTime;
use pi_detect::ControllerConfig;
use pi_sim::{policy_churn_scenario, PolicyChurnParams, TraceConfig, TraceEventKind};
use pi_trace::{chrome_trace_json, prometheus_snapshot, validate_json, CauseId};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let sim_secs: u64 = if smoke { 6 } else { 12 };
    let params = PolicyChurnParams {
        duration: SimTime::from_secs(sim_secs),
        attack_start: SimTime::from_secs(2),
        defense: Some(ControllerConfig::default()),
        ..Default::default()
    };
    let (mut sim, handles) = policy_churn_scenario(&params);
    sim.set_trace(TraceConfig::enabled());
    let report = sim.run();
    let trace = &report.trace;
    assert!(!trace.is_empty(), "enabled tracing must record events");
    assert_eq!(trace.dropped, 0, "ring must hold the whole run");

    println!(
        "trace_forensics: {} simulated seconds, {} events ({} dropped)",
        sim_secs,
        trace.events.len(),
        trace.dropped
    );

    // 1. The attacker's flap updates: ACL installs (op 0) that arrive
    //    after attack_start and flushed cached state. Each must carry a
    //    real causality id.
    let attack_ns = params.attack_start.as_nanos();
    let mut flap_causes: Vec<CauseId> = Vec::new();
    let mut flushes_by_cause = 0usize;
    let mut attributed_windows = 0usize;
    let mut churn_detections: Vec<CauseId> = Vec::new();
    for ev in &trace.events {
        match ev.kind {
            TraceEventKind::PolicyUpdate {
                op: 0,
                flushed,
                applied: true,
                ..
            } if ev.at_ns >= attack_ns && flushed > 0 => {
                assert!(ev.cause.is_some(), "flap update without a causality id");
                assert_eq!(
                    ev.cause.host(),
                    Some(handles.node as u32),
                    "cause id must name the updated host"
                );
                flap_causes.push(ev.cause);
            }
            TraceEventKind::CacheFlush { .. } if flap_causes.contains(&ev.cause) => {
                flushes_by_cause += 1;
            }
            TraceEventKind::BatchWindow { upcalls, .. }
                if upcalls > 0 && flap_causes.contains(&ev.cause) =>
            {
                attributed_windows += 1;
            }
            TraceEventKind::MegaflowChurn { .. } if flap_causes.contains(&ev.cause) => {
                attributed_windows += 1;
            }
            // Signal code 5 = PolicyChurn (index into `Signal::ALL`).
            TraceEventKind::Detection { signal: 5, .. } => {
                churn_detections.push(ev.cause);
            }
            _ => {}
        }
    }

    // 2–4. The chain, link by link.
    assert!(
        flap_causes.len() >= 10,
        "expected a train of flap updates, got {}",
        flap_causes.len()
    );
    assert!(
        flushes_by_cause >= flap_causes.len(),
        "every flap update must flush under its own cause id \
         ({flushes_by_cause} flushes for {} updates)",
        flap_causes.len()
    );
    assert!(
        attributed_windows > 0,
        "the rebuild storm must be attributed to flap causes"
    );
    assert!(
        !churn_detections.is_empty(),
        "the PolicyChurn detector must fire on the traced flap"
    );
    assert!(
        churn_detections.iter().any(|c| flap_causes.contains(c)),
        "a PolicyChurn detection must carry a flap update's cause id"
    );
    println!(
        "causal chain: {} flap updates -> {} flushes -> {} attributed rebuild windows -> {} PolicyChurn detections",
        flap_causes.len(),
        flushes_by_cause,
        attributed_windows,
        churn_detections.len()
    );

    // Exports: Chrome trace-event JSON (must parse) + Prometheus text.
    let chrome = chrome_trace_json(trace);
    validate_json(&chrome).expect("chrome trace export must be valid JSON");
    let dir = pi_bench::results_dir().expect("results dir");
    let json_path = dir.join("trace_policy_flap.json");
    std::fs::write(&json_path, &chrome).expect("write chrome trace");
    let prom_path = dir.join("trace_policy_flap.prom");
    std::fs::write(&prom_path, prometheus_snapshot(trace)).expect("write prometheus snapshot");
    println!(
        "wrote {} ({} bytes) and {}",
        json_path.display(),
        chrome.len(),
        prom_path.display()
    );
}
