//! `detection_roc` — the closed-loop defense, quantified.
//!
//! Runs the `adaptive_defense` scenario (benign churn from t = 0, an
//! ACL-injection `upcall_flood` onset at `attack_start`, victim
//! connection churn from the onset) under five defenses:
//!
//! * `none` — the starvation baseline;
//! * `static_fair_share` — the per-port quota configured before the
//!   run (the always-on mitigation the ablation bench studies);
//! * `adaptive` — the [`pi_detect::DefenseController`] with default
//!   detector tuning;
//! * `adaptive_tight` / `adaptive_loose` — the same loop re-tuned
//!   along the ROC trade-off. A step attack this loud saturates any
//!   threshold magnitude, so the *reaction* axis is what actually
//!   moves: tight halves the detector floors **and** escalates on the
//!   first alarming sample (`confirm_samples = 1` — fastest
//!   mitigation, most exposed to single-sample benign blips); loose
//!   doubles the floors and demands four consecutive alarms (slowest
//!   mitigation, most robust to blips).
//!
//! Per row: time-to-detect and time-to-mitigate (ms after onset),
//! benign-phase detections/activations (the false-positive axis),
//! victim recovery (mean delivered pps over the final window vs the
//! offered rate), and the report-exposed top offender. The scenario is
//! fully deterministic — one run per row.
//!
//! Output: `BENCH_detect.json` (override with `PI_BENCH_DETECT_OUT`).
//! `--smoke` shrinks the run for CI.

use pi_bench::report::{Fields, Report};
use pi_core::SimTime;
use pi_detect::{ControllerConfig, DetectorConfig, SignalConfig};
use pi_sim::{adaptive_defense_scenario, AdaptiveDefenseParams, DefenseMode};

struct Row {
    mode: &'static str,
    time_to_detect_ms: Option<f64>,
    time_to_mitigate_ms: Option<f64>,
    benign_detections: u64,
    benign_activations: u64,
    activations: u64,
    victim_offered: u64,
    victim_delivered: u64,
    victim_upcall_drops: u64,
    recovery_pps: f64,
    recovery_ratio: f64,
    top_offender_masks: usize,
}

fn scaled(cfg: SignalConfig, f: f64) -> SignalConfig {
    SignalConfig {
        abs_min: cfg.abs_min * f,
        dev_floor: cfg.dev_floor * f,
        ..cfg
    }
}

fn detector_scaled(f: f64) -> DetectorConfig {
    let d = DetectorConfig::default();
    DetectorConfig {
        probe_depth: scaled(d.probe_depth, f),
        mask_growth: scaled(d.mask_growth, f),
        upcall_backlog: scaled(d.upcall_backlog, f),
        upcall_drops: scaled(d.upcall_drops, f),
        emc_thrash: scaled(d.emc_thrash, f),
        ..d
    }
}

fn run_mode(mode: &'static str, sim_secs: u64, attack_secs: u64, window_secs: u64) -> Row {
    let defense = match mode {
        "none" => DefenseMode::Undefended,
        "static_fair_share" => DefenseMode::StaticFairShare(8),
        "adaptive" => DefenseMode::adaptive(ControllerConfig::default()),
        "adaptive_tight" => DefenseMode::adaptive(ControllerConfig {
            detector: detector_scaled(0.5),
            confirm_samples: 1,
            ..ControllerConfig::default()
        }),
        "adaptive_loose" => DefenseMode::adaptive(ControllerConfig {
            detector: detector_scaled(2.0),
            confirm_samples: 4,
            ..ControllerConfig::default()
        }),
        other => unreachable!("unknown mode {other}"),
    };
    let params = AdaptiveDefenseParams {
        duration: SimTime::from_secs(sim_secs),
        attack_start: SimTime::from_secs(attack_secs),
        defense,
        ..Default::default()
    };
    let (sim, handles) = adaptive_defense_scenario(&params);
    let report = sim.run();
    let victim = &report.source_totals[handles.victim_source];
    let attack_start = params.attack_start;
    let ms_after_onset = |t: SimTime| (t.as_nanos() as f64 - attack_start.as_nanos() as f64) / 1e6;
    let (detect, mitigate, benign_detections, benign_activations, activations) =
        match &report.defense[handles.node] {
            Some(d) => (
                d.first_detection().map(ms_after_onset),
                d.first_mitigation().map(ms_after_onset),
                d.detections.iter().filter(|e| e.at < attack_start).count() as u64,
                d.timeline
                    .iter()
                    .filter(|t| t.at < attack_start && t.to == pi_detect::DefenseState::Mitigating)
                    .count() as u64,
                d.activations,
            ),
            None => (None, None, 0, 0, 0),
        };
    // Recovery: mean victim delivered pps over the final window,
    // against the offered churn rate.
    let end = params.duration;
    let from = end - SimTime::from_secs(window_secs);
    let recovery_bps = report.throughput_bps[handles.victim_source]
        .mean_between(from, end + SimTime::from_nanos(1));
    let recovery_pps = recovery_bps / (64.0 * 8.0);
    let top_offender_masks = report.attribution[handles.node]
        .first()
        .map(|a| a.masks)
        .unwrap_or(0);
    Row {
        mode,
        time_to_detect_ms: detect,
        time_to_mitigate_ms: mitigate,
        benign_detections,
        benign_activations,
        activations,
        victim_offered: victim.generated,
        victim_delivered: victim.delivered,
        victim_upcall_drops: victim.dropped_upcall,
        recovery_pps,
        recovery_ratio: recovery_pps / params.victim_pps,
        top_offender_masks,
    }
}

fn fmt_opt(v: Option<f64>) -> String {
    v.map(|v| format!("{v:.0}"))
        .unwrap_or_else(|| "null".into())
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (sim_secs, attack_secs, window_secs) = if smoke { (4, 2, 1) } else { (12, 4, 3) };
    println!(
        "detection_roc: {sim_secs} simulated seconds per mode, onset at {attack_secs} s, \
         recovery window {window_secs} s"
    );
    println!(
        "{:>18} {:>10} {:>12} {:>11} {:>10} {:>13} {:>15}",
        "mode", "detect_ms", "mitigate_ms", "benign_fp", "recovery", "recovery_pps", "victim_drops"
    );
    let modes = [
        "none",
        "static_fair_share",
        "adaptive",
        "adaptive_tight",
        "adaptive_loose",
    ];
    let rows: Vec<Row> = modes
        .into_iter()
        .map(|m| run_mode(m, sim_secs, attack_secs, window_secs))
        .collect();
    for r in &rows {
        println!(
            "{:>18} {:>10} {:>12} {:>11} {:>10.3} {:>13.0} {:>15}",
            r.mode,
            fmt_opt(r.time_to_detect_ms),
            fmt_opt(r.time_to_mitigate_ms),
            r.benign_activations,
            r.recovery_ratio,
            r.recovery_pps,
            r.victim_upcall_drops
        );
    }

    let defaults = AdaptiveDefenseParams::default();
    let mut report = Report::new("detection_roc", "adaptive_defense").params(
        Fields::new()
            .u("sim_secs", sim_secs)
            .u("attack_start_secs", attack_secs)
            .u("recovery_window_secs", window_secs)
            .f("victim_pps_offered", defaults.victim_pps, 0)
            .f("benign_pps", defaults.benign_pps, 0)
            .f("attack_bandwidth_bps", defaults.attack_bandwidth_bps, 0),
    );
    for r in &rows {
        report.row(
            Fields::new()
                .s("mode", r.mode)
                .opt_f("time_to_detect_ms", r.time_to_detect_ms, 0)
                .opt_f("time_to_mitigate_ms", r.time_to_mitigate_ms, 0)
                .u("benign_detections", r.benign_detections)
                .u("benign_activations", r.benign_activations)
                .u("activations", r.activations)
                .u("victim_offered", r.victim_offered)
                .u("victim_delivered", r.victim_delivered)
                .u("victim_upcall_drops", r.victim_upcall_drops)
                .f("recovery_pps", r.recovery_pps, 1)
                .f("recovery_ratio", r.recovery_ratio, 4)
                .zu("top_offender_masks", r.top_offender_masks),
        );
    }
    let out = report
        .write("BENCH_detect.json", "PI_BENCH_DETECT_OUT")
        .expect("write report");
    println!("\nwrote {}", out.display());
}
