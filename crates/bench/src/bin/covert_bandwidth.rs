//! E6 — attack economics: the covert bandwidth needed to sustain the
//! mask population (§2: "low-bandwidth (1–2 Mbps) covert packet
//! stream").
//!
//! Sweeps the covert budget, runs the populate+refresh schedule (scan
//! disabled, to isolate sustenance from amplification) against a live
//! switch with a 1 s revalidator and 10 s idle timeout, and reports how
//! many of the 512 masks stay alive. The analytic minimum
//! (`entries / idle_timeout` packets/s) is printed alongside.

use pi_attack::{min_refresh_bandwidth_bps, AttackSchedule, AttackSpec, CovertSequence};
use pi_bench::{compile_spec, results_dir};
use pi_cms::PolicyDialect;
use pi_core::SimTime;
use pi_datapath::{DpConfig, VSwitch};
use pi_metrics::CsvTable;
use pi_traffic::TrafficSource;

fn steady_state_masks(bandwidth_bps: f64, seconds: u64) -> (usize, f64) {
    let pod_ip = u32::from_be_bytes([10, 1, 0, 66]);
    let spec = AttackSpec::masks_512(PolicyDialect::Kubernetes);
    let mut sw = VSwitch::new(DpConfig::default());
    sw.attach_pod(pod_ip, 1);
    sw.install_acl(pod_ip, compile_spec(&spec));
    let mut schedule = AttackSchedule::new(
        CovertSequence::new(spec.build_target(pod_ip)),
        bandwidth_bps,
        SimTime::ZERO,
    )
    .without_scan();
    let mut out = Vec::new();
    let mut bytes = 0usize;
    for ms in 0..seconds * 1000 {
        let now = SimTime::from_millis(ms);
        out.clear();
        schedule.generate(now, SimTime::from_millis(ms + 1), &mut out);
        for p in &out {
            bytes += p.bytes;
            sw.process(&p.key, now);
        }
        sw.revalidate(now);
    }
    (sw.mask_count(), bytes as f64 * 8.0 / seconds as f64)
}

fn main() {
    let spec = AttackSpec::masks_512(PolicyDialect::Kubernetes);
    let seq = CovertSequence::new(spec.build_target(1));
    let analytic = min_refresh_bandwidth_bps(seq.packet_count(), SimTime::from_secs(10), 64);
    println!(
        "target: keep all 512 masks ({} entries) alive; idle timeout 10 s, 64-B frames",
        seq.packet_count()
    );
    println!(
        "analytic refresh minimum: {:.0} b/s ({:.3} Mb/s)\n",
        analytic,
        analytic / 1e6
    );

    let mut csv = CsvTable::new(&["budget_mbps", "offered_mbps", "masks_alive", "sustained"]);
    println!(
        "{:>12} {:>13} {:>12} {:>10}",
        "budget Mb/s", "offered Mb/s", "masks alive", "sustained"
    );
    // The schedule refreshes each entry every 5 s (half the idle
    // window): 561 × 512 bits / 5 s ≈ 57 kb/s of steady demand. Sweep
    // across that threshold.
    for budget in [
        0.01e6, 0.02e6, 0.03e6, 0.04e6, 0.05e6, 0.06e6, 0.1e6, 0.5e6, 2.0e6,
    ] {
        let (masks, offered) = steady_state_masks(budget, 40);
        let sustained = masks == 512;
        println!(
            "{:>12.2} {:>13.3} {:>12} {:>10}",
            budget / 1e6,
            offered / 1e6,
            masks,
            if sustained { "yes" } else { "no" }
        );
        csv.push_row(&[
            format!("{:.2}", budget / 1e6),
            format!("{:.3}", offered / 1e6),
            masks.to_string(),
            sustained.to_string(),
        ]);
    }
    println!(
        "\nreading: a few hundred kb/s sustains the full 512-mask population — \
         comfortably inside the paper's 1–2 Mb/s budget (which also funds the scan stream)."
    );
    let path = results_dir()
        .expect("results dir")
        .join("covert_bandwidth.csv");
    csv.write_csv(&path).expect("write csv");
    println!("CSV written to {}", path.display());
}
