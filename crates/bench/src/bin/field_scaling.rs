//! E8 — the per-field mask multiplication law.
//!
//! §2: "our technique can be applied to an arbitrary number of protocol
//! fields, each resulting in a significant increase in the number of MF
//! entries and masks". Prediction: masks = ∏ per-field prefix widths.
//! This sweep validates the law across 1–3 fields and assorted prefix
//! lengths by comparing the analytical count, the table-level
//! prediction, and the masks actually materialised in a live datapath.

use pi_attack::{predicted_mask_count, AttackSpec, CovertSequence};
use pi_bench::{compile_spec, results_dir};
use pi_cms::{Cidr, PolicyDialect};
use pi_core::SimTime;
use pi_datapath::{DpConfig, VSwitch};
use pi_metrics::CsvTable;

fn measured_masks(spec: &AttackSpec) -> usize {
    let pod_ip = u32::from_be_bytes([10, 1, 0, 66]);
    let mut sw = VSwitch::new(DpConfig::default());
    sw.attach_pod(pod_ip, 1);
    sw.install_acl(pod_ip, compile_spec(spec));
    let seq = CovertSequence::new(spec.build_target(pod_ip));
    let mut t = SimTime::from_millis(1);
    for p in seq.populate_packets() {
        sw.process(&p, t);
        t += SimTime::from_micros(50);
    }
    sw.mask_count()
}

fn main() {
    println!("mask multiplication across fields: masks = ∏ per-field widths\n");
    let mut csv = CsvTable::new(&[
        "fields",
        "ip_len",
        "dst_port",
        "src_port",
        "analytic",
        "table_prediction",
        "measured",
    ]);
    println!(
        "{:>22} {:>7} {:>9} {:>9} {:>9} {:>11} {:>9}",
        "fields", "ip_len", "dst_port", "src_port", "analytic", "prediction", "measured"
    );

    let mut cases: Vec<(String, AttackSpec)> = Vec::new();
    for len in [4u8, 8, 16, 24, 32] {
        cases.push((
            format!("ip/{len}"),
            AttackSpec {
                dialect: PolicyDialect::Kubernetes,
                allow_src: Cidr::new(0xcb00_7107, len).unwrap(),
                dst_port: None,
                src_port: None,
            },
        ));
    }
    for len in [8u8, 16, 32] {
        cases.push((
            format!("ip/{len} × dport"),
            AttackSpec {
                dialect: PolicyDialect::OpenStack,
                allow_src: Cidr::new(0xcb00_7107, len).unwrap(),
                dst_port: Some(443),
                src_port: None,
            },
        ));
    }
    for len in [8u8, 32] {
        cases.push((
            format!("ip/{len} × dport × sport"),
            AttackSpec {
                dialect: PolicyDialect::Calico,
                allow_src: Cidr::new(0xcb00_7107, len).unwrap(),
                dst_port: Some(443),
                src_port: Some(4444),
            },
        ));
    }

    let trie_fields = DpConfig::default().trie_fields;
    for (label, spec) in &cases {
        let analytic = spec.predicted_masks();
        let prediction = predicted_mask_count(&compile_spec(spec), &trie_fields);
        let measured = measured_masks(spec);
        println!(
            "{:>22} {:>7} {:>9} {:>9} {:>9} {:>11} {:>9}",
            label,
            spec.allow_src.len,
            spec.dst_port.map(|p| p.to_string()).unwrap_or("—".into()),
            spec.src_port.map(|p| p.to_string()).unwrap_or("—".into()),
            analytic,
            prediction,
            measured
        );
        assert_eq!(analytic, prediction, "model mismatch for {label}");
        assert_eq!(measured as u64, analytic, "datapath mismatch for {label}");
        csv.push_row(&[
            label.clone(),
            spec.allow_src.len.to_string(),
            spec.dst_port.map(|p| p.to_string()).unwrap_or_default(),
            spec.src_port.map(|p| p.to_string()).unwrap_or_default(),
            analytic.to_string(),
            prediction.to_string(),
            measured.to_string(),
        ]);
    }
    println!("\nall three columns agree on every row: the ∏-width law holds.");
    let path = results_dir()
        .expect("results dir")
        .join("field_scaling.csv");
    csv.write_csv(&path).expect("write csv");
    println!("CSV written to {}", path.display());
}
