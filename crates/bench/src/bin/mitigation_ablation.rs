//! E7 — the demo-discussion defenses, quantified on three axes:
//!
//! 1. **attacked capacity** — fast-path pps under the covert probe
//!    workload (the amplification axis);
//! 2. **late-victim probes** — subtable walk length for a hot flow that
//!    starts *after* the masks exist (the victim-experience axis);
//! 3. **admission verdict** — whether the policy installs at all.

use pi_attack::{AttackSpec, CovertSequence};
use pi_bench::{compile_spec, results_dir};
use pi_classifier::Action;
use pi_cms::PolicyDialect;
use pi_core::{Field, FlowKey, SimTime};
use pi_datapath::{DpConfig, VSwitch};
use pi_detect::{ControllerConfig, DefenseController, DefenseState};
use pi_metrics::CsvTable;
use pi_mitigation::{hit_sort_config, staged_config, CachelessSwitch, CompiledAcl, MaskBudget};
use pi_sim::measure_capacity;

const CPU: u64 = 1_200_000_000;
const TRIE_FIELDS: [Field; 4] = [Field::IpSrc, Field::IpDst, Field::TpSrc, Field::TpDst];

/// Probe walk length for a hot victim flow arriving after the attack.
fn late_victim_probes(dp: DpConfig, spec: &AttackSpec) -> usize {
    let victim_ip = u32::from_be_bytes([10, 1, 0, 10]);
    let attacker_ip = u32::from_be_bytes([10, 1, 0, 66]);
    let mut sw = VSwitch::new(DpConfig {
        emc_enabled: false, // isolate the megaflow walk
        ..dp
    });
    sw.attach_pod(victim_ip, 1);
    sw.attach_pod(attacker_ip, 2);
    sw.install_acl(attacker_ip, compile_spec(spec));
    let seq = CovertSequence::new(spec.build_target(attacker_ip));
    for (i, p) in seq.populate_packets().enumerate() {
        sw.process(&p, SimTime::from_millis(2 + i as u64));
    }
    let mut last = 0;
    for sport in 0..5_000u16 {
        let mut k = FlowKey::tcp([10, 0, 0, 10], [10, 1, 0, 10], 40_000, 5201);
        k.tp_src = 10_000 + (sport % 50);
        last = sw.process(&k, SimTime::from_secs(40)).path.probes();
    }
    last
}

/// The closed-loop rows: the policy installs (admission passes), the
/// covert populate runs, and a [`DefenseController`] sampling every 64
/// packets detects the mask inflation and actuates at runtime. Returns
/// (masks after mitigation, attacked capacity pps, late-victim probes,
/// detected-at-mask-count).
fn adaptive_ablation(
    cfg: ControllerConfig,
    spec: &AttackSpec,
    cpu: u64,
) -> (usize, f64, usize, usize) {
    let victim_ip = u32::from_be_bytes([10, 1, 0, 10]);
    // The *late* victim: a pod untouched until after the attack, so
    // its megaflow (hence its subtable-walk position) is created under
    // whatever masks survive the mitigation — the same semantics as
    // `late_victim_probes` for the static rows.
    let late_victim_ip = u32::from_be_bytes([10, 1, 0, 11]);
    let attacker_ip = u32::from_be_bytes([10, 1, 0, 66]);
    let mut sw = VSwitch::new(DpConfig::default());
    sw.attach_pod(victim_ip, 1);
    sw.attach_pod(late_victim_ip, 3);
    sw.attach_pod(attacker_ip, 2);
    sw.install_acl(attacker_ip, compile_spec(spec));
    let mut ctl = DefenseController::new(cfg);
    let seq = CovertSequence::new(spec.build_target(attacker_ip));
    let mut detected_at_masks = 0;
    let mut t = SimTime::from_secs(1);
    // Pre-attack quiet phase: the detector baselines learn an idle
    // switch (the sim scenario's benign phase, condensed). No traffic:
    // warming any flow here would pre-create its ip_dst-only subtable
    // and falsify the late-victim walk measured below.
    for _ in 0..6 {
        ctl.step(&mut sw, t);
        t += SimTime::from_millis(100);
    }
    t = SimTime::from_secs(2);
    for (i, p) in seq.populate_packets().enumerate() {
        sw.process(&p, t);
        if i % 64 == 63 {
            ctl.step(&mut sw, t);
            if detected_at_masks == 0 && ctl.report().first_detection().is_some() {
                detected_at_masks = sw.mask_count();
            }
        }
        t += SimTime::from_millis(1);
    }
    // Settle the control loop (confirm → mitigate) on quiet samples.
    for _ in 0..4 {
        ctl.step(&mut sw, t);
        t += SimTime::from_millis(100);
    }
    // Post-quarantine the signals quiet down, so the loop may already
    // be cooling — but it must never have reverted to Idle (that would
    // release the quarantine before we measure).
    assert!(
        matches!(
            ctl.state(),
            DefenseState::Mitigating | DefenseState::Cooldown
        ),
        "loop must still hold its mitigations, state = {:?}",
        ctl.state()
    );
    // Attacked capacity: the covert probe workload against the
    // mitigated switch.
    sw.process(&seq.scan_packet(0), t);
    let before = sw.stats();
    let samples = 2_000u64;
    for n in 0..samples {
        sw.process(&seq.scan_packet(1 + n), t);
    }
    let after = sw.stats();
    let avg = (after.cycles - before.cycles) as f64 / samples as f64;
    // Late victim experience under the mitigated switch: every packet
    // carries a fresh source port so it can never be an EMC hit — the
    // last one reports the real megaflow-walk length to the late
    // victim's (post-attack) subtable, comparable with the
    // EMC-disabled static rows.
    let mut probes = 0;
    for sport in 0..5_000u16 {
        let k = FlowKey::tcp([10, 0, 0, 10], [10, 1, 0, 11], 10_000 + sport, 5201);
        probes = sw.process(&k, t).path.probes();
    }
    (sw.mask_count(), cpu as f64 / avg, probes, detected_at_masks)
}

fn main() {
    let spec = AttackSpec::masks_512(PolicyDialect::Kubernetes);
    println!("defense ablation vs the 512-mask Kubernetes injection\n");
    let mut csv = CsvTable::new(&[
        "defense",
        "masks",
        "attacked_capacity_pps",
        "capacity_vs_none",
        "late_victim_probes",
        "policy_admitted",
    ]);

    // None.
    let (unattacked, none_cap) = measure_capacity(DpConfig::default(), CPU, &spec, 2_000);
    let none_probes = late_victim_probes(DpConfig::default(), &spec);
    csv.push_row(&[
        "none".into(),
        none_cap.masks.to_string(),
        format!("{:.0}", none_cap.capacity_pps),
        "1.00".into(),
        none_probes.to_string(),
        "yes".into(),
    ]);

    // Staged lookup.
    let (_, staged_cap) = measure_capacity(staged_config(DpConfig::default()), CPU, &spec, 2_000);
    let staged_probes = late_victim_probes(staged_config(DpConfig::default()), &spec);
    csv.push_row(&[
        "staged lookup".into(),
        staged_cap.masks.to_string(),
        format!("{:.0}", staged_cap.capacity_pps),
        format!("{:.2}", staged_cap.capacity_pps / none_cap.capacity_pps),
        staged_probes.to_string(),
        "yes".into(),
    ]);

    // Hit-count sorting.
    let (_, sort_cap) = measure_capacity(hit_sort_config(DpConfig::default()), CPU, &spec, 5_000);
    let sort_probes = late_victim_probes(hit_sort_config(DpConfig::default()), &spec);
    csv.push_row(&[
        "hit-count sorting".into(),
        sort_cap.masks.to_string(),
        format!("{:.0}", sort_cap.capacity_pps),
        format!("{:.2}", sort_cap.capacity_pps / none_cap.capacity_pps),
        sort_probes.to_string(),
        "yes".into(),
    ]);

    // Mask budget (admission control).
    let admitted = MaskBudget::default()
        .check(&compile_spec(&spec), &TRIE_FIELDS)
        .admitted();
    // Policy never installs, so the datapath stays at its unattacked
    // capacity and a late victim walks its own subtable only.
    csv.push_row(&[
        "mask budget (256)".into(),
        unattacked.masks.to_string(),
        format!("{:.0}", unattacked.capacity_pps),
        format!("{:.2}", unattacked.capacity_pps / none_cap.capacity_pps),
        "1".into(),
        if admitted {
            "yes (BUG)"
        } else {
            "no — rejected"
        }
        .into(),
    ]);

    // Adaptive rows: the same detector loop, one actuator each — so
    // the static rows above have a direct closed-loop counterpart.
    let (q_masks, q_cap, q_probes, q_detected) = adaptive_ablation(
        ControllerConfig {
            fair_share_quota: None,
            enable_staged_lookup: false,
            quarantine_offenders: true,
            ..ControllerConfig::default()
        },
        &spec,
        CPU,
    );
    csv.push_row(&[
        "adaptive: detect+quarantine".into(),
        q_masks.to_string(),
        format!("{q_cap:.0}"),
        format!("{:.2}", q_cap / none_cap.capacity_pps),
        q_probes.to_string(),
        format!("yes — detected at {q_detected} masks"),
    ]);
    let (s_masks, s_cap, s_probes, _) = adaptive_ablation(
        ControllerConfig {
            fair_share_quota: None,
            enable_staged_lookup: true,
            quarantine_offenders: false,
            ..ControllerConfig::default()
        },
        &spec,
        CPU,
    );
    csv.push_row(&[
        "adaptive: detect+staged".into(),
        s_masks.to_string(),
        format!("{s_cap:.0}"),
        format!("{:.2}", s_cap / none_cap.capacity_pps),
        s_probes.to_string(),
        "yes — staged enabled live".into(),
    ]);

    // Cache-less compiled datapath.
    let mut cless = CachelessSwitch::new();
    let pod_ip = u32::from_be_bytes([10, 1, 0, 66]);
    cless.attach_pod(
        pod_ip,
        1,
        CompiledAcl::compile(&compile_spec(&spec), Action::Deny),
    );
    let seq = CovertSequence::new(spec.build_target(pod_ip));
    for p in seq.populate_packets() {
        cless.process(&p);
    }
    let (p0, c0) = cless.totals();
    for n in 0..20_000 {
        cless.process(&seq.scan_packet(n));
    }
    let (p1, c1) = cless.totals();
    let avg = (c1 - c0) as f64 / (p1 - p0) as f64;
    let cless_pps = CPU as f64 / avg;
    csv.push_row(&[
        "cache-less compiled".into(),
        "0".into(),
        format!("{cless_pps:.0}"),
        format!("{:.0}", cless_pps / none_cap.capacity_pps),
        "0".into(),
        "yes".into(),
    ]);

    println!("{}", csv.to_aligned_text());
    println!(
        "reading:\n\
         • staged lookup cuts the per-probe constant (≈3×) but the walk stays O(masks);\n\
         • hit-count sorting rescues hot victims (probes → 1) and even the probe\n\
           workload itself, but the covert miss path still walks everything;\n\
         • the mask budget refuses the policy outright (trade-off: caps legitimate\n\
           fine-grained policies too);\n\
         • adaptive detect+quarantine admits the policy, catches the inflation\n\
           mid-populate, evicts the offender's megaflows and refuses its misses —\n\
           close to unattacked capacity without pre-judging any policy;\n\
         • adaptive detect+staged is the same loop flipping the staged-lookup knob\n\
           at runtime — it lands on the static staged row's numbers;\n\
         • the compiled datapath is structurally immune — cost is policy-bounded."
    );
    let path = results_dir()
        .expect("results dir")
        .join("mitigation_ablation.csv");
    csv.write_csv(&path).expect("write csv");
    println!("CSV written to {}", path.display());
}
