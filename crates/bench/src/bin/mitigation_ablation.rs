//! E7 — the demo-discussion defenses, quantified on three axes:
//!
//! 1. **attacked capacity** — fast-path pps under the covert probe
//!    workload (the amplification axis);
//! 2. **late-victim probes** — subtable walk length for a hot flow that
//!    starts *after* the masks exist (the victim-experience axis);
//! 3. **admission verdict** — whether the policy installs at all.

use pi_attack::{AttackSpec, CovertSequence};
use pi_bench::{compile_spec, results_dir};
use pi_classifier::Action;
use pi_cms::PolicyDialect;
use pi_core::{Field, FlowKey, SimTime};
use pi_datapath::{DpConfig, VSwitch};
use pi_metrics::CsvTable;
use pi_mitigation::{hit_sort_config, staged_config, CachelessSwitch, CompiledAcl, MaskBudget};
use pi_sim::measure_capacity;

const CPU: u64 = 1_200_000_000;
const TRIE_FIELDS: [Field; 4] = [Field::IpSrc, Field::IpDst, Field::TpSrc, Field::TpDst];

/// Probe walk length for a hot victim flow arriving after the attack.
fn late_victim_probes(dp: DpConfig, spec: &AttackSpec) -> usize {
    let victim_ip = u32::from_be_bytes([10, 1, 0, 10]);
    let attacker_ip = u32::from_be_bytes([10, 1, 0, 66]);
    let mut sw = VSwitch::new(DpConfig {
        emc_enabled: false, // isolate the megaflow walk
        ..dp
    });
    sw.attach_pod(victim_ip, 1);
    sw.attach_pod(attacker_ip, 2);
    sw.install_acl(attacker_ip, compile_spec(spec));
    let seq = CovertSequence::new(spec.build_target(attacker_ip));
    for (i, p) in seq.populate_packets().enumerate() {
        sw.process(&p, SimTime::from_millis(2 + i as u64));
    }
    let mut last = 0;
    for sport in 0..5_000u16 {
        let mut k = FlowKey::tcp([10, 0, 0, 10], [10, 1, 0, 10], 40_000, 5201);
        k.tp_src = 10_000 + (sport % 50);
        last = sw.process(&k, SimTime::from_secs(40)).path.probes();
    }
    last
}

fn main() {
    let spec = AttackSpec::masks_512(PolicyDialect::Kubernetes);
    println!("defense ablation vs the 512-mask Kubernetes injection\n");
    let mut csv = CsvTable::new(&[
        "defense",
        "masks",
        "attacked_capacity_pps",
        "capacity_vs_none",
        "late_victim_probes",
        "policy_admitted",
    ]);

    // None.
    let (unattacked, none_cap) = measure_capacity(DpConfig::default(), CPU, &spec, 2_000);
    let none_probes = late_victim_probes(DpConfig::default(), &spec);
    csv.push_row(&[
        "none".into(),
        none_cap.masks.to_string(),
        format!("{:.0}", none_cap.capacity_pps),
        "1.00".into(),
        none_probes.to_string(),
        "yes".into(),
    ]);

    // Staged lookup.
    let (_, staged_cap) = measure_capacity(staged_config(DpConfig::default()), CPU, &spec, 2_000);
    let staged_probes = late_victim_probes(staged_config(DpConfig::default()), &spec);
    csv.push_row(&[
        "staged lookup".into(),
        staged_cap.masks.to_string(),
        format!("{:.0}", staged_cap.capacity_pps),
        format!("{:.2}", staged_cap.capacity_pps / none_cap.capacity_pps),
        staged_probes.to_string(),
        "yes".into(),
    ]);

    // Hit-count sorting.
    let (_, sort_cap) = measure_capacity(hit_sort_config(DpConfig::default()), CPU, &spec, 5_000);
    let sort_probes = late_victim_probes(hit_sort_config(DpConfig::default()), &spec);
    csv.push_row(&[
        "hit-count sorting".into(),
        sort_cap.masks.to_string(),
        format!("{:.0}", sort_cap.capacity_pps),
        format!("{:.2}", sort_cap.capacity_pps / none_cap.capacity_pps),
        sort_probes.to_string(),
        "yes".into(),
    ]);

    // Mask budget (admission control).
    let admitted = MaskBudget::default()
        .check(&compile_spec(&spec), &TRIE_FIELDS)
        .admitted();
    // Policy never installs, so the datapath stays at its unattacked
    // capacity and a late victim walks its own subtable only.
    csv.push_row(&[
        "mask budget (256)".into(),
        unattacked.masks.to_string(),
        format!("{:.0}", unattacked.capacity_pps),
        format!("{:.2}", unattacked.capacity_pps / none_cap.capacity_pps),
        "1".into(),
        if admitted {
            "yes (BUG)"
        } else {
            "no — rejected"
        }
        .into(),
    ]);

    // Cache-less compiled datapath.
    let mut cless = CachelessSwitch::new();
    let pod_ip = u32::from_be_bytes([10, 1, 0, 66]);
    cless.attach_pod(
        pod_ip,
        1,
        CompiledAcl::compile(&compile_spec(&spec), Action::Deny),
    );
    let seq = CovertSequence::new(spec.build_target(pod_ip));
    for p in seq.populate_packets() {
        cless.process(&p);
    }
    let (p0, c0) = cless.totals();
    for n in 0..20_000 {
        cless.process(&seq.scan_packet(n));
    }
    let (p1, c1) = cless.totals();
    let avg = (c1 - c0) as f64 / (p1 - p0) as f64;
    let cless_pps = CPU as f64 / avg;
    csv.push_row(&[
        "cache-less compiled".into(),
        "0".into(),
        format!("{cless_pps:.0}"),
        format!("{:.0}", cless_pps / none_cap.capacity_pps),
        "0".into(),
        "yes".into(),
    ]);

    println!("{}", csv.to_aligned_text());
    println!(
        "reading:\n\
         • staged lookup cuts the per-probe constant (≈3×) but the walk stays O(masks);\n\
         • hit-count sorting rescues hot victims (probes → 1) and even the probe\n\
           workload itself, but the covert miss path still walks everything;\n\
         • the mask budget refuses the policy outright (trade-off: caps legitimate\n\
           fine-grained policies too);\n\
         • the compiled datapath is structurally immune — cost is policy-bounded."
    );
    let path = results_dir().join("mitigation_ablation.csv");
    csv.write_csv(&path).expect("write csv");
    println!("CSV written to {}", path.display());
}
