//! `upcall_saturation` — the bounded slow path under a paced flood.
//!
//! Runs the single-node handler-saturation scenario
//! ([`pi_sim::upcall_saturation_scenario`]) in three configurations and
//! records what happens to a connection-churn victim whose every flow
//! needs a slow-path handler:
//!
//! * `inline` — the historical synchronous slow path (no queue to
//!   saturate; the baseline the bounded rows are judged against);
//! * `bounded` — the bounded pipeline with no fairness: the attacker's
//!   destination-spray flood monopolises the handler budget and the
//!   victim's upcalls tail-drop;
//! * `fair_share` — the same pipeline with the per-port flow-setup
//!   quota ([`pi_mitigation::upcall_fair_share_config`]'s knob): the
//!   victim's drop rate returns to ~0 while the flood keeps
//!   tail-dropping its own traffic.
//!
//! Per row: victim delivered pps, victim upcall-drop rate, mean install
//! latency in handler steps, and the pipeline's queue high-water mark.
//! The scenario metrics are fully deterministic, so one run per row
//! suffices (no wall-clock sampling involved).
//!
//! Output: `BENCH_upcall.json` (override with `PI_BENCH_UPCALL_OUT`).
//! `--smoke` shrinks the run to two simulated seconds for CI (the
//! victim starts at t = 1 s, so its effective window is one second).
//! Drop rates are computed over `generated`, which includes the few
//! connections still parked in the pipeline when the clock stops (see
//! `SourceTotals` — totals don't conserve at the run boundary).

use pi_bench::report::{Fields, Report};
use pi_core::SimTime;
use pi_sim::{upcall_saturation_scenario, UpcallSaturationParams};

struct Row {
    mode: &'static str,
    victim_offered: u64,
    victim_delivered: u64,
    victim_pps: f64,
    victim_upcall_drops: u64,
    victim_drop_rate: f64,
    attacker_upcall_drops: u64,
    mean_install_latency_steps: f64,
    max_queue_depth: usize,
    upcalls_handled: u64,
}

fn run_mode(mode: &'static str, sim_secs: u64) -> Row {
    let mut params = UpcallSaturationParams {
        duration: SimTime::from_secs(sim_secs),
        ..Default::default()
    };
    match mode {
        "inline" => params.inline_baseline = true,
        "bounded" => {}
        "fair_share" => params.port_quota_per_step = Some(8),
        other => unreachable!("unknown mode {other}"),
    }
    let (sim, handles) = upcall_saturation_scenario(&params);
    let report = sim.run();
    let victim = &report.source_totals[handles.victim_source];
    let up = report.upcall_stats[handles.node];
    let effective_secs = (params.duration - params.victim_start).as_secs_f64();
    Row {
        mode,
        victim_offered: victim.generated,
        victim_delivered: victim.delivered,
        victim_pps: victim.delivered as f64 / effective_secs,
        victim_upcall_drops: victim.dropped_upcall,
        victim_drop_rate: victim.dropped_upcall as f64 / victim.generated.max(1) as f64,
        attacker_upcall_drops: report.source_totals[handles.attack_source].dropped_upcall,
        mean_install_latency_steps: up.mean_wait_steps(),
        max_queue_depth: up.max_depth,
        upcalls_handled: up.handled,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let sim_secs: u64 = if smoke { 2 } else { 10 };
    println!("upcall_saturation: {sim_secs} simulated seconds per mode");
    println!(
        "{:>11} {:>14} {:>12} {:>12} {:>16} {:>18} {:>15}",
        "mode",
        "victim_offered",
        "victim_pps",
        "drop_rate",
        "victim_drops",
        "latency_steps",
        "attacker_drops"
    );
    let rows: Vec<Row> = ["inline", "bounded", "fair_share"]
        .into_iter()
        .map(|mode| run_mode(mode, sim_secs))
        .collect();
    for r in &rows {
        println!(
            "{:>11} {:>14} {:>12.0} {:>12.4} {:>16} {:>18.2} {:>15}",
            r.mode,
            r.victim_offered,
            r.victim_pps,
            r.victim_drop_rate,
            r.victim_upcall_drops,
            r.mean_install_latency_steps,
            r.attacker_upcall_drops
        );
    }

    let defaults = UpcallSaturationParams::default();
    let mut report = Report::new("upcall_saturation", "upcall_saturation").params(
        Fields::new()
            .f("victim_pps_offered", defaults.victim_pps, 0)
            .f("attack_bandwidth_bps", defaults.attack_bandwidth_bps, 0),
    );
    for r in &rows {
        report.row(
            Fields::new()
                .s("mode", r.mode)
                .u("sim_secs", sim_secs)
                .u("victim_offered", r.victim_offered)
                .u("victim_delivered", r.victim_delivered)
                .f("victim_pps", r.victim_pps, 1)
                .u("victim_upcall_drops", r.victim_upcall_drops)
                .f("victim_drop_rate", r.victim_drop_rate, 4)
                .u("attacker_upcall_drops", r.attacker_upcall_drops)
                .f(
                    "mean_install_latency_steps",
                    r.mean_install_latency_steps,
                    3,
                )
                .zu("max_queue_depth", r.max_queue_depth)
                .u("upcalls_handled", r.upcalls_handled),
        );
    }
    let out = report
        .write("BENCH_upcall.json", "PI_BENCH_UPCALL_OUT")
        .expect("write report");
    println!("\nwrote {}", out.display());
}
