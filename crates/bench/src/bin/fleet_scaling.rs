//! `fleet_scaling` — does the sharded cluster simulator actually scale?
//!
//! Two sections, one artefact:
//!
//! 1. **Dense scaling** — sweeps host count × worker threads over the
//!    `fleet_colocation` scenario (every host under active policy
//!    injection), measuring wall time and aggregate switch
//!    packets/second. Rows record the hot-path counters — mean subtable
//!    probes per packet and the EMC hit rate — so a throughput
//!    regression is attributable to a pipeline level, not just
//!    observed.
//! 2. **Sparse skipping** — runs `fleet_sparse` (a 128-host fleet where
//!    only 4 hosts see traffic) on the tick-stepped reference and the
//!    event-driven engine, same build, and reports the wall-clock
//!    ratio. This is the event core's headline number: the stepped
//!    engine walks every idle host every tick, the event engine skips
//!    them wholesale.
//!
//! Every row records `events_processed` (identical across engines and
//! worker counts — the work is the same, only the visiting order
//! differs) and `ticks_skipped` (zero for the stepped engine, the whole
//! point for the event engine). Each cell runs through
//! `pi_bench::stopwatch::sample` (warm-up + repeated timed runs, median
//! and p95 reported) rather than a single wall-clock sample.
//!
//! Writes `BENCH_fleet.json` (path overridable via `PI_BENCH_FLEET_OUT`)
//! plus a CSV under `results/`, and prints aligned tables. Knobs:
//! `PI_FLEET_BENCH_SECS` (simulated seconds per dense cell, default 4),
//! `PI_FLEET_SPARSE_SECS` (simulated seconds per sparse cell, default
//! 10), `PI_FLEET_SPARSE_HOSTS` (sparse fleet size, default 128),
//! `PI_FLEET_BENCH_REPEATS` (timed repeats, default 3),
//! `PI_FLEET_BENCH_WARMUP` (warm-up runs, default 1). `--smoke` shrinks
//! everything for CI: tiny cells, one repeat, and a hard assert that
//! the event engine actually skipped ticks.
//!
//! The workspace acceptance bars: ≥ 2× aggregate packets/sec going from
//! 1 to 4 workers on the 8-host topology (needs ≥ 4 physical cores),
//! and ≥ 5× median wall-clock going stepped → event on the sparse
//! fleet (single worker, any machine).

// audit: allow-file(determinism) -- wall-clock speedup cells are this binary's artefact; report rows gate on sim-deterministic fields only
use std::time::Instant;

use pi_bench::report::{Fields, Report};
use pi_bench::stopwatch::{sample, SampleStats};
use pi_fleet::{fleet_colocation, fleet_sparse, EngineStats, SparseParams};
use pi_metrics::CsvTable;

struct Row {
    scenario: &'static str,
    engine: &'static str,
    hosts: usize,
    workers: usize,
    stats: SampleStats,
    switch_packets: u64,
    pps: f64,
    speedup: f64,
    avg_probes: f64,
    emc_hit_rate: f64,
    engine_stats: EngineStats,
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

struct Cell {
    stats: SampleStats,
    switch_packets: u64,
    workers: usize,
    avg_probes: f64,
    emc_hit_rate: f64,
    engine_stats: EngineStats,
}

/// Measures one dense (hosts, workers) cell: warm-up + repeated timed
/// runs. The engine clamps the configured worker count to the host
/// count; the clamped value is returned.
fn run_dense_cell(
    hosts: usize,
    workers: usize,
    duration_secs: u64,
    warmup: u32,
    repeats: u32,
) -> Cell {
    let mut switch_packets = 0u64;
    let mut used_workers = workers;
    let mut avg_probes = 0.0;
    let mut emc_hit_rate = 0.0;
    let mut engine_stats = EngineStats::default();
    let stats = sample(warmup, repeats, || {
        let (sim, _handles) =
            fleet_colocation(&pi_bench::colocation_cell(hosts, workers, duration_secs));
        let start = Instant::now();
        let report = sim.run();
        let wall = start.elapsed();
        let total = report.total_switch_stats();
        switch_packets = total.packets;
        used_workers = report.workers;
        avg_probes = total.avg_probes();
        emc_hit_rate = total.emc_hit_rate();
        engine_stats = report.engine;
        wall
    });
    Cell {
        stats,
        switch_packets,
        workers: used_workers,
        avg_probes,
        emc_hit_rate,
        engine_stats,
    }
}

/// Measures one sparse cell on the chosen engine.
fn run_sparse_cell(
    hosts: usize,
    duration_secs: u64,
    event_driven: bool,
    warmup: u32,
    repeats: u32,
) -> Cell {
    let mut switch_packets = 0u64;
    let mut used_workers = 1;
    let mut avg_probes = 0.0;
    let mut emc_hit_rate = 0.0;
    let mut engine_stats = EngineStats::default();
    let stats = sample(warmup, repeats, || {
        let (sim, _handles) = fleet_sparse(&SparseParams {
            hosts,
            duration: pi_core::SimTime::from_secs(duration_secs),
            event_driven,
            ..Default::default()
        });
        let start = Instant::now();
        let report = sim.run();
        let wall = start.elapsed();
        let total = report.total_switch_stats();
        switch_packets = total.packets;
        used_workers = report.workers;
        avg_probes = total.avg_probes();
        emc_hit_rate = total.emc_hit_rate();
        engine_stats = report.engine;
        wall
    });
    Cell {
        stats,
        switch_packets,
        workers: used_workers,
        avg_probes,
        emc_hit_rate,
        engine_stats,
    }
}

fn print_header() {
    println!(
        "{:>14} {:>8} {:>6} {:>8} {:>10} {:>10} {:>14} {:>12} {:>9} {:>13} {:>13}",
        "scenario",
        "engine",
        "hosts",
        "workers",
        "median_s",
        "p95_s",
        "switch_pkts",
        "pps",
        "speedup",
        "events",
        "ticks_skipped"
    );
}

fn print_row(r: &Row) {
    println!(
        "{:>14} {:>8} {:>6} {:>8} {:>10.3} {:>10.3} {:>14} {:>12.0} {:>8.2}x {:>13} {:>13}",
        r.scenario,
        r.engine,
        r.hosts,
        r.workers,
        r.stats.median_secs,
        r.stats.p95_secs,
        r.switch_packets,
        r.pps,
        r.speedup,
        r.engine_stats.events_processed,
        r.engine_stats.shard_ticks_skipped
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let duration_secs = env_u64("PI_FLEET_BENCH_SECS", if smoke { 1 } else { 4 });
    let sparse_secs = env_u64("PI_FLEET_SPARSE_SECS", if smoke { 2 } else { 10 });
    let sparse_hosts = env_u64("PI_FLEET_SPARSE_HOSTS", if smoke { 16 } else { 128 }) as usize;
    let repeats = env_u64("PI_FLEET_BENCH_REPEATS", if smoke { 1 } else { 3 }) as u32;
    let warmup = env_u64("PI_FLEET_BENCH_WARMUP", if smoke { 0 } else { 1 }) as u32;
    let host_counts: &[usize] = if smoke { &[2, 4] } else { &[2, 4, 8] };
    let worker_counts: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4] };
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    println!(
        "fleet_scaling{}: {duration_secs} simulated seconds per dense cell, \
         {sparse_secs} s × {sparse_hosts} hosts sparse, \
         {warmup} warm-up + {repeats} timed repeats, {cores} CPU core(s)",
        if smoke { " (smoke)" } else { "" }
    );
    if cores < 4 {
        println!(
            "WARNING: only {cores} core(s) available — worker scaling cannot exceed {cores}x \
             on this machine; run on >= 4 cores to observe the 2x+ target."
        );
    }
    println!();
    print_header();

    let mut rows: Vec<Row> = Vec::new();

    // Section 1: dense scaling (colocation, event engine — the default).
    for &hosts in host_counts {
        let mut base_pps = 0.0;
        for &requested in worker_counts {
            // The engine clamps workers to the host count; skip requests
            // that would just re-measure an already-recorded cell.
            if requested > hosts {
                continue;
            }
            let cell = run_dense_cell(hosts, requested, duration_secs, warmup, repeats);
            let pps = cell.switch_packets as f64 / cell.stats.median_secs;
            if cell.workers == 1 {
                base_pps = pps;
            }
            let speedup = if base_pps > 0.0 { pps / base_pps } else { 1.0 };
            let row = Row {
                scenario: "fleet_colocation",
                engine: "event",
                hosts,
                workers: cell.workers,
                stats: cell.stats,
                switch_packets: cell.switch_packets,
                pps,
                speedup,
                avg_probes: cell.avg_probes,
                emc_hit_rate: cell.emc_hit_rate,
                engine_stats: cell.engine_stats,
            };
            print_row(&row);
            rows.push(row);
        }
    }

    // Section 2: sparse skipping — stepped reference vs event engine on
    // the identical build, single worker.
    let mut stepped_median = 0.0;
    let mut sparse_speedup = 1.0;
    for &(engine, event_driven) in &[("stepped", false), ("event", true)] {
        let cell = run_sparse_cell(sparse_hosts, sparse_secs, event_driven, warmup, repeats);
        let pps = cell.switch_packets as f64 / cell.stats.median_secs;
        if !event_driven {
            stepped_median = cell.stats.median_secs;
        } else if cell.stats.median_secs > 0.0 {
            sparse_speedup = stepped_median / cell.stats.median_secs;
        }
        let row = Row {
            scenario: "fleet_sparse",
            engine,
            hosts: sparse_hosts,
            workers: cell.workers,
            stats: cell.stats,
            switch_packets: cell.switch_packets,
            pps,
            speedup: if event_driven { sparse_speedup } else { 1.0 },
            avg_probes: cell.avg_probes,
            emc_hit_rate: cell.emc_hit_rate,
            engine_stats: cell.engine_stats,
        };
        print_row(&row);
        rows.push(row);
    }

    // The sparse pair must agree on the work done: the engines may only
    // differ in which ticks they *visit*.
    let sparse: Vec<&Row> = rows
        .iter()
        .filter(|r| r.scenario == "fleet_sparse")
        .collect();
    assert_eq!(
        sparse[0].engine_stats.events_processed, sparse[1].engine_stats.events_processed,
        "engines disagree on events_processed — skip-safety broken"
    );
    assert_eq!(
        sparse[0].engine_stats.shard_ticks_skipped, 0,
        "the stepped reference must not skip"
    );
    assert!(
        sparse[1].engine_stats.shard_ticks_skipped > 0,
        "the event engine skipped nothing on an idle-heavy fleet"
    );

    // CSV alongside the other experiment artefacts.
    let mut csv = CsvTable::new(&[
        "scenario",
        "engine",
        "hosts",
        "workers",
        "median_wall_secs",
        "p95_wall_secs",
        "switch_packets",
        "pps",
        "speedup",
        "avg_subtable_probes",
        "emc_hit_rate",
        "events_processed",
        "ticks_skipped",
    ]);
    for r in &rows {
        csv.push_row(&[
            r.scenario.to_string(),
            r.engine.to_string(),
            r.hosts.to_string(),
            r.workers.to_string(),
            format!("{:.6}", r.stats.median_secs),
            format!("{:.6}", r.stats.p95_secs),
            r.switch_packets.to_string(),
            format!("{:.1}", r.pps),
            format!("{:.3}", r.speedup),
            format!("{:.3}", r.avg_probes),
            format!("{:.4}", r.emc_hit_rate),
            r.engine_stats.events_processed.to_string(),
            r.engine_stats.shard_ticks_skipped.to_string(),
        ]);
    }
    let csv_path = pi_bench::results_dir()
        .expect("results dir")
        .join("fleet_scaling.csv");
    csv.write_csv(&csv_path).expect("write csv");

    // BENCH_fleet.json for the repo-level bench target.
    let mut report = Report::new("fleet_scaling", "fleet_colocation+fleet_sparse").params(
        Fields::new()
            .u("simulated_secs_per_cell", duration_secs)
            .u("sparse_simulated_secs", sparse_secs)
            .zu("sparse_hosts", sparse_hosts)
            .u("warmup_runs", warmup as u64)
            .u("timed_repeats", repeats as u64)
            .b("smoke", smoke),
    );
    for r in &rows {
        report.row(
            Fields::new()
                .s("scenario", r.scenario)
                .s("engine", r.engine)
                .zu("hosts", r.hosts)
                .zu("workers", r.workers)
                .f("median_wall_secs", r.stats.median_secs, 6)
                .f("p95_wall_secs", r.stats.p95_secs, 6)
                .u("switch_packets", r.switch_packets)
                .f("pps", r.pps, 1)
                .f("speedup", r.speedup, 3)
                .f("avg_subtable_probes", r.avg_probes, 3)
                .f("emc_hit_rate", r.emc_hit_rate, 4)
                .u("events_processed", r.engine_stats.events_processed)
                .u("ticks_stepped", r.engine_stats.shard_ticks_stepped)
                .u("ticks_skipped", r.engine_stats.shard_ticks_skipped),
        );
    }
    let out = report
        .write("BENCH_fleet.json", "PI_BENCH_FLEET_OUT")
        .expect("write report");
    println!("\nwrote {} and {}", out.display(), csv_path.display());

    let eight = |w: usize| {
        rows.iter()
            .find(|r| r.scenario == "fleet_colocation" && r.hosts == 8 && r.workers == w)
    };
    if let (Some(r1), Some(r4)) = (eight(1), eight(4)) {
        let scaling = r4.pps / r1.pps;
        println!("8-host 1→4 worker scaling: {scaling:.2}x");
    }
    println!("sparse stepped→event wall-clock speedup: {sparse_speedup:.2}x");
    if smoke {
        println!("smoke OK: engines agree on events_processed, event engine skipped ticks");
    }
}
