//! `fleet_scaling` — does the sharded cluster simulator actually scale?
//!
//! Sweeps host count × worker threads over the `fleet_colocation`
//! scenario (every host under active policy injection), measuring wall
//! time and aggregate switch packets/second. Writes `BENCH_fleet.json`
//! (path overridable via `PI_BENCH_FLEET_OUT`) plus a CSV under
//! `results/`, and prints an aligned table.
//!
//! The workspace acceptance bar: ≥ 2× aggregate packets/sec going from
//! 1 to 4 workers on the 8-host topology.

use std::time::Instant;

use pi_attack::AttackSpec;
use pi_cms::PolicyDialect;
use pi_core::SimTime;
use pi_fleet::{fleet_colocation, ColocationParams};
use pi_metrics::CsvTable;

struct Row {
    hosts: usize,
    workers: usize,
    wall_secs: f64,
    switch_packets: u64,
    pps: f64,
    speedup: f64,
}

fn params(hosts: usize, workers: usize, duration_secs: u64) -> ColocationParams {
    ColocationParams {
        hosts,
        victims: hosts,
        attackers: hosts / 2,
        spec: AttackSpec::masks_512(PolicyDialect::Kubernetes),
        attack_start: SimTime::from_secs(1),
        stagger: SimTime::ZERO,
        duration: SimTime::from_secs(duration_secs),
        workers,
        ..Default::default()
    }
}

/// Returns (wall seconds, switch packets, workers actually used — the
/// engine clamps the configured count to the host count).
fn run_once(hosts: usize, workers: usize, duration_secs: u64) -> (f64, u64, usize) {
    let (sim, _handles) = fleet_colocation(&params(hosts, workers, duration_secs));
    let start = Instant::now();
    let report = sim.run();
    (
        start.elapsed().as_secs_f64(),
        report.total_switch_packets(),
        report.workers,
    )
}

fn main() {
    let duration_secs: u64 = std::env::var("PI_FLEET_BENCH_SECS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let host_counts = [2usize, 4, 8];
    let worker_counts = [1usize, 2, 4];
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    println!("fleet_scaling: {duration_secs} simulated seconds per cell, {cores} CPU core(s)");
    if cores < 4 {
        println!(
            "WARNING: only {cores} core(s) available — worker scaling cannot exceed {cores}x \
             on this machine; run on >= 4 cores to observe the 2x+ target."
        );
    }
    println!();
    println!(
        "{:>6} {:>8} {:>12} {:>16} {:>14} {:>10}",
        "hosts", "workers", "wall_secs", "switch_packets", "pps", "speedup"
    );

    let mut rows: Vec<Row> = Vec::new();
    for &hosts in &host_counts {
        let mut base_pps = 0.0;
        for &requested in &worker_counts {
            // The engine clamps workers to the host count; skip requests
            // that would just re-measure an already-recorded cell.
            if requested > hosts {
                continue;
            }
            let (wall, packets, workers) = run_once(hosts, requested, duration_secs);
            let pps = packets as f64 / wall;
            if workers == 1 {
                base_pps = pps;
            }
            let speedup = if base_pps > 0.0 { pps / base_pps } else { 1.0 };
            println!(
                "{:>6} {:>8} {:>12.3} {:>16} {:>14.0} {:>9.2}x",
                hosts, workers, wall, packets, pps, speedup
            );
            rows.push(Row {
                hosts,
                workers,
                wall_secs: wall,
                switch_packets: packets,
                pps,
                speedup,
            });
        }
    }

    // CSV alongside the other experiment artefacts.
    let mut csv = CsvTable::new(&[
        "hosts",
        "workers",
        "wall_secs",
        "switch_packets",
        "pps",
        "speedup",
    ]);
    for r in &rows {
        csv.push_numeric_row(&[
            r.hosts as f64,
            r.workers as f64,
            r.wall_secs,
            r.switch_packets as f64,
            r.pps,
            r.speedup,
        ]);
    }
    let csv_path = pi_bench::results_dir().join("fleet_scaling.csv");
    csv.write_csv(&csv_path).expect("write csv");

    // BENCH_fleet.json for the repo-level bench target.
    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"hosts\": {}, \"workers\": {}, \"wall_secs\": {:.6}, \
                 \"switch_packets\": {}, \"pps\": {:.1}, \"speedup_vs_1_worker\": {:.3}}}",
                r.hosts, r.workers, r.wall_secs, r.switch_packets, r.pps, r.speedup
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"fleet_scaling\",\n  \"scenario\": \"fleet_colocation\",\n  \
         \"simulated_secs_per_cell\": {},\n  \"available_cores\": {},\n  \"rows\": [\n{}\n  ]\n}}\n",
        duration_secs,
        cores,
        json_rows.join(",\n")
    );
    let out = std::env::var("PI_BENCH_FLEET_OUT").unwrap_or_else(|_| "BENCH_fleet.json".into());
    std::fs::write(&out, json).expect("write BENCH_fleet.json");
    println!("\nwrote {out} and {}", csv_path.display());

    let eight = |w: usize| rows.iter().find(|r| r.hosts == 8 && r.workers == w);
    if let (Some(r1), Some(r4)) = (eight(1), eight(4)) {
        let scaling = r4.pps / r1.pps;
        println!("8-host 1→4 worker scaling: {scaling:.2}x");
    }
}
