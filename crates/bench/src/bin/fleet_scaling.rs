//! `fleet_scaling` — does the sharded cluster simulator actually scale?
//!
//! Sweeps host count × worker threads over the `fleet_colocation`
//! scenario (every host under active policy injection), measuring wall
//! time and aggregate switch packets/second. Each cell runs through
//! `pi_bench::stopwatch::sample` (warm-up + repeated timed runs, median
//! and p95 reported) rather than a single wall-clock sample. Rows also
//! record the hot-path counters — mean subtable probes per packet and
//! the EMC hit rate — so a throughput regression is attributable to a
//! pipeline level, not just observed.
//!
//! Writes `BENCH_fleet.json` (path overridable via `PI_BENCH_FLEET_OUT`)
//! plus a CSV under `results/`, and prints an aligned table. Knobs:
//! `PI_FLEET_BENCH_SECS` (simulated seconds per cell, default 4),
//! `PI_FLEET_BENCH_REPEATS` (timed repeats, default 3),
//! `PI_FLEET_BENCH_WARMUP` (warm-up runs, default 1).
//!
//! The workspace acceptance bar: ≥ 2× aggregate packets/sec going from
//! 1 to 4 workers on the 8-host topology (needs ≥ 4 physical cores).

use std::time::Instant;

use pi_bench::report::{Fields, Report};
use pi_bench::stopwatch::{sample, SampleStats};
use pi_fleet::fleet_colocation;
use pi_metrics::CsvTable;

struct Row {
    hosts: usize,
    workers: usize,
    stats: SampleStats,
    switch_packets: u64,
    pps: f64,
    speedup: f64,
    avg_probes: f64,
    emc_hit_rate: f64,
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

struct Cell {
    stats: SampleStats,
    switch_packets: u64,
    workers: usize,
    avg_probes: f64,
    emc_hit_rate: f64,
}

/// Measures one (hosts, workers) cell: warm-up + repeated timed runs.
/// The engine clamps the configured worker count to the host count; the
/// clamped value is returned.
fn run_cell(hosts: usize, workers: usize, duration_secs: u64, warmup: u32, repeats: u32) -> Cell {
    let mut switch_packets = 0u64;
    let mut used_workers = workers;
    let mut avg_probes = 0.0;
    let mut emc_hit_rate = 0.0;
    let stats = sample(warmup, repeats, || {
        let (sim, _handles) =
            fleet_colocation(&pi_bench::colocation_cell(hosts, workers, duration_secs));
        let start = Instant::now();
        let report = sim.run();
        let wall = start.elapsed();
        let total = report.total_switch_stats();
        switch_packets = total.packets;
        used_workers = report.workers;
        avg_probes = total.avg_probes();
        emc_hit_rate = total.emc_hit_rate();
        wall
    });
    Cell {
        stats,
        switch_packets,
        workers: used_workers,
        avg_probes,
        emc_hit_rate,
    }
}

fn main() {
    let duration_secs = env_u64("PI_FLEET_BENCH_SECS", 4);
    let repeats = env_u64("PI_FLEET_BENCH_REPEATS", 3) as u32;
    let warmup = env_u64("PI_FLEET_BENCH_WARMUP", 1) as u32;
    let host_counts = [2usize, 4, 8];
    let worker_counts = [1usize, 2, 4];
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    println!(
        "fleet_scaling: {duration_secs} simulated seconds per cell, \
         {warmup} warm-up + {repeats} timed repeats, {cores} CPU core(s)"
    );
    if cores < 4 {
        println!(
            "WARNING: only {cores} core(s) available — worker scaling cannot exceed {cores}x \
             on this machine; run on >= 4 cores to observe the 2x+ target."
        );
    }
    println!();
    println!(
        "{:>6} {:>8} {:>12} {:>12} {:>16} {:>14} {:>10} {:>11} {:>13}",
        "hosts",
        "workers",
        "median_s",
        "p95_s",
        "switch_packets",
        "pps",
        "speedup",
        "avg_probes",
        "emc_hit_rate"
    );

    let mut rows: Vec<Row> = Vec::new();
    for &hosts in &host_counts {
        let mut base_pps = 0.0;
        for &requested in &worker_counts {
            // The engine clamps workers to the host count; skip requests
            // that would just re-measure an already-recorded cell.
            if requested > hosts {
                continue;
            }
            let cell = run_cell(hosts, requested, duration_secs, warmup, repeats);
            let pps = cell.switch_packets as f64 / cell.stats.median_secs;
            if cell.workers == 1 {
                base_pps = pps;
            }
            let speedup = if base_pps > 0.0 { pps / base_pps } else { 1.0 };
            println!(
                "{:>6} {:>8} {:>12.3} {:>12.3} {:>16} {:>14.0} {:>9.2}x {:>11.2} {:>13.4}",
                hosts,
                cell.workers,
                cell.stats.median_secs,
                cell.stats.p95_secs,
                cell.switch_packets,
                pps,
                speedup,
                cell.avg_probes,
                cell.emc_hit_rate
            );
            rows.push(Row {
                hosts,
                workers: cell.workers,
                stats: cell.stats,
                switch_packets: cell.switch_packets,
                pps,
                speedup,
                avg_probes: cell.avg_probes,
                emc_hit_rate: cell.emc_hit_rate,
            });
        }
    }

    // CSV alongside the other experiment artefacts.
    let mut csv = CsvTable::new(&[
        "hosts",
        "workers",
        "median_wall_secs",
        "p95_wall_secs",
        "switch_packets",
        "pps",
        "speedup",
        "avg_subtable_probes",
        "emc_hit_rate",
    ]);
    for r in &rows {
        csv.push_numeric_row(&[
            r.hosts as f64,
            r.workers as f64,
            r.stats.median_secs,
            r.stats.p95_secs,
            r.switch_packets as f64,
            r.pps,
            r.speedup,
            r.avg_probes,
            r.emc_hit_rate,
        ]);
    }
    let csv_path = pi_bench::results_dir().join("fleet_scaling.csv");
    csv.write_csv(&csv_path).expect("write csv");

    // BENCH_fleet.json for the repo-level bench target.
    let mut report = Report::new("fleet_scaling", "fleet_colocation").params(
        Fields::new()
            .u("simulated_secs_per_cell", duration_secs)
            .u("warmup_runs", warmup as u64)
            .u("timed_repeats", repeats as u64),
    );
    for r in &rows {
        report.row(
            Fields::new()
                .zu("hosts", r.hosts)
                .zu("workers", r.workers)
                .f("median_wall_secs", r.stats.median_secs, 6)
                .f("p95_wall_secs", r.stats.p95_secs, 6)
                .u("switch_packets", r.switch_packets)
                .f("pps", r.pps, 1)
                .f("speedup_vs_1_worker", r.speedup, 3)
                .f("avg_subtable_probes", r.avg_probes, 3)
                .f("emc_hit_rate", r.emc_hit_rate, 4),
        );
    }
    let out = report.write("BENCH_fleet.json", "PI_BENCH_FLEET_OUT");
    println!("\nwrote {} and {}", out.display(), csv_path.display());

    let eight = |w: usize| rows.iter().find(|r| r.hosts == 8 && r.workers == w);
    if let (Some(r1), Some(r4)) = (eight(1), eight(4)) {
        let scaling = r4.pps / r1.pps;
        println!("8-host 1→4 worker scaling: {scaling:.2}x");
    }
}
