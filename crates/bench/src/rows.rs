//! Read-side helpers for the `BENCH_*.json` artefacts.
//!
//! The writer ([`crate::report`]) renders one row per line, so the
//! readers (`bench_check`, `bench_summary`) never need a general JSON
//! parser: a row is a line, a cell is a `"key": value` pair on it.
//! These helpers are the shared vocabulary for pulling cells back out.

/// The raw rendered token of `"key": <token>` on one row line —
/// `"\"event\""` for strings (quotes kept), `"8"` / `"0.25"` for
/// numbers, `"true"` for bools. `None` when the key is absent.
pub fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\": ");
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    let end = if let Some(stripped) = rest.strip_prefix('"') {
        // String value: scan to the closing quote (the writer escapes
        // embedded quotes, but row identity values never contain any).
        stripped.find('"').map(|i| i + 2).unwrap_or(rest.len())
    } else {
        rest.find([',', '}']).unwrap_or(rest.len())
    };
    Some(rest[..end].trim())
}

/// Extracts `"key": <number>` from one rendered row line.
pub fn num(line: &str, key: &str) -> Option<f64> {
    field(line, key)?.parse().ok()
}

/// Finds the row whose `key` field equals the string `value`.
pub fn find_row<'a>(rows: &'a [String], key: &str, value: &str) -> Option<&'a String> {
    let needle = format!("\"{key}\": \"{value}\"");
    rows.iter().find(|r| r.contains(&needle))
}

/// Finds the row containing every `"key": value` pair. Values are
/// matched as rendered, so string values must be passed pre-quoted
/// (`"\"event\""`) while numbers and bools go bare (`"8"`, `"false"`).
pub fn find_where<'a>(rows: &'a [String], preds: &[(&str, &str)]) -> Option<&'a String> {
    rows.iter().find(|r| {
        preds
            .iter()
            .all(|(k, v)| r.contains(&format!("\"{k}\": {v}")))
    })
}

/// Every `key` name appearing on the row line, in row order.
pub fn keys(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        // A key is a quoted string immediately followed by `: `.
        if bytes[i] == b'"' {
            if let Some(close) = line[i + 1..].find('"') {
                let end = i + 1 + close;
                if line[end + 1..].starts_with(": ") {
                    out.push(line[i + 1..end].to_string());
                    // Skip the value: strings need their closing quote.
                    let vstart = end + 3;
                    if line[vstart..].starts_with('"') {
                        let vclose = line[vstart + 1..].find('"').unwrap_or(0);
                        i = vstart + 1 + vclose + 1;
                    } else {
                        i = vstart;
                    }
                    continue;
                }
                i = end + 1;
                continue;
            }
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const ROW: &str =
        "{\"mode\": \"policy_flap\", \"sim_secs\": 10, \"retained\": 0.042, \"ok\": true}";

    #[test]
    fn field_returns_raw_tokens() {
        assert_eq!(field(ROW, "mode"), Some("\"policy_flap\""));
        assert_eq!(field(ROW, "sim_secs"), Some("10"));
        assert_eq!(field(ROW, "ok"), Some("true"));
        assert_eq!(field(ROW, "missing"), None);
    }

    #[test]
    fn num_parses_numbers_only() {
        assert_eq!(num(ROW, "retained"), Some(0.042));
        assert_eq!(num(ROW, "mode"), None);
    }

    #[test]
    fn keys_walks_the_row_in_order() {
        assert_eq!(keys(ROW), vec!["mode", "sim_secs", "retained", "ok"]);
    }

    #[test]
    fn finders_match_rendered_values() {
        let rows = vec![ROW.to_string()];
        assert!(find_row(&rows, "mode", "policy_flap").is_some());
        assert!(find_row(&rows, "mode", "benign").is_none());
        assert!(find_where(&rows, &[("mode", "\"policy_flap\""), ("sim_secs", "10")]).is_some());
        assert!(find_where(&rows, &[("sim_secs", "11")]).is_none());
    }
}
