//! The shared bench-report writer: every `BENCH_*.json` artefact is
//! emitted through [`Report`], so they all carry the same envelope —
//!
//! ```json
//! {
//!   "bench": "...",            // binary name (back-compat alias)
//!   "scenario": "...",         // which scenario produced the rows
//!   "git_rev": "...",          // short commit of the measured tree
//!   "available_cores": 4,      // host parallelism during the run
//!   "params": { ... },         // scenario-level parameters
//!   "rows": [ {...}, ... ]     // one object per measured row
//! }
//! ```
//!
//! Rows are rendered one per line (4-space indent) so downstream
//! tooling — and the `hotpath` bench's own merge-on-rerun — can operate
//! line-wise without a JSON parser. The writer is hand-rolled on
//! purpose: the repo takes no serialization dependency for five small
//! artefacts.

use std::fmt::Write as _;
use std::path::PathBuf;

/// One JSON scalar, with explicit float precision so re-runs produce
/// stable, diffable artefacts.
#[derive(Debug, Clone)]
pub enum Value {
    /// `null` (e.g. a time-to-detect that never happened).
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned counter.
    UInt(u64),
    /// A signed integer.
    Int(i64),
    /// A float printed with the given number of decimals. Non-finite
    /// values render as `null` (JSON has no NaN).
    Float(f64, usize),
    /// A string (escaped on render).
    Str(String),
}

impl Value {
    fn render(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Value::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Value::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Value::Float(v, prec) => {
                if v.is_finite() {
                    let _ = write!(out, "{v:.prec$}");
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
        }
    }
}

/// An ordered field list — one report row, or the params object.
#[derive(Debug, Clone, Default)]
pub struct Fields {
    entries: Vec<(String, Value)>,
}

impl Fields {
    /// An empty field list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends any [`Value`].
    pub fn push(mut self, key: &str, value: Value) -> Self {
        self.entries.push((key.to_string(), value));
        self
    }

    /// Appends a string field.
    pub fn s(self, key: &str, v: &str) -> Self {
        self.push(key, Value::Str(v.to_string()))
    }

    /// Appends an unsigned counter.
    pub fn u(self, key: &str, v: u64) -> Self {
        self.push(key, Value::UInt(v))
    }

    /// Appends a usize counter.
    pub fn zu(self, key: &str, v: usize) -> Self {
        self.push(key, Value::UInt(v as u64))
    }

    /// Appends a boolean.
    pub fn b(self, key: &str, v: bool) -> Self {
        self.push(key, Value::Bool(v))
    }

    /// Appends a float with `prec` decimals.
    pub fn f(self, key: &str, v: f64, prec: usize) -> Self {
        self.push(key, Value::Float(v, prec))
    }

    /// Appends an optional float (`None` → `null`).
    pub fn opt_f(self, key: &str, v: Option<f64>, prec: usize) -> Self {
        self.push(key, v.map_or(Value::Null, |v| Value::Float(v, prec)))
    }

    fn render(&self, out: &mut String) {
        out.push('{');
        for (i, (k, v)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{k}\": ");
            v.render(out);
        }
        out.push('}');
    }
}

/// One `BENCH_*.json` artefact under construction.
#[derive(Debug, Clone)]
pub struct Report {
    bench: String,
    scenario: String,
    params: Fields,
    /// Pre-rendered row lines (merged from a previous artefact) that
    /// precede the freshly measured rows.
    carried_rows: Vec<String>,
    rows: Vec<Fields>,
}

impl Report {
    /// A new report for `bench` (the binary) over `scenario`.
    pub fn new(bench: &str, scenario: &str) -> Self {
        Report {
            bench: bench.to_string(),
            scenario: scenario.to_string(),
            params: Fields::new(),
            carried_rows: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Sets the scenario-level parameter object.
    pub fn params(mut self, params: Fields) -> Self {
        self.params = params;
        self
    }

    /// Appends a measured row.
    pub fn row(&mut self, row: Fields) {
        self.rows.push(row);
    }

    /// Appends an already-rendered row line (no trailing comma) ahead
    /// of the measured rows — the `hotpath` merge-on-rerun path.
    pub fn carry_row(&mut self, line: String) {
        self.carried_rows.push(line);
    }

    /// Renders the artefact.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"bench\": \"{}\",", self.bench);
        let _ = writeln!(out, "  \"scenario\": \"{}\",", self.scenario);
        let _ = writeln!(out, "  \"git_rev\": \"{}\",", git_rev());
        let _ = writeln!(out, "  \"available_cores\": {},", available_cores());
        out.push_str("  \"params\": ");
        self.params.render(&mut out);
        out.push_str(",\n  \"rows\": [\n");
        let mut lines: Vec<String> = self.carried_rows.clone();
        for row in &self.rows {
            let mut line = String::from("    ");
            row.render(&mut line);
            lines.push(line);
        }
        out.push_str(&lines.join(",\n"));
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Writes the artefact to `$env_var`, or `default_name` in the
    /// working directory when the override is unset. Returns the path
    /// written, or the error annotated with that path (library code
    /// must not panic — workspace `panics` audit rule).
    pub fn write(&self, default_name: &str, env_var: &str) -> std::io::Result<PathBuf> {
        let out = std::env::var(env_var).unwrap_or_else(|_| default_name.to_string());
        std::fs::write(&out, self.render())
            .map_err(|e| std::io::Error::new(e.kind(), format!("write {out}: {e}")))?;
        Ok(PathBuf::from(out))
    }
}

/// Extracts the row lines of a previous artefact's `"rows": [ ... ]`
/// array (this writer's line-per-row shape, not a general parser),
/// excluding rows containing `drop_needle` — those are about to be
/// re-measured and replaced.
pub fn extract_rows(json: &str, drop_needle: &str) -> Vec<String> {
    let Some(start) = json.find("\"rows\": [") else {
        return Vec::new();
    };
    let start = start + "\"rows\": [".len();
    let Some(end) = json[start..].rfind(']') else {
        return Vec::new();
    };
    json[start..start + end]
        .lines()
        .map(|l| l.trim_end_matches(',').trim_end())
        .filter(|l| !l.trim().is_empty() && !l.contains(drop_needle))
        .map(String::from)
        .collect()
}

/// Host parallelism during the run (1 when unknown).
pub fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Short commit hash of the measured tree (`"unknown"` outside a git
/// checkout or without a `git` binary).
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_has_the_shared_schema() {
        let mut r =
            Report::new("demo", "demo_scenario").params(Fields::new().u("n", 3).f("rate", 0.5, 2));
        r.row(
            Fields::new()
                .s("mode", "a")
                .u("count", 1)
                .opt_f("t", None, 1),
        );
        r.row(
            Fields::new()
                .s("mode", "b")
                .f("ratio", 0.25, 3)
                .b("ok", true),
        );
        let json = r.render();
        for key in [
            "\"bench\": \"demo\"",
            "\"scenario\": \"demo_scenario\"",
            "\"git_rev\": ",
            "\"available_cores\": ",
            "\"params\": {\"n\": 3, \"rate\": 0.50}",
            "\"t\": null",
            "\"ratio\": 0.250",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // One row per line: the merge contract.
        let rows = extract_rows(&json, "\"mode\": \"zzz\"");
        assert_eq!(rows.len(), 2);
        let kept = extract_rows(&json, "\"mode\": \"a\"");
        assert_eq!(kept.len(), 1);
        assert!(kept[0].contains("\"mode\": \"b\""));
    }

    #[test]
    fn strings_are_escaped_and_nonfinite_floats_are_null() {
        let mut out = String::new();
        Value::Str("a\"b\\c\nd".into()).render(&mut out);
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\"");
        let mut out = String::new();
        Value::Float(f64::NAN, 3).render(&mut out);
        assert_eq!(out, "null");
    }
}
