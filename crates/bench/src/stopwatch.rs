//! A dependency-free micro-benchmark harness.
//!
//! The workspace builds offline, so `criterion` is not available; this
//! module provides the small subset the microbenchmarks need: warm-up,
//! auto-calibrated iteration counts, and a uniform report line of
//! nanoseconds/iteration plus derived throughput.

// audit: allow-file(determinism) -- the stopwatch IS the wall clock: Instant here prices real runs; simulation code never calls it
use std::hint::black_box;
use std::time::{Duration, Instant};

/// One benchmark measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark id (`group/param` style).
    pub name: String,
    /// Mean wall time per iteration, nanoseconds.
    pub ns_per_iter: f64,
    /// Iterations actually timed.
    pub iters: u64,
}

impl Measurement {
    /// Iterations per second implied by the mean.
    pub fn per_sec(&self) -> f64 {
        1e9 / self.ns_per_iter
    }
}

/// Times `f` after a warm-up, auto-scaling the iteration count until the
/// timed window exceeds `measure` wall time. Returns the measurement and
/// prints one aligned report line.
pub fn bench<R>(name: &str, mut f: impl FnMut() -> R) -> Measurement {
    bench_for(
        name,
        Duration::from_millis(300),
        Duration::from_millis(100),
        &mut f,
    )
}

/// [`bench`] with explicit measurement and warm-up windows.
pub fn bench_for<R>(
    name: &str,
    measure: Duration,
    warmup: Duration,
    f: &mut impl FnMut() -> R,
) -> Measurement {
    // Warm up and estimate a single-iteration cost.
    let warm_start = Instant::now();
    let mut warm_iters: u64 = 0;
    while warm_start.elapsed() < warmup {
        black_box(f());
        warm_iters += 1;
    }
    let est_ns = (warmup.as_nanos() as f64 / warm_iters.max(1) as f64).max(1.0);
    // Batch so each timed batch is ~1/10 of the measurement window.
    let batch = ((measure.as_nanos() as f64 / 10.0 / est_ns).ceil() as u64).max(1);

    let mut total_iters: u64 = 0;
    let start = Instant::now();
    while start.elapsed() < measure {
        for _ in 0..batch {
            black_box(f());
        }
        total_iters += batch;
    }
    let ns_per_iter = start.elapsed().as_nanos() as f64 / total_iters as f64;
    let m = Measurement {
        name: name.to_string(),
        ns_per_iter,
        iters: total_iters,
    };
    println!(
        "{:<40} {:>14.1} ns/iter {:>16.0} iter/s  ({} iters)",
        m.name,
        m.ns_per_iter,
        m.per_sec(),
        m.iters
    );
    m
}

/// Robust statistics over repeated wall-clock samples of one workload.
///
/// Single-sample wall clocks are noisy (especially on shared or
/// single-core machines); the macro-benchmarks run each cell several
/// times after a warm-up and report the median and the p95 so outlier
/// runs are visible instead of silently folded into a mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleStats {
    /// Warm-up iterations executed (not timed into the stats).
    pub warmup: u32,
    /// Timed repeats the stats summarise.
    pub repeats: u32,
    /// Median wall time across repeats, seconds.
    pub median_secs: f64,
    /// 95th-percentile wall time across repeats, seconds (nearest-rank).
    pub p95_secs: f64,
    /// Fastest repeat, seconds.
    pub min_secs: f64,
    /// Slowest repeat, seconds.
    pub max_secs: f64,
}

impl SampleStats {
    /// Summarises raw per-repeat durations (empty input is a caller bug).
    pub fn from_durations(warmup: u32, samples: &[Duration]) -> SampleStats {
        assert!(!samples.is_empty(), "need at least one timed sample");
        let mut secs: Vec<f64> = samples.iter().map(Duration::as_secs_f64).collect();
        secs.sort_by(|a, b| a.total_cmp(b));
        let n = secs.len();
        let median = if n % 2 == 1 {
            secs[n / 2]
        } else {
            (secs[n / 2 - 1] + secs[n / 2]) / 2.0
        };
        // Nearest-rank p95: the smallest sample ≥ 95% of the others.
        let p95_idx = ((0.95 * n as f64).ceil() as usize).clamp(1, n) - 1;
        SampleStats {
            warmup,
            repeats: n as u32,
            median_secs: median,
            p95_secs: secs[p95_idx],
            min_secs: secs[0],
            max_secs: secs[n - 1],
        }
    }
}

/// Runs `f` `warmup` untimed iterations, then `repeats` timed ones, and
/// summarises the timed durations. `f` returns the wall time of the
/// region it wants measured, so per-iteration setup (building a
/// simulation, seeding caches) stays out of the statistics.
pub fn sample(warmup: u32, repeats: u32, mut f: impl FnMut() -> Duration) -> SampleStats {
    assert!(repeats >= 1, "need at least one timed repeat");
    for _ in 0..warmup {
        black_box(f());
    }
    let samples: Vec<Duration> = (0..repeats).map(|_| f()).collect();
    SampleStats::from_durations(warmup, &samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_measures_something_positive() {
        let mut acc = 0u64;
        let m = bench_for(
            "noop",
            Duration::from_millis(20),
            Duration::from_millis(5),
            &mut || {
                acc = acc.wrapping_add(1);
                acc
            },
        );
        assert!(m.ns_per_iter > 0.0);
        assert!(m.iters > 0);
    }

    #[test]
    fn sample_stats_median_and_p95() {
        let ds: Vec<Duration> = [5u64, 1, 3, 2, 4]
            .iter()
            .map(|&s| Duration::from_secs(s))
            .collect();
        let s = SampleStats::from_durations(2, &ds);
        assert_eq!(s.repeats, 5);
        assert_eq!(s.warmup, 2);
        assert_eq!(s.median_secs, 3.0);
        assert_eq!(s.p95_secs, 5.0);
        assert_eq!(s.min_secs, 1.0);
        assert_eq!(s.max_secs, 5.0);
        // Even count: median is the midpoint of the central pair.
        let ds2: Vec<Duration> = [1u64, 2, 3, 4]
            .iter()
            .map(|&s| Duration::from_secs(s))
            .collect();
        let s2 = SampleStats::from_durations(0, &ds2);
        assert_eq!(s2.median_secs, 2.5);
    }

    #[test]
    fn sample_runs_warmup_then_repeats() {
        let mut calls = 0u32;
        let s = sample(2, 3, || {
            calls += 1;
            Duration::from_micros(calls as u64)
        });
        assert_eq!(calls, 5, "2 warm-up + 3 timed");
        assert_eq!(s.repeats, 3);
        // Timed samples are 3, 4, 5 µs.
        assert!((s.median_secs - 4e-6).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one timed sample")]
    fn empty_samples_panic() {
        SampleStats::from_durations(0, &[]);
    }
}
