//! A dependency-free micro-benchmark harness.
//!
//! The workspace builds offline, so `criterion` is not available; this
//! module provides the small subset the microbenchmarks need: warm-up,
//! auto-calibrated iteration counts, and a uniform report line of
//! nanoseconds/iteration plus derived throughput.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// One benchmark measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark id (`group/param` style).
    pub name: String,
    /// Mean wall time per iteration, nanoseconds.
    pub ns_per_iter: f64,
    /// Iterations actually timed.
    pub iters: u64,
}

impl Measurement {
    /// Iterations per second implied by the mean.
    pub fn per_sec(&self) -> f64 {
        1e9 / self.ns_per_iter
    }
}

/// Times `f` after a warm-up, auto-scaling the iteration count until the
/// timed window exceeds `measure` wall time. Returns the measurement and
/// prints one aligned report line.
pub fn bench<R>(name: &str, mut f: impl FnMut() -> R) -> Measurement {
    bench_for(name, Duration::from_millis(300), Duration::from_millis(100), &mut f)
}

/// [`bench`] with explicit measurement and warm-up windows.
pub fn bench_for<R>(
    name: &str,
    measure: Duration,
    warmup: Duration,
    f: &mut impl FnMut() -> R,
) -> Measurement {
    // Warm up and estimate a single-iteration cost.
    let warm_start = Instant::now();
    let mut warm_iters: u64 = 0;
    while warm_start.elapsed() < warmup {
        black_box(f());
        warm_iters += 1;
    }
    let est_ns = (warmup.as_nanos() as f64 / warm_iters.max(1) as f64).max(1.0);
    // Batch so each timed batch is ~1/10 of the measurement window.
    let batch = ((measure.as_nanos() as f64 / 10.0 / est_ns).ceil() as u64).max(1);

    let mut total_iters: u64 = 0;
    let start = Instant::now();
    while start.elapsed() < measure {
        for _ in 0..batch {
            black_box(f());
        }
        total_iters += batch;
    }
    let ns_per_iter = start.elapsed().as_nanos() as f64 / total_iters as f64;
    let m = Measurement {
        name: name.to_string(),
        ns_per_iter,
        iters: total_iters,
    };
    println!(
        "{:<40} {:>14.1} ns/iter {:>16.0} iter/s  ({} iters)",
        m.name,
        m.ns_per_iter,
        m.per_sec(),
        m.iters
    );
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_measures_something_positive() {
        let mut acc = 0u64;
        let m = bench_for(
            "noop",
            Duration::from_millis(20),
            Duration::from_millis(5),
            &mut || {
                acc = acc.wrapping_add(1);
                acc
            },
        );
        assert!(m.ns_per_iter > 0.0);
        assert!(m.iters > 0);
    }
}
