//! Microbenchmarks of the mechanisms underlying the attack.
//!
//! `tss_lookup_vs_masks` is the paper's algorithmic core measured in
//! isolation: lookup latency against the number of subtables. The rest
//! pin the costs the cycle model abstracts (EMC probe, trie walk, slow
//! path, megaflow generation, compiled-ACL classification) so the cost
//! model's relative prices can be sanity-checked against real hardware.
//!
//! Runs harness-free on [`pi_bench::stopwatch`] (the workspace builds
//! offline, without criterion): `cargo bench -p pi_bench`.

use std::hint::black_box;

use pi_attack::{AttackSpec, CovertSequence};
use pi_bench::stopwatch::bench;
use pi_classifier::{Action, PrefixTrie, SubtableOrder, TupleSpaceSearch};
use pi_cms::{PolicyCompiler, PolicyDialect};
use pi_core::{Field, FlowKey, FlowMask, MaskedKey, SimTime};
use pi_datapath::{DpConfig, SlowPath, VSwitch};
use pi_mitigation::CompiledAcl;

fn attack_table() -> pi_classifier::FlowTable {
    match AttackSpec::masks_512(PolicyDialect::Kubernetes).build_policy() {
        pi_attack::MaliciousAcl::K8s(p) => PolicyCompiler.compile_k8s(&p),
        _ => unreachable!(),
    }
}

/// TSS lookup latency as a function of the number of distinct masks —
/// the linear walk, measured.
fn tss_lookup_vs_masks() {
    for &masks in &[1usize, 16, 128, 512, 2048, 8192] {
        let mut tss: TupleSpaceSearch<u32> = TupleSpaceSearch::new(SubtableOrder::Insertion);
        // Distinct masks via distinct (ip_len, port-bit) combinations.
        let mut inserted = 0usize;
        'outer: for ip_len in 1..=32u8 {
            for port_len in 1..=16u8 {
                if inserted >= masks {
                    break 'outer;
                }
                let mk = MaskedKey::new(
                    FlowKey::tcp([10, 0, 0, 1], [10, 1, 0, 66], 0, 443),
                    FlowMask::default()
                        .with_prefix(Field::IpSrc, ip_len)
                        .with_prefix(Field::TpDst, port_len),
                );
                tss.insert(mk, inserted as u32);
                inserted += 1;
            }
        }
        // 8192 needs a third dimension.
        if inserted < masks {
            'outer2: for ip_len in 1..=32u8 {
                for dport_len in 1..=16u8 {
                    for sport_len in 1..=16u8 {
                        if inserted >= masks {
                            break 'outer2;
                        }
                        let mk = MaskedKey::new(
                            FlowKey::tcp([10, 0, 0, 1], [10, 1, 0, 66], 4444, 443),
                            FlowMask::default()
                                .with_prefix(Field::IpSrc, ip_len)
                                .with_prefix(Field::TpDst, dport_len)
                                .with_prefix(Field::TpSrc, sport_len),
                        );
                        tss.insert(mk, inserted as u32);
                        inserted += 1;
                    }
                }
            }
        }
        assert_eq!(tss.subtable_count(), masks);
        // A miss walks everything — the victim's worst case.
        let miss = FlowKey::tcp([192, 168, 0, 1], [172, 16, 0, 1], 1, 1);
        bench(&format!("tss_lookup_vs_masks/{masks}"), || {
            black_box(tss.peek(black_box(&miss)).probes)
        });
    }
}

/// One EMC-equivalent exact-match lookup (hit).
fn emc_lookup() {
    let mut sw = VSwitch::new(DpConfig::default());
    let pod = u32::from_be_bytes([10, 1, 0, 66]);
    sw.attach_pod(pod, 1);
    let key = FlowKey::tcp([10, 0, 0, 1], [10, 1, 0, 66], 1000, 443);
    sw.process(&key, SimTime::from_millis(1)); // warm: installs EMC entry
    bench("switch_process_emc_hit", || {
        black_box(sw.process(black_box(&key), SimTime::from_millis(2)).cycles)
    });
}

/// Prefix-trie un-wildcarding lookups.
fn trie_unwildcard() {
    let mut trie = PrefixTrie::new(Field::IpSrc);
    trie.insert(0xcb00_7107, 32);
    let mut v = 0u64;
    bench("trie_unwildcard_bits", || {
        v = v.wrapping_add(0x9e37_79b9);
        black_box(trie.unwildcard_bits(black_box(v & 0xffff_ffff)))
    });
}

/// Slow-path upcall service: classify + generate the megaflow.
fn slowpath_upcall() {
    let sp = SlowPath::new(attack_table(), &[Field::IpSrc, Field::TpDst], Action::Deny);
    let pkt = FlowKey::tcp([11, 22, 33, 44], [10, 1, 0, 66], 999, 443);
    bench("slowpath_process_upcall", || {
        black_box(sp.process_upcall(black_box(&pkt)))
    });
}

/// Full covert populate pass against a live switch (installs 512 masks).
fn covert_populate() {
    let spec = AttackSpec::masks_512(PolicyDialect::Kubernetes);
    let pod = u32::from_be_bytes([10, 1, 0, 66]);
    let seq = CovertSequence::new(spec.build_target(pod));
    let packets: Vec<FlowKey> = seq.populate_packets().collect();
    bench("covert_populate_512/populate_pass", || {
        let mut sw = VSwitch::new(DpConfig::default());
        sw.attach_pod(pod, 1);
        let table = match spec.build_policy() {
            pi_attack::MaliciousAcl::K8s(p) => PolicyCompiler.compile_k8s(&p),
            _ => unreachable!(),
        };
        sw.install_acl(pod, table);
        for p in &packets {
            sw.process(black_box(p), SimTime::from_millis(1));
        }
        black_box(sw.mask_count())
    });
}

/// Compiled (cache-less) classification of the same covert traffic.
fn compiled_acl() {
    let compiled = CompiledAcl::compile(&attack_table(), Action::Deny);
    let pkt = FlowKey::tcp([11, 22, 33, 44], [10, 1, 0, 66], 999, 443);
    bench("compiled_acl_classify", || {
        black_box(compiled.classify(black_box(&pkt)))
    });
}

/// Covert sequence generation rate.
fn covert_generation() {
    let spec = AttackSpec::masks_8192();
    let seq = CovertSequence::new(spec.build_target(0x0a01_0042));
    let mut n = 0u64;
    bench("covert_populate_packet_gen", || {
        n = (n + 1) % seq.packet_count();
        black_box(seq.populate_packet(n))
    });
    let mut m = 0u64;
    bench("covert_scan_packet_gen", || {
        m += 1;
        black_box(seq.scan_packet(m))
    });
}

fn main() {
    tss_lookup_vs_masks();
    emc_lookup();
    trie_unwildcard();
    slowpath_upcall();
    covert_populate();
    compiled_acl();
    covert_generation();
}
