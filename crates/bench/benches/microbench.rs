//! Criterion microbenchmarks of the mechanisms underlying the attack.
//!
//! `tss_lookup_vs_masks` is the paper's algorithmic core measured in
//! isolation: lookup latency against the number of subtables. The rest
//! pin the costs the cycle model abstracts (EMC probe, trie walk, slow
//! path, megaflow generation, compiled-ACL classification) so the cost
//! model's relative prices can be sanity-checked against real hardware.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use pi_attack::{AttackSpec, CovertSequence};
use pi_classifier::{Action, PrefixTrie, SubtableOrder, TupleSpaceSearch};
use pi_cms::{PolicyCompiler, PolicyDialect};
use pi_core::{Field, FlowKey, FlowMask, MaskedKey, SimTime};
use pi_datapath::{DpConfig, SlowPath, VSwitch};
use pi_mitigation::CompiledAcl;

fn attack_table() -> pi_classifier::FlowTable {
    match AttackSpec::masks_512(PolicyDialect::Kubernetes).build_policy() {
        pi_attack::MaliciousAcl::K8s(p) => PolicyCompiler.compile_k8s(&p),
        _ => unreachable!(),
    }
}

/// TSS lookup latency as a function of the number of distinct masks —
/// the linear walk, measured.
fn tss_lookup_vs_masks(c: &mut Criterion) {
    let mut group = c.benchmark_group("tss_lookup_vs_masks");
    for &masks in &[1usize, 16, 128, 512, 2048, 8192] {
        let mut tss: TupleSpaceSearch<u32> = TupleSpaceSearch::new(SubtableOrder::Insertion);
        // Distinct masks via distinct (ip_len, port-bit) combinations.
        let mut inserted = 0usize;
        'outer: for ip_len in 1..=32u8 {
            for port_len in 1..=16u8 {
                if inserted >= masks {
                    break 'outer;
                }
                let mk = MaskedKey::new(
                    FlowKey::tcp([10, 0, 0, 1], [10, 1, 0, 66], 0, 443),
                    FlowMask::default()
                        .with_prefix(Field::IpSrc, ip_len)
                        .with_prefix(Field::TpDst, port_len),
                );
                tss.insert(mk, inserted as u32);
                inserted += 1;
            }
        }
        // 8192 needs a third dimension.
        if inserted < masks {
            'outer2: for ip_len in 1..=32u8 {
                for dport_len in 1..=16u8 {
                    for sport_len in 1..=16u8 {
                        if inserted >= masks {
                            break 'outer2;
                        }
                        let mk = MaskedKey::new(
                            FlowKey::tcp([10, 0, 0, 1], [10, 1, 0, 66], 4444, 443),
                            FlowMask::default()
                                .with_prefix(Field::IpSrc, ip_len)
                                .with_prefix(Field::TpDst, dport_len)
                                .with_prefix(Field::TpSrc, sport_len),
                        );
                        tss.insert(mk, inserted as u32);
                        inserted += 1;
                    }
                }
            }
        }
        assert_eq!(tss.subtable_count(), masks);
        // A miss walks everything — the victim's worst case.
        let miss = FlowKey::tcp([192, 168, 0, 1], [172, 16, 0, 1], 1, 1);
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::from_parameter(masks), &masks, |b, _| {
            b.iter(|| black_box(tss.peek(black_box(&miss)).probes))
        });
    }
    group.finish();
}

/// One EMC-equivalent exact-match lookup (hit and miss).
fn emc_lookup(c: &mut Criterion) {
    let mut sw = VSwitch::new(DpConfig::default());
    let pod = u32::from_be_bytes([10, 1, 0, 66]);
    sw.attach_pod(pod, 1);
    let key = FlowKey::tcp([10, 0, 0, 1], [10, 1, 0, 66], 1000, 443);
    sw.process(&key, SimTime::from_millis(1)); // warm: installs EMC entry
    c.bench_function("switch_process_emc_hit", |b| {
        b.iter(|| black_box(sw.process(black_box(&key), SimTime::from_millis(2)).cycles))
    });
}

/// Prefix-trie un-wildcarding lookups.
fn trie_unwildcard(c: &mut Criterion) {
    let mut trie = PrefixTrie::new(Field::IpSrc);
    trie.insert(0xcb00_7107, 32);
    c.bench_function("trie_unwildcard_bits", |b| {
        let mut v = 0u64;
        b.iter(|| {
            v = v.wrapping_add(0x9e37_79b9);
            black_box(trie.unwildcard_bits(black_box(v & 0xffff_ffff)))
        })
    });
}

/// Slow-path upcall service: classify + generate the megaflow.
fn slowpath_upcall(c: &mut Criterion) {
    let sp = SlowPath::new(
        attack_table(),
        &[Field::IpSrc, Field::TpDst],
        Action::Deny,
    );
    let pkt = FlowKey::tcp([11, 22, 33, 44], [10, 1, 0, 66], 999, 443);
    c.bench_function("slowpath_process_upcall", |b| {
        b.iter(|| black_box(sp.process_upcall(black_box(&pkt))))
    });
}

/// Full covert populate pass against a live switch (installs 512 masks).
fn covert_populate(c: &mut Criterion) {
    let spec = AttackSpec::masks_512(PolicyDialect::Kubernetes);
    let pod = u32::from_be_bytes([10, 1, 0, 66]);
    let seq = CovertSequence::new(spec.build_target(pod));
    let packets: Vec<FlowKey> = seq.populate_packets().collect();
    let mut group = c.benchmark_group("covert_populate_512");
    group.sample_size(10);
    group.throughput(Throughput::Elements(packets.len() as u64));
    group.bench_function("populate_pass", |b| {
        b.iter(|| {
            let mut sw = VSwitch::new(DpConfig::default());
            sw.attach_pod(pod, 1);
            let table = match spec.build_policy() {
                pi_attack::MaliciousAcl::K8s(p) => PolicyCompiler.compile_k8s(&p),
                _ => unreachable!(),
            };
            sw.install_acl(pod, table);
            for p in &packets {
                sw.process(black_box(p), SimTime::from_millis(1));
            }
            black_box(sw.mask_count())
        })
    });
    group.finish();
}

/// Compiled (cache-less) classification of the same covert traffic.
fn compiled_acl(c: &mut Criterion) {
    let compiled = CompiledAcl::compile(&attack_table(), Action::Deny);
    let pkt = FlowKey::tcp([11, 22, 33, 44], [10, 1, 0, 66], 999, 443);
    c.bench_function("compiled_acl_classify", |b| {
        b.iter(|| black_box(compiled.classify(black_box(&pkt))))
    });
}

/// Covert sequence generation rate.
fn covert_generation(c: &mut Criterion) {
    let spec = AttackSpec::masks_8192();
    let seq = CovertSequence::new(spec.build_target(0x0a01_0042));
    c.bench_function("covert_populate_packet_gen", |b| {
        let mut n = 0u64;
        b.iter(|| {
            n = (n + 1) % seq.packet_count();
            black_box(seq.populate_packet(n))
        })
    });
    c.bench_function("covert_scan_packet_gen", |b| {
        let mut n = 0u64;
        b.iter(|| {
            n += 1;
            black_box(seq.scan_packet(n))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets =
        tss_lookup_vs_masks,
        emc_lookup,
        trie_unwildcard,
        slowpath_upcall,
        covert_populate,
        compiled_acl,
        covert_generation
}
criterion_main!(benches);
