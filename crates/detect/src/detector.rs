//! Streaming change-point detectors over the telemetry signals.
//!
//! Each signal gets an EWMA baseline (mean + mean absolute deviation)
//! learned during a warm-up window and frozen while the signal is in
//! alarm — so an ongoing attack is never absorbed into "normal". The
//! alarm comparator is hysteretic: it arms above
//! `baseline + k_on·dev` and only disarms below `baseline + k_off·dev`
//! (k_off < k_on), so a signal dancing around the on-threshold ± ε
//! cannot flap. An absolute floor (`abs_min`) keeps near-zero baselines
//! from alarming on noise.

use pi_core::SimTime;

use crate::telemetry::TelemetrySample;

/// Which telemetry signal a detector watches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Signal {
    /// Mean subtable probes per packet (the mask attack's cost lever).
    ProbeDepth,
    /// Distinct-mask growth per window (Fig. 3's right axis, as a rate).
    MaskGrowth,
    /// Pending upcalls across all port queues (handler saturation).
    UpcallBacklog,
    /// Upcall queue tail drops per window (handler starvation loss).
    UpcallDrops,
    /// EMC collision evictions per packet (cache pollution).
    EmcThrash,
    /// Control-plane policy updates per window (the policy-flap
    /// attack's packet-free signature: ACL churn forcing flush
    /// storms).
    PolicyChurn,
}

impl Signal {
    /// All signals, in reporting order.
    pub const ALL: [Signal; 6] = [
        Signal::ProbeDepth,
        Signal::MaskGrowth,
        Signal::UpcallBacklog,
        Signal::UpcallDrops,
        Signal::EmcThrash,
        Signal::PolicyChurn,
    ];

    /// Stable wire/trace code: this signal's index in [`Signal::ALL`]
    /// (`PolicyChurn` = 5). `pi_trace` detection events carry it.
    pub fn code(&self) -> u8 {
        Signal::ALL
            .iter()
            .position(|s| s == self)
            .expect("Signal::ALL is exhaustive") as u8
    }

    /// Extracts this signal's value from a sample. Mask growth is
    /// clamped at zero: shrinkage (evictions) is recovery, not attack.
    pub fn value(&self, s: &TelemetrySample) -> f64 {
        match self {
            Signal::ProbeDepth => s.avg_probe_depth,
            Signal::MaskGrowth => s.mask_growth.max(0) as f64,
            Signal::UpcallBacklog => s.upcall_backlog as f64,
            Signal::UpcallDrops => s.upcall_drops as f64,
            Signal::EmcThrash => s.emc_thrash,
            Signal::PolicyChurn => s.policy_updates as f64,
        }
    }
}

/// Per-signal detector tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SignalConfig {
    /// Arm when `value > baseline + k_on·dev` (and ≥ `abs_min`).
    pub k_on: f64,
    /// Disarm when `value ≤ baseline + k_off·dev` (or < `abs_min`).
    pub k_off: f64,
    /// Deviation floor: `dev` is clamped up to this, so a flat warm-up
    /// baseline still leaves headroom for benign jitter.
    pub dev_floor: f64,
    /// Values below this never alarm regardless of the baseline.
    pub abs_min: f64,
}

/// Detector bank tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorConfig {
    /// Samples used to learn the baseline before any alarm may fire.
    pub warmup_samples: u32,
    /// EWMA smoothing factor for baseline mean and deviation.
    pub alpha: f64,
    /// Probe-depth tuning.
    pub probe_depth: SignalConfig,
    /// Mask-growth tuning.
    pub mask_growth: SignalConfig,
    /// Backlog tuning.
    pub upcall_backlog: SignalConfig,
    /// Drop-rate tuning.
    pub upcall_drops: SignalConfig,
    /// EMC-thrash tuning.
    pub emc_thrash: SignalConfig,
    /// Policy-churn tuning.
    pub policy_churn: SignalConfig,
    /// Destinations with *more than* this many masks are named as
    /// offenders (event attribution and the quarantine actuator share
    /// the filter: [`crate::TelemetrySample::offenders`]).
    pub offender_mask_threshold: usize,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            warmup_samples: 5,
            alpha: 0.3,
            probe_depth: SignalConfig {
                k_on: 4.0,
                k_off: 2.0,
                dev_floor: 2.0,
                abs_min: 12.0,
            },
            mask_growth: SignalConfig {
                k_on: 4.0,
                k_off: 2.0,
                dev_floor: 8.0,
                abs_min: 48.0,
            },
            upcall_backlog: SignalConfig {
                k_on: 4.0,
                k_off: 2.0,
                dev_floor: 8.0,
                abs_min: 48.0,
            },
            upcall_drops: SignalConfig {
                k_on: 4.0,
                k_off: 2.0,
                dev_floor: 0.5,
                abs_min: 4.0,
            },
            emc_thrash: SignalConfig {
                k_on: 6.0,
                k_off: 3.0,
                dev_floor: 0.05,
                abs_min: 0.2,
            },
            // Routine operations install or remove the odd ACL — zero
            // or one update in almost every window; a flap attack runs
            // orders of magnitude hotter. The floor of 4 updates per
            // window keeps slow rollouts (a policy a second against a
            // 100 ms window) below the radar.
            policy_churn: SignalConfig {
                k_on: 4.0,
                k_off: 2.0,
                dev_floor: 0.5,
                abs_min: 4.0,
            },
            offender_mask_threshold: 64,
        }
    }
}

impl DetectorConfig {
    /// The tuning for one signal.
    pub fn signal(&self, s: Signal) -> SignalConfig {
        match s {
            Signal::ProbeDepth => self.probe_depth,
            Signal::MaskGrowth => self.mask_growth,
            Signal::UpcallBacklog => self.upcall_backlog,
            Signal::UpcallDrops => self.upcall_drops,
            Signal::EmcThrash => self.emc_thrash,
            Signal::PolicyChurn => self.policy_churn,
        }
    }
}

/// One signal's EWMA baseline + hysteretic change-point comparator.
#[derive(Debug, Clone)]
pub struct ChangePointDetector {
    cfg: SignalConfig,
    alpha: f64,
    warmup: u32,
    seen: u32,
    mean: f64,
    dev: f64,
    active: bool,
}

impl ChangePointDetector {
    /// A detector with the given tuning.
    pub fn new(cfg: SignalConfig, alpha: f64, warmup: u32) -> Self {
        ChangePointDetector {
            cfg,
            alpha,
            warmup,
            seen: 0,
            mean: 0.0,
            dev: 0.0,
            active: false,
        }
    }

    /// Whether the signal is currently in alarm.
    pub fn active(&self) -> bool {
        self.active
    }

    /// The value the signal must exceed to arm right now.
    pub fn on_threshold(&self) -> f64 {
        (self.mean + self.cfg.k_on * self.dev.max(self.cfg.dev_floor)).max(self.cfg.abs_min)
    }

    /// The value the signal must fall below to disarm. Deliberately
    /// *not* floored by `abs_min`: flooring both thresholds would
    /// collapse the hysteresis gap whenever the floor dominates (on ==
    /// off ⇒ flapping at the floor ± ε). With `k_off < k_on` and a
    /// positive `dev_floor`, off < on always holds.
    pub fn off_threshold(&self) -> f64 {
        self.mean + self.cfg.k_off * self.dev.max(self.cfg.dev_floor)
    }

    /// Feeds one sample value; returns true on the *rising edge* (the
    /// sample that armed the alarm). The baseline only learns while the
    /// signal is quiet — an ongoing attack never becomes "normal".
    pub fn observe(&mut self, value: f64) -> bool {
        self.seen = self.seen.saturating_add(1);
        if self.seen <= self.warmup {
            self.learn(value);
            return false;
        }
        let was_active = self.active;
        if self.active {
            if value < self.off_threshold() {
                self.active = false;
                self.learn(value);
            }
        } else if value >= self.on_threshold() {
            self.active = true;
        } else {
            self.learn(value);
        }
        self.active && !was_active
    }

    fn learn(&mut self, value: f64) {
        if self.seen == 1 {
            self.mean = value;
            self.dev = 0.0;
            return;
        }
        let a = self.alpha;
        self.dev = (1.0 - a) * self.dev + a * (value - self.mean).abs();
        self.mean = (1.0 - a) * self.mean + a * value;
    }
}

/// A typed detection, attributable to ports where attribution applies.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectionEvent {
    /// When the detector armed.
    pub at: SimTime,
    /// Which signal crossed.
    pub signal: Signal,
    /// The crossing sample's value.
    pub value: f64,
    /// The on-threshold it crossed.
    pub threshold: f64,
    /// Destination IPs whose mask count exceeded the offender
    /// threshold at detection time (empty for signals that are not
    /// destination-attributable, e.g. a backlog of unroutable floods).
    pub offenders: Vec<u32>,
}

/// All six signal detectors over one switch's telemetry stream.
#[derive(Debug, Clone)]
pub struct DetectorBank {
    cfg: DetectorConfig,
    detectors: [ChangePointDetector; 6],
}

impl DetectorBank {
    /// A bank with the given tuning.
    pub fn new(cfg: DetectorConfig) -> Self {
        let mk = |s: Signal| ChangePointDetector::new(cfg.signal(s), cfg.alpha, cfg.warmup_samples);
        DetectorBank {
            cfg,
            detectors: [
                mk(Signal::ProbeDepth),
                mk(Signal::MaskGrowth),
                mk(Signal::UpcallBacklog),
                mk(Signal::UpcallDrops),
                mk(Signal::EmcThrash),
                mk(Signal::PolicyChurn),
            ],
        }
    }

    /// Feeds one sample to every detector; returns the rising-edge
    /// events (at most one per signal per sample).
    pub fn observe(&mut self, sample: &TelemetrySample) -> Vec<DetectionEvent> {
        let mut events = Vec::new();
        for (signal, det) in Signal::ALL.iter().zip(self.detectors.iter_mut()) {
            let value = signal.value(sample);
            let threshold = det.on_threshold();
            if det.observe(value) {
                let offenders = sample.offenders(self.cfg.offender_mask_threshold);
                events.push(DetectionEvent {
                    at: sample.at,
                    signal: *signal,
                    value,
                    threshold,
                    offenders,
                });
            }
        }
        events
    }

    /// Whether any signal is currently in alarm (latched — stays true
    /// until the signal falls below its off-threshold).
    pub fn any_active(&self) -> bool {
        self.detectors.iter().any(|d| d.active())
    }

    /// The currently alarming signals.
    pub fn active_signals(&self) -> Vec<Signal> {
        Signal::ALL
            .iter()
            .zip(self.detectors.iter())
            .filter(|(_, d)| d.active())
            .map(|(s, _)| *s)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detector(abs_min: f64) -> ChangePointDetector {
        ChangePointDetector::new(
            SignalConfig {
                k_on: 4.0,
                k_off: 2.0,
                dev_floor: 1.0,
                abs_min,
            },
            0.3,
            5,
        )
    }

    #[test]
    fn warmup_never_alarms_and_learns_the_baseline() {
        let mut d = detector(0.0);
        for _ in 0..5 {
            assert!(!d.observe(100.0));
        }
        assert!((d.mean - 100.0).abs() < 1e-9);
        // 100 ± 4·floor stays quiet; a step to 200 arms.
        assert!(!d.observe(103.0));
        assert!(d.observe(200.0));
        assert!(d.active());
    }

    #[test]
    fn hysteresis_does_not_flap_at_threshold_plus_minus_epsilon() {
        let eps = 0.01;
        // Dancing just under the (moving) on-threshold: never arms,
        // however long it goes on.
        let mut quiet = detector(10.0);
        for _ in 0..5 {
            quiet.observe(0.0);
        }
        for _ in 0..50 {
            // Multiplicative margin: the threshold itself drifts up as
            // the baseline absorbs the dance, and an additive ε would
            // eventually fall below f64 resolution.
            let just_under = quiet.on_threshold() * (1.0 - 1e-9);
            assert!(!quiet.observe(just_under));
            assert!(!quiet.active());
        }
        // One crossing arms — exactly one rising edge — and oscillating
        // around the *on* threshold afterwards stays armed (the
        // off-threshold is strictly lower): zero further edges.
        let mut d = detector(10.0);
        for _ in 0..5 {
            d.observe(0.0);
        }
        let on = d.on_threshold();
        let off = d.off_threshold();
        assert!(off < on, "hysteresis gap must exist");
        assert!(d.observe(on + eps));
        for i in 0..50 {
            let v = if i % 2 == 0 { on + eps } else { on - eps };
            assert!(!d.observe(v), "no flapping around the on-threshold");
            assert!(d.active());
        }
        // Only falling below the off-threshold disarms.
        assert!(!d.observe(off - eps));
        assert!(!d.active());
    }

    #[test]
    fn baseline_freezes_while_alarmed() {
        let mut d = detector(1.0);
        for _ in 0..5 {
            d.observe(1.0);
        }
        let mean_before = d.mean;
        d.observe(1000.0); // arms
        for _ in 0..100 {
            d.observe(1000.0);
        }
        assert_eq!(d.mean, mean_before, "attack must not become normal");
        assert!(d.active());
    }

    #[test]
    fn abs_min_floors_near_zero_baselines() {
        let mut d = detector(10.0);
        for _ in 0..5 {
            d.observe(0.0);
        }
        // Above baseline+4·dev but under the absolute floor: quiet.
        assert!(!d.observe(6.0));
        assert!(!d.active());
        assert!(d.observe(11.0));
    }

    #[test]
    fn bank_emits_one_rising_edge_per_signal() {
        let mut bank = DetectorBank::new(DetectorConfig::default());
        let quiet = TelemetrySample {
            at: SimTime::ZERO,
            packets: 1000,
            avg_probe_depth: 1.0,
            mask_count: 4,
            mask_growth: 0,
            emc_thrash: 0.0,
            upcalls: 5,
            upcall_backlog: 0,
            upcall_drops: 0,
            policy_updates: 0,
            cache_flushes: 0,
            top_offenders: vec![],
        };
        for _ in 0..6 {
            assert!(bank.observe(&quiet).is_empty());
        }
        assert!(!bank.any_active());
        let loud = TelemetrySample {
            upcall_backlog: 500,
            upcall_drops: 200,
            top_offenders: vec![crate::telemetry::OffenderDelta {
                ip_dst: 9,
                masks: 512,
                growth: 512,
            }],
            ..quiet.clone()
        };
        let events = bank.observe(&loud);
        let signals: Vec<Signal> = events.iter().map(|e| e.signal).collect();
        assert_eq!(signals, vec![Signal::UpcallBacklog, Signal::UpcallDrops]);
        assert!(events.iter().all(|e| e.offenders == vec![9]));
        assert!(bank.any_active());
        // Same loud sample again: latched, no new edges.
        assert!(bank.observe(&loud).is_empty());
        assert_eq!(
            bank.active_signals(),
            vec![Signal::UpcallBacklog, Signal::UpcallDrops]
        );
    }

    #[test]
    fn policy_churn_alarms_on_flap_rates_not_rollouts() {
        let mut bank = DetectorBank::new(DetectorConfig::default());
        let with_updates = |updates: u64| TelemetrySample {
            at: SimTime::ZERO,
            packets: 1000,
            avg_probe_depth: 1.0,
            mask_count: 4,
            mask_growth: 0,
            emc_thrash: 0.0,
            upcalls: 5,
            upcall_backlog: 0,
            upcall_drops: 0,
            policy_updates: updates,
            cache_flushes: updates,
            top_offenders: vec![],
        };
        // Warm-up plus a slow rollout (one update every other window):
        // stays quiet under the abs_min floor.
        for i in 0..12u64 {
            let events = bank.observe(&with_updates(i % 2));
            assert!(events.is_empty(), "rollout churn must not alarm");
        }
        // A flap at 10 updates/window is a rising edge on PolicyChurn.
        let events = bank.observe(&with_updates(10));
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].signal, Signal::PolicyChurn);
        assert!(bank.active_signals().contains(&Signal::PolicyChurn));
    }
}
