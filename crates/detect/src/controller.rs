//! The closed-loop defense controller.
//!
//! A four-state machine — Idle → Suspect → Mitigating → Cooldown —
//! driven by the detector bank's latched alarms, with hysteresis at
//! every edge: escalation needs `confirm_samples` *consecutive*
//! alarming samples, de-escalation needs `quiet_samples` consecutive
//! quiet ones (plus a minimum mitigation dwell), and Cooldown re-arms
//! straight back to Mitigating on any alarm. On entering Mitigating the
//! controller flips the switch's runtime-mutable knobs — per-port
//! fair-share upcall quota, staged subtable lookup, offender-port
//! quarantine — and on returning to Idle it restores what it changed.

use pi_backend::DataplaneBackend;
use pi_core::SimTime;
use pi_trace::{TraceEventKind, Tracer};

use crate::detector::{DetectionEvent, DetectorBank, DetectorConfig};
use crate::telemetry::{TelemetrySample, TelemetryTap};

/// Where the control loop currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DefenseState {
    /// No anomaly; mitigations (if any were applied) are reverted.
    Idle,
    /// First alarming sample seen; waiting for confirmation before
    /// actuating (absorbs one-sample blips).
    Suspect,
    /// Mitigations are active.
    Mitigating,
    /// Signals went quiet under mitigation; waiting out the cooldown
    /// before reverting (absorbs attack lulls).
    Cooldown,
}

impl DefenseState {
    /// Stable trace code: 0 = Idle, 1 = Suspect, 2 = Mitigating,
    /// 3 = Cooldown. `pi_trace` transition events carry it.
    pub fn code(&self) -> u8 {
        match self {
            DefenseState::Idle => 0,
            DefenseState::Suspect => 1,
            DefenseState::Mitigating => 2,
            DefenseState::Cooldown => 3,
        }
    }
}

/// Controller tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControllerConfig {
    /// Detector-bank tuning.
    pub detector: DetectorConfig,
    /// Consecutive alarming samples (including the one that entered
    /// Suspect) required to escalate Suspect → Mitigating.
    pub confirm_samples: u32,
    /// Consecutive quiet samples required to leave Mitigating.
    pub quiet_samples: u32,
    /// Minimum samples spent Mitigating before Cooldown is reachable.
    pub min_mitigation_samples: u32,
    /// Quiet samples spent in Cooldown before reverting to Idle.
    pub cooldown_samples: u32,
    /// Fair-share actuator: per-port upcall quota to impose while
    /// mitigating (no-op on an inline pipeline).
    pub fair_share_quota: Option<u32>,
    /// Staged-lookup actuator: enable staged subtable lookup while
    /// mitigating.
    pub enable_staged_lookup: bool,
    /// Quarantine actuator: quarantine destinations the detections
    /// attribute (mask count above the detector's offender threshold).
    pub quarantine_offenders: bool,
    /// Whether quarantines are lifted on returning to Idle (true keeps
    /// the loop closed; false leaves quarantine to the operator).
    pub release_quarantine_on_idle: bool,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            detector: DetectorConfig::default(),
            confirm_samples: 2,
            quiet_samples: 5,
            min_mitigation_samples: 10,
            cooldown_samples: 10,
            fair_share_quota: Some(8),
            enable_staged_lookup: true,
            quarantine_offenders: true,
            release_quarantine_on_idle: true,
        }
    }
}

/// One actuation the controller performed (or reverted).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DefenseAction {
    /// Set the bounded pipeline's per-port fair-share quota.
    SetPortQuota(Option<u32>),
    /// Toggled staged subtable lookup.
    SetStagedLookup(bool),
    /// Quarantined a destination (evicting its megaflows).
    Quarantine(u32),
    /// Lifted a quarantine.
    ReleaseQuarantine(u32),
}

/// A state transition, with the actions it triggered.
#[derive(Debug, Clone, PartialEq)]
pub struct DefenseTransition {
    /// When it happened.
    pub at: SimTime,
    /// The state left.
    pub from: DefenseState,
    /// The state entered.
    pub to: DefenseState,
    /// Actuations performed on this transition (entering Mitigating
    /// applies, returning to Idle reverts; other edges act only when a
    /// new offender is quarantined mid-mitigation).
    pub actions: Vec<DefenseAction>,
}

/// Everything the controller did over a run — the sim/fleet reports
/// carry one per defended node.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DefenseReport {
    /// Every state transition, in order.
    pub timeline: Vec<DefenseTransition>,
    /// Every detector rising edge, in order.
    pub detections: Vec<DetectionEvent>,
    /// Times Mitigating was entered from Suspect — the false-positive
    /// counter when the workload is known benign.
    pub activations: u64,
    /// Samples observed.
    pub samples: u64,
}

impl DefenseReport {
    /// Timestamp of the first detection, if any.
    pub fn first_detection(&self) -> Option<SimTime> {
        self.detections.first().map(|e| e.at)
    }

    /// Timestamp mitigation was first applied, if ever. A Cooldown
    /// re-arm does not count — its mitigations were never reverted.
    pub fn first_mitigation(&self) -> Option<SimTime> {
        self.timeline
            .iter()
            .find(|t| t.to == DefenseState::Mitigating && t.from != DefenseState::Cooldown)
            .map(|t| t.at)
    }
}

/// The per-switch control loop: telemetry tap + detector bank + state
/// machine + actuators.
#[derive(Debug, Clone)]
pub struct DefenseController {
    cfg: ControllerConfig,
    tap: TelemetryTap,
    bank: DetectorBank,
    state: DefenseState,
    /// Consecutive alarming samples (Suspect escalation counter).
    alarm_streak: u32,
    /// Consecutive quiet samples (de-escalation counter).
    quiet_streak: u32,
    /// Samples spent in Mitigating since it was entered.
    mitigation_dwell: u32,
    /// Destinations this controller quarantined (so it only ever
    /// releases its own).
    quarantined: Vec<u32>,
    /// Pre-mitigation knob values to restore on Idle.
    saved_quota: Option<Option<u32>>,
    saved_staged: Option<bool>,
    report: DefenseReport,
    /// Trace handle (disabled by default — a guaranteed no-op).
    tracer: Tracer,
}

impl DefenseController {
    /// A controller with the given tuning.
    pub fn new(cfg: ControllerConfig) -> Self {
        DefenseController {
            bank: DetectorBank::new(cfg.detector),
            cfg,
            tap: TelemetryTap::new(),
            state: DefenseState::Idle,
            alarm_streak: 0,
            quiet_streak: 0,
            mitigation_dwell: 0,
            quarantined: Vec::new(),
            saved_quota: None,
            saved_staged: None,
            report: DefenseReport::default(),
            tracer: Tracer::disabled(),
        }
    }

    /// Attaches a trace handle: detections and state transitions are
    /// recorded through it ([`pi_trace::TraceEventKind::Detection`] /
    /// [`pi_trace::TraceEventKind::DefenseTransition`]), attributed to
    /// the latched rebuild cause — linking a policy-flap detection back
    /// to the update that flushed the cache.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// A controller with the default tuning.
    pub fn with_defaults() -> Self {
        Self::new(ControllerConfig::default())
    }

    /// The current state.
    pub fn state(&self) -> DefenseState {
        self.state
    }

    /// The accumulated report.
    pub fn report(&self) -> &DefenseReport {
        &self.report
    }

    /// Consumes the controller, yielding its report.
    pub fn into_report(self) -> DefenseReport {
        self.report
    }

    /// One control-loop iteration: sample the switch, feed the
    /// detectors, advance the state machine, actuate. Call at a fixed
    /// cadence (the engines use [`pi_core::SimTime`]-derived sample
    /// windows). Returns the actions performed this step.
    pub fn step(&mut self, switch: &mut dyn DataplaneBackend, now: SimTime) -> Vec<DefenseAction> {
        let sample = self.tap.sample(&*switch, now);
        self.observe(&sample, Some(switch))
    }

    /// Resets the control loop after a switch crash/restart.
    ///
    /// The restarted switch already lost every actuation (quarantines,
    /// quota, staged-lookup overrides die with the process), and the
    /// telemetry baselines learned from the pre-crash switch are wrong
    /// for the post-crash one — the cold-cache refill looks exactly
    /// like an upcall-flood attack to a stale EWMA, so carrying the
    /// baseline over would false-alarm on every restart. The controller
    /// therefore **deterministically resets to Idle**: fresh tap, fresh
    /// detector bank, no streaks, no quarantine record, no saved knob
    /// values (there is nothing left on the switch to restore them to).
    /// An interrupted Mitigating/Cooldown episode is closed with a
    /// timeline transition at `now`, so reports show the truncation
    /// instead of silently forgetting it.
    pub fn on_switch_restart(&mut self, now: SimTime) {
        if self.state != DefenseState::Idle {
            // Crash truncation starts a new chain; no rebuild cause.
            self.tracer.emit_uncaused(
                now.as_nanos(),
                TraceEventKind::DefenseTransition {
                    from: self.state.code(),
                    to: DefenseState::Idle.code(),
                    actions: 0,
                },
            );
            self.report.timeline.push(DefenseTransition {
                at: now,
                from: self.state,
                to: DefenseState::Idle,
                actions: Vec::new(),
            });
        }
        self.state = DefenseState::Idle;
        self.alarm_streak = 0;
        self.quiet_streak = 0;
        self.mitigation_dwell = 0;
        self.quarantined.clear();
        self.saved_quota = None;
        self.saved_staged = None;
        self.tap = TelemetryTap::new();
        self.bank = DetectorBank::new(self.cfg.detector);
    }

    /// State-machine advance on an externally produced sample. With
    /// `switch` absent (synthetic-sample tests) the actions are
    /// *decided* but not applied.
    pub fn observe(
        &mut self,
        sample: &TelemetrySample,
        mut switch: Option<&mut dyn DataplaneBackend>,
    ) -> Vec<DefenseAction> {
        self.report.samples += 1;
        let events = self.bank.observe(sample);
        // Offenders are judged on the *current* attribution, not only
        // on rising-edge events: a destination crossing the mask
        // threshold while the alarm is already latched (mid-populate)
        // must still be quarantined. Same filter the bank applies to
        // event attribution.
        let offenders = sample.offenders(self.cfg.detector.offender_mask_threshold);
        if self.tracer.is_enabled() {
            for ev in &events {
                self.tracer.emit(
                    ev.at.as_nanos(),
                    TraceEventKind::Detection {
                        signal: ev.signal.code(),
                        value: ev.value,
                        threshold: ev.threshold,
                    },
                );
            }
        }
        self.report.detections.extend(events);
        let alarm = self.bank.any_active();
        if alarm {
            self.alarm_streak += 1;
            self.quiet_streak = 0;
        } else {
            self.alarm_streak = 0;
            self.quiet_streak += 1;
        }

        let mut actions = Vec::new();
        let from = self.state;
        match self.state {
            DefenseState::Idle => {
                if alarm {
                    self.state = DefenseState::Suspect;
                    // confirm_samples = 1 means "no confirmation
                    // dwell": escalate on the detecting sample itself.
                    if self.alarm_streak >= self.cfg.confirm_samples {
                        self.escalate(&mut switch, &offenders, &mut actions);
                    }
                }
            }
            DefenseState::Suspect => {
                if !alarm {
                    self.state = DefenseState::Idle;
                } else if self.alarm_streak >= self.cfg.confirm_samples {
                    self.escalate(&mut switch, &offenders, &mut actions);
                }
            }
            DefenseState::Mitigating => {
                self.mitigation_dwell += 1;
                // The attack may shift targets mid-mitigation: newly
                // attributed offenders join the quarantine.
                self.quarantine_new(&mut switch, &offenders, &mut actions);
                if self.quiet_streak >= self.cfg.quiet_samples
                    && self.mitigation_dwell >= self.cfg.min_mitigation_samples
                {
                    self.state = DefenseState::Cooldown;
                }
            }
            DefenseState::Cooldown => {
                if alarm {
                    // Mitigations are still in force — just re-arm.
                    self.state = DefenseState::Mitigating;
                } else if self.quiet_streak >= self.cfg.quiet_samples + self.cfg.cooldown_samples {
                    self.state = DefenseState::Idle;
                    self.revert_mitigations(&mut switch, &mut actions);
                }
            }
        }
        if self.state != from || !actions.is_empty() {
            self.tracer.emit(
                sample.at.as_nanos(),
                TraceEventKind::DefenseTransition {
                    from: from.code(),
                    to: self.state.code(),
                    actions: actions.len() as u32,
                },
            );
            self.report.timeline.push(DefenseTransition {
                at: sample.at,
                from,
                to: self.state,
                actions: actions.clone(),
            });
        }
        actions
    }

    /// Enters Mitigating and applies the actuators.
    fn escalate(
        &mut self,
        switch: &mut Option<&mut dyn DataplaneBackend>,
        offenders: &[u32],
        actions: &mut Vec<DefenseAction>,
    ) {
        self.state = DefenseState::Mitigating;
        self.mitigation_dwell = 0;
        self.report.activations += 1;
        self.apply_mitigations(switch, offenders, actions);
    }

    fn apply_mitigations(
        &mut self,
        switch: &mut Option<&mut dyn DataplaneBackend>,
        offenders: &[u32],
        actions: &mut Vec<DefenseAction>,
    ) {
        if let Some(quota) = self.cfg.fair_share_quota {
            if self.saved_quota.is_none() {
                self.saved_quota = Some(switch.as_deref().and_then(current_quota));
            }
            let applied = match switch.as_deref_mut() {
                Some(sw) => sw.set_port_quota(Some(quota)),
                None => true,
            };
            if applied {
                actions.push(DefenseAction::SetPortQuota(Some(quota)));
            }
        }
        if self.cfg.enable_staged_lookup {
            if self.saved_staged.is_none() {
                self.saved_staged = Some(
                    switch
                        .as_deref()
                        .map(|sw| sw.config().staged_lookup)
                        .unwrap_or(false),
                );
            }
            if let Some(sw) = switch.as_deref_mut() {
                sw.set_staged_lookup(true);
            }
            actions.push(DefenseAction::SetStagedLookup(true));
        }
        self.quarantine_new(switch, offenders, actions);
    }

    fn quarantine_new(
        &mut self,
        switch: &mut Option<&mut dyn DataplaneBackend>,
        offenders: &[u32],
        actions: &mut Vec<DefenseAction>,
    ) {
        if !self.cfg.quarantine_offenders {
            return;
        }
        for &ip in offenders {
            if self.quarantined.contains(&ip) {
                continue;
            }
            self.quarantined.push(ip);
            if let Some(sw) = switch.as_deref_mut() {
                sw.quarantine(ip);
            }
            actions.push(DefenseAction::Quarantine(ip));
        }
    }

    fn revert_mitigations(
        &mut self,
        switch: &mut Option<&mut dyn DataplaneBackend>,
        actions: &mut Vec<DefenseAction>,
    ) {
        if let Some(saved) = self.saved_quota.take() {
            let reverted = match switch.as_deref_mut() {
                Some(sw) => sw.set_port_quota(saved),
                None => true,
            };
            if reverted {
                actions.push(DefenseAction::SetPortQuota(saved));
            }
        }
        if let Some(saved) = self.saved_staged.take() {
            if let Some(sw) = switch.as_deref_mut() {
                sw.set_staged_lookup(saved);
            }
            actions.push(DefenseAction::SetStagedLookup(saved));
        }
        if self.cfg.release_quarantine_on_idle {
            for ip in std::mem::take(&mut self.quarantined) {
                if let Some(sw) = switch.as_deref_mut() {
                    sw.release_quarantine(ip);
                }
                actions.push(DefenseAction::ReleaseQuarantine(ip));
            }
        }
    }
}

/// The backend's current per-port quota (None under the inline
/// pipeline, where the knob does not exist).
fn current_quota(sw: &dyn DataplaneBackend) -> Option<u32> {
    match sw.config().pipeline {
        pi_datapath::PipelineMode::Bounded(cfg) => cfg.port_quota_per_step,
        pi_datapath::PipelineMode::Inline => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(at_ms: u64, drops: u64, backlog: usize) -> TelemetrySample {
        TelemetrySample {
            at: SimTime::from_millis(at_ms),
            packets: 1_000,
            avg_probe_depth: 1.0,
            mask_count: 4,
            mask_growth: 0,
            emc_thrash: 0.0,
            upcalls: 10,
            upcall_backlog: backlog,
            upcall_drops: drops,
            policy_updates: 0,
            cache_flushes: 0,
            top_offenders: vec![],
        }
    }

    fn controller() -> DefenseController {
        DefenseController::new(ControllerConfig {
            confirm_samples: 2,
            quiet_samples: 3,
            min_mitigation_samples: 4,
            cooldown_samples: 3,
            ..ControllerConfig::default()
        })
    }

    #[test]
    fn full_cycle_idle_suspect_mitigating_cooldown_idle() {
        let mut c = controller();
        let mut t = 0u64;
        let mut feed = |c: &mut DefenseController, drops, backlog| {
            t += 1;
            c.observe(&sample(t, drops, backlog), None);
            c.state()
        };
        // Warm-up (5 samples) + quiet: Idle.
        for _ in 0..7 {
            assert_eq!(feed(&mut c, 0, 0), DefenseState::Idle);
        }
        // Alarm: one sample suspects, the second confirms.
        assert_eq!(feed(&mut c, 500, 400), DefenseState::Suspect);
        assert_eq!(feed(&mut c, 500, 400), DefenseState::Mitigating);
        assert_eq!(c.report().activations, 1);
        assert_eq!(c.report().first_mitigation(), Some(SimTime::from_millis(9)));
        let applied = &c.report().timeline.last().unwrap().actions;
        assert!(applied.contains(&DefenseAction::SetPortQuota(Some(8))));
        assert!(applied.contains(&DefenseAction::SetStagedLookup(true)));
        // Attack persists: stays Mitigating.
        for _ in 0..5 {
            assert_eq!(feed(&mut c, 500, 400), DefenseState::Mitigating);
        }
        // Attack stops: quiet_samples(3) to Cooldown (dwell already met),
        // then cooldown_samples(3) more to Idle, which reverts.
        for _ in 0..2 {
            assert_eq!(feed(&mut c, 0, 0), DefenseState::Mitigating);
        }
        assert_eq!(feed(&mut c, 0, 0), DefenseState::Cooldown);
        for _ in 0..2 {
            assert_eq!(feed(&mut c, 0, 0), DefenseState::Cooldown);
        }
        assert_eq!(feed(&mut c, 0, 0), DefenseState::Idle);
        let reverted = &c.report().timeline.last().unwrap().actions;
        assert!(reverted.contains(&DefenseAction::SetPortQuota(None)));
        assert!(reverted.contains(&DefenseAction::SetStagedLookup(false)));
        assert_eq!(c.report().activations, 1, "one activation for the episode");
    }

    #[test]
    fn switch_restart_resets_to_idle_with_fresh_baseline() {
        let mut c = controller();
        let mut t = 0u64;
        let mut feed = |c: &mut DefenseController, drops, backlog| {
            t += 1;
            c.observe(&sample(t, drops, backlog), None);
            c.state()
        };
        // Warm up, then drive into Mitigating mid-episode.
        for _ in 0..7 {
            feed(&mut c, 0, 0);
        }
        feed(&mut c, 500, 400);
        assert_eq!(feed(&mut c, 500, 400), DefenseState::Mitigating);

        // Crash: deterministic reset to Idle, episode closed on the
        // timeline with no (unapplicable) revert actions.
        c.on_switch_restart(SimTime::from_millis(10));
        assert_eq!(c.state(), DefenseState::Idle);
        let last = c.report().timeline.last().unwrap();
        assert_eq!(last.from, DefenseState::Mitigating);
        assert_eq!(last.to, DefenseState::Idle);
        assert!(last.actions.is_empty(), "nothing on the switch to revert");

        // The detector bank genuinely starts over: samples that would
        // instantly re-escalate a warmed (stale) bank sit out the fresh
        // bank's warm-up instead — the cold-cache refill after a real
        // restart cannot false-alarm.
        for _ in 0..3 {
            assert_eq!(feed(&mut c, 500, 400), DefenseState::Idle);
        }

        // Restarting while already Idle adds no timeline noise.
        let len = c.report().timeline.len();
        c.on_switch_restart(SimTime::from_millis(20));
        assert_eq!(c.report().timeline.len(), len);
    }

    #[test]
    fn single_sample_blip_never_mitigates() {
        let mut c = controller();
        let mut t = 0u64;
        for _ in 0..7 {
            t += 1;
            c.observe(&sample(t, 0, 0), None);
        }
        // Alternating blips: Suspect ↔ Idle, never Mitigating — the
        // confirm hysteresis at work.
        for i in 0..20 {
            t += 1;
            let drops = if i % 2 == 0 { 500 } else { 0 };
            c.observe(&sample(t, drops, 0), None);
            assert_ne!(c.state(), DefenseState::Mitigating);
        }
        assert_eq!(c.report().activations, 0);
    }

    #[test]
    fn cooldown_realarm_returns_to_mitigating_without_reapplying() {
        let mut c = controller();
        let mut t = 0u64;
        let mut feed = |c: &mut DefenseController, drops| {
            t += 1;
            c.observe(&sample(t, drops, 0), None);
            c.state()
        };
        for _ in 0..7 {
            feed(&mut c, 0);
        }
        feed(&mut c, 500);
        feed(&mut c, 500);
        assert_eq!(c.state(), DefenseState::Mitigating);
        for _ in 0..4 {
            feed(&mut c, 500);
        }
        for _ in 0..3 {
            feed(&mut c, 0);
        }
        assert_eq!(c.state(), DefenseState::Cooldown);
        // The attack resumes mid-cooldown: straight back to Mitigating,
        // and the episode still counts as one activation.
        assert_eq!(feed(&mut c, 500), DefenseState::Mitigating);
        assert_eq!(c.report().activations, 1);
    }

    #[test]
    fn benign_constant_churn_baseline_stays_idle() {
        // A steady benign load (constant nonzero upcall rate, stable
        // backlog) must never alarm: the warm-up learns it as normal.
        let mut c = controller();
        for t in 1..200u64 {
            let s = TelemetrySample {
                upcalls: 2_000,
                upcall_backlog: 10,
                ..sample(t, 0, 10)
            };
            c.observe(&s, None);
            assert_eq!(c.state(), DefenseState::Idle);
        }
        assert!(c.report().detections.is_empty());
        assert_eq!(c.report().activations, 0);
    }
}
