//! # pi-detect — online attack detection and closed-loop adaptive defense
//!
//! Every mitigation in [`pi_mitigation`] is a *static* choice: a
//! [`pi_datapath::DpConfig`] fixed before the run. This crate closes
//! the loop while the dataplane serves traffic:
//!
//! * [`telemetry`] — per-window taps over a [`pi_datapath::VSwitch`]:
//!   subtable-count growth, average probe depth, EMC thrash, upcall
//!   backlog/drop rates, and per-destination mask-attribution deltas
//!   (one shared [`pi_mitigation::attribute_entries`] pass).
//! * [`detector`] — streaming change-point detectors with EWMA
//!   baselines and hysteretic thresholds, emitting typed
//!   [`DetectionEvent`]s with attributed offender ports.
//! * [`controller`] — the [`DefenseController`] state machine
//!   (Idle → Suspect → Mitigating → Cooldown) that flips the switch's
//!   runtime-mutable mitigations — per-port fair-share upcall quotas,
//!   staged subtable lookup, offender-port quarantine — and reverts
//!   them once the anomaly clears.
//!
//! `pi_sim` and `pi_fleet` attach one controller per node/shard; the
//! `detection_roc` bench and the `adaptive_defense` scenario measure
//! time-to-detect, victim-throughput recovery and the false-positive
//! rate under benign churn.

pub mod controller;
pub mod detector;
pub mod telemetry;

pub use controller::{
    ControllerConfig, DefenseAction, DefenseController, DefenseReport, DefenseState,
    DefenseTransition,
};
pub use detector::{
    ChangePointDetector, DetectionEvent, DetectorBank, DetectorConfig, Signal, SignalConfig,
};
pub use telemetry::{OffenderDelta, TelemetrySample, TelemetryTap};

// Re-exported so report consumers do not need a direct pi_mitigation
// dependency for the attribution types.
pub use pi_mitigation::{attribute_masks, offenders, MaskAttribution};
