//! Lightweight per-window telemetry taps over a dataplane backend.
//!
//! The tap holds the previous window's cumulative counters and turns
//! each call into a *delta* sample — the dataplane keeps its existing
//! counters, nothing new is charged on the packet path. One attribution
//! pass per sample ([`DataplaneBackend::attribution`], the shared
//! `pi_mitigation` pass on the OVS pipeline) provides the
//! per-destination mask deltas that make detections attributable to a
//! pod. The tap reads only the [`DataplaneBackend`] trait surface, so
//! the same detectors run unchanged over every backend in the matrix —
//! architectures without a given structure report zero for its
//! counters and the corresponding signals simply stay quiet.

use std::collections::HashMap;

use pi_backend::DataplaneBackend;
use pi_core::SimTime;

/// Per-destination mask movement within one sample window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OffenderDelta {
    /// Destination (pod) IP, host byte order.
    pub ip_dst: u32,
    /// Distinct masks currently pinned to this destination.
    pub masks: usize,
    /// Mask-count change since the previous sample (negative after an
    /// eviction or revalidator sweep).
    pub growth: i64,
}

/// One window's worth of detection signals, all derived from counter
/// deltas (rates) or instantaneous gauge reads (levels).
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySample {
    /// Sample timestamp.
    pub at: SimTime,
    /// Packets processed this window.
    pub packets: u64,
    /// Mean subtable probes per fast-path lookup this window — the
    /// attack's primary fingerprint (Fig. 3's collapse mechanism).
    pub avg_probe_depth: f64,
    /// Distinct megaflow masks right now (level).
    pub mask_count: usize,
    /// Mask-count change since the previous sample.
    pub mask_growth: i64,
    /// EMC collision evictions per packet this window — cache-pollution
    /// thrash (live entries displaced by one-shot flows).
    pub emc_thrash: f64,
    /// Slow-path upcalls resolved this window.
    pub upcalls: u64,
    /// Pending upcalls across all port queues right now (level; zero
    /// under the inline pipeline).
    pub upcall_backlog: usize,
    /// Upcalls tail-dropped at full queues this window.
    pub upcall_drops: u64,
    /// Control-plane policy updates applied this window (ACL
    /// installs/removals, pod attaches) — the policy-flap attack's
    /// direct signature: churn without packets.
    pub policy_updates: u64,
    /// Effective cache invalidations this window (coalesced no-op
    /// flushes are not counted).
    pub cache_flushes: u64,
    /// Top destinations by current mask count, with their per-window
    /// growth, descending (at most the tap's `top_k`).
    pub top_offenders: Vec<OffenderDelta>,
}

impl TelemetrySample {
    /// Destinations whose current mask count exceeds `threshold` — the
    /// single offender filter shared by the detector bank's event
    /// attribution and the controller's quarantine actuator.
    pub fn offenders(&self, threshold: usize) -> Vec<u32> {
        self.top_offenders
            .iter()
            .filter(|o| o.masks > threshold)
            .map(|o| o.ip_dst)
            .collect()
    }
}

/// Streams [`TelemetrySample`]s off a switch by diffing its cumulative
/// counters between calls.
#[derive(Debug, Clone)]
pub struct TelemetryTap {
    top_k: usize,
    prev_packets: u64,
    prev_probes: u64,
    prev_collisions: u64,
    prev_upcalls: u64,
    prev_drops: u64,
    prev_masks: usize,
    prev_policy_updates: u64,
    prev_flushes: u64,
    prev_attr: HashMap<u32, usize>,
}

impl Default for TelemetryTap {
    fn default() -> Self {
        Self::new()
    }
}

impl TelemetryTap {
    /// A tap reporting the top 4 offender destinations per sample.
    pub fn new() -> Self {
        Self::with_top_k(4)
    }

    /// A tap reporting at most `top_k` offender destinations.
    pub fn with_top_k(top_k: usize) -> Self {
        TelemetryTap {
            top_k,
            prev_packets: 0,
            prev_probes: 0,
            prev_collisions: 0,
            prev_upcalls: 0,
            prev_drops: 0,
            prev_masks: 0,
            prev_policy_updates: 0,
            prev_flushes: 0,
            prev_attr: HashMap::new(),
        }
    }

    /// Reads the switch and produces the delta sample for the window
    /// since the previous call (the first call's window starts at the
    /// switch's zeroed counters).
    pub fn sample(&mut self, switch: &dyn DataplaneBackend, at: SimTime) -> TelemetrySample {
        let stats = switch.stats();
        let emc = switch.emc_stats();
        let up = switch.upcall_stats();

        let packets = stats.packets - self.prev_packets;
        let probes = stats.subtable_probes - self.prev_probes;
        // Probe depth is per *fast-path lookup that walked subtables*;
        // normalising by packets keeps it comparable across windows and
        // conservative (EMC hits dilute it, exactly as they dilute the
        // real CPU cost).
        let avg_probe_depth = if packets == 0 {
            0.0
        } else {
            probes as f64 / packets as f64
        };
        let collisions = emc.collision_evictions - self.prev_collisions;
        let emc_thrash = if packets == 0 {
            0.0
        } else {
            collisions as f64 / packets as f64
        };
        let mask_count = switch.mask_count();
        let mask_growth = mask_count as i64 - self.prev_masks as i64;
        let upcalls = stats.upcalls - self.prev_upcalls;
        let upcall_drops = up.queue_drops - self.prev_drops;
        let policy_updates = stats.policy_updates - self.prev_policy_updates;
        let cache_flushes = stats.cache_flushes - self.prev_flushes;

        // One attribution pass; per-destination growth vs the previous
        // sample's attribution.
        let attribution = switch.attribution();
        let mut attr_now: HashMap<u32, usize> = HashMap::with_capacity(attribution.len());
        let mut top_offenders = Vec::with_capacity(self.top_k.min(attribution.len()));
        for a in attribution.iter().take(self.top_k) {
            let prev = self.prev_attr.get(&a.ip_dst).copied().unwrap_or(0);
            top_offenders.push(OffenderDelta {
                ip_dst: a.ip_dst,
                masks: a.masks,
                growth: a.masks as i64 - prev as i64,
            });
        }
        for a in &attribution {
            attr_now.insert(a.ip_dst, a.masks);
        }

        self.prev_packets = stats.packets;
        self.prev_probes = stats.subtable_probes;
        self.prev_collisions = emc.collision_evictions;
        self.prev_upcalls = stats.upcalls;
        self.prev_drops = up.queue_drops;
        self.prev_masks = mask_count;
        self.prev_policy_updates = stats.policy_updates;
        self.prev_flushes = stats.cache_flushes;
        self.prev_attr = attr_now;

        TelemetrySample {
            at,
            packets,
            avg_probe_depth,
            mask_count,
            mask_growth,
            emc_thrash,
            upcalls,
            upcall_backlog: switch.upcall_queue_depth(),
            upcall_drops,
            policy_updates,
            cache_flushes,
            top_offenders,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_core::FlowKey;
    use pi_datapath::{DpConfig, VSwitch};

    #[test]
    fn deltas_reset_each_window_and_attribute_growth() {
        let mut sw = VSwitch::new(DpConfig::default());
        let dst = u32::from_be_bytes([10, 0, 0, 9]);
        sw.attach_pod(dst, 1);
        let mut tap = TelemetryTap::new();
        let s0 = tap.sample(&sw, SimTime::ZERO);
        assert_eq!(s0.packets, 0);
        assert_eq!(s0.mask_count, 0);
        assert_eq!(s0.policy_updates, 1, "the build-time attach");
        assert_eq!(s0.cache_flushes, 0, "clean-cache flush coalesced");

        for i in 0..10u16 {
            sw.process(
                &FlowKey::tcp(
                    [10, 1, (i >> 8) as u8, i as u8],
                    [10, 0, 0, 9],
                    1000 + i,
                    80,
                ),
                SimTime::from_millis(1),
            );
        }
        let s1 = tap.sample(&sw, SimTime::from_millis(2));
        assert_eq!(s1.packets, 10);
        assert_eq!(s1.mask_count, 1, "one ip_dst-only mask");
        assert_eq!(s1.mask_growth, 1);
        assert_eq!(s1.upcalls, 1, "nine packets rode the fresh megaflow");
        assert_eq!(s1.top_offenders.len(), 1);
        assert_eq!(s1.top_offenders[0].ip_dst, dst);
        assert_eq!(s1.top_offenders[0].growth, 1);

        // A quiet window reads all-zero deltas.
        let s2 = tap.sample(&sw, SimTime::from_millis(3));
        assert_eq!(s2.packets, 0);
        assert_eq!(s2.mask_growth, 0);
        assert_eq!(s2.avg_probe_depth, 0.0);
        assert_eq!(s2.top_offenders[0].growth, 0);
        assert_eq!(s2.policy_updates, 0);

        // A runtime ACL install on the now-dirty cache is one update
        // and one effective flush in the next window's delta.
        sw.install_acl(dst, pi_classifier::table::whitelist_with_default_deny(&[]));
        let s3 = tap.sample(&sw, SimTime::from_millis(4));
        assert_eq!(s3.policy_updates, 1);
        assert_eq!(s3.cache_flushes, 1);
    }
}
