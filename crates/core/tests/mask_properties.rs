//! Property-based tests of the mask algebra (DESIGN.md invariant 1).
//!
//! These invariants underpin everything above: if masking were not
//! idempotent or union not monotone, the megaflow cache could silently
//! change classification semantics.

use pi_core::{Field, FlowKey, FlowMask, MaskedKey, ALL_FIELDS};
use proptest::prelude::*;

/// Strategy: an arbitrary flow key.
fn arb_key() -> impl Strategy<Value = FlowKey> {
    (
        any::<u32>(),  // in_port
        any::<u64>(),  // eth_src (48 bits used)
        any::<u64>(),  // eth_dst
        any::<u16>(),  // eth_type
        any::<u32>(),  // ip_src
        any::<u32>(),  // ip_dst
        (any::<u8>(), any::<u8>(), any::<u8>()),
        any::<u16>(),  // tp_src
        any::<u16>(),  // tp_dst
    )
        .prop_map(
            |(in_port, es, ed, et, ip_s, ip_d, (proto, tos, ttl), tp_s, tp_d)| {
                let mut k = FlowKey::default();
                k.set_field(Field::InPort, in_port as u64).unwrap();
                k.set_field(Field::EthSrc, es & Field::EthSrc.full_mask())
                    .unwrap();
                k.set_field(Field::EthDst, ed & Field::EthDst.full_mask())
                    .unwrap();
                k.set_field(Field::EthType, et as u64).unwrap();
                k.set_field(Field::IpSrc, ip_s as u64).unwrap();
                k.set_field(Field::IpDst, ip_d as u64).unwrap();
                k.set_field(Field::IpProto, proto as u64).unwrap();
                k.set_field(Field::IpTos, tos as u64).unwrap();
                k.set_field(Field::IpTtl, ttl as u64).unwrap();
                k.set_field(Field::TpSrc, tp_s as u64).unwrap();
                k.set_field(Field::TpDst, tp_d as u64).unwrap();
                k
            },
        )
}

/// Strategy: an arbitrary mask (each field independently masked).
fn arb_mask() -> impl Strategy<Value = FlowMask> {
    proptest::collection::vec(any::<u64>(), ALL_FIELDS.len()).prop_map(|bits| {
        let mut m = FlowMask::default();
        for (f, b) in ALL_FIELDS.iter().zip(bits) {
            m.set_field(*f, b & f.full_mask()).unwrap();
        }
        m
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn apply_is_idempotent(key in arb_key(), mask in arb_mask()) {
        let once = mask.apply(&key);
        prop_assert_eq!(mask.apply(&once), once);
    }

    #[test]
    fn union_is_commutative_associative(a in arb_mask(), b in arb_mask(), c in arb_mask()) {
        prop_assert_eq!(a.union(&b), b.union(&a));
        prop_assert_eq!(a.union(&b).union(&c), a.union(&b.union(&c)));
    }

    #[test]
    fn union_upper_bounds_inputs(a in arb_mask(), b in arb_mask()) {
        let u = a.union(&b);
        prop_assert!(a.is_subset_of(&u));
        prop_assert!(b.is_subset_of(&u));
    }

    #[test]
    fn subset_iff_bitwise_implication(a in arb_mask(), b in arb_mask()) {
        let expected = ALL_FIELDS
            .iter()
            .all(|f| a.field(*f) & b.field(*f) == a.field(*f));
        prop_assert_eq!(a.is_subset_of(&b), expected);
    }

    #[test]
    fn wider_mask_matches_fewer_packets(key in arb_key(), pkt in arb_key(), a in arb_mask(), extra in arb_mask()) {
        // Construct b ⊇ a, so matching under b implies matching under a.
        let b = a.union(&extra);
        prop_assert!(a.is_subset_of(&b));
        let mk_a = MaskedKey::new(key, a);
        let mk_b = MaskedKey::new(key, b);
        if mk_b.matches(&pkt) {
            prop_assert!(mk_a.matches(&pkt));
        }
    }

    #[test]
    fn masked_key_matches_its_witness(key in arb_key(), mask in arb_mask()) {
        let mk = MaskedKey::new(key, mask);
        prop_assert!(mk.matches(&mk.witness()));
        // And the original key matches too (canonicalisation is sound).
        prop_assert!(mk.matches(&key));
    }

    #[test]
    fn overlap_is_symmetric_and_reflexive(k1 in arb_key(), k2 in arb_key(), m1 in arb_mask(), m2 in arb_mask()) {
        let a = MaskedKey::new(k1, m1);
        let b = MaskedKey::new(k2, m2);
        prop_assert_eq!(a.overlaps(&b), b.overlaps(&a));
        prop_assert!(a.overlaps(&a));
    }

    #[test]
    fn subset_implies_overlap(k1 in arb_key(), k2 in arb_key(), m1 in arb_mask(), m2 in arb_mask()) {
        let a = MaskedKey::new(k1, m1);
        let b = MaskedKey::new(k2, m2);
        if a.is_subset_of(&b) {
            prop_assert!(a.overlaps(&b));
        }
    }

    #[test]
    fn shared_match_implies_overlap(pkt in arb_key(), k1 in arb_key(), k2 in arb_key(), m1 in arb_mask(), m2 in arb_mask()) {
        let a = MaskedKey::new(k1, m1);
        let b = MaskedKey::new(k2, m2);
        if a.matches(&pkt) && b.matches(&pkt) {
            prop_assert!(a.overlaps(&b), "packet in both ⇒ masked keys overlap");
        }
    }

    #[test]
    fn key_field_round_trip(key in arb_key()) {
        let mut rebuilt = FlowKey::default();
        for f in ALL_FIELDS {
            rebuilt.set_field(f, key.field(f)).unwrap();
        }
        prop_assert_eq!(rebuilt, key);
    }

    #[test]
    fn significant_bits_additive_under_disjoint_union(a in arb_mask(), b in arb_mask()) {
        // counting |a| + |b| − |a∩b| = |a∪b| for per-bit sets
        let inter: u32 = ALL_FIELDS
            .iter()
            .map(|f| (a.field(*f) & b.field(*f)).count_ones())
            .sum();
        prop_assert_eq!(
            a.union(&b).significant_bits(),
            a.significant_bits() + b.significant_bits() - inter
        );
    }
}
