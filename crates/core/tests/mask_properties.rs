//! Randomised property tests of the mask algebra (DESIGN.md invariant 1).
//!
//! These invariants underpin everything above: if masking were not
//! idempotent or union not monotone, the megaflow cache could silently
//! change classification semantics.
//!
//! The workspace builds without external dependencies, so instead of
//! `proptest` these run a fixed number of cases from the in-house
//! deterministic [`SplitMix64`] generator — same coverage intent,
//! perfectly reproducible failures (the case index pinpoints the seed).

use pi_core::{FlowKey, FlowMask, MaskedKey, SplitMix64, ALL_FIELDS};

const CASES: u64 = 512;

fn rand_key(rng: &mut SplitMix64) -> FlowKey {
    let mut k = FlowKey::default();
    for f in ALL_FIELDS {
        k.set_field(f, rng.next_u64() & f.full_mask()).unwrap();
    }
    k
}

fn rand_mask(rng: &mut SplitMix64) -> FlowMask {
    let mut m = FlowMask::default();
    for f in ALL_FIELDS {
        m.set_field(f, rng.next_u64() & f.full_mask()).unwrap();
    }
    m
}

/// Runs `body` for `CASES` deterministic cases, each with its own RNG
/// stream so failures are reproducible from the reported case index.
#[test]
fn apply_is_idempotent() {
    pi_core::for_cases(CASES, 0x01, |rng| {
        let key = rand_key(rng);
        let mask = rand_mask(rng);
        let once = mask.apply(&key);
        assert_eq!(mask.apply(&once), once);
    });
}

#[test]
fn union_is_commutative_associative() {
    pi_core::for_cases(CASES, 0x02, |rng| {
        let (a, b, c) = (rand_mask(rng), rand_mask(rng), rand_mask(rng));
        assert_eq!(a.union(&b), b.union(&a));
        assert_eq!(a.union(&b).union(&c), a.union(&b.union(&c)));
    });
}

#[test]
fn union_upper_bounds_inputs() {
    pi_core::for_cases(CASES, 0x03, |rng| {
        let (a, b) = (rand_mask(rng), rand_mask(rng));
        let u = a.union(&b);
        assert!(a.is_subset_of(&u));
        assert!(b.is_subset_of(&u));
    });
}

#[test]
fn subset_iff_bitwise_implication() {
    pi_core::for_cases(CASES, 0x04, |rng| {
        let (a, b) = (rand_mask(rng), rand_mask(rng));
        let expected = ALL_FIELDS
            .iter()
            .all(|f| a.field(*f) & b.field(*f) == a.field(*f));
        assert_eq!(a.is_subset_of(&b), expected);
    });
}

#[test]
fn wider_mask_matches_fewer_packets() {
    pi_core::for_cases(CASES, 0x05, |rng| {
        let key = rand_key(rng);
        let pkt = rand_key(rng);
        let a = rand_mask(rng);
        let extra = rand_mask(rng);
        // Construct b ⊇ a, so matching under b implies matching under a.
        let b = a.union(&extra);
        assert!(a.is_subset_of(&b));
        let mk_a = MaskedKey::new(key, a);
        let mk_b = MaskedKey::new(key, b);
        if mk_b.matches(&pkt) {
            assert!(mk_a.matches(&pkt));
        }
    });
}

#[test]
fn masked_key_matches_its_witness() {
    pi_core::for_cases(CASES, 0x06, |rng| {
        let key = rand_key(rng);
        let mask = rand_mask(rng);
        let mk = MaskedKey::new(key, mask);
        assert!(mk.matches(&mk.witness()));
        // And the original key matches too (canonicalisation is sound).
        assert!(mk.matches(&key));
    });
}

#[test]
fn overlap_is_symmetric_and_reflexive() {
    pi_core::for_cases(CASES, 0x07, |rng| {
        let a = MaskedKey::new(rand_key(rng), rand_mask(rng));
        let b = MaskedKey::new(rand_key(rng), rand_mask(rng));
        assert_eq!(a.overlaps(&b), b.overlaps(&a));
        assert!(a.overlaps(&a));
    });
}

#[test]
fn subset_implies_overlap() {
    pi_core::for_cases(CASES, 0x08, |rng| {
        let a = MaskedKey::new(rand_key(rng), rand_mask(rng));
        let b = MaskedKey::new(rand_key(rng), rand_mask(rng));
        if a.is_subset_of(&b) {
            assert!(a.overlaps(&b));
        }
    });
}

#[test]
fn shared_match_implies_overlap() {
    pi_core::for_cases(CASES, 0x09, |rng| {
        let pkt = rand_key(rng);
        let a = MaskedKey::new(rand_key(rng), rand_mask(rng));
        let b = MaskedKey::new(rand_key(rng), rand_mask(rng));
        if a.matches(&pkt) && b.matches(&pkt) {
            assert!(a.overlaps(&b), "packet in both ⇒ masked keys overlap");
        }
    });
}

#[test]
fn key_field_round_trip() {
    pi_core::for_cases(CASES, 0x0a, |rng| {
        let key = rand_key(rng);
        let mut rebuilt = FlowKey::default();
        for f in ALL_FIELDS {
            rebuilt.set_field(f, key.field(f)).unwrap();
        }
        assert_eq!(rebuilt, key);
    });
}

#[test]
fn significant_bits_additive_under_disjoint_union() {
    pi_core::for_cases(CASES, 0x0b, |rng| {
        let (a, b) = (rand_mask(rng), rand_mask(rng));
        // counting |a| + |b| − |a∩b| = |a∪b| for per-bit sets
        let inter: u32 = ALL_FIELDS
            .iter()
            .map(|f| (a.field(*f) & b.field(*f)).count_ones())
            .sum();
        assert_eq!(
            a.union(&b).significant_bits(),
            a.significant_bits() + b.significant_bits() - inter
        );
    });
}
