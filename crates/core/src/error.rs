//! Workspace-wide error type.

use std::fmt;

/// Errors produced by the foundational layers.
///
/// Higher crates define their own richer error enums and convert into or
/// wrap `CoreError` where the failure originates down here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A textual address (MAC or IPv4) failed to parse.
    ParseAddr(String),
    /// A field value exceeded the field's bit width
    /// (e.g. writing `0x1_0000` into a 16-bit port).
    ValueOutOfRange {
        /// The field being written, by name.
        field: &'static str,
        /// The offending value.
        value: u64,
        /// The field's width in bits.
        width: u8,
    },
    /// A prefix length exceeded the field's bit width.
    PrefixTooLong {
        /// The field, by name.
        field: &'static str,
        /// The requested prefix length.
        len: u8,
        /// The field's width in bits.
        width: u8,
    },
    /// A buffer was too short to hold or parse a packet.
    Truncated {
        /// What was being parsed or emitted.
        what: &'static str,
        /// Bytes required.
        needed: usize,
        /// Bytes available.
        got: usize,
    },
    /// A malformed packet (bad version, header length, checksum…).
    Malformed(&'static str),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::ParseAddr(s) => write!(f, "cannot parse address {s:?}"),
            CoreError::ValueOutOfRange {
                field,
                value,
                width,
            } => write!(
                f,
                "value {value:#x} does not fit the {width}-bit field {field}"
            ),
            CoreError::PrefixTooLong { field, len, width } => {
                write!(
                    f,
                    "prefix /{len} too long for the {width}-bit field {field}"
                )
            }
            CoreError::Truncated { what, needed, got } => {
                write!(f, "{what}: buffer too short ({got} bytes, need {needed})")
            }
            CoreError::Malformed(what) => write!(f, "malformed packet: {what}"),
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = CoreError::ValueOutOfRange {
            field: "tp_src",
            value: 0x1_0000,
            width: 16,
        };
        let msg = e.to_string();
        assert!(msg.contains("tp_src"));
        assert!(msg.contains("16-bit"));

        let e = CoreError::Truncated {
            what: "ipv4 header",
            needed: 20,
            got: 7,
        };
        assert!(e.to_string().contains("need 20"));

        let e = CoreError::PrefixTooLong {
            field: "ip_src",
            len: 40,
            width: 32,
        };
        assert!(e.to_string().contains("/40"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&CoreError::Malformed("x"));
    }
}
