//! Deterministic random numbers without external dependencies.
//!
//! Core algorithms (hash seeding, witness generation, property helpers)
//! need reproducible randomness. Higher crates that want distributions use
//! the `rand` crate; down here a tiny, well-known generator keeps the
//! dependency graph clean and the behaviour identical on every platform.

/// SplitMix64: a tiny, fast, high-quality 64-bit PRNG.
///
/// This is the generator Vigna recommends for seeding xoshiro; its state
/// transition is a simple Weyl sequence, so it is trivially reproducible
/// and has no alignment or padding pitfalls.
///
/// ```
/// use pi_core::SplitMix64;
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Distinct seeds give independent
    /// streams for all practical purposes.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Next 32 uniformly random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, bound)` via Lemire's multiply-shift reduction
    /// (bias negligible for the bounds used in this workspace).
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Picks a uniformly random element, or `None` on an empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.gen_range(slice.len() as u64) as usize])
        }
    }

    /// Derives an independent child generator (for per-component streams).
    pub fn fork(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }
}

/// The deterministic generator for case `case` of the randomized-test
/// stream `tag`: every case gets its own seed, so a failure is
/// reproducible from the `(tag, case)` pair alone.
pub fn case_rng(tag: u64, case: u64) -> SplitMix64 {
    SplitMix64::new(tag ^ case.wrapping_mul(0x9e37_79b9))
}

/// Runs `body` for `cases` deterministic randomized cases — the
/// workspace's stand-in for property tests (external test frameworks
/// are unavailable offline). Each case receives the [`case_rng`] stream
/// for `(tag, case)`.
pub fn for_cases(cases: u64, tag: u64, mut body: impl FnMut(&mut SplitMix64)) {
    for case in 0..cases {
        body(&mut case_rng(tag, case));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_values() {
        // First outputs for seed 0, cross-checked against the canonical
        // SplitMix64 reference implementation.
        let mut rng = SplitMix64::new(0);
        assert_eq!(rng.next_u64(), 0xe220_a839_7b1d_cdaf);
        assert_eq!(rng.next_u64(), 0x6e78_9e6a_a1b9_65f4);
        assert_eq!(rng.next_u64(), 0x06c4_5d18_8009_454f);
    }

    #[test]
    fn determinism_and_divergence() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let mut c = SplitMix64::new(43);
        let av: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let bv: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let cv: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(av, bv);
        assert_ne!(av, cv);
    }

    #[test]
    fn gen_range_within_bounds() {
        let mut rng = SplitMix64::new(1);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX] {
            for _ in 0..100 {
                assert!(rng.gen_range(bound) < bound);
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn gen_range_zero_panics() {
        SplitMix64::new(1).gen_range(0);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = SplitMix64::new(9);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SplitMix64::new(5);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_bool_roughly_calibrated() {
        let mut rng = SplitMix64::new(123);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits={hits}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SplitMix64::new(77);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle left input sorted");
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = SplitMix64::new(3);
        let items = [1u8, 2, 3, 4];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(*rng.choose(&items).unwrap());
        }
        assert_eq!(seen.len(), 4);
        assert!(rng.choose::<u8>(&[]).is_none());
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut parent = SplitMix64::new(2024);
        let mut child1 = parent.fork();
        let mut child2 = parent.fork();
        assert_ne!(child1.next_u64(), child2.next_u64());
    }

    #[test]
    fn distribution_sanity_mean() {
        let mut rng = SplitMix64::new(55);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((0.48..0.52).contains(&mean), "mean={mean}");
    }
}
