//! One-pass flow hashing for the per-packet fast path.
//!
//! The datapath hashes every packet many times: once for the exact-match
//! cache and once per subtable mask during the Tuple Space Search walk.
//! Doing that with the standard library's SipHash over a freshly masked
//! [`FlowKey`] costs more than the lookups themselves — and every wasted
//! cycle per probe amplifies the DoS the paper describes (§2), because
//! the attack's damage is measured in probes per packet.
//!
//! This module removes both costs:
//!
//! * [`KeyWords`] extracts a packet's field words **once**; every
//!   subsequent hash is a short multiply-xor fold (FxHash-style) over
//!   those words.
//! * [`MaskWords`] precomputes a subtable mask's words, so the packet's
//!   hash *under that mask* — [`KeyWords::masked_hash`] — is an AND per
//!   word folded into the same mix, with **no masked key materialised**.
//!
//! The load-bearing invariant (pinned by tests): for any key `k` and
//! mask `m`,
//!
//! ```text
//! KeyWords::of(&k).masked_hash(&MaskWords::of(&m))
//!     == KeyWords::of(&m.apply(&k)).full_hash()
//! ```
//!
//! so a table keyed by the full hash of canonical (pre-masked) entries
//! can be probed with the masked hash of a raw packet.
//!
//! Hashing is fully deterministic (no per-process random state), which
//! also makes table iteration order reproducible across runs — a
//! property the fleet determinism tests rely on.

use crate::fields::ALL_FIELDS;
use crate::key::FlowKey;
use crate::mask::FlowMask;

/// Number of words in a flow key's word representation (one per field,
/// in [`ALL_FIELDS`] order).
pub const KEY_WORDS: usize = ALL_FIELDS.len();

/// The FxHash multiplier (Firefox / rustc's fast non-cryptographic
/// hash); chosen for good avalanche under `rotate ^ multiply` folding.
const FX_K: u64 = 0x517c_c1b7_2722_0a95;

#[inline(always)]
fn mix(h: u64, word: u64) -> u64 {
    (h.rotate_left(5) ^ word).wrapping_mul(FX_K)
}

/// SplitMix64-style finalizer: full avalanche so the *low* bits — the
/// ones power-of-two tables index by — depend on every input bit.
/// (Raw FxHash is weak in the low bits; a multiply only carries
/// influence upward.)
#[inline(always)]
fn finalize(h: u64) -> u64 {
    let z = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    let z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[inline(always)]
fn fold(words: &[u64; KEY_WORDS]) -> u64 {
    let mut h = 0u64;
    for &w in words {
        h = mix(h, w);
    }
    finalize(h)
}

/// A flow key's field words, extracted once per packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyWords {
    words: [u64; KEY_WORDS],
}

impl KeyWords {
    /// The all-zero word set (= `KeyWords::of(&FlowKey::default())`);
    /// handy for pre-sizing batch buffers.
    pub const ZERO: KeyWords = KeyWords {
        words: [0; KEY_WORDS],
    };

    /// Extracts `key`'s words — the one pass per packet. Field order is
    /// [`ALL_FIELDS`] order (pinned by a test).
    #[inline]
    pub fn of(key: &FlowKey) -> Self {
        KeyWords {
            words: [
                key.in_port as u64,
                key.eth_src.as_u64(),
                key.eth_dst.as_u64(),
                key.eth_type as u64,
                key.ip_src as u64,
                key.ip_dst as u64,
                key.ip_proto as u64,
                key.ip_tos as u64,
                key.ip_ttl as u64,
                key.tp_src as u64,
                key.tp_dst as u64,
            ],
        }
    }

    /// Hash of the key as-is (all bits significant). For a canonical
    /// (pre-masked) key this equals the masked hash under its own mask.
    #[inline]
    pub fn full_hash(&self) -> u64 {
        fold(&self.words)
    }

    /// Hash of the key under `mask`, without materialising the masked
    /// key: one AND per word folded into the mix.
    #[inline]
    pub fn masked_hash(&self, mask: &MaskWords) -> u64 {
        let mut h = 0u64;
        for (&w, &m) in self.words.iter().zip(mask.words.iter()) {
            h = mix(h, w & m);
        }
        finalize(h)
    }
}

/// A wildcard mask's field words, precomputed once per subtable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaskWords {
    words: [u64; KEY_WORDS],
}

impl MaskWords {
    /// Extracts `mask`'s words in [`ALL_FIELDS`] order.
    #[inline]
    pub fn of(mask: &FlowMask) -> Self {
        let mut words = [0u64; KEY_WORDS];
        for (w, f) in words.iter_mut().zip(ALL_FIELDS) {
            *w = mask.field(f);
        }
        MaskWords { words }
    }
}

/// Convenience: the deterministic full-key hash of `key` — what the
/// exact-match cache indexes by.
#[inline]
pub fn flow_hash(key: &FlowKey) -> u64 {
    KeyWords::of(key).full_hash()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::for_cases;

    fn rand_key(rng: &mut crate::SplitMix64) -> FlowKey {
        let mut k = FlowKey::default();
        for f in ALL_FIELDS {
            k.set_field(f, rng.next_u64() & f.full_mask()).unwrap();
        }
        k
    }

    fn rand_mask(rng: &mut crate::SplitMix64) -> FlowMask {
        let mut m = FlowMask::default();
        for f in ALL_FIELDS {
            m.set_field(f, rng.next_u64() & f.full_mask()).unwrap();
        }
        m
    }

    #[test]
    fn key_words_match_field_reflection_order() {
        for_cases(64, 0x4a5, |rng| {
            let k = rand_key(rng);
            let words = KeyWords::of(&k);
            for (i, f) in ALL_FIELDS.iter().enumerate() {
                assert_eq!(words.words[i], k.field(*f), "word {i} ({f})");
            }
        });
    }

    #[test]
    fn masked_hash_equals_full_hash_of_canonical_key() {
        // The invariant the flat subtables stand on.
        for_cases(256, 0x4a6, |rng| {
            let k = rand_key(rng);
            let m = rand_mask(rng);
            assert_eq!(
                KeyWords::of(&k).masked_hash(&MaskWords::of(&m)),
                KeyWords::of(&m.apply(&k)).full_hash()
            );
        });
    }

    #[test]
    fn full_hash_is_masked_hash_under_exact_mask() {
        for_cases(64, 0x4a7, |rng| {
            let k = rand_key(rng);
            let exact = MaskWords::of(&FlowMask::exact());
            assert_eq!(
                KeyWords::of(&k).full_hash(),
                KeyWords::of(&k).masked_hash(&exact)
            );
        });
    }

    #[test]
    fn hash_is_deterministic_and_key_sensitive() {
        let a = FlowKey::tcp([10, 0, 0, 1], [10, 0, 0, 2], 1234, 80);
        let b = FlowKey::tcp([10, 0, 0, 1], [10, 0, 0, 2], 1234, 80);
        let c = FlowKey::tcp([10, 0, 0, 1], [10, 0, 0, 2], 1234, 81);
        assert_eq!(flow_hash(&a), flow_hash(&b));
        assert_ne!(flow_hash(&a), flow_hash(&c));
    }

    #[test]
    fn high_bit_differences_reach_low_hash_bits() {
        // Power-of-two tables index with the low bits; keys differing
        // only in a field's *high* bits must still spread over sets.
        // 256 first-octet variants of ip_src → expect ~256 distinct
        // values of (hash & 0xff) collisions-permitting (> 128 easily).
        let mut low_bits = std::collections::HashSet::new();
        for octet in 0..=255u8 {
            let k = FlowKey::tcp([octet, 0, 0, 1], [10, 0, 0, 2], 1, 2);
            low_bits.insert(flow_hash(&k) & 0xff);
        }
        assert!(low_bits.len() > 128, "got {} distinct", low_bits.len());
    }

    #[test]
    fn zero_words_constant_matches_default_key() {
        assert_eq!(KeyWords::ZERO, KeyWords::of(&FlowKey::default()));
    }

    #[test]
    fn wildcard_mask_hashes_everything_identically() {
        for_cases(32, 0x4a8, |rng| {
            let k = rand_key(rng);
            let wild = MaskWords::of(&FlowMask::WILDCARD);
            assert_eq!(
                KeyWords::of(&k).masked_hash(&wild),
                KeyWords::of(&FlowKey::default()).full_hash()
            );
        });
    }
}
