//! # pi-core — foundational types for the policy-injection reproduction
//!
//! This crate is the bottom of the workspace dependency graph. It defines
//! the vocabulary every other crate speaks:
//!
//! * [`FlowKey`] — the parsed header tuple an OVS-style datapath matches on
//!   (ingress port, Ethernet addresses and type, the IPv4 5-tuple plus
//!   TOS/TTL).
//! * [`FlowMask`] — a per-*bit* wildcard mask over the same fields. Tuple
//!   Space Search groups cache entries by their mask, so masks — not rules —
//!   are the currency of the attack this workspace reproduces.
//! * [`MaskedKey`] — a canonical `(key & mask, mask)` pair with the overlap
//!   and containment predicates the classifier and the megaflow cache need.
//! * [`Field`] / [`FieldSpec`] — a reflection layer giving uniform `u64`
//!   access to every header field, used by the prefix tries and by the
//!   slow path's un-wildcarding logic.
//! * [`SimTime`] — nanosecond-resolution simulated time.
//! * [`Port`] — typed virtual-port numbers (local pod vport vs the
//!   fabric uplink), replacing the old raw `0xffff` sentinel.
//! * [`SplitMix64`] — a tiny deterministic RNG so that core algorithms can
//!   be randomized reproducibly without external dependencies.
//! * [`KeyWords`] / [`MaskWords`] — one-pass deterministic flow hashing
//!   ([`hash`]): extract a packet's field words once, then derive its hash
//!   under every subtable mask without re-hashing a masked key per probe.
//!
//! Nothing in this crate allocates per packet; `FlowKey` and `FlowMask` are
//! plain `Copy` structs, mirroring the fixed-size `struct flow` /
//! `struct flow_wildcards` pair in Open vSwitch.

pub mod addr;
pub mod error;
pub mod fields;
pub mod hash;
pub mod key;
pub mod mask;
pub mod port;
pub mod rng;
pub mod time;

pub use addr::MacAddr;
pub use error::CoreError;
pub use fields::{Field, FieldSpec, Stage, ALL_FIELDS};
pub use hash::{flow_hash, KeyWords, MaskWords, KEY_WORDS};
pub use key::FlowKey;
pub use mask::{FlowMask, MaskedKey};
pub use port::Port;
pub use rng::{case_rng, for_cases, SplitMix64};
pub use time::SimTime;

/// Convenience result alias used across the workspace.
pub type Result<T> = std::result::Result<T, CoreError>;
