//! Typed virtual-port numbers.
//!
//! The datapath layer stores vports as raw `u32`s (mirroring OVS's
//! `ofp_port_t`), historically with a magic `0xffff` sentinel meaning
//! "not mine — hand the packet to the fabric uplink". [`Port`] gives
//! that convention a type, so the simulators ([`pi_sim`], `pi_fleet`)
//! can match on intent instead of comparing against a bare constant.

use std::fmt;

/// Where a switch delivers a processed packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Port {
    /// A local virtual port: the pod/VM attached at this vport number.
    Local(u32),
    /// The fabric uplink: the destination lives on another host.
    Uplink,
}

impl Port {
    /// The raw vport number reserved for the uplink (the OVS-style
    /// `OFPP_NONE`-adjacent sentinel the datapath stores).
    pub const UPLINK_RAW: u32 = 0xffff;

    /// Decodes a raw datapath vport number.
    pub const fn from_raw(raw: u32) -> Port {
        if raw == Self::UPLINK_RAW {
            Port::Uplink
        } else {
            Port::Local(raw)
        }
    }

    /// Encodes back to the raw vport number the datapath stores.
    ///
    /// # Panics
    /// Panics if a local port collides with the uplink sentinel — such a
    /// port could never have been built by [`Port::from_raw`].
    pub const fn raw(self) -> u32 {
        match self {
            Port::Uplink => Self::UPLINK_RAW,
            Port::Local(v) => {
                assert!(
                    v != Self::UPLINK_RAW,
                    "local vport collides with uplink sentinel"
                );
                v
            }
        }
    }

    /// True for the fabric uplink.
    pub const fn is_uplink(self) -> bool {
        matches!(self, Port::Uplink)
    }
}

impl fmt::Display for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Port::Local(v) => write!(f, "vport{v}"),
            Port::Uplink => write!(f, "uplink"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_round_trip() {
        assert_eq!(Port::from_raw(1), Port::Local(1));
        assert_eq!(Port::from_raw(0xffff), Port::Uplink);
        assert_eq!(Port::Local(7).raw(), 7);
        assert_eq!(Port::Uplink.raw(), 0xffff);
        for raw in [0u32, 1, 42, 0xfffe, 0xffff, 0x10000] {
            assert_eq!(Port::from_raw(raw).raw(), raw);
        }
    }

    #[test]
    fn uplink_predicate_and_display() {
        assert!(Port::Uplink.is_uplink());
        assert!(!Port::Local(3).is_uplink());
        assert_eq!(Port::Local(3).to_string(), "vport3");
        assert_eq!(Port::Uplink.to_string(), "uplink");
    }

    #[test]
    #[should_panic(expected = "sentinel")]
    fn local_sentinel_collision_panics() {
        let _ = Port::Local(Port::UPLINK_RAW).raw();
    }
}
