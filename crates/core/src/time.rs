//! Simulated time.
//!
//! The simulator is discrete-time; everything that needs a clock takes a
//! [`SimTime`]. Keeping time out of the wall clock makes every experiment
//! bit-for-bit reproducible.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in nanoseconds since scenario start.
///
/// `SimTime` is also used for durations (the type is affine only by
/// convention; the arithmetic provided is the small subset the simulator
/// needs and saturates rather than wrapping).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The scenario start instant.
    pub const ZERO: SimTime = SimTime(0);

    /// A sentinel later than any reachable simulation instant ("this
    /// event never fires"). Compare against it; adding to it saturates.
    pub const NEVER: SimTime = SimTime(u64::MAX);

    /// Creates a time from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates a time from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates a time from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates a time from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Creates a time from fractional seconds (for human-authored
    /// scenario parameters; not used in hot paths).
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s >= 0.0 && s.is_finite(), "negative or non-finite time");
        SimTime((s * 1e9).round() as u64)
    }

    /// Nanoseconds since scenario start.
    pub const fn as_nanos(&self) -> u64 {
        self.0
    }

    /// Whole milliseconds since scenario start.
    pub const fn as_millis(&self) -> u64 {
        self.0 / 1_000_000
    }

    /// Fractional seconds since scenario start.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating difference, as a duration.
    pub const fn saturating_sub(self, earlier: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(earlier.0))
    }

    /// Checked multiplication of a duration by a count.
    pub fn checked_mul(self, n: u64) -> Option<SimTime> {
        self.0.checked_mul(n).map(SimTime)
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    /// Panics in debug builds if `rhs > self`; use
    /// [`SimTime::saturating_sub`] when underflow is expected.
    fn sub(self, rhs: SimTime) -> SimTime {
        debug_assert!(rhs.0 <= self.0, "SimTime subtraction underflow");
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}µs", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(2), SimTime::from_millis(2_000));
        assert_eq!(SimTime::from_millis(3), SimTime::from_micros(3_000));
        assert_eq!(SimTime::from_micros(5), SimTime::from_nanos(5_000));
        assert_eq!(SimTime::from_secs_f64(1.5), SimTime::from_millis(1_500));
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_secs(60);
        let b = SimTime::from_millis(500);
        assert_eq!((a + b).as_millis(), 60_500);
        assert_eq!((a - b).as_millis(), 59_500);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        let mut t = SimTime::ZERO;
        t += SimTime::from_secs(1);
        assert_eq!(t.as_secs_f64(), 1.0);
    }

    #[test]
    fn add_saturates() {
        let huge = SimTime::from_nanos(u64::MAX);
        assert_eq!(huge + SimTime::from_secs(1), huge);
    }

    #[test]
    fn checked_mul() {
        assert_eq!(
            SimTime::from_millis(10).checked_mul(100),
            Some(SimTime::from_secs(1))
        );
        assert_eq!(SimTime::from_nanos(u64::MAX).checked_mul(2), None);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_secs(59) < SimTime::from_secs(60));
        assert!(SimTime::ZERO < SimTime::from_nanos(1));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimTime::from_secs(90).to_string(), "90.000s");
        assert_eq!(SimTime::from_millis(250).to_string(), "250.000ms");
        assert_eq!(SimTime::from_micros(7).to_string(), "7.000µs");
        assert_eq!(SimTime::from_nanos(42).to_string(), "42ns");
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "underflow")]
    fn debug_sub_underflow_panics() {
        let _ = SimTime::from_secs(1) - SimTime::from_secs(2);
    }
}
