//! The parsed flow key.

use std::fmt;
use std::net::Ipv4Addr;

use crate::addr::MacAddr;
use crate::error::CoreError;
use crate::fields::Field;

/// Ethertype for IPv4, the only network protocol the workspace models.
pub const ETHERTYPE_IPV4: u16 = 0x0800;
/// IP protocol number for TCP.
pub const IPPROTO_TCP: u8 = 6;
/// IP protocol number for UDP.
pub const IPPROTO_UDP: u8 = 17;

/// The parsed header tuple a datapath matches on.
///
/// This mirrors Open vSwitch's `struct flow` restricted to IPv4: switch
/// metadata (ingress port), the Ethernet header, the IPv4 header fields
/// that ACLs and routing care about, and the transport ports. A `FlowKey`
/// is produced once per packet by the parser ([`pi-packet`]'s
/// `extract_flow_key`) and then flows through every cache level untouched.
///
/// All multi-byte values are stored in host byte order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct FlowKey {
    /// Ingress (virtual) port.
    pub in_port: u32,
    /// Ethernet source address.
    pub eth_src: MacAddr,
    /// Ethernet destination address.
    pub eth_dst: MacAddr,
    /// Ethertype (0x0800 for IPv4).
    pub eth_type: u16,
    /// IPv4 source address (host byte order).
    pub ip_src: u32,
    /// IPv4 destination address (host byte order).
    pub ip_dst: u32,
    /// IP protocol (6 TCP, 17 UDP).
    pub ip_proto: u8,
    /// IP TOS byte.
    pub ip_tos: u8,
    /// IP TTL.
    pub ip_ttl: u8,
    /// Transport source port.
    pub tp_src: u16,
    /// Transport destination port.
    pub tp_dst: u16,
}

impl FlowKey {
    /// Creates a TCP flow key with sensible L2 defaults — the common case
    /// in tests and generators.
    pub fn tcp(
        ip_src: impl Into<Ipv4Addr>,
        ip_dst: impl Into<Ipv4Addr>,
        tp_src: u16,
        tp_dst: u16,
    ) -> Self {
        FlowKey {
            eth_type: ETHERTYPE_IPV4,
            ip_src: u32::from(ip_src.into()),
            ip_dst: u32::from(ip_dst.into()),
            ip_proto: IPPROTO_TCP,
            ip_ttl: 64,
            tp_src,
            tp_dst,
            ..Default::default()
        }
    }

    /// Creates a UDP flow key with sensible L2 defaults.
    pub fn udp(
        ip_src: impl Into<Ipv4Addr>,
        ip_dst: impl Into<Ipv4Addr>,
        tp_src: u16,
        tp_dst: u16,
    ) -> Self {
        FlowKey {
            ip_proto: IPPROTO_UDP,
            ..Self::tcp(ip_src, ip_dst, tp_src, tp_dst)
        }
    }

    /// Reads `field` as a right-aligned `u64` — the uniform view used by
    /// tries, masks and the un-wildcarding logic.
    pub fn field(&self, field: Field) -> u64 {
        match field {
            Field::InPort => self.in_port as u64,
            Field::EthSrc => self.eth_src.as_u64(),
            Field::EthDst => self.eth_dst.as_u64(),
            Field::EthType => self.eth_type as u64,
            Field::IpSrc => self.ip_src as u64,
            Field::IpDst => self.ip_dst as u64,
            Field::IpProto => self.ip_proto as u64,
            Field::IpTos => self.ip_tos as u64,
            Field::IpTtl => self.ip_ttl as u64,
            Field::TpSrc => self.tp_src as u64,
            Field::TpDst => self.tp_dst as u64,
        }
    }

    /// Writes `field` from a right-aligned `u64`.
    ///
    /// Returns an error if `value` does not fit the field's width, so that
    /// silently-truncating bugs in generators cannot slip through.
    pub fn set_field(&mut self, field: Field, value: u64) -> crate::Result<()> {
        if value > field.full_mask() {
            return Err(CoreError::ValueOutOfRange {
                field: field.name(),
                value,
                width: field.width(),
            });
        }
        match field {
            Field::InPort => self.in_port = value as u32,
            Field::EthSrc => self.eth_src = MacAddr::from_u64(value),
            Field::EthDst => self.eth_dst = MacAddr::from_u64(value),
            Field::EthType => self.eth_type = value as u16,
            Field::IpSrc => self.ip_src = value as u32,
            Field::IpDst => self.ip_dst = value as u32,
            Field::IpProto => self.ip_proto = value as u8,
            Field::IpTos => self.ip_tos = value as u8,
            Field::IpTtl => self.ip_ttl = value as u8,
            Field::TpSrc => self.tp_src = value as u16,
            Field::TpDst => self.tp_dst = value as u16,
        }
        Ok(())
    }

    /// Builder-style field update, panicking on out-of-range values.
    /// Intended for literals in tests and scenario code.
    #[must_use]
    pub fn with(mut self, field: Field, value: u64) -> Self {
        self.set_field(field, value)
            .expect("FlowKey::with called with out-of-range value");
        self
    }

    /// The IPv4 source as a [`std::net::Ipv4Addr`].
    pub fn ip_src_addr(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.ip_src)
    }

    /// The IPv4 destination as a [`std::net::Ipv4Addr`].
    pub fn ip_dst_addr(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.ip_dst)
    }

    /// True if the key describes a TCP packet.
    pub fn is_tcp(&self) -> bool {
        self.eth_type == ETHERTYPE_IPV4 && self.ip_proto == IPPROTO_TCP
    }

    /// True if the key describes a UDP packet.
    pub fn is_udp(&self) -> bool {
        self.eth_type == ETHERTYPE_IPV4 && self.ip_proto == IPPROTO_UDP
    }
}

impl fmt::Display for FlowKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "port{} {}→{} 0x{:04x} {}:{}→{}:{} proto{} tos{} ttl{}",
            self.in_port,
            self.eth_src,
            self.eth_dst,
            self.eth_type,
            self.ip_src_addr(),
            self.tp_src,
            self.ip_dst_addr(),
            self.tp_dst,
            self.ip_proto,
            self.ip_tos,
            self.ip_ttl,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fields::ALL_FIELDS;

    #[test]
    fn tcp_constructor_sets_protocol_fields() {
        let k = FlowKey::tcp([10, 0, 0, 1], [10, 0, 0, 2], 1234, 80);
        assert_eq!(k.eth_type, ETHERTYPE_IPV4);
        assert_eq!(k.ip_proto, IPPROTO_TCP);
        assert_eq!(k.ip_src_addr(), Ipv4Addr::new(10, 0, 0, 1));
        assert_eq!(k.ip_dst_addr(), Ipv4Addr::new(10, 0, 0, 2));
        assert_eq!(k.tp_dst, 80);
        assert!(k.is_tcp());
        assert!(!k.is_udp());
    }

    #[test]
    fn udp_constructor() {
        let k = FlowKey::udp([192, 168, 0, 1], [8, 8, 8, 8], 5000, 53);
        assert_eq!(k.ip_proto, IPPROTO_UDP);
        assert!(k.is_udp());
    }

    #[test]
    fn field_round_trip_all_fields() {
        let mut k = FlowKey::default();
        for (i, f) in ALL_FIELDS.iter().enumerate() {
            // A value that fits any width ≥ 8 and differs per field.
            let v = (i as u64 + 1) & f.full_mask();
            k.set_field(*f, v).unwrap();
            assert_eq!(k.field(*f), v, "round trip failed for {f}");
        }
    }

    #[test]
    fn set_field_rejects_oversized_values() {
        let mut k = FlowKey::default();
        assert!(k.set_field(Field::IpProto, 0x100).is_err());
        assert!(k.set_field(Field::TpSrc, 0x1_0000).is_err());
        assert!(k.set_field(Field::IpSrc, 0x1_0000_0000).is_err());
        // Max values are fine.
        assert!(k.set_field(Field::IpProto, 0xff).is_ok());
        assert!(k.set_field(Field::EthSrc, 0xffff_ffff_ffff).is_ok());
    }

    #[test]
    fn with_builder_chains() {
        let k = FlowKey::default()
            .with(Field::InPort, 3)
            .with(Field::IpSrc, u32::from(Ipv4Addr::new(10, 0, 0, 1)) as u64)
            .with(Field::TpDst, 443);
        assert_eq!(k.in_port, 3);
        assert_eq!(k.tp_dst, 443);
        assert_eq!(k.ip_src_addr(), Ipv4Addr::new(10, 0, 0, 1));
    }

    #[test]
    #[should_panic(expected = "out-of-range")]
    fn with_panics_on_bad_value() {
        let _ = FlowKey::default().with(Field::IpTos, 0x1ff);
    }

    #[test]
    fn keys_hash_and_compare_structurally() {
        use std::collections::HashSet;
        let a = FlowKey::tcp([1, 2, 3, 4], [5, 6, 7, 8], 1, 2);
        let b = FlowKey::tcp([1, 2, 3, 4], [5, 6, 7, 8], 1, 2);
        let c = FlowKey::tcp([1, 2, 3, 4], [5, 6, 7, 8], 1, 3);
        assert_eq!(a, b);
        let mut set = HashSet::new();
        set.insert(a);
        set.insert(b);
        set.insert(c);
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn display_is_human_readable() {
        let k = FlowKey::tcp([10, 0, 0, 1], [10, 0, 0, 2], 1234, 80).with(Field::InPort, 7);
        let s = k.to_string();
        assert!(s.contains("10.0.0.1:1234"));
        assert!(s.contains("10.0.0.2:80"));
        assert!(s.contains("port7"));
    }
}
