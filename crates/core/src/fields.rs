//! Header-field reflection.
//!
//! The classifier, the prefix tries and the slow path's un-wildcarding all
//! need to treat "a header field" as a first-class value: iterate over
//! fields, read a field out of a [`crate::FlowKey`] as an integer, widen a
//! mask one bit at a time. This module provides that uniform view.
//!
//! Every field is at most 48 bits wide, so a `u64` holds any field value
//! with room to spare; values are right-aligned (bit 0 is the least
//! significant bit of the field).

use std::fmt;

/// The classification stage a field belongs to.
///
/// Open vSwitch's *staged lookup* probes each subtable in up to four passes
/// — metadata, L2, L3, L4 — aborting early when a stage already rules the
/// subtable out. We reproduce the same grouping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// Switch metadata: the ingress port.
    Metadata,
    /// Ethernet header fields.
    L2,
    /// IPv4 header fields.
    L3,
    /// Transport (TCP/UDP) header fields.
    L4,
}

impl Stage {
    /// All stages in probe order.
    pub const ALL: [Stage; 4] = [Stage::Metadata, Stage::L2, Stage::L3, Stage::L4];
}

/// Identifies one matchable header field.
///
/// The set mirrors the single-table OVS flow key restricted to IPv4
/// unicast traffic — exactly the fields the paper's ACLs can touch
/// (§2: "ACLs … operate on the IP 5-tuple").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Field {
    /// Ingress (virtual) port number, 32 bits.
    InPort,
    /// Ethernet source address, 48 bits.
    EthSrc,
    /// Ethernet destination address, 48 bits.
    EthDst,
    /// Ethertype, 16 bits.
    EthType,
    /// IPv4 source address, 32 bits.
    IpSrc,
    /// IPv4 destination address, 32 bits.
    IpDst,
    /// IP protocol number, 8 bits.
    IpProto,
    /// IP type-of-service / DSCP+ECN byte, 8 bits.
    IpTos,
    /// IP time-to-live, 8 bits.
    IpTtl,
    /// Transport source port, 16 bits.
    TpSrc,
    /// Transport destination port, 16 bits.
    TpDst,
}

/// Every field, in canonical (stage, then header) order.
pub const ALL_FIELDS: [Field; 11] = [
    Field::InPort,
    Field::EthSrc,
    Field::EthDst,
    Field::EthType,
    Field::IpSrc,
    Field::IpDst,
    Field::IpProto,
    Field::IpTos,
    Field::IpTtl,
    Field::TpSrc,
    Field::TpDst,
];

/// Static description of a field: width, stage, prefix capability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FieldSpec {
    /// The field this spec describes.
    pub field: Field,
    /// Canonical short name (matches OVS flow syntax where one exists).
    pub name: &'static str,
    /// Width in bits (8–48).
    pub width: u8,
    /// Classification stage the field belongs to.
    pub stage: Stage,
    /// Whether the field is *prefix-capable*: matched most-significant-bit
    /// first so that a binary trie over values is meaningful. IP addresses
    /// always are; L4 ports are when the datapath is configured with port
    /// tries (as required to reproduce the paper's 512/8192-mask attacks).
    pub prefix_capable: bool,
}

impl Field {
    /// Returns the static spec for this field.
    pub const fn spec(self) -> FieldSpec {
        match self {
            Field::InPort => FieldSpec {
                field: self,
                name: "in_port",
                width: 32,
                stage: Stage::Metadata,
                prefix_capable: false,
            },
            Field::EthSrc => FieldSpec {
                field: self,
                name: "eth_src",
                width: 48,
                stage: Stage::L2,
                prefix_capable: false,
            },
            Field::EthDst => FieldSpec {
                field: self,
                name: "eth_dst",
                width: 48,
                stage: Stage::L2,
                prefix_capable: false,
            },
            Field::EthType => FieldSpec {
                field: self,
                name: "eth_type",
                width: 16,
                stage: Stage::L2,
                prefix_capable: false,
            },
            Field::IpSrc => FieldSpec {
                field: self,
                name: "ip_src",
                width: 32,
                stage: Stage::L3,
                prefix_capable: true,
            },
            Field::IpDst => FieldSpec {
                field: self,
                name: "ip_dst",
                width: 32,
                stage: Stage::L3,
                prefix_capable: true,
            },
            Field::IpProto => FieldSpec {
                field: self,
                name: "ip_proto",
                width: 8,
                stage: Stage::L3,
                prefix_capable: false,
            },
            Field::IpTos => FieldSpec {
                field: self,
                name: "ip_tos",
                width: 8,
                stage: Stage::L3,
                prefix_capable: false,
            },
            Field::IpTtl => FieldSpec {
                field: self,
                name: "ip_ttl",
                width: 8,
                stage: Stage::L3,
                prefix_capable: false,
            },
            Field::TpSrc => FieldSpec {
                field: self,
                name: "tp_src",
                width: 16,
                stage: Stage::L4,
                prefix_capable: true,
            },
            Field::TpDst => FieldSpec {
                field: self,
                name: "tp_dst",
                width: 16,
                stage: Stage::L4,
                prefix_capable: true,
            },
        }
    }

    /// The field's width in bits.
    pub const fn width(self) -> u8 {
        self.spec().width
    }

    /// The field's canonical name.
    pub const fn name(self) -> &'static str {
        self.spec().name
    }

    /// The field's classification stage.
    pub const fn stage(self) -> Stage {
        self.spec().stage
    }

    /// A mask of `width()` ones, right-aligned: the all-exact mask value.
    pub const fn full_mask(self) -> u64 {
        let w = self.spec().width;
        if w == 64 {
            u64::MAX
        } else {
            (1u64 << w) - 1
        }
    }

    /// The mask selecting the `len` most significant bits of this field
    /// (a CIDR-style prefix mask), right-aligned to the field width.
    ///
    /// `prefix_mask(0)` is the all-wildcard mask; `prefix_mask(width)` is
    /// the exact-match mask.
    ///
    /// # Panics
    /// Panics if `len > width()`; use [`Field::checked_prefix_mask`] for a
    /// fallible variant.
    pub const fn prefix_mask(self, len: u8) -> u64 {
        let w = self.spec().width;
        assert!(len <= w, "prefix length exceeds field width");
        if len == 0 {
            0
        } else {
            // `len` ones followed by `w - len` zeros, right-aligned to `w`.
            (self.full_mask() >> (w - len)) << (w - len)
        }
    }

    /// Fallible version of [`Field::prefix_mask`].
    pub fn checked_prefix_mask(self, len: u8) -> crate::Result<u64> {
        let w = self.width();
        if len > w {
            return Err(crate::CoreError::PrefixTooLong {
                field: self.name(),
                len,
                width: w,
            });
        }
        Ok(self.prefix_mask(len))
    }

    /// Extracts bit `i` of a field value, where bit 0 is the **most
    /// significant** bit of the field (network / trie order).
    ///
    /// # Panics
    /// Panics if `i >= width()`.
    pub const fn bit_msb(self, value: u64, i: u8) -> bool {
        let w = self.spec().width;
        assert!(i < w, "bit index exceeds field width");
        (value >> (w - 1 - i)) & 1 == 1
    }

    /// Formats a value of this field as a `width()`-character binary
    /// string, MSB first — the notation used by the paper's Fig. 2.
    pub fn to_binary_string(self, value: u64) -> String {
        let w = self.width();
        (0..w)
            .map(|i| if self.bit_msb(value, i) { '1' } else { '0' })
            .collect()
    }
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths_sum_to_flow_key_size() {
        let total: u32 = ALL_FIELDS.iter().map(|f| f.width() as u32).sum();
        // 32 + 48 + 48 + 16 + 32 + 32 + 8 + 8 + 8 + 16 + 16
        assert_eq!(total, 264);
    }

    #[test]
    fn full_mask_matches_width() {
        assert_eq!(Field::IpProto.full_mask(), 0xff);
        assert_eq!(Field::TpSrc.full_mask(), 0xffff);
        assert_eq!(Field::IpSrc.full_mask(), 0xffff_ffff);
        assert_eq!(Field::EthSrc.full_mask(), 0xffff_ffff_ffff);
    }

    #[test]
    fn prefix_mask_basics() {
        assert_eq!(Field::IpSrc.prefix_mask(0), 0);
        assert_eq!(Field::IpSrc.prefix_mask(8), 0xff00_0000);
        assert_eq!(Field::IpSrc.prefix_mask(32), 0xffff_ffff);
        assert_eq!(Field::TpDst.prefix_mask(1), 0x8000);
        assert_eq!(Field::TpDst.prefix_mask(16), 0xffff);
    }

    #[test]
    fn prefix_mask_is_monotone() {
        for len in 1..=32u8 {
            let smaller = Field::IpSrc.prefix_mask(len - 1);
            let larger = Field::IpSrc.prefix_mask(len);
            assert_eq!(smaller & larger, smaller, "prefix /{len} not monotone");
            assert_eq!(larger.count_ones(), len as u32);
        }
    }

    #[test]
    fn checked_prefix_mask_rejects_overlong() {
        assert!(Field::TpSrc.checked_prefix_mask(17).is_err());
        assert!(Field::IpSrc.checked_prefix_mask(33).is_err());
        assert_eq!(Field::IpSrc.checked_prefix_mask(32).unwrap(), 0xffff_ffff);
    }

    #[test]
    fn bit_msb_order() {
        // 10.0.0.1 = 0x0a000001; MSB-first bit 4 of the first octet
        // (0000_1010) is the first 1.
        let v = 0x0a00_0001u64;
        assert!(!Field::IpSrc.bit_msb(v, 0));
        assert!(Field::IpSrc.bit_msb(v, 4));
        assert!(Field::IpSrc.bit_msb(v, 6));
        assert!(!Field::IpSrc.bit_msb(v, 7));
        assert!(Field::IpSrc.bit_msb(v, 31));
    }

    #[test]
    fn binary_string_matches_paper_notation() {
        // Fig. 2a writes the first octet of 10.0.0.0/8 as 00001010.
        assert_eq!(Field::IpProto.to_binary_string(0x0a), "00001010");
        assert_eq!(Field::TpSrc.to_binary_string(0x8001), "1000000000000001");
    }

    #[test]
    fn stage_grouping() {
        assert_eq!(Field::InPort.stage(), Stage::Metadata);
        assert_eq!(Field::EthType.stage(), Stage::L2);
        assert_eq!(Field::IpSrc.stage(), Stage::L3);
        assert_eq!(Field::TpDst.stage(), Stage::L4);
        // Stages are ordered for staged lookup.
        assert!(Stage::Metadata < Stage::L2);
        assert!(Stage::L2 < Stage::L3);
        assert!(Stage::L3 < Stage::L4);
    }

    #[test]
    fn prefix_capability_flags() {
        assert!(Field::IpSrc.spec().prefix_capable);
        assert!(Field::IpDst.spec().prefix_capable);
        assert!(Field::TpSrc.spec().prefix_capable);
        assert!(Field::TpDst.spec().prefix_capable);
        assert!(!Field::EthSrc.spec().prefix_capable);
        assert!(!Field::IpProto.spec().prefix_capable);
    }

    #[test]
    fn display_uses_canonical_names() {
        assert_eq!(Field::IpSrc.to_string(), "ip_src");
        assert_eq!(Field::TpDst.to_string(), "tp_dst");
    }
}
