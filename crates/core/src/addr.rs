//! Link-layer address type.
//!
//! IPv4 addresses are represented as plain `u32`s in host byte order
//! throughout the workspace (conversions from [`std::net::Ipv4Addr`] are
//! provided on [`crate::FlowKey`]); Ethernet needs its own 48-bit type.

use std::fmt;
use std::str::FromStr;

use crate::error::CoreError;

/// A 48-bit IEEE 802 MAC address.
///
/// Stored as six bytes in transmission order. The all-zero address is used
/// as "unspecified" by the builders in higher crates.
///
/// ```
/// use pi_core::MacAddr;
/// let mac: MacAddr = "52:54:00:12:34:56".parse().unwrap();
/// assert_eq!(mac.as_u64(), 0x5254_0012_3456);
/// assert_eq!(mac.to_string(), "52:54:00:12:34:56");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);
    /// The all-zero (unspecified) address.
    pub const ZERO: MacAddr = MacAddr([0; 6]);

    /// Builds an address from the low 48 bits of `v`.
    ///
    /// The upper 16 bits of `v` must be zero; they are discarded otherwise,
    /// which keeps round-trips through the uniform `u64` field view exact.
    pub const fn from_u64(v: u64) -> Self {
        let b = v.to_be_bytes();
        MacAddr([b[2], b[3], b[4], b[5], b[6], b[7]])
    }

    /// Returns the address as the low 48 bits of a `u64`.
    pub const fn as_u64(&self) -> u64 {
        let b = self.0;
        ((b[0] as u64) << 40)
            | ((b[1] as u64) << 32)
            | ((b[2] as u64) << 24)
            | ((b[3] as u64) << 16)
            | ((b[4] as u64) << 8)
            | (b[5] as u64)
    }

    /// True if the multicast (group) bit of the first octet is set.
    pub const fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// True if this is the broadcast address.
    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }

    /// True if this is the all-zero address.
    pub fn is_zero(&self) -> bool {
        *self == Self::ZERO
    }

    /// Locally-administered unicast address derived from an integer id,
    /// handy for generating distinct pod/VM MACs in tests and scenarios.
    pub const fn from_id(id: u32) -> Self {
        let b = id.to_be_bytes();
        MacAddr([0x02, 0x00, b[0], b[1], b[2], b[3]])
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

impl FromStr for MacAddr {
    type Err = CoreError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut out = [0u8; 6];
        let mut parts = s.split(':');
        for byte in out.iter_mut() {
            let part = parts
                .next()
                .ok_or_else(|| CoreError::ParseAddr(s.to_string()))?;
            *byte =
                u8::from_str_radix(part, 16).map_err(|_| CoreError::ParseAddr(s.to_string()))?;
        }
        if parts.next().is_some() {
            return Err(CoreError::ParseAddr(s.to_string()));
        }
        Ok(MacAddr(out))
    }
}

impl From<[u8; 6]> for MacAddr {
    fn from(b: [u8; 6]) -> Self {
        MacAddr(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_round_trip() {
        let mac = MacAddr([0xde, 0xad, 0xbe, 0xef, 0x00, 0x42]);
        assert_eq!(MacAddr::from_u64(mac.as_u64()), mac);
    }

    #[test]
    fn from_u64_discards_high_bits() {
        let v = 0xffff_5254_0012_3456u64;
        assert_eq!(MacAddr::from_u64(v).as_u64(), 0x5254_0012_3456);
    }

    #[test]
    fn display_and_parse() {
        let mac = MacAddr([0x52, 0x54, 0x00, 0xab, 0xcd, 0xef]);
        let s = mac.to_string();
        assert_eq!(s, "52:54:00:ab:cd:ef");
        assert_eq!(s.parse::<MacAddr>().unwrap(), mac);
    }

    #[test]
    fn parse_rejects_short_and_long() {
        assert!("52:54:00:ab:cd".parse::<MacAddr>().is_err());
        assert!("52:54:00:ab:cd:ef:01".parse::<MacAddr>().is_err());
        assert!("zz:54:00:ab:cd:ef".parse::<MacAddr>().is_err());
        assert!("".parse::<MacAddr>().is_err());
    }

    #[test]
    fn multicast_and_broadcast() {
        assert!(MacAddr::BROADCAST.is_multicast());
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(!MacAddr([0x02, 0, 0, 0, 0, 1]).is_multicast());
        assert!(MacAddr([0x01, 0, 0x5e, 0, 0, 1]).is_multicast());
        assert!(MacAddr::ZERO.is_zero());
    }

    #[test]
    fn from_id_unique_and_local() {
        let a = MacAddr::from_id(1);
        let b = MacAddr::from_id(2);
        assert_ne!(a, b);
        // locally administered, unicast
        assert_eq!(a.0[0] & 0x03, 0x02);
    }
}
