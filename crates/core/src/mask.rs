//! Wildcard masks and masked keys.
//!
//! A [`FlowMask`] is a per-bit wildcard pattern over every [`FlowKey`]
//! field: a 1-bit means "this bit of the header must match exactly", a
//! 0-bit means "wildcarded". Tuple Space Search groups entries by mask —
//! one hash table ("subtable") per distinct mask — which is precisely why
//! mask count, not entry count, drives lookup cost and why the paper's
//! attack works by inflating the number of *distinct masks*.

use std::fmt;

use crate::error::CoreError;
use crate::fields::{Field, ALL_FIELDS};
use crate::key::FlowKey;

/// A per-bit wildcard mask over all [`FlowKey`] fields.
///
/// Internally stores one right-aligned `u64` mask per field, accessed
/// through the same [`Field`] reflection as keys. The default mask is
/// all-wildcard (matches everything).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct FlowMask {
    bits: [u64; ALL_FIELDS.len()],
}

impl FlowMask {
    /// The all-wildcard mask: matches every packet.
    pub const WILDCARD: FlowMask = FlowMask {
        bits: [0; ALL_FIELDS.len()],
    };

    /// The exact-match mask: every bit of every field significant.
    pub fn exact() -> Self {
        let mut m = FlowMask::default();
        for f in ALL_FIELDS {
            m.bits[Self::idx(f)] = f.full_mask();
        }
        m
    }

    #[inline]
    fn idx(field: Field) -> usize {
        // ALL_FIELDS is ordered; map each variant to its position.
        match field {
            Field::InPort => 0,
            Field::EthSrc => 1,
            Field::EthDst => 2,
            Field::EthType => 3,
            Field::IpSrc => 4,
            Field::IpDst => 5,
            Field::IpProto => 6,
            Field::IpTos => 7,
            Field::IpTtl => 8,
            Field::TpSrc => 9,
            Field::TpDst => 10,
        }
    }

    /// Reads the mask bits for `field`, right-aligned.
    pub fn field(&self, field: Field) -> u64 {
        self.bits[Self::idx(field)]
    }

    /// Writes the mask bits for `field`.
    ///
    /// Errors if `mask` has bits outside the field's width.
    pub fn set_field(&mut self, field: Field, mask: u64) -> crate::Result<()> {
        if mask > field.full_mask() {
            return Err(CoreError::ValueOutOfRange {
                field: field.name(),
                value: mask,
                width: field.width(),
            });
        }
        self.bits[Self::idx(field)] = mask;
        Ok(())
    }

    /// Builder-style mask update, panicking on out-of-range bits.
    #[must_use]
    pub fn with(mut self, field: Field, mask: u64) -> Self {
        self.set_field(field, mask)
            .expect("FlowMask::with called with out-of-range mask");
        self
    }

    /// Builder-style: match `field` exactly (all bits significant).
    #[must_use]
    pub fn with_exact(self, field: Field) -> Self {
        self.with(field, field.full_mask())
    }

    /// Builder-style: match the `len` most significant bits of `field`.
    #[must_use]
    pub fn with_prefix(self, field: Field, len: u8) -> Self {
        self.with(field, field.prefix_mask(len))
    }

    /// Applies the mask to a key: wildcarded bits are zeroed.
    pub fn apply(&self, key: &FlowKey) -> FlowKey {
        let mut out = FlowKey::default();
        for f in ALL_FIELDS {
            out.set_field(f, key.field(f) & self.field(f))
                .expect("masked value always fits");
        }
        out
    }

    /// Bitwise union: the mask exact in every bit either input is exact in.
    /// Un-wildcarding during megaflow generation is a sequence of unions.
    #[must_use]
    pub fn union(&self, other: &FlowMask) -> FlowMask {
        let mut out = *self;
        for (o, b) in out.bits.iter_mut().zip(other.bits.iter()) {
            *o |= *b;
        }
        out
    }

    /// In-place union of a single field's bits into this mask.
    pub fn unwildcard(&mut self, field: Field, mask_bits: u64) {
        debug_assert!(mask_bits <= field.full_mask());
        self.bits[Self::idx(field)] |= mask_bits;
    }

    /// True if `self` is *at least as wildcarded* as `other` in every bit,
    /// i.e. every bit significant in `self` is significant in `other`.
    pub fn is_subset_of(&self, other: &FlowMask) -> bool {
        self.bits
            .iter()
            .zip(other.bits.iter())
            .all(|(a, b)| a & b == *a)
    }

    /// True if no bit is significant (matches everything).
    pub fn is_wildcard_all(&self) -> bool {
        self.bits.iter().all(|b| *b == 0)
    }

    /// True if every bit of every field is significant.
    pub fn is_exact(&self) -> bool {
        ALL_FIELDS.iter().all(|f| self.field(*f) == f.full_mask())
    }

    /// Total number of significant (exact-match) bits across all fields.
    pub fn significant_bits(&self) -> u32 {
        self.bits.iter().map(|b| b.count_ones()).sum()
    }

    /// The fields with at least one significant bit, in canonical order.
    pub fn touched_fields(&self) -> Vec<Field> {
        ALL_FIELDS
            .iter()
            .copied()
            .filter(|f| self.field(*f) != 0)
            .collect()
    }

    /// Whether two keys are equal under this mask.
    pub fn key_eq(&self, a: &FlowKey, b: &FlowKey) -> bool {
        ALL_FIELDS
            .iter()
            .all(|f| (a.field(*f) ^ b.field(*f)) & self.field(*f) == 0)
    }
}

impl fmt::Display for FlowMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_wildcard_all() {
            return f.write_str("*");
        }
        let mut first = true;
        for field in ALL_FIELDS {
            let m = self.field(field);
            if m == 0 {
                continue;
            }
            if !first {
                f.write_str(",")?;
            }
            first = false;
            if m == field.full_mask() {
                write!(f, "{field}")?;
            } else if m.leading_zeros() as u8 + m.count_ones() as u8 + m.trailing_zeros() as u8
                == 64
                && m != 0
            {
                // Contiguous run of ones starting at the top of the field:
                // print as a prefix length.
                let len = m.count_ones();
                write!(f, "{field}/{len}")?;
            } else {
                write!(f, "{field}&{m:#x}")?;
            }
        }
        Ok(())
    }
}

/// A canonical `(key & mask, mask)` pair.
///
/// `MaskedKey` is the unit stored in flow tables and the megaflow cache.
/// The key is always stored pre-masked so structural equality and hashing
/// behave set-theoretically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MaskedKey {
    key: FlowKey,
    mask: FlowMask,
}

impl MaskedKey {
    /// Creates a masked key, canonicalising `key` by applying `mask`.
    pub fn new(key: FlowKey, mask: FlowMask) -> Self {
        MaskedKey {
            key: mask.apply(&key),
            mask,
        }
    }

    /// The match-everything masked key.
    pub fn wildcard() -> Self {
        MaskedKey::new(FlowKey::default(), FlowMask::WILDCARD)
    }

    /// The canonical (pre-masked) key.
    pub fn key(&self) -> &FlowKey {
        &self.key
    }

    /// The mask.
    pub fn mask(&self) -> &FlowMask {
        &self.mask
    }

    /// True if `packet` matches this masked key.
    pub fn matches(&self, packet: &FlowKey) -> bool {
        self.mask.key_eq(&self.key, packet)
    }

    /// True if every packet matching `self` also matches `other`
    /// (i.e. `self ⊆ other` as packet sets).
    pub fn is_subset_of(&self, other: &MaskedKey) -> bool {
        // other's mask must be a subset of ours (other is no more specific
        // anywhere), and the keys must agree on other's significant bits.
        other.mask.is_subset_of(&self.mask) && other.mask.key_eq(&self.key, &other.key)
    }

    /// True if some packet matches both masked keys.
    ///
    /// Two masked keys overlap iff their keys agree on every bit that is
    /// significant in *both* masks.
    pub fn overlaps(&self, other: &MaskedKey) -> bool {
        ALL_FIELDS.iter().all(|f| {
            let common = self.mask.field(*f) & other.mask.field(*f);
            (self.key.field(*f) ^ other.key.field(*f)) & common == 0
        })
    }

    /// Constructs a packet that matches this masked key: the canonical key
    /// itself (wildcarded bits zero). Useful for tests and witnesses.
    pub fn witness(&self) -> FlowKey {
        self.key
    }
}

impl fmt::Display for MaskedKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.mask.is_wildcard_all() {
            return f.write_str("*");
        }
        let mut first = true;
        for field in ALL_FIELDS {
            let m = self.mask.field(field);
            if m == 0 {
                continue;
            }
            if !first {
                f.write_str(",")?;
            }
            first = false;
            let v = self.key.field(field);
            if m == field.full_mask() {
                write!(f, "{field}={v:#x}")?;
            } else if m.count_ones() + m.trailing_zeros() == 64 - m.leading_zeros() {
                // Contiguous prefix mask.
                let len =
                    m.count_ones() as u8 + (64 - field.width() as u32 - m.leading_zeros()) as u8;
                write!(f, "{field}={v:#x}/{len}")?;
            } else {
                write!(f, "{field}={v:#x}&{m:#x}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(ip_src: [u8; 4], tp_dst: u16) -> FlowKey {
        FlowKey::tcp(ip_src, [10, 0, 0, 99], 40000, tp_dst)
    }

    #[test]
    fn wildcard_matches_everything() {
        let mk = MaskedKey::wildcard();
        assert!(mk.matches(&k([10, 0, 0, 1], 80)));
        assert!(mk.matches(&FlowKey::default()));
    }

    #[test]
    fn exact_mask_matches_only_identical() {
        let key = k([10, 0, 0, 1], 80);
        let mk = MaskedKey::new(key, FlowMask::exact());
        assert!(mk.matches(&key));
        assert!(!mk.matches(&k([10, 0, 0, 2], 80)));
        assert!(!mk.matches(&k([10, 0, 0, 1], 81)));
    }

    #[test]
    fn prefix_mask_matching() {
        // allow 10.0.0.0/8
        let mask = FlowMask::default().with_prefix(Field::IpSrc, 8);
        let mk = MaskedKey::new(k([10, 0, 0, 0], 0), mask);
        assert!(mk.matches(&k([10, 1, 2, 3], 443)));
        assert!(mk.matches(&k([10, 255, 255, 255], 80)));
        assert!(!mk.matches(&k([11, 0, 0, 0], 80)));
        assert!(!mk.matches(&k([192, 168, 0, 1], 80)));
    }

    #[test]
    fn apply_zeroes_wildcarded_bits() {
        let mask = FlowMask::default()
            .with_prefix(Field::IpSrc, 8)
            .with_exact(Field::TpDst);
        let key = k([10, 9, 8, 7], 443);
        let masked = mask.apply(&key);
        assert_eq!(masked.ip_src, 0x0a00_0000);
        assert_eq!(masked.tp_dst, 443);
        assert_eq!(masked.tp_src, 0); // wildcarded
        assert_eq!(masked.eth_type, 0); // wildcarded
    }

    #[test]
    fn apply_is_idempotent() {
        let mask = FlowMask::default()
            .with_prefix(Field::IpSrc, 13)
            .with(Field::TpDst, 0xff00)
            .with_exact(Field::IpProto);
        let key = k([10, 47, 200, 3], 8080);
        let once = mask.apply(&key);
        let twice = mask.apply(&once);
        assert_eq!(once, twice);
    }

    #[test]
    fn union_is_monotone_and_commutative() {
        let a = FlowMask::default().with_prefix(Field::IpSrc, 8);
        let b = FlowMask::default().with_exact(Field::TpDst);
        let u = a.union(&b);
        assert!(a.is_subset_of(&u));
        assert!(b.is_subset_of(&u));
        assert_eq!(u, b.union(&a));
        assert_eq!(u.significant_bits(), 8 + 16);
    }

    #[test]
    fn subset_relation() {
        let narrow = FlowMask::default().with_prefix(Field::IpSrc, 8);
        let wide = FlowMask::default()
            .with_prefix(Field::IpSrc, 16)
            .with_exact(Field::TpDst);
        assert!(narrow.is_subset_of(&wide));
        assert!(!wide.is_subset_of(&narrow));
        assert!(FlowMask::WILDCARD.is_subset_of(&narrow));
        assert!(narrow.is_subset_of(&narrow));
    }

    #[test]
    fn exact_and_wildcard_predicates() {
        assert!(FlowMask::WILDCARD.is_wildcard_all());
        assert!(!FlowMask::WILDCARD.is_exact());
        assert!(FlowMask::exact().is_exact());
        assert!(!FlowMask::exact().is_wildcard_all());
        assert_eq!(FlowMask::exact().significant_bits(), 264);
    }

    #[test]
    fn touched_fields_in_canonical_order() {
        let m = FlowMask::default()
            .with_exact(Field::TpDst)
            .with_prefix(Field::IpSrc, 4)
            .with_exact(Field::InPort);
        assert_eq!(
            m.touched_fields(),
            vec![Field::InPort, Field::IpSrc, Field::TpDst]
        );
    }

    #[test]
    fn masked_key_canonicalises() {
        let mask = FlowMask::default().with_prefix(Field::IpSrc, 8);
        let a = MaskedKey::new(k([10, 1, 2, 3], 80), mask);
        let b = MaskedKey::new(k([10, 99, 98, 97], 8080), mask);
        // Same /8, different hosts/ports: canonical form identical.
        assert_eq!(a, b);
        assert_eq!(a.key().ip_src, 0x0a00_0000);
    }

    #[test]
    fn overlap_detection() {
        let m8 = FlowMask::default().with_prefix(Field::IpSrc, 8);
        let m16 = FlowMask::default().with_prefix(Field::IpSrc, 16);
        let ten8 = MaskedKey::new(k([10, 0, 0, 0], 0), m8);
        let ten_one16 = MaskedKey::new(k([10, 1, 0, 0], 0), m16);
        let eleven8 = MaskedKey::new(k([11, 0, 0, 0], 0), m8);
        assert!(ten8.overlaps(&ten_one16));
        assert!(ten_one16.overlaps(&ten8));
        assert!(!ten8.overlaps(&eleven8));
        // Orthogonal fields always overlap.
        let port = MaskedKey::new(
            k([0, 0, 0, 0], 80),
            FlowMask::default().with_exact(Field::TpDst),
        );
        assert!(ten8.overlaps(&port));
    }

    #[test]
    fn subset_of_masked_keys() {
        let m8 = FlowMask::default().with_prefix(Field::IpSrc, 8);
        let m16 = FlowMask::default().with_prefix(Field::IpSrc, 16);
        let ten8 = MaskedKey::new(k([10, 0, 0, 0], 0), m8);
        let ten_one16 = MaskedKey::new(k([10, 1, 0, 0], 0), m16);
        assert!(ten_one16.is_subset_of(&ten8));
        assert!(!ten8.is_subset_of(&ten_one16));
        assert!(ten8.is_subset_of(&MaskedKey::wildcard()));
        assert!(ten8.is_subset_of(&ten8));
    }

    #[test]
    fn witness_matches_self() {
        let mk = MaskedKey::new(
            k([10, 2, 3, 4], 443),
            FlowMask::default()
                .with_prefix(Field::IpSrc, 13)
                .with_exact(Field::TpDst)
                .with_exact(Field::IpProto),
        );
        assert!(mk.matches(&mk.witness()));
    }

    #[test]
    fn display_formats() {
        assert_eq!(FlowMask::WILDCARD.to_string(), "*");
        let m = FlowMask::default()
            .with_prefix(Field::IpSrc, 8)
            .with_exact(Field::TpDst);
        let s = m.to_string();
        assert!(s.contains("ip_src/8"), "{s}");
        assert!(s.contains("tp_dst"), "{s}");
        assert_eq!(MaskedKey::wildcard().to_string(), "*");
    }

    #[test]
    fn key_eq_respects_only_significant_bits() {
        let m = FlowMask::default().with(Field::TpDst, 0xff00);
        let a = k([1, 1, 1, 1], 0x1234);
        let b = k([2, 2, 2, 2], 0x12ff);
        let c = k([1, 1, 1, 1], 0x1334);
        assert!(m.key_eq(&a, &b)); // high byte of tp_dst equal
        assert!(!m.key_eq(&a, &c)); // high byte differs
    }
}
