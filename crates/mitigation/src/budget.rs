//! Admission control: bound the masks a policy may inject.
//!
//! The CMS (or the node agent) runs the same reachable-mask analysis the
//! attacker would and refuses policies whose complement decomposition
//! exceeds a budget. Picking the budget is the trade-off the paper's
//! demo discussion points at: ordinary microsegmentation is not free of
//! masks either — "allow the cluster /8 to one port" already reaches
//! 8 × 16 = 128 — so the default of 256 admits such policies while
//! rejecting the 512- and 8192-mask attack shapes.

use pi_classifier::table::reachable_megaflow_mask_count;
use pi_classifier::FlowTable;
use pi_core::Field;

/// Outcome of a policy admission check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionDecision {
    /// Within budget; install.
    Admit {
        /// Predicted reachable mask count.
        predicted_masks: u64,
    },
    /// Over budget; refuse with the evidence.
    Reject {
        /// Predicted reachable mask count.
        predicted_masks: u64,
        /// The configured budget it exceeds.
        budget: u64,
    },
}

impl AdmissionDecision {
    /// True when the policy was admitted.
    pub fn admitted(&self) -> bool {
        matches!(self, AdmissionDecision::Admit { .. })
    }
}

/// Per-pod mask budget enforcement.
#[derive(Debug, Clone, Copy)]
pub struct MaskBudget {
    /// Maximum reachable masks a single pod's policy may produce.
    pub per_pod_limit: u64,
}

impl Default for MaskBudget {
    fn default() -> Self {
        MaskBudget { per_pod_limit: 256 }
    }
}

impl MaskBudget {
    /// A budget with an explicit limit.
    pub fn new(per_pod_limit: u64) -> Self {
        MaskBudget { per_pod_limit }
    }

    /// Checks a compiled policy against the budget, given the datapath's
    /// trie configuration (the same fields the slow path will use).
    pub fn check(&self, table: &FlowTable, trie_fields: &[Field]) -> AdmissionDecision {
        let predicted_masks = reachable_megaflow_mask_count(table, trie_fields);
        if predicted_masks <= self.per_pod_limit {
            AdmissionDecision::Admit { predicted_masks }
        } else {
            AdmissionDecision::Reject {
                predicted_masks,
                budget: self.per_pod_limit,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_attack::AttackSpec;
    use pi_cms::{PolicyCompiler, PolicyDialect};

    const TRIE_FIELDS: [Field; 4] = [Field::IpSrc, Field::IpDst, Field::TpSrc, Field::TpDst];

    fn compile(spec: &AttackSpec) -> FlowTable {
        match spec.build_policy() {
            pi_attack::MaliciousAcl::K8s(p) => PolicyCompiler.compile_k8s(&p),
            pi_attack::MaliciousAcl::OpenStack(p) => PolicyCompiler.compile_security_group(&p),
            pi_attack::MaliciousAcl::Calico(p) => PolicyCompiler.compile_calico(&p),
        }
    }

    #[test]
    fn rejects_both_paper_attacks() {
        let budget = MaskBudget::default();
        for spec in [
            AttackSpec::masks_512(PolicyDialect::Kubernetes),
            AttackSpec::masks_8192(),
        ] {
            let decision = budget.check(&compile(&spec), &TRIE_FIELDS);
            match decision {
                AdmissionDecision::Reject {
                    predicted_masks, ..
                } => {
                    assert_eq!(predicted_masks, spec.predicted_masks());
                }
                _ => panic!("attack policy must be rejected: {decision:?}"),
            }
        }
    }

    #[test]
    fn admits_conventional_policies() {
        let budget = MaskBudget::default();
        // "Allow the cluster /8 to my service port" — the victim's own
        // policy from the Fig. 3 scenario reaches 8 × 16 = 128 masks;
        // the default budget must admit it (the trade-off the module
        // docs discuss).
        let victim = pi_cms::NetworkPolicy {
            name: "web".into(),
            ingress: vec![pi_cms::IngressRule {
                from: vec!["10.0.0.0/8".parse().unwrap()],
                ports: vec![(pi_cms::Protocol::Tcp, Some(5201))],
            }],
        };
        let decision = budget.check(&PolicyCompiler.compile_k8s(&victim), &TRIE_FIELDS);
        match decision {
            AdmissionDecision::Admit { predicted_masks } => assert_eq!(predicted_masks, 128),
            _ => panic!("victim policy must be admitted: {decision:?}"),
        }
        // An allow-all policy is trivially fine.
        let open = pi_cms::NetworkPolicy {
            name: "open".into(),
            ingress: vec![pi_cms::IngressRule {
                from: vec![],
                ports: vec![],
            }],
        };
        assert!(budget
            .check(&PolicyCompiler.compile_k8s(&open), &TRIE_FIELDS)
            .admitted());
    }

    #[test]
    fn budget_scales_with_limit() {
        let table = compile(&AttackSpec::masks_512(PolicyDialect::Kubernetes));
        assert!(!MaskBudget::new(511).check(&table, &TRIE_FIELDS).admitted());
        assert!(MaskBudget::new(512).check(&table, &TRIE_FIELDS).admitted());
    }

    #[test]
    fn no_tries_means_no_explosion_to_reject() {
        // With tries disabled the datapath un-wildcards whole fields:
        // the attack produces 1 mask and sails through admission (and
        // harms no one).
        let table = compile(&AttackSpec::masks_8192());
        let decision = MaskBudget::default().check(&table, &[]);
        match decision {
            AdmissionDecision::Admit { predicted_masks } => assert_eq!(predicted_masks, 1),
            _ => panic!("nothing to reject without tries"),
        }
    }
}
