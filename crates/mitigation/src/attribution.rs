//! Detection: who is responsible for the masks?
//!
//! Because every megaflow in the destination-enforced pipeline pins
//! `ip_dst` exactly, each mask is attributable to the pod (hence
//! tenant) whose ACL generated it. A provider watching per-destination
//! mask counts sees the attack instantly — Fig. 3's mask curve *is* the
//! alarm — and, unlike a global mask limit, attribution names the ACL
//! to evict.

use std::collections::HashMap;

use pi_core::{Field, MaskedKey};
use pi_datapath::VSwitch;

/// Mask accounting for one destination IP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaskAttribution {
    /// The destination (pod) IP, host byte order.
    pub ip_dst: u32,
    /// Distinct masks among megaflows pinned to this destination.
    pub masks: usize,
    /// Megaflow entries pinned to this destination.
    pub entries: usize,
}

/// The one-pass attribution core: groups any stream of megaflow masked
/// keys by destination pod and counts distinct masks and entries per
/// pod, descending by mask count. [`attribute_masks`],
/// [`detect_offenders`], the `pi_detect` telemetry tap and the
/// sim/fleet report assembly all share this single pass.
pub fn attribute_entries(megaflows: impl Iterator<Item = MaskedKey>) -> Vec<MaskAttribution> {
    let mut per_dst: HashMap<u32, (std::collections::HashSet<pi_core::FlowMask>, usize)> =
        HashMap::new();
    for mk in megaflows {
        let dst = mk.key().ip_dst;
        // Only fully-pinned destinations are attributable; megaflows
        // with a wildcarded ip_dst (none in this pipeline) would fall
        // into a shared bucket at dst 0.
        let attributable = mk.mask().field(Field::IpDst) == Field::IpDst.full_mask();
        let bucket = per_dst
            .entry(if attributable { dst } else { 0 })
            .or_default();
        bucket.0.insert(*mk.mask());
        bucket.1 += 1;
    }
    let mut out: Vec<MaskAttribution> = per_dst
        .into_iter()
        .map(|(ip_dst, (masks, entries))| MaskAttribution {
            ip_dst,
            masks: masks.len(),
            entries,
        })
        .collect();
    out.sort_by_key(|a| (std::cmp::Reverse(a.masks), a.ip_dst));
    out
}

/// Groups the switch's megaflows by destination pod and counts distinct
/// masks per pod, descending.
pub fn attribute_masks(switch: &VSwitch) -> Vec<MaskAttribution> {
    attribute_entries(switch.megaflows().iter().map(|(mk, _)| mk))
}

/// Filters an existing attribution down to destinations whose mask
/// count exceeds `threshold` — so consumers that already hold an
/// attribution (sim/fleet reports, the telemetry tap) never recompute
/// the pass.
pub fn offenders(attribution: &[MaskAttribution], threshold: usize) -> Vec<MaskAttribution> {
    attribution
        .iter()
        .filter(|a| a.masks > threshold)
        .copied()
        .collect()
}

/// Destinations whose mask count exceeds `threshold` — the eviction /
/// throttling candidates. One attribution pass with the threshold
/// applied as a filter.
pub fn detect_offenders(switch: &VSwitch, threshold: usize) -> Vec<MaskAttribution> {
    offenders(&attribute_masks(switch), threshold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_attack::{AttackSpec, CovertSequence};
    use pi_cms::{PolicyCompiler, PolicyDialect};
    use pi_core::{FlowKey, SimTime};
    use pi_datapath::DpConfig;

    fn attacked_switch() -> (VSwitch, u32, u32) {
        let victim_ip = u32::from_be_bytes([10, 1, 0, 10]);
        let attacker_ip = u32::from_be_bytes([10, 1, 0, 66]);
        let mut sw = VSwitch::new(DpConfig::default());
        sw.attach_pod(victim_ip, 1);
        sw.attach_pod(attacker_ip, 2);
        let spec = AttackSpec::masks_512(PolicyDialect::Kubernetes);
        let table = match spec.build_policy() {
            pi_attack::MaliciousAcl::K8s(p) => PolicyCompiler.compile_k8s(&p),
            _ => unreachable!(),
        };
        sw.install_acl(attacker_ip, table);
        // Victim's honest flow.
        sw.process(
            &FlowKey::tcp([10, 0, 0, 10], [10, 1, 0, 10], 40_000, 5201),
            SimTime::from_millis(1),
        );
        // Covert populate.
        let seq = CovertSequence::new(spec.build_target(attacker_ip));
        for (i, p) in seq.populate_packets().enumerate() {
            sw.process(&p, SimTime::from_millis(2 + i as u64));
        }
        (sw, victim_ip, attacker_ip)
    }

    #[test]
    fn attacker_pod_tops_the_attribution() {
        let (sw, victim_ip, attacker_ip) = attacked_switch();
        let attribution = attribute_masks(&sw);
        assert_eq!(attribution[0].ip_dst, attacker_ip);
        assert_eq!(attribution[0].masks, 512);
        assert_eq!(attribution[0].entries, 33 * 17);
        // The victim's single megaflow attributes to the victim.
        let victim_entry = attribution
            .iter()
            .find(|a| a.ip_dst == victim_ip)
            .expect("victim bucket");
        assert_eq!(victim_entry.masks, 1);
    }

    #[test]
    fn detection_threshold_separates_tenants() {
        let (sw, _, attacker_ip) = attacked_switch();
        let offenders = detect_offenders(&sw, 256);
        assert_eq!(offenders.len(), 1);
        assert_eq!(offenders[0].ip_dst, attacker_ip);
        // Everyone is under a permissive threshold.
        assert!(detect_offenders(&sw, 10_000).is_empty());
    }

    #[test]
    fn clean_switch_attributes_nothing_alarming() {
        let mut sw = VSwitch::new(DpConfig::default());
        sw.attach_pod(u32::from_be_bytes([10, 0, 0, 1]), 1);
        sw.process(
            &FlowKey::tcp([10, 9, 9, 9], [10, 0, 0, 1], 1, 80),
            SimTime::from_millis(1),
        );
        let attribution = attribute_masks(&sw);
        assert_eq!(attribution.len(), 1);
        assert_eq!(attribution[0].masks, 1);
        assert!(detect_offenders(&sw, 64).is_empty());
    }
}
