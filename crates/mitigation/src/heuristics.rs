//! "Improved heuristics in OVS": configuration-level attenuations.
//!
//! These do not remove the linear subtable walk; they cut what each step
//! (or the common case) costs. The ablation bench quantifies how far
//! that goes against a full 8192-mask injection.

use pi_classifier::SubtableOrder;
use pi_datapath::DpConfig;

/// A datapath configured with subtable hit-count sorting: subtables are
/// periodically re-ordered so the hottest (victim) masks are probed
/// first. Protects *established, high-rate* flows; does nothing for the
/// miss path (every covert packet still walks everything) or for
/// low-rate flows that never float up.
pub fn hit_sort_config(base: DpConfig) -> DpConfig {
    DpConfig {
        subtable_order: SubtableOrder::HitCountDescending {
            resort_every: 1_000,
        },
        ..base
    }
}

/// A datapath with staged subtable lookup: failing probes abort at the
/// first stage whose cumulative hash has no candidates. Cuts the
/// per-probe constant (≈ the number of active stages) but leaves the
/// walk linear in masks.
pub fn staged_config(base: DpConfig) -> DpConfig {
    DpConfig {
        staged_lookup: true,
        ..base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_attack::{AttackSpec, CovertSequence};
    use pi_cms::{PolicyCompiler, PolicyDialect};
    use pi_core::{FlowKey, SimTime};
    use pi_datapath::VSwitch;

    /// Builds an attacked switch and returns (victim probe count under
    /// the given config) after the covert populate pass.
    fn victim_probes_under(dp: DpConfig) -> (usize, usize) {
        let victim_ip = u32::from_be_bytes([10, 1, 0, 10]);
        let attacker_ip = u32::from_be_bytes([10, 1, 0, 66]);
        let mut sw = VSwitch::new(dp);
        sw.attach_pod(victim_ip, 1);
        sw.attach_pod(attacker_ip, 2);
        let spec = AttackSpec::masks_512(PolicyDialect::Kubernetes);
        let table = match spec.build_policy() {
            pi_attack::MaliciousAcl::K8s(p) => PolicyCompiler.compile_k8s(&p),
            _ => unreachable!(),
        };
        sw.install_acl(attacker_ip, table);

        let victim_key = FlowKey::tcp([10, 0, 0, 10], [10, 1, 0, 10], 40_000, 5201);
        // Victim flow exists before the attack.
        sw.process(&victim_key, SimTime::from_millis(1));
        // Covert populate.
        let seq = CovertSequence::new(spec.build_target(attacker_ip));
        for (i, p) in seq.populate_packets().enumerate() {
            sw.process(&p, SimTime::from_millis(2 + i as u64));
        }
        let masks = sw.mask_count();
        // Hammer the victim flow with EMC disabled influence: vary the
        // source port so each packet misses the EMC but hits the
        // victim's megaflow subtable.
        let mut probes_total = 0usize;
        let mut last = 0usize;
        for sport in 0..2_000u16 {
            let mut k = victim_key;
            k.tp_src = 10_000 + sport;
            let o = sw.process(&k, SimTime::from_secs(40));
            probes_total += o.path.probes();
            last = o.path.probes();
        }
        let _ = probes_total;
        (last, masks)
    }

    #[test]
    fn hit_sorting_floats_victim_to_front() {
        let base = DpConfig {
            emc_enabled: false, // isolate the megaflow walk
            ..DpConfig::default()
        };
        let (insertion_probes, masks_a) = victim_probes_under(base.clone());
        let (sorted_probes, masks_b) = victim_probes_under(hit_sort_config(base));
        assert_eq!(masks_a, masks_b);
        // Victim's subtable was created first (flow pre-dates attack),
        // so insertion order already favours it — both configurations
        // must keep the victim cheap. The interesting case (victim
        // arriving after the attack) is exercised below.
        assert!(insertion_probes <= 4);
        assert!(sorted_probes <= 4);
    }

    #[test]
    fn hit_sorting_rescues_late_victims() {
        // Victim flow starts *after* the masks exist: under insertion
        // order its subtable sits behind all 512; hit sorting pulls it
        // forward once the flow gets hot.
        let victim_ip = u32::from_be_bytes([10, 1, 0, 10]);
        let attacker_ip = u32::from_be_bytes([10, 1, 0, 66]);
        let spec = AttackSpec::masks_512(PolicyDialect::Kubernetes);

        let run = |dp: DpConfig| -> usize {
            let mut sw = VSwitch::new(dp);
            sw.attach_pod(victim_ip, 1);
            sw.attach_pod(attacker_ip, 2);
            let table = match spec.build_policy() {
                pi_attack::MaliciousAcl::K8s(p) => PolicyCompiler.compile_k8s(&p),
                _ => unreachable!(),
            };
            sw.install_acl(attacker_ip, table);
            let seq = CovertSequence::new(spec.build_target(attacker_ip));
            for (i, p) in seq.populate_packets().enumerate() {
                sw.process(&p, SimTime::from_millis(2 + i as u64));
            }
            // Victim flow arrives late, then becomes the hottest thing
            // on the node.
            let mut last_probes = 0;
            for sport in 0..5_000u16 {
                let mut k = FlowKey::tcp([10, 0, 0, 10], [10, 1, 0, 10], 40_000, 5201);
                k.tp_src = 10_000 + (sport % 50); // 50 distinct keys, EMC-defeating mix
                let o = sw.process(&k, SimTime::from_secs(40));
                last_probes = o.path.probes();
            }
            last_probes
        };

        let base = DpConfig {
            emc_enabled: false,
            ..DpConfig::default()
        };
        let insertion = run(base.clone());
        let sorted = run(hit_sort_config(base));
        assert!(
            insertion > 500,
            "late victim under insertion order pays the walk: {insertion}"
        );
        assert!(
            sorted <= 4,
            "hit sorting must float the hot victim forward: {sorted}"
        );
    }

    #[test]
    fn staged_lookup_cuts_stage_checks_not_probes() {
        let victim_ip = u32::from_be_bytes([10, 1, 0, 10]);
        let attacker_ip = u32::from_be_bytes([10, 1, 0, 66]);
        let spec = AttackSpec::masks_512(PolicyDialect::Kubernetes);
        let run = |dp: DpConfig| -> (usize, usize) {
            let mut sw = VSwitch::new(dp);
            sw.attach_pod(victim_ip, 1);
            sw.attach_pod(attacker_ip, 2);
            let table = match spec.build_policy() {
                pi_attack::MaliciousAcl::K8s(p) => PolicyCompiler.compile_k8s(&p),
                _ => unreachable!(),
            };
            sw.install_acl(attacker_ip, table);
            let seq = CovertSequence::new(spec.build_target(attacker_ip));
            for (i, p) in seq.populate_packets().enumerate() {
                sw.process(&p, SimTime::from_millis(2 + i as u64));
            }
            // A fresh covert scan packet: full walk.
            let o = sw.process(&seq.scan_packet(1_000_000), SimTime::from_secs(50));
            match o.path {
                pi_datapath::PathTaken::MegaflowHit {
                    probes,
                    stage_checks,
                    ..
                } => (probes, stage_checks),
                other => panic!("expected megaflow hit, got {other:?}"),
            }
        };
        let base = DpConfig {
            emc_enabled: false,
            ..DpConfig::default()
        };
        let (plain_probes, plain_checks) = run(base.clone());
        let (staged_probes, staged_checks) = run(staged_config(base));
        assert_eq!(plain_probes, staged_probes, "walk length unchanged");
        assert!(
            staged_checks < plain_checks,
            "staged lookup must do less hash work: {staged_checks} vs {plain_checks}"
        );
    }
}
