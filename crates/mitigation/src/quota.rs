//! Per-port upcall fair sharing — the OVS-style flow-setup rate limit.
//!
//! The bounded slow path ([`pi_datapath::upcall`]) is a shared resource:
//! handlers drain every port's upcall queue from one per-step cycle
//! budget, so a single tenant spraying guaranteed-miss packets can
//! monopolise flow setup for the whole host (the `upcall_saturation`
//! scenario). The fair-share quota caps how many upcalls one port may
//! have resolved per handler step (OVS: `upcall-rate-limit` /
//! per-port meter on the slow path). An over-quota port keeps its
//! backlog queued and eventually tail-drops *its own* traffic; ports
//! within quota are served every step.
//!
//! Trade-offs: a legitimately bursty service (mass reconnect after a
//! deploy) is also clipped to the quota, paying install latency in
//! steps — the familiar fairness-versus-peak-throughput tension. And
//! the isolation is only as fine as the queue attribution: the
//! unroutable/default queue and the fabric uplink are *shared* queues
//! (one port each), so a flood of remote-bound or destination-spray
//! setups still contends with every other tenant's traffic on that
//! same shared queue — the quota protects pods with their own vports,
//! not tenants multiplexed behind a shared port.

use pi_datapath::{DpConfig, PipelineMode, UpcallPipelineConfig};

/// A datapath whose bounded upcall pipeline enforces a per-port
/// fair-share quota of `quota_per_port_per_step` resolved upcalls per
/// handler step. If `base` still runs the inline pipeline it is switched
/// to the default bounded configuration first (the quota is meaningless
/// without a bounded slow path).
pub fn upcall_fair_share_config(base: DpConfig, quota_per_port_per_step: u32) -> DpConfig {
    let cfg = match base.pipeline {
        PipelineMode::Bounded(cfg) => cfg,
        PipelineMode::Inline => UpcallPipelineConfig::default(),
    };
    DpConfig {
        pipeline: PipelineMode::Bounded(cfg.with_port_quota(quota_per_port_per_step)),
        ..base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_core::{FlowKey, SimTime};
    use pi_datapath::VSwitch;

    const VICTIM_IP: [u8; 4] = [10, 1, 0, 10];

    /// The number of handler steps the flood runs alone before the
    /// victim's first connection: long enough for the flood to fill the
    /// flow limit, so victim megaflows are refused from then on and
    /// every victim connection must upcall.
    const WARMUP_STEPS: u32 = 50;

    /// Floods the unroutable queue while a victim pod (starting after
    /// the warm-up) trickles 2 fresh connections per step; returns
    /// (victim queue drops, victim handled).
    fn run(dp: DpConfig, steps: u32) -> (u64, u64) {
        let mut sw = VSwitch::new(dp);
        sw.attach_pod(u32::from_be_bytes(VICTIM_IP), 1);
        let mut t = SimTime::from_millis(1);
        let mut flood = 0u32;
        for step in 0..steps {
            // 20 flood packets/step to unique unroutable destinations.
            for _ in 0..20 {
                flood += 1;
                let dst = [172, 16, (flood >> 8) as u8, flood as u8];
                sw.process(&FlowKey::tcp([10, 9, 9, 9], dst, 7, 7), t);
            }
            // 2 victim connections/step, each a fresh flow.
            if step >= WARMUP_STEPS {
                for i in 0..2u32 {
                    let n = step * 2 + i;
                    let src = [10, 2, (n >> 8) as u8, n as u8];
                    sw.process(&FlowKey::tcp(src, VICTIM_IP, 5000, 80), t);
                }
            }
            sw.drain_upcalls(t, |_| {});
            t += SimTime::from_millis(1);
        }
        let victim = sw
            .upcall_port_stats()
            .into_iter()
            .find(|(q, _)| *q == 1)
            .map(|(_, s)| s)
            .unwrap_or_default();
        (victim.queue_drops, victim.handled)
    }

    /// Base config: bounded pipeline whose handler budget covers ~6
    /// default-cost upcalls per step against 22 arrivals, and a small
    /// flow limit the flood exhausts during the warm-up (so victim
    /// megaflows are refused and its flows keep upcalling).
    fn saturated_base() -> DpConfig {
        DpConfig {
            flow_limit: 50,
            pipeline: PipelineMode::Bounded(UpcallPipelineConfig {
                queue_capacity: 16,
                handler_cycles_per_step: 200_000,
                port_quota_per_step: None,
            }),
            ..DpConfig::default()
        }
    }

    #[test]
    fn saturated_handlers_starve_the_victim_without_the_quota() {
        let (drops, handled) = run(saturated_base(), 300);
        assert!(
            drops > 400,
            "deepest-first handlers must starve the victim port: \
             {drops} drops, {handled} handled"
        );
    }

    #[test]
    fn fair_share_quota_restores_the_victim() {
        let dp = upcall_fair_share_config(saturated_base(), 4);
        let (drops, handled) = run(dp, 300);
        assert_eq!(drops, 0, "within-quota victim is served every step");
        assert!(handled >= 490, "victim handled {handled} of ~500");
    }

    #[test]
    fn inline_base_is_promoted_to_the_default_bounded_pipeline() {
        let dp = upcall_fair_share_config(DpConfig::default(), 7);
        match dp.pipeline {
            PipelineMode::Bounded(cfg) => {
                assert_eq!(cfg.port_quota_per_step, Some(7));
                assert_eq!(
                    cfg.queue_capacity,
                    UpcallPipelineConfig::default().queue_capacity
                );
            }
            PipelineMode::Inline => panic!("quota requires a bounded pipeline"),
        }
    }
}
