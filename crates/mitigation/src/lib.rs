//! # pi-mitigation — defenses against policy injection
//!
//! The paper's demo discussion lists "potential work-in-progress
//! mitigation techniques and their trade-offs (e.g., joint
//! troubleshooting techniques by tenants and provider, improved
//! heuristics in OVS, flow cache-less softswitches)". This crate
//! implements one representative of each family so the ablation
//! experiment (EXPERIMENTS.md E7) can quantify them:
//!
//! * [`MaskBudget`] — **admission control**: predict a policy's
//!   reachable mask count *before* installing it and refuse pathological
//!   ones. Cheap, exact against this attack, but rejects some legitimate
//!   fine-grained policies (the trade-off).
//! * [`hit_sort_config`] / [`staged_config`] — **improved heuristics**:
//!   OVS's subtable hit-count sorting protects hot victim flows; staged
//!   lookup shrinks the per-subtable cost constant. Both attenuate
//!   without fixing the O(#masks) walk.
//! * [`CompiledAcl`] / [`CachelessSwitch`] — **cache-less datapath**
//!   (the ESwitch / dataplane-specialisation line the paper cites):
//!   classification cost depends only on the policy, never on traffic,
//!   so the covert stream has nothing to amplify.
//! * [`attribution`] — **detection**: per-destination mask accounting
//!   that names the pod (hence tenant) whose ACL carries the explosion.
//! * [`upcall_fair_share_config`] — **slow-path fair sharing**: the
//!   OVS-style per-port flow-setup rate limit for the bounded upcall
//!   pipeline, so one tenant's upcall flood tail-drops its own traffic
//!   instead of starving its neighbours' flow setups.

pub mod attribution;
pub mod budget;
pub mod compiled;
pub mod heuristics;
pub mod quota;

pub use attribution::{
    attribute_entries, attribute_masks, detect_offenders, offenders, MaskAttribution,
};
pub use budget::{AdmissionDecision, MaskBudget};
pub use compiled::{CachelessSwitch, CompiledAcl};
pub use heuristics::{hit_sort_config, staged_config};
pub use quota::upcall_fair_share_config;
