//! The cache-less datapath: compile the policy, skip the caches.
//!
//! The paper's reference [4] (Molnár et al., "Dataplane Specialization
//! for High-performance OpenFlow Software Switching", SIGCOMM'16) makes
//! the case that a switch can compile its *policy* into specialised
//! code whose per-packet cost depends only on the policy — not on the
//! traffic mix and not on any cache state. Against an algorithmic
//! complexity attack that is the structural fix: there is no cache for
//! the adversary to shape.
//!
//! [`CompiledAcl`] models the compiled artefact: per rule, an ordered
//! chain of field checks (prefix compare / exact compare), evaluated
//! rule-by-rule in precedence order. Cost is counted in *checks*, with
//! a fixed per-check cycle price in [`CachelessSwitch`].

use pi_classifier::{Action, FlowTable};
use pi_core::{FlowKey, ALL_FIELDS};

/// One compiled check: does `key.field & mask == value`?
#[derive(Debug, Clone, Copy)]
struct Check {
    field: pi_core::Field,
    mask: u64,
    value: u64,
}

/// One compiled rule: all checks must pass.
#[derive(Debug, Clone)]
struct CompiledRule {
    checks: Vec<Check>,
    action: Action,
}

/// A policy compiled to straight-line checks.
#[derive(Debug, Clone)]
pub struct CompiledAcl {
    rules: Vec<CompiledRule>,
    default_action: Action,
}

impl CompiledAcl {
    /// Compiles a flow table (rules ordered by precedence, so first
    /// match wins like the linear reference).
    pub fn compile(table: &FlowTable, default_action: Action) -> Self {
        let mut rules: Vec<&pi_classifier::Rule> = table.iter().collect();
        // Highest precedence first.
        rules.sort_by_key(|r| std::cmp::Reverse(r.precedence()));
        let rules = rules
            .into_iter()
            .map(|r| CompiledRule {
                checks: ALL_FIELDS
                    .iter()
                    .filter_map(|f| {
                        let mask = r.matcher.mask().field(*f);
                        (mask != 0).then_some(Check {
                            field: *f,
                            mask,
                            value: r.matcher.key().field(*f),
                        })
                    })
                    .collect(),
                action: r.action,
            })
            .collect();
        CompiledAcl {
            rules,
            default_action,
        }
    }

    /// Classifies a packet; returns the verdict and the number of field
    /// checks performed (the entire cost — no cache state involved).
    pub fn classify(&self, key: &FlowKey) -> (Action, usize) {
        let mut checks_done = 0;
        for rule in &self.rules {
            let mut matched = true;
            for c in &rule.checks {
                checks_done += 1;
                if key.field(c.field) & c.mask != c.value {
                    matched = false;
                    break;
                }
            }
            if matched {
                return (rule.action, checks_done);
            }
        }
        (self.default_action, checks_done)
    }

    /// Worst-case checks for any packet: the sum over rules of their
    /// check counts (every rule misses on its last check). The bound a
    /// provider can budget against.
    pub fn worst_case_checks(&self) -> usize {
        self.rules.iter().map(|r| r.checks.len()).sum()
    }
}

/// A minimal cache-less switch for the mitigation ablation: routes on
/// `ip_dst`, evaluates the destination pod's compiled ACL, and charges a
/// fixed price per check. Deliberately mirrors the signature of
/// [`pi_datapath::VSwitch::process`]'s outcome where the ablation needs
/// it.
#[derive(Debug, Default)]
pub struct CachelessSwitch {
    routes: std::collections::HashMap<u32, (u32, CompiledAcl)>,
    /// Cycles charged per field check.
    pub cycles_per_check: u64,
    /// Cycles charged per packet for parsing.
    pub parse_cycles: u64,
    packets: u64,
    cycles: u64,
}

impl CachelessSwitch {
    /// A switch with default cost constants (same parse price as the
    /// cached datapath; 24 cycles per compiled check).
    pub fn new() -> Self {
        CachelessSwitch {
            routes: Default::default(),
            cycles_per_check: 24,
            parse_cycles: 80,
            packets: 0,
            cycles: 0,
        }
    }

    /// Attaches a pod with its compiled policy.
    pub fn attach_pod(&mut self, ip: u32, vport: u32, acl: CompiledAcl) {
        self.routes.insert(ip, (vport, acl));
    }

    /// Processes one packet: `(verdict, output vport, cycles)`.
    pub fn process(&mut self, key: &FlowKey) -> (Action, Option<u32>, u64) {
        self.packets += 1;
        let (verdict, output, checks) = match self.routes.get(&key.ip_dst) {
            Some((vport, acl)) => {
                let (action, checks) = acl.classify(key);
                let out = action.permits().then_some(*vport);
                (action, out, checks)
            }
            None => (Action::Deny, None, 0),
        };
        let cycles = self.parse_cycles + checks as u64 * self.cycles_per_check;
        self.cycles += cycles;
        (verdict, output, cycles)
    }

    /// `(packets, cycles)` processed so far.
    pub fn totals(&self) -> (u64, u64) {
        (self.packets, self.cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_attack::{AttackSpec, CovertSequence};
    use pi_classifier::LinearClassifier;
    use pi_cms::{PolicyCompiler, PolicyDialect};

    fn attack_table() -> FlowTable {
        match AttackSpec::masks_512(PolicyDialect::Kubernetes).build_policy() {
            pi_attack::MaliciousAcl::K8s(p) => PolicyCompiler.compile_k8s(&p),
            _ => unreachable!(),
        }
    }

    #[test]
    fn compiled_agrees_with_linear_reference() {
        let table = attack_table();
        let compiled = CompiledAcl::compile(&table, Action::Deny);
        let linear = LinearClassifier::new(&table);
        let spec = AttackSpec::masks_512(PolicyDialect::Kubernetes);
        let seq = CovertSequence::new(spec.build_target(0x0a01_0042));
        for pkt in seq.populate_packets() {
            let expected = linear
                .classify(&pkt)
                .map(|r| r.action)
                .unwrap_or(Action::Deny);
            assert_eq!(compiled.classify(&pkt).0, expected, "packet {pkt}");
        }
    }

    #[test]
    fn cost_is_policy_bounded_not_traffic_shaped() {
        let table = attack_table();
        let compiled = CompiledAcl::compile(&table, Action::Deny);
        let bound = compiled.worst_case_checks();
        assert!(bound <= 8, "2 rules × ≤4 checks: got {bound}");
        let spec = AttackSpec::masks_512(PolicyDialect::Kubernetes);
        let seq = CovertSequence::new(spec.build_target(0x0a01_0042));
        // The entire covert sequence — the traffic that melts the cached
        // datapath — never exceeds the static bound.
        for pkt in seq.populate_packets() {
            let (_, checks) = compiled.classify(&pkt);
            assert!(checks <= bound);
        }
        for n in 0..1_000 {
            let (_, checks) = compiled.classify(&seq.scan_packet(n));
            assert!(checks <= bound);
        }
    }

    #[test]
    fn cacheless_switch_is_attack_immune() {
        let mut sw = CachelessSwitch::new();
        let pod_ip = 0x0a01_0042;
        sw.attach_pod(
            pod_ip,
            1,
            CompiledAcl::compile(&attack_table(), Action::Deny),
        );
        let spec = AttackSpec::masks_512(PolicyDialect::Kubernetes);
        let seq = CovertSequence::new(spec.build_target(pod_ip));
        // Populate + scan: measure average cost.
        for p in seq.populate_packets() {
            sw.process(&p);
        }
        let (p0, c0) = sw.totals();
        for n in 0..10_000 {
            sw.process(&seq.scan_packet(n));
        }
        let (p1, c1) = sw.totals();
        let avg = (c1 - c0) as f64 / (p1 - p0) as f64;
        // 80 parse + ≤8 checks × 24 = ≤ 272 cycles: three orders of
        // magnitude below the attacked cached datapath.
        assert!(avg <= 272.0, "avg = {avg}");
    }

    #[test]
    fn precedence_respected_after_compilation() {
        use pi_core::{Field, FlowMask, MaskedKey};
        let mut table = FlowTable::new();
        // Low-priority allow-all first, high-priority deny second: the
        // deny must win despite insertion order.
        table.insert(MaskedKey::wildcard(), 0, Action::Allow);
        table.insert(
            MaskedKey::new(
                FlowKey::tcp([10, 0, 0, 1], [0, 0, 0, 0], 0, 0),
                FlowMask::default().with_exact(Field::IpSrc),
            ),
            5,
            Action::Deny,
        );
        let compiled = CompiledAcl::compile(&table, Action::Deny);
        let (a, _) = compiled.classify(&FlowKey::tcp([10, 0, 0, 1], [9, 9, 9, 9], 1, 2));
        assert_eq!(a, Action::Deny);
        let (a, _) = compiled.classify(&FlowKey::tcp([10, 0, 0, 2], [9, 9, 9, 9], 1, 2));
        assert_eq!(a, Action::Allow);
    }

    #[test]
    fn unroutable_denies() {
        let mut sw = CachelessSwitch::new();
        let (a, out, _) = sw.process(&FlowKey::tcp([1, 1, 1, 1], [2, 2, 2, 2], 1, 2));
        assert_eq!(a, Action::Deny);
        assert_eq!(out, None);
    }
}
