//! Randomised property tests of the network primitives behind policy
//! compilation (`port_range_to_prefixes`, `Cidr`), in the PR 1
//! deterministic style: no external `proptest`, a fixed case count from
//! the in-house `SplitMix64` stream (`pi_core::for_cases`) — same
//! coverage intent, perfectly reproducible failures.
//!
//! These matter because the attack's mask arithmetic (32·16·16 = 8192)
//! is *built* on the range-to-prefix decomposition: an off-by-one in
//! coverage would silently change every predicted and measured mask
//! count in the repo.

use pi_cms::{port_range_to_prefixes, Cidr, PortRange};

const CASES: u64 = 512;

/// Does `(value, prefix_len)` cover port `p`?
fn covers(prefix: (u16, u8), p: u16) -> bool {
    let (v, len) = prefix;
    if len == 0 {
        return true;
    }
    let shift = 16 - len as u32;
    (p as u32) >> shift == (v as u32) >> shift
}

#[test]
fn prefixes_cover_exactly_the_range_with_no_overlap() {
    pi_core::for_cases(CASES, 0x51, |rng| {
        let a = (rng.next_u64() & 0xffff) as u16;
        let b = (rng.next_u64() & 0xffff) as u16;
        let range = PortRange::new(a.min(b), a.max(b)).unwrap();
        let prefixes = port_range_to_prefixes(range);
        if range.is_all() {
            assert!(prefixes.is_empty(), "all-ports is the empty constraint");
            return;
        }
        // Round trip: every port in the range is covered by exactly one
        // prefix; every port outside is covered by none. "Exactly one"
        // is the no-overlap half — overlapping prefixes would compile
        // into duplicate ACL rules and distort the mask counts.
        for p in 0..=65_535u16 {
            let n = prefixes.iter().filter(|&&pre| covers(pre, p)).count();
            if range.contains(p) {
                assert_eq!(n, 1, "port {p} of {range:?} covered {n} times");
            } else {
                assert_eq!(n, 0, "port {p} outside {range:?} covered");
            }
        }
        // Minimality bound: the textbook decomposition never needs more
        // than 2·16 − 2 prefixes.
        assert!(
            prefixes.len() <= 30,
            "{range:?} → {} prefixes",
            prefixes.len()
        );
        // Prefix values are canonical (host bits clear).
        for &(v, len) in &prefixes {
            if len < 16 {
                assert_eq!(v & ((1 << (16 - len)) - 1), 0, "non-canonical {v}/{len}");
            }
        }
    });
}

#[test]
fn single_port_ranges_round_trip_to_one_exact_prefix() {
    pi_core::for_cases(CASES, 0x52, |rng| {
        let p = (rng.next_u64() & 0xffff) as u16;
        assert_eq!(port_range_to_prefixes(PortRange::single(p)), vec![(p, 16)]);
    });
}

#[test]
fn cidr_parse_display_round_trips_and_contains_matches_mask() {
    pi_core::for_cases(CASES, 0x53, |rng| {
        let addr = rng.next_u64() as u32;
        let len = (rng.next_u64() % 33) as u8;
        let c = Cidr::new(addr, len).unwrap();
        // Canonicalisation: host bits are cleared, and re-canonicalising
        // is a fixed point.
        assert_eq!(c.addr & !c.mask(), 0, "host bits must be zero");
        assert_eq!(Cidr::new(c.addr, c.len).unwrap(), c);
        // Display → FromStr round trip.
        let reparsed: Cidr = c.to_string().parse().unwrap();
        assert_eq!(reparsed, c);
        // contains() agrees with the mask arithmetic on random probes
        // and on the block's own boundary addresses.
        assert!(c.contains(c.addr));
        assert!(c.contains(c.addr | !c.mask()), "broadcast edge inside");
        for _ in 0..8 {
            let probe = rng.next_u64() as u32;
            assert_eq!(c.contains(probe), (probe ^ c.addr) & c.mask() == 0);
        }
        // The original (un-canonicalised) address is always inside.
        assert!(c.contains(addr));
    });
}

#[test]
fn cidr_edge_lengths_behave() {
    // /0 contains everything; /32 contains exactly itself; /33 errors.
    assert!(Cidr::ANY.contains(0));
    assert!(Cidr::ANY.contains(u32::MAX));
    let host = Cidr::new(0xdead_beef, 32).unwrap();
    assert!(host.contains(0xdead_beef));
    assert!(!host.contains(0xdead_bee0));
    assert!(Cidr::new(0, 33).is_err());
    // Zero-length mask is 0 (no 1<<32 overflow).
    assert_eq!(Cidr::ANY.mask(), 0);
    assert_eq!(host.mask(), u32::MAX);
}
