//! Cloud topology and the policy API surface.
//!
//! A [`Cloud`] is the management-plane view of Fig. 1: server nodes, a
//! fabric between them, tenants, and pods with virtual ports. Tenants
//! attach policies to **their own** pods — exactly the privilege the
//! attack needs and no more.

use std::collections::HashMap;
use std::fmt;

use pi_classifier::FlowTable;
use pi_core::MacAddr;

use crate::compile::PolicyCompiler;
use crate::policy::{CalicoPolicy, NetworkPolicy, PolicyDialect, SecurityGroup};

/// Tenant identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(pub u32);

/// Server-node identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Pod/VM identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PodId(pub u32);

impl fmt::Display for PodId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pod{}", self.0)
    }
}

/// A provisioned pod/VM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pod {
    /// Identity.
    pub id: PodId,
    /// Owning tenant.
    pub tenant: TenantId,
    /// Hosting node.
    pub node: NodeId,
    /// Virtual port number on the node's hypervisor switch.
    pub vport: u32,
    /// Pod IP (host byte order), allocated from `10.0.0.0/8` like the
    /// paper's example deployment.
    pub ip: u32,
    /// Pod MAC.
    pub mac: MacAddr,
}

/// CMS-level errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CmsError {
    /// The pod does not exist.
    NoSuchPod(PodId),
    /// The tenant does not own the pod it is configuring.
    NotYourPod {
        /// Who asked.
        tenant: TenantId,
        /// Whose pod it is.
        owner: TenantId,
    },
    /// The policy exceeds the per-pod compiled-rule budget.
    TooManyRules {
        /// Rules after compilation.
        got: usize,
        /// Configured maximum.
        limit: usize,
    },
}

impl fmt::Display for CmsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CmsError::NoSuchPod(p) => write!(f, "{p} does not exist"),
            CmsError::NotYourPod { tenant, owner } => {
                write!(
                    f,
                    "tenant {} cannot configure tenant {}'s pod",
                    tenant.0, owner.0
                )
            }
            CmsError::TooManyRules { got, limit } => {
                write!(f, "policy compiles to {got} rules, limit {limit}")
            }
        }
    }
}

impl std::error::Error for CmsError {}

/// How the scheduler chooses a hosting node for new pods.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementStrategy {
    /// Spread pods across nodes, least-loaded first.
    RoundRobin,
    /// Fill each node up to `capacity` pods before opening the next.
    BinPacked {
        /// Pods per node before spilling to the next node.
        capacity: usize,
    },
    /// Adversarial co-location: place onto the nodes already hosting the
    /// target tenant's pods (the attacker's launch-until-colocated
    /// strategy from the multi-tenant DoS literature).
    Colocate(TenantId),
}

/// The compiled artefact the CMS hands to the node agent: which port of
/// which node gets which table.
#[derive(Debug, Clone)]
pub struct CompiledPolicy {
    /// Target pod.
    pub pod: PodId,
    /// Hosting node (where the switch lives).
    pub node: NodeId,
    /// The vport the ACL attaches to.
    pub vport: u32,
    /// Dialect it came from.
    pub dialect: PolicyDialect,
    /// The whitelist + default-deny table.
    pub table: FlowTable,
}

/// The cloud management system: inventory + policy admission.
#[derive(Debug, Default)]
pub struct Cloud {
    tenants: Vec<TenantId>,
    nodes: Vec<NodeId>,
    pods: HashMap<PodId, Pod>,
    next_pod: u32,
    next_vport: HashMap<NodeId, u32>,
    /// Per-pod compiled-rule cap (a real CMS quota; generous default).
    pub max_rules_per_pod: usize,
    compiler: PolicyCompiler,
}

impl Cloud {
    /// An empty cloud.
    pub fn new() -> Self {
        Cloud {
            max_rules_per_pod: 4096,
            ..Default::default()
        }
    }

    /// Registers a tenant.
    pub fn add_tenant(&mut self) -> TenantId {
        let id = TenantId(self.tenants.len() as u32);
        self.tenants.push(id);
        id
    }

    /// Registers a server node.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(id);
        self.next_vport.insert(id, 1);
        id
    }

    /// Provisions a pod for `tenant` on `node`, allocating its vport,
    /// IP (from 10.0.0.0/8) and MAC.
    pub fn add_pod(&mut self, tenant: TenantId, node: NodeId) -> PodId {
        let id = PodId(self.next_pod);
        self.next_pod += 1;
        let vport = {
            let v = self.next_vport.entry(node).or_insert(1);
            let cur = *v;
            *v += 1;
            cur
        };
        // 10.<node>.<pod+1 as 16 bits> — deterministic, collision-free
        // for the scales this workspace simulates, and never a .0 host.
        let ip = 0x0a00_0000 | ((node.0 & 0xff) << 16) | ((id.0 + 1) & 0xffff);
        let pod = Pod {
            id,
            tenant,
            node,
            vport,
            ip,
            mac: MacAddr::from_id(id.0),
        };
        self.pods.insert(id, pod);
        id
    }

    /// Pod lookup.
    pub fn pod(&self, id: PodId) -> Option<&Pod> {
        self.pods.get(&id)
    }

    /// All registered nodes, in id order.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// All pods hosted on `node`, in id order.
    pub fn pods_on(&self, node: NodeId) -> Vec<&Pod> {
        let mut pods: Vec<&Pod> = self.pods.values().filter(|p| p.node == node).collect();
        pods.sort_by_key(|p| p.id);
        pods
    }

    /// Number of pods hosted on `node` (no allocation — the placement
    /// hot path).
    pub fn pod_count_on(&self, node: NodeId) -> usize {
        self.pods.values().filter(|p| p.node == node).count()
    }

    /// Provisions `count` pods for `tenant`, choosing hosting nodes via
    /// `strategy` — the scheduler knob a fleet-scale experiment turns to
    /// model benign spreading vs an attacker engineering co-location.
    ///
    /// # Panics
    /// Panics if the cloud has no nodes.
    pub fn place_pods(
        &mut self,
        tenant: TenantId,
        count: usize,
        strategy: PlacementStrategy,
    ) -> Vec<PodId> {
        assert!(
            !self.nodes.is_empty(),
            "cannot place pods in a node-less cloud"
        );
        (0..count)
            .map(|_| {
                let node = self.pick_node(tenant, &strategy);
                self.add_pod(tenant, node)
            })
            .collect()
    }

    fn pick_node(&self, tenant: TenantId, strategy: &PlacementStrategy) -> NodeId {
        match strategy {
            // Spread: next pod goes to the least-loaded node (ties by id),
            // which is round-robin when pods arrive one at a time.
            PlacementStrategy::RoundRobin => *self
                .nodes
                .iter()
                .min_by_key(|n| (self.pod_count_on(**n), n.0))
                .expect("non-empty node list"),
            // Pack: fill a node to `capacity` pods before opening the next.
            PlacementStrategy::BinPacked { capacity } => {
                let cap = (*capacity).max(1);
                *self
                    .nodes
                    .iter()
                    .find(|n| self.pod_count_on(**n) < cap)
                    .unwrap_or_else(|| self.nodes.last().expect("non-empty node list"))
            }
            // Adversarial co-location: land on the target tenant's nodes,
            // least-loaded-by-us first (the attacker wants coverage, not
            // density). Falls back to round-robin when the target has no
            // pods yet.
            PlacementStrategy::Colocate(target) => {
                let target_nodes: Vec<NodeId> = {
                    let mut nodes: Vec<NodeId> =
                        self.pods_of(*target).iter().map(|p| p.node).collect();
                    nodes.sort();
                    nodes.dedup();
                    nodes
                };
                if target_nodes.is_empty() {
                    return self.pick_node(tenant, &PlacementStrategy::RoundRobin);
                }
                *target_nodes
                    .iter()
                    .min_by_key(|n| {
                        let mine = self
                            .pods
                            .values()
                            .filter(|p| p.node == **n && p.tenant == tenant)
                            .count();
                        (mine, n.0)
                    })
                    .expect("non-empty target node list")
            }
        }
    }

    /// All pods of a tenant, in id order.
    pub fn pods_of(&self, tenant: TenantId) -> Vec<&Pod> {
        let mut pods: Vec<&Pod> = self.pods.values().filter(|p| p.tenant == tenant).collect();
        pods.sort_by_key(|p| p.id);
        pods
    }

    fn admit(
        &self,
        tenant: TenantId,
        pod_id: PodId,
        dialect: PolicyDialect,
        table: FlowTable,
    ) -> Result<CompiledPolicy, CmsError> {
        let pod = self.pods.get(&pod_id).ok_or(CmsError::NoSuchPod(pod_id))?;
        if pod.tenant != tenant {
            return Err(CmsError::NotYourPod {
                tenant,
                owner: pod.tenant,
            });
        }
        if table.len() > self.max_rules_per_pod {
            return Err(CmsError::TooManyRules {
                got: table.len(),
                limit: self.max_rules_per_pod,
            });
        }
        Ok(CompiledPolicy {
            pod: pod_id,
            node: pod.node,
            vport: pod.vport,
            dialect,
            table,
        })
    }

    /// Tenant applies a Kubernetes NetworkPolicy to its pod.
    pub fn apply_k8s_policy(
        &self,
        tenant: TenantId,
        pod: PodId,
        policy: &NetworkPolicy,
    ) -> Result<CompiledPolicy, CmsError> {
        let table = self.compiler.compile_k8s(policy);
        self.admit(tenant, pod, PolicyDialect::Kubernetes, table)
    }

    /// Tenant applies an OpenStack security group to its pod/VM.
    pub fn apply_security_group(
        &self,
        tenant: TenantId,
        pod: PodId,
        sg: &SecurityGroup,
    ) -> Result<CompiledPolicy, CmsError> {
        let table = self.compiler.compile_security_group(sg);
        self.admit(tenant, pod, PolicyDialect::OpenStack, table)
    }

    /// Tenant applies a Calico policy to its pod.
    pub fn apply_calico_policy(
        &self,
        tenant: TenantId,
        pod: PodId,
        policy: &CalicoPolicy,
    ) -> Result<CompiledPolicy, CmsError> {
        let table = self.compiler.compile_calico(policy);
        self.admit(tenant, pod, PolicyDialect::Calico, table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::NetworkPolicy;

    fn two_tenant_cloud() -> (Cloud, TenantId, TenantId, PodId, PodId) {
        let mut cloud = Cloud::new();
        let victim = cloud.add_tenant();
        let attacker = cloud.add_tenant();
        let node = cloud.add_node();
        let vpod = cloud.add_pod(victim, node);
        let apod = cloud.add_pod(attacker, node);
        (cloud, victim, attacker, vpod, apod)
    }

    #[test]
    fn provisioning_allocates_unique_addresses() {
        let (cloud, victim, _, vpod, apod) = two_tenant_cloud();
        let v = cloud.pod(vpod).unwrap();
        let a = cloud.pod(apod).unwrap();
        assert_ne!(v.ip, a.ip);
        assert_ne!(v.mac, a.mac);
        assert_ne!(v.vport, a.vport);
        assert_eq!(v.ip >> 24, 10, "pods live in 10.0.0.0/8");
        assert_eq!(cloud.pods_of(victim).len(), 1);
    }

    #[test]
    fn vports_are_per_node() {
        let mut cloud = Cloud::new();
        let t = cloud.add_tenant();
        let n1 = cloud.add_node();
        let n2 = cloud.add_node();
        let p1 = cloud.add_pod(t, n1);
        let p2 = cloud.add_pod(t, n2);
        assert_eq!(cloud.pod(p1).unwrap().vport, 1);
        assert_eq!(cloud.pod(p2).unwrap().vport, 1, "fresh node, fresh vports");
    }

    #[test]
    fn tenant_can_policy_own_pod() {
        let (cloud, _, attacker, _, apod) = two_tenant_cloud();
        let policy = NetworkPolicy::allow_from_cidr("mine", "10.0.0.0/8".parse().unwrap());
        let compiled = cloud.apply_k8s_policy(attacker, apod, &policy).unwrap();
        assert_eq!(compiled.pod, apod);
        assert_eq!(compiled.dialect, PolicyDialect::Kubernetes);
        assert_eq!(compiled.table.len(), 2);
        assert_eq!(compiled.vport, cloud.pod(apod).unwrap().vport);
    }

    #[test]
    fn tenant_cannot_policy_foreign_pod() {
        let (cloud, victim, attacker, vpod, _) = two_tenant_cloud();
        let policy = NetworkPolicy::allow_from_cidr("evil", "10.0.0.0/8".parse().unwrap());
        let err = cloud.apply_k8s_policy(attacker, vpod, &policy).unwrap_err();
        assert_eq!(
            err,
            CmsError::NotYourPod {
                tenant: attacker,
                owner: victim
            }
        );
    }

    #[test]
    fn unknown_pod_is_rejected() {
        let (cloud, _, attacker, _, _) = two_tenant_cloud();
        let policy = NetworkPolicy::allow_from_cidr("x", "10.0.0.0/8".parse().unwrap());
        let err = cloud
            .apply_k8s_policy(attacker, PodId(999), &policy)
            .unwrap_err();
        assert_eq!(err, CmsError::NoSuchPod(PodId(999)));
    }

    #[test]
    fn rule_budget_enforced() {
        let (mut cloud, _, attacker, _, apod) = two_tenant_cloud();
        cloud.max_rules_per_pod = 3;
        // 4 source blocks ⇒ 4 allows + deny = 5 rules > 3.
        let policy = NetworkPolicy {
            name: "big".into(),
            ingress: vec![crate::policy::IngressRule {
                from: (0..4u8)
                    .map(|i| crate::net::Cidr::new(u32::from(i) << 24, 8).unwrap())
                    .collect(),
                ports: vec![],
            }],
        };
        let err = cloud.apply_k8s_policy(attacker, apod, &policy).unwrap_err();
        assert!(matches!(err, CmsError::TooManyRules { got: 5, limit: 3 }));
    }

    #[test]
    fn round_robin_placement_spreads() {
        let mut cloud = Cloud::new();
        let t = cloud.add_tenant();
        for _ in 0..4 {
            cloud.add_node();
        }
        let pods = cloud.place_pods(t, 8, PlacementStrategy::RoundRobin);
        assert_eq!(pods.len(), 8);
        for n in cloud.nodes().to_vec() {
            assert_eq!(cloud.pods_on(n).len(), 2, "even spread on {n:?}");
        }
    }

    #[test]
    fn bin_packed_placement_fills_in_order() {
        let mut cloud = Cloud::new();
        let t = cloud.add_tenant();
        let n0 = cloud.add_node();
        let n1 = cloud.add_node();
        let n2 = cloud.add_node();
        cloud.place_pods(t, 5, PlacementStrategy::BinPacked { capacity: 2 });
        assert_eq!(cloud.pods_on(n0).len(), 2);
        assert_eq!(cloud.pods_on(n1).len(), 2);
        assert_eq!(cloud.pods_on(n2).len(), 1);
        // Overflow beyond total capacity lands on the last node.
        cloud.place_pods(t, 3, PlacementStrategy::BinPacked { capacity: 2 });
        assert_eq!(cloud.pods_on(n2).len(), 4);
    }

    #[test]
    fn colocation_targets_victim_nodes() {
        let mut cloud = Cloud::new();
        let victim = cloud.add_tenant();
        let attacker = cloud.add_tenant();
        for _ in 0..6 {
            cloud.add_node();
        }
        let vpods = cloud.place_pods(victim, 2, PlacementStrategy::RoundRobin);
        let victim_nodes: Vec<NodeId> = vpods.iter().map(|p| cloud.pod(*p).unwrap().node).collect();
        let apods = cloud.place_pods(attacker, 4, PlacementStrategy::Colocate(victim));
        for p in &apods {
            assert!(
                victim_nodes.contains(&cloud.pod(*p).unwrap().node),
                "attacker pod must land on a victim node"
            );
        }
        // With no victim pods, colocation degrades to round-robin.
        let loner = cloud.add_tenant();
        let pods = cloud.place_pods(attacker, 2, PlacementStrategy::Colocate(loner));
        assert_eq!(pods.len(), 2);
    }

    #[test]
    fn error_messages_readable() {
        let e = CmsError::NotYourPod {
            tenant: TenantId(1),
            owner: TenantId(0),
        };
        assert!(e.to_string().contains("tenant 1"));
        assert!(CmsError::NoSuchPod(PodId(7)).to_string().contains("pod7"));
    }
}
