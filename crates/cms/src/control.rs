//! The timed control plane: scheduled policy updates with propagation
//! delay.
//!
//! The paper's attack surface is the CMS control plane, not the packet
//! path — a tenant's sanctioned policy API call ends as an
//! `install_acl` at a hypervisor switch, and every such install flushes
//! the shared flow caches. Until now the repo applied all ACLs before
//! tick 0; this module makes policy *churn* a first-class, schedulable
//! event stream so mid-run installs (benign rollouts, migrations, and
//! the policy-flap attack) can be simulated deterministically.
//!
//! * [`PolicyUpdate`] — one CMS→switch action (ACL install/removal,
//!   pod attach).
//! * [`ControlPlaneProgram`] — a build-time list of updates, each with
//!   an issue time and a propagation delay (CMS → node agent → switch
//!   is never instantaneous).
//! * [`ControlPlane`] — the run-time driver: a compiled, time-sorted
//!   cursor the simulator polls once per tick. Updates whose
//!   `applies_at` has arrived are handed out in deterministic order
//!   (apply time, then program order), so results never depend on
//!   worker count or scheduling.

use pi_classifier::FlowTable;
use pi_core::SimTime;

/// One control-plane action applied to a node's virtual switch.
#[derive(Debug, Clone)]
pub enum PolicyUpdate {
    /// Install (or replace) the ingress ACL protecting the pod at `ip`.
    InstallAcl {
        /// Destination pod IP, host byte order.
        ip: u32,
        /// The compiled flow table.
        table: FlowTable,
    },
    /// Remove the ACL at `ip` (the pod reverts to allow-all).
    RemoveAcl {
        /// Destination pod IP, host byte order.
        ip: u32,
    },
    /// Attach (or re-home) the pod at `ip` to `vport`.
    AttachPod {
        /// Pod IP, host byte order.
        ip: u32,
        /// Virtual port on the switch.
        vport: u32,
    },
}

/// A [`PolicyUpdate`] with its timing: issued by the CMS at
/// `issued_at`, landing on the switch at `applies_at` (issue +
/// propagation delay).
#[derive(Debug, Clone)]
pub struct ScheduledUpdate {
    /// When the tenant's API call was made.
    pub issued_at: SimTime,
    /// When the update reaches the switch.
    pub applies_at: SimTime,
    /// What lands.
    pub update: PolicyUpdate,
}

/// A build-time program of scheduled updates for one node's switch.
///
/// Updates may be pushed in any order; [`ControlPlaneProgram::compile`]
/// sorts them stably by apply time, so two updates landing on the same
/// tick apply in program order — the determinism the fleet's
/// worker-count guarantee needs.
#[derive(Debug, Clone)]
pub struct ControlPlaneProgram {
    propagation_delay: SimTime,
    updates: Vec<ScheduledUpdate>,
}

impl Default for ControlPlaneProgram {
    fn default() -> Self {
        Self::new()
    }
}

impl ControlPlaneProgram {
    /// An empty program with zero propagation delay.
    pub fn new() -> Self {
        ControlPlaneProgram {
            propagation_delay: SimTime::ZERO,
            updates: Vec::new(),
        }
    }

    /// Sets the propagation delay applied to updates pushed *after*
    /// this call (CMS API → node agent → switch).
    #[must_use]
    pub fn with_propagation_delay(mut self, delay: SimTime) -> Self {
        self.propagation_delay = delay;
        self
    }

    /// The current propagation delay.
    pub fn propagation_delay(&self) -> SimTime {
        self.propagation_delay
    }

    /// Schedules `update`, issued at `issued_at`, applying after the
    /// program's propagation delay.
    pub fn push(&mut self, issued_at: SimTime, update: PolicyUpdate) {
        self.updates.push(ScheduledUpdate {
            issued_at,
            applies_at: issued_at + self.propagation_delay,
            update,
        });
    }

    /// Schedules an ACL install at `ip`.
    pub fn install_acl(&mut self, issued_at: SimTime, ip: u32, table: FlowTable) {
        self.push(issued_at, PolicyUpdate::InstallAcl { ip, table });
    }

    /// Schedules an ACL removal at `ip`.
    pub fn remove_acl(&mut self, issued_at: SimTime, ip: u32) {
        self.push(issued_at, PolicyUpdate::RemoveAcl { ip });
    }

    /// Schedules a pod attach at `ip`/`vport`.
    pub fn attach_pod(&mut self, issued_at: SimTime, ip: u32, vport: u32) {
        self.push(issued_at, PolicyUpdate::AttachPod { ip, vport });
    }

    /// Schedules `count` repeated installs of the same ACL at `ip`,
    /// one every `period` starting at `start` — the primitive behind
    /// the policy-flap attack (each re-install is a no-op policy-wise
    /// but triggers a full cache invalidation on the switch).
    pub fn install_acl_every(
        &mut self,
        start: SimTime,
        period: SimTime,
        count: usize,
        ip: u32,
        table: &FlowTable,
    ) {
        assert!(period > SimTime::ZERO, "flap period must be positive");
        let mut at = start;
        for _ in 0..count {
            self.install_acl(at, ip, table.clone());
            at += period;
        }
    }

    /// Appends every update of `other` (its timings are preserved).
    pub fn merge(&mut self, other: ControlPlaneProgram) {
        self.updates.extend(other.updates);
    }

    /// Number of scheduled updates.
    pub fn len(&self) -> usize {
        self.updates.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.updates.is_empty()
    }

    /// The scheduled updates, in push order.
    pub fn updates(&self) -> &[ScheduledUpdate] {
        &self.updates
    }

    /// Compiles into the runtime driver: updates stably sorted by apply
    /// time (ties keep program order).
    pub fn compile(mut self) -> ControlPlane {
        self.updates.sort_by_key(|u| u.applies_at);
        ControlPlane {
            updates: self.updates,
            cursor: 0,
        }
    }
}

/// The runtime driver over a compiled program: the simulator polls
/// [`ControlPlane::due`] once per tick and applies what it returns, so
/// updates land on the simulation's tick/epoch grid.
#[derive(Debug, Clone)]
pub struct ControlPlane {
    updates: Vec<ScheduledUpdate>,
    cursor: usize,
}

impl ControlPlane {
    /// Updates due at `now` (apply time ≤ `now`) that have not been
    /// handed out yet, in deterministic order. Call with monotonically
    /// non-decreasing `now`.
    pub fn due(&mut self, now: SimTime) -> &[ScheduledUpdate] {
        let start = self.cursor;
        while self.cursor < self.updates.len() && self.updates[self.cursor].applies_at <= now {
            self.cursor += 1;
        }
        &self.updates[start..self.cursor]
    }

    /// Updates already handed out.
    pub fn applied(&self) -> usize {
        self.cursor
    }

    /// Updates still waiting for their apply time.
    pub fn pending(&self) -> usize {
        self.updates.len() - self.cursor
    }

    /// Apply time of the next pending update.
    pub fn next_due(&self) -> Option<SimTime> {
        self.updates.get(self.cursor).map(|u| u.applies_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_classifier::table::whitelist_with_default_deny;

    fn table() -> FlowTable {
        whitelist_with_default_deny(&[])
    }

    #[test]
    fn due_hands_updates_out_once_in_apply_order() {
        let mut p = ControlPlaneProgram::new();
        p.remove_acl(SimTime::from_millis(30), 2);
        p.install_acl(SimTime::from_millis(10), 1, table());
        p.attach_pod(SimTime::from_millis(10), 3, 7);
        let mut cp = p.compile();
        assert_eq!(cp.pending(), 3);
        assert_eq!(cp.next_due(), Some(SimTime::from_millis(10)));

        assert!(cp.due(SimTime::from_millis(9)).is_empty());
        let first = cp.due(SimTime::from_millis(10));
        assert_eq!(first.len(), 2, "same-tick updates in program order");
        assert!(matches!(
            first[0].update,
            PolicyUpdate::InstallAcl { ip: 1, .. }
        ));
        assert!(matches!(
            first[1].update,
            PolicyUpdate::AttachPod { ip: 3, vport: 7 }
        ));
        // Already-delivered updates never reappear.
        assert!(cp.due(SimTime::from_millis(20)).is_empty());
        let second = cp.due(SimTime::from_millis(40));
        assert_eq!(second.len(), 1);
        assert!(matches!(
            second[0].update,
            PolicyUpdate::RemoveAcl { ip: 2 }
        ));
        assert_eq!(cp.pending(), 0);
        assert_eq!(cp.applied(), 3);
        assert_eq!(cp.next_due(), None);
    }

    #[test]
    fn propagation_delay_shifts_apply_time_only() {
        let mut p = ControlPlaneProgram::new().with_propagation_delay(SimTime::from_millis(50));
        p.install_acl(SimTime::from_secs(1), 9, table());
        let u = &p.updates()[0];
        assert_eq!(u.issued_at, SimTime::from_secs(1));
        assert_eq!(
            u.applies_at,
            SimTime::from_secs(1) + SimTime::from_millis(50)
        );
        let mut cp = p.compile();
        assert!(cp.due(SimTime::from_secs(1)).is_empty(), "not landed yet");
        assert_eq!(cp.due(SimTime::from_millis(1_050)).len(), 1);
    }

    #[test]
    fn install_acl_every_builds_the_flap_train() {
        let mut p = ControlPlaneProgram::new();
        p.install_acl_every(
            SimTime::from_secs(2),
            SimTime::from_millis(10),
            5,
            42,
            &table(),
        );
        assert_eq!(p.len(), 5);
        let times: Vec<SimTime> = p.updates().iter().map(|u| u.applies_at).collect();
        assert_eq!(times[0], SimTime::from_secs(2));
        assert_eq!(times[4], SimTime::from_secs(2) + SimTime::from_millis(40));
        assert!(p
            .updates()
            .iter()
            .all(|u| matches!(u.update, PolicyUpdate::InstallAcl { ip: 42, .. })));
    }

    #[test]
    fn merge_preserves_both_programs_timings() {
        let mut a = ControlPlaneProgram::new();
        a.install_acl(SimTime::from_millis(5), 1, table());
        let mut b = ControlPlaneProgram::new().with_propagation_delay(SimTime::from_millis(1));
        b.remove_acl(SimTime::from_millis(2), 2);
        a.merge(b);
        let mut cp = a.compile();
        // b's update (applies at 3 ms) sorts before a's (5 ms).
        let due = cp.due(SimTime::from_millis(10));
        assert!(matches!(due[0].update, PolicyUpdate::RemoveAcl { ip: 2 }));
        assert!(matches!(
            due[1].update,
            PolicyUpdate::InstallAcl { ip: 1, .. }
        ));
    }
}
