//! The three policy dialects a tenant can speak.
//!
//! The types are deliberately *structural* about what each CMS permits:
//! a [`NetworkPolicy`] (Kubernetes) or [`SecurityGroup`] (OpenStack)
//! simply has no field for source ports, while a [`CalicoRule`] does.
//! That one extra field is what upgrades the attack from 512 to 8192
//! megaflow masks (paper §2).

use crate::net::{Cidr, PortRange, Protocol};

/// Which CMS accepted a policy (used for reporting and validation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyDialect {
    /// Kubernetes NetworkPolicy (ipBlock + destination ports).
    Kubernetes,
    /// OpenStack security group (remote prefix + destination port range).
    OpenStack,
    /// Calico network policy (adds source-port matching).
    Calico,
}

impl std::fmt::Display for PolicyDialect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            PolicyDialect::Kubernetes => "kubernetes",
            PolicyDialect::OpenStack => "openstack",
            PolicyDialect::Calico => "calico",
        })
    }
}

// ---------------------------------------------------------------------
// Kubernetes

/// One ingress clause: traffic from any of `from`, to any of `ports`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngressRule {
    /// Source ipBlocks; empty means "any source".
    pub from: Vec<Cidr>,
    /// `(protocol, destination port)`; `None` port means all ports;
    /// empty vector means "all traffic" (any protocol, any port).
    pub ports: Vec<(Protocol, Option<u16>)>,
}

/// A Kubernetes `NetworkPolicy` restricted to the ingress/ipBlock
/// features the paper uses. Selecting a pod makes it *isolated*: only
/// whitelisted traffic is admitted (whitelist + default-deny).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetworkPolicy {
    /// Object name (reporting only).
    pub name: String,
    /// Ingress whitelist clauses.
    pub ingress: Vec<IngressRule>,
}

impl NetworkPolicy {
    /// The paper's first example: allow from `10.0.0.0/8`, nothing else.
    pub fn allow_from_cidr(name: &str, cidr: Cidr) -> Self {
        NetworkPolicy {
            name: name.to_string(),
            ingress: vec![IngressRule {
                from: vec![cidr],
                ports: Vec::new(),
            }],
        }
    }
}

// ---------------------------------------------------------------------
// OpenStack

/// One security-group rule (ingress only — egress is irrelevant to the
/// attack).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SgRule {
    /// Remote (source) prefix.
    pub remote: Cidr,
    /// Protocol.
    pub protocol: Protocol,
    /// Destination port range; `None` = all ports.
    pub dst_ports: Option<PortRange>,
}

/// An OpenStack security group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SecurityGroup {
    /// Group name.
    pub name: String,
    /// Ingress rules (whitelist; the default-deny is implicit).
    pub rules: Vec<SgRule>,
}

// ---------------------------------------------------------------------
// Calico

/// One Calico allow rule. The `src_ports` field is the capability
/// Kubernetes/OpenStack lack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CalicoRule {
    /// Protocol.
    pub protocol: Protocol,
    /// Source networks; empty = any.
    pub src_nets: Vec<Cidr>,
    /// Source port ranges; empty = any. **The 8192-mask enabler.**
    pub src_ports: Vec<PortRange>,
    /// Destination port ranges; empty = any.
    pub dst_ports: Vec<PortRange>,
}

/// A Calico network policy (allow rules + implicit default deny).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CalicoPolicy {
    /// Policy name.
    pub name: String,
    /// Allow rules.
    pub rules: Vec<CalicoRule>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k8s_helper_builds_paper_example() {
        let p = NetworkPolicy::allow_from_cidr("fig2", "10.0.0.0/8".parse().unwrap());
        assert_eq!(p.ingress.len(), 1);
        assert_eq!(p.ingress[0].from[0].to_string(), "10.0.0.0/8");
        assert!(p.ingress[0].ports.is_empty());
    }

    #[test]
    fn dialect_display() {
        assert_eq!(PolicyDialect::Kubernetes.to_string(), "kubernetes");
        assert_eq!(PolicyDialect::OpenStack.to_string(), "openstack");
        assert_eq!(PolicyDialect::Calico.to_string(), "calico");
    }

    #[test]
    fn dialects_are_structurally_distinct() {
        // The type system itself documents the attack surface: only
        // CalicoRule has src_ports. This test is the living assertion
        // that the K8s/OpenStack types stay source-port-free.
        let calico = CalicoRule {
            protocol: Protocol::Tcp,
            src_nets: vec![Cidr::ANY],
            src_ports: vec![PortRange::single(1000)],
            dst_ports: vec![PortRange::single(80)],
        };
        assert_eq!(calico.src_ports.len(), 1);
        // NetworkPolicy/SgRule: no src port field exists — nothing to
        // assert beyond construction compiling.
        let _k8s = IngressRule {
            from: vec![Cidr::ANY],
            ports: vec![(Protocol::Tcp, Some(80))],
        };
        let _sg = SgRule {
            remote: Cidr::ANY,
            protocol: Protocol::Tcp,
            dst_ports: Some(PortRange::single(80)),
        };
    }
}
