//! Network primitives for policies: CIDRs, protocols, port ranges.

use std::fmt;
use std::str::FromStr;

use pi_core::key::{IPPROTO_TCP, IPPROTO_UDP};
use pi_core::CoreError;

/// An IPv4 CIDR block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Cidr {
    /// Network address in host byte order (canonicalised: host bits 0).
    pub addr: u32,
    /// Prefix length, 0–32.
    pub len: u8,
}

impl Cidr {
    /// Creates a canonicalised CIDR (host bits cleared).
    pub fn new(addr: u32, len: u8) -> pi_core::Result<Self> {
        if len > 32 {
            return Err(CoreError::PrefixTooLong {
                field: "cidr",
                len,
                width: 32,
            });
        }
        let mask = if len == 0 { 0 } else { u32::MAX << (32 - len) };
        Ok(Cidr {
            addr: addr & mask,
            len,
        })
    }

    /// The everything block `0.0.0.0/0`.
    pub const ANY: Cidr = Cidr { addr: 0, len: 0 };

    /// A single host `/32`.
    pub fn host(addr: impl Into<std::net::Ipv4Addr>) -> Self {
        Cidr {
            addr: u32::from(addr.into()),
            len: 32,
        }
    }

    /// The network mask as a `u32`.
    pub fn mask(&self) -> u32 {
        if self.len == 0 {
            0
        } else {
            u32::MAX << (32 - self.len)
        }
    }

    /// True if `ip` (host order) is inside this block.
    pub fn contains(&self, ip: u32) -> bool {
        (ip ^ self.addr) & self.mask() == 0
    }
}

impl fmt::Display for Cidr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", std::net::Ipv4Addr::from(self.addr), self.len)
    }
}

impl FromStr for Cidr {
    type Err = CoreError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (ip, len) = match s.split_once('/') {
            Some((ip, len)) => (
                ip,
                len.parse::<u8>()
                    .map_err(|_| CoreError::ParseAddr(s.to_string()))?,
            ),
            None => (s, 32),
        };
        let addr: std::net::Ipv4Addr = ip
            .parse()
            .map_err(|_| CoreError::ParseAddr(s.to_string()))?;
        Cidr::new(u32::from(addr), len)
    }
}

/// Transport protocol selector in a policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// TCP only.
    Tcp,
    /// UDP only.
    Udp,
    /// Either (compiles to two rules).
    Any,
}

impl Protocol {
    /// The IP protocol numbers this selector expands to.
    pub fn numbers(&self) -> &'static [u8] {
        match self {
            Protocol::Tcp => &[IPPROTO_TCP],
            Protocol::Udp => &[IPPROTO_UDP],
            Protocol::Any => &[IPPROTO_TCP, IPPROTO_UDP],
        }
    }
}

/// An inclusive L4 port range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PortRange {
    /// Lowest port included.
    pub min: u16,
    /// Highest port included.
    pub max: u16,
}

impl PortRange {
    /// A single port.
    pub const fn single(p: u16) -> Self {
        PortRange { min: p, max: p }
    }

    /// All ports.
    pub const ALL: PortRange = PortRange { min: 0, max: 65535 };

    /// Creates a range, validating order.
    pub fn new(min: u16, max: u16) -> pi_core::Result<Self> {
        if min > max {
            return Err(CoreError::Malformed("port range min > max"));
        }
        Ok(PortRange { min, max })
    }

    /// True if this is the unconstrained range.
    pub fn is_all(&self) -> bool {
        self.min == 0 && self.max == 65535
    }

    /// True if `p` falls in the range.
    pub fn contains(&self, p: u16) -> bool {
        (self.min..=self.max).contains(&p)
    }
}

/// Decomposes an inclusive port range into the minimal set of
/// `(value, prefix_len)` pairs covering it — the classic trick for
/// expressing ranges in a prefix-match classifier. A single port yields
/// one /16 (exact) prefix; `0–65535` yields the empty-constraint marker
/// (an empty vector).
pub fn port_range_to_prefixes(range: PortRange) -> Vec<(u16, u8)> {
    if range.is_all() {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut lo = range.min as u32;
    let hi = range.max as u32;
    while lo <= hi {
        // Largest power-of-two block starting at `lo` that fits.
        let max_align = if lo == 0 {
            16
        } else {
            lo.trailing_zeros().min(16)
        };
        let mut size_log = max_align;
        while size_log > 0 && lo + (1 << size_log) - 1 > hi {
            size_log -= 1;
        }
        out.push((lo as u16, (16 - size_log) as u8));
        lo += 1 << size_log;
        if lo == 0 {
            break; // wrapped past 65535
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cidr_parse_display_round_trip() {
        let c: Cidr = "10.0.0.0/8".parse().unwrap();
        assert_eq!(c.addr, 0x0a00_0000);
        assert_eq!(c.len, 8);
        assert_eq!(c.to_string(), "10.0.0.0/8");
        let host: Cidr = "192.168.1.5".parse().unwrap();
        assert_eq!(host.len, 32);
    }

    #[test]
    fn cidr_canonicalises_host_bits() {
        let c: Cidr = "10.1.2.3/8".parse().unwrap();
        assert_eq!(c.addr, 0x0a00_0000);
        assert_eq!(c, "10.0.0.0/8".parse().unwrap());
    }

    #[test]
    fn cidr_contains() {
        let c: Cidr = "10.0.0.0/8".parse().unwrap();
        assert!(c.contains(0x0a01_0203));
        assert!(!c.contains(0x0b00_0000));
        assert!(Cidr::ANY.contains(0xffff_ffff));
        assert!(Cidr::host([1, 2, 3, 4]).contains(0x0102_0304));
        assert!(!Cidr::host([1, 2, 3, 4]).contains(0x0102_0305));
    }

    #[test]
    fn cidr_rejects_garbage() {
        assert!("10.0.0.0/33".parse::<Cidr>().is_err());
        assert!("10.0.0/8".parse::<Cidr>().is_err());
        assert!("banana".parse::<Cidr>().is_err());
    }

    #[test]
    fn protocol_numbers() {
        assert_eq!(Protocol::Tcp.numbers(), &[6]);
        assert_eq!(Protocol::Udp.numbers(), &[17]);
        assert_eq!(Protocol::Any.numbers(), &[6, 17]);
    }

    #[test]
    fn port_range_validation() {
        assert!(PortRange::new(10, 5).is_err());
        assert!(PortRange::new(5, 10).is_ok());
        assert!(PortRange::ALL.is_all());
        assert!(PortRange::single(80).contains(80));
        assert!(!PortRange::single(80).contains(81));
    }

    #[test]
    fn single_port_is_one_exact_prefix() {
        assert_eq!(
            port_range_to_prefixes(PortRange::single(80)),
            vec![(80, 16)]
        );
    }

    #[test]
    fn all_ports_is_no_constraint() {
        assert!(port_range_to_prefixes(PortRange::ALL).is_empty());
    }

    #[test]
    fn aligned_range_is_one_prefix() {
        // 8080–8095 = 16 ports aligned at 8080 (divisible by 16).
        assert_eq!(
            port_range_to_prefixes(PortRange::new(8080, 8095).unwrap()),
            vec![(8080, 12)]
        );
        // 0–1023: the privileged range = one /6.
        assert_eq!(
            port_range_to_prefixes(PortRange::new(0, 1023).unwrap()),
            vec![(0, 6)]
        );
    }

    #[test]
    fn unaligned_range_decomposes_minimally() {
        // 1000–1999: classic multi-prefix decomposition.
        let prefixes = port_range_to_prefixes(PortRange::new(1000, 1999).unwrap());
        // Coverage must be exact.
        for p in 0..=65535u16 {
            let inside = (1000..=1999).contains(&p);
            let covered = prefixes.iter().any(|(v, len)| {
                let shift = 16 - len;
                (p >> shift) == (v >> shift)
            });
            assert_eq!(inside, covered, "port {p}");
        }
        // And minimal-ish: the textbook answer is ≤ 2·16 prefixes.
        assert!(prefixes.len() <= 32);
    }

    #[test]
    fn range_to_top_port() {
        let prefixes = port_range_to_prefixes(PortRange::new(65530, 65535).unwrap());
        for p in 65000..=65535u16 {
            let inside = p >= 65530;
            let covered = prefixes.iter().any(|(v, len)| {
                let shift = 16 - len;
                (p >> shift) == (v >> shift)
            });
            assert_eq!(inside, covered, "port {p}");
        }
    }

    #[test]
    fn full_range_via_new_is_all() {
        let r = PortRange::new(0, 65535).unwrap();
        assert!(r.is_all());
        assert!(port_range_to_prefixes(r).is_empty());
    }
}
