//! # pi-cms — the cloud management system model
//!
//! The attack's entry point is not the switch but the **CMS**: a tenant
//! uses the official, sanctioned policy API — Kubernetes NetworkPolicy,
//! OpenStack security groups, or Calico policies — to install ACLs on
//! its own pods, and the CMS compiles them into whitelist + default-deny
//! flow tables at the hypervisor switch's virtual ports (paper §2 and
//! Fig. 1).
//!
//! This crate models exactly that surface:
//!
//! * [`Cloud`] — tenants, nodes, pods, virtual ports, address allocation.
//! * Policy dialects ([`NetworkPolicy`], [`SecurityGroup`],
//!   [`CalicoPolicy`]) — structurally encoding what each CMS lets a
//!   tenant express. The decisive difference for the attack: Kubernetes
//!   and OpenStack can match the IP source and the L4 **destination**
//!   port (⇒ up to 32·16 = 512 megaflow masks), while Calico also
//!   exposes the L4 **source** port (⇒ 32·16·16 = 8192, the full-blown
//!   DoS of Fig. 3).
//! * [`PolicyCompiler`] — dialect → [`pi_classifier::FlowTable`],
//!   including textbook range-to-prefix decomposition for port ranges.
//! * [`ControlPlane`] / [`ControlPlaneProgram`] — timed, deterministic
//!   policy-update schedules (install/remove/attach with propagation
//!   delay), the driver behind mid-run policy churn and the
//!   policy-flap attack.

pub mod cloud;
pub mod compile;
pub mod control;
pub mod net;
pub mod policy;

pub use cloud::{Cloud, CmsError, NodeId, PlacementStrategy, Pod, PodId, TenantId};
pub use compile::{PolicyCompiler, COMPILED_PRIORITY_ALLOW};
pub use control::{ControlPlane, ControlPlaneProgram, PolicyUpdate, ScheduledUpdate};
pub use net::{port_range_to_prefixes, Cidr, PortRange, Protocol};
pub use policy::{
    CalicoPolicy, CalicoRule, IngressRule, NetworkPolicy, PolicyDialect, SecurityGroup, SgRule,
};
