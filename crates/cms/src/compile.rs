//! Policy → flow table compilation.
//!
//! Every dialect compiles to the same shape (paper §1: "even the
//! simplest Whitelist + Default-Deny type of ACLs"): one `Allow` rule per
//! (source-prefix × protocol × port-prefix …) combination at priority 1,
//! and a catch-all `Deny` at priority 0 added last. All rules match
//! `eth_type == IPv4`; protocol-specific rules also pin `ip_proto`.

use pi_classifier::{Action, FlowTable};
use pi_core::key::ETHERTYPE_IPV4;
use pi_core::{Field, FlowKey, FlowMask, MaskedKey};

use crate::net::{port_range_to_prefixes, Cidr, PortRange};
use crate::policy::{CalicoPolicy, NetworkPolicy, SecurityGroup};

/// Priority assigned to compiled whitelist entries (deny is 0).
pub const COMPILED_PRIORITY_ALLOW: u32 = 1;

/// Stateless policy compiler.
#[derive(Debug, Clone, Copy, Default)]
pub struct PolicyCompiler;

/// A compiled (protocol, destination port prefix) pair.
type PortTerm = (Option<u8>, Option<(u16, u8)>);

/// One whitelist conjunct before table insertion.
#[derive(Debug, Clone, Copy)]
struct AllowTerm {
    src: Option<Cidr>,
    proto: Option<u8>,
    dst_port: Option<(u16, u8)>,
    src_port: Option<(u16, u8)>,
}

impl AllowTerm {
    fn to_masked_key(self) -> MaskedKey {
        let mut key = FlowKey {
            eth_type: ETHERTYPE_IPV4,
            ..Default::default()
        };
        let mut mask = FlowMask::default().with_exact(Field::EthType);
        if let Some(cidr) = self.src {
            key.ip_src = cidr.addr;
            mask = mask.with_prefix(Field::IpSrc, cidr.len);
        }
        if let Some(p) = self.proto {
            key.ip_proto = p;
            mask = mask.with_exact(Field::IpProto);
        }
        if let Some((v, len)) = self.dst_port {
            key.tp_dst = v;
            mask = mask.with_prefix(Field::TpDst, len);
        }
        if let Some((v, len)) = self.src_port {
            key.tp_src = v;
            mask = mask.with_prefix(Field::TpSrc, len);
        }
        MaskedKey::new(key, mask)
    }
}

fn build_table(terms: Vec<AllowTerm>) -> FlowTable {
    let mut table = FlowTable::new();
    for t in terms {
        table.insert(t.to_masked_key(), COMPILED_PRIORITY_ALLOW, Action::Allow);
    }
    // Default deny, added last (paper §2: first-added wins among equals,
    // and at priority 0 it loses to every whitelist rule anyway).
    table.insert(MaskedKey::wildcard(), 0, Action::Deny);
    table
}

/// Port-range expansion: `None`/all → single unconstrained term.
fn expand_ports(range: Option<PortRange>) -> Vec<Option<(u16, u8)>> {
    match range {
        None => vec![None],
        Some(r) if r.is_all() => vec![None],
        Some(r) => port_range_to_prefixes(r).into_iter().map(Some).collect(),
    }
}

impl PolicyCompiler {
    /// Compiles a Kubernetes NetworkPolicy.
    pub fn compile_k8s(&self, policy: &NetworkPolicy) -> FlowTable {
        let mut terms = Vec::new();
        for rule in &policy.ingress {
            let sources: Vec<Option<Cidr>> = if rule.from.is_empty() {
                vec![None]
            } else {
                rule.from.iter().copied().map(Some).collect()
            };
            let port_terms: Vec<PortTerm> = if rule.ports.is_empty() {
                vec![(None, None)]
            } else {
                rule.ports
                    .iter()
                    .flat_map(|(proto, port)| {
                        proto
                            .numbers()
                            .iter()
                            .map(move |&n| (Some(n), port.map(|p| (p, 16))))
                    })
                    .collect()
            };
            for src in &sources {
                for (proto, dst_port) in &port_terms {
                    terms.push(AllowTerm {
                        src: *src,
                        proto: *proto,
                        dst_port: *dst_port,
                        src_port: None,
                    });
                }
            }
        }
        build_table(terms)
    }

    /// Compiles an OpenStack security group.
    pub fn compile_security_group(&self, sg: &SecurityGroup) -> FlowTable {
        let mut terms = Vec::new();
        for rule in &sg.rules {
            for &proto in rule.protocol.numbers() {
                for dst_port in expand_ports(rule.dst_ports) {
                    terms.push(AllowTerm {
                        src: Some(rule.remote),
                        proto: Some(proto),
                        dst_port,
                        src_port: None,
                    });
                }
            }
        }
        build_table(terms)
    }

    /// Compiles a Calico policy (the source-port-capable dialect).
    pub fn compile_calico(&self, policy: &CalicoPolicy) -> FlowTable {
        let mut terms = Vec::new();
        for rule in &policy.rules {
            let sources: Vec<Option<Cidr>> = if rule.src_nets.is_empty() {
                vec![None]
            } else {
                rule.src_nets.iter().copied().map(Some).collect()
            };
            let dst_ports: Vec<Option<(u16, u8)>> = if rule.dst_ports.is_empty() {
                vec![None]
            } else {
                rule.dst_ports
                    .iter()
                    .flat_map(|r| expand_ports(Some(*r)))
                    .collect()
            };
            let src_ports: Vec<Option<(u16, u8)>> = if rule.src_ports.is_empty() {
                vec![None]
            } else {
                rule.src_ports
                    .iter()
                    .flat_map(|r| expand_ports(Some(*r)))
                    .collect()
            };
            for &proto in rule.protocol.numbers() {
                for src in &sources {
                    for dst_port in &dst_ports {
                        for src_port in &src_ports {
                            terms.push(AllowTerm {
                                src: *src,
                                proto: Some(proto),
                                dst_port: *dst_port,
                                src_port: *src_port,
                            });
                        }
                    }
                }
            }
        }
        build_table(terms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::Protocol;
    use crate::policy::{CalicoRule, IngressRule, SgRule};
    use pi_classifier::LinearClassifier;

    fn classify(table: &FlowTable, key: &FlowKey) -> Action {
        LinearClassifier::new(table)
            .classify(key)
            .map(|r| r.action)
            .unwrap_or(Action::Deny)
    }

    fn tcp(ip: [u8; 4], sport: u16, dport: u16) -> FlowKey {
        FlowKey::tcp(ip, [10, 0, 0, 99], sport, dport)
    }

    #[test]
    fn k8s_paper_example_compiles_to_two_rules() {
        let policy = NetworkPolicy::allow_from_cidr("fig2", "10.0.0.0/8".parse().unwrap());
        let table = PolicyCompiler.compile_k8s(&policy);
        assert_eq!(table.len(), 2);
        assert_eq!(classify(&table, &tcp([10, 1, 2, 3], 5, 80)), Action::Allow);
        assert_eq!(classify(&table, &tcp([11, 1, 2, 3], 5, 80)), Action::Deny);
    }

    #[test]
    fn k8s_with_dst_port() {
        let policy = NetworkPolicy {
            name: "web".into(),
            ingress: vec![IngressRule {
                from: vec!["10.0.0.0/8".parse().unwrap()],
                ports: vec![(Protocol::Tcp, Some(80))],
            }],
        };
        let table = PolicyCompiler.compile_k8s(&policy);
        assert_eq!(classify(&table, &tcp([10, 0, 0, 1], 5, 80)), Action::Allow);
        assert_eq!(classify(&table, &tcp([10, 0, 0, 1], 5, 81)), Action::Deny);
        // UDP to 80 is denied (protocol pinned).
        let udp = FlowKey::udp([10, 0, 0, 1], [10, 0, 0, 99], 5, 80);
        assert_eq!(classify(&table, &udp), Action::Deny);
    }

    #[test]
    fn k8s_any_protocol_expands_to_tcp_and_udp() {
        let policy = NetworkPolicy {
            name: "dns".into(),
            ingress: vec![IngressRule {
                from: vec![],
                ports: vec![(Protocol::Any, Some(53))],
            }],
        };
        let table = PolicyCompiler.compile_k8s(&policy);
        // 2 allows (tcp, udp) + deny.
        assert_eq!(table.len(), 3);
        assert_eq!(classify(&table, &tcp([1, 1, 1, 1], 5, 53)), Action::Allow);
        let udp = FlowKey::udp([1, 1, 1, 1], [2, 2, 2, 2], 5, 53);
        assert_eq!(classify(&table, &udp), Action::Allow);
    }

    #[test]
    fn k8s_empty_ingress_denies_everything() {
        let policy = NetworkPolicy {
            name: "isolate".into(),
            ingress: vec![],
        };
        let table = PolicyCompiler.compile_k8s(&policy);
        assert_eq!(table.len(), 1); // just the deny
        assert_eq!(classify(&table, &tcp([10, 0, 0, 1], 5, 80)), Action::Deny);
    }

    #[test]
    fn security_group_with_port_range() {
        let sg = SecurityGroup {
            name: "app".into(),
            rules: vec![SgRule {
                remote: "192.168.0.0/16".parse().unwrap(),
                protocol: Protocol::Tcp,
                dst_ports: Some(PortRange::new(8080, 8083).unwrap()),
            }],
        };
        let table = PolicyCompiler.compile_security_group(&sg);
        // 8080–8083 is one aligned /14 prefix + deny.
        assert_eq!(table.len(), 2);
        for port in 8080..=8083 {
            assert_eq!(
                classify(&table, &tcp([192, 168, 1, 1], 5, port)),
                Action::Allow
            );
        }
        assert_eq!(
            classify(&table, &tcp([192, 168, 1, 1], 5, 8084)),
            Action::Deny
        );
        assert_eq!(classify(&table, &tcp([10, 0, 0, 1], 5, 8080)), Action::Deny);
    }

    #[test]
    fn calico_with_source_ports() {
        let policy = CalicoPolicy {
            name: "attack-shape".into(),
            rules: vec![CalicoRule {
                protocol: Protocol::Tcp,
                src_nets: vec![Cidr::host([10, 0, 0, 1])],
                src_ports: vec![PortRange::single(4444)],
                dst_ports: vec![PortRange::single(80)],
            }],
        };
        let table = PolicyCompiler.compile_calico(&policy);
        assert_eq!(table.len(), 2);
        assert_eq!(
            classify(&table, &tcp([10, 0, 0, 1], 4444, 80)),
            Action::Allow
        );
        assert_eq!(
            classify(&table, &tcp([10, 0, 0, 1], 4445, 80)),
            Action::Deny,
            "source port must be enforced"
        );
        // The compiled table's active fields include TpSrc — the
        // attack-surface difference, observable structurally.
        assert!(table.active_fields().contains(&pi_core::Field::TpSrc));
    }

    #[test]
    fn k8s_and_sg_tables_never_touch_source_ports() {
        let k8s = PolicyCompiler.compile_k8s(&NetworkPolicy {
            name: "x".into(),
            ingress: vec![IngressRule {
                from: vec!["10.0.0.0/8".parse().unwrap()],
                ports: vec![(Protocol::Tcp, Some(80))],
            }],
        });
        assert!(!k8s.active_fields().contains(&pi_core::Field::TpSrc));
        let sg = PolicyCompiler.compile_security_group(&SecurityGroup {
            name: "y".into(),
            rules: vec![SgRule {
                remote: Cidr::ANY,
                protocol: Protocol::Any,
                dst_ports: Some(PortRange::single(443)),
            }],
        });
        assert!(!sg.active_fields().contains(&pi_core::Field::TpSrc));
    }

    #[test]
    fn deny_rule_is_always_last_and_lowest() {
        let table = PolicyCompiler.compile_k8s(&NetworkPolicy::allow_from_cidr(
            "p",
            "10.0.0.0/8".parse().unwrap(),
        ));
        let rules: Vec<_> = table.iter().collect();
        let last = rules.last().unwrap();
        assert_eq!(last.action, Action::Deny);
        assert_eq!(last.priority, 0);
        assert!(last.matcher.mask().is_wildcard_all());
    }
}
