//! Event-driven vs tick-stepped equivalence on the scripted scenarios.
//!
//! The event-driven core skips ticks it can prove are no-ops; these
//! tests are the proof's audit. Each paper scenario — fig. 3, upcall
//! saturation, the policy-flap train, crash/recovery — is built twice
//! from identical parameters, run once on each engine, and the full
//! reports are pinned equal: totals, verdict-bearing counters, fault
//! and defense timelines, and every sampled series point.

use pi_core::SimTime;
use pi_fault::{ChannelFaultConfig, ReliabilityConfig};
use pi_sim::{
    crash_recovery_scenario, fig3_scenario, policy_churn_scenario, upcall_saturation_scenario,
    CrashRecoveryAttack, CrashRecoveryParams, Fig3Params, PolicyChurnParams, SimReport,
    UpcallSaturationParams,
};

/// Pins two reports bit-identical, series point for series point.
fn assert_reports_equal(a: &SimReport, b: &SimReport, label: &str) {
    assert_eq!(a.source_totals, b.source_totals, "{label}: source_totals");
    assert_eq!(a.switch_stats, b.switch_stats, "{label}: switch_stats");
    assert_eq!(a.upcall_stats, b.upcall_stats, "{label}: upcall_stats");
    assert_eq!(a.faults, b.faults, "{label}: faults");
    assert_eq!(a.defense, b.defense, "{label}: defense");
    assert_eq!(a.attribution, b.attribution, "{label}: attribution");
    let series = [
        (&a.throughput_bps, &b.throughput_bps, "throughput_bps"),
        (&a.offered_bps, &b.offered_bps, "offered_bps"),
        (&a.masks, &b.masks, "masks"),
        (&a.megaflows, &b.megaflows, "megaflows"),
        (&a.cpu_util, &b.cpu_util, "cpu_util"),
        (&a.handler_cps, &b.handler_cps, "handler_cps"),
    ];
    for (sa, sb, name) in series {
        assert_eq!(sa.len(), sb.len(), "{label}: {name} arity");
        for (ta, tb) in sa.iter().zip(sb.iter()) {
            assert_eq!(
                ta.iter().collect::<Vec<_>>(),
                tb.iter().collect::<Vec<_>>(),
                "{label}: {name} points"
            );
        }
    }
}

/// Runs one scenario builder on both engines and pins the reports.
fn check<F: Fn() -> pi_sim::Simulation>(build: F, label: &str) {
    let event = build().run();
    let mut stepped_sim = build();
    stepped_sim.set_event_driven(false);
    let stepped = stepped_sim.run();
    assert_reports_equal(&event, &stepped, label);
}

#[test]
fn fig3_matches_the_stepped_reference() {
    let params = Fig3Params {
        duration: SimTime::from_secs(4),
        ..Default::default()
    };
    check(|| fig3_scenario(&params).0, "fig3");
}

#[test]
fn upcall_saturation_matches_the_stepped_reference() {
    let params = UpcallSaturationParams {
        duration: SimTime::from_secs(4),
        ..Default::default()
    };
    check(
        || upcall_saturation_scenario(&params).0,
        "upcall_saturation",
    );
}

#[test]
fn policy_flap_matches_the_stepped_reference() {
    let params = PolicyChurnParams {
        duration: SimTime::from_secs(5),
        ..Default::default()
    };
    check(|| policy_churn_scenario(&params).0, "policy_flap");
}

#[test]
fn crash_recovery_matches_the_stepped_reference() {
    // The hardest case for skip-safety: a crash/restart window, a flap
    // train riding it, and an at-least-once control plane retrying
    // through a lossy, reordering channel.
    let params = CrashRecoveryParams {
        duration: SimTime::from_secs(6),
        crash_at: SimTime::from_secs(2),
        attack: CrashRecoveryAttack::PolicyFlap,
        reliable: Some(ReliabilityConfig::default()),
        channel: Some(ChannelFaultConfig {
            drop_p: 0.2,
            dup_p: 0.1,
            delay: SimTime::from_millis(2),
            jitter: SimTime::from_millis(5),
            seed: 0xE0_17AB,
        }),
        ..Default::default()
    };
    check(|| crash_recovery_scenario(&params).0, "crash_recovery");
}

#[test]
fn crash_recovery_upcall_flood_matches_the_stepped_reference() {
    // Bounded slow path + blackout: exercises the handler-debt and
    // restart-cost carries that keep a "quiet-looking" node busy.
    let params = CrashRecoveryParams {
        duration: SimTime::from_secs(6),
        crash_at: SimTime::from_secs(2),
        attack: CrashRecoveryAttack::UpcallFlood,
        ..Default::default()
    };
    check(
        || crash_recovery_scenario(&params).0,
        "crash_recovery_upcall_flood",
    );
}
