//! Simulation parameters.

use pi_core::SimTime;
use pi_trace::TraceConfig;

/// Global knobs of a simulation run.
///
/// The defaults model the paper's demo environment: a software switch
/// driven by one effective datapath core, a 1 Gb/s fabric, millisecond
/// scheduling granularity, per-second reporting (Fig. 3's sampling).
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Scheduling quantum. Packets generated within a tick are processed
    /// within that tick's budget.
    pub tick: SimTime,
    /// Total simulated time.
    pub duration: SimTime,
    /// Datapath CPU budget per node, cycles/second. Default models a
    /// single ~1.2 GHz-effective softirq core — the resource the attack
    /// exhausts.
    pub cpu_cycles_per_sec: u64,
    /// Ingress queue capacity per node, packets (NIC ring + backlog).
    pub queue_capacity: usize,
    /// Fabric link rate between nodes, bits/second.
    pub link_bps: f64,
    /// Reporting interval for the time series.
    pub sample_interval: SimTime,
    /// Cadence of the per-node defense control loop (telemetry sample +
    /// detector + state machine), for nodes with an attached
    /// [`pi_detect::DefenseController`]. Faster than `sample_interval`
    /// by default: detection latency is a measured quantity.
    pub defense_interval: SimTime,
    /// Use the event-driven core: ticks on which a node provably has no
    /// work (empty queues, no scheduled control/fault/maintenance
    /// events, no active source) are skipped instead of stepped. The
    /// skipped ticks are exact no-ops, so results are bit-identical to
    /// the tick-stepped reference (`false`), which remains available
    /// for equivalence testing.
    pub event_driven: bool,
    /// Structured tracing (`pi_trace`). Disabled by default — and a
    /// disabled tracer is a guaranteed no-op on the hot path; enabled
    /// traces are bit-identical across engines and worker counts.
    pub trace: TraceConfig,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            tick: SimTime::from_millis(1),
            duration: SimTime::from_secs(150),
            cpu_cycles_per_sec: 1_200_000_000,
            queue_capacity: 8_192,
            link_bps: 1e9,
            sample_interval: SimTime::from_secs(1),
            defense_interval: SimTime::from_millis(100),
            event_driven: true,
            trace: TraceConfig::default(),
        }
    }
}

impl SimConfig {
    /// Cycles available per tick.
    pub fn cycles_per_tick(&self) -> u64 {
        (self.cpu_cycles_per_sec as f64 * self.tick.as_secs_f64()).round() as u64
    }

    /// Link bytes available per tick.
    pub fn link_bytes_per_tick(&self) -> f64 {
        self.link_bps / 8.0 * self.tick.as_secs_f64()
    }

    /// Number of whole ticks in the run.
    pub fn tick_count(&self) -> u64 {
        self.duration.as_nanos() / self.tick.as_nanos()
    }

    /// Ticks between defense control-loop iterations (at least one).
    pub fn defense_every_ticks(&self) -> u64 {
        (self.defense_interval.as_nanos() / self.tick.as_nanos()).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_quantities() {
        let c = SimConfig::default();
        assert_eq!(c.cycles_per_tick(), 1_200_000);
        assert_eq!(c.link_bytes_per_tick(), 125_000.0);
        assert_eq!(c.tick_count(), 150_000);
        assert_eq!(c.defense_every_ticks(), 100);
    }

    #[test]
    fn short_run_tick_count() {
        let c = SimConfig {
            duration: SimTime::from_millis(10),
            ..Default::default()
        };
        assert_eq!(c.tick_count(), 10);
    }
}
