//! Reusable per-node stepping: one host's switch, ingress queue and
//! cycle accounting.
//!
//! Both the two-node [`engine`](crate::engine) and the sharded
//! `pi_fleet` cluster simulator drive hosts the same way — generation
//! fills a bounded ingress queue, the switch drains it under a per-tick
//! CPU cycle budget, and every processed packet is routed local /
//! uplink / denied. [`NodeCell`] owns exactly that slice of state so the
//! two engines cannot drift apart on the core modelling rule
//! ("throughput is never scripted").

use std::collections::{BTreeMap, VecDeque};

use pi_backend::{build_backend, DataplaneBackend, BATCH_SIZE};
use pi_cms::{ControlPlane, PolicyUpdate};
use pi_core::{FlowKey, Port, SimTime};
use pi_datapath::{CostModel, DpConfig, PathTaken};
use pi_detect::{DefenseAction, DefenseController, DefenseReport};
use pi_fault::{ControlChannelStats, FaultPlan, NodeFaultReport, ReliableControlPlane};
use pi_trace::{TraceEventKind, Tracer};

/// A packet sitting in a node's ingress queue, tagged with an opaque
/// source handle `T` (the engine uses its source index; the fleet uses a
/// `(shard, source)` pair) so delivery outcomes can be fed back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodePacket<T> {
    /// Parsed header tuple.
    pub key: FlowKey,
    /// Frame size in bytes.
    pub bytes: usize,
    /// Originating source handle.
    pub source: T,
}

/// Where the switch sent a processed packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Routing {
    /// Delivered to a pod attached locally at this vport.
    Local(u32),
    /// Routed to the fabric uplink: the destination is another host's.
    Uplink,
    /// Denied by policy (or the destination is unknown to the switch).
    Denied,
    /// Tail-dropped at the switch's bounded upcall queue
    /// ([`pi_datapath::PipelineMode::Bounded`]) — a *capacity* loss of
    /// the slow-path pipeline, distinct from both the node
    /// ingress-queue drop (enqueue refusal) and policy denial.
    UpcallDropped,
}

/// One host: a dataplane backend (the OVS-like switch by default —
/// [`pi_backend::BackendKind`] in the node's `DpConfig` selects the
/// architecture) plus its ingress queue and the per-tick cycle
/// accounting the attack exhausts.
#[derive(Debug)]
pub struct NodeCell<T> {
    backend: Box<dyn DataplaneBackend>,
    queue: VecDeque<NodePacket<T>>,
    /// Negative carry when a packet overran the tick budget.
    cycle_carry: i64,
    /// Cycles spent during the current sample window.
    window_cycles: u64,
    /// Handler cycles spent during the current sample window (the
    /// bounded upcall pipeline's separate CPU — not charged against the
    /// datapath budget, like OVS handler threads vs the PMD core).
    window_handler_cycles: u64,
    /// Frame size + source handle of packets deferred into the switch's
    /// upcall pipeline, keyed by the pending token.
    deferred: BTreeMap<u64, (usize, T)>,
    /// Optional closed-loop defense controller, run by the engines at
    /// their configured defense cadence. Living on the node (not the
    /// engine) means both the two-node engine and the fleet shards get
    /// the identical control loop.
    defense: Option<DefenseController>,
    /// Optional timed control plane: scheduled policy updates applied
    /// at the start of each tick (the epoch grid), with their flush
    /// cost charged against the tick's cycle budget. Node-local state,
    /// so both engines — and any fleet worker count — see the same
    /// updates at the same ticks.
    control: Option<ControlPlane>,
    /// Optional compiled fault program: crash/restart events and host
    /// stalls injected at tick boundaries. Shard-local like everything
    /// else, so fault injection cannot disturb the bit-identical
    /// worker-count invariant.
    faults: Option<FaultPlan>,
    /// Optional at-least-once control-plane layer (acks + retry +
    /// reconciliation) — the hardened alternative to the fire-and-forget
    /// `control` driver above.
    reliable: Option<ReliableControlPlane>,
    /// While `Some(t)` and `now < t`, the switch process is down:
    /// nothing is processed, the ingress queue fills, and fire-and-forget
    /// control-plane updates are consumed and lost.
    down_until: Option<SimTime>,
    // Fault bookkeeping (reported via `fault_report`, kept out of
    // `SwitchStats` so the switch-counter contract is untouched).
    crashes: u64,
    stall_ticks: u64,
    restart_cycles: u64,
    acls_lost: u64,
    flows_lost: u64,
    upcalls_lost: u64,
    deferred_dropped: u64,
    /// Control-plane cycles spent during the current sample window (a
    /// subset of `window_cycles` — the flush-storm share the engines
    /// sample into the `control_cps` series).
    window_control_cycles: u64,
    /// Trace handle (disabled by default — a guaranteed no-op). Shared
    /// with the backend, defense controller and reliable layer so one
    /// host's components record into one ring.
    tracer: Tracer,
    /// Last control-channel counters traced (diffed per executed tick).
    chan_snapshot: ControlChannelStats,
    /// Last megaflow/mask occupancy traced (churn events are emitted
    /// only on change).
    churn_snapshot: (usize, usize),
}

impl<T> NodeCell<T> {
    /// Builds a node around a freshly configured backend
    /// (`dp.backend` selects the architecture; the OVS pipeline is the
    /// default).
    pub fn new(dp: DpConfig, cost: CostModel) -> Self {
        NodeCell {
            backend: build_backend(dp, cost),
            queue: VecDeque::new(),
            cycle_carry: 0,
            window_cycles: 0,
            window_handler_cycles: 0,
            deferred: BTreeMap::new(),
            defense: None,
            control: None,
            faults: None,
            reliable: None,
            down_until: None,
            crashes: 0,
            stall_ticks: 0,
            restart_cycles: 0,
            acls_lost: 0,
            flows_lost: 0,
            upcalls_lost: 0,
            deferred_dropped: 0,
            window_control_cycles: 0,
            tracer: Tracer::disabled(),
            chan_snapshot: ControlChannelStats::default(),
            churn_snapshot: (0, 0),
        }
    }

    /// Attaches a trace handle and fans it out to every component that
    /// records events (backend, defense controller, reliable layer), so
    /// the whole host shares one ring. Call before or after the
    /// `attach_*` methods — both orders wire everything.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.backend.set_tracer(tracer.clone());
        if let Some(d) = &mut self.defense {
            d.set_tracer(tracer.clone());
        }
        if let Some(r) = &mut self.reliable {
            r.set_tracer(tracer.clone());
        }
        self.tracer = tracer;
    }

    /// The node's trace handle — disabled unless [`NodeCell::set_tracer`]
    /// attached an enabled one. The engines collect these at the end of
    /// a run to assemble the canonical merged [`pi_trace::TraceReport`].
    pub fn tracer(&self) -> Tracer {
        self.tracer.clone()
    }

    /// Attaches a compiled fault program: its crash and stall events
    /// fire at tick boundaries during [`NodeCell::step`].
    pub fn attach_faults(&mut self, plan: FaultPlan) {
        self.faults = Some(plan);
    }

    /// Attaches the at-least-once control-plane layer. Its deliveries
    /// land during [`NodeCell::step`] and are charged against the tick
    /// budget exactly like the fire-and-forget driver's.
    pub fn attach_reliable_control_plane(&mut self, mut rcp: ReliableControlPlane) {
        rcp.set_tracer(self.tracer.clone());
        self.reliable = Some(rcp);
    }

    /// The attached reliable control plane, if any.
    pub fn reliable_control_plane(&self) -> Option<&ReliableControlPlane> {
        self.reliable.as_ref()
    }

    /// Whether the switch process is down at `now`.
    pub fn is_down(&self, now: SimTime) -> bool {
        self.down_until.is_some_and(|t| now < t)
    }

    /// The node's fault/recovery counters, present when a fault program
    /// or a reliable control plane is attached. `tick` converts the
    /// reliable layer's recovery time into ticks.
    pub fn fault_report(&self, tick: SimTime) -> Option<NodeFaultReport> {
        if self.faults.is_none() && self.reliable.is_none() {
            return None;
        }
        let (channel, recovery_ticks) = match &self.reliable {
            Some(r) => (
                r.stats(),
                r.recovery_time().as_nanos() / tick.as_nanos().max(1),
            ),
            None => (ControlChannelStats::default(), 0),
        };
        Some(NodeFaultReport {
            crashes: self.crashes,
            stall_ticks: self.stall_ticks,
            restart_cycles: self.restart_cycles,
            acls_lost: self.acls_lost,
            flows_lost: self.flows_lost,
            upcalls_lost: self.upcalls_lost,
            deferred_dropped: self.deferred_dropped,
            recovery_ticks,
            channel,
        })
    }

    /// Attaches a compiled control-plane driver: its updates land at
    /// tick boundaries during [`NodeCell::step`].
    pub fn attach_control_plane(&mut self, driver: ControlPlane) {
        self.control = Some(driver);
    }

    /// Whether a control plane is attached.
    pub fn has_control_plane(&self) -> bool {
        self.control.is_some()
    }

    /// Control-plane updates still waiting for their apply time.
    pub fn control_plane_pending(&self) -> usize {
        self.control.as_ref().map_or(0, |c| c.pending())
    }

    /// The node's dataplane backend.
    pub fn backend(&self) -> &dyn DataplaneBackend {
        &*self.backend
    }

    /// Mutable access to the backend (pod attachment, ACL installs).
    pub fn backend_mut(&mut self) -> &mut dyn DataplaneBackend {
        &mut *self.backend
    }

    /// Current ingress-queue depth, packets.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Enqueues `pkt` unless the queue is at `capacity`. Returns whether
    /// the packet was accepted (false = tail drop).
    pub fn enqueue(&mut self, pkt: NodePacket<T>, capacity: usize) -> bool {
        if self.queue.len() >= capacity {
            false
        } else {
            self.queue.push_back(pkt);
            true
        }
    }

    /// Drains the ingress queue under this tick's cycle budget, then
    /// runs one handler step of the switch's upcall pipeline (a no-op
    /// under [`pi_datapath::PipelineMode::Inline`]), invoking `sink`
    /// with each completed packet and its routing verdict. Carry from an
    /// overrun packet is charged against the next tick.
    ///
    /// Packets are handed to the switch through
    /// [`VSwitch::process_batch`] in runs of up to
    /// [`VSwitch::BATCH_SIZE`], so the per-packet hash work is done in
    /// one pass per run. Budget semantics are unchanged from the
    /// packet-at-a-time loop — a packet is processed iff the budget is
    /// still positive when its turn comes (the batch aborts mid-run the
    /// moment the budget goes non-positive), so results are bit-identical
    /// to the sequential drain.
    ///
    /// Under a bounded pipeline a megaflow miss defers the packet: its
    /// frame size and source handle park here until a handler step
    /// resolves the upcall (same tick or later), at which point the
    /// packet flows to `sink` with its real routing; a miss that
    /// tail-drops at a full upcall queue reaches `sink` immediately as
    /// [`Routing::UpcallDropped`]. The handler step's cycles are the
    /// pipeline's own budget (separate CPU), tracked in
    /// [`NodeCell::take_window_handler_cycles`].
    pub fn step(
        &mut self,
        now: SimTime,
        cycles_per_tick: u64,
        sink: impl FnMut(NodePacket<T>, Routing),
    ) {
        // The untraced path is the hot path: one branch, then straight
        // into the packet loop — no snapshots, no diffs.
        if !self.tracer.is_enabled() {
            self.step_inner(now, cycles_per_tick, sink);
            return;
        }
        self.traced_step(now, cycles_per_tick, sink);
    }

    /// The traced tick: stamp the time, snapshot the counters, run the
    /// real step, then emit window diffs — packet-batch summary, upcall
    /// pipeline activity, megaflow churn, control-channel deliveries,
    /// and crash events — all attributed to the latched rebuild cause.
    /// Only ever called with tracing enabled; the snapshot/diff cost is
    /// never paid on the hot path.
    fn traced_step(
        &mut self,
        now: SimTime,
        cycles_per_tick: u64,
        sink: impl FnMut(NodePacket<T>, Routing),
    ) {
        self.tracer.set_now(now.as_nanos());
        let stats0 = self.backend.stats();
        let up0 = self.backend.upcall_stats();
        let crashes0 = self.crashes;
        let losses0 = (self.acls_lost, self.flows_lost, self.upcalls_lost);
        self.step_inner(now, cycles_per_tick, sink);
        let at = now.as_nanos();
        if self.crashes > crashes0 {
            self.tracer.emit_uncaused(
                at,
                TraceEventKind::Crash {
                    acls_lost: (self.acls_lost - losses0.0) as u32,
                    flows_lost: (self.flows_lost - losses0.1) as u32,
                    upcalls_lost: (self.upcalls_lost - losses0.2) as u32,
                },
            );
        }
        let stats = self.backend.stats();
        if stats.packets > stats0.packets || stats.cycles > stats0.cycles {
            self.tracer.emit(
                at,
                TraceEventKind::BatchWindow {
                    packets: (stats.packets - stats0.packets) as u32,
                    microflow_hits: (stats.microflow_hits - stats0.microflow_hits) as u32,
                    megaflow_hits: (stats.megaflow_hits - stats0.megaflow_hits) as u32,
                    upcalls: (stats.upcalls - stats0.upcalls) as u32,
                    policy_drops: (stats.policy_drops - stats0.policy_drops) as u32,
                    cycles: stats.cycles - stats0.cycles,
                },
            );
        }
        let up = self.backend.upcall_stats();
        if up != up0 {
            self.tracer.emit(
                at,
                TraceEventKind::UpcallWindow {
                    enqueued: (up.enqueued - up0.enqueued) as u32,
                    queue_drops: (up.queue_drops - up0.queue_drops) as u32,
                    handled: (up.handled - up0.handled) as u32,
                    installs: (up.installs_flushed - up0.installs_flushed) as u32,
                },
            );
        }
        let churn = (self.backend.megaflow_count(), self.backend.mask_count());
        if churn != self.churn_snapshot {
            self.churn_snapshot = churn;
            self.tracer.emit(
                at,
                TraceEventKind::MegaflowChurn {
                    megaflows: churn.0 as u32,
                    masks: churn.1 as u32,
                },
            );
        }
        if let Some(r) = &self.reliable {
            let chan = r.stats();
            let prev = self.chan_snapshot;
            if chan != prev {
                self.chan_snapshot = chan;
                self.tracer.emit_uncaused(
                    at,
                    TraceEventKind::ControlChannel {
                        delivered: (chan.delivered - prev.delivered) as u32,
                        dropped: (chan.dropped - prev.dropped) as u32,
                        retries: (chan.retries - prev.retries) as u32,
                        lost_to_downtime: (chan.lost_to_downtime - prev.lost_to_downtime) as u32,
                        applied: (chan.applied - prev.applied) as u32,
                    },
                );
            }
        }
    }

    fn step_inner(
        &mut self,
        now: SimTime,
        cycles_per_tick: u64,
        mut sink: impl FnMut(NodePacket<T>, Routing),
    ) {
        // Fault events fire first: a crash wipes the switch's soft
        // state and starts the blackout window; overlapping stall
        // windows starve the tick's fresh budget.
        let mut crashed = false;
        let mut stalled = false;
        if let Some(plan) = self.faults.as_mut() {
            while let Some(c) = plan.next_crash(now) {
                crashed = true;
                self.crashes += 1;
                let back_up = c.at + c.down_for;
                self.down_until = Some(self.down_until.map_or(back_up, |d| d.max(back_up)));
            }
            stalled = plan.stalled(now);
        }
        if crashed {
            let outcome = self.backend.crash_restart();
            self.acls_lost += outcome.acls_lost as u64;
            self.flows_lost += outcome.flows_lost as u64;
            self.upcalls_lost += outcome.upcalls_lost as u64;
            // The fixed respawn price lands as cycle debt the first
            // post-restart ticks must repay.
            let restart = self.backend.cost_model().restart_fixed;
            self.cycle_carry -= restart as i64;
            self.restart_cycles += restart;
            self.window_cycles += restart;
            // Packets parked awaiting handlers died with the process.
            // Their keys are gone with the upcall queue; the ordered
            // map drains them in token order, deterministically.
            for (_token, (bytes, source)) in std::mem::take(&mut self.deferred) {
                self.deferred_dropped += 1;
                sink(
                    NodePacket {
                        key: FlowKey::default(),
                        bytes,
                        source,
                    },
                    Routing::UpcallDropped,
                );
            }
            if let Some(d) = &mut self.defense {
                d.on_switch_restart(now);
            }
            if let Some(r) = &mut self.reliable {
                r.on_switch_crash(now);
            }
        }
        let down = self.is_down(now);
        if !down {
            self.down_until = None;
        }
        if stalled {
            self.stall_ticks += 1;
        }
        // A stall starves the fresh budget; a blackout window processes
        // nothing at all. Cycle carry (including restart debt) persists
        // either way.
        let fresh = if stalled || down {
            0
        } else {
            cycles_per_tick as i64
        };
        let mut budget = fresh + self.cycle_carry;
        // Control-plane updates land first (start-of-tick grid) and
        // consume the same datapath budget packets run under — an
        // install-triggered flush storm is paid for, not free. While
        // the switch is down, the fire-and-forget driver's updates are
        // consumed and silently lost — the hole the reliable layer
        // below closes.
        if let Some(cp) = &mut self.control {
            let switch = &mut *self.backend;
            let window_cycles = &mut self.window_cycles;
            let window_control_cycles = &mut self.window_control_cycles;
            let tracer = &self.tracer;
            for scheduled in cp.due(now) {
                if down {
                    continue;
                }
                // Each update gets a fresh causality id: the flush (and
                // the rebuild storm after it) is attributed to *this*
                // update. A no-op branch when tracing is disabled.
                tracer.begin_update();
                let outcome = match &scheduled.update {
                    PolicyUpdate::InstallAcl { ip, table } => {
                        switch.apply_install_acl(*ip, table.clone())
                    }
                    PolicyUpdate::RemoveAcl { ip } => switch.apply_remove_acl(*ip),
                    PolicyUpdate::AttachPod { ip, vport } => switch.apply_attach_pod(*ip, *vport),
                };
                tracer.end_update();
                budget -= outcome.cycles as i64;
                *window_cycles += outcome.cycles;
                *window_control_cycles += outcome.cycles;
            }
        }
        // Reliable control-plane deliveries (acked, deduplicated,
        // retried), charged like any other control work. Reconciliation
        // runs at its cadence against the switch's reported state.
        if let Some(rcp) = &mut self.reliable {
            let switch = &mut *self.backend;
            let window_cycles = &mut self.window_cycles;
            let window_control_cycles = &mut self.window_control_cycles;
            let tracer = &self.tracer;
            for update in rcp.poll(now, !down) {
                tracer.begin_update();
                let outcome = match &update {
                    PolicyUpdate::InstallAcl { ip, table } => {
                        switch.apply_install_acl(*ip, table.clone())
                    }
                    PolicyUpdate::RemoveAcl { ip } => switch.apply_remove_acl(*ip),
                    PolicyUpdate::AttachPod { ip, vport } => switch.apply_attach_pod(*ip, *vport),
                };
                tracer.end_update();
                budget -= outcome.cycles as i64;
                *window_cycles += outcome.cycles;
                *window_control_cycles += outcome.cycles;
            }
            if !down && rcp.reconcile_due(now) {
                let installed = switch.installed_acl_ips();
                rcp.reconcile(now, &installed);
            }
        }
        let mut keys = [FlowKey::default(); BATCH_SIZE];
        while !down && budget > 0 && !self.queue.is_empty() {
            let n = self.queue.len().min(BATCH_SIZE);
            for (slot, pkt) in keys.iter_mut().zip(self.queue.iter()) {
                *slot = pkt.key;
            }
            // Split borrows: the backend runs the batch while the sink
            // closure pops the matching packets off the queue.
            let switch = &mut *self.backend;
            let queue = &mut self.queue;
            let window_cycles = &mut self.window_cycles;
            let deferred = &mut self.deferred;
            switch.process_batch(&keys[..n], now, &mut |_, outcome| {
                let pkt = queue.pop_front().expect("batch mirrors the queue head");
                budget -= outcome.cycles as i64;
                *window_cycles += outcome.cycles;
                match outcome.path {
                    PathTaken::UpcallQueued { token, .. } => {
                        deferred.insert(token, (pkt.bytes, pkt.source));
                    }
                    PathTaken::UpcallDropped { .. } => sink(pkt, Routing::UpcallDropped),
                    _ => {
                        let routing = match outcome.output.map(Port::from_raw) {
                            Some(Port::Uplink) => Routing::Uplink,
                            Some(Port::Local(vport)) => Routing::Local(vport),
                            None => Routing::Denied,
                        };
                        sink(pkt, routing);
                    }
                }
                budget > 0
            });
        }
        self.cycle_carry = budget.min(0);
        if down {
            return;
        }

        // One handler step per tick: resolved upcalls complete their
        // packets' journey through the same sink.
        let switch = &mut *self.backend;
        let deferred = &mut self.deferred;
        let window_handler_cycles = &mut self.window_handler_cycles;
        switch.drain_upcalls(now, &mut |r| {
            *window_handler_cycles += r.outcome.cycles;
            if let Some((bytes, source)) = deferred.remove(&r.token) {
                // A queued miss refused by a quarantine imposed after
                // enqueue surfaces as an upcall drop, exactly like the
                // pre-queue refusal — not as a policy denial.
                let routing = if r.outcome.path.is_upcall_dropped() {
                    Routing::UpcallDropped
                } else {
                    match r.outcome.output.map(Port::from_raw) {
                        Some(Port::Uplink) => Routing::Uplink,
                        Some(Port::Local(vport)) => Routing::Local(vport),
                        None => Routing::Denied,
                    }
                };
                sink(
                    NodePacket {
                        key: r.key,
                        bytes,
                        source,
                    },
                    routing,
                );
            }
        });
    }

    /// Packets currently parked in the switch's upcall pipeline.
    pub fn deferred_len(&self) -> usize {
        self.deferred.len()
    }

    /// True when the node carries no work of its own into the next
    /// tick: empty ingress queue, nothing parked in the upcall
    /// pipeline, and no cycle debt (a crash's restart debt keeps the
    /// node busy through its blackout). A quiet node still wakes for
    /// scheduled and background events — see
    /// [`NodeCell::next_scheduled_event`] and
    /// [`NodeCell::next_background_event`].
    pub fn quiet(&self) -> bool {
        self.queue.is_empty() && self.deferred.is_empty() && self.cycle_carry == 0
    }

    /// The earliest instant at which an attached driver acts on this
    /// node: a timed control-plane update lands (consumed — and lost —
    /// even mid-blackout), the reliable layer has a delivery, retry,
    /// ack or reconciliation due, or the fault program crashes or
    /// stalls the host. `None` when nothing is pending. A
    /// [`NodeCell::step`] strictly before the returned time observes
    /// none of these drivers.
    pub fn next_scheduled_event(&self, now: SimTime) -> Option<SimTime> {
        let mut next: Option<SimTime> = None;
        let mut fold = |t: SimTime| next = Some(next.map_or(t, |n| n.min(t)));
        if let Some(t) = self.control.as_ref().and_then(|c| c.next_due()) {
            fold(t);
        }
        if let Some(t) = self.reliable.as_ref().and_then(|r| r.next_activity()) {
            fold(t);
        }
        if let Some(t) = self.faults.as_ref().and_then(|f| f.next_event(now)) {
            fold(t);
        }
        next
    }

    /// The backend's next self-driven work instant (handler steps,
    /// maintenance sweeps) — see
    /// [`DataplaneBackend::next_background_event`].
    pub fn next_background_event(&self, now: SimTime) -> Option<SimTime> {
        self.backend.next_background_event(now)
    }

    /// Runs the revalidator at the end of a tick (skipped while the
    /// switch process is down — the revalidator died with it).
    pub fn revalidate(&mut self, next: SimTime) {
        if self.is_down(next) {
            return;
        }
        self.backend.revalidate(next);
    }

    /// Returns and resets the cycles consumed this sample window.
    pub fn take_window_cycles(&mut self) -> u64 {
        std::mem::take(&mut self.window_cycles)
    }

    /// Returns and resets the handler cycles consumed this sample
    /// window (zero under the inline pipeline).
    pub fn take_window_handler_cycles(&mut self) -> u64 {
        std::mem::take(&mut self.window_handler_cycles)
    }

    /// Returns and resets the control-plane cycles consumed this sample
    /// window — the flush-storm share of [`NodeCell::take_window_cycles`]
    /// (call before it; the control share is a subset, tracked
    /// separately so the engines can sample a `control_cps` series).
    pub fn take_window_control_cycles(&mut self) -> u64 {
        std::mem::take(&mut self.window_control_cycles)
    }

    /// Attaches a closed-loop defense controller to this node.
    pub fn attach_defense(&mut self, mut controller: DefenseController) {
        controller.set_tracer(self.tracer.clone());
        self.defense = Some(controller);
    }

    /// Whether a defense controller is attached.
    pub fn has_defense(&self) -> bool {
        self.defense.is_some()
    }

    /// The attached controller's report so far.
    pub fn defense_report(&self) -> Option<&DefenseReport> {
        self.defense.as_ref().map(|c| c.report())
    }

    /// Detaches the controller and yields its report (end of run).
    pub fn take_defense_report(&mut self) -> Option<DefenseReport> {
        self.defense.take().map(|c| c.into_report())
    }

    /// Runs one defense control-loop iteration against this node's
    /// switch (no-op without an attached controller). Returns the
    /// actions performed.
    pub fn run_defense(&mut self, now: SimTime) -> Vec<DefenseAction> {
        if self.is_down(now) {
            // No switch to observe or actuate while the process is
            // down; the controller is reset at restart instead.
            return Vec::new();
        }
        match &mut self.defense {
            Some(c) => c.step(&mut *self.backend, now),
            None => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_core::FlowKey;

    fn node() -> NodeCell<usize> {
        let mut n = NodeCell::new(DpConfig::default(), CostModel::default());
        n.backend_mut()
            .attach_pod(u32::from_be_bytes([10, 0, 0, 2]), 1);
        n.backend_mut()
            .attach_pod(u32::from_be_bytes([10, 1, 0, 2]), Port::Uplink.raw());
        n
    }

    fn pkt(dst: [u8; 4]) -> NodePacket<usize> {
        NodePacket {
            key: FlowKey::tcp([10, 0, 0, 1], dst, 1000, 80),
            bytes: 100,
            source: 7,
        }
    }

    #[test]
    fn step_routes_local_uplink_and_denied() {
        let mut n = node();
        assert!(n.enqueue(pkt([10, 0, 0, 2]), 10));
        assert!(n.enqueue(pkt([10, 1, 0, 2]), 10));
        assert!(n.enqueue(pkt([10, 9, 9, 9]), 10));
        let mut got = Vec::new();
        n.step(SimTime::from_millis(1), 1_000_000, |p, r| {
            got.push((p.source, r))
        });
        assert_eq!(
            got,
            vec![
                (7, Routing::Local(1)),
                (7, Routing::Uplink),
                (7, Routing::Denied)
            ]
        );
        assert_eq!(n.queue_len(), 0);
        assert!(n.take_window_cycles() > 0);
        assert_eq!(n.take_window_cycles(), 0, "window resets on take");
    }

    #[test]
    fn enqueue_respects_capacity() {
        let mut n = node();
        assert!(n.enqueue(pkt([10, 0, 0, 2]), 1));
        assert!(!n.enqueue(pkt([10, 0, 0, 2]), 1), "tail drop at capacity");
        assert_eq!(n.queue_len(), 1);
    }

    #[test]
    fn enqueue_capacity_drops_are_distinct_from_upcall_queue_drops() {
        use pi_datapath::{PipelineMode, UpcallPipelineConfig};
        // Ingress queue capacity 4; upcall queue capacity 2. Six fresh
        // flows offered: 2 tail-drop at the node ingress (enqueue
        // returns false — the switch never sees them), 2 enter the
        // upcall pipeline, 2 tail-drop at the *upcall* queue. The two
        // drop mechanisms must stay independently observable.
        let mut n: NodeCell<usize> = NodeCell::new(
            DpConfig {
                pipeline: PipelineMode::Bounded(UpcallPipelineConfig {
                    queue_capacity: 2,
                    handler_cycles_per_step: 0, // handlers fully starved
                    port_quota_per_step: None,
                }),
                ..DpConfig::default()
            },
            CostModel::default(),
        );
        n.backend_mut()
            .attach_pod(u32::from_be_bytes([10, 0, 0, 2]), 1);
        let mut ingress_drops = 0;
        for i in 0..6u16 {
            let pkt = NodePacket {
                key: FlowKey::tcp(
                    [10, 0, (i >> 8) as u8, i as u8 + 1],
                    [10, 0, 0, 2],
                    7000 + i,
                    80,
                ),
                bytes: 100,
                source: i as usize,
            };
            if !n.enqueue(pkt, 4) {
                ingress_drops += 1;
            }
        }
        assert_eq!(ingress_drops, 2, "node ingress tail drop");
        assert_eq!(n.queue_len(), 4);
        let mut upcall_drops = 0;
        n.step(SimTime::from_millis(1), 10_000_000, |_, r| {
            assert_eq!(r, Routing::UpcallDropped);
            upcall_drops += 1;
        });
        assert_eq!(upcall_drops, 2, "upcall queue tail drop");
        assert_eq!(n.backend().upcall_stats().queue_drops, 2);
        assert_eq!(n.deferred_len(), 2, "two parked awaiting handlers");
        // The switch-level counter only saw the 4 packets the ingress
        // queue admitted — the two drop accounts never mix.
        assert_eq!(n.backend().stats().packets, 4);
    }

    #[test]
    fn deferred_packets_resolve_via_the_handler_step() {
        use pi_datapath::{PipelineMode, UpcallPipelineConfig};
        let mut n: NodeCell<usize> = NodeCell::new(
            DpConfig {
                pipeline: PipelineMode::Bounded(UpcallPipelineConfig::unbounded()),
                ..DpConfig::default()
            },
            CostModel::default(),
        );
        n.backend_mut()
            .attach_pod(u32::from_be_bytes([10, 0, 0, 2]), 1);
        n.enqueue(
            NodePacket {
                key: FlowKey::tcp([10, 0, 0, 1], [10, 0, 0, 2], 1000, 80),
                bytes: 1500,
                source: 42,
            },
            10,
        );
        let mut got = Vec::new();
        n.step(SimTime::from_millis(1), 1_000_000, |p, r| {
            got.push((p.source, p.bytes, r))
        });
        // Same tick: the handler step resolved the miss and delivered.
        assert_eq!(got, vec![(42, 1500, Routing::Local(1))]);
        assert_eq!(n.deferred_len(), 0);
        assert!(n.take_window_handler_cycles() > 0);
        assert_eq!(n.take_window_handler_cycles(), 0, "window resets");
    }

    #[test]
    fn control_plane_updates_land_on_the_tick_grid_and_cost_budget() {
        use pi_classifier::table::whitelist_with_default_deny;
        use pi_cms::ControlPlaneProgram;

        let mut n = node();
        let pod = u32::from_be_bytes([10, 0, 0, 2]);
        let mut program = ControlPlaneProgram::new();
        // Deny-everything ACL lands at 2 ms.
        program.install_acl(
            SimTime::from_millis(2),
            pod,
            whitelist_with_default_deny(&[]),
        );
        n.attach_control_plane(program.compile());
        assert!(n.has_control_plane());
        assert_eq!(n.control_plane_pending(), 1);

        // Tick 1: update not due; traffic flows.
        n.enqueue(pkt([10, 0, 0, 2]), 10);
        let mut got = Vec::new();
        n.step(SimTime::from_millis(1), 1_000_000, |p, r| {
            got.push((p.source, r))
        });
        assert_eq!(got, vec![(7, Routing::Local(1))]);
        assert_eq!(n.control_plane_pending(), 1);
        let cycles_before = n.backend().stats().control_cycles;
        assert_eq!(cycles_before, 0);

        // Tick 2: the ACL lands at tick start — the same tick's
        // packets are already classified under the new policy, and the
        // update's cycles come out of the tick budget.
        n.enqueue(pkt([10, 0, 0, 2]), 10);
        let mut got = Vec::new();
        n.step(SimTime::from_millis(2), 1_000_000, |p, r| {
            got.push((p.source, r))
        });
        assert_eq!(got, vec![(7, Routing::Denied)], "new ACL in force");
        assert_eq!(n.control_plane_pending(), 0);
        let control = n.backend().stats().control_cycles;
        assert!(control > 0, "the update was charged");
        // The window cycles include the control share.
        assert!(n.take_window_cycles() >= control);

        // A microscopic budget still applies the update (control-plane
        // work is not optional) but the overrun suppresses packets.
        let mut n2 = node();
        let mut program = ControlPlaneProgram::new();
        program.install_acl(
            SimTime::from_millis(1),
            pod,
            whitelist_with_default_deny(&[]),
        );
        n2.attach_control_plane(program.compile());
        n2.enqueue(pkt([10, 0, 0, 2]), 10);
        let mut count = 0;
        n2.step(SimTime::from_millis(1), 1, |_, _| count += 1);
        assert_eq!(count, 0, "budget consumed by the update");
        assert_eq!(n2.queue_len(), 1, "packet waits for the debt to clear");
    }

    #[test]
    fn crash_wipes_acls_charges_restart_debt_and_reports() {
        use pi_classifier::table::whitelist_with_default_deny;
        use pi_fault::FaultSchedule;
        let ms = SimTime::from_millis;
        let pod = u32::from_be_bytes([10, 0, 0, 2]);
        let mut n = node();
        n.backend_mut()
            .install_acl(pod, whitelist_with_default_deny(&[]));
        n.attach_faults(FaultSchedule::new().crash(ms(5), SimTime::ZERO).compile());
        // Before the crash the deny-everything ACL holds.
        n.enqueue(pkt([10, 0, 0, 2]), 10);
        let mut got = Vec::new();
        n.step(ms(1), 10_000_000, |_, r| got.push(r));
        assert_eq!(got, vec![Routing::Denied]);
        // The crash tick (down_for zero: instant restart): the ACL is
        // gone, so the same packet now delivers.
        n.enqueue(pkt([10, 0, 0, 2]), 10);
        let mut got = Vec::new();
        n.step(ms(5), 10_000_000, |_, r| got.push(r));
        assert_eq!(got, vec![Routing::Local(1)], "deny rule vanished");
        let rep = n.fault_report(ms(1)).expect("fault program attached");
        assert_eq!(rep.crashes, 1);
        assert_eq!(rep.acls_lost, 1);
        assert!(rep.restart_cycles > 0, "respawn price charged");
        assert_eq!(rep.fault_events(), 1);
    }

    #[test]
    fn blackout_queues_packets_and_resumes_after_restart() {
        use pi_fault::FaultSchedule;
        let ms = SimTime::from_millis;
        let mut n = node();
        n.attach_faults(FaultSchedule::new().crash(ms(2), ms(3)).compile());
        for t in 2..5u64 {
            assert!(n.is_down(ms(t)) || t == 2);
            n.enqueue(pkt([10, 0, 0, 2]), 10);
            let mut got = 0;
            n.step(ms(t), 10_000_000, |_, _| got += 1);
            assert_eq!(got, 0, "nothing processed while down (t = {t})");
        }
        assert_eq!(n.queue_len(), 3, "ingress queue kept filling");
        let mut got = 0;
        n.step(ms(5), 10_000_000, |_, _| got += 1);
        assert_eq!(got, 3, "backlog drains once the switch is back");
        assert!(!n.is_down(ms(5)));
    }

    #[test]
    fn stall_starves_the_tick_budget() {
        use pi_fault::FaultSchedule;
        let ms = SimTime::from_millis;
        let mut n = node();
        n.attach_faults(FaultSchedule::new().stall(ms(1), ms(2)).compile());
        n.enqueue(pkt([10, 0, 0, 2]), 10);
        let mut got = 0;
        n.step(ms(1), 10_000_000, |_, _| got += 1);
        n.step(ms(2), 10_000_000, |_, _| got += 1);
        assert_eq!(got, 0, "stalled ticks have no fresh budget");
        n.step(ms(3), 10_000_000, |_, _| got += 1);
        assert_eq!(got, 1, "stall over");
        let rep = n.fault_report(ms(1)).expect("fault program attached");
        assert_eq!(rep.stall_ticks, 2);
        assert_eq!(rep.crashes, 0);
    }

    #[test]
    fn fire_and_forget_update_dies_in_the_blackout_reliable_survives() {
        use pi_classifier::table::whitelist_with_default_deny;
        use pi_cms::ControlPlaneProgram;
        use pi_fault::{FaultSchedule, ReliabilityConfig, ReliableControlPlane};
        let ms = SimTime::from_millis;
        let pod = u32::from_be_bytes([10, 0, 0, 2]);
        let program = || {
            let mut p = ControlPlaneProgram::new();
            p.install_acl(ms(3), pod, whitelist_with_default_deny(&[]));
            p
        };
        let drive = |n: &mut NodeCell<usize>| {
            for t in 1..=2_000u64 {
                n.step(ms(t), 10_000_000, |_, _| {});
                n.revalidate(ms(t + 1));
            }
        };
        // Fire and forget: the install falls due inside the blackout
        // and is consumed unseen — the deny rule never exists.
        let mut n = node();
        n.attach_control_plane(program().compile());
        n.attach_faults(FaultSchedule::new().crash(ms(2), ms(5)).compile());
        drive(&mut n);
        assert!(
            n.backend().installed_acl_ips().is_empty(),
            "update silently lost"
        );
        // At-least-once: the delivery is discarded while down, but the
        // unacked update retries until the restarted switch applies it.
        let mut n = node();
        n.attach_reliable_control_plane(ReliableControlPlane::new(
            program(),
            ReliabilityConfig::default(),
            None,
        ));
        n.attach_faults(FaultSchedule::new().crash(ms(2), ms(5)).compile());
        drive(&mut n);
        assert_eq!(n.backend().installed_acl_ips(), vec![pod]);
        let rep = n.fault_report(ms(1)).expect("reliable layer attached");
        assert!(rep.channel.applied >= 1);
        assert!(rep.channel.lost_to_downtime >= 1);
    }

    #[test]
    fn budget_overrun_carries_into_next_tick() {
        let mut n = node();
        for _ in 0..4 {
            n.enqueue(pkt([10, 0, 0, 2]), 100);
        }
        // A budget of 1 cycle still processes the first packet (the
        // check is budget > 0), then goes negative and stops.
        let mut count = 0;
        n.step(SimTime::from_millis(1), 1, |_, _| count += 1);
        assert_eq!(count, 1);
        assert_eq!(n.queue_len(), 3);
        // The negative carry suppresses the next tiny tick entirely
        // once it exceeds the fresh budget.
        let mut count2 = 0;
        n.step(SimTime::from_millis(2), 1, |_, _| count2 += 1);
        assert_eq!(count2, 0, "carry debt must be repaid first");
    }
}
