//! The tick loop: sources → queues → switches → delivery/feedback.
//!
//! Per-host stepping (queue, cycle budget, routing) lives in
//! [`crate::node`], shared with the `pi_fleet` cluster simulator; this
//! module owns the two-node orchestration: fabric hand-off, feedback and
//! sampling.

use std::collections::BTreeMap;

use pi_classifier::FlowTable;
use pi_cms::ControlPlaneProgram;
use pi_core::{Port, SimTime};
use pi_datapath::{CostModel, DpConfig, SwitchStats, UpcallStats};
use pi_detect::{DefenseController, DefenseReport, MaskAttribution};
use pi_fault::{FaultSchedule, NodeFaultReport, ReliabilityConfig, ReliableControlPlane};
use pi_metrics::TimeSeries;
use pi_trace::{TraceConfig, TraceReport, Tracer};
use pi_traffic::{GenPacket, TrafficSource};

use crate::node::{NodeCell, NodePacket, Routing};

/// What the engine did to produce a run: executed vs skipped per-node
/// ticks and the events behind them. Purely diagnostic — every count is
/// derived from node-local state and the global schedule, so the
/// numbers are identical for every worker count in the fleet engine
/// (they differ between the event-driven and tick-stepped engines only
/// in how many ticks were skipped).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Node/shard ticks actually executed (summed over hosts).
    pub shard_ticks_stepped: u64,
    /// Node/shard ticks proven idle and skipped (`hosts × ticks −
    /// stepped`; zero under the tick-stepped engine).
    pub shard_ticks_skipped: u64,
    /// Event-bearing causes consumed across executed ticks: inbound
    /// fabric epochs, topology commands, sample boundaries, defense
    /// intervals.
    pub events_processed: u64,
}

struct SourceSlot {
    source: Box<dyn TrafficSource>,
    origin: usize,
    label: String,
    // Tick accounting (for feedback).
    tick_delivered: u64,
    tick_dropped: u64,
    // Window accounting (for series).
    window_delivered_bytes: u64,
    window_generated_bytes: u64,
    // Run totals.
    total_generated: u64,
    total_delivered: u64,
    total_dropped_capacity: u64,
    total_dropped_policy: u64,
    total_dropped_upcall: u64,
}

/// Builder for a [`Simulation`].
pub struct SimBuilder {
    cfg: crate::SimConfig,
    cost: CostModel,
    dp_configs: Vec<DpConfig>,
    pods: Vec<(usize, u32, u32)>, // (node, ip, vport)
    acls: Vec<(u32, FlowTable)>,
    sources: Vec<(usize, Box<dyn TrafficSource>)>,
    next_vport: Vec<u32>,
    defenses: Vec<(usize, DefenseController)>,
    control_planes: Vec<(usize, ControlPlaneProgram)>,
    faults: Vec<(usize, FaultSchedule)>,
    reliable_controls: Vec<(usize, ControlPlaneProgram, ReliabilityConfig)>,
}

impl SimBuilder {
    /// Starts a build with global parameters and the default cost model.
    pub fn new(cfg: crate::SimConfig) -> Self {
        SimBuilder {
            cfg,
            cost: CostModel::default(),
            dp_configs: Vec::new(),
            pods: Vec::new(),
            acls: Vec::new(),
            sources: Vec::new(),
            next_vport: Vec::new(),
            defenses: Vec::new(),
            control_planes: Vec::new(),
            faults: Vec::new(),
            reliable_controls: Vec::new(),
        }
    }

    /// Overrides the cycle cost model for every switch.
    #[must_use]
    pub fn cost_model(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Adds a server node with its datapath configuration; returns the
    /// node index.
    pub fn add_node(&mut self, dp: DpConfig) -> usize {
        self.dp_configs.push(dp);
        self.next_vport.push(1);
        self.dp_configs.len() - 1
    }

    /// Attaches a pod with IP `ip` (host order) to `node`; returns its
    /// vport.
    pub fn add_pod(&mut self, node: usize, ip: u32) -> u32 {
        let vport = self.next_vport[node];
        self.next_vport[node] += 1;
        self.pods.push((node, ip, vport));
        vport
    }

    /// Installs an ingress ACL at the pod with IP `ip` (on its home
    /// switch).
    pub fn install_acl(&mut self, ip: u32, table: FlowTable) {
        self.acls.push((ip, table));
    }

    /// Registers a traffic source injecting at `node`; returns its
    /// source index (order of registration).
    pub fn add_source(&mut self, node: usize, source: Box<dyn TrafficSource>) -> usize {
        self.sources.push((node, source));
        self.sources.len() - 1
    }

    /// Attaches a closed-loop defense controller to `node`, run every
    /// [`crate::SimConfig::defense_interval`].
    pub fn attach_defense(&mut self, node: usize, controller: DefenseController) {
        self.defenses.push((node, controller));
    }

    /// Attaches a timed control-plane program to `node`: its scheduled
    /// policy updates land at tick boundaries mid-run, each charged
    /// against the node's cycle budget. Multiple programs for one node
    /// are merged (each keeps its own timings).
    pub fn attach_control_plane(&mut self, node: usize, program: ControlPlaneProgram) {
        self.control_planes.push((node, program));
    }

    /// Attaches a fault program to `node`: crash/restart events, host
    /// stalls and the CMS→switch channel fault model. Multiple
    /// schedules for one node merge.
    pub fn attach_faults(&mut self, node: usize, schedule: FaultSchedule) {
        self.faults.push((node, schedule));
    }

    /// Attaches an at-least-once control plane to `node`: `program`'s
    /// updates travel through the node's faulty channel (from its
    /// [`FaultSchedule`], perfect if none) with acks, retry/backoff and
    /// periodic reconciliation per `cfg`. Multiple programs for one
    /// node merge; the last `cfg` wins.
    pub fn attach_reliable_control_plane(
        &mut self,
        node: usize,
        program: ControlPlaneProgram,
        cfg: ReliabilityConfig,
    ) {
        self.reliable_controls.push((node, program, cfg));
    }

    /// Finalises the topology.
    pub fn build(self) -> Simulation {
        assert!(!self.dp_configs.is_empty(), "need at least one node");
        let mut nodes: Vec<NodeCell<usize>> = self
            .dp_configs
            .into_iter()
            .map(|dp| NodeCell::new(dp, self.cost))
            .collect();

        let mut pod_locations = BTreeMap::new();
        for &(node, ip, vport) in &self.pods {
            pod_locations.insert(ip, node);
            // Local attachment.
            nodes[node].backend_mut().attach_pod(ip, vport);
            // Remote pods are reachable via the uplink on every other
            // switch (L3 fabric forwarding, no ACL).
            for (i, other) in nodes.iter_mut().enumerate() {
                if i != node {
                    other.backend_mut().attach_pod(ip, Port::Uplink.raw());
                }
            }
        }
        for (ip, table) in self.acls {
            let node = *pod_locations
                .get(&ip)
                .expect("ACL target pod must be attached");
            let ok = nodes[node].backend_mut().install_acl(ip, table);
            assert!(ok, "ACL install must succeed on the home switch");
        }
        for (node, controller) in self.defenses {
            nodes[node].attach_defense(controller);
        }
        let mut programs: BTreeMap<usize, ControlPlaneProgram> = BTreeMap::new();
        for (node, program) in self.control_planes {
            programs.entry(node).or_default().merge(program);
        }
        for (node, program) in programs {
            nodes[node].attach_control_plane(program.compile());
        }
        let mut fault_schedules: BTreeMap<usize, FaultSchedule> = BTreeMap::new();
        for (node, schedule) in self.faults {
            fault_schedules.entry(node).or_default().merge(schedule);
        }
        let mut reliable: BTreeMap<usize, (ControlPlaneProgram, ReliabilityConfig)> =
            BTreeMap::new();
        for (node, program, cfg) in self.reliable_controls {
            let entry = reliable.entry(node).or_default();
            entry.0.merge(program);
            entry.1 = cfg;
        }
        for (node, (program, cfg)) in reliable {
            // The reliable layer sends through the node's faulty
            // channel, if its schedule models one.
            let channel = fault_schedules.get(&node).and_then(|s| s.channel_config());
            nodes[node]
                .attach_reliable_control_plane(ReliableControlPlane::new(program, cfg, channel));
        }
        for (node, schedule) in fault_schedules {
            nodes[node].attach_faults(schedule.compile());
        }
        if self.cfg.trace.enabled {
            for (host, node) in nodes.iter_mut().enumerate() {
                node.set_tracer(Tracer::for_host(self.cfg.trace, host as u32));
            }
        }
        let sources = self
            .sources
            .into_iter()
            .enumerate()
            .map(|(i, (origin, source))| SourceSlot {
                label: format!("{}#{}", source.label(), i),
                source,
                origin,
                tick_delivered: 0,
                tick_dropped: 0,
                window_delivered_bytes: 0,
                window_generated_bytes: 0,
                total_generated: 0,
                total_delivered: 0,
                total_dropped_capacity: 0,
                total_dropped_policy: 0,
                total_dropped_upcall: 0,
            })
            .collect();

        Simulation {
            cfg: self.cfg,
            nodes,
            pod_locations,
            sources,
        }
    }
}

/// Per-source run totals.
///
/// Totals do **not** conserve at the run boundary: packets still in
/// flight when the clock stops — sitting in a node's ingress queue, on
/// the fabric, or parked in a bounded upcall pipeline awaiting a
/// handler — are in no bucket, so `generated` may exceed the sum of
/// the outcome counters by up to the in-flight population.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceTotals {
    /// Source label (`label#index`).
    pub label: String,
    /// Packets generated.
    pub generated: u64,
    /// Packets delivered to their destination pod.
    pub delivered: u64,
    /// Packets lost to queue/link/capacity limits.
    pub dropped_capacity: u64,
    /// Packets denied by policy.
    pub dropped_policy: u64,
    /// Packets tail-dropped at a switch's bounded upcall queue (always
    /// zero under [`pi_datapath::PipelineMode::Inline`]). Kept separate
    /// from `dropped_capacity` so slow-path starvation is attributable.
    pub dropped_upcall: u64,
}

/// Everything a run produces.
#[derive(Debug)]
pub struct SimReport {
    /// Per-source delivered throughput, bits/second, sampled per window.
    pub throughput_bps: Vec<TimeSeries>,
    /// Per-source offered load, bits/second.
    pub offered_bps: Vec<TimeSeries>,
    /// Per-node distinct megaflow mask count (Fig. 3's right axis).
    pub masks: Vec<TimeSeries>,
    /// Per-node megaflow entry count.
    pub megaflows: Vec<TimeSeries>,
    /// Per-node CPU utilisation of the datapath budget, 0–1.
    pub cpu_util: Vec<TimeSeries>,
    /// Per-node slow-path handler CPU, cycles/second (zero under the
    /// inline pipeline — handlers are a separate budget, so this is a
    /// rate, not a fraction of the datapath budget).
    pub handler_cps: Vec<TimeSeries>,
    /// Per-node control-plane CPU, cycles/second — the flush-storm
    /// share of the datapath budget (a subset of `cpu_util`'s cycles),
    /// sampled per window. Flat zero for nodes with no control plane.
    pub control_cps: Vec<TimeSeries>,
    /// Final switch statistics per node.
    pub switch_stats: Vec<SwitchStats>,
    /// Final upcall-pipeline statistics per node (all zero under the
    /// inline pipeline).
    pub upcall_stats: Vec<UpcallStats>,
    /// Per-source totals.
    pub source_totals: Vec<SourceTotals>,
    /// Per-node defense-controller reports (detections + state
    /// timeline), `None` for undefended nodes.
    pub defense: Vec<Option<DefenseReport>>,
    /// Per-node fault/recovery counters, `None` for nodes with neither
    /// a fault program nor a reliable control plane attached.
    pub faults: Vec<Option<NodeFaultReport>>,
    /// Final per-destination mask attribution per node — the offender
    /// list, computed once here so benches never re-walk the megaflow
    /// cache themselves.
    pub attribution: Vec<Vec<MaskAttribution>>,
    /// Executed/skipped tick accounting for the run (engine
    /// self-profiling).
    pub engine: EngineStats,
    /// The merged structured trace (empty unless
    /// [`crate::SimConfig::trace`] enabled tracing).
    pub trace: TraceReport,
}

impl SimReport {
    /// Offenders on `node`: destinations whose final mask count exceeds
    /// `threshold`.
    pub fn offenders(&self, node: usize, threshold: usize) -> Vec<MaskAttribution> {
        pi_detect::offenders(&self.attribution[node], threshold)
    }
}

/// A runnable simulation.
pub struct Simulation {
    cfg: crate::SimConfig,
    nodes: Vec<NodeCell<usize>>,
    pod_locations: BTreeMap<u32, usize>,
    sources: Vec<SourceSlot>,
}

/// Earliest tick ≥ `from_tick` on which anything observable can happen,
/// under the same tick-grid mappings as the fleet engine's
/// `HostShard::next_wake`: scheduled control/fault events are polled at
/// tick *start* (`div_ceil`), backend maintenance deadlines at tick
/// *end* (`div_ceil − 1`), source activity by the tick containing it
/// (floor). The sample grid bounds the answer, so a finite tick always
/// comes back; ticks strictly between `from_tick` and the result are
/// provable no-ops.
fn next_event_tick(
    nodes: &[NodeCell<usize>],
    sources: &[SourceSlot],
    from_tick: u64,
    tick_ns: u64,
    sample_every_ticks: u64,
    defense_every_ticks: u64,
) -> u64 {
    let from = SimTime::from_nanos(from_tick.saturating_mul(tick_ns));
    let mut wake = from_tick + (sample_every_ticks - 1 - from_tick % sample_every_ticks);
    for node in nodes {
        if wake <= from_tick {
            break;
        }
        if !node.quiet() {
            wake = from_tick;
            break;
        }
        if let Some(t) = node.next_scheduled_event(from) {
            wake = wake.min(t.as_nanos().div_ceil(tick_ns));
        }
        if let Some(t) = node.next_background_event(from) {
            wake = wake.min(t.as_nanos().div_ceil(tick_ns).saturating_sub(1));
        }
        if node.has_defense() {
            let r = from_tick % defense_every_ticks;
            wake = wake.min(from_tick + (defense_every_ticks - 1 - r));
        }
    }
    for slot in sources {
        if wake <= from_tick {
            break;
        }
        let t = slot.source.next_activity(from);
        wake = wake.min(t.as_nanos() / tick_ns);
    }
    wake.max(from_tick)
}

impl Simulation {
    /// Overrides the engine selection after construction. The scripted
    /// scenarios build their own [`crate::SimConfig`]; this lets the
    /// equivalence tests run the same scenario on the event-driven core
    /// and the tick-stepped reference and pin the reports equal.
    pub fn set_event_driven(&mut self, on: bool) {
        self.cfg.event_driven = on;
    }

    /// Overrides the trace configuration after construction and rewires
    /// every node's tracer accordingly. The scripted scenarios build
    /// their own [`crate::SimConfig`]; this turns tracing on (or off)
    /// for an already-built topology without re-plumbing the builder.
    pub fn set_trace(&mut self, trace: TraceConfig) {
        self.cfg.trace = trace;
        for (host, node) in self.nodes.iter_mut().enumerate() {
            let tracer = if trace.enabled {
                Tracer::for_host(trace, host as u32)
            } else {
                Tracer::disabled()
            };
            node.set_tracer(tracer);
        }
    }

    /// Runs to completion and reports.
    pub fn run(self) -> SimReport {
        let Simulation {
            cfg,
            mut nodes,
            pod_locations,
            mut sources,
        } = self;
        let ticks = cfg.tick_count();
        let cycles_per_tick = cfg.cycles_per_tick();
        let link_bytes_per_tick = cfg.link_bytes_per_tick();

        let mut throughput: Vec<TimeSeries> = sources
            .iter()
            .map(|s| TimeSeries::new(&format!("{}_bps", s.label)))
            .collect();
        let mut offered: Vec<TimeSeries> = sources
            .iter()
            .map(|s| TimeSeries::new(&format!("{}_offered_bps", s.label)))
            .collect();
        let mut masks: Vec<TimeSeries> = (0..nodes.len())
            .map(|i| TimeSeries::new(&format!("node{i}_masks")))
            .collect();
        let mut megaflows: Vec<TimeSeries> = (0..nodes.len())
            .map(|i| TimeSeries::new(&format!("node{i}_megaflows")))
            .collect();
        let mut cpu: Vec<TimeSeries> = (0..nodes.len())
            .map(|i| TimeSeries::new(&format!("node{i}_cpu")))
            .collect();
        let mut handler_cps: Vec<TimeSeries> = (0..nodes.len())
            .map(|i| TimeSeries::new(&format!("node{i}_handler_cps")))
            .collect();
        let mut control_cps: Vec<TimeSeries> = (0..nodes.len())
            .map(|i| TimeSeries::new(&format!("node{i}_control_cps")))
            .collect();
        let mut engine = EngineStats::default();

        let mut genbuf: Vec<GenPacket> = Vec::new();
        let mut forward: Vec<Vec<NodePacket<usize>>> =
            (0..nodes.len()).map(|_| Vec::new()).collect();
        let sample_every_ticks = (cfg.sample_interval.as_nanos() / cfg.tick.as_nanos()).max(1);
        let window_secs = cfg.sample_interval.as_secs_f64();
        let defense_every_ticks = cfg.defense_every_ticks();
        let tick_ns = cfg.tick.as_nanos();

        // Event-driven mode jumps `tick` straight to the next tick with
        // observable work; the stepped reference visits every tick. The
        // executed ticks run the identical body either way.
        let mut tick = 0u64;
        while tick < ticks {
            if cfg.event_driven {
                let e = next_event_tick(
                    &nodes,
                    &sources,
                    tick,
                    tick_ns,
                    sample_every_ticks,
                    defense_every_ticks,
                );
                if e >= ticks {
                    break;
                }
                tick = e;
            }
            let now = SimTime::from_nanos(tick * cfg.tick.as_nanos());
            let next = now + cfg.tick;
            engine.shard_ticks_stepped += nodes.len() as u64;

            // 1. Generation → origin queues.
            for (si, slot) in sources.iter_mut().enumerate() {
                genbuf.clear();
                slot.source.generate(now, next, &mut genbuf);
                slot.total_generated += genbuf.len() as u64;
                for p in &genbuf {
                    slot.window_generated_bytes += p.bytes as u64;
                    let accepted = nodes[slot.origin].enqueue(
                        NodePacket {
                            key: p.key,
                            bytes: p.bytes,
                            source: si,
                        },
                        cfg.queue_capacity,
                    );
                    if !accepted {
                        slot.tick_dropped += 1;
                        slot.total_dropped_capacity += 1;
                    }
                }
            }

            // 2. Switch processing under the cycle budget.
            for node in nodes.iter_mut() {
                let mut link_budget = link_bytes_per_tick;
                node.step(now, cycles_per_tick, |pkt, routing| match routing {
                    Routing::Uplink => {
                        let dst = pod_locations.get(&pkt.key.ip_dst).copied();
                        if let Some(dst) = dst {
                            if link_budget >= pkt.bytes as f64 {
                                link_budget -= pkt.bytes as f64;
                                forward[dst].push(pkt);
                            } else {
                                let s = &mut sources[pkt.source];
                                s.tick_dropped += 1;
                                s.total_dropped_capacity += 1;
                            }
                        } else {
                            // Switch routed to uplink but no node
                            // hosts the IP — treat as policy drop.
                            sources[pkt.source].total_dropped_policy += 1;
                        }
                    }
                    Routing::Local(_vport) => {
                        let s = &mut sources[pkt.source];
                        s.tick_delivered += 1;
                        s.total_delivered += 1;
                        s.window_delivered_bytes += pkt.bytes as u64;
                    }
                    Routing::Denied => {
                        sources[pkt.source].total_dropped_policy += 1;
                    }
                    Routing::UpcallDropped => {
                        let s = &mut sources[pkt.source];
                        s.tick_dropped += 1;
                        s.total_dropped_upcall += 1;
                    }
                });
                node.revalidate(next);
                // The defense control loop observes the post-tick
                // switch state at its own cadence.
                if (tick + 1).is_multiple_of(defense_every_ticks) {
                    if node.has_defense() {
                        engine.events_processed += 1;
                    }
                    node.run_defense(next);
                }
            }

            // 3. Fabric hand-off (next tick's queues).
            for (ni, pkts) in forward.iter_mut().enumerate() {
                if !pkts.is_empty() {
                    engine.events_processed += 1;
                }
                for pkt in pkts.drain(..) {
                    let source = pkt.source;
                    if !nodes[ni].enqueue(pkt, cfg.queue_capacity) {
                        let s = &mut sources[source];
                        s.tick_dropped += 1;
                        s.total_dropped_capacity += 1;
                    }
                }
            }

            // 4. Feedback.
            for slot in sources.iter_mut() {
                slot.source.feedback(slot.tick_delivered, slot.tick_dropped);
                slot.tick_delivered = 0;
                slot.tick_dropped = 0;
            }

            // 5. Sampling.
            if (tick + 1).is_multiple_of(sample_every_ticks) {
                engine.events_processed += nodes.len() as u64;
                let t = next;
                for (si, slot) in sources.iter_mut().enumerate() {
                    throughput[si].push(t, slot.window_delivered_bytes as f64 * 8.0 / window_secs);
                    offered[si].push(t, slot.window_generated_bytes as f64 * 8.0 / window_secs);
                    slot.window_delivered_bytes = 0;
                    slot.window_generated_bytes = 0;
                }
                for (ni, node) in nodes.iter_mut().enumerate() {
                    masks[ni].push(t, node.backend().mask_count() as f64);
                    megaflows[ni].push(t, node.backend().megaflow_count() as f64);
                    let budget_window = cfg.cpu_cycles_per_sec as f64 * window_secs;
                    control_cps[ni].push(t, node.take_window_control_cycles() as f64 / window_secs);
                    cpu[ni].push(t, node.take_window_cycles() as f64 / budget_window);
                    handler_cps[ni].push(t, node.take_window_handler_cycles() as f64 / window_secs);
                }
            }
            tick += 1;
        }
        engine.shard_ticks_skipped = ticks * nodes.len() as u64 - engine.shard_ticks_stepped;
        let tracers: Vec<Tracer> = nodes.iter().map(|n| n.tracer()).collect();
        let trace = TraceReport::collect(cfg.trace, &tracers);

        SimReport {
            throughput_bps: throughput,
            offered_bps: offered,
            masks,
            megaflows,
            cpu_util: cpu,
            handler_cps,
            control_cps,
            engine,
            trace,
            switch_stats: nodes.iter().map(|n| n.backend().stats()).collect(),
            upcall_stats: nodes.iter().map(|n| n.backend().upcall_stats()).collect(),
            attribution: nodes.iter().map(|n| n.backend().attribution()).collect(),
            faults: nodes.iter().map(|n| n.fault_report(cfg.tick)).collect(),
            defense: nodes.iter_mut().map(|n| n.take_defense_report()).collect(),
            source_totals: sources
                .iter()
                .map(|s| SourceTotals {
                    label: s.label.clone(),
                    generated: s.total_generated,
                    delivered: s.total_delivered,
                    dropped_capacity: s.total_dropped_capacity,
                    dropped_policy: s.total_dropped_policy,
                    dropped_upcall: s.total_dropped_upcall,
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_classifier::table::whitelist_with_default_deny;
    use pi_core::{Field, FlowKey, FlowMask, MaskedKey};
    use pi_datapath::DpConfig;
    use pi_traffic::CbrSource;

    fn cfg(secs: u64) -> crate::SimConfig {
        crate::SimConfig {
            duration: SimTime::from_secs(secs),
            ..Default::default()
        }
    }

    fn ip(a: [u8; 4]) -> u32 {
        u32::from_be_bytes(a)
    }

    #[test]
    fn single_node_delivery() {
        let mut b = SimBuilder::new(cfg(5));
        let n0 = b.add_node(DpConfig::default());
        b.add_pod(n0, ip([10, 0, 0, 2]));
        let key = FlowKey::tcp([10, 0, 0, 1], [10, 0, 0, 2], 1000, 80);
        b.add_source(n0, Box::new(CbrSource::new(key, 1500, 1000.0)));
        let report = b.build().run();
        let totals = &report.source_totals[0];
        assert_eq!(totals.generated, 5_000);
        assert_eq!(totals.delivered, 5_000);
        assert_eq!(totals.dropped_capacity, 0);
        assert_eq!(totals.dropped_policy, 0);
        // Throughput series ≈ 1000 pps × 1500 B × 8 = 12 Mb/s.
        let mean = report.throughput_bps[0].mean();
        assert!((mean - 12e6).abs() / 12e6 < 0.01, "mean {mean}");
    }

    #[test]
    fn two_node_forwarding_over_fabric() {
        let mut b = SimBuilder::new(cfg(3));
        let n0 = b.add_node(DpConfig::default());
        let n1 = b.add_node(DpConfig::default());
        b.add_pod(n0, ip([10, 0, 0, 1]));
        b.add_pod(n1, ip([10, 1, 0, 1]));
        let key = FlowKey::tcp([10, 0, 0, 1], [10, 1, 0, 1], 1000, 80);
        b.add_source(n0, Box::new(CbrSource::new(key, 1500, 100.0)));
        let report = b.build().run();
        // The fabric adds one tick of latency, so the final packet may
        // still be in flight when the run ends.
        let delivered = report.source_totals[0].delivered;
        assert!((299..=300).contains(&delivered), "delivered = {delivered}");
        // Both switches processed the packets.
        assert!(report.switch_stats[0].packets >= 299);
        assert!(report.switch_stats[1].packets >= 299);
    }

    #[test]
    fn acl_denies_and_counts_policy_drops() {
        let mut b = SimBuilder::new(cfg(2));
        let n0 = b.add_node(DpConfig::default());
        b.add_pod(n0, ip([10, 0, 0, 2]));
        // Whitelist a different /8: 192.x traffic only.
        let allow = MaskedKey::new(
            FlowKey::tcp([192, 0, 0, 0], [0, 0, 0, 0], 0, 0),
            FlowMask::default().with_prefix(Field::IpSrc, 8),
        );
        b.install_acl(ip([10, 0, 0, 2]), whitelist_with_default_deny(&[allow]));
        let denied = FlowKey::tcp([10, 0, 0, 1], [10, 0, 0, 2], 1, 80);
        b.add_source(n0, Box::new(CbrSource::new(denied, 64, 100.0)));
        let report = b.build().run();
        assert_eq!(report.source_totals[0].delivered, 0);
        assert_eq!(report.source_totals[0].dropped_policy, 200);
    }

    #[test]
    fn link_capacity_caps_cross_node_throughput() {
        let mut b = SimBuilder::new(crate::SimConfig {
            duration: SimTime::from_secs(3),
            link_bps: 1e6, // 1 Mb/s fabric
            ..Default::default()
        });
        let n0 = b.add_node(DpConfig::default());
        let n1 = b.add_node(DpConfig::default());
        b.add_pod(n0, ip([10, 0, 0, 1]));
        b.add_pod(n1, ip([10, 1, 0, 1]));
        let key = FlowKey::tcp([10, 0, 0, 1], [10, 1, 0, 1], 1, 80);
        // Offer 12 Mb/s over a 1 Mb/s link.
        b.add_source(n0, Box::new(CbrSource::new(key, 1500, 1000.0)));
        let report = b.build().run();
        let delivered_bps = report.throughput_bps[0].mean();
        assert!(
            delivered_bps < 1.1e6,
            "delivered {delivered_bps} over a 1 Mb/s link"
        );
        assert!(report.source_totals[0].dropped_capacity > 0);
    }

    #[test]
    fn cpu_exhaustion_starves_the_queue() {
        // A switch with a microscopic budget cannot carry the load.
        let mut b = SimBuilder::new(crate::SimConfig {
            duration: SimTime::from_secs(2),
            cpu_cycles_per_sec: 200_000, // 200 cycles/ms: a handful of packets
            queue_capacity: 100,
            ..Default::default()
        });
        let n0 = b.add_node(DpConfig::default());
        b.add_pod(n0, ip([10, 0, 0, 2]));
        let key = FlowKey::tcp([10, 0, 0, 1], [10, 0, 0, 2], 1, 80);
        b.add_source(n0, Box::new(CbrSource::new(key, 64, 10_000.0)));
        let report = b.build().run();
        let t = &report.source_totals[0];
        assert!(t.delivered < t.generated / 2, "most packets must drop");
        assert!(t.dropped_capacity > 0);
        // CPU pinned at (or briefly above, via carry) full utilisation.
        assert!(report.cpu_util[0].mean() > 0.95);
    }

    #[test]
    fn masks_series_tracks_switch_state() {
        let mut b = SimBuilder::new(cfg(2));
        let n0 = b.add_node(DpConfig::default());
        b.add_pod(n0, ip([10, 0, 0, 2]));
        let key = FlowKey::tcp([10, 0, 0, 1], [10, 0, 0, 2], 1, 80);
        b.add_source(n0, Box::new(CbrSource::new(key, 64, 10.0)));
        let report = b.build().run();
        // One pod, no ACL: a single ip_dst mask.
        assert_eq!(report.masks[0].last().unwrap().1, 1.0);
        assert_eq!(report.megaflows[0].last().unwrap().1, 1.0);
    }

    #[test]
    fn determinism_same_build_same_report() {
        let build = || {
            let mut b = SimBuilder::new(cfg(3));
            let n0 = b.add_node(DpConfig::default());
            b.add_pod(n0, ip([10, 0, 0, 2]));
            let _key = FlowKey::tcp([10, 0, 0, 1], [10, 0, 0, 2], 1, 80);
            b.add_source(
                n0,
                Box::new(pi_traffic::PoissonFlowSource::new(
                    vec![(ip([10, 9, 9, 9]), ip([10, 0, 0, 2]))],
                    20.0,
                    10.0,
                    100.0,
                    200,
                    42,
                )),
            );
            b.build().run()
        };
        let a = build();
        let b = build();
        assert_eq!(a.source_totals, b.source_totals);
        assert_eq!(
            a.throughput_bps[0].iter().collect::<Vec<_>>(),
            b.throughput_bps[0].iter().collect::<Vec<_>>()
        );
    }
}
