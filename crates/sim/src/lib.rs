//! # pi-sim — the discrete-time cloud dataplane simulator
//!
//! Reproduces the paper's testbed (Fig. 1) in simulation: server nodes
//! running an OVS-like [`pi_datapath::VSwitch`], pods attached to vports,
//! a fabric link between nodes, and traffic sources feeding the whole
//! thing tick by tick.
//!
//! The one modelling rule: **throughput is never scripted**. Each switch
//! has a CPU cycle budget per tick; every packet costs what the datapath
//! says it costs (hash probes × cycle prices); packets the budget cannot
//! cover queue up and eventually drop. When the covert stream inflates
//! the subtable walk, the victim's throughput collapses because the
//! arithmetic says so.
//!
//! [`scenario`] packages the paper's experiments; [`engine`] is the
//! general tick loop usable for new ones.

pub mod config;
pub mod engine;
pub mod node;
pub mod scenario;

pub use config::SimConfig;
pub use engine::{EngineStats, SimBuilder, SimReport, Simulation, SourceTotals};
pub use node::{NodeCell, NodePacket, Routing};
pub use pi_trace::{TraceConfig, TraceEvent, TraceEventKind, TraceReport, Tracer};
pub use scenario::{
    adaptive_defense_scenario, crash_recovery_scenario, fig3_scenario, measure_backend_capacity,
    measure_capacity, policy_churn_scenario, upcall_saturation_scenario, AdaptiveDefenseHandles,
    AdaptiveDefenseParams, CapacityReport, CapacityWorkload, CrashRecoveryAttack,
    CrashRecoveryHandles, CrashRecoveryParams, DefenseMode, Fig3Params, PolicyChurnHandles,
    PolicyChurnParams, UpcallSaturationHandles, UpcallSaturationParams,
};
