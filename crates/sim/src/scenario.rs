//! Pre-built scenarios for the paper's experiments.

use pi_attack::{AttackSchedule, AttackSpec, CovertSequence};
use pi_backend::{build_backend, DataplaneBackend};
use pi_cms::{Cidr, ControlPlaneProgram, IngressRule, NetworkPolicy, PolicyCompiler, Protocol};
use pi_core::{FlowKey, SimTime};
use pi_datapath::{BackendKind, CostModel, DpConfig, PipelineMode, UpcallPipelineConfig, VSwitch};
use pi_detect::{ControllerConfig, DefenseController};
use pi_fault::{ChannelFaultConfig, FaultSchedule, ReliabilityConfig};
use pi_traffic::{ChurnSource, FanSource, IperfSource, PoissonFlowSource};

use crate::engine::{SimBuilder, Simulation};
use crate::SimConfig;

/// Parameters of the Fig. 3 reproduction (and its variants).
#[derive(Debug, Clone)]
pub struct Fig3Params {
    /// Run length (paper: 150 s).
    pub duration: SimTime,
    /// Covert stream start (paper: 60 s).
    pub attack_start: SimTime,
    /// Covert budget (paper: 1–2 Mb/s).
    pub attack_bandwidth_bps: f64,
    /// The injected policy (default: the 8192-mask Calico shape).
    pub spec: AttackSpec,
    /// Victim link-limited rate (paper: ~1 Gb/s iperf).
    pub victim_rate_bps: f64,
    /// Per-node datapath CPU budget.
    pub cpu_cycles_per_sec: u64,
    /// Datapath configuration for both nodes.
    pub dp: DpConfig,
    /// Whether to add background pod-to-pod chatter.
    pub background: bool,
    /// Seed for the background workload.
    pub seed: u64,
    /// Optional closed-loop defense: one controller per node with this
    /// tuning (the adaptive counterpart of the static `dp` knobs).
    pub defense: Option<ControllerConfig>,
}

impl Default for Fig3Params {
    fn default() -> Self {
        Fig3Params {
            duration: SimTime::from_secs(150),
            attack_start: SimTime::from_secs(60),
            attack_bandwidth_bps: 2e6,
            spec: AttackSpec::masks_8192(),
            victim_rate_bps: 1e9,
            cpu_cycles_per_sec: SimConfig::default().cpu_cycles_per_sec,
            dp: DpConfig::default(),
            background: true,
            seed: 2018,
            defense: None,
        }
    }
}

/// Source/node indices of the built scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fig3Handles {
    /// Index of the victim iperf source in the report vectors.
    pub victim_source: usize,
    /// Index of the attack source.
    pub attack_source: usize,
    /// Index of the background source, when enabled.
    pub background_source: Option<usize>,
    /// Node whose switch the attack saturates (the server node).
    pub attacked_node: usize,
}

/// Builds the paper's demo topology (Fig. 1): a client node and a server
/// node. The server node hosts the victim's service pod (with the
/// victim's own legitimate NetworkPolicy), the attacker's pod (with the
/// injected ACL), and a background pod; the client node originates the
/// victim's iperf, the covert stream, and background chatter.
pub fn fig3_scenario(params: &Fig3Params) -> (Simulation, Fig3Handles) {
    let cfg = SimConfig {
        duration: params.duration,
        cpu_cycles_per_sec: params.cpu_cycles_per_sec,
        ..SimConfig::default()
    };
    let mut b = SimBuilder::new(cfg);
    let client_node = b.add_node(params.dp.clone());
    let server_node = b.add_node(params.dp.clone());

    let victim_client_ip = u32::from_be_bytes([10, 0, 0, 10]);
    let victim_server_ip = u32::from_be_bytes([10, 1, 0, 10]);
    let attacker_pod_ip = u32::from_be_bytes([10, 1, 0, 66]);
    let background_ip = u32::from_be_bytes([10, 1, 0, 20]);

    b.add_pod(client_node, victim_client_ip);
    b.add_pod(server_node, victim_server_ip);
    b.add_pod(server_node, attacker_pod_ip);
    b.add_pod(server_node, background_ip);

    // The victim's own, perfectly legitimate microsegmentation: allow
    // cluster traffic (10/8) to the iperf port.
    let victim_policy = NetworkPolicy {
        name: "victim-iperf".into(),
        ingress: vec![IngressRule {
            from: vec![Cidr::new(u32::from_be_bytes([10, 0, 0, 0]), 8).unwrap()],
            ports: vec![(Protocol::Tcp, Some(5201))],
        }],
    };
    b.install_acl(victim_server_ip, PolicyCompiler.compile_k8s(&victim_policy));

    // The injected ACL at the attacker's own pod.
    let attack_table = match params.spec.build_policy() {
        pi_attack::MaliciousAcl::K8s(p) => PolicyCompiler.compile_k8s(&p),
        pi_attack::MaliciousAcl::OpenStack(p) => PolicyCompiler.compile_security_group(&p),
        pi_attack::MaliciousAcl::Calico(p) => PolicyCompiler.compile_calico(&p),
    };
    b.install_acl(attacker_pod_ip, attack_table);

    // Victim iperf: client → server pod.
    let victim_key = FlowKey::tcp(
        std::net::Ipv4Addr::from(victim_client_ip),
        std::net::Ipv4Addr::from(victim_server_ip),
        40_000,
        5201,
    );
    let victim_source = b.add_source(
        client_node,
        Box::new(IperfSource::new(victim_key, 1500, params.victim_rate_bps).named("victim")),
    );

    // The covert stream, from the attacker's client-side pod.
    let target = params.spec.build_target(attacker_pod_ip);
    let attack_source = b.add_source(
        client_node,
        Box::new(AttackSchedule::new(
            CovertSequence::new(target),
            params.attack_bandwidth_bps,
            params.attack_start,
        )),
    );

    // Background chatter to the unprotected pod.
    let background_source = params.background.then(|| {
        b.add_source(
            client_node,
            Box::new(
                PoissonFlowSource::new(
                    (0..16u32)
                        .map(|i| (u32::from_be_bytes([10, 0, 1, i as u8]), background_ip))
                        .collect(),
                    20.0,
                    30.0,
                    200.0,
                    200,
                    params.seed,
                )
                .named("background"),
            ),
        )
    });

    if let Some(ctrl) = &params.defense {
        b.attach_defense(client_node, DefenseController::new(*ctrl));
        b.attach_defense(server_node, DefenseController::new(*ctrl));
    }

    (
        b.build(),
        Fig3Handles {
            victim_source,
            attack_source,
            background_source,
            attacked_node: server_node,
        },
    )
}

/// Parameters of the handler-saturation scenario.
#[derive(Debug, Clone)]
pub struct UpcallSaturationParams {
    /// Run length.
    pub duration: SimTime,
    /// When the victim's connection churn begins (after the flood has
    /// filled the flow limit, so victim flows keep upcalling).
    pub victim_start: SimTime,
    /// Victim connection rate, new flows/second.
    pub victim_pps: f64,
    /// Attacker flood bandwidth, bits/second of 64-B frames.
    pub attack_bandwidth_bps: f64,
    /// Megaflow table limit (small: the flood exhausts it in the first
    /// second, which is what keeps the victim in the slow path).
    pub flow_limit: usize,
    /// Per-port upcall queue capacity.
    pub queue_capacity: usize,
    /// Handler cycle budget per tick.
    pub handler_cycles_per_step: u64,
    /// Per-port fair-share quota (the mitigation), if any.
    pub port_quota_per_step: Option<u32>,
    /// Runs the same traffic against the historical *inline* slow path
    /// instead of the bounded pipeline (the bench's baseline row; the
    /// queue/budget/quota knobs are ignored).
    pub inline_baseline: bool,
    /// Whether the flood runs at all (false = the benign baseline the
    /// immunity matrix's retained ratios are computed against).
    pub attack: bool,
    /// Which dataplane architecture the node runs.
    pub backend: BackendKind,
    /// Fast-path CPU budget (generous by default — the bottleneck under
    /// study is the handler pipeline, not the megaflow walk).
    pub cpu_cycles_per_sec: u64,
}

impl Default for UpcallSaturationParams {
    fn default() -> Self {
        UpcallSaturationParams {
            duration: SimTime::from_secs(6),
            victim_start: SimTime::from_secs(1),
            victim_pps: 2_000.0,
            attack_bandwidth_bps: 10e6, // ≈19.5 kpps of 64-B frames
            flow_limit: 2_048,
            queue_capacity: 64,
            handler_cycles_per_step: 400_000, // ≈13 upcalls/ms
            port_quota_per_step: None,
            inline_baseline: false,
            attack: true,
            backend: BackendKind::OvsCache,
            cpu_cycles_per_sec: SimConfig::default().cpu_cycles_per_sec,
        }
    }
}

/// Source/node indices of the built saturation scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpcallSaturationHandles {
    /// The victim churn source.
    pub victim_source: usize,
    /// The attacker flood source.
    pub attack_source: usize,
    /// The single simulated node.
    pub node: usize,
    /// The victim pod's vport (its upcall queue id).
    pub victim_vport: u32,
}

/// Builds the handler-saturation experiment: one node whose bounded
/// upcall pipeline is the resource under attack. An attacker pod's
/// client sprays never-before-seen destinations
/// ([`AttackSchedule::upcall_flood`]) — every packet upcalls, the flood
/// fills the megaflow table to its limit within the first second and
/// keeps the shared unroutable queue pinned at capacity. The victim is
/// a connection-churn service ([`ChurnSource`]): its fresh flows find
/// the flow table full (installs refused), so every connection needs a
/// slow-path handler — which the flood has monopolised. Victim upcalls
/// tail-drop; the per-port fair-share quota
/// (`port_quota_per_step`) restores them.
pub fn upcall_saturation_scenario(
    params: &UpcallSaturationParams,
) -> (Simulation, UpcallSaturationHandles) {
    let cfg = SimConfig {
        duration: params.duration,
        cpu_cycles_per_sec: params.cpu_cycles_per_sec,
        ..SimConfig::default()
    };
    let pipeline = if params.inline_baseline {
        PipelineMode::Inline
    } else {
        PipelineMode::Bounded(UpcallPipelineConfig {
            queue_capacity: params.queue_capacity,
            handler_cycles_per_step: params.handler_cycles_per_step,
            port_quota_per_step: params.port_quota_per_step,
        })
    };
    let dp = DpConfig {
        flow_limit: params.flow_limit,
        pipeline,
        backend: params.backend,
        ..DpConfig::default()
    };
    let mut b = SimBuilder::new(cfg);
    let node = b.add_node(dp);

    let victim_ip = u32::from_be_bytes([10, 1, 0, 10]);
    let attacker_ip = u32::from_be_bytes([10, 1, 0, 66]);
    let victim_vport = b.add_pod(node, victim_ip);
    b.add_pod(node, attacker_ip);

    // Victim: short-lived connections from the cluster block, starting
    // once the flood owns the flow table.
    let victim_source = b.add_source(
        node,
        Box::new(
            ChurnSource::new(
                u32::from_be_bytes([10, 2, 0, 0]),
                victim_ip,
                5201,
                64,
                params.victim_pps,
            )
            .starting_at(params.victim_start)
            .named("victim"),
        ),
    );

    // Attacker: the paced destination spray. The benign baseline keeps
    // the source (so report vectors stay shaped the same) but starts it
    // past the end of the run.
    let attack_start = if params.attack {
        SimTime::ZERO
    } else {
        params.duration
    };
    let spec = AttackSpec::masks_512(pi_cms::PolicyDialect::Kubernetes);
    let attack_source = b.add_source(
        node,
        Box::new(
            AttackSchedule::new(
                CovertSequence::new(spec.build_target(attacker_ip)),
                params.attack_bandwidth_bps,
                attack_start,
            )
            .upcall_flood(),
        ),
    );

    (
        b.build(),
        UpcallSaturationHandles {
            victim_source,
            attack_source,
            node,
            victim_vport,
        },
    )
}

/// How the adaptive-defense scenario defends (or doesn't).
#[derive(Debug, Clone)]
pub enum DefenseMode {
    /// No defense at all — the starvation baseline.
    Undefended,
    /// The static mitigation: a per-port fair-share quota configured
    /// before the run (what `pi_mitigation::upcall_fair_share_config`
    /// encodes), always on.
    StaticFairShare(u32),
    /// The closed loop: a [`DefenseController`] per node that detects
    /// the onset and flips mitigations at runtime. Boxed: the
    /// controller tuning dwarfs the other variants.
    Adaptive(Box<ControllerConfig>),
}

impl DefenseMode {
    /// The adaptive mode with the given controller tuning.
    pub fn adaptive(cfg: ControllerConfig) -> Self {
        DefenseMode::Adaptive(Box::new(cfg))
    }
}

/// Parameters of the adaptive-defense scenario.
#[derive(Debug, Clone)]
pub struct AdaptiveDefenseParams {
    /// Run length.
    pub duration: SimTime,
    /// When the upcall flood begins. Everything before it is the
    /// benign phase the false-positive rate is judged on.
    pub attack_start: SimTime,
    /// Victim connection churn, new flows/second (starts with the
    /// attack, when the flood has the flow table pinned — the same
    /// arrangement as the `upcall_saturation` scenario).
    pub victim_pps: f64,
    /// Benign churn load during the whole run, new connections/second
    /// towards the background pod (its megaflow is cached, so this is
    /// fast-path churn — the detector must not alarm on it).
    pub benign_pps: f64,
    /// Attacker flood bandwidth, bits/second of 64-B frames.
    pub attack_bandwidth_bps: f64,
    /// Megaflow table limit (small: the flood exhausts it quickly).
    pub flow_limit: usize,
    /// Per-port upcall queue capacity.
    pub queue_capacity: usize,
    /// Handler cycle budget per tick.
    pub handler_cycles_per_step: u64,
    /// The defense under test.
    pub defense: DefenseMode,
    /// Which dataplane architecture the node runs.
    pub backend: BackendKind,
    /// Control-loop cadence (the `defense_interval` of the run).
    pub defense_interval: SimTime,
    /// Fast-path CPU budget.
    pub cpu_cycles_per_sec: u64,
    /// Seed for the background workload.
    pub seed: u64,
}

impl Default for AdaptiveDefenseParams {
    fn default() -> Self {
        AdaptiveDefenseParams {
            duration: SimTime::from_secs(12),
            attack_start: SimTime::from_secs(4),
            victim_pps: 2_000.0,
            benign_pps: 500.0,
            attack_bandwidth_bps: 10e6,
            flow_limit: 2_048,
            queue_capacity: 64,
            handler_cycles_per_step: 400_000,
            defense: DefenseMode::adaptive(ControllerConfig::default()),
            backend: BackendKind::OvsCache,
            defense_interval: SimTime::from_millis(100),
            cpu_cycles_per_sec: SimConfig::default().cpu_cycles_per_sec,
            seed: 2018,
        }
    }
}

/// Source/node indices of the built adaptive-defense scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveDefenseHandles {
    /// The victim churn source.
    pub victim_source: usize,
    /// The benign churn source (active from t = 0).
    pub benign_source: usize,
    /// The attacker flood source.
    pub attack_source: usize,
    /// The single simulated node.
    pub node: usize,
    /// The victim pod's vport.
    pub victim_vport: u32,
}

/// Builds the closed-loop defense experiment: one node under benign
/// churn from t = 0, hit by an `upcall_flood` destination spray at
/// `attack_start`. The flood fills the megaflow table and monopolises
/// the bounded slow path, so the victim's connection churn (starting
/// with the attack) tail-drops — unless a defense intervenes. The
/// three [`DefenseMode`]s make the static-vs-adaptive comparison:
/// time-to-detect and the benign-phase false-positive count come from
/// the report's [`pi_detect::DefenseReport`].
pub fn adaptive_defense_scenario(
    params: &AdaptiveDefenseParams,
) -> (Simulation, AdaptiveDefenseHandles) {
    let cfg = SimConfig {
        duration: params.duration,
        cpu_cycles_per_sec: params.cpu_cycles_per_sec,
        defense_interval: params.defense_interval,
        ..SimConfig::default()
    };
    let quota = match params.defense {
        DefenseMode::StaticFairShare(q) => Some(q),
        _ => None,
    };
    let dp = DpConfig {
        flow_limit: params.flow_limit,
        pipeline: PipelineMode::Bounded(UpcallPipelineConfig {
            queue_capacity: params.queue_capacity,
            handler_cycles_per_step: params.handler_cycles_per_step,
            port_quota_per_step: quota,
        }),
        backend: params.backend,
        ..DpConfig::default()
    };
    let mut b = SimBuilder::new(cfg);
    let node = b.add_node(dp);

    let victim_ip = u32::from_be_bytes([10, 1, 0, 10]);
    let benign_ip = u32::from_be_bytes([10, 1, 0, 20]);
    let attacker_ip = u32::from_be_bytes([10, 1, 0, 66]);
    let victim_vport = b.add_pod(node, victim_ip);
    b.add_pod(node, benign_ip);
    b.add_pod(node, attacker_ip);

    // Benign churn for the whole run: short-lived connections to the
    // background pod. Its dst-pinned megaflow caches after the first
    // packet, so this is sustained fast-path churn — EMC pressure and
    // packet rate without slow-path distress.
    let benign_source = b.add_source(
        node,
        Box::new(
            ChurnSource::new(
                u32::from_be_bytes([10, 3, 0, 0]),
                benign_ip,
                80,
                200,
                params.benign_pps,
            )
            .named("benign"),
        ),
    );

    // Victim churn from attack onset: the flood owns the flow table by
    // then, so every victim connection needs a slow-path handler.
    let victim_source = b.add_source(
        node,
        Box::new(
            ChurnSource::new(
                u32::from_be_bytes([10, 2, 0, 0]),
                victim_ip,
                5201,
                64,
                params.victim_pps,
            )
            .starting_at(params.attack_start)
            .named("victim"),
        ),
    );

    // The ACL-injection flood: the covert sequence of a 512-mask
    // Kubernetes injection, re-paced as a unique-destination spray.
    let spec = AttackSpec::masks_512(pi_cms::PolicyDialect::Kubernetes);
    let attack_source = b.add_source(
        node,
        Box::new(
            AttackSchedule::new(
                CovertSequence::new(spec.build_target(attacker_ip)),
                params.attack_bandwidth_bps,
                params.attack_start,
            )
            .upcall_flood(),
        ),
    );

    if let DefenseMode::Adaptive(ctrl) = &params.defense {
        b.attach_defense(node, DefenseController::new(**ctrl));
    }

    (
        b.build(),
        AdaptiveDefenseHandles {
            victim_source,
            benign_source,
            attack_source,
            node,
            victim_vport,
        },
    )
}

/// Parameters of the policy-churn (control-plane flush storm)
/// scenario.
#[derive(Debug, Clone)]
pub struct PolicyChurnParams {
    /// Run length.
    pub duration: SimTime,
    /// When the policy-flap train begins (everything before it is the
    /// benign phase).
    pub attack_start: SimTime,
    /// Whether the attacker flaps at all (false = the benign baseline:
    /// only routine control-plane churn).
    pub flap: bool,
    /// Interval between the attacker's ACL re-installs.
    pub flap_period: SimTime,
    /// Cache-invalidation scope of every policy update on the node
    /// ([`DpConfig::scoped_invalidation`]) — the ablation knob: global
    /// flushes are what give the flap its amplification.
    pub scoped_invalidation: bool,
    /// Whitelisted victim clients. Each client is a distinct /32 rule
    /// in the victim's ACL, so each owns a distinct megaflow — a full
    /// flush forces one slow-path rebuild *per client*.
    pub clients: usize,
    /// Victim aggregate rate, packets/second across all clients.
    pub victim_pps: f64,
    /// Victim frame size, bytes.
    pub victim_frame_bytes: usize,
    /// Cadence of the routine (benign) control-plane churn: an ACL
    /// install/remove alternation on the background pod. Present in
    /// every run so the flap rows are judged against live-but-sane
    /// control-plane activity, not silence.
    pub benign_update_period: SimTime,
    /// CMS → switch propagation delay of the benign updates.
    pub benign_propagation_delay: SimTime,
    /// Datapath CPU budget, cycles/second.
    pub cpu_cycles_per_sec: u64,
    /// Datapath configuration (scoped_invalidation is overridden by
    /// the field above).
    pub dp: DpConfig,
    /// Optional closed-loop defense (the policy-churn detector's
    /// integration point).
    pub defense: Option<ControllerConfig>,
}

impl Default for PolicyChurnParams {
    fn default() -> Self {
        PolicyChurnParams {
            duration: SimTime::from_secs(10),
            attack_start: SimTime::from_secs(2),
            flap: true,
            flap_period: SimTime::from_millis(20),
            scoped_invalidation: false,
            clients: 512,
            victim_pps: 40_000.0,
            victim_frame_bytes: 400,
            benign_update_period: SimTime::from_secs(1),
            benign_propagation_delay: SimTime::from_millis(50),
            cpu_cycles_per_sec: SimConfig::default().cpu_cycles_per_sec,
            dp: DpConfig::default(),
            defense: None,
        }
    }
}

/// Source/node indices of the built policy-churn scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolicyChurnHandles {
    /// The victim fan source.
    pub victim_source: usize,
    /// The single simulated node.
    pub node: usize,
    /// The victim pod's IP.
    pub victim_ip: u32,
    /// The attacker pod's IP (the flapped ACL's target).
    pub attacker_ip: u32,
}

/// Builds the policy-churn experiment: one node hosting a victim
/// service (an ACL whitelisting `clients` individual /32 peers, each
/// peer a live flow) and a co-located attacker pod. The attacker sends
/// **zero packets**; its entire attack is the control plane —
/// [`AttackSchedule::policy_flap`] re-installs the attacker's own ACL
/// every `flap_period`, and under global-flush invalidation every
/// re-install wipes the victim's per-client megaflows and the whole
/// EMC. The victim pays one slow-path rebuild per client per flap (an
/// upcall plus a linear scan of its own whitelist), which exhausts the
/// shared cycle budget; every flush is also charged its own teardown
/// cost ([`pi_datapath::CostModel::control_update_cycles`]). Routine
/// benign churn (install/remove on a background pod once a second,
/// with a CMS propagation delay) runs in every configuration so the
/// baseline is live control-plane activity, not silence. The
/// scoped-invalidation ablation confines each update's eviction to the
/// updated destination, which is what restores the victim.
pub fn policy_churn_scenario(params: &PolicyChurnParams) -> (Simulation, PolicyChurnHandles) {
    let cfg = SimConfig {
        duration: params.duration,
        cpu_cycles_per_sec: params.cpu_cycles_per_sec,
        ..SimConfig::default()
    };
    let dp = DpConfig {
        scoped_invalidation: params.scoped_invalidation,
        ..params.dp.clone()
    };
    let mut b = SimBuilder::new(cfg);
    let node = b.add_node(dp);

    let victim_ip = u32::from_be_bytes([10, 1, 0, 10]);
    let attacker_ip = u32::from_be_bytes([10, 1, 0, 66]);
    let background_ip = u32::from_be_bytes([10, 1, 0, 20]);
    b.add_pod(node, victim_ip);
    b.add_pod(node, attacker_ip);
    b.add_pod(node, background_ip);

    // The victim's microsegmentation: one /32 whitelist entry per
    // client peer — realistic for a service with a pinned client set,
    // and the reason a global flush costs one rebuild per client.
    assert!(params.clients > 0 && params.clients <= 65_536);
    let client_ip = |i: usize| [10, 2, (i >> 8) as u8, (i & 0xff) as u8];
    let victim_policy = NetworkPolicy {
        name: "victim-peers".into(),
        ingress: vec![IngressRule {
            from: (0..params.clients)
                .map(|i| Cidr::host(client_ip(i)))
                .collect(),
            ports: vec![(Protocol::Tcp, Some(5201))],
        }],
    };
    b.install_acl(victim_ip, PolicyCompiler.compile_k8s(&victim_policy));

    // The victim's standing traffic: every whitelisted client sends
    // continuously (round-robin fan at the aggregate rate).
    let victim_keys: Vec<FlowKey> = (0..params.clients)
        .map(|i| {
            FlowKey::tcp(
                client_ip(i),
                victim_ip.to_be_bytes(),
                40_000 + (i % 16_000) as u16,
                5201,
            )
        })
        .collect();
    let victim_source = b.add_source(
        node,
        Box::new(
            FanSource::new(victim_keys, params.victim_frame_bytes, params.victim_pps)
                .named("victim"),
        ),
    );

    // The attacker's own, innocuous-looking ACL — installed once at
    // build like any tenant policy...
    let attacker_policy = NetworkPolicy {
        name: "attacker-web".into(),
        ingress: vec![IngressRule {
            from: vec![Cidr::new(u32::from_be_bytes([10, 0, 0, 0]), 8).unwrap()],
            ports: vec![(Protocol::Tcp, Some(8080))],
        }],
    };
    let attacker_table = PolicyCompiler.compile_k8s(&attacker_policy);
    b.install_acl(attacker_ip, attacker_table.clone());

    // ...and then re-installed ad nauseam: the policy-flap train.
    if params.flap {
        b.attach_control_plane(
            node,
            AttackSchedule::policy_flap(
                attacker_ip,
                &attacker_table,
                params.attack_start,
                params.duration,
                params.flap_period,
            ),
        );
    }

    // Routine churn: operations installs/removes an ACL on the
    // background pod once per period, with CMS propagation delay.
    let bg_table = PolicyCompiler.compile_k8s(&NetworkPolicy {
        name: "background".into(),
        ingress: vec![IngressRule {
            from: vec![Cidr::new(u32::from_be_bytes([10, 0, 0, 0]), 8).unwrap()],
            ports: vec![(Protocol::Tcp, None)],
        }],
    });
    let mut benign =
        ControlPlaneProgram::new().with_propagation_delay(params.benign_propagation_delay);
    let mut at = params.benign_update_period;
    let mut install = true;
    while at < params.duration {
        if install {
            benign.install_acl(at, background_ip, bg_table.clone());
        } else {
            benign.remove_acl(at, background_ip);
        }
        install = !install;
        at += params.benign_update_period;
    }
    b.attach_control_plane(node, benign);

    if let Some(ctrl) = &params.defense {
        b.attach_defense(node, DefenseController::new(*ctrl));
    }

    (
        b.build(),
        PolicyChurnHandles {
            victim_source,
            node,
            victim_ip,
            attacker_ip,
        },
    )
}

/// Which attack runs alongside the crash/recovery window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashRecoveryAttack {
    /// No attack: the pure fault/recovery baseline.
    None,
    /// The control-plane flap train, timed to start at the crash: every
    /// re-install competes with the recovery's own control-plane work
    /// for the same cycle budget.
    PolicyFlap,
    /// The unique-destination upcall spray from the crash instant: the
    /// post-restart cold cache must refill through a monopolised slow
    /// path.
    UpcallFlood,
}

impl CrashRecoveryAttack {
    /// Stable row label for reports.
    pub fn name(self) -> &'static str {
        match self {
            CrashRecoveryAttack::None => "none",
            CrashRecoveryAttack::PolicyFlap => "policy_flap",
            CrashRecoveryAttack::UpcallFlood => "upcall_flood",
        }
    }
}

/// Parameters of the crash-recovery scenario.
#[derive(Debug, Clone)]
pub struct CrashRecoveryParams {
    /// Run length.
    pub duration: SimTime,
    /// When the CMS program installs the victim's ACL (it is also
    /// installed at build, so the prober is denied from t = 0; the
    /// program copy is what reconciliation's desired state replays).
    pub acl_install_at: SimTime,
    /// When the unauthorized prober starts (after the ACL landed, so
    /// every delivered prober packet is a wrong verdict).
    pub prober_start: SimTime,
    /// Whether the switch crashes at all (false = the never-crashed
    /// baseline the verdicts are compared against).
    pub crash: bool,
    /// When the switch process dies.
    pub crash_at: SimTime,
    /// Blackout before the restart completes.
    pub down_for: SimTime,
    /// The attack riding the recovery window.
    pub attack: CrashRecoveryAttack,
    /// Interval of the flap train's re-installs.
    pub flap_period: SimTime,
    /// Upcall-flood bandwidth, bits/second of 64-B frames.
    pub attack_bandwidth_bps: f64,
    /// `Some` = the CMS sends through the at-least-once layer (acks +
    /// retry + reconciliation); `None` = fire-and-forget delivery, the
    /// vulnerable baseline.
    pub reliable: Option<ReliabilityConfig>,
    /// CMS→switch channel fault model (drops/duplicates/delay), if any.
    pub channel: Option<ChannelFaultConfig>,
    /// Whitelisted victim clients (each a /32 rule and a live flow).
    pub clients: usize,
    /// Victim aggregate rate, packets/second across all clients.
    pub victim_pps: f64,
    /// Victim frame size, bytes.
    pub victim_frame_bytes: usize,
    /// Unauthorized prober rate, packets/second.
    pub prober_pps: f64,
    /// Which dataplane architecture the node runs.
    pub backend: BackendKind,
    /// Datapath CPU budget, cycles/second.
    pub cpu_cycles_per_sec: u64,
}

impl Default for CrashRecoveryParams {
    fn default() -> Self {
        CrashRecoveryParams {
            duration: SimTime::from_secs(12),
            acl_install_at: SimTime::from_millis(500),
            prober_start: SimTime::from_secs(1),
            crash: true,
            crash_at: SimTime::from_secs(4),
            down_for: SimTime::from_millis(200),
            attack: CrashRecoveryAttack::PolicyFlap,
            flap_period: SimTime::from_millis(20),
            attack_bandwidth_bps: 10e6,
            reliable: None,
            channel: None,
            clients: 256,
            victim_pps: 20_000.0,
            victim_frame_bytes: 400,
            prober_pps: 1_000.0,
            backend: BackendKind::OvsCache,
            cpu_cycles_per_sec: SimConfig::default().cpu_cycles_per_sec,
        }
    }
}

/// Source/node indices of the built crash-recovery scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashRecoveryHandles {
    /// The victim fan source.
    pub victim_source: usize,
    /// The unauthorized prober — every packet of it the switch
    /// *delivers* is a wrong verdict (a vanished deny rule).
    pub prober_source: usize,
    /// The upcall-flood source, when that attack is selected.
    pub attack_source: Option<usize>,
    /// The single simulated node.
    pub node: usize,
    /// The victim pod's IP.
    pub victim_ip: u32,
    /// The attacker pod's IP.
    pub attacker_ip: u32,
}

/// Builds the crash-recovery experiment: one node hosting a victim
/// service behind a client-whitelist ACL, an unauthorized prober
/// hammering that service, and a switch crash mid-run. The crash wipes
/// every installed ACL (the datapath restarts permissive, as OVS does
/// until the controller re-pushes flows), so the prober's packets —
/// denied from t = 0 — suddenly *deliver*: each one is a wrong verdict,
/// a security hole the report makes countable. Under fire-and-forget
/// control (`reliable: None`) the hole stays open for the rest of the
/// run: the install was consumed long ago and nothing ever re-sends it.
/// The at-least-once layer closes it — reconciliation diffs desired
/// against installed state and re-pushes the ACL within a bounded
/// window. The headline cell rides an attack on the recovery:
/// [`CrashRecoveryAttack::PolicyFlap`] floods the control plane with
/// re-installs from the crash instant, so the recovery's own updates
/// compete with the attack's for the same budget.
pub fn crash_recovery_scenario(params: &CrashRecoveryParams) -> (Simulation, CrashRecoveryHandles) {
    let cfg = SimConfig {
        duration: params.duration,
        cpu_cycles_per_sec: params.cpu_cycles_per_sec,
        ..SimConfig::default()
    };
    // Scoped invalidation throughout: PR 5 settled that ablation — here
    // the subject is recovery, so the flap must not win by global
    // flushes alone. The flood variant needs the bounded slow path to
    // have something to monopolise.
    let pipeline = match params.attack {
        CrashRecoveryAttack::UpcallFlood => PipelineMode::Bounded(UpcallPipelineConfig {
            queue_capacity: 64,
            handler_cycles_per_step: 400_000,
            port_quota_per_step: None,
        }),
        _ => PipelineMode::Inline,
    };
    let dp = DpConfig {
        scoped_invalidation: true,
        pipeline,
        backend: params.backend,
        ..DpConfig::default()
    };
    let mut b = SimBuilder::new(cfg);
    let node = b.add_node(dp);

    let victim_ip = u32::from_be_bytes([10, 1, 0, 10]);
    let attacker_ip = u32::from_be_bytes([10, 1, 0, 66]);
    b.add_pod(node, victim_ip);
    b.add_pod(node, attacker_ip);

    // The victim's microsegmentation: one /32 whitelist entry per
    // client peer.
    assert!(params.clients > 0 && params.clients <= 65_536);
    let client_ip = |i: usize| [10, 2, (i >> 8) as u8, (i & 0xff) as u8];
    let victim_policy = NetworkPolicy {
        name: "victim-peers".into(),
        ingress: vec![IngressRule {
            from: (0..params.clients)
                .map(|i| Cidr::host(client_ip(i)))
                .collect(),
            ports: vec![(Protocol::Tcp, Some(5201))],
        }],
    };
    let victim_table = PolicyCompiler.compile_k8s(&victim_policy);
    b.install_acl(victim_ip, victim_table.clone());

    // Whitelisted clients, sending for the whole run.
    let victim_keys: Vec<FlowKey> = (0..params.clients)
        .map(|i| {
            FlowKey::tcp(
                client_ip(i),
                victim_ip.to_be_bytes(),
                40_000 + (i % 16_000) as u16,
                5201,
            )
        })
        .collect();
    let victim_source = b.add_source(
        node,
        Box::new(
            FanSource::new(victim_keys, params.victim_frame_bytes, params.victim_pps)
                .named("victim"),
        ),
    );

    // The unauthorized prober: a peer outside the whitelist, starting
    // after the ACL landed. In a healthy run its delivered count is
    // exactly zero.
    let prober_keys = vec![FlowKey::tcp(
        [10, 9, 0, 1],
        victim_ip.to_be_bytes(),
        40_000,
        5201,
    )];
    let prober_source = b.add_source(
        node,
        Box::new(
            FanSource::new(prober_keys, 64, params.prober_pps)
                .starting_at(params.prober_start)
                .named("prober"),
        ),
    );

    // The attacker's own innocuous ACL, installed at build like any
    // tenant policy.
    let attacker_policy = NetworkPolicy {
        name: "attacker-web".into(),
        ingress: vec![IngressRule {
            from: vec![Cidr::new(u32::from_be_bytes([10, 0, 0, 0]), 8).unwrap()],
            ports: vec![(Protocol::Tcp, Some(8080))],
        }],
    };
    let attacker_table = PolicyCompiler.compile_k8s(&attacker_policy);
    b.install_acl(attacker_ip, attacker_table.clone());

    // Everything the CMS sends travels one path: the victim's program
    // install, and — for the flap attack — the attacker's re-install
    // train (the CMS retries tenants' updates indiscriminately).
    let mut program = ControlPlaneProgram::new();
    program.install_acl(params.acl_install_at, victim_ip, victim_table);
    // The attacker's ACL is desired state too: were it absent from the
    // program, reconciliation would strip the build-time install as
    // unknown (and, under the flap, oscillate against the re-install
    // train).
    program.install_acl(params.acl_install_at, attacker_ip, attacker_table.clone());
    if params.attack == CrashRecoveryAttack::PolicyFlap {
        program.merge(AttackSchedule::policy_flap(
            attacker_ip,
            &attacker_table,
            params.crash_at,
            params.duration,
            params.flap_period,
        ));
    }
    match &params.reliable {
        Some(rcfg) => b.attach_reliable_control_plane(node, program, *rcfg),
        None => b.attach_control_plane(node, program),
    }

    // The upcall-flood variant sprays from the crash instant.
    let attack_source = (params.attack == CrashRecoveryAttack::UpcallFlood).then(|| {
        let spec = AttackSpec::masks_512(pi_cms::PolicyDialect::Kubernetes);
        b.add_source(
            node,
            Box::new(
                AttackSchedule::new(
                    CovertSequence::new(spec.build_target(attacker_ip)),
                    params.attack_bandwidth_bps,
                    params.crash_at,
                )
                .upcall_flood(),
            ),
        )
    });

    // The fault program: the crash, plus the channel fault model the
    // reliable layer (if any) sends through.
    let mut faults = FaultSchedule::new();
    if params.crash {
        faults = faults.crash(params.crash_at, params.down_for);
    }
    if let Some(ch) = params.channel {
        faults = faults.channel(ch);
    }
    if !faults.is_empty() {
        b.attach_faults(node, faults);
    }

    (
        b.build(),
        CrashRecoveryHandles {
            victim_source,
            prober_source,
            attack_source,
            node,
            victim_ip,
            attacker_ip,
        },
    )
}

/// Peak-capacity measurement (E3/E4): how many packets/second one
/// datapath core sustains as a function of the injected mask count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapacityReport {
    /// Megaflow masks present during the measurement.
    pub masks: usize,
    /// Mean cycles per packet of the probe workload.
    pub avg_cycles: f64,
    /// Sustainable packets/second at the configured CPU budget.
    pub capacity_pps: f64,
}

impl CapacityReport {
    /// Capacity expressed as Gb/s of MTU-sized frames.
    pub fn capacity_gbps(&self, frame_bytes: usize) -> f64 {
        self.capacity_pps * frame_bytes as f64 * 8.0 / 1e9
    }
}

/// Measures fast-path capacity before and after populating the masks of
/// `spec`, using the same EMC-missing probe workload for both (unique
/// covert "scan" packets). Returns `(baseline, attacked)`.
pub fn measure_capacity(
    dp: DpConfig,
    cpu_cycles_per_sec: u64,
    spec: &AttackSpec,
    samples: u64,
) -> (CapacityReport, CapacityReport) {
    let attacker_pod_ip = u32::from_be_bytes([10, 1, 0, 66]);
    let seq = CovertSequence::new(spec.build_target(attacker_pod_ip));

    // Subtable walk order is creation order, so baseline and attacked
    // states must be built the way the attack builds them: a fresh
    // switch each, with the populate pass (which creates the scan
    // stream's full mask *last*) run only on the attacked one.
    let build_switch = || {
        let mut sw = VSwitch::new(dp.clone());
        sw.attach_pod(attacker_pod_ip, 1);
        let table = match spec.build_policy() {
            pi_attack::MaliciousAcl::K8s(p) => PolicyCompiler.compile_k8s(&p),
            pi_attack::MaliciousAcl::OpenStack(p) => PolicyCompiler.compile_security_group(&p),
            pi_attack::MaliciousAcl::Calico(p) => PolicyCompiler.compile_calico(&p),
        };
        sw.install_acl(attacker_pod_ip, table);
        sw
    };
    let measure = |sw: &mut VSwitch| -> CapacityReport {
        // Warm the scan megaflow so the measurement is pure fast path.
        sw.process(&seq.scan_packet(0), SimTime::from_secs(1));
        let before = sw.stats();
        for n in 0..samples {
            sw.process(&seq.scan_packet(1 + n), SimTime::from_secs(1));
        }
        let after = sw.stats();
        let avg = (after.cycles - before.cycles) as f64 / samples as f64;
        CapacityReport {
            masks: sw.mask_count(),
            avg_cycles: avg,
            capacity_pps: cpu_cycles_per_sec as f64 / avg,
        }
    };

    let mut baseline_sw = build_switch();
    let baseline = measure(&mut baseline_sw);

    let mut attacked_sw = build_switch();
    for (i, pkt) in seq.populate_packets().enumerate() {
        attacked_sw.process(&pkt, SimTime::from_secs(2) + SimTime::from_millis(i as u64));
    }
    let attacked = measure(&mut attacked_sw);
    (baseline, attacked)
}

/// What the victim side of [`measure_backend_capacity`] looks like on
/// the wire — the two workloads probe different cache tiers, so the
/// immunity matrix reports both.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CapacityWorkload {
    /// One established, cache-resident flow (steady iperf traffic): the
    /// measurement shows whether the covert stream can evict the
    /// victim's first-level cached state (EMC collision churn on the
    /// OVS pipeline, FIFO replacement on the bounded offload table).
    CachedFlow,
    /// A fresh connection per sample (a service accepting clients): the
    /// measurement shows what a cache-missing packet costs, which is
    /// where the tuple-space explosion lands — the paper's E3/E4
    /// EMC-missing probe methodology.
    ConnectionSetup,
}

impl CapacityWorkload {
    /// Stable row label for reports.
    pub fn name(self) -> &'static str {
        match self {
            CapacityWorkload::CachedFlow => "cached_flow",
            CapacityWorkload::ConnectionSetup => "connection_setup",
        }
    }
}

/// Backend-generic retained-capacity measurement: how many victim
/// packets/second the architecture selected by `dp.backend` sustains
/// with and without a tuple-space-explosion covert stream running
/// alongside. Unlike [`measure_capacity`] (which probes the attacked
/// *state* with the attack stream itself), this measures a distinct
/// victim workload under a *sustained* interleaved attack —
/// `covert_per_victim` never-before-seen covert packets between
/// consecutive victim samples — so backends whose weakness is
/// replacement churn (bounded offload tables) are exercised, not just
/// backends whose weakness is lookup cost. Returns
/// `(baseline, attacked)`; the immunity-matrix cell is their ratio.
pub fn measure_backend_capacity(
    dp: DpConfig,
    cpu_cycles_per_sec: u64,
    spec: &AttackSpec,
    workload: CapacityWorkload,
    victim_samples: u64,
    covert_per_victim: u64,
) -> (CapacityReport, CapacityReport) {
    let victim_ip = u32::from_be_bytes([10, 1, 0, 10]);
    let attacker_pod_ip = u32::from_be_bytes([10, 1, 0, 66]);
    let seq = CovertSequence::new(spec.build_target(attacker_pod_ip));

    // The victim's flows: one pinned key for the established workload,
    // a fresh source port per sample for connection setup. Its ACL is
    // the legitimate fig3 microsegmentation (cluster block → iperf
    // port), so every architecture classifies the same ground truth.
    let victim_key = |sample: u64| {
        let tp_src = match workload {
            CapacityWorkload::CachedFlow => 40_000,
            CapacityWorkload::ConnectionSetup => 1_024 + (sample % 60_000) as u16,
        };
        FlowKey::tcp(
            std::net::Ipv4Addr::from(u32::from_be_bytes([10, 0, 0, 10])),
            std::net::Ipv4Addr::from(victim_ip),
            tp_src,
            5201,
        )
    };

    let build = || -> Box<dyn DataplaneBackend> {
        let mut be = build_backend(dp.clone(), CostModel::default());
        be.attach_pod(victim_ip, 1);
        be.attach_pod(attacker_pod_ip, 2);
        let victim_policy = NetworkPolicy {
            name: "victim-iperf".into(),
            ingress: vec![IngressRule {
                from: vec![Cidr::new(u32::from_be_bytes([10, 0, 0, 0]), 8).unwrap()],
                ports: vec![(Protocol::Tcp, Some(5201))],
            }],
        };
        be.install_acl(victim_ip, PolicyCompiler.compile_k8s(&victim_policy));
        let table = match spec.build_policy() {
            pi_attack::MaliciousAcl::K8s(p) => PolicyCompiler.compile_k8s(&p),
            pi_attack::MaliciousAcl::OpenStack(p) => PolicyCompiler.compile_security_group(&p),
            pi_attack::MaliciousAcl::Calico(p) => PolicyCompiler.compile_calico(&p),
        };
        be.install_acl(attacker_pod_ip, table);
        be
    };

    // One measured run: per sample, `covert` covert packets (each a
    // never-before-seen flow) and then one victim packet whose cycles
    // are the sample. The clock advances a microsecond per packet so
    // revalidation runs at its real cadence without idling anyone out.
    let measure = |be: &mut dyn DataplaneBackend, covert: u64| -> CapacityReport {
        let mut now = SimTime::from_secs(10);
        let tick = SimTime::from_micros(1);
        // Establish the victim's cached state before measuring.
        pi_backend::process_one(be, &victim_key(0), now);
        be.drain_upcalls(now, &mut |_| {});
        let mut covert_n = 1u64; // 0 warmed the attacked state's scan mask
        let mut victim_cycles = 0u64;
        for sample in 0..victim_samples {
            for _ in 0..covert {
                now += tick;
                be.process_batch(&[seq.scan_packet(covert_n)], now, &mut |_, _| true);
                covert_n += 1;
            }
            be.drain_upcalls(now, &mut |_| {});
            now += tick;
            let out = pi_backend::process_one(be, &victim_key(sample), now);
            victim_cycles += out.cycles;
            be.revalidate(now);
        }
        let avg = victim_cycles as f64 / victim_samples as f64;
        CapacityReport {
            masks: be.mask_count(),
            avg_cycles: avg,
            capacity_pps: cpu_cycles_per_sec as f64 / avg,
        }
    };

    let mut baseline_be = build();
    let baseline = measure(&mut *baseline_be, 0);

    // The injection: populate the policy's flow space (on the OVS
    // pipeline this is what creates the mask explosion), then measure
    // under the sustained covert interleave.
    let mut attacked_be = build();
    for (i, pkt) in seq.populate_packets().enumerate() {
        attacked_be.process_batch(
            &[pkt],
            SimTime::from_secs(2) + SimTime::from_micros(i as u64),
            &mut |_, _| true,
        );
    }
    attacked_be.process_batch(&[seq.scan_packet(0)], SimTime::from_secs(9), &mut |_, _| {
        true
    });
    let attacked = measure(&mut *attacked_be, covert_per_victim);
    (baseline, attacked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_cms::PolicyDialect;

    #[test]
    fn capacity_collapses_with_masks() {
        let spec = AttackSpec::masks_512(PolicyDialect::Kubernetes);
        let (base, attacked) = measure_capacity(DpConfig::default(), 1_200_000_000, &spec, 2_000);
        assert!(base.masks <= 2, "baseline masks = {}", base.masks);
        // The baseline scan's full-exact mask is itself one of the 512,
        // so populate adds exactly the remaining 511.
        assert_eq!(attacked.masks, 512);
        let ratio = attacked.capacity_pps / base.capacity_pps;
        assert!(
            ratio < 0.05,
            "512 masks must slash capacity: ratio = {ratio:.4} \
             (base {:.0} pps, attacked {:.0} pps)",
            base.capacity_pps,
            attacked.capacity_pps
        );
    }

    #[test]
    fn upcall_saturation_starves_then_quota_restores() {
        let run = |quota: Option<u32>| {
            let params = UpcallSaturationParams {
                duration: SimTime::from_secs(4),
                port_quota_per_step: quota,
                ..Default::default()
            };
            let (sim, handles) = upcall_saturation_scenario(&params);
            let report = sim.run();
            let victim = report.source_totals[handles.victim_source].clone();
            let up = report.upcall_stats[handles.node];
            (victim, up)
        };
        let (victim, up) = run(None);
        assert!(
            victim.dropped_upcall > victim.delivered,
            "saturated handlers drop most victim connections: {victim:?}"
        );
        assert!(up.queue_drops > 0);
        assert!(up.mean_wait_steps() > 0.0, "install latency visible");

        let (victim, _) = run(Some(8));
        let offered = victim.generated;
        assert!(
            victim.dropped_upcall * 100 <= offered,
            "fair share restores the victim to <1% drops: {victim:?}"
        );
        assert!(victim.delivered * 10 >= offered * 9, "≥90% delivered");
    }

    #[test]
    fn adaptive_defense_detects_and_restores_the_victim() {
        let run = |defense: DefenseMode| {
            let params = AdaptiveDefenseParams {
                duration: SimTime::from_secs(6),
                attack_start: SimTime::from_secs(2),
                defense,
                ..Default::default()
            };
            let (sim, handles) = adaptive_defense_scenario(&params);
            (sim.run(), handles)
        };

        // Undefended: the flood starves the victim's flow setups.
        let (report, h) = run(DefenseMode::Undefended);
        let victim = &report.source_totals[h.victim_source];
        assert!(
            victim.dropped_upcall > victim.delivered,
            "undefended victim must starve: {victim:?}"
        );
        assert!(report.defense[h.node].is_none());

        // Adaptive: detection within a second of onset, then recovery.
        let (report, h) = run(DefenseMode::adaptive(ControllerConfig::default()));
        let victim = &report.source_totals[h.victim_source];
        let defense = report.defense[h.node].as_ref().expect("controller");
        let detect = defense.first_detection().expect("attack detected");
        assert!(detect >= SimTime::from_secs(2), "no benign-phase detection");
        assert!(
            detect <= SimTime::from_secs(3),
            "detection within 1 s of onset, got {detect:?}"
        );
        assert!(defense.first_mitigation().is_some());
        assert_eq!(defense.activations, 1, "one clean activation");
        // All detections and activations happened after the onset: the
        // benign phase is false-positive-free.
        assert!(defense
            .detections
            .iter()
            .all(|e| e.at >= SimTime::from_secs(2)));
        // Post-mitigation recovery: the victim's delivered fraction
        // beats the undefended run by an order of magnitude.
        assert!(
            victim.delivered * 10 >= victim.generated * 8,
            "quota restores most victim connections: {victim:?}"
        );
        // The benign source never suffered either way.
        let benign = &report.source_totals[h.benign_source];
        assert_eq!(benign.dropped_upcall, 0);
    }

    #[test]
    fn policy_flap_collapses_the_victim_and_scoped_invalidation_restores_it() {
        let run = |flap: bool, scoped: bool| {
            let params = PolicyChurnParams {
                duration: SimTime::from_secs(4),
                attack_start: SimTime::from_secs(1),
                flap,
                scoped_invalidation: scoped,
                ..Default::default()
            };
            let (sim, handles) = policy_churn_scenario(&params);
            let report = sim.run();
            let victim = report.source_totals[handles.victim_source].clone();
            let stats = report.switch_stats[handles.node];
            (victim, stats)
        };

        // Benign: routine churn costs next to nothing.
        let (benign, benign_stats) = run(false, false);
        assert!(
            benign.delivered * 100 >= benign.generated * 99,
            "benign churn must not hurt the victim: {benign:?}"
        );
        assert!(benign_stats.policy_updates > 0, "benign churn is live");

        // Flap + global flush: the victim collapses with zero attack
        // packets on the wire.
        let (flapped, flap_stats) = run(true, false);
        assert!(
            flapped.delivered * 2 < benign.delivered,
            "policy flap must collapse the victim: {flapped:?} vs benign {benign:?}"
        );
        assert!(
            flap_stats.cache_flushes > 100,
            "the flap is a flush storm: {flap_stats:?}"
        );
        assert!(flap_stats.control_cycles > 0, "flushes are not free");

        // Scoped invalidation: same flap, victim's megaflows survive.
        let (scoped, scoped_stats) = run(true, true);
        assert!(
            scoped.delivered * 100 >= scoped.generated * 95,
            "scoped invalidation must restore the victim: {scoped:?}"
        );
        assert!(
            scoped_stats.cache_flushes > 100,
            "the flap still churns — it just stops amplifying"
        );
    }

    #[test]
    fn policy_flap_is_detected_as_policy_churn() {
        use pi_detect::Signal;
        let params = PolicyChurnParams {
            duration: SimTime::from_secs(4),
            attack_start: SimTime::from_secs(2),
            defense: Some(ControllerConfig::default()),
            ..Default::default()
        };
        let (sim, handles) = policy_churn_scenario(&params);
        let report = sim.run();
        let defense = report.defense[handles.node].as_ref().expect("controller");
        let churn_edges: Vec<_> = defense
            .detections
            .iter()
            .filter(|e| e.signal == Signal::PolicyChurn)
            .collect();
        assert!(!churn_edges.is_empty(), "flap must raise PolicyChurn");
        assert!(
            churn_edges.iter().all(|e| e.at >= params.attack_start),
            "benign-phase churn must not alarm: {churn_edges:?}"
        );
    }

    #[test]
    fn crash_opens_a_verdict_hole_and_reliable_delivery_closes_it() {
        let run = |crash: bool, reliable: Option<ReliabilityConfig>| {
            let params = CrashRecoveryParams {
                duration: SimTime::from_secs(8),
                crash_at: SimTime::from_secs(3),
                crash,
                reliable,
                ..Default::default()
            };
            let (sim, h) = crash_recovery_scenario(&params);
            (sim.run(), h)
        };

        // Never crashed: the deny rule holds for the whole run.
        let (report, h) = run(false, None);
        assert_eq!(
            report.source_totals[h.prober_source].delivered, 0,
            "healthy run has zero wrong verdicts"
        );
        assert!(report.faults[h.node].is_none(), "no fault program");

        // Crash + fire-and-forget: the install was consumed long ago,
        // nothing re-sends it — the hole stays open to the end.
        let (report, h) = run(true, None);
        let wrong_off = report.source_totals[h.prober_source].delivered;
        assert!(wrong_off > 3_000, "hole stays open: {wrong_off}");
        let faults = report.faults[h.node].as_ref().expect("fault report");
        assert_eq!(faults.crashes, 1);
        assert!(faults.acls_lost >= 2, "victim + attacker ACLs wiped");

        // Crash + at-least-once: reconciliation re-pushes the ACL
        // within a bounded window, even with the flap riding recovery.
        let (report, h) = run(true, Some(ReliabilityConfig::default()));
        let wrong_on = report.source_totals[h.prober_source].delivered;
        assert!(
            wrong_on < wrong_off / 5,
            "reconciliation bounds the hole: {wrong_on} vs {wrong_off}"
        );
        let faults = report.faults[h.node].as_ref().expect("fault report");
        assert!(faults.channel.reconcile_pushes >= 1);
        assert!(faults.recovery_ticks > 0, "a recovery episode closed");
        assert!(
            faults.recovery_ticks <= 1_500,
            "bounded convergence: {} ticks",
            faults.recovery_ticks
        );
        // The victim's own traffic rides out the blackout in the queue.
        let victim = &report.source_totals[h.victim_source];
        assert!(
            victim.delivered * 10 >= victim.generated * 9,
            "victim retains ≥90%: {victim:?}"
        );
    }

    #[test]
    fn backend_capacity_matrix_cells() {
        let spec = AttackSpec::masks_512(PolicyDialect::Kubernetes);
        let cell = |backend: BackendKind, workload: CapacityWorkload| {
            let dp = DpConfig {
                backend,
                ..DpConfig::default()
            };
            let (base, attacked) =
                measure_backend_capacity(dp, 1_200_000_000, &spec, workload, 500, 8);
            attacked.capacity_pps / base.capacity_pps
        };
        // Connection setup is where the mask explosion lands: the OVS
        // pipeline collapses, the exact-match pipeline is immune.
        let ovs = cell(BackendKind::OvsCache, CapacityWorkload::ConnectionSetup);
        assert!(ovs < 0.2, "OvsCache must collapse: retained = {ovs:.3}");
        let exact = cell(BackendKind::ExactHash, CapacityWorkload::ConnectionSetup);
        assert!(exact >= 0.9, "ExactHash must retain ≥0.9: {exact:.3}");
        let lpm = cell(BackendKind::LpmTier, CapacityWorkload::ConnectionSetup);
        assert!(lpm >= 0.9, "LpmTier is cacheless: {lpm:.3}");
        // The bounded offload table's weakness is replacement churn on
        // established flows: partial degradation, not collapse.
        let nic = cell(BackendKind::NicOffload, CapacityWorkload::CachedFlow);
        assert!(nic < 0.9, "NicOffload pays host fallback: {nic:.3}");
        assert!(nic > 0.1, "NicOffload degrades, not collapses: {nic:.3}");
    }

    #[test]
    fn upcall_flood_immunity_depends_on_backend() {
        let run = |backend: BackendKind| {
            let params = UpcallSaturationParams {
                duration: SimTime::from_secs(3),
                backend,
                ..Default::default()
            };
            let (sim, handles) = upcall_saturation_scenario(&params);
            let report = sim.run();
            report.source_totals[handles.victim_source].clone()
        };
        let ovs = run(BackendKind::OvsCache);
        assert!(
            ovs.dropped_upcall > ovs.delivered,
            "bounded OVS handlers starve the victim: {ovs:?}"
        );
        let exact = run(BackendKind::ExactHash);
        assert!(
            exact.delivered * 10 >= exact.generated * 9,
            "the inline exact-match pipeline has no handler to saturate: {exact:?}"
        );
    }

    #[test]
    fn short_fig3_smoke() {
        // A 3-second slice of the scenario builds and runs.
        let params = Fig3Params {
            duration: SimTime::from_secs(3),
            attack_start: SimTime::from_secs(1),
            ..Default::default()
        };
        let (sim, handles) = fig3_scenario(&params);
        let report = sim.run();
        assert_eq!(report.throughput_bps.len(), 3);
        assert!(report.source_totals[handles.victim_source].delivered > 0);
        // Attack started at 1 s: masks on the server node must explode.
        let masks = report.masks[handles.attacked_node].last().unwrap().1;
        assert!(masks > 4_000.0, "masks = {masks}");
    }
}
