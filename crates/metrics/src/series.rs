//! Sampled time series.

use pi_core::SimTime;

/// A named `(time, value)` series.
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    name: String,
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// An empty series.
    pub fn new(name: &str) -> Self {
        TimeSeries {
            name: name.to_string(),
            points: Vec::new(),
        }
    }

    /// The series name (CSV column header).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a sample. Samples should be pushed in time order; this is
    /// checked in debug builds.
    pub fn push(&mut self, t: SimTime, v: f64) {
        debug_assert!(
            self.points.last().map(|(lt, _)| *lt <= t).unwrap_or(true),
            "samples must be time-ordered"
        );
        self.points.push((t, v));
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Iterates `(time, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.points.iter().copied()
    }

    /// The values only.
    pub fn values(&self) -> impl Iterator<Item = f64> + '_ {
        self.points.iter().map(|(_, v)| *v)
    }

    /// Last value, if any.
    pub fn last(&self) -> Option<(SimTime, f64)> {
        self.points.last().copied()
    }

    /// Mean over all samples (0 for an empty series).
    pub fn mean(&self) -> f64 {
        if self.points.is_empty() {
            0.0
        } else {
            self.values().sum::<f64>() / self.points.len() as f64
        }
    }

    /// Mean over samples with `from <= t < to`.
    pub fn mean_between(&self, from: SimTime, to: SimTime) -> f64 {
        let vals: Vec<f64> = self
            .points
            .iter()
            .filter(|(t, _)| *t >= from && *t < to)
            .map(|(_, v)| *v)
            .collect();
        if vals.is_empty() {
            0.0
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        }
    }

    /// Maximum value (NaN-free input assumed; 0 for empty).
    pub fn max(&self) -> f64 {
        self.values().fold(0.0, f64::max)
    }

    /// Minimum value (0 for empty).
    pub fn min(&self) -> f64 {
        if self.points.is_empty() {
            0.0
        } else {
            self.values().fold(f64::INFINITY, f64::min)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> TimeSeries {
        let mut s = TimeSeries::new("throughput");
        for i in 0..10u64 {
            s.push(SimTime::from_secs(i), i as f64);
        }
        s
    }

    #[test]
    fn push_and_read_back() {
        let s = series();
        assert_eq!(s.len(), 10);
        assert_eq!(s.name(), "throughput");
        assert_eq!(s.last(), Some((SimTime::from_secs(9), 9.0)));
        assert!(!s.is_empty());
    }

    #[test]
    fn statistics() {
        let s = series();
        assert_eq!(s.mean(), 4.5);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.min(), 0.0);
    }

    #[test]
    fn windowed_mean() {
        let s = series();
        // Samples at t = 2, 3, 4 → mean 3.
        assert_eq!(
            s.mean_between(SimTime::from_secs(2), SimTime::from_secs(5)),
            3.0
        );
        // Empty window.
        assert_eq!(
            s.mean_between(SimTime::from_secs(100), SimTime::from_secs(200)),
            0.0
        );
    }

    #[test]
    fn empty_series_is_calm() {
        let s = TimeSeries::new("x");
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.last(), None);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "time-ordered")]
    fn out_of_order_push_panics_in_debug() {
        let mut s = TimeSeries::new("x");
        s.push(SimTime::from_secs(5), 1.0);
        s.push(SimTime::from_secs(1), 2.0);
    }
}
