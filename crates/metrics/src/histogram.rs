//! Log-bucketed histograms (per-packet cycle costs, probe counts…).

/// A base-2 log-bucketed histogram of `u64` samples.
///
/// Bucket `i` holds samples in `[2^i, 2^(i+1))`; bucket 0 also holds 0.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; 64],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: [0; 64],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records a sample.
    pub fn record(&mut self, v: u64) {
        let b = if v == 0 {
            0
        } else {
            63 - v.leading_zeros() as usize
        };
        self.buckets[b] += 1;
        self.count += 1;
        self.sum += v;
        self.max = self.max.max(v);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate quantile: the upper bound of the bucket where the
    /// q-quantile falls. `q` in `[0, 1]`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank.max(1) {
                return 1u64 << (i + 1).min(63);
            }
        }
        self.max
    }

    /// Non-empty buckets as `(lower_bound, count)`.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, n)| **n > 0)
            .map(|(i, n)| (if i == 0 { 0 } else { 1u64 << i }, *n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_stats() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 3, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - (1106.0 / 6.0)).abs() < 1e-9);
    }

    #[test]
    fn quantiles_are_bucket_bounded() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(10);
        }
        h.record(100_000);
        // p50 lands in the bucket of 10 ([8,16)) → upper bound 16.
        assert_eq!(h.quantile(0.5), 16);
        // p100 reaches the big sample's bucket.
        assert!(h.quantile(1.0) >= 100_000 / 2);
    }

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.99), 0);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn buckets_cover_powers_of_two() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(7);
        h.record(8);
        let buckets = h.nonzero_buckets();
        // 0 and 1 share bucket 0; 7 in [4,8); 8 in [8,16).
        assert_eq!(buckets, vec![(0, 2), (4, 1), (8, 1)]);
    }
}
