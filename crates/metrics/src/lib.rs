//! # pi-metrics — measurement toolkit
//!
//! Dependency-free counters, time series, histograms, summaries, CSV
//! export and terminal plotting. Every experiment binary in `pi-bench`
//! reports through these types, so the output formats are uniform and
//! the figures are regenerable as CSV + ASCII art.

pub mod agg;
pub mod csv;
pub mod histogram;
pub mod plot;
pub mod series;
pub mod summary;

pub use agg::{degradation_ratio, sum_series};
pub use csv::CsvTable;
pub use histogram::Histogram;
pub use plot::ascii_plot;
pub use series::TimeSeries;
pub use summary::Summary;
