//! Cross-series aggregation for fleet-scale reports.
//!
//! A cluster run produces one series per source and per host; blast
//! radius and scaling analyses need them combined: pointwise sums
//! (aggregate delivered throughput) and before/after degradation
//! ratios around an attack start time.

use pi_core::SimTime;

use crate::series::TimeSeries;

/// Pointwise sum of sampled series, aligned by sample index (every
/// series produced by one run shares the sampling clock). The result
/// takes its timestamps from the longest input; shorter inputs
/// contribute zero beyond their end.
pub fn sum_series(name: &str, series: &[&TimeSeries]) -> TimeSeries {
    let mut out = TimeSeries::new(name);
    let Some(longest) = series.iter().max_by_key(|s| s.len()) else {
        return out;
    };
    let mut totals = vec![0.0f64; longest.len()];
    for s in series {
        for (i, v) in s.values().enumerate() {
            totals[i] += v;
        }
    }
    for ((t, _), total) in longest.iter().zip(totals) {
        out.push(t, total);
    }
    out
}

/// Throughput retained across `split`: mean after / mean before.
///
/// 1.0 means unaffected, 0.05 means the series collapsed to 5 % of its
/// pre-split level. Returns `None` when either window is empty or the
/// pre-split mean is not positive (nothing to degrade).
pub fn degradation_ratio(series: &TimeSeries, split: SimTime) -> Option<f64> {
    let end = series.last()?.0;
    if split >= end {
        return None;
    }
    let before = series.mean_between(SimTime::ZERO, split);
    let after = series.mean_between(split, end + SimTime::from_nanos(1));
    if before <= 0.0 || before.is_nan() {
        return None;
    }
    Some(after / before)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(name: &str, values: &[f64]) -> TimeSeries {
        let mut s = TimeSeries::new(name);
        for (i, v) in values.iter().enumerate() {
            s.push(SimTime::from_secs(i as u64 + 1), *v);
        }
        s
    }

    #[test]
    fn sum_aligns_by_index_and_pads_short_inputs() {
        let a = series("a", &[1.0, 2.0, 3.0]);
        let b = series("b", &[10.0, 20.0]);
        let sum = sum_series("total", &[&a, &b]);
        assert_eq!(sum.name(), "total");
        let vals: Vec<f64> = sum.values().collect();
        assert_eq!(vals, vec![11.0, 22.0, 3.0]);
        // Timestamps come from the longest input.
        assert_eq!(sum.last().unwrap().0, SimTime::from_secs(3));
    }

    #[test]
    fn sum_of_nothing_is_empty() {
        assert!(sum_series("empty", &[]).is_empty());
    }

    #[test]
    fn degradation_ratio_measures_collapse() {
        let s = series("victim", &[100.0, 100.0, 100.0, 10.0, 10.0, 10.0]);
        let r = degradation_ratio(&s, SimTime::from_secs(4)).unwrap();
        assert!((r - 0.1).abs() < 1e-9, "ratio {r}");
    }

    #[test]
    fn degradation_ratio_edge_cases() {
        let flat = series("flat", &[5.0, 5.0, 5.0, 5.0]);
        let r = degradation_ratio(&flat, SimTime::from_secs(2)).unwrap();
        assert!((r - 1.0).abs() < 1e-9);
        // Split beyond the data, zero baseline, empty series → None.
        assert!(degradation_ratio(&flat, SimTime::from_secs(99)).is_none());
        let zero = series("zero", &[0.0, 0.0, 0.0]);
        assert!(degradation_ratio(&zero, SimTime::from_secs(1)).is_none());
        assert!(degradation_ratio(&TimeSeries::new("e"), SimTime::ZERO).is_none());
    }
}
