//! Terminal plotting — the bench binaries render each paper figure as
//! ASCII art next to its CSV, so `cargo run -p pi-bench --bin
//! fig3_timeseries` visually reproduces Fig. 3 in the terminal.

use crate::series::TimeSeries;

/// Renders one or two series as an ASCII line plot.
///
/// The first series uses `*`, the second `o` (overlap `#`). Each series
/// is scaled to its own [min, max] so differently-dimensioned series
/// (Gb/s vs mask counts) share the canvas like Fig. 3's dual axes.
pub fn ascii_plot(series: &[&TimeSeries], width: usize, height: usize) -> String {
    assert!(!series.is_empty() && series.len() <= 2, "1 or 2 series");
    assert!(width >= 16 && height >= 4, "canvas too small");
    let glyphs = ['*', 'o'];
    let mut canvas = vec![vec![' '; width]; height];

    let t_max = series
        .iter()
        .filter_map(|s| s.last().map(|(t, _)| t.as_secs_f64()))
        .fold(0.0, f64::max)
        .max(1e-9);

    for (si, s) in series.iter().enumerate() {
        if s.is_empty() {
            continue;
        }
        let (vmin, vmax) = (s.min(), s.max());
        let span = (vmax - vmin).max(1e-12);
        for (t, v) in s.iter() {
            let x = ((t.as_secs_f64() / t_max) * (width - 1) as f64).round() as usize;
            let y_norm = (v - vmin) / span;
            let y = height - 1 - (y_norm * (height - 1) as f64).round() as usize;
            let cell = &mut canvas[y.min(height - 1)][x.min(width - 1)];
            *cell = if *cell == ' ' || *cell == glyphs[si] {
                glyphs[si]
            } else {
                '#'
            };
        }
    }

    let mut out = String::new();
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!(
            "{} {}: [{:.3} .. {:.3}]\n",
            glyphs[si],
            s.name(),
            s.min(),
            s.max()
        ));
    }
    for row in canvas {
        out.push('|');
        out.extend(row);
        out.push('\n');
    }
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&format!(
        "  0 s{:>width$.1$} s\n",
        t_max,
        1,
        width = width - 4
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_core::SimTime;

    fn ramp(name: &str, n: u64) -> TimeSeries {
        let mut s = TimeSeries::new(name);
        for i in 0..n {
            s.push(SimTime::from_secs(i), i as f64);
        }
        s
    }

    #[test]
    fn plot_contains_glyphs_and_legend() {
        let a = ramp("victim", 50);
        let txt = ascii_plot(&[&a], 40, 10);
        assert!(txt.contains('*'));
        assert!(txt.contains("victim"));
        assert!(txt.lines().count() > 10);
    }

    #[test]
    fn two_series_use_distinct_glyphs() {
        let a = ramp("up", 50);
        let mut b = TimeSeries::new("down");
        for i in 0..50u64 {
            b.push(SimTime::from_secs(i), 49.0 - i as f64);
        }
        let txt = ascii_plot(&[&a, &b], 40, 10);
        assert!(txt.contains('*'));
        assert!(txt.contains('o'));
    }

    #[test]
    fn monotone_series_hits_corners() {
        let a = ramp("r", 100);
        let txt = ascii_plot(&[&a], 30, 8);
        let rows: Vec<&str> = txt.lines().filter(|l| l.starts_with('|')).collect();
        assert_eq!(rows.len(), 8);
        // Increasing ramp: top row has a point near the right edge,
        // bottom row near the left edge.
        assert!(rows[0].trim_end().ends_with('*'));
        assert!(rows[7][1..3].contains('*'));
    }

    #[test]
    #[should_panic(expected = "canvas")]
    fn tiny_canvas_panics() {
        ascii_plot(&[&ramp("x", 5)], 5, 2);
    }
}
