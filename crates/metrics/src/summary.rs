//! One-shot descriptive statistics.

/// Descriptive statistics of a value set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample count.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Median (linear interpolation).
    pub p50: f64,
    /// 99th percentile (linear interpolation).
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarises `values` (empty input gives all-zero stats).
    pub fn of(values: &[f64]) -> Summary {
        if values.is_empty() {
            return Summary {
                count: 0,
                mean: 0.0,
                min: 0.0,
                p50: 0.0,
                p99: 0.0,
                max: 0.0,
            };
        }
        let mut sorted: Vec<f64> = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in summary input"));
        let pct = |q: f64| -> f64 {
            let idx = q * (sorted.len() - 1) as f64;
            let lo = idx.floor() as usize;
            let hi = idx.ceil() as usize;
            let frac = idx - lo as f64;
            sorted[lo] * (1.0 - frac) + sorted[hi] * frac
        };
        Summary {
            count: sorted.len(),
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
            min: sorted[0],
            p50: pct(0.50),
            p99: pct(0.99),
            max: *sorted.last().unwrap(),
        }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.2} min={:.2} p50={:.2} p99={:.2} max={:.2}",
            self.count, self.mean, self.min, self.p50, self.p99, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_statistics() {
        let s = Summary::of(&[4.0, 1.0, 3.0, 2.0, 5.0]);
        assert_eq!(s.count, 5);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.p50, 3.0);
        assert_eq!(s.max, 5.0);
    }

    #[test]
    fn percentile_interpolates() {
        let s = Summary::of(&[0.0, 10.0]);
        assert_eq!(s.p50, 5.0);
        assert!((s.p99 - 9.9).abs() < 1e-9);
    }

    #[test]
    fn empty_input() {
        let s = Summary::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn single_value() {
        let s = Summary::of(&[7.0]);
        assert_eq!(s.p50, 7.0);
        assert_eq!(s.p99, 7.0);
        assert_eq!(s.min, 7.0);
        assert_eq!(s.max, 7.0);
    }

    #[test]
    fn display_is_compact() {
        let s = Summary::of(&[1.0, 2.0]);
        let txt = s.to_string();
        assert!(txt.contains("n=2"));
        assert!(txt.contains("mean=1.50"));
    }
}
