//! CSV export for experiment results.

use std::io::Write;
use std::path::Path;

use crate::series::TimeSeries;

/// An in-memory table with CSV (and aligned-text) rendering.
#[derive(Debug, Clone)]
pub struct CsvTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl CsvTable {
    /// A table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        CsvTable {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn push_row(&mut self, cells: &[String]) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells.to_vec());
    }

    /// Convenience for numeric rows.
    pub fn push_numeric_row(&mut self, cells: &[f64]) {
        self.push_row(
            &cells
                .iter()
                .map(|v| {
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        format!("{}", *v as i64)
                    } else {
                        format!("{v:.4}")
                    }
                })
                .collect::<Vec<_>>(),
        );
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Builds a table from aligned time series (shared time column).
    /// Series are sampled by index: all series must have equal length.
    pub fn from_series(series: &[&TimeSeries]) -> Self {
        assert!(!series.is_empty(), "need at least one series");
        let n = series[0].len();
        assert!(
            series.iter().all(|s| s.len() == n),
            "series must be aligned"
        );
        let mut headers = vec!["time_s".to_string()];
        headers.extend(series.iter().map(|s| s.name().to_string()));
        let mut table = CsvTable {
            headers,
            rows: Vec::new(),
        };
        let columns: Vec<Vec<(pi_core::SimTime, f64)>> =
            series.iter().map(|s| s.iter().collect()).collect();
        for i in 0..n {
            let mut row = vec![format!("{:.3}", columns[0][i].0.as_secs_f64())];
            for col in &columns {
                row.push(format!("{:.6}", col[i].1));
            }
            table.rows.push(row);
        }
        table
    }

    /// Renders as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Writes CSV to a file.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_csv().as_bytes())
    }

    /// Renders as an aligned text table for terminal output.
    pub fn to_aligned_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let render_row = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = render_row(&self.headers);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi_core::SimTime;

    #[test]
    fn csv_round_trip_shape() {
        let mut t = CsvTable::new(&["masks", "throughput"]);
        t.push_numeric_row(&[512.0, 0.104]);
        t.push_numeric_row(&[8192.0, 0.0071]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "masks,throughput");
        assert_eq!(lines[1], "512,0.1040");
        assert_eq!(lines.len(), 3);
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = CsvTable::new(&["a", "b"]);
        t.push_row(&["only one".to_string()]);
    }

    #[test]
    fn from_series_aligns_columns() {
        let mut a = TimeSeries::new("victim_gbps");
        let mut b = TimeSeries::new("masks");
        for i in 0..5u64 {
            a.push(SimTime::from_secs(i), 1.0 - i as f64 * 0.1);
            b.push(SimTime::from_secs(i), (i * 100) as f64);
        }
        let t = CsvTable::from_series(&[&a, &b]);
        let csv = t.to_csv();
        assert!(csv.starts_with("time_s,victim_gbps,masks\n"));
        assert_eq!(csv.lines().count(), 6);
        assert!(csv.contains("4.000,0.600000,400.000000"));
    }

    #[test]
    fn aligned_text_is_padded() {
        let mut t = CsvTable::new(&["x", "value"]);
        t.push_row(&["1".into(), "2".into()]);
        let txt = t.to_aligned_text();
        let lines: Vec<&str> = txt.lines().collect();
        assert_eq!(lines[0].len(), lines[2].len());
        assert!(lines[1].starts_with('-'));
    }

    #[test]
    fn write_csv_creates_file() {
        let dir = std::env::temp_dir().join("pi_metrics_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.csv");
        let mut t = CsvTable::new(&["a"]);
        t.push_numeric_row(&[1.0]);
        t.write_csv(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "a\n1\n");
        std::fs::remove_file(path).ok();
    }
}
