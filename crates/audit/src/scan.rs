//! Whole-workspace scan: every member's sources through
//! [`crate::rules::scan_file`] plus the manifest `lints` check,
//! aggregated into per-crate per-rule counts for the ratchet.

use std::fs;
use std::io;
use std::path::Path;

use crate::baseline::Counts;
use crate::rules::{scan_file, Violation, ALL_RULES};
use crate::walk::{check_lints, members, source_files};

/// Everything one scan produced.
#[derive(Debug, Clone)]
pub struct ScanResult {
    /// All unwaived violations, in (file, line) order.
    pub violations: Vec<Violation>,
    /// Per-crate per-rule counts (every member × every rule present,
    /// zeros included, so ratchet drift sees removals too).
    pub counts: Counts,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl ScanResult {
    /// Total unwaived violations.
    pub fn total(&self) -> usize {
        self.violations.len()
    }

    /// The violations inside one `(crate, rule)` cell.
    pub fn cell(&self, krate: &str, rule: &str) -> Vec<&Violation> {
        self.violations
            .iter()
            .filter(|v| v.krate == krate && v.rule == rule)
            .collect()
    }
}

/// Scans the workspace rooted at `root`.
pub fn scan_workspace(root: &Path) -> io::Result<ScanResult> {
    let members = members(root)?;
    let mut violations: Vec<Violation> = Vec::new();
    let mut counts = Counts::new();
    for m in &members {
        let rules = counts.entry(m.name.clone()).or_default();
        for rule in ALL_RULES {
            rules.insert(rule.to_string(), 0);
        }
    }
    // Root-manifest lints findings land on the pseudo-crate
    // `workspace`.
    let rules = counts.entry("workspace".to_string()).or_default();
    for rule in ALL_RULES {
        rules.insert(rule.to_string(), 0);
    }

    let mut files_scanned = 0usize;
    for m in &members {
        for sf in source_files(root, m)? {
            let src = fs::read_to_string(&sf.abs_path)?;
            files_scanned += 1;
            violations.extend(scan_file(&sf.krate, &sf.rel_path, sf.class, &src));
        }
    }
    violations.extend(check_lints(root, &members)?);

    for v in &violations {
        *counts
            .entry(v.krate.clone())
            .or_default()
            .entry(v.rule.to_string())
            .or_insert(0) += 1;
    }
    violations.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(ScanResult {
        violations,
        counts,
        files_scanned,
    })
}
