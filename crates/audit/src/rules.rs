//! The four-plus-one rule families and the per-file scanner.
//!
//! Every rule is a token-level pattern over the [`crate::lexer`] code
//! shadow, so comments and string literals can never trigger it. Rules
//! are waivable through the directive grammar; waivers without reasons
//! and waivers that match nothing are themselves violations (rule
//! `directive`), so the escape hatch stays auditable.
//!
//! | rule id | invariant |
//! |---|---|
//! | `determinism` | no wall clocks or seeded-by-the-OS hashing anywhere; no `HashMap`/`HashSet` in order-sensitive modules (engines, reports, exporters) where iteration order could leak into output |
//! | `hotpath` | regions annotated `// audit: hotpath` never allocate (`Vec::new`, `vec![`, `format!`, `String::`, `Box::new`, `.collect()`, `.to_vec()`) |
//! | `panics` | library code does not `unwrap()` / `expect(` / `panic!` (tests, benches, examples and binaries are exempt); burn-down is ratcheted via `audit_baseline.json` |
//! | `cost` | every `DataplaneBackend` impl file references `CostModel` charging in its packet/control ops |
//! | `lints` | every workspace crate opts into `[workspace.lints]` (checked in [`crate::walk`]) |
//! | `directive` | the waiver grammar itself: malformed, unknown-rule, or unused waivers |

use crate::lexer::{lex, DirectiveKind};

/// Rule identifiers, as used in waivers and the baseline file.
pub const RULE_DETERMINISM: &str = "determinism";
/// Hot-path allocation rule id.
pub const RULE_HOTPATH: &str = "hotpath";
/// Panic-surface rule id.
pub const RULE_PANICS: &str = "panics";
/// Cost-accounting rule id.
pub const RULE_COST: &str = "cost";
/// Workspace-lints opt-in rule id.
pub const RULE_LINTS: &str = "lints";
/// Directive-grammar rule id (malformed/unknown/unused waivers).
pub const RULE_DIRECTIVE: &str = "directive";

/// All rule ids, in table order.
pub const ALL_RULES: [&str; 6] = [
    RULE_DETERMINISM,
    RULE_HOTPATH,
    RULE_PANICS,
    RULE_COST,
    RULE_LINTS,
    RULE_DIRECTIVE,
];

/// Wall-clock / OS-seeded-hash tokens forbidden everywhere.
const DETERMINISM_TOKENS: [&str; 5] = [
    "Instant",
    "SystemTime",
    "RandomState",
    "DefaultHasher",
    "thread_rng",
];

/// File basenames whose iteration order can reach a report or an
/// exported artefact; `HashMap`/`HashSet` are forbidden there.
const ORDER_SENSITIVE_BASENAMES: [&str; 11] = [
    "engine", "node", "shard", "report", "export", "json", "csv", "summary", "dump", "plot", "agg",
];

/// Allocation tokens forbidden inside `// audit: hotpath` regions.
const HOTPATH_TOKENS: [&str; 8] = [
    "Vec::new",
    "vec![",
    "format!",
    "String::",
    "Box::new",
    ".collect(",
    ".collect::<",
    ".to_vec(",
];

/// Panic tokens forbidden in library code.
const PANIC_TOKENS: [&str; 3] = [".unwrap()", ".expect(", "panic!"];

/// Evidence that a backend impl charges the shared cost model: the
/// pricing methods and price-field vocabulary of
/// `pi_datapath::CostModel`.
const COST_TOKENS: [&str; 14] = [
    "packet_cycles",
    "path_cycles",
    "control_update_cycles",
    "handler_cycles",
    "acl_update_fixed",
    "flush_per_entry",
    "restart_fixed",
    "mfc_install",
    "upcall_fixed",
    "per_rule",
    "per_subtable",
    "per_stage_hash",
    "emc_probe",
    "emc_insert",
];

/// How a file participates in its crate — decides which rules apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Library source (`src/` outside `src/bin/`): all rules apply.
    Lib,
    /// Binary target (`src/bin/` or `src/main.rs`): panic rule exempt.
    Bin,
    /// Integration test (`tests/`): panic + order rules exempt.
    Test,
    /// Example (`examples/`): panic + order rules exempt.
    Example,
    /// Bench target (`benches/`): panic + order rules exempt.
    Bench,
}

/// One rule violation at a source location.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Workspace crate the file belongs to.
    pub krate: String,
    /// Path relative to the workspace root.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule id (one of [`ALL_RULES`]).
    pub rule: &'static str,
    /// Human message naming the offending token.
    pub message: String,
}

/// Scans one file's source text and returns unwaived violations.
pub fn scan_file(krate: &str, rel_path: &str, class: FileClass, src: &str) -> Vec<Violation> {
    let lexed = lex(src);
    let lines: Vec<&str> = lexed.code.lines().collect();
    let test_regions = cfg_test_regions(&lines);
    let hotpath_regions = hotpath_regions(&lexed, &lines);
    let basename = rel_path
        .rsplit('/')
        .next()
        .unwrap_or(rel_path)
        .trim_end_matches(".rs");
    let order_sensitive = class == FileClass::Lib && ORDER_SENSITIVE_BASENAMES.contains(&basename);

    let mut raw: Vec<Violation> = Vec::new();
    let mut push = |line: u32, rule: &'static str, message: String| {
        raw.push(Violation {
            krate: krate.to_string(),
            file: rel_path.to_string(),
            line,
            rule,
            message,
        });
    };

    for (idx, code) in lines.iter().enumerate() {
        let line_no = idx as u32 + 1;
        let in_test = in_regions(&test_regions, line_no) || class == FileClass::Test;

        for tok in DETERMINISM_TOKENS {
            if contains_word(code, tok) {
                push(
                    line_no,
                    RULE_DETERMINISM,
                    format!("nondeterministic primitive `{tok}`"),
                );
            }
        }
        if order_sensitive && !in_test {
            for tok in ["HashMap", "HashSet"] {
                if contains_word(code, tok) {
                    push(
                        line_no,
                        RULE_DETERMINISM,
                        format!(
                            "`{tok}` in order-sensitive module `{basename}` \
                             (iteration order can reach a report)"
                        ),
                    );
                }
            }
        }
        if !in_test && in_regions(&hotpath_regions, line_no) {
            for tok in HOTPATH_TOKENS {
                if code.contains(tok) {
                    push(
                        line_no,
                        RULE_HOTPATH,
                        format!("allocation `{tok}` inside an `audit: hotpath` region"),
                    );
                }
            }
        }
        if class == FileClass::Lib && !in_test {
            for tok in PANIC_TOKENS {
                if code.contains(tok) {
                    push(
                        line_no,
                        RULE_PANICS,
                        format!("panic-surface `{tok}` in library code"),
                    );
                }
            }
        }
    }

    // Cost accounting: a DataplaneBackend impl file must show evidence
    // of CostModel charging somewhere in its code.
    if let Some(idx) = lines
        .iter()
        .position(|l| l.contains("impl DataplaneBackend for"))
    {
        let charges = lines
            .iter()
            .any(|l| COST_TOKENS.iter().any(|t| contains_word(l, t)));
        if !charges {
            push(
                idx as u32 + 1,
                RULE_COST,
                "`DataplaneBackend` impl never references CostModel charging \
                 (packet/control ops look free)"
                    .to_string(),
            );
        }
    }

    apply_waivers(&lexed, raw, krate, rel_path)
}

/// Applies file- and line-level waivers; unused, malformed or
/// unknown-rule waivers become `directive` violations.
fn apply_waivers(
    lexed: &crate::lexer::Lexed,
    raw: Vec<Violation>,
    krate: &str,
    rel_path: &str,
) -> Vec<Violation> {
    struct Waiver {
        line: u32,
        rule: String,
        file_level: bool,
        used: bool,
    }
    let mut waivers: Vec<Waiver> = Vec::new();
    let mut out: Vec<Violation> = Vec::new();
    for d in &lexed.directives {
        match &d.kind {
            DirectiveKind::Allow { rule, .. } | DirectiveKind::AllowFile { rule, .. } => {
                if !ALL_RULES.contains(&rule.as_str()) {
                    out.push(Violation {
                        krate: krate.to_string(),
                        file: rel_path.to_string(),
                        line: d.line,
                        rule: RULE_DIRECTIVE,
                        message: format!("waiver names unknown rule `{rule}`"),
                    });
                } else {
                    waivers.push(Waiver {
                        line: d.line,
                        rule: rule.clone(),
                        file_level: matches!(d.kind, DirectiveKind::AllowFile { .. }),
                        used: false,
                    });
                }
            }
            DirectiveKind::Malformed { text } => {
                out.push(Violation {
                    krate: krate.to_string(),
                    file: rel_path.to_string(),
                    line: d.line,
                    rule: RULE_DIRECTIVE,
                    message: format!(
                        "malformed audit directive `{text}` (waivers need `-- <reason>`)"
                    ),
                });
            }
            DirectiveKind::Hotpath => {}
        }
    }
    for v in raw {
        let waived = waivers.iter_mut().find(|w| {
            w.rule == v.rule && (w.file_level || w.line == v.line || w.line + 1 == v.line)
        });
        match waived {
            Some(w) => w.used = true,
            None => out.push(v),
        }
    }
    for w in &waivers {
        if !w.used {
            out.push(Violation {
                krate: krate.to_string(),
                file: rel_path.to_string(),
                line: w.line,
                rule: RULE_DIRECTIVE,
                message: format!(
                    "unused waiver for `{}` (nothing to waive — delete it)",
                    w.rule
                ),
            });
        }
    }
    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

/// Line ranges (1-based, inclusive) of `#[cfg(test)]`-gated blocks.
fn cfg_test_regions(lines: &[&str]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    for (idx, code) in lines.iter().enumerate() {
        if let Some(col) = code.find("#[cfg(test)]") {
            if let Some(region) = brace_region(lines, idx, col) {
                regions.push(region);
            }
        }
    }
    regions
}

/// Hot-path regions: each `audit: hotpath` directive covers the next
/// `fn` item's body (search window: 10 lines); with no `fn` nearby it
/// covers the whole file (module-level annotation).
fn hotpath_regions(lexed: &crate::lexer::Lexed, lines: &[&str]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    for d in &lexed.directives {
        if d.kind != DirectiveKind::Hotpath {
            continue;
        }
        let start_idx = d.line as usize; // directive line is 1-based; body starts below
        let fn_line =
            (start_idx..lines.len().min(start_idx + 10)).find(|&i| contains_word(lines[i], "fn"));
        match fn_line {
            Some(i) => {
                if let Some(region) = brace_region(lines, i, 0) {
                    regions.push(region);
                } else {
                    regions.push((i as u32 + 1, lines.len() as u32));
                }
            }
            None => regions.push((1, lines.len() as u32)),
        }
    }
    regions
}

/// Finds the `{ … }` block that starts at or after `(start_idx,
/// start_col)` and returns its inclusive 1-based line range.
fn brace_region(lines: &[&str], start_idx: usize, start_col: usize) -> Option<(u32, u32)> {
    let mut depth: i32 = 0;
    let mut opened = false;
    for (idx, code) in lines.iter().enumerate().skip(start_idx) {
        let code = if idx == start_idx {
            code.get(start_col..).unwrap_or("")
        } else {
            code
        };
        for c in code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    opened = true;
                }
                '}' => {
                    depth -= 1;
                    if opened && depth == 0 {
                        return Some((start_idx as u32 + 1, idx as u32 + 1));
                    }
                }
                // An item-ending semicolon before any brace means there
                // is no block (`mod tests;`).
                ';' if !opened && depth == 0 => return None,
                _ => {}
            }
        }
        // Attributes span a line; give up if no brace within 10 lines.
        if !opened && idx > start_idx + 10 {
            return None;
        }
    }
    None
}

fn in_regions(regions: &[(u32, u32)], line: u32) -> bool {
    regions.iter().any(|&(a, b)| line >= a && line <= b)
}

/// Word-boundary containment: `tok` not embedded in a larger
/// identifier (so `InstantLike` or `my_thread_rng2` never match).
fn contains_word(hay: &str, tok: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = hay[from..].find(tok) {
        let at = from + pos;
        let before_ok = at == 0
            || !hay[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = hay[at + tok.len()..].chars().next();
        let after_ok = !after.is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        from = at + tok.len().max(1);
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_boundaries() {
        assert!(contains_word("let t = Instant::now();", "Instant"));
        assert!(!contains_word("let t = InstantLike::now();", "Instant"));
        assert!(!contains_word("let t = my_Instant;", "Instant"));
        assert!(contains_word("use x::{Instant};", "Instant"));
    }

    #[test]
    fn cfg_test_region_detection() {
        let src = "pub fn f() { g().unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { h().unwrap(); }\n}\n";
        let v = scan_file("c", "crates/c/src/x.rs", FileClass::Lib, src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 1);
    }
}
