//! # pi-audit — the workspace invariant linter
//!
//! This repo's two crown jewels — bit-identical reports across worker
//! counts and an allocation-free hot path — were enforced only by
//! runtime tests, which can't see the *next* violation before it
//! lands. `pi_audit` makes them **checked properties of the source**:
//! a dependency-free static analyzer (no syn, no proc-macro, offline-
//! safe) that lexes every workspace `.rs` file ([`lexer`] strips
//! comments, strings and char literals so rules never fire on doc
//! text) and enforces:
//!
//! * **`determinism`** — no `Instant`/`SystemTime`/`RandomState`/
//!   `DefaultHasher`/`thread_rng` anywhere (the stopwatch in
//!   `pi_bench` carries an explicit waiver — wall clocks are its
//!   purpose), and no `HashMap`/`HashSet` in order-sensitive modules
//!   (engines, reports, exporters) where iteration order could leak
//!   into the byte-identical artefacts.
//! * **`hotpath`** — regions annotated `// audit: hotpath`
//!   (`process_batch`, the `FlatTable` probe paths, the trace ring
//!   record path, the upcall drain) reject `Vec::new`, `vec![`,
//!   `format!`, `String::`, `Box::new`, `.collect()`, `.to_vec()`.
//! * **`panics`** — no `unwrap()`/`expect(`/`panic!` in library code
//!   (tests, benches, examples, binaries exempt); the existing debt is
//!   a ratcheted burn-down via `audit_baseline.json` ([`baseline`]),
//!   not a flag day.
//! * **`cost`** — every `DataplaneBackend` impl file must reference
//!   `CostModel` charging, so a new backend cannot silently do free
//!   work.
//! * **`lints`** — every crate opts into `[workspace.lints]`
//!   (`unsafe_code = "forbid"` hoisted out of per-crate headers).
//!
//! Waiver grammar (reason mandatory, unused waivers are violations):
//!
//! ```text
//! // audit: allow(<rule>) -- <reason>        (this line or the next)
//! // audit: allow-file(<rule>) -- <reason>   (whole file)
//! ```
//!
//! The `pi_audit` binary prints the crate × rule table, emits a JSON
//! report, and `--check` exits nonzero on any new violation *or* any
//! stale ratchet entry (counts may only decrease, and the decrease
//! must be committed).

pub mod baseline;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod scan;
pub mod walk;

pub use baseline::{drift, Baseline, Counts, Drift};
pub use rules::{scan_file, FileClass, Violation};
pub use scan::{scan_workspace, ScanResult};
pub use walk::find_workspace_root;

/// Name of the ratchet file at the workspace root.
pub const BASELINE_FILE: &str = "audit_baseline.json";
