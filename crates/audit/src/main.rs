//! `pi_audit` — CLI for the workspace invariant linter.
//!
//! ```text
//! pi_audit                 scan, print the crate × rule table, exit 0
//! pi_audit --check         also ratchet against audit_baseline.json;
//!                          exit 1 on new violations or stale entries
//! pi_audit --write-baseline  regenerate the ratchet file
//! pi_audit --json <path>   also write the machine-readable report
//! pi_audit --list          print every unwaived violation
//! pi_audit --root <path>   scan an explicit workspace root
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use pi_audit::baseline::{drift, Baseline, Drift};
use pi_audit::report::{human_table, render_json, render_violation};
use pi_audit::scan::scan_workspace;
use pi_audit::walk::find_workspace_root;
use pi_audit::BASELINE_FILE;

fn main() -> ExitCode {
    let mut check = false;
    let mut write_baseline = false;
    let mut list = false;
    let mut json: Option<PathBuf> = None;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--write-baseline" => write_baseline = true,
            "--list" => list = true,
            "--json" => json = args.next().map(PathBuf::from),
            "--root" => root = args.next().map(PathBuf::from),
            other => {
                eprintln!("pi_audit: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    let cwd = match std::env::current_dir() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("pi_audit: cannot read cwd: {e}");
            return ExitCode::from(2);
        }
    };
    let Some(root) = root.or_else(|| find_workspace_root(&cwd)) else {
        eprintln!("pi_audit: no workspace root found above {}", cwd.display());
        return ExitCode::from(2);
    };

    let result = match scan_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("pi_audit: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    let baseline_path = root.join(BASELINE_FILE);
    if write_baseline {
        let body = Baseline::render(&result.counts);
        if let Err(e) = std::fs::write(&baseline_path, &body) {
            eprintln!("pi_audit: write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "pi_audit: wrote {} (total {})",
            baseline_path.display(),
            result.total()
        );
    }

    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match Baseline::parse(&text) {
            Ok(b) => Some(b),
            Err(e) => {
                eprintln!("pi_audit: {e}");
                return ExitCode::from(2);
            }
        },
        Err(_) => None,
    };

    println!(
        "pi_audit: {} files scanned, {} unwaived violations",
        result.files_scanned,
        result.total()
    );
    println!(
        "{}",
        human_table(
            &result.counts,
            baseline.as_ref().unwrap_or(&Baseline::default())
        )
    );

    if list {
        for v in &result.violations {
            println!("{}", render_violation(v));
        }
    }

    if let Some(path) = json {
        let body = render_json(&result, baseline.as_ref().map(Baseline::total));
        if let Err(e) = std::fs::write(&path, body) {
            eprintln!("pi_audit: write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("pi_audit: wrote {}", path.display());
    }

    if !check {
        return ExitCode::SUCCESS;
    }
    let Some(baseline) = baseline else {
        eprintln!(
            "pi_audit: {} missing — run `cargo run -p pi_audit -- --write-baseline`",
            baseline_path.display()
        );
        return ExitCode::from(2);
    };

    let drifts = drift(&result.counts, &baseline);
    if drifts.is_empty() {
        println!(
            "pi_audit: clean — all counts at their ratchet (baseline total {})",
            baseline.total()
        );
        return ExitCode::SUCCESS;
    }
    for d in &drifts {
        match d {
            Drift::Over {
                krate,
                rule,
                current,
                allowed,
            } => {
                eprintln!(
                    "pi_audit: REGRESSION {krate}/{rule}: {current} violations, ratchet allows {allowed}:"
                );
                for v in result.cell(krate, rule) {
                    eprintln!("  {}", render_violation(v));
                }
            }
            Drift::Stale {
                krate,
                rule,
                current,
                allowed,
            } => {
                eprintln!(
                    "pi_audit: STALE RATCHET {krate}/{rule}: {current} violations but baseline \
                     allows {allowed} — tighten it with `cargo run -p pi_audit -- --write-baseline`"
                );
            }
        }
    }
    ExitCode::FAILURE
}
