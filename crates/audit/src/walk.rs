//! Workspace discovery: member crates, their source files, and the
//! `[workspace.lints]` opt-in check (rule `lints`).
//!
//! Dependency-free on purpose — the walker reads the root `Cargo.toml`
//! members list and each member's manifest with a purpose-built string
//! scan (this workspace's manifests are plain; no TOML parser needed),
//! then enumerates `.rs` files under each member's `src/`, `tests/`,
//! `examples/` and `benches/` directories. Directories named
//! `fixtures` or `target` are skipped: fixture files *contain*
//! violations by design.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::rules::{FileClass, Violation, RULE_LINTS};

/// One workspace member.
#[derive(Debug, Clone)]
pub struct Member {
    /// Package name from the member's manifest (e.g. `pi_core`).
    pub name: String,
    /// Member directory relative to the workspace root (`""` for the
    /// root package itself).
    pub rel_dir: String,
}

/// A source file scheduled for scanning.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Owning crate name.
    pub krate: String,
    /// Path relative to the workspace root.
    pub rel_path: String,
    /// Absolute path on disk.
    pub abs_path: PathBuf,
    /// Classification deciding rule applicability.
    pub class: FileClass,
}

/// Walks up from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Parses the workspace members (plus the root package) from the root
/// manifest.
pub fn members(root: &Path) -> io::Result<Vec<Member>> {
    let manifest = fs::read_to_string(root.join("Cargo.toml"))?;
    let mut out = Vec::new();
    if let Some(name) = package_name(&manifest) {
        out.push(Member {
            name,
            rel_dir: String::new(),
        });
    }
    for rel in member_dirs(&manifest) {
        let member_manifest = fs::read_to_string(root.join(&rel).join("Cargo.toml"))?;
        let name = package_name(&member_manifest).unwrap_or_else(|| rel.clone());
        out.push(Member { name, rel_dir: rel });
    }
    Ok(out)
}

/// Extracts the quoted entries of `members = [ ... ]`.
fn member_dirs(manifest: &str) -> Vec<String> {
    let Some(start) = manifest.find("members") else {
        return Vec::new();
    };
    let Some(open) = manifest[start..].find('[') else {
        return Vec::new();
    };
    let Some(close) = manifest[start + open..].find(']') else {
        return Vec::new();
    };
    let body = &manifest[start + open + 1..start + open + close];
    body.split('"')
        .skip(1)
        .step_by(2)
        .map(str::to_string)
        .collect()
}

/// First `name = "…"` after `[package]`.
fn package_name(manifest: &str) -> Option<String> {
    let after = &manifest[manifest.find("[package]")?..];
    let line = after.lines().find(|l| l.trim_start().starts_with("name"))?;
    Some(line.split('"').nth(1)?.to_string())
}

/// Enumerates a member's source files with their [`FileClass`].
pub fn source_files(root: &Path, member: &Member) -> io::Result<Vec<SourceFile>> {
    let base = if member.rel_dir.is_empty() {
        root.to_path_buf()
    } else {
        root.join(&member.rel_dir)
    };
    let mut out = Vec::new();
    for (sub, class) in [
        ("src", FileClass::Lib),
        ("tests", FileClass::Test),
        ("examples", FileClass::Example),
        ("benches", FileClass::Bench),
    ] {
        let dir = base.join(sub);
        if dir.is_dir() {
            collect_rs(&dir, &mut |path| {
                let class = classify(path, sub, class);
                let rel_path = path
                    .strip_prefix(root)
                    .unwrap_or(path)
                    .to_string_lossy()
                    .replace('\\', "/");
                out.push(SourceFile {
                    krate: member.name.clone(),
                    rel_path,
                    abs_path: path.to_path_buf(),
                    class,
                });
            })?;
        }
    }
    Ok(out)
}

/// `src/bin/**` and `src/main.rs` are binary targets.
fn classify(path: &Path, sub: &str, default: FileClass) -> FileClass {
    if sub == "src" {
        let p = path.to_string_lossy();
        if p.contains("/bin/") || p.ends_with("/main.rs") {
            return FileClass::Bin;
        }
    }
    default
}

fn collect_rs(dir: &Path, visit: &mut impl FnMut(&Path)) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().map(|n| n.to_string_lossy().to_string());
            if matches!(name.as_deref(), Some("fixtures") | Some("target")) {
                continue;
            }
            collect_rs(&path, visit)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            visit(&path);
        }
    }
    Ok(())
}

/// Rule `lints`: the root manifest must define `[workspace.lints`
/// (with `unsafe_code` forbidden), and every member manifest must opt
/// in with `[lints]` / `workspace = true`.
pub fn check_lints(root: &Path, members: &[Member]) -> io::Result<Vec<Violation>> {
    let mut out = Vec::new();
    let root_manifest = fs::read_to_string(root.join("Cargo.toml"))?;
    if !root_manifest.contains("[workspace.lints") {
        out.push(Violation {
            krate: "workspace".to_string(),
            file: "Cargo.toml".to_string(),
            line: 1,
            rule: RULE_LINTS,
            message: "root Cargo.toml has no [workspace.lints] table".to_string(),
        });
    } else if !root_manifest.contains("unsafe_code") {
        out.push(Violation {
            krate: "workspace".to_string(),
            file: "Cargo.toml".to_string(),
            line: 1,
            rule: RULE_LINTS,
            message: "[workspace.lints] does not forbid unsafe_code".to_string(),
        });
    }
    for m in members {
        let rel = if m.rel_dir.is_empty() {
            "Cargo.toml".to_string()
        } else {
            format!("{}/Cargo.toml", m.rel_dir)
        };
        let manifest = fs::read_to_string(root.join(&rel))?;
        if !opts_into_workspace_lints(&manifest) {
            out.push(Violation {
                krate: m.name.clone(),
                file: rel,
                line: 1,
                rule: RULE_LINTS,
                message: "crate does not opt into [workspace.lints] \
                          (add `[lints]` with `workspace = true`)"
                    .to_string(),
            });
        }
    }
    Ok(out)
}

/// `[lints]` section containing `workspace = true` before the next
/// section header.
fn opts_into_workspace_lints(manifest: &str) -> bool {
    let Some(start) = manifest.find("[lints]") else {
        return false;
    };
    let body = &manifest[start + "[lints]".len()..];
    let end = body.find("\n[").unwrap_or(body.len());
    body[..end]
        .lines()
        .any(|l| l.trim().replace(' ', "") == "workspace=true")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn member_list_parses() {
        let m = "[workspace]\nmembers = [\n  \"crates/a\",\n  \"crates/b\",\n]\n";
        assert_eq!(member_dirs(m), vec!["crates/a", "crates/b"]);
    }

    #[test]
    fn lints_opt_in_detection() {
        assert!(opts_into_workspace_lints(
            "[package]\nname = \"x\"\n\n[lints]\nworkspace = true\n\n[dependencies]\n"
        ));
        assert!(!opts_into_workspace_lints("[package]\nname = \"x\"\n"));
        assert!(!opts_into_workspace_lints(
            "[lints]\n\n[dependencies]\nworkspace = true\n"
        ));
    }
}
