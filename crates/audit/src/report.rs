//! Report rendering: the human crate × rule table and the
//! machine-readable JSON document.
//!
//! The JSON writer is the same hand-rolled style as
//! `pi_bench::report` — this workspace takes no serialization
//! dependency — and renders rows one per line so downstream tooling
//! can grep it.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::baseline::{Baseline, Counts};
use crate::rules::{Violation, ALL_RULES};
use crate::scan::ScanResult;

/// Renders the crate × rule count table with baseline allowances
/// (`current/allowed` in every cell where either is nonzero).
pub fn human_table(counts: &Counts, baseline: &Baseline) -> String {
    let name_w = counts
        .keys()
        .map(String::len)
        .max()
        .unwrap_or(8)
        .max("crate".len());
    let mut out = String::new();
    let _ = write!(out, "{:name_w$}", "crate");
    for rule in ALL_RULES {
        let _ = write!(out, "  {rule:>12}");
    }
    out.push('\n');
    for (krate, rules) in counts {
        let _ = write!(out, "{krate:name_w$}");
        for rule in ALL_RULES {
            let current = rules.get(rule).copied().unwrap_or(0);
            let allowed = baseline.allowed(krate, rule);
            let cell = if current == 0 && allowed == 0 {
                "·".to_string()
            } else if allowed == 0 {
                format!("{current}!")
            } else {
                format!("{current}/{allowed}")
            };
            let _ = write!(out, "  {cell:>12}");
        }
        out.push('\n');
    }
    out
}

/// Renders the machine-readable report.
pub fn render_json(result: &ScanResult, baseline_total: Option<usize>) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"tool\": \"pi_audit\",");
    let _ = writeln!(out, "  \"files_scanned\": {},", result.files_scanned);
    let _ = writeln!(out, "  \"total_violations\": {},", result.total());
    match baseline_total {
        Some(t) => {
            let _ = writeln!(out, "  \"baseline_total\": {t},");
        }
        None => {
            let _ = writeln!(out, "  \"baseline_total\": null,");
        }
    }
    out.push_str("  \"counts\": {");
    let nonzero: BTreeMap<&String, BTreeMap<&String, usize>> = result
        .counts
        .iter()
        .filter_map(|(k, rules)| {
            let nz: BTreeMap<&String, usize> = rules
                .iter()
                .filter(|(_, &n)| n > 0)
                .map(|(r, &n)| (r, n))
                .collect();
            (!nz.is_empty()).then_some((k, nz))
        })
        .collect();
    for (i, (krate, rules)) in nonzero.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n    \"{krate}\": {{");
        for (j, (rule, n)) in rules.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{rule}\": {n}");
        }
        out.push('}');
    }
    out.push_str("\n  },\n  \"violations\": [");
    for (i, v) in result.violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"crate\": \"{}\", \"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            v.krate,
            v.file,
            v.line,
            v.rule,
            escape(&v.message)
        );
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// One-line rendering of a violation for terminal output.
pub fn render_violation(v: &Violation) -> String {
    format!("{}:{}: [{}] {}", v.file, v.line, v.rule, v.message)
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}
