//! The ratchet file: `audit_baseline.json`.
//!
//! Rules that cannot be fixed in one PR (≈150 library `unwrap()`s at
//! the time this crate landed) are **ratcheted** instead of flagged:
//! the baseline records the current unwaived violation count per
//! `(crate, rule)`, and `pi_audit --check` fails when any count rises
//! *or* when a count falls without the file being tightened — the
//! baseline may only go down, and it must be kept honest. Regenerate
//! it with `pi_audit --write-baseline` after a burn-down.
//!
//! The file is a restricted JSON document written and parsed by this
//! module (no serde in this workspace):
//!
//! ```json
//! {
//!   "total": 159,
//!   "crates": { "pi_fleet": { "panics": 34 } }
//! }
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Violation counts per crate per rule, deterministically ordered.
pub type Counts = BTreeMap<String, BTreeMap<String, usize>>;

/// A parsed baseline.
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    /// Per-crate, per-rule allowed violation counts.
    pub crates: Counts,
}

impl Baseline {
    /// Sum of all allowed counts.
    pub fn total(&self) -> usize {
        self.crates.values().flat_map(|r| r.values()).sum()
    }

    /// Allowed count for `(krate, rule)` (0 when absent).
    pub fn allowed(&self, krate: &str, rule: &str) -> usize {
        self.crates
            .get(krate)
            .and_then(|r| r.get(rule))
            .copied()
            .unwrap_or(0)
    }

    /// Renders the canonical file body.
    pub fn render(counts: &Counts) -> String {
        let mut out = String::from("{\n");
        let total: usize = counts.values().flat_map(|r| r.values()).sum();
        let _ = writeln!(out, "  \"total\": {total},");
        out.push_str("  \"crates\": {\n");
        let nonzero: Vec<(&String, &BTreeMap<String, usize>)> = counts
            .iter()
            .filter(|(_, rules)| rules.values().any(|&n| n > 0))
            .collect();
        for (i, (krate, rules)) in nonzero.iter().enumerate() {
            let _ = write!(out, "    \"{krate}\": {{");
            let mut first = true;
            for (rule, n) in rules.iter().filter(|(_, &n)| n > 0) {
                if !first {
                    out.push_str(", ");
                }
                first = false;
                let _ = write!(out, "\"{rule}\": {n}");
            }
            out.push('}');
            if i + 1 < nonzero.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  }\n}\n");
        out
    }

    /// Parses a baseline file body.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            at: 0,
        };
        p.skip_ws();
        p.eat(b'{')?;
        let mut baseline = Baseline::default();
        loop {
            p.skip_ws();
            if p.peek() == Some(b'}') {
                break;
            }
            let key = p.string()?;
            p.skip_ws();
            p.eat(b':')?;
            p.skip_ws();
            match key.as_str() {
                "crates" => baseline.crates = p.crates_object()?,
                _ => p.skip_scalar()?,
            }
            p.skip_ws();
            if p.peek() == Some(b',') {
                p.at += 1;
            }
        }
        Ok(baseline)
    }
}

/// How a current count disagrees with the ratchet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Drift {
    /// More violations than allowed: a regression.
    Over {
        /// Crate name.
        krate: String,
        /// Rule id.
        rule: String,
        /// Current unwaived count.
        current: usize,
        /// Ratcheted allowance.
        allowed: usize,
    },
    /// Fewer violations than recorded: tighten the baseline
    /// (`--write-baseline`) so the improvement cannot regress quietly.
    Stale {
        /// Crate name.
        krate: String,
        /// Rule id.
        rule: String,
        /// Current unwaived count.
        current: usize,
        /// Ratcheted allowance.
        allowed: usize,
    },
}

/// Diffs current counts against the baseline in both directions.
pub fn drift(current: &Counts, baseline: &Baseline) -> Vec<Drift> {
    let mut out = Vec::new();
    for (krate, rules) in current {
        for (rule, &n) in rules {
            let allowed = baseline.allowed(krate, rule);
            if n > allowed {
                out.push(Drift::Over {
                    krate: krate.clone(),
                    rule: rule.clone(),
                    current: n,
                    allowed,
                });
            } else if n < allowed {
                out.push(Drift::Stale {
                    krate: krate.clone(),
                    rule: rule.clone(),
                    current: n,
                    allowed,
                });
            }
        }
    }
    // Baseline entries for crates/rules that no longer exist at all.
    for (krate, rules) in &baseline.crates {
        for (rule, &allowed) in rules {
            if allowed > 0
                && current
                    .get(krate)
                    .and_then(|r| r.get(rule))
                    .copied()
                    .unwrap_or(0)
                    == 0
                && !current.contains_key(krate)
            {
                out.push(Drift::Stale {
                    krate: krate.clone(),
                    rule: rule.clone(),
                    current: 0,
                    allowed,
                });
            }
        }
    }
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn skip_ws(&mut self) {
        while self
            .peek()
            .is_some_and(|c| c == b' ' || c == b'\n' || c == b'\t' || c == b'\r')
        {
            self.at += 1;
        }
    }

    fn eat(&mut self, want: u8) -> Result<(), String> {
        if self.peek() == Some(want) {
            self.at += 1;
            Ok(())
        } else {
            Err(format!(
                "baseline parse: expected `{}` at byte {}",
                want as char, self.at
            ))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let start = self.at;
        while self.peek().is_some_and(|c| c != b'"') {
            self.at += 1;
        }
        let s = String::from_utf8_lossy(&self.bytes[start..self.at]).to_string();
        self.eat(b'"')?;
        Ok(s)
    }

    fn number(&mut self) -> Result<usize, String> {
        let start = self.at;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.at += 1;
        }
        String::from_utf8_lossy(&self.bytes[start..self.at])
            .parse()
            .map_err(|_| format!("baseline parse: bad number at byte {start}"))
    }

    /// Skips a scalar value (string or number) we don't interpret.
    fn skip_scalar(&mut self) -> Result<(), String> {
        self.skip_ws();
        if self.peek() == Some(b'"') {
            self.string()?;
        } else {
            self.number()?;
        }
        Ok(())
    }

    fn crates_object(&mut self) -> Result<Counts, String> {
        self.skip_ws();
        self.eat(b'{')?;
        let mut out = Counts::new();
        loop {
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.at += 1;
                break;
            }
            let krate = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            self.eat(b'{')?;
            let mut rules = BTreeMap::new();
            loop {
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.at += 1;
                    break;
                }
                let rule = self.string()?;
                self.skip_ws();
                self.eat(b':')?;
                self.skip_ws();
                rules.insert(rule, self.number()?);
                self.skip_ws();
                if self.peek() == Some(b',') {
                    self.at += 1;
                }
            }
            out.insert(krate, rules);
            self.skip_ws();
            if self.peek() == Some(b',') {
                self.at += 1;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(entries: &[(&str, &str, usize)]) -> Counts {
        let mut c = Counts::new();
        for &(k, r, n) in entries {
            c.entry(k.to_string()).or_default().insert(r.to_string(), n);
        }
        c
    }

    #[test]
    fn round_trip() {
        let c = counts(&[("pi_a", "panics", 3), ("pi_b", "panics", 0)]);
        let text = Baseline::render(&c);
        let b = Baseline::parse(&text).expect("parse");
        assert_eq!(b.total(), 3);
        assert_eq!(b.allowed("pi_a", "panics"), 3);
        assert_eq!(b.allowed("pi_b", "panics"), 0);
        assert_eq!(b.allowed("pi_c", "panics"), 0);
    }

    #[test]
    fn drift_both_directions() {
        let base =
            Baseline::parse(&Baseline::render(&counts(&[("pi_a", "panics", 3)]))).expect("parse");
        let over = drift(&counts(&[("pi_a", "panics", 4)]), &base);
        assert!(matches!(
            over[0],
            Drift::Over {
                current: 4,
                allowed: 3,
                ..
            }
        ));
        let stale = drift(&counts(&[("pi_a", "panics", 1)]), &base);
        assert!(matches!(
            stale[0],
            Drift::Stale {
                current: 1,
                allowed: 3,
                ..
            }
        ));
        assert!(drift(&counts(&[("pi_a", "panics", 3)]), &base).is_empty());
    }
}
